#!/bin/sh
# End-to-end smoke test for the adversarial-scenario surface: run a seeded
# hijack campaign under the paper fault profile asserting a non-empty
# quadrant report, then start rovistad and drive /v1/whatif through every
# action (plus its error paths), requiring HTTP 200 answers computed from a
# copy-on-write overlay of the live world. This is what CI's campaign-smoke
# job runs.
#
# Usage: scripts/campaign_smoke.sh [port]   (default 18091)
set -eu

port=${1:-18091}
base="http://127.0.0.1:$port"
bin=$(mktemp -d)
store=$(mktemp -d)
logf=$(mktemp)
out=$(mktemp)
pid=

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bin" "$store" "$logf" "$out"
}
trap cleanup EXIT

fail() {
    echo "campaign-smoke: FAIL: $*" >&2
    echo "--- output ---" >&2
    cat "$out" >&2
    echo "--- rovistad log ---" >&2
    cat "$logf" >&2
    exit 1
}

go build -o "$bin/rovista" ./cmd/rovista
go build -o "$bin/rovistad" ./cmd/rovistad

# --- campaign runner: seeded attacks, paper faults, quadrant report ------
"$bin/rovista" -campaign 6 -rounds 4 -interval 3 -seed 7 -faults paper >"$out" 2>&1 ||
    fail "rovista -campaign exited non-zero"

grep -q "attacks scheduled" "$out" || fail "no campaign schedule in output"
grep -q "protection quadrants" "$out" || fail "no quadrant report in output"
grep -q "data-plane oracle" "$out" || fail "no oracle agreement line in output"

# The quadrant report must be non-empty: at least one cell non-zero.
total=$(awk '/damage-avoided|collateral-benefit|collateral-damage|exposed/ {s += $2} END {print s+0}' "$out")
[ "$total" -gt 0 ] || fail "quadrant report is all zeros"
echo "ok: campaign quadrant report non-empty ($total observations)"

# Fixed seed => bit-identical report (the determinism contract, end to end).
out2=$(mktemp)
"$bin/rovista" -campaign 6 -rounds 4 -interval 3 -seed 7 -faults paper >"$out2" 2>&1 ||
    { rm -f "$out2"; fail "second campaign run exited non-zero"; }
cmp -s "$out" "$out2" || { rm -f "$out2"; fail "same seed produced different campaign reports"; }
rm -f "$out2"
echo "ok: campaign report deterministic across runs"

# --- /v1/whatif over a live-measured world -------------------------------
"$bin/rovistad" -addr "127.0.0.1:$port" -store "$store" \
    -size smoke -rounds 3 -interval 5 -seed 42 >"$logf" 2>&1 &
pid=$!

i=0
until curl -sf -o /dev/null "$base/healthz" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 120 ] && fail "daemon did not come up within 60s"
    kill -0 "$pid" 2>/dev/null || fail "daemon exited before serving"
    sleep 0.5
done

asn=$(curl -sf "$base/v1/top?n=1" | sed -n 's/.*"asn": *\([0-9]*\).*/\1/p' | head -1)
[ -n "$asn" ] || fail "could not extract an ASN from /v1/top"

# expect_200 PATH — assert HTTP 200 and a non-empty body.
expect_200() {
    code=$(curl -s -o /tmp/campaign_body.$$ -w '%{http_code}' "$base$1")
    [ "$code" = "200" ] || fail "GET $1 -> $code (want 200)"
    [ -s /tmp/campaign_body.$$ ] || fail "GET $1 -> empty body"
    rm -f /tmp/campaign_body.$$
    echo "ok: GET $1"
}

expect_200 "/v1/whatif?action=deploy-rov&asn=$asn"
expect_200 "/v1/whatif?action=leak&asn=$asn"
expect_200 "/v1/whatif?action=hijack&attacker=$asn&prefix=10.99.0.0/16"

# The hijack answer must report overlay stats: only a fraction of the world
# materializes, proving the copy-on-write path is engaged.
curl -sf "$base/v1/whatif?action=hijack&attacker=$asn&prefix=10.99.0.0/16" |
    grep -q '"materialized_ases"' || fail "whatif answer lacks overlay stats"

# Error paths: bad action / bad prefix must be 4xx, never 5xx or a crash.
for path in "/v1/whatif" "/v1/whatif?action=warp" \
    "/v1/whatif?action=hijack&attacker=$asn&prefix=notaprefix" \
    "/v1/whatif?action=deploy-rov&asn=999999999"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "$base$path")
    case "$code" in
    4*) echo "ok: GET $path -> $code" ;;
    *) fail "GET $path -> $code (want 4xx)" ;;
    esac
done

# Queries must not disturb measurement: the daemon still shuts down cleanly.
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
pid=
[ "$rc" = "0" ] || fail "daemon exited $rc on SIGINT (want 0)"
grep -q "stopped cleanly" "$logf" || fail "daemon log lacks clean-shutdown line"

echo "campaign-smoke: PASS"
