#!/bin/sh
# Robustness benchmark runner. Executes the metamorphic robustness harness
# (internal/faults/robustness_test.go) — fixed-seed determinism at multiple
# worker counts, classification F1 against data-plane ground truth, and the
# no-silent-flip guard — then runs the profile sweep and publishes its
# aggregate accuracy/fault-counter report as BENCH_robustness.json, making
# noise-robustness regressions diffable across commits.
#
# Usage: scripts/robustness.sh [robustness.json]
#        (default: BENCH_robustness.json)
set -eu

out=${1:-BENCH_robustness.json}

# The three headline properties must hold before the sweep is worth reporting.
go test -count=1 -run \
    'TestRobustnessDeterminismUnderFaults|TestRobustnessF1|TestRobustnessNoSilentFlips' \
    ./internal/faults/

# Sweep every profile and write the artifact.
ROBUSTNESS_JSON="$(pwd)/$out" go test -count=1 -run 'TestRobustnessSweep' -v \
    ./internal/faults/ | grep -E 'robustness_test|wrote ' || true

test -s "$out" || { echo "robustness.sh: $out was not written" >&2; exit 1; }

# Campaign quadrant gate: under the paper profile, measured protection must
# agree with the data-plane oracle at F1 >= 0.90 across a full hijack
# campaign; the result is merged into the artifact under "campaign".
ROBUSTNESS_JSON="$(pwd)/$out" go test -count=1 -run 'TestCampaignQuadrantF1Paper' -v \
    ./internal/campaign/ | grep -E 'campaign_test|wrote ' || true

grep -q '"campaign"' "$out" || { echo "robustness.sh: $out lacks campaign section" >&2; exit 1; }
echo "wrote $out"
