#!/bin/sh
# End-to-end streaming smoke test: start rovistad with the deterministic
# synthetic churn source driving rounds through the stage pipeline, attach a
# live SSE client to /v1/stream, and require that it observes pushed score
# changes (an "event: scores" frame with a non-empty delta list) without
# polling. Then assert the pipeline/sink/hub counters surfaced in /metrics
# and a clean SIGINT shutdown. This is what CI's stream-smoke job runs.
#
# Usage: scripts/stream_smoke.sh [port]   (default 18095)
set -eu

port=${1:-18095}
base="http://127.0.0.1:$port"
bin=$(mktemp -d)
store=$(mktemp -d)
logf=$(mktemp)
ssef=$(mktemp)
pid=

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bin" "$store" "$logf" "$ssef"
}
trap cleanup EXIT

fail() {
    echo "stream-smoke: FAIL: $*" >&2
    echo "--- rovistad log ---" >&2
    cat "$logf" >&2
    echo "--- SSE capture ---" >&2
    cat "$ssef" >&2
    exit 1
}

go build -o "$bin/rovistad" ./cmd/rovistad

# An endless synthetic stream (one event every 100ms, 1-virtual-second
# coalescing windows → a streamed round roughly every half second at
# -stream-rate 20), so the SSE client below always has rounds to watch.
"$bin/rovistad" -addr "127.0.0.1:$port" -store "$store" \
    -size smoke -seed 42 -stream synth -stream-rate 20 -stream-window 1 \
    -stream-interval 100ms >"$logf" 2>&1 &
pid=$!

i=0
until curl -sf -o /dev/null "$base/healthz" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 120 ] && fail "daemon did not come up within 60s"
    kill -0 "$pid" 2>/dev/null || fail "daemon exited before serving"
    sleep 0.5
done

# The push path end-to-end: a plain SSE client must see at least one scores
# frame with a real delta, pushed — it never polls a query endpoint.
curl -sN --max-time 60 "$base/v1/stream" >"$ssef" 2>/dev/null &
ssepid=$!
i=0
until grep -q "^event: scores" "$ssef" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 60 ] && fail "SSE client saw no scores frame within 30s"
    sleep 0.5
done
kill "$ssepid" 2>/dev/null || true
wait "$ssepid" 2>/dev/null || true
grep -q '"deltas":\[{"asn":' "$ssef" || fail "scores frame carried no deltas"
echo "ok: SSE client observed pushed score deltas"

# A filtered subscription must still answer (and not 4xx).
code=$(curl -s --max-time 3 -o /dev/null -w '%{http_code}' "$base/v1/stream?asn=1001&min_delta=0.5" || true)
[ "$code" = "200" ] || fail "filtered /v1/stream -> $code (want 200)"
echo "ok: filtered subscription accepted"
for q in "asn=0" "min_delta=-1"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/stream?$q")
    case "$code" in
    4*) echo "ok: GET /v1/stream?$q -> $code" ;;
    *) fail "GET /v1/stream?$q -> $code (want 4xx)" ;;
    esac
done

# The stage pipeline and fan-out hub must be visible in /metrics: batches
# flowed through the coalescer into the sink, rounds were measured, and the
# hub delivered updates to the subscriber above.
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '"stream_pipeline"' || fail "/metrics lacks stream_pipeline"
echo "$metrics" | grep -q '"1:coalesce"' || fail "/metrics lacks coalesce stage counters"
echo "$metrics" | grep -Eq '"batches": *[1-9]' || fail "sink applied no batches"
echo "$metrics" | grep -Eq '"delivered": *[1-9]' || fail "hub delivered no updates"
echo "$metrics" | grep -Eq '"pairs_remeasured": *[1-9]' || fail "no pairs remeasured"
echo "ok: pipeline/sink/hub counters live in /metrics"

# Streamed rounds must land in the archive: more rounds than the baseline.
rounds=$(curl -sf "$base/v1/rounds" | grep -o '"round"' | wc -l)
[ "$rounds" -ge 2 ] || fail "archive has $rounds rounds (want >= 2: baseline + streamed)"
echo "ok: $rounds rounds archived (baseline + streamed)"

# Graceful shutdown: SIGINT must drain the pipeline and exit 0.
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
pid=
[ "$rc" = "0" ] || fail "daemon exited $rc on SIGINT (want 0)"
grep -q "stopped cleanly" "$logf" || fail "daemon log lacks clean-shutdown line"

echo "stream-smoke: PASS"
