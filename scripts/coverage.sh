#!/bin/sh
# Coverage gate. Runs `go test -cover` over every package, prints the
# per-package breakdown, and compares the total statement coverage against
# the committed baseline (COVERAGE_baseline.txt) with a 2-point soft floor:
# the build fails only when total coverage drops more than 2 points below
# the baseline, so incidental churn doesn't block while real coverage rot
# does.
#
# Usage: scripts/coverage.sh            # check against the baseline
#        scripts/coverage.sh -update    # re-record the baseline
set -eu

baseline_file=COVERAGE_baseline.txt
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

# -coverpkg=./... attributes cross-package coverage (e.g. the robustness
# harness in internal/faults driving internal/core) to the packages it
# actually exercises.
go test -count=1 -coverprofile="$profile" -coverpkg=./... ./... | grep -v '\[no test files\]'

total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
echo "total statement coverage: ${total}%"

if [ "${1:-}" = "-update" ]; then
    echo "$total" > "$baseline_file"
    echo "baseline updated: $baseline_file = ${total}%"
    exit 0
fi

if [ ! -f "$baseline_file" ]; then
    echo "coverage.sh: no $baseline_file committed; run scripts/coverage.sh -update" >&2
    exit 1
fi

baseline=$(cat "$baseline_file")
if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t < b - 2.0) }'; then
    echo "coverage.sh: total ${total}% fell more than 2 points below the ${baseline}% baseline" >&2
    exit 1
fi
echo "coverage ok (baseline ${baseline}%, floor $(awk -v b="$baseline" 'BEGIN { printf "%.1f", b - 2.0 }')%)"
