#!/bin/sh
# Hot-path benchmark runner. Runs the measurement-round benchmarks (serial
# and parallel) plus the BGP convergence benchmarks with allocation
# reporting, and distills the results into BENCH_round.json so perf
# regressions are diffable across commits.
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_round.json)
set -eu

out=${1:-BENCH_round.json}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkMeasureRound' -benchmem -benchtime 5x . | tee "$tmp"
go test -run '^$' -bench 'BenchmarkConverge' -benchmem ./internal/bgp/ | tee -a "$tmp"

awk -v gover="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    iters[n] = $2
    names[n] = name
    ns[n] = bytes[n] = allocs[n] = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[n] = $i
        if ($(i+1) == "B/op")      bytes[n] = $i
        if ($(i+1) == "allocs/op") allocs[n] = $i
    }
    n++
}
END {
    printf "{\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", gover
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            names[i], iters[i], ns[i], bytes[i], allocs[i], (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$tmp" > "$out"

echo "wrote $out"
