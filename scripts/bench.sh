#!/bin/sh
# Hot-path benchmark runner. Runs the measurement-round benchmarks (serial
# and parallel) plus the BGP convergence benchmarks with allocation
# reporting, and distills the results into BENCH_round.json; then runs the
# paper-scale world benchmarks (10k/50k-AS build and steady-state converge,
# with peak-RSS reporting) into BENCH_world.json. Both files make perf
# regressions diffable across commits.
#
# Usage: scripts/bench.sh [round.json [world.json]]
#        (defaults: BENCH_round.json BENCH_world.json)
set -eu

round_out=${1:-BENCH_round.json}
world_out=${2:-BENCH_world.json}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# distill turns `go test -bench` output into a JSON report. Recognizes
# ns/op, B/op, allocs/op and the scale benchmarks' peakRSS-MB metric.
distill() {
    awk -v gover="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    iters[n] = $2
    names[n] = name
    ns[n] = bytes[n] = allocs[n] = rss[n] = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")      ns[n] = $i
        if ($(i+1) == "B/op")       bytes[n] = $i
        if ($(i+1) == "allocs/op")  allocs[n] = $i
        if ($(i+1) == "peakRSS-MB") rss[n] = $i
    }
    n++
}
END {
    printf "{\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", gover
    for (i = 0; i < n; i++) {
        line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
            names[i], iters[i], ns[i], bytes[i], allocs[i])
        if (rss[i] != "null") line = line sprintf(", \"peak_rss_mb\": %s", rss[i])
        printf "%s}%s\n", line, (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}'
}

go test -run '^$' -bench 'BenchmarkMeasureRound' -benchmem -benchtime 5x . | tee "$tmp"
go test -run '^$' -bench 'BenchmarkConverge' -benchmem ./internal/bgp/ | tee -a "$tmp"
distill < "$tmp" > "$round_out"
echo "wrote $round_out"

# Paper-scale tier: one timed pass each (a 50k-AS converge runs ~13s; more
# iterations would add minutes for little signal).
go test -run '^$' -bench 'BenchmarkWorldBuild|BenchmarkConvergeLarge' \
    -benchmem -benchtime 1x -timeout 30m ./internal/core/ | tee "$tmp"
distill < "$tmp" > "$world_out"
echo "wrote $world_out"
