#!/bin/sh
# Hot-path benchmark runner. Runs the measurement-round benchmarks (serial,
# parallel, and the incremental 0%/1%/10%-churn variants — the incremental
# ns/op over the serial ns/op is the reuse speedup) plus the BGP convergence
# benchmarks with allocation reporting, and distills the results into
# BENCH_round.json; then the
# paper-scale world benchmarks (10k/50k/74k-AS build, steady-state converge
# and event-path flap re-convergence, with peak-RSS reporting) into
# BENCH_world.json; then the rovistad serving
# benchmarks (mixed read workload against a populated 1k-AS/50-round store
# in serial, parallel, and append-storm variants, with qps, qps-parallel,
# and p50/p99/p999 latency) into BENCH_serve.json. The files make perf
# regressions diffable across commits.
#
# Usage: scripts/bench.sh [round.json [world.json [serve.json]]]
#        scripts/bench.sh -serve [serve.json]     # serving benchmark only
#        (defaults: BENCH_round.json BENCH_world.json BENCH_serve.json)
set -eu

serve_only=
if [ "${1:-}" = "-serve" ]; then
    serve_only=1
    shift
    serve_out=${1:-BENCH_serve.json}
else
    round_out=${1:-BENCH_round.json}
    world_out=${2:-BENCH_world.json}
    serve_out=${3:-BENCH_serve.json}
fi
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# distill turns `go test -bench` output into a JSON report. Recognizes
# ns/op, B/op, allocs/op, the scale benchmarks' peakRSS-MB metric, and the
# serving benchmarks' qps / qps-parallel / p50-us / p99-us / p999-us /
# sub-p99-us metrics.
distill() {
    awk -v gover="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    iters[n] = $2
    names[n] = name
    ns[n] = bytes[n] = allocs[n] = rss[n] = qps[n] = qpspar[n] = p50[n] = p99[n] = p999[n] = subp99[n] = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")        ns[n] = $i
        if ($(i+1) == "B/op")         bytes[n] = $i
        if ($(i+1) == "allocs/op")    allocs[n] = $i
        if ($(i+1) == "peakRSS-MB")   rss[n] = $i
        if ($(i+1) == "qps")          qps[n] = $i
        if ($(i+1) == "qps-parallel") qpspar[n] = $i
        if ($(i+1) == "p50-us")       p50[n] = $i
        if ($(i+1) == "p99-us")       p99[n] = $i
        if ($(i+1) == "p999-us")      p999[n] = $i
        if ($(i+1) == "sub-p99-us")   subp99[n] = $i
    }
    n++
}
END {
    printf "{\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", gover
    for (i = 0; i < n; i++) {
        line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
            names[i], iters[i], ns[i], bytes[i], allocs[i])
        if (rss[i] != "null") line = line sprintf(", \"peak_rss_mb\": %s", rss[i])
        if (qps[i] != "null") line = line sprintf(", \"qps\": %s", qps[i])
        if (qpspar[i] != "null") line = line sprintf(", \"qps_parallel\": %s", qpspar[i])
        if (p50[i] != "null") line = line sprintf(", \"latency_p50_us\": %s", p50[i])
        if (p99[i] != "null") line = line sprintf(", \"latency_p99_us\": %s", p99[i])
        if (p999[i] != "null") line = line sprintf(", \"latency_p999_us\": %s", p999[i])
        if (subp99[i] != "null") line = line sprintf(", \"sub_delivery_p99_us\": %s", subp99[i])
        printf "%s}%s\n", line, (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}'
}

serve_bench() {
    go test -run '^$' -bench 'BenchmarkServe' -benchmem -benchtime 2s ./internal/api/ | tee "$tmp"
    distill < "$tmp" > "$serve_out"
    echo "wrote $serve_out"
}

if [ -n "$serve_only" ]; then
    serve_bench
    exit 0
fi

go test -run '^$' -bench 'BenchmarkMeasureRound' -benchmem -benchtime 5x . | tee "$tmp"
go test -run '^$' -bench 'BenchmarkConverge' -benchmem ./internal/bgp/ | tee -a "$tmp"
distill < "$tmp" > "$round_out"
echo "wrote $round_out"

# Paper-scale tier: one timed pass each for build/converge (a 50k-AS
# converge runs for seconds; more iterations would add minutes for little
# signal). The flap benchmarks are microsecond-scale, so they get the default
# benchtime for stable numbers.
go test -run '^$' -bench 'BenchmarkWorldBuild|BenchmarkConvergeLarge' \
    -benchmem -benchtime 1x -timeout 30m ./internal/core/ | tee "$tmp"
go test -run '^$' -bench 'BenchmarkFlapReconverge' \
    -benchmem -timeout 30m ./internal/core/ | tee -a "$tmp"
distill < "$tmp" > "$world_out"
echo "wrote $world_out"

serve_bench
