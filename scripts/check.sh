#!/bin/sh
# Tier-1 verification gate, mirroring `make check` for environments without
# make: vet, build, full test suite, then a race-detector pass over the
# concurrency-bearing packages (the parallel pair-measurement executor and
# the netsim state it clones).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core/ ./internal/netsim/ ./internal/pipeline/
