#!/bin/sh
# Load-harness smoke test: run cmd/loadgen against a small in-process
# target (200 ASes, 10k simulated clients, a fixed request budget, with
# the background append storm on) and assert the report shows nonzero
# throughput and zero errors. This is what CI's loadgen-smoke job runs —
# it proves the harness and the contention-free serving path survive a
# mixed Zipf workload with a writer appending mid-load, not that any
# particular qps is reached (shared runners are too noisy for that).
#
# Usage: scripts/loadgen_smoke.sh
set -eu

out=$(mktemp)
trap 'rm -f "$out"' EXIT

fail() {
    echo "loadgen-smoke: FAIL: $*" >&2
    echo "--- loadgen report ---" >&2
    cat "$out" >&2
    exit 1
}

go run ./cmd/loadgen \
    -clients 10000 -ases 200 -rounds 10 -requests 50000 \
    -append-every 20ms -seed 42 -json >"$out" 2>/dev/null ||
    fail "loadgen exited nonzero"

# field NAME — extract a numeric field from the JSON report.
field() {
    sed -n "s/.*\"$1\": *\([0-9.eE+-]*\).*/\1/p" "$out" | head -1
}

requests=$(field requests)
errors=$(field errors)
qps=$(field qps)

[ "$requests" = "50000" ] || fail "requests = $requests (want 50000)"
[ "$errors" = "0" ] || fail "errors = $errors (want 0)"
case "$qps" in
"" | 0 | 0.*) fail "qps = '$qps' (want nonzero)" ;;
esac

echo "loadgen-smoke: PASS ($requests requests, $qps qps, 0 errors)"
