#!/bin/sh
# End-to-end smoke test for the rovistad serving daemon: build it, start it
# on a ~200-AS world, hit every public endpoint asserting HTTP 200 and a
# non-empty body, exercise the error paths, then SIGINT the daemon and
# require a clean (exit 0) shutdown. This is what CI's serve-smoke job runs.
#
# Usage: scripts/serve_smoke.sh [port]   (default 18090)
set -eu

port=${1:-18090}
base="http://127.0.0.1:$port"
bin=$(mktemp -d)
store=$(mktemp -d)
logf=$(mktemp)
pid=

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bin" "$store" "$logf"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- rovistad log ---" >&2
    cat "$logf" >&2
    exit 1
}

go build -o "$bin/rovistad" ./cmd/rovistad

"$bin/rovistad" -addr "127.0.0.1:$port" -store "$store" \
    -size smoke -rounds 3 -interval 5 -seed 42 >"$logf" 2>&1 &
pid=$!

# Round 0 is measured before the listener opens, so the first successful
# /healthz implies data is already queryable.
i=0
until curl -sf -o /dev/null "$base/healthz" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 120 ] && fail "daemon did not come up within 60s"
    kill -0 "$pid" 2>/dev/null || fail "daemon exited before serving"
    sleep 0.5
done

# An ASN guaranteed to exist: the top-ranked one.
asn=$(curl -sf "$base/v1/top?n=1" | sed -n 's/.*"asn": *\([0-9]*\).*/\1/p' | head -1)
[ -n "$asn" ] || fail "could not extract an ASN from /v1/top"

# expect_200 PATH — assert HTTP 200 and a non-empty body.
expect_200() {
    code=$(curl -s -o /tmp/smoke_body.$$ -w '%{http_code}' "$base$1")
    [ "$code" = "200" ] || fail "GET $1 -> $code (want 200)"
    [ -s /tmp/smoke_body.$$ ] || fail "GET $1 -> empty body"
    rm -f /tmp/smoke_body.$$
    echo "ok: GET $1"
}

expect_200 /healthz
expect_200 /metrics
expect_200 /v1/rounds
expect_200 "/v1/as/$asn"
expect_200 "/v1/as/$asn/timeseries"
expect_200 "/v1/top?n=10"
expect_200 "/v1/top?n=10&order=unprotected"
expect_200 "/v1/diff?from=0&to=latest"
expect_200 "/v1/export?format=json"
expect_200 "/v1/export?format=csv"
expect_200 "/v1/export?format=json&round=0"
expect_200 /debug/pprof/
expect_200 "/debug/pprof/profile?seconds=1"

# Error paths must be errors, not 200s or crashes.
for path in /v1/as/999999999 /v1/as/notanumber "/v1/export?format=xml" \
    "/v1/diff?from=0&to=99999"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "$base$path")
    case "$code" in
    4*) echo "ok: GET $path -> $code" ;;
    *) fail "GET $path -> $code (want 4xx)" ;;
    esac
done

# The JSON export must carry the format version shared with internal/export.
curl -sf "$base/v1/export?format=json" | grep -q '"format_version"' ||
    fail "/v1/export JSON lacks format_version"

# Graceful shutdown: SIGINT must drain and exit 0.
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
pid=
[ "$rc" = "0" ] || fail "daemon exited $rc on SIGINT (want 0)"
grep -q "stopped cleanly" "$logf" || fail "daemon log lacks clean-shutdown line"

# Incremental rounds: with -interval 0 the second round has zero churn, so
# it must be served entirely from the pair-result cache and /metrics must
# report the reuse under rovistad.rounds.
store2=$(mktemp -d)
"$bin/rovistad" -addr "127.0.0.1:$port" -store "$store2" \
    -size smoke -rounds 2 -interval 0 -seed 42 >"$logf" 2>&1 &
pid=$!
i=0
until curl -s "$base/metrics" 2>/dev/null | grep -q '"pairs_reused": *[1-9]'; do
    i=$((i + 1))
    [ "$i" -ge 120 ] && { rm -rf "$store2"; fail "no pair reuse reported within 60s"; }
    kill -0 "$pid" 2>/dev/null || { rm -rf "$store2"; fail "daemon exited before reuse round"; }
    sleep 0.5
done
echo "ok: zero-churn round reused pairs"
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
pid=
rm -rf "$store2"
[ "$rc" = "0" ] || fail "incremental daemon exited $rc on SIGINT (want 0)"

echo "serve-smoke: PASS"
