// Benchmarks regenerating every table and figure in the paper's evaluation,
// plus the ablations DESIGN.md calls out. Each iteration performs the full
// experiment (world build, convergence, measurement, analysis); ns/op is
// therefore end-to-end regeneration cost. Run:
//
//	go test -bench=. -benchmem
package rovista

import (
	"io"
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/experiments"
	"github.com/netsec-lab/rovista/internal/inet"
)

// benchmarkMeasureRound times one full measurement round (all five pipeline
// stages) against a prebuilt small world; the world build and convergence
// sit outside the timer, and a warm-up round outside the timer fills the
// vVP cache so iterations compare the measurement itself. The incremental
// result cache is off here — this is the from-scratch round cost that the
// incremental benchmarks below are measured against.
func benchmarkMeasureRound(b *testing.B, workers int) {
	w, err := BuildWorld(SmallWorldConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		b.Fatal(err)
	}
	cfg := DefaultRunnerConfig(7)
	cfg.Workers = workers
	cfg.Incremental = false
	r := NewRunner(w, cfg)
	if snap := r.Measure(); len(snap.Reports) == 0 {
		b.Fatal("no reports")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Measure()
	}
}

// BenchmarkMeasureRoundSerial and BenchmarkMeasureRoundParallel compare the
// pair-measurement executor at 1 worker vs one per CPU. Results are
// bit-for-bit identical either way (TestMeasureParallelDeterminism); only
// wall-clock differs, proportional to available cores.
func BenchmarkMeasureRoundSerial(b *testing.B)   { benchmarkMeasureRound(b, 1) }
func BenchmarkMeasureRoundParallel(b *testing.B) { benchmarkMeasureRound(b, 0) }

// benchmarkMeasureRoundIncremental times an incremental round after churning
// the given fraction of routed prefixes: each iteration withdraws then
// re-announces ceil(churn·origins) prefixes as two separate converged event
// batches (so forwarding epochs genuinely move, unlike the coalesced
// fault-injection flaps) and then runs one round, so ns/op is the steady-state
// cost of a round at that churn rate. The cold cache-filling round sits
// outside the timer. Compare against BenchmarkMeasureRoundSerial for the
// speedup: zero churn re-measures nothing, and the 1%/10% variants re-measure
// only the pairs whose three destinations route through the flapped origins.
func benchmarkMeasureRoundIncremental(b *testing.B, churn float64) {
	w, err := BuildWorld(SmallWorldConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		b.Fatal(err)
	}
	cfg := DefaultRunnerConfig(7)
	cfg.Workers = 1
	r := NewRunner(w, cfg)
	if snap := r.Measure(); len(snap.Reports) == 0 {
		b.Fatal("no reports")
	}
	type origin struct {
		asn inet.ASN
		p   netip.Prefix
	}
	var origins []origin
	for _, asn := range w.Topo.ASNs {
		if ps := w.Topo.Info[asn].Prefixes; len(ps) > 0 {
			origins = append(origins, origin{asn, ps[0]})
		}
	}
	k := 0
	if churn > 0 {
		if k = int(churn * float64(len(origins))); k < 1 {
			k = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < k; j++ {
			o := origins[(i*k+j)%len(origins)]
			if _, err := w.Graph.ApplyEvents([]bgp.RouteEvent{{Kind: bgp.EvWithdraw, AS: o.asn, Prefix: o.p}}); err != nil {
				b.Fatal(err)
			}
			if _, err := w.Graph.ApplyEvents([]bgp.RouteEvent{{Kind: bgp.EvAnnounce, AS: o.asn, Prefix: o.p}}); err != nil {
				b.Fatal(err)
			}
		}
		snap := r.Measure()
		if m := snap.Metrics; churn == 0 && m.PairsRemeasured != 0 {
			b.Fatalf("zero-churn round re-measured %d pairs", m.PairsRemeasured)
		} else if churn > 0 && i == 0 && m.PairsReused == 0 {
			b.Fatal("churn round reused nothing; cache is not engaging")
		}
	}
}

func BenchmarkMeasureRoundIncrementalChurn0(b *testing.B) {
	benchmarkMeasureRoundIncremental(b, 0)
}
func BenchmarkMeasureRoundIncrementalChurn1pct(b *testing.B) {
	benchmarkMeasureRoundIncremental(b, 0.01)
}
func BenchmarkMeasureRoundIncrementalChurn10pct(b *testing.B) {
	benchmarkMeasureRoundIncremental(b, 0.10)
}

func BenchmarkFig1ROACoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig1(1, io.Discard)
	}
}

func BenchmarkFig2Timelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig2(1, io.Discard)
	}
}

func BenchmarkFig3IPIDPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3(1, io.Discard)
	}
}

func BenchmarkFig4VVPDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(1, io.Discard)
	}
}

func BenchmarkFig5ScoreCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(1, io.Discard)
	}
}

func BenchmarkFig6FullProtectionTrend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(1, io.Discard)
	}
}

func BenchmarkFig7ScoreVsRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(1, io.Discard)
	}
}

func BenchmarkFig8CollateralBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(1, io.Discard)
	}
}

func BenchmarkFig9CollateralDamage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(1, io.Discard)
	}
}

func BenchmarkFig10SinglePrefixFPFN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10(1, io.Discard)
	}
}

func BenchmarkFig11CrowdsourcedList(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11(1, io.Discard)
	}
}

func BenchmarkTable1Tier1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(1, io.Discard)
	}
}

func BenchmarkTable2Announcements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Tables2And3(1, io.Discard)
	}
}

// BenchmarkTable3NonROV shares the Tables-2-and-3 pipeline; the negative
// claims are a slice of the same generated comparison.
func BenchmarkTable3NonROV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Tables2And3(2, io.Discard)
		if res.NegTotal == 0 {
			b.Fatal("no negative claims generated")
		}
	}
}

func BenchmarkXValTraceroute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.XVal(1, io.Discard)
	}
}

func BenchmarkCoverageCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Coverage(1, io.Discard)
	}
}

func BenchmarkBGPStreamAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.BGPStream(1, io.Discard)
	}
}

func BenchmarkChallengesDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Challenges(1, io.Discard)
	}
}

func BenchmarkSurveyValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Survey(1, io.Discard)
	}
}

func BenchmarkAblationDetector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationDetector(1, io.Discard)
	}
}

func BenchmarkAblationUnanimity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationUnanimity(1, io.Discard)
	}
}

func BenchmarkAblationTrafficCutoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationTrafficCutoff(1, io.Discard)
	}
}

func BenchmarkAblationExclusivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationExclusivity(1, io.Discard)
	}
}

// BenchmarkAblationMinVVPs measures the MinVVPs=1 variant directly (the
// unanimity ablation covers 2-vs-1; this isolates the relaxed pipeline).
func BenchmarkAblationMinVVPs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := BuildWorld(SmallWorldConfig(3))
		if err != nil {
			b.Fatal(err)
		}
		if err := w.AdvanceTo(0); err != nil {
			b.Fatal(err)
		}
		cfg := DefaultRunnerConfig(3)
		cfg.MinVVPsPerAS = 1
		if snap := NewRunner(w, cfg).Measure(); len(snap.Reports) == 0 {
			b.Fatal("no reports")
		}
	}
}
