// Package tcpsim implements the minimal TCP endpoint behaviour RoVista's
// side channel depends on, as a pure state machine driven by explicit
// timestamps (the discrete-event simulator in internal/netsim supplies the
// clock and the wire).
//
// The modelled behaviour, from §4.1 of the paper:
//
//   - a SYN to an open port elicits a SYN-ACK;
//   - an unacknowledged SYN-ACK is retransmitted after the RTO (RFC 6298,
//     typically 1–3 s initial, doubling per retry);
//   - an inbound RST (or ACK) for the pending connection cancels the
//     retransmissions;
//   - a SYN to a closed port, or an unexpected SYN-ACK, elicits a RST.
//
// tNode qualification requires exactly these three properties, and the
// package also models the broken variants the scan must reject: hosts that
// never retransmit, and hosts that keep retransmitting after a RST.
package tcpsim

import (
	"fmt"
	"net/netip"
	"sort"
)

// Kind is the TCP segment type (only the flag combinations the measurement
// uses are modelled).
type Kind uint8

// Segment kinds.
const (
	SYN Kind = iota
	SYNACK
	ACK
	RST
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SYN:
		return "SYN"
	case SYNACK:
		return "SYN-ACK"
	case ACK:
		return "ACK"
	case RST:
		return "RST"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Segment is one TCP segment as seen by an endpoint. Peer is the remote
// address from the endpoint's point of view.
type Segment struct {
	Peer      netip.Addr
	PeerPort  uint16
	LocalPort uint16
	Kind      Kind
}

// FlowKey identifies a half-open connection.
type FlowKey struct {
	Peer      netip.Addr
	PeerPort  uint16
	LocalPort uint16
}

func key(s Segment) FlowKey {
	return FlowKey{Peer: s.Peer, PeerPort: s.PeerPort, LocalPort: s.LocalPort}
}

// RTOBehavior selects how the endpoint handles retransmission, covering the
// qualification conditions (a)–(c) from §4.1.
type RTOBehavior uint8

// Behaviours.
const (
	// Compliant retransmits on timeout and stops on RST/ACK.
	Compliant RTOBehavior = iota
	// NoRetransmit never retransmits (fails qualification condition b).
	NoRetransmit
	// IgnoreRST keeps retransmitting even after a RST (fails condition c —
	// it makes "no filtering" and "outbound filtering" indistinguishable).
	IgnoreRST
)

// Config tunes an endpoint.
type Config struct {
	// OpenPorts lists listening ports.
	OpenPorts []uint16
	// InitialRTO is the first retransmission timeout in seconds; the paper
	// observes 1–3 s with 3 s typical (RFC 6298 uses 1 s minimum).
	InitialRTO float64
	// MaxRetries bounds SYN-ACK retransmissions.
	MaxRetries int
	// Behavior selects the retransmission variant.
	Behavior RTOBehavior
	// SilentOnUnexpected suppresses the RST normally sent in response to an
	// unexpected SYN-ACK (such hosts cannot serve as vVPs).
	SilentOnUnexpected bool
	// RespondOnClosed controls whether SYNs to closed ports get a RST.
	RespondOnClosed bool
}

// DefaultConfig returns a compliant endpoint listening on the given ports.
func DefaultConfig(ports ...uint16) Config {
	return Config{
		OpenPorts:       ports,
		InitialRTO:      3.0,
		MaxRetries:      2,
		Behavior:        Compliant,
		RespondOnClosed: true,
	}
}

type pending struct {
	flow     FlowKey
	deadline float64
	retries  int
}

// Endpoint is one TCP host side. It is not safe for concurrent use.
type Endpoint struct {
	cfg     Config
	open    map[uint16]bool
	pending map[FlowKey]*pending
	due     []*pending // Tick scratch: due flows, ordered before emission
}

// New creates an endpoint from cfg.
func New(cfg Config) *Endpoint {
	e := &Endpoint{cfg: cfg, open: make(map[uint16]bool), pending: make(map[FlowKey]*pending)}
	for _, p := range cfg.OpenPorts {
		e.open[p] = true
	}
	if e.cfg.InitialRTO <= 0 {
		e.cfg.InitialRTO = 3.0
	}
	return e
}

// HandleSegment processes an inbound segment at the given time and returns
// the segment to transmit in response, if any. Every modelled behaviour
// responds with at most one segment, so the single-value shape keeps the
// per-packet path allocation-free (a slice return was one heap allocation
// per delivered packet on the measurement hot path).
func (e *Endpoint) HandleSegment(now float64, seg Segment) (Segment, bool) {
	switch seg.Kind {
	case SYN:
		if !e.open[seg.LocalPort] {
			if e.cfg.RespondOnClosed {
				return reply(seg, RST), true
			}
			return Segment{}, false
		}
		k := key(seg)
		if e.cfg.Behavior != NoRetransmit {
			e.pending[k] = &pending{flow: k, deadline: now + e.cfg.InitialRTO}
		}
		return reply(seg, SYNACK), true
	case SYNACK:
		// No modelled endpoint initiates connections, so every SYN-ACK is
		// unexpected: answer with RST unless configured silent.
		if e.cfg.SilentOnUnexpected {
			return Segment{}, false
		}
		return reply(seg, RST), true
	case RST:
		if e.cfg.Behavior != IgnoreRST {
			delete(e.pending, key(seg))
		}
		return Segment{}, false
	case ACK:
		delete(e.pending, key(seg))
		return Segment{}, false
	}
	return Segment{}, false
}

// NextDeadline returns the earliest retransmission deadline, if any.
func (e *Endpoint) NextDeadline() (float64, bool) {
	best := 0.0
	found := false
	for _, p := range e.pending {
		if !found || p.deadline < best {
			best, found = p.deadline, true
		}
	}
	return best, found
}

// Tick fires retransmissions due at or before now, appends the segments to
// transmit onto out, and returns the extended slice. Exhausted flows are
// dropped. Callers on hot paths pass a reused scratch buffer (truncated to
// length zero) so steady-state ticking never allocates.
func (e *Endpoint) Tick(now float64, out []Segment) []Segment {
	e.due = e.due[:0]
	for k, p := range e.pending {
		if p.deadline > now {
			continue
		}
		if p.retries >= e.cfg.MaxRetries {
			delete(e.pending, k)
			continue
		}
		e.due = append(e.due, p)
	}
	// Map iteration order is randomized, but each retransmission draws the
	// host's next IP-ID as it leaves — the side channel the measurement
	// observes — so same-tick flows must emit in a stable order.
	sort.Slice(e.due, func(i, j int) bool {
		a, b := e.due[i].flow, e.due[j].flow
		if c := a.Peer.Compare(b.Peer); c != 0 {
			return c < 0
		}
		if a.PeerPort != b.PeerPort {
			return a.PeerPort < b.PeerPort
		}
		return a.LocalPort < b.LocalPort
	})
	for _, p := range e.due {
		p.retries++
		// Exponential backoff per RFC 6298 §5.5.
		p.deadline = now + e.cfg.InitialRTO*float64(uint(1)<<uint(p.retries))
		out = append(out, Segment{Peer: p.flow.Peer, PeerPort: p.flow.PeerPort, LocalPort: p.flow.LocalPort, Kind: SYNACK})
	}
	return out
}

// PendingCount reports how many half-open connections are awaiting ACK.
func (e *Endpoint) PendingCount() int { return len(e.pending) }

// Reset drops all half-open connection state. Measurement harnesses call it
// between rounds that restart virtual time, since deadlines are absolute.
func (e *Endpoint) Reset() { e.pending = make(map[FlowKey]*pending) }

// Clone returns a fresh endpoint with the same configuration (open ports,
// RTO behaviour) and no connection state. Pair measurements clone the
// endpoints of the hosts they touch so concurrent rounds cannot observe each
// other's half-open flows. The open-port set is written only during New, so
// clones share it; only the pending-flow map is per-clone.
func (e *Endpoint) Clone() *Endpoint {
	return &Endpoint{cfg: e.cfg, open: e.open, pending: make(map[FlowKey]*pending)}
}

// Listening reports whether the port is open.
func (e *Endpoint) Listening(port uint16) bool { return e.open[port] }

// reply builds the response segment mirroring the flow.
func reply(seg Segment, kind Kind) Segment {
	return Segment{Peer: seg.Peer, PeerPort: seg.PeerPort, LocalPort: seg.LocalPort, Kind: kind}
}
