package tcpsim

import (
	"net/netip"
	"testing"
)

var peer = netip.MustParseAddr("198.51.100.9")

func seg(kind Kind, localPort uint16) Segment {
	return Segment{Peer: peer, PeerPort: 40000, LocalPort: localPort, Kind: kind}
}

func TestSynToOpenPortGetsSynAck(t *testing.T) {
	e := New(DefaultConfig(80))
	out, ok := e.HandleSegment(0, seg(SYN, 80))
	if !ok || out.Kind != SYNACK {
		t.Fatalf("out = %+v ok=%v", out, ok)
	}
	if out.Peer != peer || out.PeerPort != 40000 || out.LocalPort != 80 {
		t.Fatalf("reply flow wrong: %+v", out)
	}
	if e.PendingCount() != 1 {
		t.Fatalf("pending = %d", e.PendingCount())
	}
}

func TestSynToClosedPortGetsRst(t *testing.T) {
	e := New(DefaultConfig(80))
	out, ok := e.HandleSegment(0, seg(SYN, 81))
	if !ok || out.Kind != RST {
		t.Fatalf("out = %+v ok=%v", out, ok)
	}
	if e.PendingCount() != 0 {
		t.Fatal("closed-port SYN must not create state")
	}
}

func TestSynToClosedPortSilent(t *testing.T) {
	cfg := DefaultConfig(80)
	cfg.RespondOnClosed = false
	e := New(cfg)
	if out, ok := e.HandleSegment(0, seg(SYN, 81)); ok {
		t.Fatalf("out = %+v, want silence", out)
	}
}

func TestUnexpectedSynAckGetsRst(t *testing.T) {
	e := New(DefaultConfig())
	out, ok := e.HandleSegment(0, seg(SYNACK, 12345))
	if !ok || out.Kind != RST {
		t.Fatalf("out = %+v ok=%v", out, ok)
	}
}

func TestSilentOnUnexpected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SilentOnUnexpected = true
	e := New(cfg)
	if out, ok := e.HandleSegment(0, seg(SYNACK, 12345)); ok {
		t.Fatalf("out = %+v, want silence", out)
	}
}

func TestRetransmissionSchedule(t *testing.T) {
	cfg := DefaultConfig(443)
	cfg.InitialRTO = 3
	cfg.MaxRetries = 2
	e := New(cfg)
	e.HandleSegment(0, seg(SYN, 443))

	d, ok := e.NextDeadline()
	if !ok || d != 3 {
		t.Fatalf("deadline = %v %v, want 3", d, ok)
	}
	// Nothing fires early.
	if out := e.Tick(2.9, nil); len(out) != 0 {
		t.Fatalf("early tick fired: %+v", out)
	}
	// First retransmission at t=3.
	out := e.Tick(3, nil)
	if len(out) != 1 || out[0].Kind != SYNACK {
		t.Fatalf("first retransmit = %+v", out)
	}
	// Backoff: next deadline at 3 + 3*2^1 = 9.
	d, _ = e.NextDeadline()
	if d != 9 {
		t.Fatalf("backoff deadline = %v, want 9", d)
	}
	out = e.Tick(9, nil)
	if len(out) != 1 {
		t.Fatalf("second retransmit = %+v", out)
	}
	// Retries exhausted: next tick drops the flow silently.
	out = e.Tick(100, nil)
	if len(out) != 0 {
		t.Fatalf("exhausted flow fired: %+v", out)
	}
	if e.PendingCount() != 0 {
		t.Fatal("flow should be dropped after max retries")
	}
}

func TestTickAppendsToScratchBuffer(t *testing.T) {
	e := New(DefaultConfig(443))
	e.HandleSegment(0, seg(SYN, 443))
	buf := make([]Segment, 0, 4)
	out := e.Tick(3, buf)
	if len(out) != 1 || out[0].Kind != SYNACK {
		t.Fatalf("tick into scratch = %+v", out)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("Tick must append into the provided buffer")
	}
}

func TestRstCancelsRetransmission(t *testing.T) {
	e := New(DefaultConfig(443))
	e.HandleSegment(0, seg(SYN, 443))
	e.HandleSegment(1, seg(RST, 443))
	if e.PendingCount() != 0 {
		t.Fatal("RST should cancel the pending flow")
	}
	if out := e.Tick(10, nil); len(out) != 0 {
		t.Fatalf("cancelled flow fired: %+v", out)
	}
}

func TestAckCancelsRetransmission(t *testing.T) {
	e := New(DefaultConfig(443))
	e.HandleSegment(0, seg(SYN, 443))
	e.HandleSegment(1, seg(ACK, 443))
	if e.PendingCount() != 0 {
		t.Fatal("ACK should cancel the pending flow")
	}
}

func TestIgnoreRSTBehavior(t *testing.T) {
	cfg := DefaultConfig(443)
	cfg.Behavior = IgnoreRST
	e := New(cfg)
	e.HandleSegment(0, seg(SYN, 443))
	e.HandleSegment(1, seg(RST, 443))
	if e.PendingCount() != 1 {
		t.Fatal("IgnoreRST endpoint must keep retransmitting after RST")
	}
	if out := e.Tick(3, nil); len(out) != 1 {
		t.Fatalf("expected retransmission, got %+v", out)
	}
}

func TestNoRetransmitBehavior(t *testing.T) {
	cfg := DefaultConfig(443)
	cfg.Behavior = NoRetransmit
	e := New(cfg)
	out, ok := e.HandleSegment(0, seg(SYN, 443))
	if !ok || out.Kind != SYNACK {
		t.Fatalf("SYN-ACK still expected, got %+v ok=%v", out, ok)
	}
	if e.PendingCount() != 0 {
		t.Fatal("NoRetransmit must not track state")
	}
	if _, ok := e.NextDeadline(); ok {
		t.Fatal("no deadline expected")
	}
}

func TestIndependentFlows(t *testing.T) {
	e := New(DefaultConfig(80, 443))
	other := netip.MustParseAddr("203.0.113.7")
	e.HandleSegment(0, Segment{Peer: peer, PeerPort: 1000, LocalPort: 80, Kind: SYN})
	e.HandleSegment(0, Segment{Peer: other, PeerPort: 1000, LocalPort: 443, Kind: SYN})
	if e.PendingCount() != 2 {
		t.Fatalf("pending = %d, want 2", e.PendingCount())
	}
	// RST for one flow leaves the other.
	e.HandleSegment(1, Segment{Peer: peer, PeerPort: 1000, LocalPort: 80, Kind: RST})
	if e.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", e.PendingCount())
	}
	out := e.Tick(3, nil)
	if len(out) != 1 || out[0].Peer != other {
		t.Fatalf("surviving retransmission = %+v", out)
	}
}

func TestCloneSharesOpenPortsNotFlows(t *testing.T) {
	e := New(DefaultConfig(80, 443))
	e.HandleSegment(0, seg(SYN, 80))
	c := e.Clone()
	if !c.Listening(80) || !c.Listening(443) || c.Listening(22) {
		t.Fatal("clone lost the open-port set")
	}
	if c.PendingCount() != 0 {
		t.Fatal("clone inherited half-open flows")
	}
	// Flows on the clone must not leak back to the original.
	c.HandleSegment(0, seg(SYN, 443))
	if e.PendingCount() != 1 {
		t.Fatalf("original pending = %d after clone activity, want 1", e.PendingCount())
	}
}

func TestListening(t *testing.T) {
	e := New(DefaultConfig(22, 80))
	if !e.Listening(22) || !e.Listening(80) || e.Listening(443) {
		t.Fatal("Listening wrong")
	}
}

func TestZeroRTODefaults(t *testing.T) {
	e := New(Config{OpenPorts: []uint16{80}})
	e.HandleSegment(0, seg(SYN, 80))
	// Zero InitialRTO in config must default, not hot-loop.
	if d, ok := e.NextDeadline(); !ok || d <= 0 {
		t.Fatalf("deadline = %v %v", d, ok)
	}
}

func TestKindString(t *testing.T) {
	if SYN.String() != "SYN" || SYNACK.String() != "SYN-ACK" || RST.String() != "RST" || ACK.String() != "ACK" {
		t.Fatal("kind strings wrong")
	}
}
