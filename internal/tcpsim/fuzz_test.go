package tcpsim

import (
	"net/netip"
	"testing"
)

// driveScript interprets fuzz bytes as a segment/tick script against a fresh
// endpoint and returns a trace of every emitted segment. Two bytes per op:
// the first selects the action and flow, the second perturbs ports/time.
func driveScript(e *Endpoint, data []byte) []Segment {
	var trace []Segment
	now := 0.0
	var out []Segment
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		seg := Segment{
			Peer:      netip.AddrFrom4([4]byte{10, 0, arg & 3, op & 7}),
			PeerPort:  40000 + uint16(arg&15),
			LocalPort: []uint16{443, 80, 7, 40000}[op>>6],
			Kind:      Kind(op & 3),
		}
		switch (op >> 3) & 3 {
		case 0, 1: // deliver a segment
			if reply, ok := e.HandleSegment(now, seg); ok {
				trace = append(trace, reply)
			}
		case 2: // advance time and collect retransmissions
			now += float64(arg&7) + 0.5
			out = e.Tick(now, out[:0])
			trace = append(trace, out...)
		case 3: // reset mid-script
			if arg == 0xff {
				e.Reset()
			} else if reply, ok := e.HandleSegment(now, seg); ok {
				trace = append(trace, reply)
			}
		}
		if e.PendingCount() < 0 {
			panic("negative pending count")
		}
	}
	return trace
}

// FuzzHandleSegment throws arbitrary segment/tick scripts at endpoints of
// every behaviour variant and checks structural invariants: no panics, the
// pending-set bookkeeping stays consistent with NextDeadline, and replaying
// the identical script on a fresh endpoint reproduces the identical trace
// (the determinism the measurement pipeline's seeding contract rests on).
func FuzzHandleSegment(f *testing.F) {
	f.Add([]byte{0x00, 0x01}, uint8(0), false, false)
	f.Add([]byte{0x01, 0x02, 0x10, 0x03, 0x01, 0x04}, uint8(1), true, false)
	f.Add([]byte{0x41, 0xaa, 0x18, 0xff, 0x02, 0x00, 0x13, 0x07}, uint8(2), false, true)
	f.Add([]byte{0xc1, 0x01, 0x81, 0x02, 0x11, 0x06, 0x19, 0xff}, uint8(0), true, true)
	f.Fuzz(func(t *testing.T, data []byte, behavior uint8, silent, respondClosed bool) {
		cfg := DefaultConfig(443, 80)
		cfg.Behavior = RTOBehavior(behavior % 3)
		cfg.SilentOnUnexpected = silent
		cfg.RespondOnClosed = respondClosed
		cfg.MaxRetries = int(behavior % 4)

		e := New(cfg)
		trace := driveScript(e, data)

		if _, ok := e.NextDeadline(); ok && e.PendingCount() == 0 {
			t.Fatal("NextDeadline reports a deadline with no pending flows")
		}
		if e.PendingCount() > 0 {
			if _, ok := e.NextDeadline(); !ok {
				t.Fatal("pending flows but no deadline")
			}
		}

		// Determinism: a fresh endpoint fed the same script must emit the
		// same trace, and a clone taken up front must behave like the
		// original without sharing state.
		replay := driveScript(New(cfg), data)
		if len(replay) != len(trace) {
			t.Fatalf("replay emitted %d segments, original %d", len(replay), len(trace))
		}
		for i := range trace {
			if trace[i] != replay[i] {
				t.Fatalf("replay diverged at segment %d: %+v vs %+v", i, trace[i], replay[i])
			}
		}

		clone := New(cfg)
		cl := clone.Clone()
		driveScript(cl, data)
		if clone.PendingCount() != 0 {
			t.Fatal("driving a clone mutated its source endpoint")
		}
	})
}
