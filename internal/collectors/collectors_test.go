package collectors

import (
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// graph: 1 and 2 are tier providers; 3 originates a valid prefix, 4 an
// invalid one, 5 originates the victim's prefix invalidly while 6 announces
// it validly (shared).
func build(t *testing.T) (*bgp.Graph, *rpki.VRPSet) {
	t.Helper()
	g := bgp.NewGraph()
	g.Link(1, 2, bgp.Peer)
	for _, asn := range []inet.ASN{3, 4} {
		g.Link(1, asn, bgp.Customer)
		g.Link(2, asn, bgp.Customer)
	}
	// Split the shared-prefix origins across feeders so the collector's
	// union view contains both (had both fed through the same providers,
	// the deterministic tiebreak could hide the valid origin entirely —
	// which is precisely the paper's limited-visibility caveat).
	g.Link(1, 5, bgp.Customer)
	g.Link(2, 6, bgp.Customer)
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	g.AS(4).Originated = []netip.Prefix{pfx("10.9.0.0/20")} // exclusively invalid
	g.AS(5).Originated = []netip.Prefix{pfx("10.6.0.0/16")} // invalid (shared)
	g.AS(6).Originated = []netip.Prefix{pfx("10.6.0.0/16")} // valid owner
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	vrps := rpki.NewVRPSet([]rpki.VRP{
		{ASN: 3, Prefix: pfx("10.3.0.0/16"), MaxLength: 16},
		{ASN: 99, Prefix: pfx("10.9.0.0/16"), MaxLength: 16},
		{ASN: 6, Prefix: pfx("10.6.0.0/16"), MaxLength: 16},
	})
	return g, vrps
}

func TestSnapshotAndOrigins(t *testing.T) {
	g, _ := build(t)
	c := &Collector{Name: "rv", Feeders: []inet.ASN{1, 2}}
	v := c.Snapshot(g)
	if got := len(v.Prefixes()); got != 3 {
		t.Fatalf("prefixes = %d, want 3", got)
	}
	origins := v.Origins(pfx("10.6.0.0/16"))
	if len(origins) != 2 || origins[0] != 5 || origins[1] != 6 {
		t.Fatalf("origins = %v", origins)
	}
	// Feeder paths start with the feeder.
	for _, r := range v.Routes(pfx("10.3.0.0/16")) {
		if r.Path[0] != r.Feeder {
			t.Fatalf("path %v does not start at feeder %v", r.Path, r.Feeder)
		}
		if r.Origin() != 3 {
			t.Fatalf("origin = %v", r.Origin())
		}
	}
}

func TestPartialVisibility(t *testing.T) {
	g, _ := build(t)
	// A collector fed only by AS 3 sees only what AS 3's table holds;
	// notably AS 4's prefix is visible via 3's providers, but a collector
	// with zero feeders sees nothing.
	empty := &Collector{Name: "empty"}
	if n := len(empty.Snapshot(g).Prefixes()); n != 0 {
		t.Fatalf("empty collector saw %d prefixes", n)
	}
	ghost := &Collector{Name: "ghost", Feeders: []inet.ASN{999}}
	if n := len(ghost.Snapshot(g).Prefixes()); n != 0 {
		t.Fatalf("ghost feeder saw %d prefixes", n)
	}
}

func TestClassify(t *testing.T) {
	g, vrps := build(t)
	c := &Collector{Feeders: []inet.ASN{1, 2}}
	st := c.Snapshot(g).Classify(vrps)
	if st.Total != 3 {
		t.Fatalf("total = %d", st.Total)
	}
	if st.Covered != 3 {
		t.Fatalf("covered = %d, want 3", st.Covered)
	}
	if st.Invalid != 2 {
		t.Fatalf("invalid = %d, want 2 (10.9/20 and shared 10.6/16)", st.Invalid)
	}
	if st.Exclusive != 1 {
		t.Fatalf("exclusive = %d, want 1 (only 10.9/20)", st.Exclusive)
	}
}

func TestExclusivelyInvalid(t *testing.T) {
	g, vrps := build(t)
	c := &Collector{Feeders: []inet.ASN{1, 2}}
	got := c.Snapshot(g).ExclusivelyInvalid(vrps)
	if len(got) != 1 || got[0] != pfx("10.9.0.0/20") {
		t.Fatalf("exclusive = %v", got)
	}
}

func TestPathsVia(t *testing.T) {
	g, _ := build(t)
	c := &Collector{Feeders: []inet.ASN{1}}
	v := c.Snapshot(g)
	via := v.PathsVia(pfx("10.3.0.0/16"), 3)
	if len(via) != 1 {
		t.Fatalf("paths via origin = %v", via)
	}
	if len(v.PathsVia(pfx("10.3.0.0/16"), 42)) != 0 {
		t.Fatal("phantom AS on path")
	}
}

func TestFleet(t *testing.T) {
	f := NewFleet([]inet.ASN{10, 20}, 3)
	if len(f.Probes) != 6 {
		t.Fatalf("probes = %d", len(f.Probes))
	}
	if len(f.InAS(10)) != 3 || len(f.InAS(30)) != 0 {
		t.Fatal("InAS wrong")
	}
	asns := f.ASNs()
	if len(asns) != 2 || asns[0] != 10 || asns[1] != 20 {
		t.Fatalf("ASNs = %v", asns)
	}
	// IDs unique.
	seen := map[int]bool{}
	for _, p := range f.Probes {
		if seen[p.ID] {
			t.Fatalf("duplicate probe id %d", p.ID)
		}
		seen[p.ID] = true
	}
}
