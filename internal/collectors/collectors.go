// Package collectors models the public BGP observation infrastructure the
// paper builds on: RouteViews/RIS-style collectors that receive full tables
// from a limited set of feeder ASes (so their view of the Internet is
// deliberately partial — the source of RoVista's "false tNode" problem and
// its coverage limitation), and RIPE-Atlas-style probe fleets used for
// traceroute cross-validation.
package collectors

import (
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// RouteObs is one observed route at a collector.
type RouteObs struct {
	Prefix netip.Prefix
	Path   []inet.ASN // as exported by the feeder (feeder first, origin last)
	Feeder inet.ASN
}

// Origin returns the route's origin AS.
func (r RouteObs) Origin() inet.ASN {
	if len(r.Path) == 0 {
		return r.Feeder
	}
	return r.Path[len(r.Path)-1]
}

// Collector is a RouteViews-style vantage point.
type Collector struct {
	Name    string
	Feeders []inet.ASN
}

// View is a collector RIB snapshot.
type View struct {
	byPrefix map[netip.Prefix][]RouteObs
}

// Snapshot collects each feeder's current best routes.
func (c *Collector) Snapshot(g *bgp.Graph) *View {
	v := &View{byPrefix: make(map[netip.Prefix][]RouteObs)}
	for _, f := range c.Feeders {
		a := g.AS(f)
		if a == nil {
			continue
		}
		for _, r := range a.Routes() {
			path := make([]inet.ASN, 0, len(r.Path)+1)
			path = append(path, f)
			path = append(path, r.Path...)
			v.byPrefix[r.Prefix] = append(v.byPrefix[r.Prefix], RouteObs{
				Prefix: r.Prefix,
				Path:   path,
				Feeder: f,
			})
		}
	}
	return v
}

// Prefixes returns every observed prefix in deterministic order.
func (v *View) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(v.byPrefix))
	for p := range v.byPrefix {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// Routes returns all observations for a prefix.
func (v *View) Routes(p netip.Prefix) []RouteObs { return v.byPrefix[p.Masked()] }

// Origins returns the distinct origin ASes observed for a prefix.
func (v *View) Origins(p netip.Prefix) []inet.ASN {
	seen := map[inet.ASN]bool{}
	var out []inet.ASN
	for _, r := range v.byPrefix[p.Masked()] {
		o := r.Origin()
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathsVia returns the observed AS paths for a prefix that include asn.
func (v *View) PathsVia(p netip.Prefix, asn inet.ASN) [][]inet.ASN {
	var out [][]inet.ASN
	for _, r := range v.byPrefix[p.Masked()] {
		for _, hop := range r.Path {
			if hop == asn {
				out = append(out, r.Path)
				break
			}
		}
	}
	return out
}

// ValidityStats summarizes a snapshot against a VRP set (Figure 1's series).
type ValidityStats struct {
	Total     int // distinct prefixes observed
	Covered   int // covered by at least one VRP
	Invalid   int // at least one origin validates Invalid
	Exclusive int // every observed origin is Invalid ("exclusively invalid")
}

// Classify computes coverage/invalidity statistics for the snapshot.
func (v *View) Classify(vrps *rpki.VRPSet) ValidityStats {
	var st ValidityStats
	for p, obs := range v.byPrefix {
		st.Total++
		if vrps.CoversPrefix(p) {
			st.Covered++
		}
		anyInvalid, allInvalid := false, true
		for _, r := range obs {
			switch vrps.Validate(p, r.Origin()) {
			case rpki.Invalid:
				anyInvalid = true
			default:
				allInvalid = false
			}
		}
		if anyInvalid {
			st.Invalid++
			if allInvalid {
				st.Exclusive++
			}
		}
	}
	return st
}

// ExclusivelyInvalid returns the prefixes for which every observed origin is
// RPKI-invalid — the paper's test prefixes (§3.2): traffic for them cannot
// be rescued by a legitimate announcement of the same prefix.
func (v *View) ExclusivelyInvalid(vrps *rpki.VRPSet) []netip.Prefix {
	var out []netip.Prefix
	for p, obs := range v.byPrefix {
		if len(obs) == 0 {
			continue
		}
		all := true
		for _, r := range obs {
			if vrps.Validate(p, r.Origin()) != rpki.Invalid {
				all = false
				break
			}
		}
		if all {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// Probe is a RIPE-Atlas-style measurement probe hosted inside an AS.
type Probe struct {
	ID  int
	ASN inet.ASN
}

// Fleet is a set of probes, indexable by AS.
type Fleet struct {
	Probes []Probe
	byASN  map[inet.ASN][]Probe
}

// NewFleet builds a fleet with n probes per AS for the given ASes.
func NewFleet(asns []inet.ASN, perAS int) *Fleet {
	f := &Fleet{byASN: make(map[inet.ASN][]Probe)}
	id := 1
	for _, asn := range asns {
		for i := 0; i < perAS; i++ {
			p := Probe{ID: id, ASN: asn}
			id++
			f.Probes = append(f.Probes, p)
			f.byASN[asn] = append(f.byASN[asn], p)
		}
	}
	return f
}

// InAS returns the probes hosted by asn.
func (f *Fleet) InAS(asn inet.ASN) []Probe { return f.byASN[asn] }

// ASNs lists the covered ASes in ascending order.
func (f *Fleet) ASNs() []inet.ASN {
	out := make([]inet.ASN, 0, len(f.byASN))
	for a := range f.byASN {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
