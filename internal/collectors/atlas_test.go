package collectors

import (
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/rpki"
)

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

// campaignWorld: AS 1 provider; AS 2 filters (cannot reach the invalid
// target), AS 3 does not; AS 4 announces the invalid prefix and hosts the
// target.
func campaignWorld(t *testing.T) *netsim.Network {
	t.Helper()
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 99, Prefix: pfx("10.4.0.0/16"), MaxLength: 16}})
	g := bgp.NewGraph()
	g.Link(1, 2, bgp.Customer)
	g.Link(1, 3, bgp.Customer)
	g.Link(1, 4, bgp.Customer)
	g.AS(2).Originated = []netip.Prefix{pfx("10.2.0.0/16")}
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	g.AS(4).Originated = []netip.Prefix{pfx("10.4.0.0/16")}
	g.AS(2).Policy = rov.Full()
	g.AS(2).VRPs = vrps
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	n := netsim.NewNetwork(g)
	n.AddHost(netsim.NewHost(ip("10.4.0.1"), 4, ipid.Global, 1, 443))
	return n
}

func TestRunCampaignConsensus(t *testing.T) {
	n := campaignWorld(t)
	fleet := NewFleet([]inet.ASN{2, 3}, 5)
	stats := fleet.RunCampaign(n, []netip.Addr{ip("10.4.0.1")}, 443, 0, 1)

	if stats.Measurements != 10 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(stats.InconsistentASes) != 0 {
		t.Fatalf("unexpected inconsistency: %v", stats.InconsistentASes)
	}
	if stats.Tuples[2][ip("10.4.0.1")] {
		t.Fatal("filtering AS should not reach the invalid target")
	}
	if !stats.Tuples[3][ip("10.4.0.1")] {
		t.Fatal("non-filtering AS should reach the invalid target")
	}
}

func TestRunCampaignFailureNoise(t *testing.T) {
	n := campaignWorld(t)
	fleet := NewFleet([]inet.ASN{2, 3}, 10)
	stats := fleet.RunCampaign(n, []netip.Addr{ip("10.4.0.1")}, 443, 0.3, 2)
	if stats.Failed == 0 {
		t.Fatal("failure injection produced no failures")
	}
	// Consensus should still be correct from the surviving measurements.
	if v, ok := stats.Tuples[3][ip("10.4.0.1")]; ok && !v {
		t.Fatal("noise flipped the consensus")
	}
	if stats.RetentionRate() >= 1 || stats.RetentionRate() <= 0 {
		t.Fatalf("retention = %v", stats.RetentionRate())
	}
}

func TestRunCampaignAllFailed(t *testing.T) {
	n := campaignWorld(t)
	fleet := NewFleet([]inet.ASN{2}, 3)
	stats := fleet.RunCampaign(n, []netip.Addr{ip("10.4.0.1")}, 443, 1.0, 3)
	if stats.Failed != stats.Measurements {
		t.Fatalf("stats = %+v", stats)
	}
	if len(stats.Tuples) != 0 {
		t.Fatal("no tuples expected when everything failed")
	}
}
