package collectors

import (
	"math/rand"
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/trace"
)

// ProbeResult is one probe's traceroute outcome toward one target.
type ProbeResult struct {
	Probe   Probe
	Target  netip.Addr
	Reached bool
	// Failed marks measurements that returned nothing (probe-side errors,
	// the paper's RIPE-Atlas-API noise).
	Failed bool
}

// CampaignStats summarizes a §6.3.1-style campaign.
type CampaignStats struct {
	Measurements int
	Failed       int
	// InconsistentASes lists ASes whose probes disagreed on some target;
	// the paper excludes these (0.8% of results).
	InconsistentASes []inet.ASN
	// Tuples holds the surviving (AS, target) → reached consensus.
	Tuples map[inet.ASN]map[netip.Addr]bool
}

// RetentionRate is the fraction of measurements that survived filtering.
func (s CampaignStats) RetentionRate() float64 {
	if s.Measurements == 0 {
		return 0
	}
	return 1 - float64(s.Failed)/float64(s.Measurements)
}

// RunCampaign executes TCP traceroutes from every probe toward every target
// with per-measurement failure noise, then applies the paper's consistency
// filter: an AS's tuples survive only when all of its (non-failed) probes
// agree on every target.
func (f *Fleet) RunCampaign(net *netsim.Network, targets []netip.Addr, port uint16, failRate float64, seed int64) CampaignStats {
	rng := rand.New(rand.NewSource(seed))
	stats := CampaignStats{Tuples: make(map[inet.ASN]map[netip.Addr]bool)}

	type vote struct{ reached, total int }
	votes := make(map[inet.ASN]map[netip.Addr]*vote)
	for _, p := range f.Probes {
		for _, tgt := range targets {
			stats.Measurements++
			if rng.Float64() < failRate {
				stats.Failed++
				continue
			}
			res := trace.TCPTraceroute(net, p.ASN, tgt, port)
			if votes[p.ASN] == nil {
				votes[p.ASN] = make(map[netip.Addr]*vote)
			}
			v := votes[p.ASN][tgt]
			if v == nil {
				v = &vote{}
				votes[p.ASN][tgt] = v
			}
			v.total++
			if res.Reached {
				v.reached++
			}
		}
	}

	for asn, byTarget := range votes {
		consistent := true
		for _, v := range byTarget {
			if v.reached != 0 && v.reached != v.total {
				consistent = false
				break
			}
		}
		if !consistent {
			stats.InconsistentASes = append(stats.InconsistentASes, asn)
			continue
		}
		m := make(map[netip.Addr]bool, len(byTarget))
		for tgt, v := range byTarget {
			m[tgt] = v.reached > 0
		}
		stats.Tuples[asn] = m
	}
	sort.Slice(stats.InconsistentASes, func(i, j int) bool {
		return stats.InconsistentASes[i] < stats.InconsistentASes[j]
	})
	return stats
}
