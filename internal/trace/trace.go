// Package trace implements TCP traceroute over the simulated data plane,
// at AS-path granularity — the tool the paper uses for cross-validation
// (§6.3.1) and for diagnosing collateral damage, customer exemptions and
// default routes (§7.4, §7.6). Probes use the same destination port as the
// measurement so the target actually answers, mirroring the paper's method.
package trace

import (
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/tcpsim"
)

// Result is one traceroute.
type Result struct {
	Src     inet.ASN
	Dst     netip.Addr
	Port    uint16
	Hops    []inet.ASN // AS-level path actually traversed
	Reached bool       // the last hop is the target host's AS and it answered
	Drop    netsim.DropReason
}

// LastHop returns the final AS on the path, or 0 for an empty path.
func (r Result) LastHop() inet.ASN {
	if len(r.Hops) == 0 {
		return 0
	}
	return r.Hops[len(r.Hops)-1]
}

// FirstHopAfterSource returns the first AS after the source, or 0 when the
// probe never left the source AS — the hop the §7.6 analyses classify
// (customer? single upstream?).
func (r Result) FirstHopAfterSource() inet.ASN {
	if len(r.Hops) < 2 {
		return 0
	}
	return r.Hops[1]
}

// TCPTraceroute issues an AS-granularity TCP traceroute from srcASN to
// dst:port. Reachability additionally requires the destination host to be
// listening on the port, as a real TCP traceroute's final hop does.
func TCPTraceroute(net *netsim.Network, srcASN inet.ASN, dst netip.Addr, port uint16) Result {
	pkt := netsim.Packet{
		Src:     netip.Addr{}, // filled below when a source host exists
		Dst:     dst,
		SrcPort: 33434,
		DstPort: port,
		Kind:    tcpsim.SYN,
	}
	// Use an address inside the source AS when one is attached, so
	// source-sensitive filters behave as they would for real probes.
	if a := net.Graph.AS(srcASN); a != nil && len(a.Originated) > 0 {
		pkt.Src = a.Originated[0].Addr()
	}
	path, host, reason := net.Trace(srcASN, pkt)
	res := Result{Src: srcASN, Dst: dst, Port: port, Hops: path, Drop: reason}
	if reason == netsim.DropNone && host != nil && host.TCP.Listening(port) {
		res.Reached = true
	}
	return res
}

// Campaign runs traceroutes from every source AS to every destination and
// returns the results keyed by (source, destination).
func Campaign(net *netsim.Network, sources []inet.ASN, dests []netip.Addr, port uint16) map[inet.ASN]map[netip.Addr]Result {
	out := make(map[inet.ASN]map[netip.Addr]Result, len(sources))
	for _, src := range sources {
		m := make(map[netip.Addr]Result, len(dests))
		for _, d := range dests {
			m[d] = TCPTraceroute(net, src, d, port)
		}
		out[src] = m
	}
	return out
}
