package trace

import (
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/netsim"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

func build(t *testing.T) *netsim.Network {
	t.Helper()
	g := bgp.NewGraph()
	g.Link(10, 1, bgp.Customer)
	g.Link(10, 2, bgp.Customer)
	g.Link(2, 3, bgp.Customer)
	g.AS(1).Originated = []netip.Prefix{pfx("10.1.0.0/16")}
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	n := netsim.NewNetwork(g)
	n.AddHost(netsim.NewHost(ip("10.3.0.1"), 3, ipid.Global, 1, 443))
	return n
}

func TestTCPTracerouteReached(t *testing.T) {
	n := build(t)
	res := TCPTraceroute(n, 1, ip("10.3.0.1"), 443)
	if !res.Reached {
		t.Fatalf("not reached: %+v", res)
	}
	want := []inet.ASN{1, 10, 2, 3}
	if len(res.Hops) != len(want) {
		t.Fatalf("hops = %v, want %v", res.Hops, want)
	}
	for i := range want {
		if res.Hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", res.Hops, want)
		}
	}
	if res.LastHop() != 3 {
		t.Fatalf("LastHop = %v", res.LastHop())
	}
	if res.FirstHopAfterSource() != 10 {
		t.Fatalf("FirstHopAfterSource = %v", res.FirstHopAfterSource())
	}
}

func TestTCPTracerouteClosedPort(t *testing.T) {
	n := build(t)
	res := TCPTraceroute(n, 1, ip("10.3.0.1"), 8080)
	if res.Reached {
		t.Fatal("closed port must not count as reached")
	}
	if res.LastHop() != 3 {
		t.Fatalf("path should still terminate at the host AS: %v", res.Hops)
	}
}

func TestTCPTracerouteNoRoute(t *testing.T) {
	n := build(t)
	res := TCPTraceroute(n, 1, ip("99.9.9.9"), 443)
	if res.Reached || res.Drop != netsim.DropNoRoute {
		t.Fatalf("res = %+v", res)
	}
}

func TestTCPTracerouteNoHost(t *testing.T) {
	n := build(t)
	res := TCPTraceroute(n, 1, ip("10.3.0.99"), 443)
	if res.Reached || res.Drop != netsim.DropNoHost {
		t.Fatalf("res = %+v", res)
	}
}

func TestTCPTracerouteFiltered(t *testing.T) {
	n := build(t)
	n.IngressFilter[3] = func(pkt netsim.Packet) bool { return true }
	res := TCPTraceroute(n, 1, ip("10.3.0.1"), 443)
	if res.Reached || res.Drop != netsim.DropIngress {
		t.Fatalf("res = %+v", res)
	}
}

func TestEmptyResultHelpers(t *testing.T) {
	var r Result
	if r.LastHop() != 0 || r.FirstHopAfterSource() != 0 {
		t.Fatal("empty result helpers wrong")
	}
}

func TestCampaign(t *testing.T) {
	n := build(t)
	out := Campaign(n, []inet.ASN{1, 2}, []netip.Addr{ip("10.3.0.1")}, 443)
	if len(out) != 2 {
		t.Fatalf("sources = %d", len(out))
	}
	if !out[1][ip("10.3.0.1")].Reached || !out[2][ip("10.3.0.1")].Reached {
		t.Fatal("both sources should reach")
	}
	// Paths differ per source.
	if len(out[2][ip("10.3.0.1")].Hops) >= len(out[1][ip("10.3.0.1")].Hops) {
		t.Fatal("AS 2 should have the shorter path")
	}
}
