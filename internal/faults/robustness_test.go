// Package faults_test holds the metamorphic robustness harness: it measures
// full worlds through internal/core under every fault profile and asserts the
// three headline properties the fault layer exists to check —
//
//  1. fixed-seed rounds are bit-for-bit deterministic, faults included, at
//     any worker count;
//  2. ROV classification stays accurate (F1 against data-plane ground truth)
//     both clean and under the paper-calibrated noise profile;
//  3. no fault profile silently flips a fully-protected AS to "unprotected":
//     a flip is only acceptable when the round's own discard evidence
//     (unusable pairs, retries, dropped vVPs) lights up for that AS.
package faults_test

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
)

// robustRound builds a world with the profile armed at construction, runs
// one full measurement round with the pipeline's fault countermeasures on,
// and returns the runner (for oracle scoring) and the snapshot.
func robustRound(t testing.TB, seed int64, prof faults.Profile, workers int) (*core.Runner, *core.Snapshot) {
	t.Helper()
	wcfg := core.SmallWorldConfig(seed)
	wcfg.Faults = prof
	w, err := core.BuildWorld(wcfg)
	if err != nil {
		t.Fatalf("BuildWorld: %v", err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	cfg := core.DefaultRunnerConfig(seed)
	cfg.Workers = workers
	cfg.RecordPairs = true
	if prof.Enabled() {
		cfg.Faults = prof
		cfg.PairRetries = 2
		cfg.RetryBackoff = 2
		cfg.RequalifyVVPs = true
	}
	r := core.NewRunner(w, cfg)
	return r, r.Measure()
}

// TestRobustnessDeterminismUnderFaults: property 1. The full snapshot —
// reports, raw pair samples, and the fault counters themselves — must be
// identical for any worker count, for every profile.
func TestRobustnessDeterminismUnderFaults(t *testing.T) {
	for _, name := range faults.Names() {
		t.Run(name, func(t *testing.T) {
			prof, err := faults.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			_, serial := robustRound(t, 11, prof, 1)
			_, parallel := robustRound(t, 11, prof, 4)

			sf, pf := serial.Metrics.Faults, parallel.Metrics.Faults
			if sf != pf {
				t.Errorf("fault counters diverged across worker counts:\n serial:   %+v\n parallel: %+v", sf, pf)
			}
			serial.Metrics, parallel.Metrics = nil, nil
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatal("snapshot differs between 1 and 4 workers under faults")
			}
		})
	}
}

// confusionFor accumulates the protected-AS confusion matrix for one round:
// truth is the data-plane oracle (≥50% of tNodes unreachable), prediction is
// the measured report score. ASes the round refused to score (insufficient
// or discarded data) are excluded — refusing is the correct degraded answer
// and is what property 3 checks separately.
func confusionFor(r *core.Runner, snap *core.Snapshot, c *faults.Confusion) {
	for asn, rep := range snap.Reports {
		truth := r.OracleScore(asn, snap.TNodes) >= 50
		c.Add(truth, rep.Score >= 50)
	}
}

// TestRobustnessF1: property 2. Aggregated over a few seeds, classification
// F1 against ground truth must clear 0.90 clean and 0.80 under the paper
// noise profile.
func TestRobustnessF1(t *testing.T) {
	seeds := []int64{5, 11, 17}
	for _, tc := range []struct {
		profile string
		minF1   float64
	}{
		{"none", 0.90},
		{"paper", 0.80},
	} {
		t.Run(tc.profile, func(t *testing.T) {
			prof, err := faults.ByName(tc.profile)
			if err != nil {
				t.Fatal(err)
			}
			var c faults.Confusion
			for _, seed := range seeds {
				r, snap := robustRound(t, seed, prof, 0)
				if snap.Status != pipeline.RoundOK {
					t.Fatalf("seed %d: round degraded: %v", seed, snap.Status)
				}
				confusionFor(r, snap, &c)
			}
			if c.Total() < 10 {
				t.Fatalf("only %d scored ASes across %d seeds — harness too weak to assert F1", c.Total(), len(seeds))
			}
			if f1 := c.F1(); f1 < tc.minF1 {
				t.Fatalf("F1 = %.3f < %.2f (confusion %+v)", f1, tc.minF1, c)
			}
		})
	}
}

// TestRobustnessNoSilentFlips: property 3. Under every fault profile, a
// fully-protected AS (oracle score 100) may only be reported "unprotected"
// (score < 50) when the round's own evidence for that AS lights up:
// unusable or retried pairs among its vVPs, or round-level vVP drops. A
// flip with an entirely clean per-AS evidence trail is the failure mode the
// paper's consistency checks exist to prevent.
func TestRobustnessNoSilentFlips(t *testing.T) {
	for _, name := range []string{"paper", "harsh"} {
		t.Run(name, func(t *testing.T) {
			prof, err := faults.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []int64{5, 11, 17} {
				r, snap := robustRound(t, seed, prof, 0)
				if snap.Status.InsufficientData() {
					continue // a degraded round makes no per-AS claims at all
				}
				vvpsOf := make(map[inet.ASN]map[string]bool)
				for asn, vvps := range snap.VVPsByAS {
					set := make(map[string]bool, len(vvps))
					for _, v := range vvps {
						set[v.Addr.String()] = true
					}
					vvpsOf[asn] = set
				}
				for asn, rep := range snap.Reports {
					if r.OracleScore(asn, snap.TNodes) < 100 || rep.Score >= 50 {
						continue
					}
					// Flip detected: demand per-AS fault evidence.
					evidence := !rep.Unanimous ||
						snap.Metrics.Faults.VVPsDropped > 0
					for _, pr := range snap.PairResults {
						if !vvpsOf[asn][pr.VVP.String()] {
							continue
						}
						if !pr.Usable || pr.Attempts > 1 {
							evidence = true
							break
						}
					}
					if !evidence {
						t.Errorf("seed %d: fully-ROV AS%d flipped to score %.0f with no discard evidence",
							seed, asn, rep.Score)
					}
				}
			}
		})
	}
}

// TestRobustnessSweep is the benchmark harness: it sweeps every profile over
// a few seeds, aggregates accuracy and fault counters, and (when the
// ROBUSTNESS_JSON environment variable names a file) writes the
// BENCH_robustness.json artifact scripts/robustness.sh publishes.
func TestRobustnessSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is the long-form robustness benchmark")
	}
	type row struct {
		Profile     string  `json:"profile"`
		Seeds       int     `json:"seeds"`
		ScoredAS    int     `json:"scored_as"`
		F1          float64 `json:"f1"`
		Accuracy    float64 `json:"accuracy"`
		Retries     int     `json:"pair_retries"`
		Recovered   int     `json:"pairs_recovered"`
		Churned     int     `json:"vvps_churned"`
		Requalified int     `json:"vvps_requalified"`
		Dropped     int     `json:"vvps_dropped"`
	}
	seeds := []int64{5, 11, 17}
	var rows []row
	for _, name := range faults.Names() {
		prof, err := faults.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var c faults.Confusion
		rw := row{Profile: name, Seeds: len(seeds)}
		for _, seed := range seeds {
			r, snap := robustRound(t, seed, prof, 0)
			confusionFor(r, snap, &c)
			fm := snap.Metrics.Faults
			rw.Retries += fm.PairRetries
			rw.Recovered += fm.PairsRecovered
			rw.Churned += fm.VVPsChurned
			rw.Requalified += fm.VVPsRequalified
			rw.Dropped += fm.VVPsDropped
		}
		rw.ScoredAS = c.Total()
		rw.F1 = c.F1()
		rw.Accuracy = c.Accuracy()
		rows = append(rows, rw)
		t.Logf("%-6s scored=%d F1=%.3f acc=%.3f retries=%d recovered=%d churned=%d requalified=%d dropped=%d",
			rw.Profile, rw.ScoredAS, rw.F1, rw.Accuracy, rw.Retries, rw.Recovered, rw.Churned, rw.Requalified, rw.Dropped)
	}
	if path := os.Getenv("ROBUSTNESS_JSON"); path != "" {
		blob, err := json.MarshalIndent(map[string]any{"robustness": rows}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
