package faults

import (
	"math"
	"testing"
)

func TestByName(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"", "none"},
		{"none", "none"},
		{"paper", "paper"},
		{"harsh", "harsh"},
	} {
		p, err := ByName(tc.in)
		if err != nil {
			t.Fatalf("ByName(%q): %v", tc.in, err)
		}
		if p.Name != tc.want {
			t.Fatalf("ByName(%q).Name = %q, want %q", tc.in, p.Name, tc.want)
		}
	}
	if _, err := ByName("chaos-monkey"); err == nil {
		t.Fatal("unknown profile name must error")
	}
}

func TestNamesCoversEveryProfile(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("Names() = %v, want at least none/paper/harsh", names)
	}
	for _, n := range names {
		if _, err := ByName(n); err != nil {
			t.Fatalf("Names() lists %q but ByName rejects it: %v", n, err)
		}
	}
}

func TestEnabled(t *testing.T) {
	if None().Enabled() {
		t.Fatal("None profile reports enabled")
	}
	if (Profile{}).Enabled() {
		t.Fatal("zero profile reports enabled")
	}
	if !Paper().Enabled() || !Harsh().Enabled() {
		t.Fatal("paper/harsh profiles must report enabled")
	}
	// Any single knob enables the profile.
	if !(Profile{LinkLossPerHop: 0.01}).Enabled() {
		t.Fatal("single-knob profile must report enabled")
	}
	if !(Profile{ChurnProb: 0.1}).Enabled() {
		t.Fatal("churn-only profile must report enabled")
	}
}

func TestBernoulliDeterministicAndKeyed(t *testing.T) {
	a := Bernoulli(0.5, 1, 2, 3)
	for i := 0; i < 10; i++ {
		if Bernoulli(0.5, 1, 2, 3) != a {
			t.Fatal("Bernoulli is not a pure function of its key")
		}
	}
	// Different keys must decorrelate: over many keys the acceptance rate
	// tracks the probability.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const n = 20000
		for i := int64(0); i < n; i++ {
			if Bernoulli(p, 0xfeed, i) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("Bernoulli(%v) acceptance rate %v over %d keys", p, got, n)
		}
	}
	if Bernoulli(0, 1, 2) {
		t.Fatal("probability 0 must never fire")
	}
	if !Bernoulli(1.1, 1, 2) {
		t.Fatal("probability >1 must always fire")
	}
}

func TestConfusionF1(t *testing.T) {
	var c Confusion
	if got := c.F1(); got != 0 {
		t.Fatalf("empty confusion F1 = %v, want 0", got)
	}
	for i := 0; i < 8; i++ {
		c.Add(true, true) // TP
	}
	c.Add(true, false)  // FN
	c.Add(false, true)  // FP
	c.Add(false, false) // TN
	if c.TP != 8 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion cells wrong: %+v", c)
	}
	if c.Total() != 11 {
		t.Fatalf("Total = %d, want 11", c.Total())
	}
	// precision = recall = 8/9 → F1 = 8/9.
	if got, want := c.F1(), 8.0/9.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", got, want)
	}
	if got, want := c.Accuracy(), 9.0/11.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Accuracy = %v, want %v", got, want)
	}
}

func TestHarshDominatesPaper(t *testing.T) {
	p, h := Paper(), Harsh()
	type pair struct {
		name         string
		paper, harsh float64
	}
	for _, c := range []pair{
		{"LinkLossPerHop", p.LinkLossPerHop, h.LinkLossPerHop},
		{"ReorderProb", p.ReorderProb, h.ReorderProb},
		{"DupProb", p.DupProb, h.DupProb},
		{"CrossTrafficFactor", p.CrossTrafficFactor, h.CrossTrafficFactor},
		{"SplitCounterProb", p.SplitCounterProb, h.SplitCounterProb},
		{"ResetProb", p.ResetProb, h.ResetProb},
		{"ChurnProb", p.ChurnProb, h.ChurnProb},
		{"FlapProb", p.FlapProb, h.FlapProb},
	} {
		if c.harsh < c.paper {
			t.Errorf("%s: harsh (%v) milder than paper (%v)", c.name, c.harsh, c.paper)
		}
	}
	// Rate limiting is harsher when the budget is *smaller*.
	if h.RateLimitPPS > p.RateLimitPPS {
		t.Error("harsh rate limit is more generous than paper's")
	}
}
