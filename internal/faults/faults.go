// Package faults defines the seeded fault-injection model beneath the
// measurement pipeline's robustness story. RoVista's inference rests on a
// noisy side channel — §4 of the paper is largely about filtering out vVPs
// with unstable IP-ID counters, retrying probes, and discarding rounds
// polluted by cross traffic — so a reproduction that only models clean
// networks cannot say anything about how the scores survive realistic
// impairments. A Profile is pure data: per-link packet impairments,
// remote-host response rate limiting, IP-ID counter perturbations, vVP
// churn, and transient BGP flaps. The consumers (internal/netsim for the
// wire and hosts, internal/core for churn and the round driver) draw every
// fault decision from seeds derived with internal/seedmix, so a fixed-seed
// run is bit-for-bit deterministic — including its faults — at any worker
// count.
//
// The package deliberately imports nothing above internal/seedmix: netsim
// composes a Profile into the Network, and the fault model must not know
// what a network is.
package faults

import (
	"fmt"

	"github.com/netsec-lab/rovista/internal/seedmix"
)

// Stream identifiers for seed derivation. Each independent fault decision
// mixes one of these into its seed so the streams cannot collide with each
// other or with the measurement pipeline's own derivations.
const (
	// StreamArm derives the network-level fault seed from the round seed.
	StreamArm int64 = 0x0fa0171
	// StreamSplit decides per-host split-counter assignment (keyed by host
	// address, so the decision is a stable host property).
	StreamSplit int64 = 0x0fa0172
	// StreamClone perturbs per-measurement host clones (counter resets).
	StreamClone int64 = 0x0fa0173
	// StreamChurn decides per-vVP disappearance between qualification and
	// measurement (keyed by host address).
	StreamChurn int64 = 0x0fa0174
	// StreamRequalify seeds the post-round re-qualification scans.
	StreamRequalify int64 = 0x0fa0175
	// StreamRouteFlap picks the origin flaps (withdraw + re-announce event
	// batches) injected through the incremental convergence engine.
	StreamRouteFlap int64 = 0x0fa0176
)

// Profile is one named set of fault-injection knobs. The zero value injects
// nothing; all probabilities are in [0, 1] and all rates are per second of
// virtual time.
type Profile struct {
	// Name identifies the profile in metrics and reports.
	Name string

	// Link-level impairments, applied per transmitted packet by the
	// discrete-event simulator.

	// LinkLossPerHop is an independent per-hop drop probability; a packet
	// crossing an n-AS path survives with (1-p)^n.
	LinkLossPerHop float64
	// ReorderProb is the probability a packet picks up ReorderDelay extra
	// seconds of latency (uniform in (0, ReorderDelay]), enough to overtake
	// later packets — the §4.2 reordering concern.
	ReorderProb  float64
	ReorderDelay float64
	// DupProb duplicates a delivered packet (the copy arrives ReorderDelay/2
	// later at most).
	DupProb float64

	// Remote-host response rate limiting: hosts refuse to emit automaton
	// responses (SYN-ACKs, RSTs — the ICMP-style limits real stacks apply)
	// beyond a token bucket of RateLimitBurst tokens refilled at
	// RateLimitPPS per second. 0 disables.
	RateLimitPPS   float64
	RateLimitBurst int

	// IP-ID counter perturbations.

	// CrossTrafficFactor scales every host's background rate by (1+factor):
	// cross traffic the operator of the vVP never told us about.
	CrossTrafficFactor float64
	// CrossBurstProb adds, per background advance, a burst of up to
	// CrossBurstMax extra packets to the host's global counter.
	CrossBurstProb float64
	CrossBurstMax  int
	// SplitCounterProb is the per-host probability (stable in the host
	// address) that a global-counter host actually keeps SplitWays per-CPU
	// counters — the §4 "unstable counter" population the scans must reject.
	SplitCounterProb float64
	SplitWays        int
	// ResetProb is the per-measurement probability that the observed host's
	// counter resets (reboot, counter re-key) after a uniform 1..ResetMaxPackets
	// further transmissions mid-round.
	ResetProb       float64
	ResetMaxPackets int

	// ChurnProb is the per-vVP probability (stable in the host address for
	// one round) that the host disappears between qualification and
	// measurement — the paper's daily scans routinely lost vantage points.
	ChurnProb float64

	// Transient BGP flaps.

	// FlapProb is the per-measurement probability that a flap blackholes the
	// forwarding plane for FlapDuration seconds starting uniformly inside
	// [0, FlapSpan).
	FlapProb     float64
	FlapDuration float64
	FlapSpan     float64
	// CacheFlaps is the number of forwarding-path-cache invalidations the
	// round driver injects concurrently with the measure stage. The cache
	// never changes results (the path-cache equivalence property), so these
	// thrash the cache under load without perturbing outcomes.
	CacheFlaps int
	// RouteFlaps is the number of transient origin flaps — a withdraw and
	// re-announce of one routed prefix, batched the way a BGP speaker's
	// update interval batches them — the round driver pushes through the
	// incremental convergence engine before the measure stage. Each batch
	// coalesces to a net no-op, so scores are unperturbed while the event
	// path (and its per-prefix cache invalidation protocol) is exercised
	// under the determinism harness.
	RouteFlaps int
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.LinkLossPerHop > 0 || p.ReorderProb > 0 || p.DupProb > 0 ||
		p.RateLimitPPS > 0 || p.CrossTrafficFactor > 0 || p.CrossBurstProb > 0 ||
		p.SplitCounterProb > 0 || p.ResetProb > 0 || p.ChurnProb > 0 ||
		p.FlapProb > 0 || p.CacheFlaps > 0 || p.RouteFlaps > 0
}

// None returns the empty profile: a clean network.
func None() Profile { return Profile{Name: "none"} }

// Paper returns impairments at the rates the paper's methodology treats as
// normal operating conditions: a few tenths of a percent of per-link loss,
// occasional reordering, moderate cross traffic, a minority of hosts with
// per-CPU counters, and a few percent of vantage churn and route flaps. The
// robustness harness requires ROV classification F1 ≥ 0.80 here.
func Paper() Profile {
	return Profile{
		Name:               "paper",
		LinkLossPerHop:     0.002,
		ReorderProb:        0.01,
		ReorderDelay:       0.3,
		DupProb:            0.002,
		RateLimitPPS:       6,
		RateLimitBurst:     14,
		CrossTrafficFactor: 0.5,
		CrossBurstProb:     0.02,
		CrossBurstMax:      4,
		SplitCounterProb:   0.15,
		SplitWays:          2,
		ResetProb:          0.02,
		ResetMaxPackets:    20,
		ChurnProb:          0.05,
		FlapProb:           0.02,
		FlapDuration:       1.5,
		FlapSpan:           12,
		CacheFlaps:         4,
		RouteFlaps:         3,
	}
}

// Harsh returns a deliberately punitive profile — several times the paper's
// rates plus tight rate limits. The harness does not require accuracy here,
// only graceful degradation: coverage collapses and discard counters light
// up, but surviving scores stay sane and no fully-ROV AS is silently
// flipped to "unprotected".
func Harsh() Profile {
	return Profile{
		Name:               "harsh",
		LinkLossPerHop:     0.01,
		ReorderProb:        0.05,
		ReorderDelay:       0.6,
		DupProb:            0.01,
		RateLimitPPS:       3,
		RateLimitBurst:     10,
		CrossTrafficFactor: 2,
		CrossBurstProb:     0.10,
		CrossBurstMax:      8,
		SplitCounterProb:   0.30,
		SplitWays:          4,
		ResetProb:          0.10,
		ResetMaxPackets:    12,
		ChurnProb:          0.15,
		FlapProb:           0.10,
		FlapDuration:       3,
		FlapSpan:           12,
		CacheFlaps:         16,
		RouteFlaps:         12,
	}
}

// ByName resolves a profile name (the cmd/rovista -faults values).
func ByName(name string) (Profile, error) {
	switch name {
	case "", "none":
		return None(), nil
	case "paper":
		return Paper(), nil
	case "harsh":
		return Harsh(), nil
	default:
		return Profile{}, fmt.Errorf("faults: unknown profile %q (want none, paper or harsh)", name)
	}
}

// Names lists the selectable profiles in escalation order.
func Names() []string { return []string{"none", "paper", "harsh"} }

// Bernoulli draws a deterministic biased coin for the given probability from
// the mixed seed parts — the primitive beneath every stable (address-keyed)
// fault decision. The top 53 bits of the mix give a uniform in [0, 1).
func Bernoulli(prob float64, parts ...int64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	u := float64(uint64(seedmix.Mix(parts...))>>11) / (1 << 53)
	return u < prob
}

// Confusion accumulates a binary-classification tally; the robustness
// harness scores measured "protected" verdicts against data-plane ground
// truth with it.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one (truth, predicted) observation.
func (c *Confusion) Add(truth, pred bool) {
	switch {
	case truth && pred:
		c.TP++
	case !truth && pred:
		c.FP++
	case truth && !pred:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// F1 returns the harmonic mean of precision and recall for the positive
// class; 0 when undefined (no positive predictions or truths).
func (c Confusion) F1() float64 {
	denom := 2*c.TP + c.FP + c.FN
	if denom == 0 {
		return 0
	}
	return 2 * float64(c.TP) / float64(denom)
}

// Accuracy returns the fraction of correct predictions (0 when empty).
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}
