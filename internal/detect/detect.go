// Package detect implements RoVista's per-pair measurement round (§4.3 and
// Figure 3 of the paper): probe a vVP's IP-ID counter at a fixed cadence,
// inject spoofed SYNs toward a tNode mid-round, and classify the resulting
// IP-ID growth pattern as no filtering, inbound filtering, or outbound
// filtering using the Appendix-A ARMA/ARIMA spike detector.
package detect

import (
	"fmt"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/scan"
	"github.com/netsec-lab/rovista/internal/seedmix"
	"github.com/netsec-lab/rovista/internal/tcpsim"
	"github.com/netsec-lab/rovista/internal/timeseries"
)

// Outcome classifies one (vVP, tNode) measurement.
type Outcome uint8

// Outcomes, mirroring Figure 2.
const (
	// Inconclusive: the observed pattern fits none of the three cases
	// (loss, noise, or a broken host).
	Inconclusive Outcome = iota
	// NoFiltering: the spoofed burst produced exactly one spike — the vVP's
	// RSTs reached the tNode and stopped the retransmissions.
	NoFiltering
	// InboundFiltering: no spike at all — the tNode's SYN-ACKs never
	// reached the vVP.
	InboundFiltering
	// OutboundFiltering: a spike followed by an RTO-delayed echo — the
	// vVP's RSTs were filtered on the way to the tNode (the ROV signal).
	OutboundFiltering
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case NoFiltering:
		return "no-filtering"
	case InboundFiltering:
		return "inbound-filtering"
	case OutboundFiltering:
		return "outbound-filtering"
	default:
		return "inconclusive"
	}
}

// Config tunes the measurement round; zero values take the paper defaults.
type Config struct {
	ProbeInterval float64 // seconds between IP-ID probes (0.5)
	PreProbes     int     // probes before the burst (10)
	PostProbes    int     // probes after the burst (14 ≈ 7 s, covers the RTO echo)
	SpoofCount    int     // spoofed SYNs in the burst (10)
	RTO           float64 // expected tNode retransmission timeout (3 s)
	Alpha         float64 // detector significance level (0.05)
	// Offset shifts the whole probe schedule by this many seconds of virtual
	// time. Retries use it as backoff: the same pair re-measured at a later
	// offset sees a different slice of background traffic and, under fault
	// injection, can fall outside a transient flap window.
	Offset float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 0.5
	}
	if c.PreProbes == 0 {
		c.PreProbes = 10
	}
	if c.PostProbes == 0 {
		c.PostProbes = 14
	}
	if c.SpoofCount == 0 {
		c.SpoofCount = 10
	}
	if c.RTO == 0 {
		c.RTO = 3.0
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	return c
}

// PairResult is the outcome of one measurement round.
type PairResult struct {
	VVP     netip.Addr
	TNode   scan.TNode
	Outcome Outcome
	// Usable reflects the Appendix-A FP/FN gate: false when the vVP's
	// background noise precludes inference (such results are discarded).
	Usable bool
	FNRate float64
	// Attempts counts measurement attempts for this pair (1 without retry;
	// the pipeline's bounded-retry wrapper sets higher values).
	Attempts int
	// IDs and Times are the raw observed IP-ID samples.
	IDs   []uint16
	Times []float64
}

// String implements fmt.Stringer.
func (r PairResult) String() string {
	return fmt.Sprintf("%v -> %v:%d: %v (usable=%v)", r.VVP, r.TNode.Addr, r.TNode.Port, r.Outcome, r.Usable)
}

// MeasurePair runs one Figure-3 round from the measurement client against
// the (vvp, tnode) pair. The client must be able to reach both hosts; its
// AS must allow source-address spoofing.
func MeasurePair(net *netsim.Network, client *netsim.Host, vvpAddr netip.Addr, tn scan.TNode, seed int64, cfg Config) PairResult {
	cfg = cfg.withDefaults()
	s := netsim.NewSim(net, seed)

	// Each round restarts virtual time, so absolute TCP deadlines from
	// earlier rounds must not leak in.
	if h, ok := net.HostAt(tn.Addr); ok {
		h.TCP.Reset()
	}
	if h, ok := net.HostAt(vvpAddr); ok {
		h.TCP.Reset()
	}

	total := cfg.PreProbes + cfg.PostProbes
	res := PairResult{
		VVP:      vvpAddr,
		TNode:    tn,
		Attempts: 1,
		// One sample is expected per probe; preallocating exactly keeps the
		// handler's appends allocation-free across the whole round.
		IDs:   make([]uint16, 0, total),
		Times: make([]float64, 0, total),
	}
	prevHandler := client.Handler
	client.Handler = func(sim *netsim.Sim, pkt netsim.Packet) bool {
		if pkt.Kind == tcpsim.RST && pkt.Src == vvpAddr {
			res.IDs = append(res.IDs, pkt.IPID)
			res.Times = append(res.Times, sim.Now())
		}
		return true
	}
	defer func() { client.Handler = prevHandler }()

	for i := 0; i < total; i++ {
		k := i
		s.At(cfg.Offset+float64(k)*cfg.ProbeInterval, func() {
			s.SendFrom(client, client.Addr, vvpAddr, uint16(47000+k), 443, tcpsim.SYNACK)
		})
	}
	// The spoofed burst fires between the pre and post windows, a quarter
	// interval after the last pre probe (the paper's 4.5+ε).
	burstAt := cfg.Offset + (float64(cfg.PreProbes-1)+0.5)*cfg.ProbeInterval
	s.At(burstAt, func() {
		for j := 0; j < cfg.SpoofCount; j++ {
			s.SendFrom(client, vvpAddr, tn.Addr, uint16(48000+j), tn.Port, tcpsim.SYN)
		}
	})
	s.Run(cfg.Offset + float64(total)*cfg.ProbeInterval + cfg.RTO + 5)

	res.classify(cfg)
	return res
}

// MeasurePairIsolated runs one Figure-3 round inside an isolated measurement
// context: the client, vVP and tNode hosts are replaced by fresh clones (via
// a network overlay) whose state derives only from seed, and the shared
// network is consulted read-only. The result is therefore a pure function of
// (network wiring, pair, seed) — independent of any earlier rounds and of
// the order or concurrency in which rounds execute. This is the primitive
// beneath the deterministic parallel pair-measurement executor.
func MeasurePairIsolated(net *netsim.Network, client *netsim.Host, vvpAddr netip.Addr, tn scan.TNode, seed int64, cfg Config) PairResult {
	// CloneHost applies the network's armed per-measurement perturbations
	// (counter resets); on a clean network it is exactly Host.Clone.
	cl := net.CloneHost(client, seedmix.Mix(seed, 1))
	overlays := []*netsim.Host{cl}
	if h, ok := net.HostAt(vvpAddr); ok {
		overlays = append(overlays, net.CloneHost(h, seedmix.Mix(seed, 2)))
	}
	// A tNode with a global counter can itself qualify as a vVP, so the two
	// roles may share one address; clone it once.
	if h, ok := net.HostAt(tn.Addr); ok && tn.Addr != vvpAddr {
		overlays = append(overlays, net.CloneHost(h, seedmix.Mix(seed, 3)))
	}
	return MeasurePair(net.Overlay(overlays...), cl, vvpAddr, tn, seedmix.Mix(seed, 4), cfg)
}

// classify applies the Appendix-A detector and the Figure-2/3 decision
// rules to the recorded IP-ID samples.
func (r *PairResult) classify(cfg Config) {
	if len(r.IDs) != cfg.PreProbes+cfg.PostProbes {
		// Lost probes (path trouble toward the vVP itself): no inference.
		r.Outcome = Inconclusive
		r.Usable = false
		return
	}
	growth := timeseries.GrowthSeries(r.IDs)
	pre := growth[:cfg.PreProbes-1]
	post := growth[cfg.PreProbes-1:]

	det := &timeseries.Detector{Alpha: cfg.Alpha, ExpectedSpike: float64(cfg.SpoofCount)}
	out := det.Detect(pre, post)
	r.Usable = out.Usable
	r.FNRate = out.FNRate
	if !out.Usable {
		r.Outcome = Inconclusive
		return
	}

	// Post-growth index k spans samples (pre-1+k, pre+k); the burst falls
	// inside index 0, and the RTO echo arrives cfg.RTO later.
	rtoIdx := int(cfg.RTO/cfg.ProbeInterval + 0.5)
	injection, echo, stray := false, false, false
	for _, sp := range out.Spikes {
		switch {
		case sp.Index <= 1:
			injection = true
		case abs(sp.Index-rtoIdx) <= 1 || abs(sp.Index-rtoIdx-1) <= 1:
			echo = true
		default:
			stray = true
		}
	}
	switch {
	case injection && echo:
		r.Outcome = OutboundFiltering
	case injection && !stray:
		r.Outcome = NoFiltering
	case !injection && !echo && !stray:
		r.Outcome = InboundFiltering
	default:
		r.Outcome = Inconclusive
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
