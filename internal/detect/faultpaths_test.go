package detect

import "testing"

// TestOffsetShiftsScheduleNotOutcome: Config.Offset (the retry backoff hook)
// delays the whole probe schedule in virtual time; against a quiet network
// the classification must be identical at any offset, and the first-attempt
// zero offset must remain the exact schedule the calibrated tests fixed.
func TestOffsetShiftsScheduleNotOutcome(t *testing.T) {
	for _, offset := range []float64{0, 2, 4, 17.5} {
		n, client, vvp, tn := world(t, false, 2)
		cfg := Config{Offset: offset}
		res := MeasurePair(n, client, vvp.Addr, tn, 5, cfg)
		if !res.Usable {
			t.Fatalf("offset %v: result unusable", offset)
		}
		if res.Outcome != NoFiltering {
			t.Fatalf("offset %v: outcome = %v, want no-filtering", offset, res.Outcome)
		}
	}
}

// TestAttemptsDefaultsToOne: MeasurePair is a single attempt; the retry
// bookkeeping lives in the pipeline's PairMeasurer, so the primitive must
// always report exactly one attempt.
func TestAttemptsDefaultsToOne(t *testing.T) {
	n, client, vvp, tn := world(t, true, 2)
	res := MeasurePair(n, client, vvp.Addr, tn, 5, Config{})
	if res.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", res.Attempts)
	}
}

// TestMeasurePairUnreachableVVP: a vanished vVP (host withdrawn mid-round,
// the churn fault) must come back inconclusive-and-unusable, never a verdict.
func TestMeasurePairUnreachableVVP(t *testing.T) {
	n, client, vvp, tn := world(t, false, 2)
	n.SetVanished(vvp.Addr)
	defer n.ClearVanished()
	res := MeasurePair(n, client, vvp.Addr, tn, 5, Config{})
	if res.Usable {
		t.Fatal("measurement against a vanished vVP claimed to be usable")
	}
	if res.Outcome != Inconclusive {
		t.Fatalf("outcome = %v, want inconclusive", res.Outcome)
	}
}

// TestMeasurePairIsolatedCloneFaults: MeasurePairIsolated routes its clones
// through Network.CloneHost so per-clone fault perturbations (IP-ID resets)
// apply; on a clean network that path must be indistinguishable from Clone.
func TestMeasurePairIsolatedCloneFaults(t *testing.T) {
	n1, c1, v1, tn1 := world(t, false, 2)
	direct := MeasurePair(n1, c1, v1.Addr, tn1, 5, Config{})

	n2, c2, v2, tn2 := world(t, false, 2)
	isolated := MeasurePairIsolated(n2, c2, v2.Addr, tn2, 5, Config{})

	if direct.Outcome != isolated.Outcome || direct.Usable != isolated.Usable {
		t.Fatalf("clean isolated run diverged: direct=%+v isolated=%+v", direct, isolated)
	}
}
