package detect

import (
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/scan"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// world builds: provider AS 10 on top; AS 1 hosts the measurement client,
// AS 2 the vVP, AS 3 the tNode announcing an RPKI-invalid prefix (the ROA
// names AS 99). When rovAt2 is set, AS 2 filters invalid routes.
func world(t *testing.T, rovAt2 bool, bgRate float64) (*netsim.Network, *netsim.Host, *netsim.Host, scan.TNode) {
	t.Helper()
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 99, Prefix: pfx("10.3.0.0/16"), MaxLength: 16}})
	g := bgp.NewGraph()
	g.Link(10, 1, bgp.Customer)
	g.Link(10, 2, bgp.Customer)
	g.Link(10, 3, bgp.Customer)
	g.AS(1).Originated = []netip.Prefix{pfx("10.1.0.0/16")}
	g.AS(2).Originated = []netip.Prefix{pfx("10.2.0.0/16")}
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")} // invalid: ROA says AS 99
	if rovAt2 {
		g.AS(2).Policy = rov.Full()
		g.AS(2).VRPs = vrps
	}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	n := netsim.NewNetwork(g)
	client := netsim.NewHost(ip("10.1.0.1"), 1, ipid.Global, 11)
	vvp := netsim.NewHost(ip("10.2.0.1"), 2, ipid.Global, 12)
	vvp.BackgroundRate = bgRate
	tnode := netsim.NewHost(ip("10.3.0.1"), 3, ipid.Global, 13, 443)
	n.AddHost(client)
	n.AddHost(vvp)
	n.AddHost(tnode)
	tn := scan.TNode{Addr: tnode.Addr, ASN: 3, Port: 443, Prefix: pfx("10.3.0.0/16")}
	return n, client, vvp, tn
}

func TestNoFiltering(t *testing.T) {
	n, client, vvp, tn := world(t, false, 2)
	res := MeasurePair(n, client, vvp.Addr, tn, 5, Config{})
	if !res.Usable {
		t.Fatalf("result unusable: FN=%v", res.FNRate)
	}
	if res.Outcome != NoFiltering {
		t.Fatalf("outcome = %v, want no-filtering (ids=%v)", res.Outcome, res.IDs)
	}
}

func TestOutboundFilteringViaROV(t *testing.T) {
	n, client, vvp, tn := world(t, true, 2)
	res := MeasurePair(n, client, vvp.Addr, tn, 5, Config{})
	if !res.Usable {
		t.Fatalf("result unusable: FN=%v", res.FNRate)
	}
	if res.Outcome != OutboundFiltering {
		t.Fatalf("outcome = %v, want outbound-filtering (ids=%v)", res.Outcome, res.IDs)
	}
}

func TestInboundFilteringViaIngress(t *testing.T) {
	n, client, vvp, tn := world(t, false, 2)
	// vVP's AS drops everything arriving from the tNode's prefix.
	n.IngressFilter[2] = func(pkt netsim.Packet) bool {
		return tn.Prefix.Contains(pkt.Src)
	}
	res := MeasurePair(n, client, vvp.Addr, tn, 5, Config{})
	if !res.Usable {
		t.Fatalf("result unusable: FN=%v", res.FNRate)
	}
	if res.Outcome != InboundFiltering {
		t.Fatalf("outcome = %v, want inbound-filtering (ids=%v)", res.Outcome, res.IDs)
	}
}

func TestInboundFilteringViaTNodeEgress(t *testing.T) {
	// The same signal arises from egress filtering at the tNode's AS.
	n, client, vvp, tn := world(t, false, 2)
	n.EgressFilter[3] = func(pkt netsim.Packet) bool { return pkt.Dst == vvp.Addr }
	res := MeasurePair(n, client, vvp.Addr, tn, 5, Config{})
	if res.Outcome != InboundFiltering {
		t.Fatalf("outcome = %v, want inbound-filtering", res.Outcome)
	}
}

func TestNoisyVVPExcluded(t *testing.T) {
	n, client, vvp, tn := world(t, false, 800) // 400 pkt per 0.5s interval
	res := MeasurePair(n, client, vvp.Addr, tn, 5, Config{})
	if res.Usable {
		t.Fatalf("noisy vVP should be unusable (FN=%v)", res.FNRate)
	}
	if res.Outcome != Inconclusive {
		t.Fatalf("outcome = %v, want inconclusive", res.Outcome)
	}
}

func TestLostProbesInconclusive(t *testing.T) {
	n, client, vvp, tn := world(t, false, 2)
	// Half the client's probes never reach the vVP.
	count := 0
	n.IngressFilter[2] = func(pkt netsim.Packet) bool {
		if pkt.Src == client.Addr {
			count++
			return count%2 == 0
		}
		return false
	}
	res := MeasurePair(n, client, vvp.Addr, tn, 5, Config{})
	if res.Usable || res.Outcome != Inconclusive {
		t.Fatalf("res = %+v, want unusable/inconclusive", res.Outcome)
	}
}

func TestOutcomeDeterministic(t *testing.T) {
	for i := 0; i < 3; i++ {
		n, client, vvp, tn := world(t, true, 5)
		res := MeasurePair(n, client, vvp.Addr, tn, 42, Config{})
		if res.Outcome != OutboundFiltering {
			t.Fatalf("run %d: outcome = %v", i, res.Outcome)
		}
	}
}

func TestModerateBackgroundStillDetects(t *testing.T) {
	// The paper's cutoff keeps vVPs at ≤10 pkt/s; detection should work
	// throughout that range.
	for _, rate := range []float64{0, 1, 5, 10} {
		n, client, vvp, tn := world(t, true, rate)
		res := MeasurePair(n, client, vvp.Addr, tn, 21, Config{})
		if !res.Usable {
			t.Fatalf("rate %v: unusable (FN=%v)", rate, res.FNRate)
		}
		if res.Outcome != OutboundFiltering {
			t.Fatalf("rate %v: outcome = %v, want outbound", rate, res.Outcome)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		NoFiltering: "no-filtering", InboundFiltering: "inbound-filtering",
		OutboundFiltering: "outbound-filtering", Inconclusive: "inconclusive",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ProbeInterval != 0.5 || c.PreProbes != 10 || c.SpoofCount != 10 || c.RTO != 3.0 || c.Alpha != 0.05 {
		t.Fatalf("defaults = %+v", c)
	}
}

// TestMeasurePairIsolatedAllocs is an allocation-regression guard for the
// parallel executor's per-pair primitive. The hot-path work (event-heap
// boxing, per-packet delivery closures, per-segment slices, math/rand table
// seeding) was removed deliberately; a run on this small world costs ~160
// allocations today. The ceiling leaves ~2.5x slack for benign drift while
// still catching any reintroduced per-packet allocation, which multiplies
// by the thousands of packets per round.
func TestMeasurePairIsolatedAllocs(t *testing.T) {
	const ceiling = 400
	n, client, vvp, tn := world(t, false, 2)
	// Warm the shared network's path cache so the steady state is measured.
	MeasurePairIsolated(n, client, vvp.Addr, tn, 5, Config{})
	got := testing.AllocsPerRun(10, func() {
		MeasurePairIsolated(n, client, vvp.Addr, tn, 5, Config{})
	})
	if got > ceiling {
		t.Fatalf("MeasurePairIsolated allocates %v per run, ceiling %d", got, ceiling)
	}
}
