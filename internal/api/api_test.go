package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netsec-lab/rovista/internal/export"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/store"
)

// newTestStore synthesizes a deterministic populated store.
func newTestStore(t *testing.T, ases, rounds int) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := store.Synthesize(st, store.SynthConfig{ASes: ases, Rounds: rounds, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	return st
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.RemoteAddr = "192.0.2.1:12345"
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decode(t *testing.T, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("bad JSON %q: %v", w.Body.String(), err)
	}
}

func TestEndpointsServeNonEmpty(t *testing.T) {
	st := newTestStore(t, 40, 5)
	h := New(st, Config{}).Handler()
	paths := []string{
		"/healthz",
		"/metrics",
		"/v1/as/1000",
		"/v1/as/1000/timeseries",
		"/v1/top",
		"/v1/top?n=5&order=unprotected",
		"/v1/diff?from=0&to=4",
		"/v1/export",
		"/v1/export?format=csv&round=2",
		"/v1/rounds",
	}
	for _, p := range paths {
		w := get(t, h, p)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", p, w.Code, w.Body.String())
		}
		if w.Body.Len() == 0 {
			t.Fatalf("GET %s returned an empty body", p)
		}
	}
}

func TestASEndpointMatchesStore(t *testing.T) {
	st := newTestStore(t, 40, 5)
	h := New(st, Config{}).Handler()
	asn := inet.ASN(1007)
	p, ok := st.Current(asn)
	if !ok {
		t.Fatal("synthesized AS missing")
	}
	var got asResponse
	w := get(t, h, "/v1/as/1007")
	decode(t, w, &got)
	if got.ASN != 1007 || got.Round != p.Round || got.Score != p.Score() {
		t.Fatalf("AS response %+v does not match store point %+v", got, p)
	}
	e, _ := st.EntryAt(asn, int(p.Round))
	if got.VVPs != e.VVPs || got.TNodesMeasured != e.TNodesMeasured || got.Unanimous != e.Unanimous {
		t.Fatalf("AS response %+v does not match entry %+v", got, e)
	}

	if w := get(t, h, "/v1/as/999999"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown ASN = %d", w.Code)
	}
	if w := get(t, h, "/v1/as/notanumber"); w.Code != http.StatusBadRequest {
		t.Fatalf("garbage ASN = %d", w.Code)
	}
}

func TestTimeseriesMatchesStore(t *testing.T) {
	st := newTestStore(t, 20, 8)
	h := New(st, Config{}).Handler()
	var got struct {
		ASN    uint32        `json:"asn"`
		Points []seriesPoint `json:"points"`
	}
	decode(t, get(t, h, "/v1/as/1003/timeseries"), &got)
	hist := st.Series(1003)
	if len(got.Points) != len(hist) {
		t.Fatalf("%d points, want %d", len(got.Points), len(hist))
	}
	for i, p := range got.Points {
		if p.Round != hist[i].Round || p.Score != hist[i].Score() {
			t.Fatalf("point %d: %+v vs %+v", i, p, hist[i])
		}
		if p.Day != st.Round(int(p.Round)).Day {
			t.Fatalf("point %d day mismatch", i)
		}
	}
}

func TestTopOrderingAndBounds(t *testing.T) {
	st := newTestStore(t, 60, 4)
	h := New(st, Config{}).Handler()
	var got struct {
		Order   string               `json:"order"`
		Records []export.ScoreRecord `json:"records"`
	}
	decode(t, get(t, h, "/v1/top?n=10"), &got)
	if got.Order != "protected" || len(got.Records) != 10 {
		t.Fatalf("top: %+v", got)
	}
	for i := 1; i < len(got.Records); i++ {
		a, b := got.Records[i-1], got.Records[i]
		if a.Score < b.Score || (a.Score == b.Score && a.ASN > b.ASN) {
			t.Fatalf("ordering violated: %+v then %+v", a, b)
		}
	}
	decode(t, get(t, h, "/v1/top?n=3&order=unprotected"), &got)
	if len(got.Records) != 3 || got.Order != "unprotected" {
		t.Fatalf("unprotected top: %+v", got)
	}
	for i := 1; i < len(got.Records); i++ {
		if got.Records[i-1].Score > got.Records[i].Score {
			t.Fatal("unprotected order must ascend")
		}
	}
	if w := get(t, h, "/v1/top?n=-2"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad n = %d", w.Code)
	}
	if w := get(t, h, "/v1/top?order=sideways"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad order = %d", w.Code)
	}
}

func TestDiffEndpoint(t *testing.T) {
	st := newTestStore(t, 30, 6)
	h := New(st, Config{}).Handler()
	var got struct {
		From    int          `json:"from"`
		To      int          `json:"to"`
		Changed []diffChange `json:"changed"`
	}
	decode(t, get(t, h, "/v1/diff?from=0&to=5"), &got)
	want, err := st.Diff(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Changed) != len(want) {
		t.Fatalf("%d changes, want %d", len(got.Changed), len(want))
	}
	for i, c := range got.Changed {
		if c.ASN != uint32(want[i].ASN) || c.FromScore != want[i].From.Score() || c.ToScore != want[i].To.Score() {
			t.Fatalf("change %d: %+v vs %+v", i, c, want[i])
		}
	}
	if w := get(t, h, "/v1/diff?from=0&to=99"); w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range diff = %d", w.Code)
	}
	if w := get(t, h, "/v1/diff?from=x&to=1"); w.Code != http.StatusBadRequest {
		t.Fatalf("garbage diff = %d", w.Code)
	}
}

// TestExportJSONRoundTrip is the shared round-trip contract with
// internal/export: the endpoint's body must parse with export.ReadJSON and
// DeepEqual the dataset derived from the stored round, version stamp
// included.
func TestExportJSONRoundTrip(t *testing.T) {
	st := newTestStore(t, 25, 3)
	h := New(st, Config{}).Handler()
	w := get(t, h, "/v1/export?round=1")
	back, err := export.ReadJSON(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if back.Format != export.FormatVersion {
		t.Fatalf("endpoint emitted format %d, want %d", back.Format, export.FormatVersion)
	}
	want := DatasetFromRecord(st.Round(1))
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("export round trip not exact:\n got %+v\nwant %+v", back, want)
	}

	// CSV flavour parses with the shared reader too.
	wc := get(t, h, "/v1/export?format=csv&round=1")
	recs, err := export.ReadCSV(wc.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want.Records) {
		t.Fatalf("csv rows = %d, want %d", len(recs), len(want.Records))
	}
	if w := get(t, h, "/v1/export?format=xml"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad format = %d", w.Code)
	}
}

// TestCacheInvalidationOnAppend is the cache-vs-live-writer contract: hits
// are served from memory within a generation, and an appended round is
// visible on the very next request.
func TestCacheInvalidationOnAppend(t *testing.T) {
	st := newTestStore(t, 20, 2)
	srv := New(st, Config{})
	h := srv.Handler()

	var h1 struct {
		Rounds int `json:"rounds"`
	}
	decode(t, get(t, h, "/healthz"), &h1)
	if h1.Rounds != 2 {
		t.Fatalf("healthz rounds = %d", h1.Rounds)
	}

	first := get(t, h, "/v1/top?n=5")
	misses := srv.Metrics.CacheMisses.Load()
	second := get(t, h, "/v1/top?n=5")
	if srv.Metrics.CacheHits.Load() == 0 {
		t.Fatal("second identical request must hit the cache")
	}
	if srv.Metrics.CacheMisses.Load() != misses {
		t.Fatal("second identical request must not miss")
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("cached response differs from computed one")
	}

	// Append a round with a new top AS: the next read must see it.
	rec := &store.RoundRecord{Day: 99}
	rec.Entries = []store.Entry{{ASN: 9999, Centi: 10000, VVPs: 2, TNodesMeasured: 4, TNodesFiltered: 4, Unanimous: true}}
	if err := st.Append(rec); err != nil {
		t.Fatal(err)
	}
	var top struct {
		Round   uint32               `json:"round"`
		Records []export.ScoreRecord `json:"records"`
	}
	decode(t, get(t, h, "/v1/top?n=5"), &top)
	if top.Round != 2 || len(top.Records) == 0 || top.Records[0].ASN != 9999 {
		t.Fatalf("stale response after append: %+v", top)
	}
}

func TestRateLimiter(t *testing.T) {
	st := newTestStore(t, 10, 2)
	clock := time.Unix(1000, 0)
	srv := New(st, Config{RateBurst: 3, RateRefill: 1, now: func() time.Time { return clock }})
	h := srv.Handler()

	req := func(addr string) int {
		r := httptest.NewRequest(http.MethodGet, "/v1/top", nil)
		r.RemoteAddr = addr
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w.Code
	}
	for i := 0; i < 3; i++ {
		if code := req("198.51.100.7:1000"); code != http.StatusOK {
			t.Fatalf("request %d = %d", i, code)
		}
	}
	if code := req("198.51.100.7:2000"); code != http.StatusTooManyRequests {
		t.Fatalf("4th request = %d, want 429 (ports share the client bucket)", code)
	}
	if srv.Metrics.RateLimited.Load() != 1 {
		t.Fatal("rate-limited counter not incremented")
	}
	// A different client is unaffected.
	if code := req("198.51.100.8:1000"); code != http.StatusOK {
		t.Fatalf("other client = %d", code)
	}
	// Refill restores service.
	clock = clock.Add(2 * time.Second)
	if code := req("198.51.100.7:3000"); code != http.StatusOK {
		t.Fatalf("after refill = %d", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	st := newTestStore(t, 10, 2)
	srv := New(st, Config{})
	h := srv.Handler()
	get(t, h, "/v1/top")
	get(t, h, "/v1/top")
	w := get(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", w.Code)
	}
	body := w.Body.String()
	if !strings.Contains(body, "rovistad") || !strings.Contains(body, "latency_p99_us") {
		t.Fatalf("/metrics missing rovistad counters: %s", body)
	}
	p50, p99 := srv.Metrics.Quantiles()
	if p50 < 0 || p99 < p50 {
		t.Fatalf("quantiles p50=%v p99=%v", p50, p99)
	}
	if srv.Metrics.Requests.Load() < 3 {
		t.Fatal("request counter not advancing")
	}
}

func TestMetricsExtraSections(t *testing.T) {
	st := newTestStore(t, 10, 2)
	srv := New(st, Config{Extra: func() map[string]any {
		return map[string]any{"converge": map[string]any{"events_applied": uint64(7)}}
	}})
	h := srv.Handler()
	w := get(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", w.Code)
	}
	body := w.Body.String()
	if !strings.Contains(body, "converge") || !strings.Contains(body, "events_applied") {
		t.Fatalf("/metrics missing extra converge section: %s", body)
	}
}

func TestPprofWired(t *testing.T) {
	st := newTestStore(t, 5, 1)
	h := New(st, Config{}).Handler()
	w := get(t, h, "/debug/pprof/")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "goroutine") {
		t.Fatalf("pprof index = %d", w.Code)
	}
}

// TestConcurrentAppendQuery drives the full handler stack while the
// longitudinal writer appends — the serving-path half of the race contract
// (make race runs this package with -race).
func TestConcurrentAppendQuery(t *testing.T) {
	st := newTestStore(t, 20, 2)
	h := New(st, Config{}).Handler()
	done := make(chan struct{})
	var wg sync.WaitGroup
	paths := []string{"/v1/top", "/v1/as/1001", "/v1/as/1001/timeseries", "/v1/export", "/v1/rounds", "/healthz"}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, paths[(g+i)%len(paths)], nil)
				req.RemoteAddr = fmt.Sprintf("10.0.0.%d:99", g)
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("GET %s = %d", paths[(g+i)%len(paths)], w.Code)
					return
				}
				i++
			}
		}(g)
	}
	for r := 0; r < 25; r++ {
		rec := &store.RoundRecord{Day: r}
		rec.Entries = []store.Entry{{ASN: 1001, Centi: uint16(r * 100), VVPs: 2, TNodesMeasured: 5}}
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// shardKeys generates n distinct keys that all hash into the same cache
// shard, so segmented-eviction behaviour can be exercised deterministically.
func shardKeys(c *genCache, n int) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("/v1/as/%d", i)
		if hashString(k)&c.shardMask == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestCacheHotKeysSurviveOverflow pins the segmented-eviction contract: a
// capacity overflow rotates the hot segment to cold instead of clearing
// the shard, so keys that were hot before the overflow are still served
// from cache — no miss storm under a diverse key mix.
func TestCacheHotKeysSurviveOverflow(t *testing.T) {
	c := newGenCache(1, nil, nil) // floor: perShard = 8
	per := c.perShard
	keys := shardKeys(c, 2*per)
	entry := func(i int) cacheEntry {
		return cacheEntry{status: 200, contentType: "t", body: []byte{byte(i)}}
	}
	for i, k := range keys[:per] {
		c.put(1, k, entry(i))
	}
	for i, k := range keys[:per] {
		if e, ok := c.get(1, k); !ok || e.body[0] != byte(i) {
			t.Fatalf("pre-overflow key %q missing", k)
		}
	}
	// Overflow the shard with a second wave of distinct keys.
	for i, k := range keys[per:] {
		c.put(1, k, entry(per + i))
	}
	for i, k := range keys[:per] {
		if e, ok := c.get(1, k); !ok || e.body[0] != byte(i) {
			t.Fatalf("hot key %q evicted by capacity overflow (wholesale clear regression)", k)
		}
	}
	for i, k := range keys[per:] {
		if e, ok := c.get(1, k); !ok || e.body[0] != byte(per+i) {
			t.Fatalf("fresh key %q missing after insert", k)
		}
	}
}

// TestCacheGenerationReset pins the lazy invalidation contract: a get at a
// newer generation misses, the following put resets the shard (counted),
// and entries from the old generation are gone.
func TestCacheGenerationReset(t *testing.T) {
	var resets, rotations atomic.Int64
	c := newGenCache(0, &resets, &rotations)
	// Shard generations are independent, so both keys must share a shard.
	keys := shardKeys(c, 2)
	k0, k1 := keys[0], keys[1]
	c.put(1, k0, cacheEntry{status: 200, body: []byte("old")})
	if _, ok := c.get(1, k0); !ok {
		t.Fatal("warm entry missing")
	}
	if _, ok := c.get(2, k0); ok {
		t.Fatal("newer generation must miss")
	}
	c.put(2, k0, cacheEntry{status: 200, body: []byte("new")})
	if e, ok := c.get(2, k0); !ok || string(e.body) != "new" {
		t.Fatalf("post-reset entry = %+v ok=%v", e, ok)
	}
	if _, ok := c.get(1, k0); ok {
		t.Fatal("old generation served after reset")
	}
	if resets.Load() == 0 {
		t.Fatal("shard reset not counted")
	}
	// A put whose generation is older than the shard's must be dropped,
	// not resurrect the old generation in the now-newer shard.
	c.put(1, k1, cacheEntry{status: 200, body: []byte("zombie")})
	if _, ok := c.get(2, k1); ok {
		t.Fatal("stale-generation put leaked into the current generation")
	}
}

// TestCachedReadPathLockFree is the contention-free serving guard: once a
// client and its hot responses are warm, a cached read (store view + cache
// hit + rate-limit check) must acquire zero locks. Every mutex on the
// serving path is a countedMutex feeding lockCount; the store's writer
// mutex has its own counter.
func TestCachedReadPathLockFree(t *testing.T) {
	st := newTestStore(t, 40, 5)
	srv := New(st, Config{RateBurst: 1 << 20, RateRefill: 1 << 20})
	h := srv.Handler()
	paths := []string{"/v1/as/1000", "/v1/as/1011/timeseries", "/v1/top?n=25", "/v1/rounds"}
	for _, p := range paths {
		if w := get(t, h, p); w.Code != http.StatusOK {
			t.Fatalf("warm GET %s = %d", p, w.Code)
		}
	}

	baseLocks := lockCount.Load()
	baseStore := st.WriterLockAcquisitions()
	hits := srv.Metrics.CacheHits.Load()
	const n = 500
	for i := 0; i < n; i++ {
		if w := get(t, h, paths[i%len(paths)]); w.Code != http.StatusOK {
			t.Fatalf("cached GET = %d", w.Code)
		}
	}
	if got := srv.Metrics.CacheHits.Load() - hits; got != n {
		t.Fatalf("expected %d cache hits, got %d — the guard must measure the hit path", n, got)
	}
	if got := lockCount.Load(); got != baseLocks {
		t.Fatalf("cached read path acquired %d front-end locks", got-baseLocks)
	}
	if got := st.WriterLockAcquisitions(); got != baseStore {
		t.Fatalf("cached read path acquired %d store writer locks", got-baseStore)
	}
}

// TestGenerationConsistencyUnderAppends pins the advertised-generation
// contract while a writer bumps the generation mid-flight: every /v1/
// response carries X-Rovista-Generation, and because a synthesized store's
// generation equals its round count, a /v1/rounds body must list exactly
// that many rounds — a response can never be older (or newer) than its
// advertised generation.
func TestGenerationConsistencyUnderAppends(t *testing.T) {
	st := newTestStore(t, 20, 2)
	h := New(st, Config{}).Handler()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, "/v1/rounds", nil)
				req.RemoteAddr = fmt.Sprintf("10.1.0.%d:99", g)
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("GET /v1/rounds = %d", w.Code)
					return
				}
				gen, err := strconv.ParseUint(w.Header().Get(generationHeader), 10, 64)
				if err != nil {
					t.Errorf("bad %s header %q", generationHeader, w.Header().Get(generationHeader))
					return
				}
				var body struct {
					Rounds []json.RawMessage `json:"rounds"`
				}
				if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
					t.Errorf("bad body: %v", err)
					return
				}
				if uint64(len(body.Rounds)) != gen {
					t.Errorf("response advertises generation %d but lists %d rounds", gen, len(body.Rounds))
					return
				}
			}
		}(g)
	}
	for r := 0; r < 30; r++ {
		rec := &store.RoundRecord{Day: 100 + r}
		rec.Entries = []store.Entry{{ASN: 1001, Centi: uint16(r * 50), VVPs: 2, TNodesMeasured: 5}}
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// failingWriter simulates a client that disconnects mid-response: writes
// succeed for the first `remaining` bytes, then error.
type failingWriter struct {
	*httptest.ResponseRecorder
	remaining int
}

func (w *failingWriter) Write(b []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, fmt.Errorf("client gone")
	}
	if len(b) > w.remaining {
		n, _ := w.ResponseRecorder.Write(b[:w.remaining])
		w.remaining = 0
		return n, fmt.Errorf("client gone")
	}
	w.remaining -= len(b)
	return w.ResponseRecorder.Write(b)
}

// TestClientWriteErrorNotCached guards against cache poisoning: a response
// truncated by a client write failure must not be stored, so the next
// request recomputes (and can cache) the full body.
func TestClientWriteErrorNotCached(t *testing.T) {
	st := newTestStore(t, 40, 5)
	s := New(st, Config{})
	h := s.Handler()
	const path = "/v1/export"

	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.RemoteAddr = "192.0.2.1:12345"
	fw := &failingWriter{ResponseRecorder: httptest.NewRecorder(), remaining: 64}
	h.ServeHTTP(fw, req)
	if fw.remaining != 0 {
		t.Fatalf("test broken: response shorter than the failure point (%d bytes left)", fw.remaining)
	}

	// Same generation, same key: must be a miss, and must serve the full body.
	w := get(t, h, path)
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s after failed write = %d", path, w.Code)
	}
	var d export.Dataset
	decode(t, w, &d)
	if len(d.Records) == 0 {
		t.Fatal("truncated body served from cache after client write error")
	}
	if hits := s.Metrics.CacheHits.Load(); hits != 0 {
		t.Fatalf("cache hit (%d) on the retry: truncated entry was cached", hits)
	}

	// The intact response from the retry is cacheable as usual.
	if w2 := get(t, h, path); w2.Code != http.StatusOK {
		t.Fatalf("third GET = %d", w2.Code)
	}
	if hits := s.Metrics.CacheHits.Load(); hits != 1 {
		t.Fatalf("intact response not cached: %d hits", hits)
	}
}
