// Package api is rovistad's query layer: an http.Server-ready handler that
// serves the longitudinal store to dashboards and bulk consumers — per-AS
// current score and timeseries, top-N rankings, cross-round diffs, and the
// same CSV/JSON datasets internal/export publishes offline. Reads go
// through a generation-keyed cache that self-invalidates when the
// measurement loop appends a round, a per-client token bucket sheds abusive
// traffic, and /metrics + /debug/pprof expose the serving path itself.
package api

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/netsec-lab/rovista/internal/export"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/store"
	"github.com/netsec-lab/rovista/internal/stream"
)

// Config tunes a Server.
type Config struct {
	// RateBurst is the per-client token-bucket size; 0 or negative
	// disables rate limiting entirely (benchmarks, trusted frontends).
	RateBurst int
	// RateRefill is the per-client refill rate in tokens/second
	// (default: RateBurst per second).
	RateRefill float64
	// CacheMaxEntries bounds the response cache (default 4096 entries).
	CacheMaxEntries int
	// WhatIf, when set, answers GET /v1/whatif counterfactual queries
	// ("what changes if AS X deploys ROV / drops a route / gets hijacked").
	// The hook receives the raw query parameters and returns the JSON
	// payload; errors render as 400. The daemon backs it with a
	// copy-on-write overlay of the live world, serialized against the
	// measurement loop — which is why /v1/whatif bypasses the
	// generation-keyed cache: its answers track the live graph, not the
	// published store generation.
	WhatIf func(q url.Values) (any, error)
	// Extra, when set, contributes additional sections to every /metrics
	// snapshot (keys merged into the "rovistad" expvar map). The daemon
	// uses it to publish the convergence engine's counters alongside the
	// serving-path metrics. Called on every snapshot; must be safe for
	// concurrent use.
	Extra func() map[string]any
	// Stream, when set, backs GET /v1/stream: each subscriber gets a
	// Server-Sent Events feed of per-round score deltas from this hub,
	// optionally narrowed by ?asn= and ?min_delta= filters. Like
	// /v1/whatif, the endpoint lives outside the generation cache — a
	// subscription is a live connection, not a cacheable response — and it
	// never touches the query-path cache shards.
	Stream *stream.Hub
	// now overrides the clock in tests.
	now func() time.Time
}

// DefaultConfig returns the production defaults: 100-request bursts
// refilled at 50/s per client, 4096 cached responses.
func DefaultConfig() Config {
	return Config{RateBurst: 100, RateRefill: 50, CacheMaxEntries: 4096}
}

// Server serves ROV queries over a store. Construct with New; the zero
// value is not usable.
type Server struct {
	st      *store.Store
	mux     *http.ServeMux
	cache   *genCache
	limiter *rateLimiter
	now     func() time.Time
	whatIf  func(q url.Values) (any, error)
	hub     *stream.Hub
	// streamBuf is each SSE subscription's hub buffer (default 16;
	// tests shrink it to force eviction).
	streamBuf int
	// streamKeepalive is the SSE keepalive-comment interval.
	streamKeepalive time.Duration

	// genHdr caches the rendered X-Rovista-Generation header value for
	// the current generation, so the cached read path stays free of
	// integer formatting allocations.
	genHdr atomic.Pointer[genHeader]

	// Metrics is the server's live counter set (also published through
	// expvar as "rovistad").
	Metrics *Metrics
}

type genHeader struct {
	gen  uint64
	vals []string
}

// New builds a Server over st.
func New(st *store.Store, cfg Config) *Server {
	s := &Server{
		st:              st,
		mux:             http.NewServeMux(),
		limiter:         newRateLimiter(cfg.RateBurst, cfg.RateRefill),
		now:             cfg.now,
		whatIf:          cfg.WhatIf,
		hub:             cfg.Stream,
		streamBuf:       16,
		streamKeepalive: 15 * time.Second,
		Metrics:         &Metrics{},
	}
	s.cache = newGenCache(cfg.CacheMaxEntries, &s.Metrics.CacheShardResets, &s.Metrics.CacheShardRotations)
	if s.now == nil {
		s.now = time.Now
	}
	s.Metrics.extra = cfg.Extra
	s.Metrics.storePublishes = st.SnapshotPublishes
	if s.hub != nil {
		s.Metrics.streamHub = s.hub.Snapshot
	}
	publishMetrics(s.Metrics)

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", expvar.Handler())
	s.mux.HandleFunc("GET /v1/as/{asn}", s.handleAS)
	s.mux.HandleFunc("GET /v1/as/{asn}/timeseries", s.handleTimeseries)
	s.mux.HandleFunc("GET /v1/top", s.handleTop)
	s.mux.HandleFunc("GET /v1/diff", s.handleDiff)
	s.mux.HandleFunc("GET /v1/export", s.handleExport)
	s.mux.HandleFunc("GET /v1/rounds", s.handleRounds)
	s.mux.HandleFunc("GET /v1/whatif", s.handleWhatIf)
	s.mux.HandleFunc("GET /v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's root handler: rate limiting, then the
// read-through cache, then the endpoint mux.
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serve) }

// viewCtxKey carries the request's store.View through the mux so every
// handler resolves against the same generation the front end advertised.
type viewCtxKey struct{}

// viewOf returns the request's pinned store view, or a fresh one for the
// uncached endpoints (healthz) that are not routed through the cache path.
func (s *Server) viewOf(r *http.Request) store.View {
	if v, ok := r.Context().Value(viewCtxKey{}).(store.View); ok {
		return v
	}
	return s.st.View()
}

// genHeaderVals returns the pre-rendered X-Rovista-Generation value slice
// for gen, reformatting only when the generation moved.
func (s *Server) genHeaderVals(gen uint64) []string {
	if h := s.genHdr.Load(); h != nil && h.gen == gen {
		return h.vals
	}
	h := &genHeader{gen: gen, vals: []string{strconv.FormatUint(gen, 10)}}
	s.genHdr.Store(h)
	return h.vals
}

// generationHeader is the response header advertising the store generation
// a /v1/ response was computed from. The view-pinning contract makes it
// exact: the body always reflects precisely this generation — never an
// older one, and (unlike the pre-snapshot code) never a newer one either.
const generationHeader = "X-Rovista-Generation"

func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	s.Metrics.Requests.Add(1)
	defer func() { s.Metrics.observe(s.now().Sub(start)) }()

	if !s.limiter.allow(clientKey(r.RemoteAddr), start) {
		s.Metrics.RateLimited.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}

	// Only the data-plane endpoints go through the cache: health, metrics
	// and pprof must always reflect the live process. /v1/whatif answers
	// from the live world, and /v1/stream is a held-open push connection —
	// neither may be cached (or even buffered through captureWriter).
	if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/") &&
		r.URL.Path != "/v1/whatif" && r.URL.Path != "/v1/stream" {
		// One atomic load pins the whole request to a consistent
		// snapshot: the generation used as the cache key and the data
		// the handlers read cannot disagree.
		view := s.st.View()
		gen := view.Generation()
		key := r.URL.RequestURI()
		w.Header()[generationHeader] = s.genHeaderVals(gen)
		if e, ok := s.cache.get(gen, key); ok {
			s.Metrics.CacheHits.Add(1)
			w.Header().Set("Content-Type", e.contentType)
			w.WriteHeader(e.status)
			w.Write(e.body)
			return
		}
		s.Metrics.CacheMisses.Add(1)
		cw := &captureWriter{ResponseWriter: w}
		s.mux.ServeHTTP(cw, r.WithContext(context.WithValue(r.Context(), viewCtxKey{}, view)))
		if cw.status >= 500 {
			s.Metrics.Errors.Add(1)
		}
		if cw.status == http.StatusOK && !cw.wroteErr {
			s.cache.put(gen, key, cacheEntry{
				status:      cw.status,
				contentType: cw.Header().Get("Content-Type"),
				body:        cw.buf.Bytes(),
			})
		}
		return
	}
	s.mux.ServeHTTP(w, r)
}

// writeJSON / writeError are the response helpers every endpoint uses.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	view := s.viewOf(r)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"rounds":     view.Rounds(),
		"generation": view.Generation(),
	})
}

// handleWhatIf answers counterfactual queries through the configured hook.
// The endpoint is deliberately outside the generation cache: answers are
// computed against the live world (via a copy-on-write overlay), so two
// queries at the same store generation may legitimately differ.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if s.whatIf == nil {
		writeError(w, http.StatusServiceUnavailable, "what-if engine not attached (daemon not measuring live)")
		return
	}
	s.Metrics.WhatIfQueries.Add(1)
	res, err := s.whatIf(r.URL.Query())
	if err != nil {
		s.Metrics.WhatIfErrors.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// parseASN pulls the {asn} path value.
func parseASN(r *http.Request) (inet.ASN, error) {
	v, err := strconv.ParseUint(r.PathValue("asn"), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad asn %q", r.PathValue("asn"))
	}
	return inet.ASN(v), nil
}

// parseRound resolves an optional ?round= parameter ("latest" or absent →
// the newest round) against the request's pinned view.
func parseRound(view store.View, r *http.Request) (int, error) {
	q := r.URL.Query().Get("round")
	if q == "" || q == "latest" {
		return view.Rounds() - 1, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 || n >= view.Rounds() {
		return 0, fmt.Errorf("round %q outside history [0, %d)", q, view.Rounds())
	}
	return n, nil
}

// asResponse is the per-AS current-score payload.
type asResponse struct {
	ASN            uint32  `json:"asn"`
	Round          uint32  `json:"round"`
	Day            int     `json:"day"`
	Score          float64 `json:"rov_protection_score"`
	VVPs           int     `json:"vvps"`
	TNodesMeasured int     `json:"tnodes_measured"`
	TNodesFiltered int     `json:"tnodes_filtered"`
	Unanimous      bool    `json:"unanimous"`
	RoundStatus    string  `json:"round_status"`
}

func (s *Server) handleAS(w http.ResponseWriter, r *http.Request) {
	asn, err := parseASN(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	view := s.viewOf(r)
	p, ok := view.Current(asn)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("AS%d was never scored", asn))
		return
	}
	rec := view.Round(int(p.Round))
	e, _ := rec.Entry(asn)
	writeJSON(w, http.StatusOK, asResponse{
		ASN:            uint32(asn),
		Round:          p.Round,
		Day:            rec.Day,
		Score:          e.Score(),
		VVPs:           e.VVPs,
		TNodesMeasured: e.TNodesMeasured,
		TNodesFiltered: e.TNodesFiltered,
		Unanimous:      e.Unanimous,
		RoundStatus:    rec.Status.String(),
	})
}

// seriesPoint mirrors export.SeriesPoint plus the round index.
type seriesPoint struct {
	Round uint32  `json:"round"`
	Day   int     `json:"day"`
	Score float64 `json:"score"`
}

func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	asn, err := parseASN(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	view := s.viewOf(r)
	hist := view.Series(asn)
	if len(hist) == 0 {
		writeError(w, http.StatusNotFound, fmt.Sprintf("AS%d was never scored", asn))
		return
	}
	points := make([]seriesPoint, len(hist))
	for i, p := range hist {
		points[i] = seriesPoint{Round: p.Round, Day: view.Round(int(p.Round)).Day, Score: p.Score()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"asn": uint32(asn), "points": points})
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	view := s.viewOf(r)
	latest := view.Latest()
	if latest == nil {
		writeError(w, http.StatusNotFound, "store is empty")
		return
	}
	n := 25
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad n %q", q))
			return
		}
		n = v
	}
	protected := true
	switch order := r.URL.Query().Get("order"); order {
	case "", "protected":
	case "unprotected":
		protected = false
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad order %q (want protected or unprotected)", order))
		return
	}
	top := view.TopN(n, protected)
	records := make([]export.ScoreRecord, len(top))
	for i, e := range top {
		records[i] = scoreRecord(e)
	}
	order := "protected"
	if !protected {
		order = "unprotected"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"round":   latest.Round,
		"day":     latest.Day,
		"order":   order,
		"records": records,
	})
}

// diffChange is one AS's movement between the two requested rounds.
type diffChange struct {
	ASN       uint32  `json:"asn"`
	FromScore float64 `json:"from_score"`
	ToScore   float64 `json:"to_score"`
	Appeared  bool    `json:"appeared,omitempty"`
	Vanished  bool    `json:"vanished,omitempty"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	view := s.viewOf(r)
	q := r.URL.Query()
	// resolve accepts a round index or "latest"; absence is an error for
	// from= (a diff needs an explicit baseline) but means latest for to=.
	resolve := func(v string) (int, error) {
		if v == "latest" {
			return view.Rounds() - 1, nil
		}
		return strconv.Atoi(v)
	}
	from, err1 := resolve(q.Get("from"))
	toStr := q.Get("to")
	if toStr == "" {
		toStr = "latest"
	}
	to, err2 := resolve(toStr)
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, "diff needs from= and to= rounds (integer or \"latest\")")
		return
	}
	diff, err := view.Diff(from, to)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	changes := make([]diffChange, len(diff))
	for i, d := range diff {
		changes[i] = diffChange{
			ASN:       uint32(d.ASN),
			FromScore: d.From.Score(),
			ToScore:   d.To.Score(),
			Appeared:  d.Appeared,
			Vanished:  d.Vanished,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"from": from, "to": to, "changed": changes})
}

// scoreRecord converts a store entry into the published record shape.
func scoreRecord(e store.Entry) export.ScoreRecord {
	return export.ScoreRecord{
		ASN:            uint32(e.ASN),
		Score:          e.Score(),
		VVPs:           e.VVPs,
		TNodesMeasured: e.TNodesMeasured,
		TNodesFiltered: e.TNodesFiltered,
		Unanimous:      e.Unanimous,
	}
}

// DatasetFromRecord renders an archived round in the exact dataset shape
// internal/export publishes offline, canonical ordering included — the
// bulk endpoint and the CLI exporter must stay byte-compatible.
func DatasetFromRecord(rec *store.RoundRecord) *export.Dataset {
	d := &export.Dataset{
		Format:      export.FormatVersion,
		Day:         rec.Day,
		TNodes:      rec.TNodes,
		Consistency: rec.Consistency(),
	}
	d.Records = make([]export.ScoreRecord, len(rec.Entries))
	for i, e := range rec.Entries {
		d.Records[i] = scoreRecord(e)
	}
	d.Sort()
	return d
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	view := s.viewOf(r)
	round, err := parseRound(view, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rec := view.Round(round)
	if rec == nil {
		writeError(w, http.StatusNotFound, "store is empty")
		return
	}
	d := DatasetFromRecord(rec)
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := d.WriteJSON(w); err != nil {
			s.Metrics.Errors.Add(1)
		}
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := d.WriteCSV(w); err != nil {
			s.Metrics.Errors.Add(1)
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad format %q (want json or csv)", format))
	}
}

// roundSummary is the provenance view: everything needed to judge whether
// a round's scores are trustworthy, without the per-AS bulk.
type roundSummary struct {
	Round        uint32         `json:"round"`
	Day          int            `json:"day"`
	Status       string         `json:"status"`
	ASes         int            `json:"ases"`
	TestPrefixes int            `json:"test_prefixes"`
	TNodes       int            `json:"tnodes"`
	AllVVPs      int            `json:"all_vvps"`
	Consistency  float64        `json:"consistency"`
	Evidence     store.Evidence `json:"evidence"`
}

func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request) {
	view := s.viewOf(r)
	n := view.Rounds()
	out := make([]roundSummary, n)
	for i := 0; i < n; i++ {
		rec := view.Round(i)
		out[i] = roundSummary{
			Round:        rec.Round,
			Day:          rec.Day,
			Status:       rec.Status.String(),
			ASes:         len(rec.Entries),
			TestPrefixes: rec.TestPrefixes,
			TNodes:       rec.TNodes,
			AllVVPs:      rec.AllVVPs,
			Consistency:  rec.Consistency(),
			Evidence:     rec.Evidence,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"rounds": out})
}
