package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/stream"
)

// handleStream is GET /v1/stream: a Server-Sent Events feed of score
// deltas, pushed after every incremental measurement round, so clients
// watch scores move without polling.
//
// Query parameters:
//
//	asn=N        only deltas for this AS
//	min_delta=X  suppress deltas with |new-old| < X (appear/vanish
//	             transitions always pass)
//
// Frames: an "event: scores" frame per round whose data is the stream.Update
// JSON (id: carries the round counter for Last-Event-ID-style resumption
// bookkeeping), comment keepalives while idle, and a final "event: evicted"
// frame if the server dropped the subscription because the client fell
// behind the fan-out (slow-consumer policy; reconnect to resubscribe).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		writeError(w, http.StatusServiceUnavailable, "score stream not attached (daemon not measuring live)")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	var f stream.SubFilter
	q := r.URL.Query()
	if v := q.Get("asn"); v != "" {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil || n == 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad asn %q", v))
			return
		}
		f.ASN = inet.ASN(n)
	}
	if v := q.Get("min_delta"); v != "" {
		x, err := strconv.ParseFloat(v, 64)
		if err != nil || x < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad min_delta %q", v))
			return
		}
		f.MinDelta = x
	}

	sub := s.hub.Subscribe(f, s.streamBuf)
	defer sub.Close()
	s.Metrics.StreamClients.Add(1)
	defer s.Metrics.StreamClients.Add(-1)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": rovista score stream\n\n")
	fl.Flush()

	keepalive := time.NewTicker(s.streamKeepalive)
	defer keepalive.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case u, ok := <-sub.C:
			if !ok {
				// The hub evicted us: tell the client why before closing so
				// it can distinguish "server shed me" from a network drop.
				s.Metrics.StreamEvicted.Add(1)
				fmt.Fprint(w, "event: evicted\ndata: {\"reason\":\"subscriber too slow\"}\n\n")
				fl.Flush()
				return
			}
			b, err := json.Marshal(u)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: scores\ndata: %s\n\n", u.Round, b); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
