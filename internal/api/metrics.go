package api

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is the size of the rolling latency sample window. A power of
// two so the ring index reduces to a mask.
const latWindow = 1 << 12

// Metrics is the server's observability surface: request/cache counters
// plus a rolling latency window from which p50/p99 are derived on demand.
// All writes are lock-free (hot path); quantile reads copy the window.
type Metrics struct {
	Requests    atomic.Int64
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	RateLimited atomic.Int64
	Errors      atomic.Int64 // 5xx responses

	// WhatIfQueries / WhatIfErrors count /v1/whatif traffic: the endpoint
	// bypasses the generation cache, so its cost profile (an overlay fork
	// plus a bounded re-convergence per query) deserves its own counters.
	WhatIfQueries atomic.Int64
	WhatIfErrors  atomic.Int64

	// StreamClients is the live /v1/stream connection gauge; StreamEvicted
	// counts SSE subscribers dropped for falling behind the fan-out.
	StreamClients atomic.Int64
	StreamEvicted atomic.Int64

	// CacheShardResets counts cache shards dropped on observing a newer
	// store generation; CacheShardRotations counts capacity overflows
	// that rotated a hot segment to cold. Together they make invalidation
	// storms visible under load.
	CacheShardResets    atomic.Int64
	CacheShardRotations atomic.Int64

	latN    atomic.Uint64
	latRing [latWindow]atomic.Int64 // microseconds

	// storePublishes reports the store's snapshot-publication counter
	// (set by New; nil in bare Metrics).
	storePublishes func() uint64

	// extra, when set (Config.Extra), contributes additional sections to
	// every snapshot — e.g. the convergence engine's counters when the
	// daemon measures live.
	extra func() map[string]any

	// streamHub, when set (Config.Stream), reports the score fan-out hub's
	// counters under the "stream_hub" key.
	streamHub func() map[string]any
}

// observe records one served request's latency.
func (m *Metrics) observe(d time.Duration) {
	i := m.latN.Add(1) - 1
	m.latRing[i&(latWindow-1)].Store(d.Microseconds())
}

// Quantiles returns the p50 and p99 request latency (µs) over the rolling
// window, or zeros before any traffic.
func (m *Metrics) Quantiles() (p50, p99 float64) {
	n := m.latN.Load()
	if n == 0 {
		return 0, 0
	}
	if n > latWindow {
		n = latWindow
	}
	buf := make([]int64, n)
	for i := range buf {
		buf[i] = m.latRing[i].Load()
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	q := func(p float64) float64 {
		idx := int(p * float64(len(buf)-1))
		return float64(buf[idx])
	}
	return q(0.50), q(0.99)
}

// snapshot renders the metrics as a plain map for expvar.
func (m *Metrics) snapshot() map[string]any {
	p50, p99 := m.Quantiles()
	out := map[string]any{
		"requests":              m.Requests.Load(),
		"cache_hits":            m.CacheHits.Load(),
		"cache_misses":          m.CacheMisses.Load(),
		"rate_limited":          m.RateLimited.Load(),
		"errors":                m.Errors.Load(),
		"whatif_queries":        m.WhatIfQueries.Load(),
		"whatif_errors":         m.WhatIfErrors.Load(),
		"cache_shard_resets":    m.CacheShardResets.Load(),
		"cache_shard_rotations": m.CacheShardRotations.Load(),
		"latency_p50_us":        p50,
		"latency_p99_us":        p99,
		"stream_clients":        m.StreamClients.Load(),
		"stream_evicted":        m.StreamEvicted.Load(),
	}
	if m.storePublishes != nil {
		out["store_snapshot_publishes"] = m.storePublishes()
	}
	if m.streamHub != nil {
		out["stream_hub"] = m.streamHub()
	}
	if m.extra != nil {
		for k, v := range m.extra() {
			out[k] = v
		}
	}
	return out
}

// expvar registration: Publish panics on duplicate names, and tests build
// many servers, so the package publishes a single "rovistad" var that
// always reflects the most recently constructed server's metrics.
var (
	publishOnce    sync.Once
	currentMetrics atomic.Pointer[Metrics]
)

func publishMetrics(m *Metrics) {
	currentMetrics.Store(m)
	publishOnce.Do(func() {
		expvar.Publish("rovistad", expvar.Func(func() any {
			if m := currentMetrics.Load(); m != nil {
				return m.snapshot()
			}
			return nil
		}))
	})
}
