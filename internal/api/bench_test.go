package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/store"
	"github.com/netsec-lab/rovista/internal/stream"
)

// nullResponseWriter discards the response body without the allocation
// churn of httptest.ResponseRecorder — the benchmark measures the server,
// not the recorder.
type nullResponseWriter struct{ h http.Header }

func (w *nullResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

// benchRequests builds the mixed read workload: mostly point lookups, a
// steady diet of rankings and timeseries, occasional bulk exports and
// diffs — the shape a public score dashboard plus a few bulk consumers
// puts on the service.
func benchRequests(ases, rounds int) []*http.Request {
	var reqs []*http.Request
	add := func(n int, pattern string, args ...any) {
		for i := 0; i < n; i++ {
			reqs = append(reqs, httptest.NewRequest(http.MethodGet, fmt.Sprintf(pattern, args...), nil))
		}
	}
	for i := 0; i < 40; i++ {
		add(1, "/v1/as/%d", 1000+(i*37)%ases)
	}
	for i := 0; i < 15; i++ {
		add(1, "/v1/as/%d/timeseries", 1000+(i*53)%ases)
	}
	add(15, "/v1/top?n=25")
	add(5, "/v1/top?n=100&order=unprotected")
	add(10, "/v1/diff?from=%d&to=%d", rounds/2, rounds-1)
	add(5, "/v1/export?format=json")
	add(5, "/v1/export?format=csv")
	add(5, "/v1/rounds")
	return reqs
}

// benchServe drives the mixed read workload against a populated 1k-AS,
// 50-round store with rate limiting off (the dashboard frontend is a
// trusted client). parallel runs GOMAXPROCS client goroutines via
// RunParallel; storm runs a background writer appending a round every few
// milliseconds during the timed region, so the measured path includes
// generation bumps and the cache-invalidation misses they force.
// Reported metrics: ns/op (wall time per request), qps (aggregate
// throughput; duplicated as qps-parallel for the parallel variant so the
// distilled report can compare serial vs parallel directly), and
// p50-us/p99-us/p999-us per-request latency quantiles.
func benchServe(b *testing.B, parallel, storm bool) {
	st, err := store.Open(b.TempDir(), store.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	const ases, rounds = 1000, 50
	if err := store.Synthesize(st, store.SynthConfig{ASes: ases, Rounds: rounds, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	h := New(st, Config{RateBurst: 0}).Handler()
	template := benchRequests(ases, rounds)

	// Warm the generation cache so the steady serving state is measured,
	// not the first-touch misses (the storm variant re-dirties it anyway;
	// that is the point).
	for _, req := range template {
		w := &nullResponseWriter{}
		h.ServeHTTP(w, req.Clone(req.Context()))
	}

	if storm {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			seed := int64(100)
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					seed++
					if err := store.Synthesize(st, store.SynthConfig{ASes: ases, Rounds: 1, Seed: seed}); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}()
		defer func() { close(stop); <-done }()
	}

	var mu sync.Mutex
	var lats []float64
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	if parallel {
		b.RunParallel(func(pb *testing.PB) {
			// Per-goroutine request copies: ServeMux pattern matching
			// writes into the request, so sharing across goroutines would
			// race.
			reqs := make([]*http.Request, len(template))
			for i, req := range template {
				reqs[i] = req.Clone(req.Context())
			}
			w := &nullResponseWriter{}
			local := make([]float64, 0, 1<<14)
			i := 0
			for pb.Next() {
				t0 := time.Now()
				h.ServeHTTP(w, reqs[i%len(reqs)])
				local = append(local, float64(time.Since(t0).Nanoseconds())/1e3)
				i++
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		})
	} else {
		reqs := make([]*http.Request, len(template))
		for i, req := range template {
			reqs[i] = req.Clone(req.Context())
		}
		w := &nullResponseWriter{}
		lats = make([]float64, 0, b.N)
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			h.ServeHTTP(w, reqs[i%len(reqs)])
			lats = append(lats, float64(time.Since(t0).Nanoseconds())/1e3)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()

	sort.Float64s(lats)
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	qps := float64(b.N) / elapsed.Seconds()
	b.ReportMetric(qps, "qps")
	if parallel {
		b.ReportMetric(qps, "qps-parallel")
	}
	b.ReportMetric(q(0.50), "p50-us")
	b.ReportMetric(q(0.99), "p99-us")
	b.ReportMetric(q(0.999), "p999-us")
}

// BenchmarkServeQueriesSerial is the single-client baseline.
func BenchmarkServeQueriesSerial(b *testing.B) { benchServe(b, false, false) }

// BenchmarkServeQueriesParallel is the contention probe: GOMAXPROCS client
// goroutines against one server. With the lock-free read path, aggregate
// qps should scale with cores (at GOMAXPROCS=1 it can only show parity
// with the serial baseline).
func BenchmarkServeQueriesParallel(b *testing.B) { benchServe(b, true, false) }

// BenchmarkServeQueriesAppendStorm is the parallel probe with a writer
// appending a round every 5ms mid-load — each append bumps the store
// generation, forcing cache-shard resets and re-renders while reads
// continue against the previous immutable snapshot.
func BenchmarkServeQueriesAppendStorm(b *testing.B) { benchServe(b, true, true) }

// BenchmarkServeSSEFanout measures the score hub's publish fan-out: 1000
// live subscribers (the /v1/stream population of a busy dashboard) each
// draining in its own goroutine while the benchmark publishes one
// per-round update per iteration. Reported: qps (publishes/s) and
// sub-p99-us (p99 publish→subscriber delivery latency), the "how stale is
// a pushed score" number that the subscriber side of the load harness
// cross-checks over real HTTP.
func BenchmarkServeSSEFanout(b *testing.B) {
	const subscribers = 1000
	hub := stream.NewHub()
	update := stream.Update{Round: 1, Deltas: make([]stream.ScoreDelta, 32)}
	for i := range update.Deltas {
		update.Deltas[i] = stream.ScoreDelta{ASN: inet.ASN(i + 1), Old: float64(i), New: float64(i) + 0.5}
	}

	var mu sync.Mutex
	var lats []float64
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		sub := hub.Subscribe(stream.SubFilter{}, 256)
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]float64, 0, 1<<12)
			for u := range sub.C {
				local = append(local, float64(time.Since(u.At).Nanoseconds())/1e3)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		u := update
		u.Round = uint32(i + 1)
		u.At = time.Now()
		hub.Publish(u)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	hub.Close()
	wg.Wait()

	sort.Float64s(lats)
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "qps")
	if n := len(lats); n > 0 {
		b.ReportMetric(lats[int(0.99*float64(n-1))], "sub-p99-us")
	}
	if ev := hub.Evictions.Load(); ev > 0 {
		b.Logf("evicted %d slow subscribers mid-bench", ev)
	}
}
