package api

import (
	"fmt"
	"net/http"
	"net/url"
	"testing"
)

// TestWhatIfEndpoint pins the /v1/whatif contract: 503 without a hook, 200
// with one, 400 on hook errors — and, critically, the endpoint bypasses the
// generation-keyed cache, because its answers track the live world rather
// than the published store generation.
func TestWhatIfEndpoint(t *testing.T) {
	st := newTestStore(t, 10, 2)

	t.Run("no-hook", func(t *testing.T) {
		h := New(st, Config{}).Handler()
		if w := get(t, h, "/v1/whatif?action=hijack"); w.Code != http.StatusServiceUnavailable {
			t.Fatalf("status = %d without hook, want 503", w.Code)
		}
	})

	calls := 0
	cfg := Config{WhatIf: func(q url.Values) (any, error) {
		calls++
		if q.Get("action") == "" {
			return nil, fmt.Errorf("missing action")
		}
		return map[string]any{"action": q.Get("action"), "call": calls}, nil
	}}
	s := New(st, cfg)
	h := s.Handler()

	w := get(t, h, "/v1/whatif?action=deploy-rov&asn=42")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %s)", w.Code, w.Body.String())
	}
	var resp map[string]any
	decode(t, w, &resp)
	if resp["action"] != "deploy-rov" {
		t.Fatalf("hook did not receive the query: %v", resp)
	}

	if w := get(t, h, "/v1/whatif"); w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d on hook error, want 400", w.Code)
	}

	// Same URL twice: both must reach the hook (no generation-cache replay).
	get(t, h, "/v1/whatif?action=leak&asn=7")
	get(t, h, "/v1/whatif?action=leak&asn=7")
	if calls != 4 {
		t.Fatalf("hook called %d times, want 4 (whatif response was cached)", calls)
	}
	if got := s.Metrics.WhatIfQueries.Load(); got != 4 {
		t.Fatalf("WhatIfQueries = %d, want 4", got)
	}
	if got := s.Metrics.WhatIfErrors.Load(); got != 1 {
		t.Fatalf("WhatIfErrors = %d, want 1", got)
	}
}
