package api

import (
	"net"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client key (the request's
// remote IP) holds burst tokens, refilled at refill tokens/second. A
// request costs one token; an empty bucket means 429. The table is bounded:
// when it grows past maxClients the stalest buckets are evicted, so an
// address-rotating scanner cannot grow server memory without bound.
type rateLimiter struct {
	burst  float64
	refill float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

const maxClients = 8192

// newRateLimiter returns a limiter, or nil (meaning "no limiting") when
// burst is not positive.
func newRateLimiter(burst int, refill float64) *rateLimiter {
	if burst <= 0 {
		return nil
	}
	if refill <= 0 {
		refill = float64(burst)
	}
	return &rateLimiter{burst: float64(burst), refill: refill, buckets: make(map[string]*bucket)}
}

// allow reports whether the client may proceed at time now, consuming one
// token if so. A nil limiter always allows.
func (l *rateLimiter) allow(key string, now time.Time) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxClients {
			l.evictStale(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.refill
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictStale drops buckets idle long enough to have refilled completely —
// forgetting them is indistinguishable from keeping them. Called with the
// lock held. If everything is fresh (a genuine 8k-client flood), the whole
// table resets: briefly over-admitting beats unbounded growth.
func (l *rateLimiter) evictStale(now time.Time) {
	full := time.Duration(l.burst / l.refill * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= full {
			delete(l.buckets, k)
		}
	}
	if len(l.buckets) >= maxClients {
		clear(l.buckets)
	}
}

// clientKey extracts the rate-limit key from a request's remote address
// (the bare IP, so one client's ports share a bucket).
func clientKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}
