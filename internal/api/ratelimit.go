package api

import (
	"net"
	"strings"
	"sync/atomic"
	"time"
)

// rateLimiter is a per-client rate limiter with token-bucket semantics
// (burst tokens, refilled at refill tokens/second; a request costs one
// token, an empty bucket means 429), implemented as GCRA so each client's
// whole state is a single atomic word and the steady-state check is a
// lock-free CAS.
//
// GCRA keeps one value per client: the theoretical arrival time (TAT), in
// nanoseconds. A request at time `now` conforms iff now >= TAT - tau where
// tau = (burst-1) * interval and interval = 1s / refill; on conformance
// TAT advances to max(now, TAT) + interval. That is exactly the token
// bucket: a fresh client gets `burst` back-to-back requests, then one more
// per interval. Denials touch nothing, so a flood of rejected requests
// does not even contend on the CAS.
//
// The client table is sharded by IP hash; each shard publishes an
// immutable map behind an atomic pointer, so the lookup is lock-free too.
// Only first-contact registration (and the eviction it may trigger) takes
// the shard mutex and republishes copy-on-write. The table is bounded:
// when a shard grows past its capacity the fully-refilled (stale) clients
// are dropped — forgetting them is indistinguishable from keeping them —
// and if everything is fresh (a genuine flood of distinct addresses) the
// shard resets: briefly over-admitting beats unbounded growth.
type rateLimiter struct {
	interval  int64 // ns per token (1e9 / refill)
	tau       int64 // burst tolerance: (burst-1) * interval
	perShard  int
	shardMask uint32
	shards    []rlShard
}

type rlShard struct {
	clients atomic.Pointer[map[string]*rlClient]
	mu      countedMutex
}

type rlClient struct {
	tat atomic.Int64
}

const maxClients = 8192

// newRateLimiter returns a limiter, or nil (meaning "no limiting") when
// burst is not positive.
func newRateLimiter(burst int, refill float64) *rateLimiter {
	if burst <= 0 {
		return nil
	}
	if refill <= 0 {
		refill = float64(burst)
	}
	n := shardCount()
	per := maxClients / n
	if per < 8 {
		per = 8
	}
	interval := int64(float64(time.Second) / refill)
	if interval < 1 {
		interval = 1
	}
	return &rateLimiter{
		interval:  interval,
		tau:       int64(burst-1) * interval,
		perShard:  per,
		shardMask: uint32(n - 1),
		shards:    make([]rlShard, n),
	}
}

// allow reports whether the client may proceed at time now, consuming one
// token if so. A nil limiter always allows. Known clients never lock.
func (l *rateLimiter) allow(key string, now time.Time) bool {
	if l == nil {
		return true
	}
	sh := &l.shards[hashString(key)&l.shardMask]
	var c *rlClient
	if m := sh.clients.Load(); m != nil {
		c = (*m)[key]
	}
	if c == nil {
		c = sh.register(l, key, now)
	}
	nowNs := now.UnixNano()
	for {
		tat := c.tat.Load()
		if tat-l.tau > nowNs {
			return false
		}
		next := tat
		if nowNs > next {
			next = nowNs
		}
		next += l.interval
		if c.tat.CompareAndSwap(tat, next) {
			return true
		}
	}
}

// register adds a first-contact client under the shard mutex, evicting
// stale clients (fully refilled, i.e. TAT at or before now) when the shard
// is at capacity. Republishes the shard map copy-on-write.
func (sh *rlShard) register(l *rateLimiter, key string, now time.Time) *rlClient {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := sh.clients.Load()
	if old != nil {
		if c := (*old)[key]; c != nil {
			return c // raced with another registration
		}
	}
	next := make(map[string]*rlClient, l.perShard)
	if old != nil {
		if len(*old) >= l.perShard {
			nowNs := now.UnixNano()
			for k, c := range *old {
				if c.tat.Load() > nowNs {
					next[k] = c
				}
			}
			if len(next) >= l.perShard {
				clear(next) // all-fresh flood: reset the shard
			}
		} else {
			for k, c := range *old {
				next[k] = c
			}
		}
	}
	c := &rlClient{}
	next[strings.Clone(key)] = c
	sh.clients.Store(&next)
	return c
}

// clientKey extracts the rate-limit key from a request's remote address
// (the bare IP, so one client's ports share a bucket).
func clientKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}
