package api

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/netsec-lab/rovista/internal/stream"
)

// waitFor polls until cond holds, failing the test on timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// streamServer builds a hub-backed server over a small synthesized store.
func streamServer(t *testing.T) (*Server, *stream.Hub) {
	t.Helper()
	st := newTestStore(t, 20, 2)
	hub := stream.NewHub()
	return New(st, Config{Stream: hub}), hub
}

// readFrame reads one SSE frame (through its terminating blank line) and
// returns its non-empty lines.
func readFrame(t *testing.T, r *bufio.Reader) []string {
	t.Helper()
	var lines []string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE frame: %v (got %q so far)", err, lines)
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if len(lines) > 0 {
				return lines
			}
			continue
		}
		lines = append(lines, line)
	}
}

// frameUpdate decodes the data: payload of an "event: scores" frame.
func frameUpdate(t *testing.T, lines []string) stream.Update {
	t.Helper()
	var u stream.Update
	for _, line := range lines {
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(data), &u); err != nil {
				t.Fatalf("bad update JSON %q: %v", data, err)
			}
			return u
		}
	}
	t.Fatalf("frame %q carries no data line", lines)
	return u
}

// TestStreamDeliversPerASFilteredDeltas: a /v1/stream?asn=7 subscriber must
// receive exactly the AS-7 deltas of the rounds that touched AS 7 — pushed,
// without polling — and nothing from rounds that did not.
func TestStreamDeliversPerASFilteredDeltas(t *testing.T) {
	srv, hub := streamServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stream?asn=7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stream = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	readFrame(t, r) // the ": rovista score stream" preamble comment

	// Two incremental rounds touching AS 7 (among others), then one that
	// does not.
	hub.Publish(stream.Update{Round: 1, Deltas: []stream.ScoreDelta{
		{ASN: 7, Old: 0, New: 40}, {ASN: 9, Old: 10, New: 20},
	}})
	hub.Publish(stream.Update{Round: 2, Deltas: []stream.ScoreDelta{
		{ASN: 7, Old: 40, New: 55}, {ASN: 9, Old: 20, New: 30},
	}})
	hub.Publish(stream.Update{Round: 3, Deltas: []stream.ScoreDelta{
		{ASN: 9, Old: 30, New: 35},
	}})

	for want := uint32(1); want <= 2; want++ {
		u := frameUpdate(t, readFrame(t, r))
		if u.Round != want {
			t.Fatalf("update round = %d, want %d", u.Round, want)
		}
		if len(u.Deltas) != 1 || u.Deltas[0].ASN != 7 {
			t.Fatalf("round %d deltas = %+v, want exactly the AS-7 delta", want, u.Deltas)
		}
	}
	// Round 3 must have been filtered out entirely: publish a sentinel the
	// subscriber does match and assert it arrives next.
	hub.Publish(stream.Update{Round: 4, Deltas: []stream.ScoreDelta{{ASN: 7, Old: 55, New: 60}}})
	if u := frameUpdate(t, readFrame(t, r)); u.Round != 4 {
		t.Fatalf("next update round = %d, want 4 (round 3 should never be delivered)", u.Round)
	}
	if srv.Metrics.StreamClients.Load() != 1 {
		t.Fatalf("stream client gauge = %d", srv.Metrics.StreamClients.Load())
	}
}

// TestStreamSlowSubscriberEvicted: a subscriber that stops reading while
// rounds keep publishing must be evicted — the fan-out never blocks the
// round loop — and told why with a final evicted frame.
func TestStreamSlowSubscriberEvicted(t *testing.T) {
	srv, hub := streamServer(t)
	srv.streamBuf = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	readFrame(t, r) // preamble

	// Big frames so the handler's write outgrows the socket buffers and
	// blocks while the client reads nothing.
	big := make([]stream.ScoreDelta, 50_000)
	for i := range big {
		big[i] = stream.ScoreDelta{ASN: 1, Old: 0, New: float64(i)}
	}
	deadline := time.Now().Add(5 * time.Second)
	for round := uint32(1); hub.Evictions.Load() == 0; round++ {
		if time.Now().After(deadline) {
			t.Fatal("hub never evicted the stalled subscriber")
		}
		hub.Publish(stream.Update{Round: round, Deltas: big})
		time.Sleep(5 * time.Millisecond)
	}

	// Drain: the stream must terminate with the evicted notice.
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rest), "event: evicted") {
		t.Fatal("stream ended without an evicted frame")
	}
	waitFor(t, "handler exit", func() bool { return srv.Metrics.StreamClients.Load() == 0 })
	if srv.Metrics.StreamEvicted.Load() != 1 {
		t.Fatalf("StreamEvicted = %d, want 1", srv.Metrics.StreamEvicted.Load())
	}
}

// TestStreamParamValidationAndAvailability: bad filters 400; a server
// without a hub 503s instead of hanging.
func TestStreamParamValidationAndAvailability(t *testing.T) {
	srv, _ := streamServer(t)
	h := srv.Handler()
	for _, p := range []string{"/v1/stream?asn=zero", "/v1/stream?asn=0", "/v1/stream?min_delta=-3", "/v1/stream?min_delta=x"} {
		if w := get(t, h, p); w.Code != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", p, w.Code)
		}
	}
	noHub := New(newTestStore(t, 5, 1), Config{}).Handler()
	if w := get(t, noHub, "/v1/stream"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("hub-less /v1/stream = %d, want 503", w.Code)
	}
}

// TestStreamPathStaysOffQueryShards extends the lock-free serving guard to
// the push path: a full subscribe → publish → disconnect cycle must acquire
// zero query-path shard locks and never touch the generation cache — the
// SSE fan-out is isolated from the cached read path by construction.
func TestStreamPathStaysOffQueryShards(t *testing.T) {
	srv, hub := streamServer(t)
	h := srv.Handler()
	// Warm the rate limiter for the client (first sight of a client key
	// takes the limiter's insert path) and the cached read path.
	if w := get(t, h, "/v1/top?n=5"); w.Code != http.StatusOK {
		t.Fatalf("warm GET = %d", w.Code)
	}

	baseLocks := lockCount.Load()
	hits, misses := srv.Metrics.CacheHits.Load(), srv.Metrics.CacheMisses.Load()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/stream", nil).WithContext(ctx)
	req.RemoteAddr = "192.0.2.1:12345" // same client as get()
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() { defer close(done); h.ServeHTTP(rec, req) }()

	waitFor(t, "subscription", func() bool { return hub.Subscribers.Load() == 1 })
	hub.Publish(stream.Update{Round: 1, Deltas: []stream.ScoreDelta{{ASN: 3, Old: 1, New: 2}}})
	waitFor(t, "delivery", func() bool { return hub.Delivered.Load() == 1 })
	cancel()
	<-done

	if got := lockCount.Load(); got != baseLocks {
		t.Fatalf("stream path acquired %d query-path locks", got-baseLocks)
	}
	if srv.Metrics.CacheHits.Load() != hits || srv.Metrics.CacheMisses.Load() != misses {
		t.Fatal("stream request touched the generation cache")
	}
}
