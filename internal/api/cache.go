package api

import (
	"bytes"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
)

// lockCount counts every mutex acquisition the serving path's shared
// front-end structures make (cache shard fills, rate-limiter client
// registration). The contention-free guard test asserts a warmed cached
// read acquires zero — the lock-count analogue of an AllocsPerRun guard.
var lockCount atomic.Int64

// countedMutex is a sync.Mutex whose acquisitions feed lockCount.
type countedMutex struct{ sync.Mutex }

func (m *countedMutex) Lock() {
	lockCount.Add(1)
	m.Mutex.Lock()
}

// hashString is FNV-1a over the key bytes: allocation-free, good spread on
// URI and dotted-quad strings, cheap enough for the per-request path.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// shardCount picks the front-end shard count: a power of two scaled to the
// core count, so independent clients land on independent shards with high
// probability and the shard mask stays a single AND.
func shardCount() int {
	n := runtime.GOMAXPROCS(0) * 4
	if n < 8 {
		n = 8
	}
	if n > 128 {
		n = 128
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// genCache is the generation-keyed read-through response cache, sharded by
// key hash. Every entry belongs to one store generation; a shard lazily
// resets when a writer observes a newer generation, so a response can
// never outlive the round-set it was computed from.
//
// Reads are lock-free: each shard publishes its two segments as immutable
// maps behind atomic pointers, and the shard generation is an atomic whose
// store is ordered *after* the segment resets — a reader that sees the new
// generation therefore cannot see pre-reset entries. Writers (cache fills,
// i.e. response misses) take the shard mutex and republish copy-on-write.
//
// Capacity uses segmented (two-generation) eviction instead of a wholesale
// clear: when the hot segment fills, it rotates to cold and a fresh hot
// segment starts. Hot keys stay servable from the cold segment across the
// overflow — a diverse key flood can evict the long tail but costs the hot
// set at most one recompute every two rotations, not a miss storm.
type genCache struct {
	perShard  int
	shardMask uint32
	shards    []cacheShard

	// resets / rotations are observability hooks (Metrics): generation
	// resets and capacity rotations per shard.
	resets    *atomic.Int64
	rotations *atomic.Int64
}

type cacheShard struct {
	gen  atomic.Uint64
	hot  atomic.Pointer[map[string]cacheEntry]
	cold atomic.Pointer[map[string]cacheEntry]
	mu   countedMutex
}

type cacheEntry struct {
	status      int
	contentType string
	body        []byte
}

func newGenCache(max int, resets, rotations *atomic.Int64) *genCache {
	if max <= 0 {
		max = 4096
	}
	n := shardCount()
	per := max / n
	if per < 8 {
		per = 8
	}
	return &genCache{
		perShard:  per,
		shardMask: uint32(n - 1),
		shards:    make([]cacheShard, n),
		resets:    resets,
		rotations: rotations,
	}
}

// get returns the cached response for key at store generation gen. It is
// lock-free: a generation mismatch is simply a miss (the reset happens on
// the subsequent put), and segment lookups read immutable maps.
func (c *genCache) get(gen uint64, key string) (cacheEntry, bool) {
	sh := &c.shards[hashString(key)&c.shardMask]
	if sh.gen.Load() != gen {
		return cacheEntry{}, false
	}
	if m := sh.hot.Load(); m != nil {
		if e, ok := (*m)[key]; ok {
			return e, true
		}
	}
	if m := sh.cold.Load(); m != nil {
		if e, ok := (*m)[key]; ok {
			return e, true
		}
	}
	return cacheEntry{}, false
}

// put stores a response computed while the store was at generation gen.
// Runs on the miss path only, under the shard mutex; the hot segment is
// republished copy-on-write so concurrent readers never see a mutating
// map.
func (c *genCache) put(gen uint64, key string, e cacheEntry) {
	sh := &c.shards[hashString(key)&c.shardMask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch cur := sh.gen.Load(); {
	case cur > gen:
		// A newer generation owns the shard: this response is already
		// stale, drop it.
		return
	case cur < gen:
		// Lazy generation reset: clear both segments, then advance the
		// generation. Readers order their loads gen-first, so seeing the
		// new generation implies seeing the cleared segments.
		sh.hot.Store(nil)
		sh.cold.Store(nil)
		sh.gen.Store(gen)
		if c.resets != nil {
			c.resets.Add(1)
		}
	}
	hot := sh.hot.Load()
	var next map[string]cacheEntry
	switch {
	case hot == nil:
		next = map[string]cacheEntry{key: e}
	case len(*hot) >= c.perShard:
		// Segmented eviction: the full hot segment becomes the cold one
		// (dropping the previous cold), and the new entry seeds a fresh
		// hot segment. No copying, and recently hot keys stay servable.
		sh.cold.Store(hot)
		next = map[string]cacheEntry{key: e}
		if c.rotations != nil {
			c.rotations.Add(1)
		}
	default:
		next = make(map[string]cacheEntry, len(*hot)+1)
		for k, v := range *hot {
			next[k] = v
		}
		next[key] = e
	}
	sh.hot.Store(&next)
}

// captureWriter tees a handler's response into a buffer so cache misses
// can be stored as they stream out. wroteErr records any client write
// failure: a disconnect mid-response leaves the buffer truncated, and a
// truncated body must never reach the cache.
type captureWriter struct {
	http.ResponseWriter
	status   int
	wroteErr bool
	buf      bytes.Buffer
}

func (w *captureWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *captureWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.buf.Write(b)
	n, err := w.ResponseWriter.Write(b)
	if err != nil {
		w.wroteErr = true
	}
	return n, err
}
