package api

import (
	"bytes"
	"net/http"
	"sync"
)

// genCache is the generation-keyed read-through response cache. Every
// entry belongs to one store generation; the first lookup after the
// longitudinal runner appends a round observes the new generation and
// drops the whole map. That makes invalidation trivial to reason about
// against a live writer: a response can never outlive the round-set it was
// computed from (serving a *newer* body under a just-raced key is the only
// tolerated skew, and it is monotonic).
type genCache struct {
	mu      sync.Mutex
	gen     uint64
	max     int
	entries map[string]cacheEntry
}

type cacheEntry struct {
	status      int
	contentType string
	body        []byte
}

func newGenCache(max int) *genCache {
	if max <= 0 {
		max = 4096
	}
	return &genCache{max: max, entries: make(map[string]cacheEntry)}
}

// get returns the cached response for key at store generation gen.
func (c *genCache) get(gen uint64, key string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		c.gen = gen
		clear(c.entries)
		return cacheEntry{}, false
	}
	e, ok := c.entries[key]
	return e, ok
}

// put stores a response computed while the store was at generation gen.
// A full cache resets rather than evicting piecemeal: the workload is a
// small set of hot endpoints, so a reset refills in a few requests.
func (c *genCache) put(gen uint64, key string, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		c.gen = gen
		clear(c.entries)
	}
	if len(c.entries) >= c.max {
		clear(c.entries)
	}
	c.entries[key] = e
}

// captureWriter tees a handler's response into a buffer so cache misses
// can be stored as they stream out. wroteErr records any client write
// failure: a disconnect mid-response leaves the buffer truncated, and a
// truncated body must never reach the cache.
type captureWriter struct {
	http.ResponseWriter
	status   int
	wroteErr bool
	buf      bytes.Buffer
}

func (w *captureWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *captureWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.buf.Write(b)
	n, err := w.ResponseWriter.Write(b)
	if err != nil {
		w.wroteErr = true
	}
	return n, err
}
