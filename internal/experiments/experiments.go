// Package experiments regenerates every table and figure from the paper's
// evaluation (the experiment index lives in DESIGN.md). Each experiment
// builds a seeded world, runs the relevant pipeline, returns a typed result
// for programmatic checks, and can render itself as the rows/series the
// paper reports.
//
// Absolute numbers come from simulated Internets a fraction of the real
// one's size; the shapes — who wins, rough factors, crossovers — are the
// reproduction targets (see EXPERIMENTS.md for the paper-vs-measured log).
package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/topology"
)

// mediumWorld returns a measurement-friendly world: big enough for
// distributional figures, small enough that a full RoVista round stays in
// the seconds range.
func mediumWorld(seed int64) core.WorldConfig {
	cfg := core.DefaultWorldConfig(seed)
	cfg.Topology = topology.Config{
		Seed:          seed,
		NumTier1:      6,
		NumTier2:      24,
		NumTier3:      90,
		NumStub:       280,
		PrefixesPerAS: 1.3,
		Tier2PeerProb: 0.3,
		Tier3PeerProb: 0.03,
		MultihomeProb: 0.45,
	}
	cfg.Days = 600
	cfg.HostsPerAS = 4
	cfg.InvalidAnnouncements = 10
	cfg.CoveredInvalidAnnouncements = 2
	cfg.SharedInvalidAnnouncements = 3
	return cfg
}

// smallWorld returns the test-sized world used by longitudinal experiments
// (many measurement rounds).
func smallWorld(seed int64) core.WorldConfig {
	return core.SmallWorldConfig(seed)
}

func mustWorld(cfg core.WorldConfig) *core.World {
	w, err := core.BuildWorld(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: building world: %v", err))
	}
	return w
}

func sortedKeys(m map[inet.ASN]float64) []inet.ASN {
	out := make([]inet.ASN, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// percent formats a fraction as a percentage string.
func percent(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
