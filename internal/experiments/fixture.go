package experiments

import (
	"net/netip"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/scan"
)

// detectFixture builds the canonical three-AS side-channel fixture used by
// the Figure 2/3 experiments: provider AS 10; AS 1 hosts the measurement
// client, AS 2 the vVP, AS 3 the tNode announcing an RPKI-invalid prefix
// (its ROA names AS 99). With rovAt2 the vVP's AS filters invalids.
func detectFixture(seed int64, rovAt2 bool) (*netsim.Network, *netsim.Host, *netsim.Host, scan.TNode) {
	mp := netip.MustParsePrefix
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 99, Prefix: mp("10.3.0.0/16"), MaxLength: 16}})
	g := bgp.NewGraph()
	g.Link(10, 1, bgp.Customer)
	g.Link(10, 2, bgp.Customer)
	g.Link(10, 3, bgp.Customer)
	g.AS(1).Originated = []netip.Prefix{mp("10.1.0.0/16")}
	g.AS(2).Originated = []netip.Prefix{mp("10.2.0.0/16")}
	g.AS(3).Originated = []netip.Prefix{mp("10.3.0.0/16")}
	if rovAt2 {
		g.AS(2).Policy = rov.Full()
		g.AS(2).VRPs = vrps
	}
	if _, err := g.Converge(); err != nil {
		panic(err)
	}
	n := netsim.NewNetwork(g)
	client := netsim.NewHost(netip.MustParseAddr("10.1.0.1"), 1, ipid.Global, seed+1)
	vvp := netsim.NewHost(netip.MustParseAddr("10.2.0.1"), 2, ipid.Global, seed+2)
	vvp.BackgroundRate = 2
	tnode := netsim.NewHost(netip.MustParseAddr("10.3.0.1"), 3, ipid.Global, seed+3, 443)
	n.AddHost(client)
	n.AddHost(vvp)
	n.AddHost(tnode)
	tn := scan.TNode{Addr: tnode.Addr, ASN: 3, Port: 443, Prefix: mp("10.3.0.0/16")}
	return n, client, vvp, tn
}

// rovFull re-exports the full-filtering policy for experiment scripts.
func rovFull() *rov.Policy { return rov.Full() }
