package experiments

import (
	"io"

	"github.com/netsec-lab/rovista/internal/analysis"
	"github.com/netsec-lab/rovista/internal/collectors"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/groundtruth"
	"github.com/netsec-lab/rovista/internal/hijack"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
	"net/netip"
	"sort"
)

// XValResult is the §6.3.1 traceroute cross-validation.
type XValResult struct {
	Tuples   int // (AS, tNode) tuples compared
	Matches  int
	Mismatch int
	// Measurements / Retained mirror the paper's campaign accounting
	// (168,642 raw measurements, 99.2% retained after the consistency
	// filter, covering 2,768 ASes).
	Measurements     int
	Retained         float64
	InconsistentASes int
}

// MatchRate returns the agreement fraction (paper: a perfect match).
func (r XValResult) MatchRate() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return float64(r.Matches) / float64(r.Tuples)
}

// XVal reproduces §6.3.1: a RIPE-Atlas-style probe fleet runs TCP
// traceroutes toward every tNode (10 probes per AS, with per-measurement
// API noise), the paper's consistency filter discards ASes whose probes
// disagree, and the surviving (AS, tNode, reachability) tuples are compared
// with RoVista's verdicts.
func XVal(seed int64, out io.Writer) XValResult {
	w := mustWorld(smallWorld(seed))
	if err := w.AdvanceTo(0); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()

	// One probe fleet across every scored AS, ten probes each (§6.3.1 uses
	// 6,296 probes over 2,768 ASes).
	var asns []inet.ASN
	for asn := range snap.Reports {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	fleet := collectors.NewFleet(asns, 10)
	var targets []netip.Addr
	for _, tn := range snap.TNodes {
		targets = append(targets, tn.Addr)
	}
	stats := fleet.RunCampaign(w.Net, targets, 443, 0.005, seed)

	res := XValResult{
		Measurements:     stats.Measurements,
		Retained:         stats.RetentionRate(),
		InconsistentASes: len(stats.InconsistentASes),
	}
	for asn, rep := range snap.Reports {
		tuples, ok := stats.Tuples[asn]
		if !ok {
			continue // AS excluded by the consistency filter
		}
		for addr, filtered := range rep.Verdicts {
			reached, measured := tuples[addr]
			if !measured {
				continue
			}
			res.Tuples++
			// Unreachable by traceroute ⇔ judged outbound-filtered.
			if reached == !filtered {
				res.Matches++
			} else {
				res.Mismatch++
			}
		}
	}

	fprintf(out, "== §6.3.1 cross-validation: probe traceroutes vs RoVista verdicts ==\n")
	fprintf(out, "raw measurements: %d, retained: %s, inconsistent ASes excluded: %d (paper: 168,642 raw, 99.2%% retained)\n",
		res.Measurements, percent(res.Retained), res.InconsistentASes)
	fprintf(out, "tuples compared: %d, matches: %d (%s; paper: perfect match)\n",
		res.Tuples, res.Matches, percent(res.MatchRate()))
	return res
}

// CoverageResult is the §6.1 measurement census.
type CoverageResult struct {
	TotalVVPs     int
	UsableVVPs    int // background <= 10 pkt/s
	ASesCovered   int // ASes with at least MinVVPs usable vVPs
	TotalASes     int
	TNodes        int
	TNodePrefixes int
	TNodeRIRs     map[string]int // tNode count per RIR
	Consistency   float64        // (AS, tNode) unanimity rate (paper: 95.1%)
}

// Coverage reproduces the §6.1 coverage statistics.
func Coverage(seed int64, out io.Writer) CoverageResult {
	w := mustWorld(mediumWorld(seed))
	if err := w.AdvanceTo(0); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()

	res := CoverageResult{
		TotalVVPs:   snap.AllVVPs,
		TotalASes:   len(w.Topo.ASNs),
		TNodes:      len(snap.TNodes),
		Consistency: snap.ConsistentPairFraction,
		TNodeRIRs:   map[string]int{},
	}
	for _, vvps := range snap.VVPsByAS {
		res.UsableVVPs += len(vvps)
		if len(vvps) >= r.Cfg.MinVVPsPerAS {
			res.ASesCovered++
		}
	}
	prefixes := map[string]bool{}
	for _, tn := range snap.TNodes {
		prefixes[tn.Prefix.String()] = true
		rir := rirOfPrefix(w, tn.ASN)
		res.TNodeRIRs[rir]++
	}
	res.TNodePrefixes = len(prefixes)

	fprintf(out, "== §6.1 coverage census ==\n")
	fprintf(out, "vVPs discovered: %d; usable (<=10 pkt/s): %d\n", res.TotalVVPs, res.UsableVVPs)
	fprintf(out, "ASes measurable: %d / %d (%s; paper: 28,314/~70k)\n",
		res.ASesCovered, res.TotalASes, percent(float64(res.ASesCovered)/float64(res.TotalASes)))
	fprintf(out, "tNodes: %d across %d prefixes (paper: avg 31 tNodes, min 10)\n", res.TNodes, res.TNodePrefixes)
	fprintf(out, "per-RIR tNode spread: %v (paper: spread across all five RIRs)\n", res.TNodeRIRs)
	fprintf(out, "vVP unanimity per (AS, tNode): %s (paper: 95.1%%)\n", percent(res.Consistency))
	return res
}

func rirOfPrefix(w *core.World, asn inet.ASN) string {
	if info, ok := w.Topo.Info[asn]; ok {
		return info.RIR.String()
	}
	return rpki.RIR(255).String()
}

// BGPStreamResult is the §7.5 hijack-report analysis.
type BGPStreamResult struct {
	Summary hijack.Summary
	// CoveredContained: RPKI-covered hijacks spread less than uncovered
	// ones on average.
	CoveredContained bool
}

// BGPStream reproduces §7.5: generate hijack reports, join them with ROV
// scores, and measure how coverage and path filtering limited them.
func BGPStream(seed int64, out io.Writer) BGPStreamResult {
	w := mustWorld(smallWorld(seed))
	if err := w.AdvanceTo(0); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()

	events := hijack.Generate(w, 120, seed)
	reports := hijack.Analyze(w, snap.Scores(), events)
	res := BGPStreamResult{Summary: hijack.Summarize(reports)}
	res.CoveredContained = res.Summary.MeanSpreadCovered < res.Summary.MeanSpreadUncovered

	s := res.Summary
	fprintf(out, "== §7.5 BGPStream-style hijack analysis ==\n")
	fprintf(out, "reports: %d; RPKI-covered: %d (%s; paper: 179/1277 = 14%%)\n",
		s.Total, s.RPKICovered, percent(float64(s.RPKICovered)/float64(max1(s.Total))))
	fprintf(out, "covered hijacks crossing a >90%%-score AS: %d (paper: 5/124, all via customer routes)\n", s.CoveredHighScore)
	fprintf(out, "uncovered hijacks crossing a >90%%-score AS: %d (paper: 204/884 = 23.1%% — a ROA would have helped)\n", s.UncoveredHighScore)
	fprintf(out, "mean blast radius: covered %.1f ASes vs uncovered %.1f ASes\n", s.MeanSpreadCovered, s.MeanSpreadUncovered)
	return res
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// ChallengesResult is the §7.6 classification summary.
type ChallengesResult struct {
	Challenges []analysis.Challenge
	ByKind     map[analysis.ChallengeKind]int
	// TruthAgreement: classified default-route ASes that really have a
	// default leak in the ground truth.
	DefaultRouteCorrect int
	DefaultRouteTotal   int
}

// Challenges reproduces §7.6: classify why high-but-not-full scorers stall,
// and verify the default-route classifications against ground truth.
func Challenges(seed int64, out io.Writer) ChallengesResult {
	cfg := smallWorld(seed)
	cfg.DefaultRouteLeakFrac = 0.25
	cfg.CustomerExemptFrac = 0.25
	w := mustWorld(cfg)
	if err := w.AdvanceTo(0); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()

	res := ChallengesResult{ByKind: map[analysis.ChallengeKind]int{}}
	// The paper analyses the >90%% band; below that, partial collateral
	// benefit dominates and first-hop heuristics lose meaning.
	res.Challenges = analysis.ClassifyChallenges(w, snap, 90)
	for _, c := range res.Challenges {
		res.ByKind[c.Kind]++
		if c.Kind == analysis.ChallengeDefaultRoute {
			res.DefaultRouteTotal++
			if w.Truth[c.ASN].DefaultLeak || w.Graph.AS(c.ASN).HasDefault {
				res.DefaultRouteCorrect++
			}
		}
	}

	fprintf(out, "== §7.6 challenges to a 100%% score ==\n")
	for kind, n := range res.ByKind {
		fprintf(out, "  %-28s %d ASes\n", kind, n)
	}
	fprintf(out, "default-route classifications confirmed by ground truth: %d/%d\n",
		res.DefaultRouteCorrect, res.DefaultRouteTotal)
	return res
}

// SurveyResult mirrors the §6.3.2 MANRS survey comparison.
type SurveyResult struct {
	Responses []groundtruth.SurveyResponse
	Compared  int
	// FullDeployersChecked / FullDeployersConsistent: respondents whose
	// ground truth is a full deployment, and how many RoVista scores >= 90
	// (the paper: 13/13 deployers at a perfect score).
	FullDeployersChecked, FullDeployersConsistent int
	// CollateralSurprises: operators who said "not deployed" but score
	// 100% (the AS-1403 story: protected by their providers).
	CollateralSurprises int
}

// Survey reproduces the §6.3.2 operator survey comparison.
func Survey(seed int64, out io.Writer) SurveyResult {
	w := mustWorld(smallWorld(seed))
	if err := w.AdvanceTo(w.Cfg.Days); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()
	scores := snap.Scores()

	res := SurveyResult{Responses: groundtruth.SimulateSurvey(w, w.Cfg.Days, 31, 0.13, seed)}
	for _, resp := range res.Responses {
		s, ok := scores[resp.ASN]
		if !ok {
			s = r.OracleScore(resp.ASN, snap.TNodes)
		}
		res.Compared++
		switch resp.Answer {
		case groundtruth.AnswerDeployed:
			// The verifiable claim: a clean full deployment must measure
			// >= 90. Partial modes (customer-exempt, prefer-valid) and
			// deployments with local exceptions (default-route leaks,
			// SLURM whitelists) legitimately score anywhere — the paper's
			// operator follow-ups surfaced exactly these caveats.
			tr := w.Truth[resp.ASN]
			if tr.Kind == "full" && !tr.DefaultLeak && !tr.SLURMException.IsValid() {
				res.FullDeployersChecked++
				if s >= 90 {
					res.FullDeployersConsistent++
				}
			}
		case groundtruth.AnswerNotDeployed:
			if s >= 100 {
				res.CollateralSurprises++
			}
		}
	}

	fprintf(out, "== §6.3.2 operator survey vs RoVista ==\n")
	fprintf(out, "responses: %d; full deployers confirmed: %d/%d (paper: 13/13)\n",
		res.Compared, res.FullDeployersConsistent, res.FullDeployersChecked)
	fprintf(out, "non-deployers at a 100%% score (collateral benefit, the AS-1403 case): %d\n", res.CollateralSurprises)
	return res
}
