package experiments

import (
	"io"
	"sort"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/groundtruth"
	"github.com/netsec-lab/rovista/internal/inet"
)

// Table1Row is one tier-1 AS in the Table-1 reproduction.
type Table1Row struct {
	ASN      inet.ASN
	Rank     int
	Score    float64
	HasScore bool
	Truth    string // ground-truth policy kind
}

// Table1Result is the tier-1 scoreboard.
type Table1Result struct {
	Rows []Table1Row
	// FullShare is the fraction of scored tier-1s at exactly 100%.
	FullShare float64
	// HighShare uses the paper's >= 90%% convention (Table 1 counts Verizon
	// at 94.44%% among the protected; 16/17 overall).
	HighShare float64
	// MinScore is the lowest tier-1 score (the Deutsche Telekom role: 0%).
	MinScore float64
}

// Table1 reproduces Table 1: ROV protection scores of the tier-1 clique.
func Table1(seed int64, out io.Writer) Table1Result {
	w := mustWorld(mediumWorld(seed))
	if err := w.AdvanceTo(w.Cfg.Days); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()
	scores := snap.Scores()

	res := Table1Result{MinScore: 101}
	full, high, scored := 0, 0, 0
	for _, t1 := range w.Topo.Tier1 {
		row := Table1Row{ASN: t1, Rank: w.Topo.Info[t1].Rank, Truth: w.Truth[t1].Kind}
		if s, ok := scores[t1]; ok {
			row.Score, row.HasScore = s, true
		} else {
			// Tier-1s without local vVPs are scored via the data-plane
			// oracle (the paper reaches them through vVPs inside the AS;
			// our worlds sometimes lack global-counter hosts there).
			row.Score, row.HasScore = r.OracleScore(t1, snap.TNodes), true
		}
		scored++
		if row.Score >= 100 {
			full++
		}
		if row.Score >= 90 {
			high++
		}
		if row.Score < res.MinScore {
			res.MinScore = row.Score
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Rank < res.Rows[j].Rank })
	if scored > 0 {
		res.FullShare = float64(full) / float64(scored)
		res.HighShare = float64(high) / float64(scored)
	}

	fprintf(out, "== Table 1: ROV protection of tier-1 ASes ==\n")
	fprintf(out, "%6s %10s %10s %22s\n", "rank", "ASN", "score", "ground truth")
	for _, row := range res.Rows {
		fprintf(out, "%6d %10v %9.1f%% %22s\n", row.Rank, row.ASN, row.Score, row.Truth)
	}
	fprintf(out, "tier-1s protected (score >= 90%%): %s (paper: 16/17 = 94.1%%)\n", percent(res.HighShare))
	fprintf(out, "lowest tier-1 score: %.1f%% (paper: Deutsche Telekom at 0%%)\n", res.MinScore)
	return res
}

// TableClaimsResult is the Tables 2+3 reproduction: operator announcements
// vs RoVista scores.
type TableClaimsResult struct {
	Comparisons []groundtruth.Comparison
	// PosConsistent / PosTotal: deployment claims matching a ≥90% score.
	PosConsistent, PosTotal int
	// NegConsistent / NegTotal: non-deployment claims matching a 0% score.
	NegConsistent, NegTotal int
	// StaleInconsistent: stale claims RoVista correctly contradicts (the
	// BIT / Gigabit / Dhiraagu rows of Table 2).
	StaleInconsistent int
}

// Tables2And3 reproduces Tables 2 and 3: public ROV announcements compared
// against measured scores, including deliberately stale claims.
func Tables2And3(seed int64, out io.Writer) TableClaimsResult {
	cfg := smallWorld(seed)
	cfg.RollbackFrac = 0.12 // a few stale announcements, as in Table 2
	w := mustWorld(cfg)
	if err := w.AdvanceTo(cfg.Days); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()
	scores := snap.Scores()
	// Score claim subjects without local vVPs via the oracle so the tables
	// are fully populated (mirrors the paper's "captured by RoVista" rate).
	claims := groundtruth.BuildAnnouncements(w, cfg.Days, 16, 2, seed)
	for _, c := range claims {
		if _, ok := scores[c.ASN]; !ok {
			scores[c.ASN] = r.OracleScore(c.ASN, snap.TNodes)
		}
	}
	comps := groundtruth.Compare(claims, scores)

	res := TableClaimsResult{Comparisons: comps}
	for _, c := range comps {
		if !c.HasScore {
			continue
		}
		if c.ClaimsROV {
			res.PosTotal++
			if c.Consistent {
				res.PosConsistent++
			}
			if c.Stale && !c.Consistent {
				res.StaleInconsistent++
			}
		} else {
			res.NegTotal++
			if c.Consistent {
				res.NegConsistent++
			}
		}
	}

	fprintf(out, "== Tables 2 and 3: operator announcements vs RoVista ==\n")
	fprintf(out, "%10s %8s %8s %8s %12s\n", "ASN", "claims", "score", "stale", "consistent")
	for _, c := range res.Comparisons {
		claim := "no-ROV"
		if c.ClaimsROV {
			claim = "ROV"
		}
		stale := ""
		if c.Stale {
			stale = "stale"
		}
		fprintf(out, "%10v %8s %7.1f%% %8s %12v\n", c.ASN, claim, c.Score, stale, c.Consistent)
	}
	fprintf(out, "deployment claims consistent:     %d/%d (paper: 35/38 with score >= 90%%)\n", res.PosConsistent, res.PosTotal)
	fprintf(out, "non-deployment claims consistent: %d/%d (paper: 2/2)\n", res.NegConsistent, res.NegTotal)
	fprintf(out, "stale claims RoVista contradicts: %d (paper: BIT, Gigabit ApS, Dhiraagu)\n", res.StaleInconsistent)
	return res
}
