package experiments

import (
	"io"
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/analysis"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/topology"
)

// Fig5Result is the Figure-5 reproduction: the CDF of the latest ROV
// protection scores plus the paper's three headline shares.
type Fig5Result struct {
	CDF []analysis.CDFPoint
	// ZeroPct / FullPct / PartialPct are the shares of scored ASes at 0%,
	// at 100%, and strictly in between (paper: 36.2% / 12.3% / 51.5%).
	ZeroPct, FullPct, PartialPct float64
	ScoredASes                   int
}

// Fig5 reproduces Figure 5 on a medium world's latest snapshot.
func Fig5(seed int64, out io.Writer) Fig5Result {
	w := mustWorld(mediumWorld(seed))
	if err := w.AdvanceTo(w.Cfg.Days); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()
	return fig5From(snap, out)
}

func fig5From(snap *core.Snapshot, out io.Writer) Fig5Result {
	scores := snap.Scores()
	res := Fig5Result{CDF: analysis.ScoreCDF(scores), ScoredASes: len(scores)}
	zero, full := 0, 0
	for _, s := range scores {
		switch {
		case s == 0:
			zero++
		case s >= 100:
			full++
		}
	}
	if len(scores) > 0 {
		res.ZeroPct = 100 * float64(zero) / float64(len(scores))
		res.FullPct = 100 * float64(full) / float64(len(scores))
		res.PartialPct = 100 - res.ZeroPct - res.FullPct
	}

	fprintf(out, "== Figure 5: CDF of ROV protection scores ==\n")
	fprintf(out, "scored ASes: %d\n", res.ScoredASes)
	fprintf(out, "never protected (0%%):   %5.1f%%   (paper: 36.2%%)\n", res.ZeroPct)
	fprintf(out, "partially protected:    %5.1f%%   (paper: 51.5%%)\n", res.PartialPct)
	fprintf(out, "fully protected (100%%): %5.1f%%   (paper: 12.3%%)\n", res.FullPct)
	fprintf(out, "CDF (every 10 points):\n")
	for _, p := range res.CDF {
		if int(p.Score)%10 == 0 {
			fprintf(out, "  F(%3.0f) = %.3f\n", p.Score, p.Frac)
		}
	}
	return res
}

// Fig6Result is the Figure-6 reproduction: % of ASes at a 100% score per
// snapshot.
type Fig6Result struct {
	Days []int
	Pct  []float64
}

// Fig6 reproduces Figure 6 over a small world's timeline.
func Fig6(seed int64, out io.Writer) Fig6Result {
	cfg := smallWorld(seed)
	w := mustWorld(cfg)
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	tl, err := r.RunTimeline(cfg.Days / 10)
	if err != nil {
		panic(err)
	}
	days, pct := tl.FullProtectionSeries()
	res := Fig6Result{Days: days, Pct: pct}

	fprintf(out, "== Figure 6: %% of ASes with a 100%% ROV score over time ==\n")
	for i := range days {
		fprintf(out, "  day %4d: %5.1f%%\n", days[i], pct[i])
	}
	if len(pct) >= 2 {
		fprintf(out, "start -> end: %.1f%% -> %.1f%% (paper: 6.3%% -> 12.3%%)\n", pct[0], pct[len(pct)-1])
	}
	return res
}

// Fig7Result is the Figure-7 reproduction.
type Fig7Result struct {
	Bins                 []analysis.RankBin
	TopMean, BottomMean  float64
	Top25PctHighScorers  float64 // share of the top quarter scoring >= 80
	Bottom25PctLowScores float64 // share of the bottom quarter scoring < 20
}

// Fig7 reproduces Figure 7: protection score distribution by AS rank.
func Fig7(seed int64, out io.Writer) Fig7Result {
	w := mustWorld(mediumWorld(seed))
	if err := w.AdvanceTo(w.Cfg.Days); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()
	scores := snap.Scores()

	binSize := len(w.Topo.ASNs) / 8
	res := Fig7Result{Bins: analysis.ScoreByRank(w.Topo, scores, binSize)}
	res.TopMean, res.BottomMean = analysis.MeanScoreTopVsBottom(w.Topo, scores)
	res.Top25PctHighScorers = shareInRankQuartile(w.Topo, scores, true)
	res.Bottom25PctLowScores = shareInRankQuartile(w.Topo, scores, false)

	fprintf(out, "== Figure 7: score distribution by AS rank ==\n")
	fprintf(out, "%16s %8s %8s %8s %8s %8s %6s\n", "rank bin", "0-20", "20-40", "40-60", "60-80", "80-100", "n")
	for _, b := range res.Bins {
		fprintf(out, "%7d-%-8d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %6d\n",
			b.LoRank, b.HiRank,
			100*b.Buckets.Frac[0], 100*b.Buckets.Frac[1], 100*b.Buckets.Frac[2],
			100*b.Buckets.Frac[3], 100*b.Buckets.Frac[4], b.Buckets.N)
	}
	fprintf(out, "mean score, top half of ranking:    %5.1f\n", res.TopMean)
	fprintf(out, "mean score, bottom half of ranking: %5.1f\n", res.BottomMean)
	return res
}

func shareInRankQuartile(topo *topology.Topology, scores map[inet.ASN]float64, top bool) float64 {
	byRank := topo.ByRank()
	q := len(byRank) / 4
	var slice []inet.ASN
	if top {
		slice = byRank[:q]
	} else {
		slice = byRank[len(byRank)-q:]
	}
	hit, n := 0, 0
	for _, asn := range slice {
		s, ok := scores[asn]
		if !ok {
			continue
		}
		n++
		if top && s >= 80 {
			hit++
		}
		if !top && s < 20 {
			hit++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(hit) / float64(n)
}

// Fig8Series is one AS's score trajectory in the Figure-8 reproduction.
type Fig8Series struct {
	ASN    inet.ASN
	Role   string // "provider", "stub-customer", "multihomed-customer"
	Days   []int
	Scores []float64
}

// Fig8Result is the KPN collateral-benefit case study.
type Fig8Result struct {
	Provider  inet.ASN
	DeployDay int
	Series    []Fig8Series
	// StubsJumpedWithProvider: single-homed customers that reached 100%
	// the same snapshot the provider did.
	StubsJumpedWithProvider int
	// MultihomedUnchanged: customers with an unfiltered second upstream
	// whose score did not jump (the AS 3573 / 15466 behaviour).
	MultihomedUnchanged int
}

// Fig8 reproduces Figure 8: a provider (the "KPN" role) deploys ROV
// mid-timeline; its single-homed customers inherit full protection the same
// day while multihomed customers with non-filtering second upstreams do not.
func Fig8(seed int64, out io.Writer) Fig8Result {
	cfg := smallWorld(seed)
	// Keep the case study clean of covered invalids: collateral damage
	// would cap everyone's ceiling below 100% and blur the jump the figure
	// is about (KPN and its stubs moved 0% -> 100% in one day).
	cfg.CoveredInvalidAnnouncements = 0
	w := mustWorld(cfg)

	// Cast the roles: a tier-2/3 provider with both single-homed and
	// multihomed customers; everyone in the cast must start unfiltered, and
	// candidates are auditioned against the routing oracle so the scripted
	// deployment produces the figure's dynamics without collapsing the
	// measurement substrate.
	if err := w.AdvanceTo(0); err != nil {
		panic(err)
	}
	provider, stubs, multis := castFig8(w)
	deployDay := cfg.Days / 2
	w.Truth[provider].Policy = rovFull()
	w.Truth[provider].Kind = "full"
	w.Truth[provider].DeployDay = deployDay
	w.Truth[provider].RollbackDay = 0
	// Guarantee the cast is observable: every role needs qualifying vVPs.
	for _, asn := range append(append([]inet.ASN{provider}, stubs...), multis...) {
		w.AddCandidateHosts(asn, 3)
	}

	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	tl, err := r.RunTimeline(cfg.Days / 10)
	if err != nil {
		panic(err)
	}

	res := Fig8Result{Provider: provider, DeployDay: deployDay}
	record := func(asn inet.ASN, role string) Fig8Series {
		days, scores := tl.ScoreSeries(asn)
		return Fig8Series{ASN: asn, Role: role, Days: days, Scores: scores}
	}
	res.Series = append(res.Series, record(provider, "provider"))
	for _, s := range stubs {
		ser := record(s, "stub-customer")
		res.Series = append(res.Series, ser)
		if jumpedAt(ser, deployDay) {
			res.StubsJumpedWithProvider++
		}
	}
	for _, m := range multis {
		ser := record(m, "multihomed-customer")
		res.Series = append(res.Series, ser)
		if !jumpedAt(ser, deployDay) {
			res.MultihomedUnchanged++
		}
	}

	fprintf(out, "== Figure 8: collateral benefit — provider %v deploys ROV at day %d ==\n", provider, deployDay)
	for _, ser := range res.Series {
		fprintf(out, "%-22s %v: ", ser.Role, ser.ASN)
		for i := range ser.Days {
			fprintf(out, "(%d,%3.0f) ", ser.Days[i], ser.Scores[i])
		}
		fprintf(out, "\n")
	}
	fprintf(out, "single-homed customers jumping with the provider: %d/%d\n", res.StubsJumpedWithProvider, len(stubs))
	fprintf(out, "multihomed customers unaffected: %d/%d\n", res.MultihomedUnchanged, len(multis))
	return res
}

// jumpedAt reports whether the series moved from below 50 to 100 at or
// right after the deploy day.
func jumpedAt(s Fig8Series, deployDay int) bool {
	var before, after float64 = -1, -1
	for i, d := range s.Days {
		if d < deployDay {
			before = s.Scores[i]
		}
		if d >= deployDay && after < 0 {
			after = s.Scores[i]
		}
	}
	return before >= 0 && after >= 0 && before < 50 && after >= 100
}

// castFig8 picks the provider and customer roles. The world must already be
// advanced (converged): each structural candidate is *auditioned* — its
// deployment is applied temporarily and the routing oracle must show (a) the
// measurement clients keep reaching every invalid prefix, (b) the
// single-homed stubs lose reachability entirely, and (c) the multihomed
// customer keeps a way around. The first candidate passing the audition is
// cast, with the whole cast frozen against schedule noise.
func castFig8(w *core.World) (provider inet.ASN, stubs, multis []inet.ASN) {
	type cand struct {
		asn           inet.ASN
		stubs, multis []inet.ASN
	}
	var structural []cand
	for _, asn := range w.Topo.ASNs {
		tier := w.Topo.Info[asn].Tier
		if tier != topology.Tier2 && tier != topology.Tier3 {
			continue
		}
		var cs, cm []inet.ASN
		for _, c := range w.Topo.Customers(asn) {
			if w.Topo.Info[c].Tier != topology.Stub {
				continue // non-stubs hear routes over peering links too
			}
			provs := w.Topo.Providers(c)
			if len(provs) == 1 {
				cs = append(cs, c)
			} else if len(provs) > 1 {
				for _, p := range provs {
					if p != asn && w.Truth[p].DeployDay < 0 {
						cm = append(cm, c)
						break
					}
				}
			}
		}
		if len(cs) >= 2 && len(cm) >= 1 {
			structural = append(structural, cand{asn, cs[:2], cm[:1]})
		}
	}
	if len(structural) == 0 {
		panic("experiments: no suitable Figure-8 provider in this topology")
	}

	var invalidAddrs []netip.Addr
	var invalidPrefixes []netip.Prefix
	for _, inv := range w.Invalids {
		if inv.Shared {
			continue
		}
		invalidAddrs = append(invalidAddrs, inet.NthAddr(inv.Prefix, 20))
		invalidPrefixes = append(invalidPrefixes, inv.Prefix)
	}
	reachesAll := func(asn inet.ASN) bool {
		for _, a := range invalidAddrs {
			if !w.Graph.Reachable(asn, a) {
				return false
			}
		}
		return true
	}
	reachesAny := func(asn inet.ASN) bool {
		for _, a := range invalidAddrs {
			if w.Graph.Reachable(asn, a) {
				return true
			}
		}
		return false
	}

	freeze := func(c cand) {
		for _, asn := range append(append([]inet.ASN{c.asn}, c.stubs...), c.multis...) {
			w.Truth[asn].DeployDay = -1
			w.Truth[asn].RollbackDay = 0
			w.Truth[asn].Kind = "none"
			w.Truth[asn].DefaultLeak = false
			w.Graph.AS(c.asn).HasDefault = false
			w.Graph.AS(asn).Policy = nil
			w.Graph.AS(asn).VRPs = nil
		}
	}

	for _, c := range structural {
		// Baseline with the cast frozen and un-filtered.
		freeze(c)
		w.Graph.ConvergePrefixes(invalidPrefixes)
		baselineOK := reachesAll(w.ClientA.ASN) && reachesAll(w.ClientB.ASN) && reachesAll(c.asn)
		for _, stx := range c.stubs {
			baselineOK = baselineOK && reachesAll(stx)
		}
		if !baselineOK {
			continue
		}
		// Audition: apply the deployment and check the script's outcome.
		a := w.Graph.AS(c.asn)
		a.Policy = rovFull()
		a.VRPs = w.VRPs
		w.Graph.ConvergePrefixes(invalidPrefixes)
		ok := reachesAll(w.ClientA.ASN) && reachesAll(w.ClientB.ASN)
		for _, stx := range c.stubs {
			ok = ok && !reachesAny(stx)
		}
		for _, m := range c.multis {
			ok = ok && reachesAny(m)
		}
		// Revert the audition.
		a.Policy = nil
		a.VRPs = nil
		w.Graph.ConvergePrefixes(invalidPrefixes)
		if !ok {
			continue
		}
		sort.Slice(c.stubs, func(i, j int) bool { return c.stubs[i] < c.stubs[j] })
		sort.Slice(c.multis, func(i, j int) bool { return c.multis[i] < c.multis[j] })
		return c.asn, c.stubs, c.multis
	}
	panic("experiments: no Figure-8 candidate survived the routing audition")
}
