package experiments

import (
	"fmt"
	"io"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/analysis"
	"github.com/netsec-lab/rovista/internal/baselines"
	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/groundtruth"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/topology"
)

// Fig9Result is the collateral-damage case study.
type Fig9Result struct {
	// ROVInstalled: the filtering AS kept only the valid covering route.
	ROVInstalled bool
	// DeliveredToHijacker: its traffic for the /24 nevertheless reached the
	// wrong origin.
	DeliveredToHijacker bool
	// ControlToVictim: traffic for the rest of the /20 reached the victim.
	ControlToVictim bool
	// DamageCasesInWorld: §7.4-style detections in a full generated world.
	DamageCasesInWorld int
}

// Fig9 reproduces Figure 9: TDC (ROV) behind Deutsche Telekom (no ROV)
// still delivers traffic to an invalid more-specific — then runs the same
// detection over a generated world.
func Fig9(seed int64, out io.Writer) Fig9Result {
	mp := netip.MustParsePrefix
	const (
		tdc      inet.ASN = 3292
		dtag     inet.ASN = 3320
		orange   inet.ASN = 5511
		seabone  inet.ASN = 6762
		hijacker inet.ASN = 36947
	)
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: orange, Prefix: mp("193.251.160.0/20"), MaxLength: 20}})
	g := bgp.NewGraph()
	g.Link(dtag, tdc, bgp.Customer)
	g.Link(dtag, orange, bgp.Peer)
	g.Link(dtag, seabone, bgp.Peer)
	g.Link(seabone, hijacker, bgp.Customer)
	g.AS(orange).Originated = []netip.Prefix{mp("193.251.160.0/20")}
	g.AS(hijacker).Originated = []netip.Prefix{mp("193.251.160.0/24")}
	g.AS(tdc).Policy = rov.Full()
	g.AS(tdc).VRPs = vrps
	if _, err := g.Converge(); err != nil {
		panic(err)
	}

	var res Fig9Result
	_, has24 := g.AS(tdc).BestRoute(mp("193.251.160.0/24"))
	_, has20 := g.AS(tdc).BestRoute(mp("193.251.160.0/20"))
	res.ROVInstalled = !has24 && has20
	if origin, ok := g.OriginOf(tdc, netip.MustParseAddr("193.251.160.1")); ok && origin == hijacker {
		res.DeliveredToHijacker = true
	}
	if origin, ok := g.OriginOf(tdc, netip.MustParseAddr("193.251.170.1")); ok && origin == orange {
		res.ControlToVictim = true
	}

	// Systematic detection over a generated world (§7.4 procedure).
	cfg := smallWorld(seed)
	cfg.CoveredInvalidAnnouncements = 2
	w := mustWorld(cfg)
	if err := w.AdvanceTo(0); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()
	res.DamageCasesInWorld = len(analysis.DetectCollateralDamage(w, snap, 80))

	fprintf(out, "== Figure 9: collateral damage (TDC behind Deutsche Telekom) ==\n")
	fprintf(out, "TDC filtered the invalid /24 and kept the valid /20: %v\n", res.ROVInstalled)
	fprintf(out, "TDC's traffic for 193.251.160.1 delivered to the hijacker: %v\n", res.DeliveredToHijacker)
	fprintf(out, "control traffic for 193.251.170.1 delivered to Orange: %v\n", res.ControlToVictim)
	fprintf(out, "systematic §7.4 detections in a generated world: %d (paper: 6 ASes)\n", res.DamageCasesInWorld)
	return res
}

// Fig10Point is one snapshot of the single-prefix-vs-RoVista comparison.
type Fig10Point struct {
	Day          int
	FPPct, FNPct float64
	// ExemptScore is the customer-exempting tier-1's RoVista score.
	ExemptScore float64
	HasExempt   bool
}

// Fig10Result is the Figure-10 reproduction.
type Fig10Result struct {
	Points []Fig10Point
	// LinkDay is when the test-prefix owner became the tier-1's customer.
	LinkDay int
	Exempt  inet.ASN
	// FNJumped: the single-prefix FN rate increased after the link event.
	FNJumped bool
	// ScoreDropped: the tier-1's RoVista score dipped below 100 after it.
	ScoreDropped bool
}

// Fig10 reproduces Figure 10: a customer-exempting transit ("AT&T") starts
// carrying the single test prefix when its owner ("Cloudflare") becomes a
// customer mid-timeline; single-prefix measurements then misclassify the
// exempting AS and everything single-homed behind it as unsafe while their
// RoVista scores stay above 90%.
func Fig10(seed int64, out io.Writer) Fig10Result {
	cfg := smallWorld(seed)
	// One tNode per test prefix and a wider prefix pool: the scripted event
	// exposes exactly one prefix, which must cost the exempting AS only a
	// few points (AT&T went 100% -> 97.8%), not a fifth of its score.
	cfg.InvalidAnnouncements = 18
	cfg.TNodesPerInvalid = 1
	cfg.CoveredInvalidAnnouncements = 0
	cfg.TNodeBrokenFrac = 0
	w := mustWorld(cfg)

	// Cast: a transit provider with single-homed stub customers plays the
	// AT&T role — customer-exempt filtering from day 0. Its customer cone
	// must be free of invalid origins, otherwise the exemption leaks test
	// prefixes before the scripted event; its stubs are the
	// collateral-benefit ASes whose misclassification drives the FN rate.
	exempt, stubs, testInv := castFig10(w)
	w.Truth[exempt].Policy = rov.CustomerExempt()
	w.Truth[exempt].Kind = "customer-exempt"
	w.Truth[exempt].DeployDay = 0
	w.Truth[exempt].RollbackDay = 0
	for _, asn := range append([]inet.ASN{exempt}, stubs...) {
		w.AddCandidateHosts(asn, 3)
	}
	testAddr := inet.NthAddr(testInv.Prefix, 20)
	linkDay := cfg.Days / 2

	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	res := Fig10Result{LinkDay: linkDay, Exempt: exempt}
	interval := cfg.Days / 10
	linked := false
	for day := 0; day <= cfg.Days; day += interval {
		if !linked && day >= linkDay {
			if err := w.AddLink(exempt, testInv.Origin, bgp.Customer); err != nil {
				panic(err)
			}
			linked = true
		}
		if err := w.AdvanceTo(day); err != nil {
			panic(err)
		}
		snap := r.Measure()
		scores := snap.Scores()
		verdicts := baselines.SinglePrefix(w.Graph, testAddr, sortedKeys(scores))
		fpfn := baselines.CompareSinglePrefix(verdicts, scores)
		p := Fig10Point{Day: day, FPPct: 100 * fpfn.FPRate(), FNPct: 100 * fpfn.FNRate()}
		if s, ok := scores[exempt]; ok {
			p.ExemptScore, p.HasExempt = s, true
		}
		res.Points = append(res.Points, p)
	}

	var fnBefore, fnAfter, nB, nA float64
	for _, p := range res.Points {
		if p.Day < linkDay {
			fnBefore += p.FNPct
			nB++
		} else {
			fnAfter += p.FNPct
			nA++
		}
		if p.HasExempt && p.Day >= linkDay && p.ExemptScore < 100 {
			res.ScoreDropped = true
		}
	}
	if nB > 0 && nA > 0 {
		res.FNJumped = fnAfter/nA > fnBefore/nB
	}

	fprintf(out, "== Figure 10: single-prefix FP/FN vs RoVista; the AT&T/Cloudflare event ==\n")
	fprintf(out, "tier-1 %v exempts customer routes; test-prefix owner becomes its customer on day %d\n", res.Exempt, linkDay)
	fprintf(out, "%8s %8s %8s %14s\n", "day", "FP%", "FN%", "tier1 score")
	for _, p := range res.Points {
		score := "   -"
		if p.HasExempt {
			score = fmtScore(p.ExemptScore)
		}
		fprintf(out, "%8d %7.1f%% %7.1f%% %14s\n", p.Day, p.FPPct, p.FNPct, score)
	}
	fprintf(out, "FN rate increased after the link event: %v (paper: 3.8%% avg, spiking after 2022-03-14)\n", res.FNJumped)
	return res
}

func fmtScore(s float64) string {
	return fmt.Sprintf("%.1f%%", s)
}

// castFig10 picks the "AT&T" role: a transit AS whose customer cone holds
// no invalid origin, with at least two single-homed stub customers; the
// returned invalid plays the Cloudflare test prefix. The cast is frozen so
// scheduled policies cannot interfere with the scripted event.
func castFig10(w *core.World) (inet.ASN, []inet.ASN, core.InvalidAnn) {
	origins := map[inet.ASN]bool{}
	for _, inv := range w.Invalids {
		origins[inv.Origin] = true
	}
	cone := func(asn inet.ASN) map[inet.ASN]bool {
		out := map[inet.ASN]bool{}
		var walk func(a inet.ASN)
		walk = func(a inet.ASN) {
			for _, c := range w.Topo.Customers(a) {
				if !out[c] {
					out[c] = true
					walk(c)
				}
			}
		}
		walk(asn)
		return out
	}
	for _, asn := range w.Topo.ByRank() {
		tier := w.Topo.Info[asn].Tier
		if tier != topology.Tier2 && tier != topology.Tier3 {
			continue
		}
		c := cone(asn)
		dirty := false
		for o := range origins {
			if c[o] {
				dirty = true
				break
			}
		}
		if dirty {
			continue
		}
		var stubs []inet.ASN
		for _, cust := range w.Topo.Customers(asn) {
			if len(w.Topo.Providers(cust)) == 1 {
				stubs = append(stubs, cust)
			}
		}
		if len(stubs) < 2 {
			continue
		}
		if len(stubs) > 3 {
			stubs = stubs[:3]
		}
		// Find a test prefix whose origin is not the cast itself and
		// announces exactly one invalid prefix — like Cloudflare's single
		// test prefix, the link event must expose one tNode, not a batch.
		perOrigin := map[inet.ASN]int{}
		for _, inv := range w.Invalids {
			perOrigin[inv.Origin]++
		}
		for _, inv := range w.Invalids {
			if inv.Shared || inv.Covered || inv.Origin == asn || perOrigin[inv.Origin] != 1 {
				continue
			}
			// Freeze the cast.
			for _, member := range append([]inet.ASN{asn}, stubs...) {
				w.Truth[member].DeployDay = -1
				w.Truth[member].RollbackDay = 0
				w.Truth[member].Kind = "none"
				w.Truth[member].DefaultLeak = false
				w.Graph.AS(member).HasDefault = false
			}
			return asn, stubs, inv
		}
	}
	panic("experiments: no suitable Figure-10 cast in this topology")
}

// Fig11Result is the crowdsourced-list comparison (Figure 11).
type Fig11Result struct {
	// CDFByLabel holds a score CDF per list label.
	CDFByLabel map[baselines.CrowdLabel][]analysis.CDFPoint
	// SafeAt100 / UnsafeAt0 are the agreement shares (paper: 53% of safe
	// ASes at 100%, 80% of unsafe at 0%).
	SafeAt100, UnsafeAt0 float64
	// SafeBelow50: "safe"-labelled ASes RoVista scores below 50 (stale or
	// wrong entries; paper: 16%).
	SafeBelow50 float64
	// MeanByLabel is the mean score per list label; the Figure-11 shape is
	// safe > partially-safe ≳ unsafe.
	MeanByLabel map[baselines.CrowdLabel]float64
	Compared    int
}

// Fig11 reproduces Figure 11: RoVista scores of ASes grouped by their
// crowdsourced-list label, list compiled with lag and errors.
func Fig11(seed int64, out io.Writer) Fig11Result {
	w := mustWorld(mediumWorld(seed))
	if err := w.AdvanceTo(w.Cfg.Days); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	snap := r.Measure()
	scores := snap.Scores()

	list := groundtruth.BuildCrowdsourcedList(w, w.Cfg.Days, w.Cfg.Days/3, 0.08, 200, seed)
	byLabel := map[baselines.CrowdLabel]map[inet.ASN]float64{}
	res := Fig11Result{CDFByLabel: map[baselines.CrowdLabel][]analysis.CDFPoint{}}
	var safeTotal, safe100, safeLow, unsafeTotal, unsafe0 int
	for _, e := range list {
		s, ok := scores[e.ASN]
		if !ok {
			continue
		}
		res.Compared++
		if byLabel[e.Label] == nil {
			byLabel[e.Label] = map[inet.ASN]float64{}
		}
		byLabel[e.Label][e.ASN] = s
		switch e.Label {
		case baselines.LabelSafe:
			safeTotal++
			if s >= 100 {
				safe100++
			}
			if s < 50 {
				safeLow++
			}
		case baselines.LabelUnsafe:
			unsafeTotal++
			if s == 0 {
				unsafe0++
			}
		}
	}
	res.MeanByLabel = map[baselines.CrowdLabel]float64{}
	for label, m := range byLabel {
		res.CDFByLabel[label] = analysis.ScoreCDF(m)
		sum := 0.0
		for _, v := range m {
			sum += v
		}
		if len(m) > 0 {
			res.MeanByLabel[label] = sum / float64(len(m))
		}
	}
	if safeTotal > 0 {
		res.SafeAt100 = float64(safe100) / float64(safeTotal)
		res.SafeBelow50 = float64(safeLow) / float64(safeTotal)
	}
	if unsafeTotal > 0 {
		res.UnsafeAt0 = float64(unsafe0) / float64(unsafeTotal)
	}

	fprintf(out, "== Figure 11: RoVista scores of crowdsourced-list ASes ==\n")
	fprintf(out, "list entries with a RoVista score: %d\n", res.Compared)
	fprintf(out, "safe-labelled at 100%% score:  %s  (paper: 53%%)\n", percent(res.SafeAt100))
	fprintf(out, "safe-labelled below 50%%:      %s  (paper: 16%%)\n", percent(res.SafeBelow50))
	fprintf(out, "unsafe-labelled at 0%% score:  %s  (paper: 80%%)\n", percent(res.UnsafeAt0))
	fprintf(out, "mean score by label: safe %.1f / partially %.1f / unsafe %.1f\n",
		res.MeanByLabel[baselines.LabelSafe], res.MeanByLabel[baselines.LabelPartiallySafe], res.MeanByLabel[baselines.LabelUnsafe])
	return res
}
