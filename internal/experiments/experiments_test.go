package experiments

import (
	"io"
	"strings"
	"testing"

	"github.com/netsec-lab/rovista/internal/detect"
)

// Every experiment must (a) run, (b) render output, and (c) reproduce the
// paper's qualitative shape. Absolute values are world-dependent; the
// assertions below encode the shapes called out in EXPERIMENTS.md.

func TestFig1Shape(t *testing.T) {
	var sb strings.Builder
	res := Fig1(1, &sb)
	if len(res.Points) < 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// ROA coverage grows substantially (paper: ~34% -> 48.2%).
	if last.CoveredPct <= first.CoveredPct {
		t.Fatalf("coverage did not grow: %.1f -> %.1f", first.CoveredPct, last.CoveredPct)
	}
	// Invalid share is a small percentage (paper: ~0.7%), nonzero.
	if last.InvalidPct <= 0 || last.InvalidPct > 15 {
		t.Fatalf("invalid%% = %v", last.InvalidPct)
	}
	// Exclusive share is <= invalid share everywhere.
	surgeSeen := false
	var peakSurge, peakCalm float64
	for _, p := range res.Points {
		if p.ExclusivePct > p.InvalidPct+1e-9 {
			t.Fatalf("exclusive %.2f%% > invalid %.2f%% at day %d", p.ExclusivePct, p.InvalidPct, p.Day)
		}
		if p.SurgeInjection {
			surgeSeen = true
			if p.InvalidPct > peakSurge {
				peakSurge = p.InvalidPct
			}
		} else if p.InvalidPct > peakCalm {
			peakCalm = p.InvalidPct
		}
	}
	if !surgeSeen {
		t.Fatal("surge window never sampled")
	}
	// The surge visibly lifts the invalid share (the 2022 two-AS event).
	if peakSurge <= peakCalm {
		t.Fatalf("surge peak %.2f%% not above calm peak %.2f%%", peakSurge, peakCalm)
	}
	if !strings.Contains(sb.String(), "Figure 1") {
		t.Fatal("missing rendering")
	}
}

func TestFig2Shape(t *testing.T) {
	res := Fig2(2, io.Discard)
	count := func(mode, substr string) int {
		n := 0
		for _, e := range res.Timelines[mode] {
			if strings.Contains(e.Desc, substr) && e.Dropped == "" {
				n++
			}
		}
		return n
	}
	// No filtering: exactly one delivered SYN-ACK from the tNode to vVP.
	if got := count("no-filtering", "SYN-ACK id"); got < 1 {
		t.Fatalf("no-filtering SYN-ACKs = %d", got)
	}
	// Outbound filtering shows MORE tNode SYN-ACKs (RTO retransmissions).
	if count("outbound-filtering", "SYN-ACK") <= count("no-filtering", "SYN-ACK") {
		t.Fatal("outbound case should show retransmissions")
	}
	// Inbound filtering: the SYN-ACK never arrives (dropped events exist).
	droppedInbound := 0
	for _, e := range res.Timelines["inbound-filtering"] {
		if e.Dropped != "" {
			droppedInbound++
		}
	}
	if droppedInbound == 0 {
		t.Fatal("inbound case shows no drops")
	}
}

func TestFig3Shape(t *testing.T) {
	res := Fig3(3, io.Discard)
	if len(res.Cases) != 3 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	want := map[string]detect.Outcome{
		"no-filtering":       detect.NoFiltering,
		"inbound-filtering":  detect.InboundFiltering,
		"outbound-filtering": detect.OutboundFiltering,
	}
	for _, c := range res.Cases {
		if c.Outcome != want[c.Name] {
			t.Fatalf("%s classified %v", c.Name, c.Outcome)
		}
		if len(c.Growth) < 20 {
			t.Fatalf("%s growth series too short: %d", c.Name, len(c.Growth))
		}
	}
}

func TestFig4Shape(t *testing.T) {
	res := Fig4(4, io.Discard)
	if res.TotalVVPs == 0 {
		t.Fatal("no vVPs")
	}
	// Relaxing the cutoff must monotonically add measurable ASes
	// (paper: +14,052 at 30 pkt/s, +18,639 at 100).
	if !(res.ASesAtCutoff[10] < res.ASesAtCutoff[30] && res.ASesAtCutoff[30] < res.ASesAtCutoff[100]) {
		t.Fatalf("cutoff series not increasing: %v", res.ASesAtCutoff)
	}
	if len(res.VVPsPerAS) == 0 {
		t.Fatal("no per-AS counts")
	}
}

func TestFig5Shape(t *testing.T) {
	res := Fig5(5, io.Discard)
	if res.ScoredASes < 50 {
		t.Fatalf("scored ASes = %d", res.ScoredASes)
	}
	// The three-mass shape: a large never-protected block, a moderate
	// fully-protected block, and a partial middle (paper: 36.2/51.5/12.3).
	if res.ZeroPct < 10 {
		t.Fatalf("zero-score share = %.1f%%, want a substantial block", res.ZeroPct)
	}
	if res.FullPct < 3 {
		t.Fatalf("full-score share = %.1f%%, want a visible block", res.FullPct)
	}
	if res.PartialPct < 5 {
		t.Fatalf("partial share = %.1f%%", res.PartialPct)
	}
	// CDF ends at 1.
	if last := res.CDF[len(res.CDF)-1]; last.Frac < 0.999 {
		t.Fatalf("CDF end = %v", last.Frac)
	}
}

func TestFig6Shape(t *testing.T) {
	res := Fig6(6, io.Discard)
	if len(res.Pct) < 5 {
		t.Fatalf("series = %d points", len(res.Pct))
	}
	// Full protection grows over the timeline (paper: 6.3% -> 12.3%).
	if res.Pct[len(res.Pct)-1] <= res.Pct[0] {
		t.Fatalf("full-protection share did not grow: %v", res.Pct)
	}
}

func TestFig7Shape(t *testing.T) {
	res := Fig7(7, io.Discard)
	if len(res.Bins) < 3 {
		t.Fatalf("bins = %d", len(res.Bins))
	}
	// Higher-ranked ASes score higher on average.
	if res.TopMean <= res.BottomMean {
		t.Fatalf("top mean %.1f <= bottom mean %.1f", res.TopMean, res.BottomMean)
	}
	// The top quartile has a visible high-score block and the bottom is
	// dominated by low scores (paper: 25% of top-1000 filter >80%).
	if res.Top25PctHighScorers < 0.1 {
		t.Fatalf("top-quartile high scorers = %v", res.Top25PctHighScorers)
	}
	if res.Bottom25PctLowScores < 0.3 {
		t.Fatalf("bottom-quartile low scores = %v", res.Bottom25PctLowScores)
	}
}

func TestFig8Shape(t *testing.T) {
	res := Fig8(8, io.Discard)
	if len(res.Series) < 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	// The provider itself jumps at its deployment day.
	var provider Fig8Series
	for _, s := range res.Series {
		if s.Role == "provider" {
			provider = s
		}
	}
	if !jumpedAt(provider, res.DeployDay) {
		t.Fatalf("provider did not jump: %+v", provider)
	}
	// At least one single-homed customer inherits the jump (KPN's four
	// stubs); multihomed ones with unfiltered upstreams do not.
	if res.StubsJumpedWithProvider == 0 {
		t.Fatal("no stub customer inherited collateral benefit")
	}
}

func TestFig9Shape(t *testing.T) {
	res := Fig9(9, io.Discard)
	if !res.ROVInstalled {
		t.Fatal("TDC should hold only the valid /20")
	}
	if !res.DeliveredToHijacker {
		t.Fatal("collateral damage must deliver /24 traffic to the hijacker")
	}
	if !res.ControlToVictim {
		t.Fatal("control traffic must reach the legitimate origin")
	}
}

func TestFig10Shape(t *testing.T) {
	res := Fig10(10, io.Discard)
	if len(res.Points) < 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if !res.FNJumped {
		t.Fatal("single-prefix FN rate should increase after the customer link")
	}
}

func TestFig11Shape(t *testing.T) {
	res := Fig11(11, io.Discard)
	if res.Compared < 30 {
		t.Fatalf("compared = %d", res.Compared)
	}
	// Safe-labelled ASes score far better than unsafe-labelled ones, but
	// agreement is imperfect in both directions (lag + errors).
	if res.SafeAt100 <= res.UnsafeAt0/4 && res.SafeAt100 < 0.2 {
		t.Fatalf("safe agreement implausibly low: %v", res.SafeAt100)
	}
	// The defining Figure-11 shape: safe-labelled ASes score far above
	// unsafe-labelled ones, but neither agreement is perfect.
	ms, mu := res.MeanByLabel["safe"], res.MeanByLabel["unsafe"]
	if ms <= mu {
		t.Fatalf("mean score safe %.1f <= unsafe %.1f", ms, mu)
	}
	if res.UnsafeAt0 <= 0 || res.UnsafeAt0 >= 1 {
		t.Fatalf("unsafe agreement = %v, want imperfect majority-ish mass", res.UnsafeAt0)
	}
}

func TestTable1Shape(t *testing.T) {
	res := Table1(12, io.Discard)
	if len(res.Rows) == 0 {
		t.Fatal("no tier-1 rows")
	}
	// The overwhelming majority of tier-1s are protected (paper: 16/17 at
	// >= 90%), but at least one is not (the Deutsche Telekom role).
	if res.HighShare < 0.6 {
		t.Fatalf("tier-1 protected share = %v", res.HighShare)
	}
	if res.MinScore >= 50 {
		t.Fatalf("expected an unprotected tier-1 (DTAG role); min = %v", res.MinScore)
	}
}

func TestTables2And3Shape(t *testing.T) {
	res := Tables2And3(13, io.Discard)
	if res.PosTotal == 0 || res.NegTotal == 0 {
		t.Fatalf("claims: pos=%d neg=%d", res.PosTotal, res.NegTotal)
	}
	// Most deployment claims check out; stale ones are contradicted.
	if float64(res.PosConsistent)/float64(res.PosTotal) < 0.6 {
		t.Fatalf("positive consistency %d/%d too low", res.PosConsistent, res.PosTotal)
	}
	if res.StaleInconsistent == 0 {
		t.Fatal("expected RoVista to contradict at least one stale claim")
	}
	if res.NegConsistent != res.NegTotal {
		t.Fatalf("non-deployment claims: %d/%d consistent", res.NegConsistent, res.NegTotal)
	}
}

func TestXValShape(t *testing.T) {
	res := XVal(14, io.Discard)
	if res.Tuples < 50 {
		t.Fatalf("tuples = %d", res.Tuples)
	}
	// The paper found a perfect match; we require near-perfect.
	if res.MatchRate() < 0.97 {
		t.Fatalf("match rate = %v", res.MatchRate())
	}
}

func TestCoverageShape(t *testing.T) {
	res := Coverage(15, io.Discard)
	if res.UsableVVPs == 0 || res.UsableVVPs > res.TotalVVPs {
		t.Fatalf("vVPs: %d usable of %d", res.UsableVVPs, res.TotalVVPs)
	}
	// Coverage is partial, as in the paper (28K of ~70K ASes).
	if res.ASesCovered == 0 || res.ASesCovered >= res.TotalASes {
		t.Fatalf("covered = %d of %d", res.ASesCovered, res.TotalASes)
	}
	if res.TNodes < 3 || res.TNodePrefixes < 2 {
		t.Fatalf("tNodes = %d over %d prefixes", res.TNodes, res.TNodePrefixes)
	}
	// Unanimity is high (paper: 95.1%).
	if res.Consistency < 0.85 {
		t.Fatalf("consistency = %v", res.Consistency)
	}
	if len(res.TNodeRIRs) < 2 {
		t.Fatalf("tNodes concentrated in %d RIRs", len(res.TNodeRIRs))
	}
}

func TestBGPStreamShape(t *testing.T) {
	res := BGPStream(16, io.Discard)
	s := res.Summary
	if s.Total < 80 {
		t.Fatalf("reports = %d", s.Total)
	}
	// A minority of hijacks are RPKI-covered (paper: 14%).
	frac := float64(s.RPKICovered) / float64(s.Total)
	if frac <= 0 || frac > 0.8 {
		t.Fatalf("covered fraction = %v", frac)
	}
	// Coverage contains the blast radius.
	if !res.CoveredContained {
		t.Fatalf("covered hijacks spread as far as uncovered: %+v", s)
	}
}

func TestChallengesShape(t *testing.T) {
	res := Challenges(17, io.Discard)
	if len(res.Challenges) == 0 {
		t.Skip("seed yields no >50%% partial scorers")
	}
	// Default-route classifications, when made, should mostly be real.
	if res.DefaultRouteTotal > 0 &&
		float64(res.DefaultRouteCorrect)/float64(res.DefaultRouteTotal) < 0.5 {
		t.Fatalf("default-route precision %d/%d", res.DefaultRouteCorrect, res.DefaultRouteTotal)
	}
}

func TestSurveyShape(t *testing.T) {
	res := Survey(18, io.Discard)
	if res.Compared < 20 {
		t.Fatalf("compared = %d", res.Compared)
	}
	if res.FullDeployersChecked > 0 &&
		float64(res.FullDeployersConsistent)/float64(res.FullDeployersChecked) < 0.6 {
		t.Fatalf("full deployers confirmed %d/%d", res.FullDeployersConsistent, res.FullDeployersChecked)
	}
}

func TestAblationDetector(t *testing.T) {
	res := AblationDetector(19, io.Discard)
	if res.ModelAccuracy < 0.8 {
		t.Fatalf("model accuracy = %v", res.ModelAccuracy)
	}
	if res.ModelAccuracy < res.NaiveAccuracy {
		t.Fatalf("model (%v) should beat naive (%v)", res.ModelAccuracy, res.NaiveAccuracy)
	}
}

func TestAblationUnanimity(t *testing.T) {
	res := AblationUnanimity(20, io.Discard)
	// Relaxing the minimum vVP requirement covers at least as many ASes.
	if res.VariantScored < res.BaselineScored {
		t.Fatalf("min=1 scored fewer ASes (%d) than min=2 (%d)", res.VariantScored, res.BaselineScored)
	}
}

func TestAblationTrafficCutoff(t *testing.T) {
	res := AblationTrafficCutoff(21, io.Discard)
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	// Raising the cutoff must not reduce coverage.
	if res[0].VariantScored < res[0].BaselineScored {
		t.Fatalf("cutoff 30 scored %d < baseline %d", res[0].VariantScored, res[0].BaselineScored)
	}
}

func TestAblationExclusivity(t *testing.T) {
	res := AblationExclusivity(22, io.Discard)
	if res.WithoutFilter <= res.WithFilter {
		t.Fatalf("filter removed nothing: %d vs %d", res.WithFilter, res.WithoutFilter)
	}
	if res.SharedMisleads == 0 {
		t.Fatal("expected shared prefixes to be reachable from ROV ASes")
	}
}
