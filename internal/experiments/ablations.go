package experiments

import (
	"io"
	"math"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/detect"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/timeseries"
)

// AblationDetectorResult compares the Appendix-A model-based detector with
// a naive fixed-threshold detector on identical measurement rounds.
type AblationDetectorResult struct {
	ModelAccuracy, NaiveAccuracy float64
	Rounds                       int
}

// AblationDetector runs repeated rounds against a known-outcome fixture at
// several background rates and scores both detectors against ground truth.
func AblationDetector(seed int64, out io.Writer) AblationDetectorResult {
	var res AblationDetectorResult
	modelOK, naiveOK := 0, 0
	for _, rate := range []float64{0, 2, 5, 8} {
		for _, filtered := range []bool{false, true} {
			for trial := 0; trial < 5; trial++ {
				n, client, vvp, tn := detectFixture(seed+int64(trial), filtered)
				vvp.BackgroundRate = rate
				pr := detect.MeasurePair(n, client, vvp.Addr, tn, seed+int64(trial)*31, detect.Config{})
				res.Rounds++

				want := detect.NoFiltering
				if filtered {
					want = detect.OutboundFiltering
				}
				if pr.Usable && pr.Outcome == want {
					modelOK++
				}
				if naiveClassify(pr.IDs) == want {
					naiveOK++
				}
			}
		}
	}
	res.ModelAccuracy = float64(modelOK) / float64(res.Rounds)
	res.NaiveAccuracy = float64(naiveOK) / float64(res.Rounds)

	fprintf(out, "== Ablation: ARMA/ARIMA detector vs naive threshold ==\n")
	fprintf(out, "model-based accuracy: %s over %d rounds\n", percent(res.ModelAccuracy), res.Rounds)
	fprintf(out, "naive threshold accuracy: %s\n", percent(res.NaiveAccuracy))
	return res
}

// naiveClassify is the strawman detector: any growth sample more than twice
// the first sample is a "spike".
func naiveClassify(ids []uint16) detect.Outcome {
	growth := timeseries.GrowthSeries(ids)
	if len(growth) < 12 {
		return detect.Inconclusive
	}
	base := growth[0] + 1
	var spikes []int
	for i, g := range growth {
		if g > 2*base+4 {
			spikes = append(spikes, i)
		}
	}
	switch {
	case len(spikes) == 0:
		return detect.InboundFiltering
	case len(spikes) == 1:
		return detect.NoFiltering
	default:
		return detect.OutboundFiltering
	}
}

// AblationScoresResult compares per-AS scores under two pipeline settings.
type AblationScoresResult struct {
	Name             string
	BaselineScored   int
	VariantScored    int
	MeanAbsScoreDiff float64
}

func compareScores(name string, base, variant *core.Snapshot) AblationScoresResult {
	res := AblationScoresResult{
		Name:           name,
		BaselineScored: len(base.Reports),
		VariantScored:  len(variant.Reports),
	}
	diff, n := 0.0, 0
	for asn, rep := range base.Reports {
		if v, ok := variant.Reports[asn]; ok {
			diff += math.Abs(rep.Score - v.Score)
			n++
		}
	}
	if n > 0 {
		res.MeanAbsScoreDiff = diff / float64(n)
	}
	return res
}

// AblationUnanimity compares the paper's all-vVPs-agree rule with a
// majority-vote variant (implemented by measuring with MinVVPs=1, where
// single votes stand in for relaxed agreement).
func AblationUnanimity(seed int64, out io.Writer) AblationScoresResult {
	w := mustWorld(smallWorld(seed))
	if err := w.AdvanceTo(0); err != nil {
		panic(err)
	}
	base := core.NewRunner(w, core.DefaultRunnerConfig(seed)).Measure()

	relaxed := core.DefaultRunnerConfig(seed)
	relaxed.MinVVPsPerAS = 1
	variant := core.NewRunner(w, relaxed).Measure()

	res := compareScores("unanimity(min=2) vs single-vVP(min=1)", base, variant)
	fprintf(out, "== Ablation: minimum vVPs per AS ==\n")
	fprintf(out, "scored ASes: %d (min 2 vVPs) vs %d (min 1)\n", res.BaselineScored, res.VariantScored)
	fprintf(out, "mean |score delta| on shared ASes: %.2f points\n", res.MeanAbsScoreDiff)
	return res
}

// AblationTrafficCutoff compares background cutoffs 10 vs 30 vs 100 pkt/s.
func AblationTrafficCutoff(seed int64, out io.Writer) []AblationScoresResult {
	w := mustWorld(smallWorld(seed))
	if err := w.AdvanceTo(0); err != nil {
		panic(err)
	}
	base := core.NewRunner(w, core.DefaultRunnerConfig(seed)).Measure()

	var out2 []AblationScoresResult
	fprintf(out, "== Ablation: background-traffic cutoff ==\n")
	fprintf(out, "cutoff 10 pkt/s: %d scored ASes, consistency %s\n",
		len(base.Reports), percent(base.ConsistentPairFraction))
	for _, cutoff := range []float64{30, 100} {
		cfg := core.DefaultRunnerConfig(seed)
		cfg.BackgroundCutoff = cutoff
		snap := core.NewRunner(w, cfg).Measure()
		r := compareScores("cutoff", base, snap)
		out2 = append(out2, r)
		fprintf(out, "cutoff %3.0f pkt/s: %d scored ASes (+%d), consistency %s, mean |score delta| %.2f\n",
			cutoff, len(snap.Reports), len(snap.Reports)-len(base.Reports),
			percent(snap.ConsistentPairFraction), r.MeanAbsScoreDiff)
	}
	return out2
}

// AblationExclusivityResult quantifies the §3.2 test-prefix filter.
type AblationExclusivityResult struct {
	WithFilter, WithoutFilter int // test prefixes selected
	// SharedMisleads: shared prefixes that, if (wrongly) used as test
	// prefixes, would be reachable even from full-ROV ASes.
	SharedMisleads int
}

// anyInvalidPrefixSource is a replacement pipeline stage: it selects every
// prefix with ANY invalid route at the collector, dropping the §3.2
// exclusivity requirement the default TestPrefixSource enforces. Swapping
// it into a Runner reruns the whole round over the unfiltered prefix set.
type anyInvalidPrefixSource struct{ w *core.World }

func (s anyInvalidPrefixSource) TestPrefixes() []netip.Prefix {
	view := s.w.Collector.Snapshot(s.w.Graph)
	var out []netip.Prefix
	for _, p := range view.Prefixes() {
		for _, obs := range view.Routes(p) {
			if s.w.VRPs.Validate(p, obs.Origin()) == rpki.Invalid {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// AblationExclusivity shows why dual-announced invalid prefixes must be
// excluded from the tNode set. The variant round swaps only the
// test-prefix stage of the pipeline; everything downstream is unchanged.
func AblationExclusivity(seed int64, out io.Writer) AblationExclusivityResult {
	w := mustWorld(smallWorld(seed))
	if err := w.AdvanceTo(0); err != nil {
		panic(err)
	}
	var res AblationExclusivityResult

	base := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	res.WithFilter = base.Measure().TestPrefixes

	variant := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	variant.Prefixes = anyInvalidPrefixSource{w}
	res.WithoutFilter = variant.Measure().TestPrefixes
	for _, inv := range w.Invalids {
		if !inv.Shared {
			continue
		}
		// A full-ROV AS still reaches the shared prefix via the victim.
		for asn, tr := range w.Truth {
			if tr.Kind == "full" && tr.DeployedAt(0) && !tr.DefaultLeak {
				if w.Graph.Reachable(asn, inv.Prefix.Addr().Next()) {
					res.SharedMisleads++
				}
				break
			}
		}
	}

	fprintf(out, "== Ablation: exclusive-invalid test-prefix filter ==\n")
	fprintf(out, "test prefixes with the filter:    %d\n", res.WithFilter)
	fprintf(out, "invalid prefixes without it:      %d\n", res.WithoutFilter)
	fprintf(out, "shared prefixes reachable from a full-ROV AS (false negatives avoided): %d\n", res.SharedMisleads)
	return res
}
