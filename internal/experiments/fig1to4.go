package experiments

import (
	"io"
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/detect"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/scan"
	"github.com/netsec-lab/rovista/internal/tcpsim"
	"github.com/netsec-lab/rovista/internal/timeseries"
)

// Fig1Point is one snapshot of Figure 1: ROA coverage and invalid-prefix
// rates as seen at the collector.
type Fig1Point struct {
	Day            int
	CoveredPct     float64 // % of observed prefixes covered by a ROA
	InvalidPct     float64 // % of observed prefixes RPKI-invalid
	ExclusivePct   float64 // % exclusively invalid (test prefixes)
	TotalObserved  int
	SurgeInjection bool // marks the AS-23674/62240-style surge window
}

// Fig1Result is the full Figure 1 reproduction.
type Fig1Result struct {
	Points []Fig1Point
}

// Fig1 reproduces Figure 1: ROA coverage growing over the timeline (top)
// and the percentage of invalid / exclusively-invalid routable prefixes
// (bottom), including a mid-timeline surge of invalid announcements from
// two ASes (the paper's May–August 2022 event).
func Fig1(seed int64, out io.Writer) Fig1Result {
	cfg := smallWorld(seed)
	cfg.Days = 600
	w := mustWorld(cfg)

	// Inject the surge: two extra origins announce a burst of invalid
	// prefixes for roughly a quarter of the timeline.
	surgeStart, surgeEnd := cfg.Days/3, cfg.Days/2
	addSurge(w, surgeStart, surgeEnd, seed)

	var res Fig1Result
	interval := cfg.Days / 20
	for day := 0; day <= cfg.Days; day += interval {
		if err := w.AdvanceTo(day); err != nil {
			panic(err)
		}
		view := w.Collector.Snapshot(w.Graph)
		st := view.Classify(w.VRPs)
		p := Fig1Point{
			Day:            day,
			TotalObserved:  st.Total,
			SurgeInjection: day >= surgeStart && day < surgeEnd,
		}
		if st.Total > 0 {
			p.CoveredPct = 100 * float64(st.Covered) / float64(st.Total)
			p.InvalidPct = 100 * float64(st.Invalid) / float64(st.Total)
			p.ExclusivePct = 100 * float64(st.Exclusive) / float64(st.Total)
		}
		res.Points = append(res.Points, p)
	}

	fprintf(out, "== Figure 1: ROA coverage and invalid routable prefixes over time ==\n")
	fprintf(out, "%8s %14s %12s %14s %8s\n", "day", "ROA-covered%", "invalid%", "exclusive%", "surge")
	for _, p := range res.Points {
		mark := ""
		if p.SurgeInjection {
			mark = "*"
		}
		fprintf(out, "%8d %13.1f%% %11.2f%% %13.2f%% %8s\n", p.Day, p.CoveredPct, p.InvalidPct, p.ExclusivePct, mark)
	}
	return res
}

// addSurge schedules a burst of invalid announcements from two extra wrong
// origins between startDay and endDay.
func addSurge(w *core.World, startDay, endDay int, seed int64) {
	// Reuse victims of existing invalids: announce three more /20s from
	// each victim's reserved /16 region via two fixed wrong origins. The
	// origins must come from the clean set or the announcements never
	// reach the collector (and the surge stays invisible, like the
	// countless misconfigurations the paper could never observe).
	var origins []inet.ASN
	for _, asn := range w.Topo.ASNs {
		if w.Clean[asn] {
			origins = append(origins, asn)
		}
		if len(origins) == 2 {
			break
		}
	}
	if len(origins) < 2 {
		return
	}
	count := 0
	for _, inv := range append([]core.InvalidAnn(nil), w.Invalids...) {
		if inv.Shared || inv.Covered {
			continue
		}
		// The reserved /16 holds 16 /20s; the schedule used index 0.
		base := netip.PrefixFrom(inv.Prefix.Addr(), 16)
		for k := 1; k <= 3; k++ {
			sub := inet.SubnetAt(base, 20, uint32(k))
			w.Invalids = append(w.Invalids, core.InvalidAnn{
				Prefix:   sub,
				Origin:   origins[count%2],
				Victim:   inv.Victim,
				StartDay: startDay,
				EndDay:   endDay,
			})
			count++
		}
		if count >= 12 {
			break
		}
	}
}

// Fig2Event is one rendered packet event of a Figure-2 timeline.
type Fig2Event struct {
	Time    float64
	Desc    string
	Dropped netsim.DropReason
}

// Fig2Result holds the three per-case packet timelines.
type Fig2Result struct {
	Timelines map[string][]Fig2Event // keyed by case name
}

// Fig2 reproduces Figure 2: the packet timeline of the methodology under
// (a) no filtering, (b) inbound filtering, (c) outbound filtering.
func Fig2(seed int64, out io.Writer) Fig2Result {
	res := Fig2Result{Timelines: make(map[string][]Fig2Event)}
	for _, mode := range []string{"no-filtering", "inbound-filtering", "outbound-filtering"} {
		n, client, vvp, tn := detectWorld(seed, mode)
		s := netsim.NewSim(n, seed)
		var evs []Fig2Event
		s.Trace = func(ev netsim.TraceEvent) {
			evs = append(evs, Fig2Event{Time: ev.Time, Desc: ev.Pkt.String(), Dropped: ev.Dropped})
		}
		s.At(0, func() { s.SendFrom(client, client.Addr, vvp, 40000, 443, tcpsim.SYNACK) })
		s.At(0.5, func() {
			s.SendFrom(client, vvp, tn.Addr, 55555, tn.Port, tcpsim.SYN) // spoofed
		})
		s.At(8, func() { s.SendFrom(client, client.Addr, vvp, 40001, 443, tcpsim.SYNACK) })
		s.Run(12)
		res.Timelines[mode] = evs
	}

	fprintf(out, "== Figure 2: methodology packet timelines ==\n")
	for _, mode := range []string{"no-filtering", "inbound-filtering", "outbound-filtering"} {
		fprintf(out, "-- %s --\n", mode)
		for _, e := range res.Timelines[mode] {
			drop := ""
			if e.Dropped != netsim.DropNone {
				drop = "  [DROPPED: " + string(e.Dropped) + "]"
			}
			fprintf(out, "  t=%6.3fs  %s%s\n", e.Time, e.Desc, drop)
		}
	}
	return res
}

// detectWorld builds the canonical 3-AS measurement fixture with the given
// filtering mode and returns (network, client host, vVP address, tNode).
func detectWorld(seed int64, mode string) (*netsim.Network, *netsim.Host, netip.Addr, scan.TNode) {
	n, client, vvpHost, tn := buildDetectFixture(seed, mode == "outbound-filtering")
	if mode == "inbound-filtering" {
		n.IngressFilter[vvpHost.ASN] = func(pkt netsim.Packet) bool {
			return tn.Prefix.Contains(pkt.Src)
		}
	}
	return n, client, vvpHost.Addr, tn
}

// Fig3Case is the recorded IP-ID growth pattern for one filtering case.
type Fig3Case struct {
	Name    string
	IDs     []uint16
	Growth  []float64
	Outcome detect.Outcome
}

// Fig3Result is the Figure-3 reproduction.
type Fig3Result struct {
	Cases []Fig3Case
}

// Fig3 reproduces Figure 3: the expected IP-ID growth pattern per filtering
// case, as produced by an actual measurement round.
func Fig3(seed int64, out io.Writer) Fig3Result {
	var res Fig3Result
	for _, mode := range []string{"no-filtering", "inbound-filtering", "outbound-filtering"} {
		n, client, vvpAddr, tn := detectWorld(seed, mode)
		pr := detect.MeasurePair(n, client, vvpAddr, tn, seed, detect.Config{})
		res.Cases = append(res.Cases, Fig3Case{
			Name:    mode,
			IDs:     pr.IDs,
			Growth:  timeseries.GrowthSeries(pr.IDs),
			Outcome: pr.Outcome,
		})
	}
	fprintf(out, "== Figure 3: IP-ID growth patterns per filtering case ==\n")
	for _, c := range res.Cases {
		fprintf(out, "-- %s (classified: %v) --\n   growth/interval: ", c.Name, c.Outcome)
		for _, g := range c.Growth {
			fprintf(out, "%3.0f ", g)
		}
		fprintf(out, "\n")
	}
	return res
}

// Fig4Result is the Figure-4 reproduction: per-AS vVP counts at the three
// background-traffic cutoffs.
type Fig4Result struct {
	// ASesAtCutoff counts ASes with at least MinVVPs usable vVPs when the
	// cutoff is 10 / 30 / 100 pkt/s.
	ASesAtCutoff map[int]int
	// VVPsPerAS is the (sorted, descending) vVP count per AS at cutoff 10.
	VVPsPerAS []int
	TotalVVPs int
}

// Fig4 reproduces Figure 4: how many ASes become measurable as the
// background-traffic cutoff is relaxed from 10 to 30 to 100 packets/s.
func Fig4(seed int64, out io.Writer) Fig4Result {
	w := mustWorld(mediumWorld(seed))
	if err := w.AdvanceTo(0); err != nil {
		panic(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(seed))
	vvps := r.DiscoverVVPs()

	res := Fig4Result{ASesAtCutoff: make(map[int]int), TotalVVPs: len(vvps)}
	for _, cutoff := range []int{10, 30, 100} {
		perAS := make(map[inet.ASN]int)
		for _, v := range vvps {
			if v.BackgroundRate <= float64(cutoff) {
				perAS[v.ASN]++
			}
		}
		n := 0
		var counts []int
		for _, c := range perAS {
			if c >= r.Cfg.MinVVPsPerAS {
				n++
			}
			counts = append(counts, c)
		}
		res.ASesAtCutoff[cutoff] = n
		if cutoff == 10 {
			sort.Sort(sort.Reverse(sort.IntSlice(counts)))
			res.VVPsPerAS = counts
		}
	}

	fprintf(out, "== Figure 4: vVPs per AS by background-traffic cutoff ==\n")
	fprintf(out, "total vVPs discovered: %d\n", res.TotalVVPs)
	for _, cutoff := range []int{10, 30, 100} {
		fprintf(out, "  cutoff <= %3d pkt/s: %4d measurable ASes\n", cutoff, res.ASesAtCutoff[cutoff])
	}
	return res
}

// buildDetectFixture mirrors the 3-AS detect test world without importing
// test code: AS 10 on top; AS 1 client, AS 2 vVP, AS 3 tNode announcing an
// RPKI-invalid prefix. rovAt2 turns on filtering at the vVP's AS.
func buildDetectFixture(seed int64, rovAt2 bool) (*netsim.Network, *netsim.Host, *netsim.Host, scan.TNode) {
	return detectFixture(seed, rovAt2)
}
