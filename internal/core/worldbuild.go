package core

import (
	"fmt"
	"math/rand"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/seedmix"
	"github.com/netsec-lab/rovista/internal/topology"
)

// buildStage tracks a WorldBuilder's progress through the canonical
// construction order.
type buildStage int

const (
	stageNew buildStage = iota
	stageRPKI
	stageROV
	stageInvalids
	stageHosts
	stageClients
	stageDone
)

// stageNames, indexed by the stage each method *advances to*.
var stageNames = [...]string{
	stageRPKI:     "RPKI",
	stageROV:      "ROVSchedule",
	stageInvalids: "Invalids",
	stageHosts:    "Hosts",
	stageClients:  "ClientsAndCollector",
	stageDone:     "Build",
}

// WorldBuilder assembles a World in explicit stages:
//
//	RPKI → ROVSchedule → Invalids → Hosts → ClientsAndCollector
//
// Each stage method runs exactly one focused builder (worldbuild_rpki.go,
// worldbuild_invalids.go, worldbuild_hosts.go) and returns the builder for
// chaining; Build runs whatever stages remain and returns the finished
// world. The order is load-bearing — the stages share one generator rng, so
// each draw's position in the stream is part of a world's identity — and the
// builder enforces it: calling a stage out of order panics, which is always
// a bug in construction code, never a recoverable condition.
//
// Most callers just use BuildWorld. The staged form exists for tests and
// experiments that want to inspect or perturb a world mid-construction
// (e.g. examine the adoption schedule before hosts exist).
type WorldBuilder struct {
	w     *World
	clean map[inet.ASN]bool
	stage buildStage
}

// NewWorldBuilder validates cfg and prepares an empty world: topology
// generated, routing graph wired, no RPKI, hosts, or schedules yet.
func NewWorldBuilder(cfg WorldConfig) (*WorldBuilder, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("core: non-positive timeline %d", cfg.Days)
	}
	w := &World{
		Cfg:            cfg,
		Topo:           topology.Generate(cfg.Topology),
		Authorities:    make(map[rpki.RIR]*rpki.Authority),
		Truth:          make(map[inet.ASN]*Truth),
		dirty:          make(map[netip.Prefix]bool),
		roaDayByPrefix: make(map[netip.Prefix]int),
		rng:            rand.New(rand.NewSource(cfg.Seed ^ 0x90b1)),
	}
	w.Graph = w.Topo.Graph
	w.Net = netsim.NewNetwork(w.Graph)
	return &WorldBuilder{w: w}, nil
}

// advance asserts the canonical order and moves the builder forward.
func (b *WorldBuilder) advance(to buildStage) {
	if b.stage != to-1 {
		panic(fmt.Sprintf("core: WorldBuilder.%s called at stage %d (stages must run in order)",
			stageNames[to], b.stage))
	}
	b.stage = to
}

// RPKI creates the RIR authorities, per-AS CAs, and the ROA schedule.
func (b *WorldBuilder) RPKI() *WorldBuilder {
	b.advance(stageRPKI)
	b.w.buildRPKI()
	return b
}

// ROVSchedule decides which ASes deploy ROV, when, and in what mode, then
// derives the clean (never-filtering, cleanly-uplinked) set the later
// stages place invalid origins and measurement clients in.
func (b *WorldBuilder) ROVSchedule() *WorldBuilder {
	b.advance(stageROV)
	b.w.buildROVSchedule()
	b.clean = b.w.cleanUpSet()
	b.w.Clean = b.clean
	return b
}

// Invalids schedules the misconfigured announcements and binds the
// default-route leaks and SLURM exceptions to concrete invalid prefixes.
func (b *WorldBuilder) Invalids() *WorldBuilder {
	b.advance(stageInvalids)
	b.w.buildInvalids(b.clean)
	b.w.applyDefaultLeaks()
	b.w.applySLURMExceptions()
	return b
}

// Hosts attaches candidate end hosts to every AS and tNode hosts under each
// invalid prefix.
func (b *WorldBuilder) Hosts() *WorldBuilder {
	b.advance(stageHosts)
	b.w.buildHosts()
	return b
}

// ClientsAndCollector places the two measurement clients and wires the
// RouteViews-style collector.
func (b *WorldBuilder) ClientsAndCollector() *WorldBuilder {
	b.advance(stageClients)
	b.w.buildClients(b.clean)
	b.w.buildCollector()
	// Fault arming is the last construction act: every host exists, and the
	// per-host split-counter decisions must be in place before any scan
	// (including the runner's cached vVP discovery) observes the network.
	if cfg := b.w.Cfg; cfg.Faults.Enabled() {
		b.w.Net.ArmFaults(cfg.Faults, seedmix.Mix(cfg.Seed, faults.StreamArm))
	}
	return b
}

// World returns the world under construction (useful between stages).
func (b *WorldBuilder) World() *World { return b.w }

// Build runs every remaining stage in order and returns the finished world.
func (b *WorldBuilder) Build() *World {
	for b.stage < stageClients {
		switch b.stage {
		case stageNew:
			b.RPKI()
		case stageRPKI:
			b.ROVSchedule()
		case stageROV:
			b.Invalids()
		case stageInvalids:
			b.Hosts()
		case stageHosts:
			b.ClientsAndCollector()
		}
	}
	b.stage = stageDone
	return b.w
}

// cleanUpSet returns the ASes that (a) never filter and (b) have a provider
// chain to a never-filtering tier-1 consisting entirely of never-filtering
// ASes. Invalid announcements originated inside this set propagate to the
// core and to every other member — the survivor bias behind the invalid
// prefixes RouteViews actually observes: misconfigurations behind filtering
// transit simply never become visible (or measurable).
func (w *World) cleanUpSet() map[inet.ASN]bool {
	neverFilters := func(asn inet.ASN) bool { return w.Truth[asn].DeployDay < 0 }

	// Guarantee at least one never-filtering tier-1 (the paper's Table 1
	// has exactly one: Deutsche Telekom) so the clean set is never empty.
	hasCleanT1 := false
	for _, t1 := range w.Topo.Tier1 {
		if neverFilters(t1) {
			hasCleanT1 = true
			break
		}
	}
	if !hasCleanT1 {
		flip := w.Topo.Tier1[len(w.Topo.Tier1)-1]
		w.Truth[flip] = &Truth{ASN: flip, DeployDay: -1, Kind: "none"}
	}

	// Pre-extract provider/customer adjacency once: the fixpoint below is
	// re-run after every flip, and rebuilding (and re-sorting) neighbor
	// lists inside it made the clean-set computation quadratic at 50k ASes.
	providers := make(map[inet.ASN][]inet.ASN, len(w.Topo.ASNs))
	customers := make(map[inet.ASN][]inet.ASN, len(w.Topo.ASNs))
	for _, asn := range w.Topo.ASNs {
		for nbr, rel := range w.Graph.AS(asn).Neighbors {
			switch rel {
			case bgp.Provider:
				providers[asn] = append(providers[asn], nbr)
			case bgp.Customer:
				customers[asn] = append(customers[asn], nbr)
			}
		}
	}

	// An AS is clean when it never filters and at least one of its
	// providers is clean — i.e. it is reachable from a clean tier-1 along
	// customer edges through never-filtering ASes. BFS computes the same
	// fixpoint as the old repeated sweep in one pass over the edges.
	propagate := func() map[inet.ASN]bool {
		clean := make(map[inet.ASN]bool)
		var queue []inet.ASN
		for _, t1 := range w.Topo.Tier1 {
			if neverFilters(t1) {
				clean[t1] = true
				queue = append(queue, t1)
			}
		}
		for len(queue) > 0 {
			asn := queue[0]
			queue = queue[1:]
			for _, c := range customers[asn] {
				if !clean[c] && neverFilters(c) {
					clean[c] = true
					queue = append(queue, c)
				}
			}
		}
		return clean
	}

	clean := propagate()
	// Guarantee a minimum never-filtering region: seeds where the adoption
	// draw isolates the non-filtering tier-1 would otherwise produce worlds
	// where invalid routes cannot propagate at all — unlike any real
	// Internet epoch. Flip filtering ASes adjacent to the clean region to
	// never-filter (deterministically, core-first) until it is big enough.
	minClean := max(len(w.Topo.ASNs)/20, 6)
	byRank := w.Topo.ByRank()
	for len(clean) < minClean {
		flipped := false
		// Edge-first: growing the region downward preserves the filtered
		// core (Table 1's 16/17) while restoring propagation.
		for i := len(byRank) - 1; i >= 0; i-- {
			asn := byRank[i]
			if neverFilters(asn) {
				continue
			}
			adjacent := false
			for _, p := range providers[asn] {
				if clean[p] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				continue
			}
			w.Truth[asn] = &Truth{ASN: asn, DeployDay: -1, Kind: "none"}
			flipped = true
			break
		}
		if !flipped {
			break
		}
		clean = propagate()
	}
	return clean
}
