package core

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/inet"
)

// worldPair builds two worlds from the same config so one can run the
// incremental runner and the other the from-scratch reference; any
// evolution applied to one must be applied to the other.
func worldPair(t *testing.T, seed int64) (*World, *World) {
	t.Helper()
	build := func() *World {
		w, err := BuildWorld(SmallWorldConfig(seed))
		if err != nil {
			t.Fatalf("BuildWorld: %v", err)
		}
		if err := w.AdvanceTo(0); err != nil {
			t.Fatalf("AdvanceTo: %v", err)
		}
		return w
	}
	return build(), build()
}

// routedOrigins lists (AS, prefix) pairs suitable for withdraw/announce
// event batches, deterministically ordered.
func routedOrigins(w *World) (asns []inet.ASN, prefixes []netip.Prefix) {
	for _, asn := range w.Topo.ASNs {
		if ps := w.Topo.Info[asn].Prefixes; len(ps) > 0 {
			asns = append(asns, asn)
			prefixes = append(prefixes, ps[0])
		}
	}
	return
}

// flapOrigins withdraws then re-announces origin k as two separate event
// batches, so the withdrawal converges (and moves forwarding epochs) before
// the route comes back — real churn, unlike the coalesced fault-injection
// flaps.
func flapOrigins(t *testing.T, w *World, asns []inet.ASN, prefixes []netip.Prefix, picks []int) {
	t.Helper()
	var wd, ann []bgp.RouteEvent
	for _, k := range picks {
		wd = append(wd, bgp.RouteEvent{Kind: bgp.EvWithdraw, AS: asns[k], Prefix: prefixes[k]})
		ann = append(ann, bgp.RouteEvent{Kind: bgp.EvAnnounce, AS: asns[k], Prefix: prefixes[k]})
	}
	if _, err := w.Graph.ApplyEvents(wd); err != nil {
		t.Fatalf("withdraw batch: %v", err)
	}
	if _, err := w.Graph.ApplyEvents(ann); err != nil {
		t.Fatalf("announce batch: %v", err)
	}
}

// TestIncrementalRoundEquivalence is the tentpole's contract, tested as a
// randomized property: across a sequence of rounds interleaved with route
// churn, timeline advances, host additions, and fault-profile flips, an
// incremental runner's Snapshot must be bit-identical to a from-scratch
// runner's at every round and worker count — the cache may only change how
// much work a round does, never what it produces. The two runners drive
// separate but identically-built and identically-evolved worlds, because a
// round's discovery scans advance live host state.
func TestIncrementalRoundEquivalence(t *testing.T) {
	const seed, rounds = 21, 8
	wInc, wRef := worldPair(t, seed)
	asns, prefixes := routedOrigins(wInc)
	if len(asns) == 0 {
		t.Fatal("no routed origins to churn; property is vacuous")
	}

	cfgInc := DefaultRunnerConfig(seed)
	cfgInc.Workers = 4
	cfgInc.RecordPairs = true
	cfgRef := cfgInc
	cfgRef.Workers = 1
	cfgRef.Incremental = false
	rInc := NewRunner(wInc, cfgInc)
	rRef := NewRunner(wRef, cfgRef)

	profiles := []faults.Profile{faults.None(), faults.Paper(), faults.Harsh()}
	rng := rand.New(rand.NewSource(seed)) // drives the schedule, not the measurement
	day := 0
	for round := 0; round < rounds; round++ {
		// Evolve both worlds identically.
		switch rng.Intn(4) {
		case 0: // route churn: flap a few random origins
			picks := make([]int, 1+rng.Intn(3))
			for i := range picks {
				picks[i] = rng.Intn(len(asns))
			}
			flapOrigins(t, wInc, asns, prefixes, picks)
			flapOrigins(t, wRef, asns, prefixes, picks)
		case 1: // timeline advance: ROA/ROV churn via the convergence engine
			day += 1 + rng.Intn(5)
			if err := wInc.AdvanceTo(day); err != nil {
				t.Fatalf("AdvanceTo(%d): %v", day, err)
			}
			if err := wRef.AdvanceTo(day); err != nil {
				t.Fatalf("AdvanceTo(%d): %v", day, err)
			}
		case 2: // host-population churn
			asn := asns[rng.Intn(len(asns))]
			wInc.AddCandidateHosts(asn, 2)
			wRef.AddCandidateHosts(asn, 2)
		case 3: // no evolution: the max-reuse round
		}
		// Occasionally flip the fault profile (flushes via fingerprint).
		if rng.Intn(3) == 0 {
			p := profiles[rng.Intn(len(profiles))]
			rInc.Cfg.Faults = p
			rRef.Cfg.Faults = p
		}

		got := rInc.Measure()
		want := rRef.Measure()
		if got.Metrics.FullRound {
			t.Fatalf("round %d: incremental runner reported a full round", round)
		}
		if want.Metrics.PairsRemeasured != want.Metrics.PairsMeasured {
			t.Fatalf("round %d: reference runner reused results", round)
		}
		got.Metrics, want.Metrics = nil, nil
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: incremental snapshot diverged from scratch", round)
		}
	}

	hits, _, _ := rInc.PairCacheStats()
	if hits == 0 {
		t.Fatal("incremental runner never reused a pair; property is vacuous")
	}
}

// TestIncrementalZeroChurnReusesEverything: with no evolution between two
// clean rounds, the second round must reuse the entire grid.
func TestIncrementalZeroChurnReusesEverything(t *testing.T) {
	w, err := BuildWorld(SmallWorldConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunnerConfig(7)
	cfg.Workers = 1
	r := NewRunner(w, cfg)

	first := r.Measure().Metrics
	if first.PairsRemeasured != first.PairsMeasured || first.PairsReused != 0 {
		t.Fatalf("cold round: %+v", first)
	}
	second := r.Measure().Metrics
	if second.PairsMeasured == 0 {
		t.Fatal("no pairs measured; check is vacuous")
	}
	if second.PairsReused != second.PairsMeasured || second.PairsRemeasured != 0 {
		t.Fatalf("zero-churn round re-measured pairs: reused=%d remeasured=%d of %d",
			second.PairsReused, second.PairsRemeasured, second.PairsMeasured)
	}
}

// TestForceFullRoundBypassesCache: ForceFullRound must make exactly the next
// round measure everything, then re-arm the cache.
func TestForceFullRoundBypassesCache(t *testing.T) {
	w, err := BuildWorld(SmallWorldConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(w, DefaultRunnerConfig(7))
	r.Measure()
	r.ForceFullRound()
	m := r.Measure().Metrics
	if !m.FullRound || m.PairsReused != 0 || m.PairsRemeasured != m.PairsMeasured {
		t.Fatalf("forced round still reused: %+v", m)
	}
	m = r.Measure().Metrics
	if m.FullRound || m.PairsReused != m.PairsMeasured {
		t.Fatalf("round after forced full did not reuse: %+v", m)
	}
}

// TestIncrementalDisabledNeverCaches pins the opt-out: with Cfg.Incremental
// false every round is a full round.
func TestIncrementalDisabledNeverCaches(t *testing.T) {
	w, err := BuildWorld(SmallWorldConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunnerConfig(7)
	cfg.Incremental = false
	r := NewRunner(w, cfg)
	r.Measure()
	m := r.Measure().Metrics
	if !m.FullRound || m.PairsReused != 0 || m.PairsRemeasured != m.PairsMeasured {
		t.Fatalf("non-incremental round reused results: %+v", m)
	}
}
