package core

import (
	"fmt"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/topology"
)

// buildRPKI creates the five RIR authorities, one CA per AS, and the ROA
// schedule (encoded in the objects' NotBefore days).
//
// Object emission runs one worker per RIR: an Authority is entirely
// self-contained (per-subject key derivation seeded from issuance order
// *within* that authority, serial numbers counted per repository, no shared
// rng), so as long as each RIR's objects are issued in the same relative
// order as the serial build, the five repositories come out bit-for-bit
// identical at any worker count. The generator-rng draws for the ROA
// schedule all happen in a serial planning pass, in the historical order.
func (w *World) buildRPKI() {
	horizon := w.Cfg.Days + 1
	// Per-RIR CA issuance plans, in global ASN order (the per-authority
	// order the serial build used).
	byRIR := make(map[rpki.RIR][]inet.ASN, len(rpki.AllRIRs))
	for _, asn := range w.Topo.ASNs {
		r := w.Topo.Info[asn].RIR
		byRIR[r] = append(byRIR[r], asn)
	}
	auths := make([]*rpki.Authority, len(rpki.AllRIRs))
	parallelDo(w.buildWorkers(), len(rpki.AllRIRs), func(i int) {
		r := rpki.AllRIRs[i]
		var res rpki.ResourceSet
		// Each RIR holds its forty /8 blocks; grant a generous ASN range.
		for j := 0; j < 40; j++ {
			base := 8 + int(r)*40 + j
			res.Prefixes = append(res.Prefixes, netip.PrefixFrom(inet.V4(uint32(base)<<24), 8))
		}
		res.ASNs = []rpki.ASNRange{{Lo: 1, Hi: 1 << 30}}
		auth := rpki.NewAuthority(r, w.Cfg.Seed+int64(r), res, 0, horizon)
		// One CA per AS holding its allocated prefixes.
		for _, asn := range byRIR[r] {
			subject := fmt.Sprintf("as%d", asn)
			_, err := auth.IssueCA(subject, "", rpki.ResourceSet{Prefixes: w.Topo.Info[asn].Prefixes}, 0, horizon)
			if err != nil {
				panic(fmt.Sprintf("core: issuing CA for %v: %v", asn, err))
			}
		}
		auths[i] = auth
	})
	for i, r := range rpki.AllRIRs {
		w.Authorities[r] = auths[i]
	}
	// ROA schedule: a random subset of prefixes is covered from day 0, the
	// rest of the target set phases in linearly. Plan serially (shuffle and
	// day draws in the historical stream order), then emit per RIR.
	type slot struct {
		asn inet.ASN
		p   netip.Prefix
		day int
	}
	var all []slot
	for _, asn := range w.Topo.ASNs {
		for _, p := range w.Topo.Info[asn].Prefixes {
			all = append(all, slot{asn: asn, p: p})
		}
	}
	w.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	nStart := int(w.Cfg.ROACoverStart * float64(len(all)))
	nEnd := int(w.Cfg.ROACoverEnd * float64(len(all)))
	if nEnd > len(all) {
		nEnd = len(all)
	}
	roaPlans := make(map[rpki.RIR][]slot, len(rpki.AllRIRs))
	for i := 0; i < nEnd; i++ {
		s := all[i]
		if i >= nStart {
			s.day = 1 + w.rng.Intn(w.Cfg.Days-1)
		}
		r := w.Topo.Info[s.asn].RIR
		roaPlans[r] = append(roaPlans[r], s)
		w.roaDayByPrefix[s.p] = s.day
	}
	parallelDo(w.buildWorkers(), len(rpki.AllRIRs), func(i int) {
		r := rpki.AllRIRs[i]
		auth := w.Authorities[r]
		for _, s := range roaPlans[r] {
			_, err := auth.IssueROA(fmt.Sprintf("as%d", s.asn), s.asn,
				[]rpki.ROAPrefix{{Prefix: s.p, MaxLength: s.p.Bits()}}, s.day, horizon)
			if err != nil {
				panic(fmt.Sprintf("core: issuing ROA for %v: %v", s.asn, err))
			}
		}
	})
}

// buildROVSchedule decides which ASes deploy ROV, when, and in what mode.
// Adoption is strongly tier-weighted, matching the paper's observation that
// the core filters far more than the edge (Table 1: 16 of 17 tier-1s have a
// 100% score). A well-filtered core also contains invalid more-specifics,
// which is what keeps collateral damage (§7.4) the exception rather than
// the rule.
func (w *World) buildROVSchedule() {
	byRank := w.Topo.ByRank()
	n := len(byRank)
	nEnd := int(w.Cfg.ROVEnd * float64(n))
	nStart := int(w.Cfg.ROVStart * float64(n))

	// Calibrated against the paper's aggregate shape: a near-universally
	// filtering clique (Table 1), but a transit layer whose spotty adoption
	// lets invalid routes propagate widely — without that, collateral
	// benefit over-protects the edge and "fully protected" swells far past
	// the paper's 12.3%.
	tierProb := map[topology.Tier]float64{
		topology.Tier2: 0.40,
		topology.Tier3: 0.22,
		topology.Stub:  0.10,
	}
	// Scale edge probabilities so the expected adopter count matches the
	// configured end-of-timeline fraction; tier-1/2 rates stay put (the
	// clique's near-universal deployment is structural, not a dial).
	fixed, scalable := float64(len(w.Topo.Tier1)-1), 0.0
	for _, asn := range byRank {
		tier := w.Topo.Info[asn].Tier
		if tier == topology.Tier2 {
			fixed += tierProb[tier]
		} else if tier != topology.Tier1 {
			scalable += tierProb[tier]
		}
	}
	scale := 1.0
	if scalable > 0 {
		scale = (float64(nEnd) - fixed) / scalable
		if scale < 0 {
			scale = 0
		}
	}
	// The clique adopts deterministically with exactly one holdout — the
	// paper's Table 1 shape (16 of 17 protected; Deutsche Telekom at 0%).
	holdout := w.Topo.Tier1[w.rng.Intn(len(w.Topo.Tier1))]
	var adopters []inet.ASN
	for _, asn := range byRank {
		tier := w.Topo.Info[asn].Tier
		if tier == topology.Tier1 {
			if asn != holdout {
				adopters = append(adopters, asn)
				w.Truth[asn] = &Truth{ASN: asn, DeployDay: 0}
			}
			continue
		}
		p := tierProb[tier]
		if tier == topology.Tier3 || tier == topology.Stub {
			p *= scale
		}
		if w.rng.Float64() < p {
			adopters = append(adopters, asn)
			w.Truth[asn] = &Truth{ASN: asn, DeployDay: 0}
		}
	}
	// Assign deployment days: the first nStart filter from day 0.
	w.rng.Shuffle(len(adopters), func(i, j int) { adopters[i], adopters[j] = adopters[j], adopters[i] })
	for i, asn := range adopters {
		tr := w.Truth[asn]
		if i >= nStart {
			tr.DeployDay = 1 + w.rng.Intn(w.Cfg.Days-1)
		}
		roll := w.rng.Float64()
		switch {
		case w.Topo.Info[asn].Tier == topology.Tier1:
			// In a compressed topology every tier-1's customer cone contains
			// some invalid origin, so an exempting tier-1 would leak most
			// test prefixes — unlike the real clique, where the paper's
			// exempting tier-1s still measured 100% because the observed
			// invalid origins were not on their customer paths. Keep the
			// clique's adopters full-filtering; exemptions live in the
			// transit tiers (and scenario casts set them explicitly).
			tr.Policy, tr.Kind = rov.Full(), "full"
		case roll < w.Cfg.CustomerExemptFrac:
			tr.Policy, tr.Kind = rov.CustomerExempt(), "customer-exempt"
		case roll < w.Cfg.CustomerExemptFrac+w.Cfg.PreferValidFrac:
			tr.Policy, tr.Kind = rov.PreferValid(), "prefer-valid"
		case roll < w.Cfg.CustomerExemptFrac+w.Cfg.PreferValidFrac+w.Cfg.EquipmentIssueFrac:
			// A full deployment minus one router: the session toward one
			// random neighbor bypasses validation entirely.
			nbrs := sortedNeighbors(w.Graph.AS(asn))
			if len(nbrs) > 0 {
				bad := nbrs[w.rng.Intn(len(nbrs))]
				tr.Policy = &rov.Policy{Default: rov.ModeDrop, ByASN: map[inet.ASN]rov.Mode{bad: rov.ModeAccept}}
				tr.Kind = "equipment-partial"
				tr.PartialNeighbor = bad
			} else {
				tr.Policy, tr.Kind = rov.Full(), "full"
			}
		default:
			tr.Policy, tr.Kind = rov.Full(), "full"
		}
		if w.Topo.Info[asn].Tier != topology.Tier1 && w.rng.Float64() < w.Cfg.RollbackFrac {
			// Equipment-driven rollbacks (the BIT story) happen at the edge;
			// a clique member retracting would dominate a compressed world.
			tr.RollbackDay = tr.DeployDay + 1 + w.rng.Intn(w.Cfg.Days-tr.DeployDay)
		}
		if w.rng.Float64() < w.Cfg.DefaultRouteLeakFrac {
			tr.DefaultLeak = true // wired up after invalids exist
		} else if w.rng.Float64() < w.Cfg.SLURMExceptionFrac {
			// Marked now, bound to a concrete invalid prefix once the
			// invalid schedule exists (applySLURMExceptions).
			tr.SLURMException = netip.PrefixFrom(inet.V4(0), 0)
		}
	}
	// Fill in non-adopters.
	for _, asn := range w.Topo.ASNs {
		if w.Truth[asn] == nil {
			w.Truth[asn] = &Truth{ASN: asn, DeployDay: -1, Kind: "none"}
		}
	}
}
