package core

import (
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/detect"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
	"github.com/netsec-lab/rovista/internal/scan"
)

// RunnerConfig tunes the measurement pipeline.
type RunnerConfig struct {
	// BackgroundCutoff excludes vVPs above this rate (10 pkt/s, §6.1).
	BackgroundCutoff float64
	// MinVVPsPerAS is the minimum usable vVPs required to score an AS (the
	// paper requires 10; simulated worlds attach fewer hosts per AS, so the
	// default scales down to 2 while preserving the unanimity semantics).
	MinVVPsPerAS int
	// MaxVVPsPerAS caps the vVPs measured per AS to bound work.
	MaxVVPsPerAS int
	// MinTNodes is the minimum tNodes needed for a meaningful round (the
	// paper observes ≥10, on average 31).
	MinTNodes int
	// Detect configures the per-pair measurement round.
	Detect detect.Config
	// Seed drives the measurement's own randomness.
	Seed int64
	// RecordPairs keeps every raw per-(vVP, tNode) result in the snapshot
	// for diagnostics (memory-heavy; off by default).
	RecordPairs bool
	// Workers is the pair-measurement pool size: 0 uses every CPU, 1 runs
	// serially. Results are bit-for-bit identical for every value — each
	// pair measures inside an isolated context whose state derives only
	// from (seed, AS, tNode index, vVP index).
	Workers int
	// Progress, when set, receives per-stage completion callbacks. The
	// single-shot stages report (1, 1) on completion; the pair-measurement
	// stage reports each finished pair.
	Progress func(stage string, done, total int)

	// Faults is the fault-injection profile armed on the network for the
	// round (zero value: clean, the default — nothing below changes any
	// clean-run behaviour or rng stream).
	Faults faults.Profile
	// PairRetries bounds extra attempts for pairs whose first measurement
	// was unusable; each retry re-derives its seed and backs its probe
	// schedule off by RetryBackoff seconds of virtual time.
	PairRetries int
	// RetryBackoff is the per-attempt schedule offset in seconds (default 2
	// when retries are enabled).
	RetryBackoff float64
	// RequalifyVVPs re-runs the §4.2 qualification scan for vVPs whose
	// measurement column came back mostly unusable, and discards the column
	// when the vVP no longer qualifies (churned or unstable counter).
	RequalifyVVPs bool

	// Incremental enables the epoch-keyed pair-result cache: each measured
	// pair is stored under its identity (AS, grid coordinates, endpoint
	// addresses), the round fingerprint (seed, detect config, retry policy,
	// fault profile, host-population generation), and a routing/liveness
	// stamp (the affected epochs and LPM ids of the three destinations the
	// measurement touches, plus churn state). The next round re-measures
	// only pairs whose key changed and splices cached results into the flat
	// grid — the Snapshot stays bit-identical to a from-scratch round at
	// any worker count, but a zero-churn round costs O(stages) instead of
	// O(pairs). The cache disables itself when a custom Measurer stage is
	// installed (its inputs are unknown to the epoch model).
	Incremental bool
}

// DefaultRunnerConfig returns the standard pipeline settings.
func DefaultRunnerConfig(seed int64) RunnerConfig {
	return RunnerConfig{
		BackgroundCutoff: 10,
		MinVVPsPerAS:     2,
		MaxVVPsPerAS:     3,
		MinTNodes:        3,
		Seed:             seed,
		Incremental:      true,
	}
}

// ASReport is the per-AS outcome of one measurement round.
type ASReport struct {
	ASN inet.ASN
	// Score is the ROV protection score in [0, 100]: the percentage of
	// tNodes unreachable from every vVP in the AS due to outbound
	// filtering (§6.2).
	Score float64
	// VVPs is the number of vantage points used.
	VVPs int
	// TNodesMeasured / TNodesFiltered give the score's numerator and
	// denominator.
	TNodesMeasured, TNodesFiltered int
	// Unanimous is false when at least one tNode was discarded because the
	// AS's vVPs disagreed (§6.2 consistency check).
	Unanimous bool
	// Verdicts maps each measured tNode address to whether it was judged
	// outbound-filtered, enabling exact cross-validation against the data
	// plane or traceroutes.
	Verdicts map[netip.Addr]bool
}

// Snapshot is the result of one full measurement round.
type Snapshot struct {
	Day int

	// TestPrefixes are the exclusively-invalid prefixes selected from the
	// collector view.
	TestPrefixes int
	// TNodes are the qualified test nodes used in this round.
	TNodes []scan.TNode
	// AllVVPs counts every discovered vVP before the background cutoff.
	AllVVPs int
	// VVPsByAS holds the usable (post-cutoff) vVPs grouped by AS.
	VVPsByAS map[inet.ASN][]scan.VVP

	// Reports holds per-AS results for every AS with enough vVPs.
	Reports map[inet.ASN]*ASReport

	// ConsistentPairFraction is the fraction of (AS, tNode) cells whose
	// vVPs agreed (the paper reports 95.1%).
	ConsistentPairFraction float64

	// VVPBackgroundRates records each discovered vVP's background rate
	// (pre-cutoff), for the Figure 4 distribution.
	VVPBackgroundRates map[inet.ASN][]float64

	// Status is the round's typed health verdict: degraded rounds (too few
	// tNodes, no scorable AS) say so instead of presenting empty Reports as
	// a measurement of zero protection.
	Status pipeline.RoundStatus

	// PairResults holds raw per-pair results when RunnerConfig.RecordPairs
	// is set.
	PairResults []detect.PairResult

	// Metrics holds the round's observability data: stage timings and
	// pair counters.
	Metrics *pipeline.Metrics
}

// Scores returns the per-AS protection scores.
func (s *Snapshot) Scores() map[inet.ASN]float64 {
	out := make(map[inet.ASN]float64, len(s.Reports))
	for asn, r := range s.Reports {
		out[asn] = r.Score
	}
	return out
}

// FullyProtected returns the ASes with a 100% score.
func (s *Snapshot) FullyProtected() []inet.ASN {
	var out []inet.ASN
	for asn, r := range s.Reports {
		if r.Score >= 100 {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Runner executes measurement rounds against a world. A zero-value stage
// field selects the world-backed default (measure.go); experiments override
// individual stages to ablate or replace parts of the round without
// reimplementing Measure.
type Runner struct {
	W   *World
	Cfg RunnerConfig

	// Stage overrides. Leave nil for the paper-faithful defaults.
	Prefixes pipeline.TestPrefixSource
	TNodes   pipeline.TNodeQualifier
	VVPs     pipeline.VVPProvider
	Measurer pipeline.PairMeasurer
	Scorer   pipeline.Scorer

	// cached vVP discovery, keyed on the network's host-population
	// generation so additions (World.AddCandidateHosts) invalidate it
	// automatically; static within a generation, like the paper's daily
	// vVP scans.
	vvps    []scan.VVP
	vvpsGen uint64

	// pairCache memoizes raw per-pair results across rounds when
	// Cfg.Incremental is set (see measure.go). fullRound forces the next
	// round to bypass lookups and re-measure everything (refreshing the
	// cache), the periodic safety net rovistad schedules between
	// incremental rounds.
	pairCache *pipeline.ResultCache
	fullRound bool
}

// NewRunner creates a Runner.
func NewRunner(w *World, cfg RunnerConfig) *Runner {
	return &Runner{W: w, Cfg: cfg}
}

// scanner builds the discovery front-end.
func (r *Runner) scanner() *scan.Scanner {
	sc := scan.NewScanner(r.W.Net, r.W.ClientA, r.W.ClientB, 443, 80)
	sc.Seed = r.Cfg.Seed
	return sc
}

// DiscoverVVPs runs (or returns the cached) §4.2 vVP discovery over every
// attached host. The cache self-invalidates when the host population
// changes.
func (r *Runner) DiscoverVVPs() []scan.VVP {
	if gen := r.W.Net.Generation(); r.vvps != nil && gen == r.vvpsGen {
		return r.vvps
	}
	candidates := r.W.Net.AllAddrs()
	// The clients themselves are not candidates.
	filtered := candidates[:0]
	for _, a := range candidates {
		if a == r.W.ClientA.Addr || a == r.W.ClientB.Addr {
			continue
		}
		filtered = append(filtered, a)
	}
	r.vvpsGen = r.W.Net.Generation()
	r.vvps = r.scanner().DiscoverVVPs(filtered)
	return r.vvps
}

// InvalidateVVPCache forces rediscovery on the next round. Host-population
// changes are detected automatically (the cache keys on the network's
// generation counter); this remains for callers that mutate host *state*
// in ways discovery should re-observe. Host-state mutations the generation
// counter cannot see also invalidate cached pair results, so the result
// cache is flushed alongside.
func (r *Runner) InvalidateVVPCache() {
	r.vvps = nil
	r.pairCache.Flush()
}

// InvalidatePairCache drops every cached pair result, forcing the next
// round to re-measure the full grid. Routing changes (ApplyEvents,
// AdvanceTo, hijacks — anything moving the graph's affected epochs), host
// population changes, and config changes are detected automatically; this
// exists for callers that mutate measurement-relevant state outside those
// channels.
func (r *Runner) InvalidatePairCache() { r.pairCache.Flush() }

// ForceFullRound makes the next Measure bypass the result cache: every
// pair is re-measured and the cache repopulated. rovistad uses it to run a
// periodic full round between continuous incremental rounds.
func (r *Runner) ForceFullRound() { r.fullRound = true }

// PairCacheStats returns the result cache's cumulative (hits, misses,
// flushes) counters; all zero when incremental rounds never ran.
func (r *Runner) PairCacheStats() (hits, misses, flushes uint64) {
	return r.pairCache.Stats()
}

// filterFalseTNodes implements the §4.1 mitigation: the paper used RIPE
// Atlas probes in ten ASes whose ROV status it had confirmed out-of-band.
// Here the reference sets come from ground truth: full deployers (preferring
// the filtered core) as the confirmed-ROV side, and clean never-filtering
// ASes as the confirmed non-ROV side. A tNode survives when at most half of
// the ROV probes reach it and at least half of the non-ROV probes do
// (the paper's 90% thresholds, loosened for the smaller probe sets).
func (r *Runner) filterFalseTNodes(tnodes []scan.TNode) []scan.TNode {
	w := r.W
	const maxProbes = 10
	var rovProbes, cleanProbes []inet.ASN
	for _, asn := range w.Topo.ByRank() { // core-first, like the paper's big ISPs
		tr := w.Truth[asn]
		if len(rovProbes) < maxProbes && tr.Kind == "full" && tr.DeployedAt(w.Day) && !tr.DefaultLeak {
			rovProbes = append(rovProbes, asn)
		}
		if len(cleanProbes) < maxProbes && w.Clean[asn] {
			cleanProbes = append(cleanProbes, asn)
		}
	}
	if len(rovProbes) == 0 || len(cleanProbes) == 0 {
		return tnodes
	}
	reachFrac := func(probes []inet.ASN, addr netip.Addr) float64 {
		n := 0
		for _, p := range probes {
			if w.Graph.Reachable(p, addr) {
				n++
			}
		}
		return float64(n) / float64(len(probes))
	}
	out := tnodes[:0]
	for _, tn := range tnodes {
		if reachFrac(rovProbes, tn.Addr) <= 0.5 && reachFrac(cleanProbes, tn.Addr) >= 0.5 {
			out = append(out, tn)
		}
	}
	return out
}

// OracleScore computes the ground-truth protection score of an AS against
// the current tNodes straight from the data plane (no side channel): the
// fraction of tNodes the AS cannot reach. Used to validate the measurement.
func (r *Runner) OracleScore(asn inet.ASN, tnodes []scan.TNode) float64 {
	if len(tnodes) == 0 {
		return 0
	}
	blocked := 0
	for _, tn := range tnodes {
		if !r.W.Graph.Reachable(asn, tn.Addr) {
			blocked++
		}
	}
	return 100 * float64(blocked) / float64(len(tnodes))
}
