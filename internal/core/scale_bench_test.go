package core

import (
	"fmt"
	"syscall"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/topology"
)

// peakRSSMB returns the process's peak resident set in MB (Linux reports
// ru_maxrss in KB). Reported alongside the large-world benchmarks: at 50k
// ASes the binding constraint is memory — per-AS RIB state — not time.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss) / 1024
}

var scaleSizes = []int{10_000, 50_000, 74_000}

func scaleName(n int) string { return fmt.Sprintf("%dk", n/1000) }

// BenchmarkWorldBuild measures full world construction (topology, cones,
// RPKI repositories, schedules, hosts) at paper scale.
func BenchmarkWorldBuild(b *testing.B) {
	for _, n := range scaleSizes {
		b.Run(scaleName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildWorld(LargeWorldConfig(1, n)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(peakRSSMB(), "peakRSS-MB")
		})
	}
}

// BenchmarkFlapReconverge measures the event path's single-prefix flap cost
// at paper scale, in two variants:
//
//   - coalesced: a withdraw + re-announce of the same origination in ONE
//     ApplyEvents batch. The engine coalesces it to a net no-op — no dirty
//     prefixes, no propagation, no version bump — which is the microsecond
//     path every BGP-speaker-style update interval hits in practice.
//   - toggle: the same flap split across TWO batches, each a genuine
//     single-prefix incremental re-convergence (withdraw propagates, then the
//     re-announce restores the exact pre-flap state). This is the honest
//     bounded-dirty-set cost: per-prefix reset plus the affected cone.
func BenchmarkFlapReconverge(b *testing.B) {
	for _, n := range scaleSizes {
		b.Run(scaleName(n), func(b *testing.B) {
			topo := topology.Generate(LargeWorldConfig(1, n).Topology)
			if _, err := topo.Graph.Converge(); err != nil {
				b.Fatal(err)
			}
			var origin *bgp.AS
			for _, asn := range topo.ASNs {
				if a := topo.Graph.AS(asn); len(a.Originated) > 0 {
					origin = a
					break
				}
			}
			if origin == nil {
				b.Fatal("no originating AS")
			}
			p := origin.Originated[0]
			flap := func(evs ...bgp.RouteEvent) {
				if _, err := topo.Graph.ApplyEvents(evs); err != nil {
					b.Fatal(err)
				}
			}
			withdraw := bgp.RouteEvent{Kind: bgp.EvWithdraw, AS: origin.ASN, Prefix: p}
			announce := bgp.RouteEvent{Kind: bgp.EvAnnounce, AS: origin.ASN, Prefix: p}

			b.Run("coalesced", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					flap(withdraw, announce)
				}
			})
			b.Run("toggle", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					flap(withdraw)
					flap(announce)
				}
				b.StopTimer()
				b.ReportMetric(peakRSSMB(), "peakRSS-MB")
			})
		})
	}
}

// BenchmarkConvergeLarge measures steady-state full convergence of a
// paper-scale graph (the per-snapshot cost that dominates timelines). One
// warm-up convergence sizes the interned slice RIBs; the timed iterations
// then show the reuse behaviour every snapshot after the first sees.
func BenchmarkConvergeLarge(b *testing.B) {
	for _, n := range scaleSizes {
		b.Run(scaleName(n), func(b *testing.B) {
			topo := topology.Generate(LargeWorldConfig(1, n).Topology)
			if _, err := topo.Graph.Converge(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := topo.Graph.Converge(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(peakRSSMB(), "peakRSS-MB")
		})
	}
}
