package core

import (
	"fmt"
	"syscall"
	"testing"

	"github.com/netsec-lab/rovista/internal/topology"
)

// peakRSSMB returns the process's peak resident set in MB (Linux reports
// ru_maxrss in KB). Reported alongside the large-world benchmarks: at 50k
// ASes the binding constraint is memory — per-AS RIB state — not time.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss) / 1024
}

var scaleSizes = []int{10_000, 50_000}

func scaleName(n int) string { return fmt.Sprintf("%dk", n/1000) }

// BenchmarkWorldBuild measures full world construction (topology, cones,
// RPKI repositories, schedules, hosts) at paper scale.
func BenchmarkWorldBuild(b *testing.B) {
	for _, n := range scaleSizes {
		b.Run(scaleName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildWorld(LargeWorldConfig(1, n)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(peakRSSMB(), "peakRSS-MB")
		})
	}
}

// BenchmarkConvergeLarge measures steady-state full convergence of a
// paper-scale graph (the per-snapshot cost that dominates timelines). One
// warm-up convergence sizes the interned slice RIBs; the timed iterations
// then show the reuse behaviour every snapshot after the first sees.
func BenchmarkConvergeLarge(b *testing.B) {
	for _, n := range scaleSizes {
		b.Run(scaleName(n), func(b *testing.B) {
			topo := topology.Generate(LargeWorldConfig(1, n).Topology)
			if _, err := topo.Graph.Converge(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := topo.Graph.Converge(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(peakRSSMB(), "peakRSS-MB")
		})
	}
}
