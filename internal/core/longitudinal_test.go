package core

import (
	"context"
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/scan"
)

func TestScoreSeriesAndJumpEvents(t *testing.T) {
	cfg := SmallWorldConfig(33)
	cfg.Days = 60
	cfg.CoveredInvalidAnnouncements = 0 // clean 0 -> 100 jumps
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Script one deterministic deployment mid-timeline on a never-filtering
	// AS that currently reaches the invalid prefixes, and make sure it is
	// observable.
	var subject inet.ASN
	for _, asn := range w.Topo.ASNs {
		if w.Clean[asn] && asn != w.ClientA.ASN && asn != w.ClientB.ASN {
			isOrigin := false
			for _, inv := range w.Invalids {
				if inv.Origin == asn {
					isOrigin = true
				}
			}
			if !isOrigin {
				subject = asn
				break
			}
		}
	}
	if subject == 0 {
		t.Skip("no clean subject at this seed")
	}
	w.Truth[subject].Policy = rov.Full()
	w.Truth[subject].Kind = "full"
	w.Truth[subject].DeployDay = 30
	w.Truth[subject].RollbackDay = 0
	w.AddCandidateHosts(subject, 3)

	r := NewRunner(w, DefaultRunnerConfig(33))
	tl, err := r.RunTimeline(15) // days 0, 15, 30, 45, 60
	if err != nil {
		t.Fatal(err)
	}
	days, scores := tl.ScoreSeries(subject)
	if len(days) == 0 {
		t.Fatal("subject never scored")
	}
	// Low before day 30, high at/after.
	for i, d := range days {
		if d < 30 && scores[i] > 50 {
			t.Fatalf("day %d: score %v before deployment", d, scores[i])
		}
		if d >= 30 && scores[i] < 90 {
			t.Fatalf("day %d: score %v after deployment", d, scores[i])
		}
	}
	// JumpEvents finds the subject's jump at day 30.
	jumps := tl.JumpEvents(50, 90)
	found := false
	for _, members := range jumps {
		for _, m := range members {
			if m == subject {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("jump not detected; jumps = %v", jumps)
	}
}

func TestFilterFalseTNodes(t *testing.T) {
	w := buildSmall(t, 34)
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(w, DefaultRunnerConfig(34))

	// A genuine tNode from an exclusive invalid survives.
	var genuine, shared scan.TNode
	for _, inv := range w.Invalids {
		addr := inet.NthAddr(inv.Prefix, 20)
		if inv.Shared {
			shared = scan.TNode{Addr: addr, ASN: inv.Origin, Port: 443, Prefix: inv.Prefix}
		} else if !inv.Covered {
			genuine = scan.TNode{Addr: addr, ASN: inv.Origin, Port: 443, Prefix: inv.Prefix}
		}
	}
	if genuine.ASN == 0 || shared.ASN == 0 {
		t.Skip("seed lacks both kinds")
	}
	out := r.filterFalseTNodes([]scan.TNode{genuine, shared})
	foundGenuine, foundShared := false, false
	for _, tn := range out {
		if tn.Addr == genuine.Addr {
			foundGenuine = true
		}
		if tn.Addr == shared.Addr {
			foundShared = true
		}
	}
	if !foundGenuine {
		t.Fatal("genuine tNode was filtered out")
	}
	if foundShared {
		t.Fatal("shared-prefix false tNode survived the probe check")
	}
}

// TestRunRoundsContext pins the cooperative-cancellation contract the
// daemon and the CLI's -rounds mode rely on: a cancelled context stops
// between rounds, returns the completed prefix with a nil error, and a
// pre-cancelled context yields an empty (not nil) timeline.
func TestRunRoundsContext(t *testing.T) {
	cfg := SmallWorldConfig(11)
	cfg.Days = 30
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(w, DefaultRunnerConfig(11))

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	tl, err := r.RunRounds(pre, 0, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Snapshots) != 0 {
		t.Fatalf("pre-cancelled context ran %d rounds", len(tl.Snapshots))
	}

	// Cancel after the second round via the progress callback.
	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	rounds := 0
	r.Cfg.Progress = func(stage string, done, total int) {
		if stage == StageScore && done == total {
			rounds++
			if rounds == 2 {
				cancel2()
			}
		}
	}
	tl, err = r.RunRounds(ctx, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Snapshots) != 2 || len(tl.Days) != 2 {
		t.Fatalf("cancelled run kept %d rounds, want exactly the 2 completed", len(tl.Snapshots))
	}
	if tl.Days[0] != 0 || tl.Days[1] != 10 {
		t.Fatalf("days = %v", tl.Days)
	}

	// Uncancelled runs clamp at the timeline end instead of erroring.
	r.Cfg.Progress = nil
	tl, err = r.RunRounds(context.Background(), 20, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Days) != 3 || tl.Days[2] != 30 {
		t.Fatalf("clamped days = %v", tl.Days)
	}
}
