package core

import (
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/scan"
)

func TestScoreSeriesAndJumpEvents(t *testing.T) {
	cfg := SmallWorldConfig(33)
	cfg.Days = 60
	cfg.CoveredInvalidAnnouncements = 0 // clean 0 -> 100 jumps
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Script one deterministic deployment mid-timeline on a never-filtering
	// AS that currently reaches the invalid prefixes, and make sure it is
	// observable.
	var subject inet.ASN
	for _, asn := range w.Topo.ASNs {
		if w.Clean[asn] && asn != w.ClientA.ASN && asn != w.ClientB.ASN {
			isOrigin := false
			for _, inv := range w.Invalids {
				if inv.Origin == asn {
					isOrigin = true
				}
			}
			if !isOrigin {
				subject = asn
				break
			}
		}
	}
	if subject == 0 {
		t.Skip("no clean subject at this seed")
	}
	w.Truth[subject].Policy = rov.Full()
	w.Truth[subject].Kind = "full"
	w.Truth[subject].DeployDay = 30
	w.Truth[subject].RollbackDay = 0
	w.AddCandidateHosts(subject, 3)

	r := NewRunner(w, DefaultRunnerConfig(33))
	tl, err := r.RunTimeline(15) // days 0, 15, 30, 45, 60
	if err != nil {
		t.Fatal(err)
	}
	days, scores := tl.ScoreSeries(subject)
	if len(days) == 0 {
		t.Fatal("subject never scored")
	}
	// Low before day 30, high at/after.
	for i, d := range days {
		if d < 30 && scores[i] > 50 {
			t.Fatalf("day %d: score %v before deployment", d, scores[i])
		}
		if d >= 30 && scores[i] < 90 {
			t.Fatalf("day %d: score %v after deployment", d, scores[i])
		}
	}
	// JumpEvents finds the subject's jump at day 30.
	jumps := tl.JumpEvents(50, 90)
	found := false
	for _, members := range jumps {
		for _, m := range members {
			if m == subject {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("jump not detected; jumps = %v", jumps)
	}
}

func TestFilterFalseTNodes(t *testing.T) {
	w := buildSmall(t, 34)
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(w, DefaultRunnerConfig(34))

	// A genuine tNode from an exclusive invalid survives.
	var genuine, shared scan.TNode
	for _, inv := range w.Invalids {
		addr := inet.NthAddr(inv.Prefix, 20)
		if inv.Shared {
			shared = scan.TNode{Addr: addr, ASN: inv.Origin, Port: 443, Prefix: inv.Prefix}
		} else if !inv.Covered {
			genuine = scan.TNode{Addr: addr, ASN: inv.Origin, Port: 443, Prefix: inv.Prefix}
		}
	}
	if genuine.ASN == 0 || shared.ASN == 0 {
		t.Skip("seed lacks both kinds")
	}
	out := r.filterFalseTNodes([]scan.TNode{genuine, shared})
	foundGenuine, foundShared := false, false
	for _, tn := range out {
		if tn.Addr == genuine.Addr {
			foundGenuine = true
		}
		if tn.Addr == shared.Addr {
			foundShared = true
		}
	}
	if !foundGenuine {
		t.Fatal("genuine tNode was filtered out")
	}
	if foundShared {
		t.Fatal("shared-prefix false tNode survived the probe check")
	}
}
