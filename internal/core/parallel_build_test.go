package core

import (
	"fmt"
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/tcpsim"
)

// hostPrint is a host reduced to a DeepEqual-friendly shape: function-valued
// fields (packet handlers) collapse to presence bits, everything else —
// including the TCP endpoint and the seeded IP-ID counter state — compares
// structurally.
type hostPrint struct {
	Addr    netip.Addr
	ASN     inet.ASN
	Rate    float64
	TCP     *tcpsim.Endpoint
	IPID    *ipid.Counter
	Handler bool
}

// worldFingerprint captures every artifact the parallel build stages produce.
// It reaches unexported state (roaDayByPrefix, hostSeq, the generator rng) on
// purpose: worker-count independence must hold for the whole construction
// stream, not just the public surface.
func worldFingerprint(w *World) map[string]any {
	fp := make(map[string]any)
	fp["asns"] = w.Topo.ASNs
	fp["info"] = w.Topo.Info
	for _, r := range rpki.AllRIRs {
		fp[fmt.Sprintf("repo-%v", r)] = w.Authorities[r].Repo
	}
	fp["truth"] = w.Truth
	fp["invalids"] = w.Invalids
	fp["clean"] = w.Clean
	fp["roaDays"] = w.roaDayByPrefix
	fp["hostSeq"] = w.hostSeq

	var hosts []hostPrint
	for _, addr := range w.Net.AllAddrs() {
		h, _ := w.Net.HostAt(addr)
		hosts = append(hosts, hostPrint{
			Addr: h.Addr, ASN: h.ASN, Rate: h.BackgroundRate,
			TCP: h.TCP, IPID: h.IPID, Handler: h.Handler != nil,
		})
	}
	fp["hosts"] = hosts

	var filtered []inet.ASN
	for asn := range w.Net.EgressFilter {
		filtered = append(filtered, asn)
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i] < filtered[j] })
	fp["egress"] = filtered

	fp["clientA"] = w.ClientA.Addr
	fp["clientB"] = w.ClientB.Addr
	fp["feeders"] = w.Collector.Feeders

	// The generator rng must sit at the identical stream position: record the
	// next few draws (the world is discarded afterwards).
	draws := make([]int64, 4)
	for i := range draws {
		draws[i] = w.rng.Int63()
	}
	fp["rng"] = draws
	return fp
}

// TestParallelBuildDeterminism: a world built with any number of workers is
// bit-for-bit the world built serially — same topology, repositories, truth
// schedule, host population (down to seeded counter state), and even the
// same generator-rng stream position. The build parallelism contract is that
// workers only execute pre-drawn plans; this is the test that enforces it.
func TestParallelBuildDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		cfg := SmallWorldConfig(seed)
		cfg.BuildWorkers = 1
		serial, err := BuildWorld(cfg)
		if err != nil {
			t.Fatalf("seed %d: serial build: %v", seed, err)
		}
		want := worldFingerprint(serial)
		for _, workers := range []int{2, 8} {
			cfg.BuildWorkers = workers
			w, err := BuildWorld(cfg)
			if err != nil {
				t.Fatalf("seed %d workers %d: build: %v", seed, workers, err)
			}
			got := worldFingerprint(w)
			for key, wv := range want {
				if !reflect.DeepEqual(got[key], wv) {
					t.Errorf("seed %d workers %d: %q differs from serial build", seed, workers, key)
				}
			}
		}
	}
}
