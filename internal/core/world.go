// Package core assembles the full RoVista system: it builds simulated
// Internets (topology + RPKI + hosts + adoption schedules), advances them
// through time, and runs the complete measurement pipeline — collector
// snapshots, tNode selection, vVP discovery, IP-ID side-channel rounds, and
// ROV protection scoring — reproducing the system of §3–§6 of the paper.
package core

import (
	"math/rand"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/collectors"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/topology"
)

// WorldConfig controls world generation. Fractions are in [0, 1].
type WorldConfig struct {
	Seed     int64
	Topology topology.Config

	// BuildWorkers caps the parallelism of the world-build stages (RPKI
	// object emission, host synthesis, cone computation); 0 means
	// GOMAXPROCS. Built worlds are bit-for-bit identical at any worker
	// count: all generator-rng draws happen in a serial planning pass and
	// workers only execute pre-drawn plans (see parallelDo).
	BuildWorkers int

	// Days is the simulated timeline length (the paper measures ~628 days;
	// worlds usually compress this).
	Days int

	// HostsPerAS is the number of candidate end hosts attached per AS.
	HostsPerAS int
	// GlobalCounterFrac is the fraction of hosts with a global IP-ID
	// counter (vVP candidates); the rest split between per-destination,
	// random and constant counters.
	GlobalCounterFrac float64
	// BGLowFrac / BGMedFrac control the background-traffic mix: low is
	// U(0,10) pkt/s (usable), med U(10,30), the rest U(30,100).
	BGLowFrac, BGMedFrac float64

	// ROACoverStart/End: fraction of prefixes covered by a ROA at day 0 and
	// at Days (Figure 1 top grows 34% → 48%).
	ROACoverStart, ROACoverEnd float64

	// ROVStart/End: fraction of ASes filtering invalids at day 0 and Days;
	// adoption is rank-weighted (big ASes adopt more, §7.2).
	ROVStart, ROVEnd float64
	// CustomerExemptFrac / PreferValidFrac of adopters use those modes.
	CustomerExemptFrac, PreferValidFrac float64
	// RollbackFrac of adopters retract ROV mid-timeline (equipment issues,
	// the BIT story in §6.3.2).
	RollbackFrac float64
	// DefaultRouteLeakFrac of adopters keep a default route to a
	// non-validating provider (§7.6), capping their real protection.
	DefaultRouteLeakFrac float64
	// SLURMExceptionFrac of adopters carry an RFC 8416 local filter that
	// whitelists one invalid prefix (§7.1: operators use SLURM to keep
	// accepting specific RPKI-invalid routes).
	SLURMExceptionFrac float64
	// EquipmentIssueFrac of full adopters have routers that do not support
	// ROV on one neighbor session (the NTT story in §7.6: ~900 invalids
	// kept propagating through unsupporting routers).
	EquipmentIssueFrac float64

	// InvalidAnnouncements is the number of persistent misconfigured
	// announcements of *unannounced* (but ROA-covered) space — the dominant
	// real-world shape of exclusively-invalid prefixes: a filtering AS
	// simply has no route to them.
	InvalidAnnouncements int
	// CoveredInvalidAnnouncements carve a sub-prefix out of space whose
	// covering prefix the victim legitimately announces; they stay
	// exclusively invalid, but traffic from filtering ASes follows the
	// covering route and can be diverted by non-filtering transit — the
	// §7.4 collateral-damage generator.
	CoveredInvalidAnnouncements int
	// SharedInvalidAnnouncements are invalid announcements whose prefix the
	// legitimate owner also announces — reachable from ROV ASes and
	// therefore unusable as test prefixes (§3.2's false-tNode hazard).
	SharedInvalidAnnouncements int
	// TNodesPerInvalid hosts per invalid prefix.
	TNodesPerInvalid int
	// TNodeBrokenFrac of tNode hosts violate the §4.1 qualification
	// conditions (no RTO, RST-ignoring, or silent).
	TNodeBrokenFrac float64
	// InboundFilterFrac of invalid-origin ASes egress-filter their tNodes'
	// responses (the paper's inbound-filtering case).
	InboundFilterFrac float64

	// Faults, when enabled, arms the fault-injection profile on the built
	// network as the final construction stage, so the stable per-host
	// perturbations (per-CPU counter splits) exist before any scan observes
	// the hosts. The zero value builds a clean world.
	Faults faults.Profile
}

// DefaultWorldConfig returns a mid-size world tuned so every phenomenon in
// the paper occurs at observable rates.
func DefaultWorldConfig(seed int64) WorldConfig {
	return WorldConfig{
		Seed:                        seed,
		Topology:                    topology.DefaultConfig(seed),
		Days:                        600,
		HostsPerAS:                  4,
		GlobalCounterFrac:           0.55,
		BGLowFrac:                   0.60,
		BGMedFrac:                   0.25,
		ROACoverStart:               0.34,
		ROACoverEnd:                 0.48,
		ROVStart:                    0.05,
		ROVEnd:                      0.14,
		CustomerExemptFrac:          0.12,
		PreferValidFrac:             0.05,
		RollbackFrac:                0.05,
		DefaultRouteLeakFrac:        0.05,
		SLURMExceptionFrac:          0.05,
		EquipmentIssueFrac:          0.05,
		InvalidAnnouncements:        14,
		CoveredInvalidAnnouncements: 2,
		SharedInvalidAnnouncements:  4,
		TNodesPerInvalid:            3,
		TNodeBrokenFrac:             0.2,
		InboundFilterFrac:           0.1,
	}
}

// SmallWorldConfig returns a fast world for tests.
func SmallWorldConfig(seed int64) WorldConfig {
	cfg := DefaultWorldConfig(seed)
	cfg.Topology = topology.Config{
		Seed:          seed,
		NumTier1:      4,
		NumTier2:      10,
		NumTier3:      30,
		NumStub:       80,
		PrefixesPerAS: 1.2,
		Tier2PeerProb: 0.3,
		Tier3PeerProb: 0.05,
		MultihomeProb: 0.4,
	}
	cfg.Days = 100
	cfg.HostsPerAS = 3
	cfg.InvalidAnnouncements = 6
	cfg.CoveredInvalidAnnouncements = 1
	cfg.SharedInvalidAnnouncements = 2
	return cfg
}

// LargeWorldConfig returns a paper-scale world: nASes ASes in a realistic
// tier split, with a fixed-size routed prefix population of ~250 regardless
// of scale (Topology.OriginFrac). That matches the paper's measurement
// shape — tens of thousands of vantage ASes ranked against a few hundred
// exclusively-invalid test prefixes — and it is what makes 50k+ ASes
// tractable: full-table state is ASes × prefixes, so growing both together
// is quadratic while growing vantage count alone is linear. One candidate
// host per originating AS keeps host synthesis proportional to the routed
// edge rather than the transit core.
func LargeWorldConfig(seed int64, nASes int) WorldConfig {
	cfg := DefaultWorldConfig(seed)
	nT1 := 10
	nT2 := max(nASes/100, 4)
	nT3 := max(nASes/12, 10)
	cfg.Topology = topology.Config{
		Seed:          seed,
		NumTier1:      nT1,
		NumTier2:      nT2,
		NumTier3:      nT3,
		NumStub:       max(nASes-nT1-nT2-nT3, 0),
		PrefixesPerAS: 1.0,
		OriginFrac:    250.0 / float64(nASes),
		Tier2PeerProb: 0.05,
		Tier3PeerProb: 0.005,
		MultihomeProb: 0.45,
	}
	cfg.Days = 100
	cfg.HostsPerAS = 1
	return cfg
}

// FullInternetConfig returns the full-Internet-scale preset: 74k ASes, the
// routed AS count the paper measures against. It is LargeWorldConfig at
// n = 74,000 — the same fixed ~250-prefix routed population, so full-table
// state stays ASes-linear and a from-scratch convergence plus event-driven
// incremental re-convergence fit comfortably in memory.
func FullInternetConfig(seed int64) WorldConfig {
	return LargeWorldConfig(seed, 74_000)
}

// Truth is the generator-side ground truth about one AS — what a perfectly
// informed operator survey would say (§6.3).
type Truth struct {
	ASN         inet.ASN
	Policy      *rov.Policy // the policy once (if ever) deployed
	DeployDay   int         // -1: never deploys
	RollbackDay int         // 0: never rolls back
	Kind        string      // "full", "customer-exempt", "prefer-valid", "none"
	DefaultLeak bool        // keeps a default route to a non-ROV provider
	// SLURMException, when valid, is an invalid prefix this AS locally
	// whitelists via an RFC 8416 filter (it validates as NotFound there).
	SLURMException netip.Prefix
	// PartialNeighbor, when nonzero, is a neighbor whose session bypasses
	// validation (a router that does not support ROV — equipment issues).
	PartialNeighbor inet.ASN
}

// DeployedAt reports whether the AS filters at the given day.
func (t *Truth) DeployedAt(day int) bool {
	if t.DeployDay < 0 || day < t.DeployDay {
		return false
	}
	if t.RollbackDay > 0 && day >= t.RollbackDay {
		return false
	}
	return true
}

// InvalidAnn is one misconfigured announcement in the schedule.
type InvalidAnn struct {
	Prefix   netip.Prefix
	Origin   inet.ASN // the wrong origin actually announcing
	Victim   inet.ASN // the resource holder named by the ROA
	StartDay int
	EndDay   int
	// Shared: the victim also announces the same prefix (false tNode).
	Shared bool
	// Covered: the victim announces a covering (less specific) prefix, so
	// traffic from filtering ASes still has somewhere to go (§7.4).
	Covered bool
}

// ActiveAt reports whether the announcement is active at the given day.
func (a InvalidAnn) ActiveAt(day int) bool { return day >= a.StartDay && day < a.EndDay }

// World is a fully built simulated Internet plus its evolution schedule.
type World struct {
	Cfg   WorldConfig
	Topo  *topology.Topology
	Graph *bgp.Graph
	Net   *netsim.Network

	Authorities map[rpki.RIR]*rpki.Authority
	VRPs        *rpki.VRPSet

	Truth    map[inet.ASN]*Truth
	Invalids []InvalidAnn

	// Clean is the set of never-filtering ASes with never-filtering chains
	// to the core: the ASes guaranteed to hear (and reach) in-the-wild
	// invalid announcements. The runner picks its non-ROV reference probes
	// here, like the paper picked RIPE Atlas probes it had verified could
	// reach tNodes.
	Clean map[inet.ASN]bool

	// ClientA and ClientB are the two measurement clients, in distinct
	// never-filtering ASes (the paper's two-vantage setup, §4.1).
	ClientA, ClientB *netsim.Host

	// Collector is the RouteViews-style vantage with partial visibility.
	Collector *collectors.Collector

	Day       int
	converged bool
	// lastDay is the day routing state was last advanced to; AdvanceTo
	// diffs the schedule between lastDay and the target day to emit only
	// the transition RouteEvents.
	lastDay int
	dirty   map[netip.Prefix]bool

	roaDayByPrefix map[netip.Prefix]int
	rng            *rand.Rand
	hostSeq        int64
}

// BuildWorld constructs a world from cfg by running every builder stage in
// canonical order (see WorldBuilder in worldbuild.go). The world starts
// un-advanced; call AdvanceTo to reach a day and converge routing.
func BuildWorld(cfg WorldConfig) (*World, error) {
	b, err := NewWorldBuilder(cfg)
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// nextHostSeed derives per-host seeds. The derivation is part of a world's
// identity: every calibrated expectation downstream depends on host state,
// so it must never change for a given (seed, construction order).
func (w *World) nextHostSeed() int64 {
	w.hostSeq++
	return w.Cfg.Seed*31 + w.hostSeq
}

// AddCandidateHosts attaches n additional measurement-friendly hosts
// (global IP-ID counter, low background traffic) to an AS, guaranteeing it
// is observable by the vVP pipeline. Experiment casts use this the way the
// paper relies on ASes having enough qualifying hosts. The network's
// generation counter advances, so cached vVP discoveries refresh on the
// next round.
func (w *World) AddCandidateHosts(asn inet.ASN, n int) {
	info, ok := w.Topo.Info[asn]
	if !ok || len(info.Prefixes) == 0 {
		return
	}
	base := info.Prefixes[0]
	for i := 0; i < n; i++ {
		addr := inet.NthAddr(base, uint32(100+i))
		if _, exists := w.Net.HostAt(addr); exists {
			continue
		}
		h := netsim.NewHost(addr, asn, ipid.Global, w.nextHostSeed())
		h.BackgroundRate = 1 + float64(i%3)
		w.Net.AddHost(h)
	}
}
