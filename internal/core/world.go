// Package core assembles the full RoVista system: it builds simulated
// Internets (topology + RPKI + hosts + adoption schedules), advances them
// through time, and runs the complete measurement pipeline — collector
// snapshots, tNode selection, vVP discovery, IP-ID side-channel rounds, and
// ROV protection scoring — reproducing the system of §3–§6 of the paper.
package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/collectors"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/tcpsim"
	"github.com/netsec-lab/rovista/internal/topology"
)

// WorldConfig controls world generation. Fractions are in [0, 1].
type WorldConfig struct {
	Seed     int64
	Topology topology.Config

	// Days is the simulated timeline length (the paper measures ~628 days;
	// worlds usually compress this).
	Days int

	// HostsPerAS is the number of candidate end hosts attached per AS.
	HostsPerAS int
	// GlobalCounterFrac is the fraction of hosts with a global IP-ID
	// counter (vVP candidates); the rest split between per-destination,
	// random and constant counters.
	GlobalCounterFrac float64
	// BGLowFrac / BGMedFrac control the background-traffic mix: low is
	// U(0,10) pkt/s (usable), med U(10,30), the rest U(30,100).
	BGLowFrac, BGMedFrac float64

	// ROACoverStart/End: fraction of prefixes covered by a ROA at day 0 and
	// at Days (Figure 1 top grows 34% → 48%).
	ROACoverStart, ROACoverEnd float64

	// ROVStart/End: fraction of ASes filtering invalids at day 0 and Days;
	// adoption is rank-weighted (big ASes adopt more, §7.2).
	ROVStart, ROVEnd float64
	// CustomerExemptFrac / PreferValidFrac of adopters use those modes.
	CustomerExemptFrac, PreferValidFrac float64
	// RollbackFrac of adopters retract ROV mid-timeline (equipment issues,
	// the BIT story in §6.3.2).
	RollbackFrac float64
	// DefaultRouteLeakFrac of adopters keep a default route to a
	// non-validating provider (§7.6), capping their real protection.
	DefaultRouteLeakFrac float64
	// SLURMExceptionFrac of adopters carry an RFC 8416 local filter that
	// whitelists one invalid prefix (§7.1: operators use SLURM to keep
	// accepting specific RPKI-invalid routes).
	SLURMExceptionFrac float64
	// EquipmentIssueFrac of full adopters have routers that do not support
	// ROV on one neighbor session (the NTT story in §7.6: ~900 invalids
	// kept propagating through unsupporting routers).
	EquipmentIssueFrac float64

	// InvalidAnnouncements is the number of persistent misconfigured
	// announcements of *unannounced* (but ROA-covered) space — the dominant
	// real-world shape of exclusively-invalid prefixes: a filtering AS
	// simply has no route to them.
	InvalidAnnouncements int
	// CoveredInvalidAnnouncements carve a sub-prefix out of space whose
	// covering prefix the victim legitimately announces; they stay
	// exclusively invalid, but traffic from filtering ASes follows the
	// covering route and can be diverted by non-filtering transit — the
	// §7.4 collateral-damage generator.
	CoveredInvalidAnnouncements int
	// SharedInvalidAnnouncements are invalid announcements whose prefix the
	// legitimate owner also announces — reachable from ROV ASes and
	// therefore unusable as test prefixes (§3.2's false-tNode hazard).
	SharedInvalidAnnouncements int
	// TNodesPerInvalid hosts per invalid prefix.
	TNodesPerInvalid int
	// TNodeBrokenFrac of tNode hosts violate the §4.1 qualification
	// conditions (no RTO, RST-ignoring, or silent).
	TNodeBrokenFrac float64
	// InboundFilterFrac of invalid-origin ASes egress-filter their tNodes'
	// responses (the paper's inbound-filtering case).
	InboundFilterFrac float64
}

// DefaultWorldConfig returns a mid-size world tuned so every phenomenon in
// the paper occurs at observable rates.
func DefaultWorldConfig(seed int64) WorldConfig {
	return WorldConfig{
		Seed:                        seed,
		Topology:                    topology.DefaultConfig(seed),
		Days:                        600,
		HostsPerAS:                  4,
		GlobalCounterFrac:           0.55,
		BGLowFrac:                   0.60,
		BGMedFrac:                   0.25,
		ROACoverStart:               0.34,
		ROACoverEnd:                 0.48,
		ROVStart:                    0.05,
		ROVEnd:                      0.14,
		CustomerExemptFrac:          0.12,
		PreferValidFrac:             0.05,
		RollbackFrac:                0.05,
		DefaultRouteLeakFrac:        0.05,
		SLURMExceptionFrac:          0.05,
		EquipmentIssueFrac:          0.05,
		InvalidAnnouncements:        14,
		CoveredInvalidAnnouncements: 2,
		SharedInvalidAnnouncements:  4,
		TNodesPerInvalid:            3,
		TNodeBrokenFrac:             0.2,
		InboundFilterFrac:           0.1,
	}
}

// SmallWorldConfig returns a fast world for tests.
func SmallWorldConfig(seed int64) WorldConfig {
	cfg := DefaultWorldConfig(seed)
	cfg.Topology = topology.Config{
		Seed:          seed,
		NumTier1:      4,
		NumTier2:      10,
		NumTier3:      30,
		NumStub:       80,
		PrefixesPerAS: 1.2,
		Tier2PeerProb: 0.3,
		Tier3PeerProb: 0.05,
		MultihomeProb: 0.4,
	}
	cfg.Days = 100
	cfg.HostsPerAS = 3
	cfg.InvalidAnnouncements = 6
	cfg.CoveredInvalidAnnouncements = 1
	cfg.SharedInvalidAnnouncements = 2
	return cfg
}

// Truth is the generator-side ground truth about one AS — what a perfectly
// informed operator survey would say (§6.3).
type Truth struct {
	ASN         inet.ASN
	Policy      *rov.Policy // the policy once (if ever) deployed
	DeployDay   int         // -1: never deploys
	RollbackDay int         // 0: never rolls back
	Kind        string      // "full", "customer-exempt", "prefer-valid", "none"
	DefaultLeak bool        // keeps a default route to a non-ROV provider
	// SLURMException, when valid, is an invalid prefix this AS locally
	// whitelists via an RFC 8416 filter (it validates as NotFound there).
	SLURMException netip.Prefix
	// PartialNeighbor, when nonzero, is a neighbor whose session bypasses
	// validation (a router that does not support ROV — equipment issues).
	PartialNeighbor inet.ASN
}

// DeployedAt reports whether the AS filters at the given day.
func (t *Truth) DeployedAt(day int) bool {
	if t.DeployDay < 0 || day < t.DeployDay {
		return false
	}
	if t.RollbackDay > 0 && day >= t.RollbackDay {
		return false
	}
	return true
}

// InvalidAnn is one misconfigured announcement in the schedule.
type InvalidAnn struct {
	Prefix   netip.Prefix
	Origin   inet.ASN // the wrong origin actually announcing
	Victim   inet.ASN // the resource holder named by the ROA
	StartDay int
	EndDay   int
	// Shared: the victim also announces the same prefix (false tNode).
	Shared bool
	// Covered: the victim announces a covering (less specific) prefix, so
	// traffic from filtering ASes still has somewhere to go (§7.4).
	Covered bool
}

// World is a fully built simulated Internet plus its evolution schedule.
type World struct {
	Cfg   WorldConfig
	Topo  *topology.Topology
	Graph *bgp.Graph
	Net   *netsim.Network

	Authorities map[rpki.RIR]*rpki.Authority
	VRPs        *rpki.VRPSet

	Truth    map[inet.ASN]*Truth
	Invalids []InvalidAnn

	// Clean is the set of never-filtering ASes with never-filtering chains
	// to the core: the ASes guaranteed to hear (and reach) in-the-wild
	// invalid announcements. The runner picks its non-ROV reference probes
	// here, like the paper picked RIPE Atlas probes it had verified could
	// reach tNodes.
	Clean map[inet.ASN]bool

	// ClientA and ClientB are the two measurement clients, in distinct
	// never-filtering ASes (the paper's two-vantage setup, §4.1).
	ClientA, ClientB *netsim.Host

	// Collector is the RouteViews-style vantage with partial visibility.
	Collector *collectors.Collector

	Day       int
	converged bool
	dirty     map[netip.Prefix]bool

	roaDayByPrefix map[netip.Prefix]int
	rng            *rand.Rand
	hostSeq        int64
}

// BuildWorld constructs a world from cfg. The world starts un-advanced;
// call AdvanceTo to reach a day and converge routing.
func BuildWorld(cfg WorldConfig) (*World, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("core: non-positive timeline %d", cfg.Days)
	}
	w := &World{
		Cfg:            cfg,
		Topo:           topology.Generate(cfg.Topology),
		Authorities:    make(map[rpki.RIR]*rpki.Authority),
		Truth:          make(map[inet.ASN]*Truth),
		dirty:          make(map[netip.Prefix]bool),
		roaDayByPrefix: make(map[netip.Prefix]int),
		rng:            rand.New(rand.NewSource(cfg.Seed ^ 0x90b1)),
	}
	w.Graph = w.Topo.Graph
	w.Net = netsim.NewNetwork(w.Graph)

	w.buildRPKI()
	w.buildROVSchedule()
	clean := w.cleanUpSet()
	w.Clean = clean
	w.buildInvalids(clean)
	w.applyDefaultLeaks()
	w.applySLURMExceptions()
	w.buildHosts()
	w.buildClients(clean)
	w.buildCollector()
	return w, nil
}

// cleanUpSet returns the ASes that (a) never filter and (b) have a provider
// chain to a never-filtering tier-1 consisting entirely of never-filtering
// ASes. Invalid announcements originated inside this set propagate to the
// core and to every other member — the survivor bias behind the invalid
// prefixes RouteViews actually observes: misconfigurations behind filtering
// transit simply never become visible (or measurable).
func (w *World) cleanUpSet() map[inet.ASN]bool {
	neverFilters := func(asn inet.ASN) bool { return w.Truth[asn].DeployDay < 0 }

	// Guarantee at least one never-filtering tier-1 (the paper's Table 1
	// has exactly one: Deutsche Telekom) so the clean set is never empty.
	hasCleanT1 := false
	for _, t1 := range w.Topo.Tier1 {
		if neverFilters(t1) {
			hasCleanT1 = true
			break
		}
	}
	if !hasCleanT1 {
		flip := w.Topo.Tier1[len(w.Topo.Tier1)-1]
		w.Truth[flip] = &Truth{ASN: flip, DeployDay: -1, Kind: "none"}
	}

	propagate := func() map[inet.ASN]bool {
		clean := make(map[inet.ASN]bool)
		for _, t1 := range w.Topo.Tier1 {
			if neverFilters(t1) {
				clean[t1] = true
			}
		}
		// An AS is clean when it never filters and at least one of its
		// providers is clean.
		for changed := true; changed; {
			changed = false
			for _, asn := range w.Topo.ASNs {
				if clean[asn] || !neverFilters(asn) {
					continue
				}
				for _, p := range w.Topo.Providers(asn) {
					if clean[p] {
						clean[asn] = true
						changed = true
						break
					}
				}
			}
		}
		return clean
	}

	clean := propagate()
	// Guarantee a minimum never-filtering region: seeds where the adoption
	// draw isolates the non-filtering tier-1 would otherwise produce worlds
	// where invalid routes cannot propagate at all — unlike any real
	// Internet epoch. Flip filtering ASes adjacent to the clean region to
	// never-filter (deterministically, core-first) until it is big enough.
	minClean := len(w.Topo.ASNs) / 20
	if minClean < 6 {
		minClean = 6
	}
	for len(clean) < minClean {
		flipped := false
		byRank := w.Topo.ByRank()
		// Edge-first: growing the region downward preserves the filtered
		// core (Table 1's 16/17) while restoring propagation.
		for i := len(byRank) - 1; i >= 0; i-- {
			asn := byRank[i]
			if neverFilters(asn) {
				continue
			}
			adjacent := false
			for _, p := range w.Topo.Providers(asn) {
				if clean[p] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				continue
			}
			w.Truth[asn] = &Truth{ASN: asn, DeployDay: -1, Kind: "none"}
			flipped = true
			break
		}
		_ = byRank
		if !flipped {
			break
		}
		clean = propagate()
	}
	return clean
}

// buildRPKI creates the five RIR authorities, one CA per AS, and the ROA
// schedule (encoded in the objects' NotBefore days).
func (w *World) buildRPKI() {
	horizon := w.Cfg.Days + 1
	for _, r := range rpki.AllRIRs {
		var res rpki.ResourceSet
		// Each RIR holds its forty /8 blocks; grant a generous ASN range.
		for i := 0; i < 40; i++ {
			base := 8 + int(r)*40 + i
			res.Prefixes = append(res.Prefixes, netip.PrefixFrom(inet.V4(uint32(base)<<24), 8))
		}
		res.ASNs = []rpki.ASNRange{{Lo: 1, Hi: 1 << 30}}
		w.Authorities[r] = rpki.NewAuthority(r, w.Cfg.Seed+int64(r), res, 0, horizon)
	}
	// One CA per AS holding its allocated prefixes.
	for _, asn := range w.Topo.ASNs {
		info := w.Topo.Info[asn]
		auth := w.Authorities[info.RIR]
		subject := fmt.Sprintf("as%d", asn)
		_, err := auth.IssueCA(subject, "", rpki.ResourceSet{Prefixes: info.Prefixes}, 0, horizon)
		if err != nil {
			panic(fmt.Sprintf("core: issuing CA for %v: %v", asn, err))
		}
	}
	// ROA schedule: a random subset of prefixes is covered from day 0, the
	// rest of the target set phases in linearly.
	type slot struct {
		asn inet.ASN
		p   netip.Prefix
	}
	var all []slot
	for _, asn := range w.Topo.ASNs {
		for _, p := range w.Topo.Info[asn].Prefixes {
			all = append(all, slot{asn, p})
		}
	}
	w.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	nStart := int(w.Cfg.ROACoverStart * float64(len(all)))
	nEnd := int(w.Cfg.ROACoverEnd * float64(len(all)))
	if nEnd > len(all) {
		nEnd = len(all)
	}
	for i := 0; i < nEnd; i++ {
		day := 0
		if i >= nStart {
			day = 1 + w.rng.Intn(w.Cfg.Days-1)
		}
		s := all[i]
		info := w.Topo.Info[s.asn]
		auth := w.Authorities[info.RIR]
		_, err := auth.IssueROA(fmt.Sprintf("as%d", s.asn), s.asn,
			[]rpki.ROAPrefix{{Prefix: s.p, MaxLength: s.p.Bits()}}, day, horizon)
		if err != nil {
			panic(fmt.Sprintf("core: issuing ROA for %v: %v", s.asn, err))
		}
		w.roaDayByPrefix[s.p] = day
	}
}

// buildROVSchedule decides which ASes deploy ROV, when, and in what mode.
// Adoption is strongly tier-weighted, matching the paper's observation that
// the core filters far more than the edge (Table 1: 16 of 17 tier-1s have a
// 100% score). A well-filtered core also contains invalid more-specifics,
// which is what keeps collateral damage (§7.4) the exception rather than
// the rule.
func (w *World) buildROVSchedule() {
	byRank := w.Topo.ByRank()
	n := len(byRank)
	nEnd := int(w.Cfg.ROVEnd * float64(n))
	nStart := int(w.Cfg.ROVStart * float64(n))

	// Calibrated against the paper's aggregate shape: a near-universally
	// filtering clique (Table 1), but a transit layer whose spotty adoption
	// lets invalid routes propagate widely — without that, collateral
	// benefit over-protects the edge and "fully protected" swells far past
	// the paper's 12.3%.
	tierProb := map[topology.Tier]float64{
		topology.Tier2: 0.40,
		topology.Tier3: 0.22,
		topology.Stub:  0.10,
	}
	// Scale edge probabilities so the expected adopter count matches the
	// configured end-of-timeline fraction; tier-1/2 rates stay put (the
	// clique's near-universal deployment is structural, not a dial).
	fixed, scalable := float64(len(w.Topo.Tier1)-1), 0.0
	for _, asn := range byRank {
		tier := w.Topo.Info[asn].Tier
		if tier == topology.Tier2 {
			fixed += tierProb[tier]
		} else if tier != topology.Tier1 {
			scalable += tierProb[tier]
		}
	}
	scale := 1.0
	if scalable > 0 {
		scale = (float64(nEnd) - fixed) / scalable
		if scale < 0 {
			scale = 0
		}
	}
	// The clique adopts deterministically with exactly one holdout — the
	// paper's Table 1 shape (16 of 17 protected; Deutsche Telekom at 0%).
	holdout := w.Topo.Tier1[w.rng.Intn(len(w.Topo.Tier1))]
	var adopters []inet.ASN
	for _, asn := range byRank {
		tier := w.Topo.Info[asn].Tier
		if tier == topology.Tier1 {
			if asn != holdout {
				adopters = append(adopters, asn)
				w.Truth[asn] = &Truth{ASN: asn, DeployDay: 0}
			}
			continue
		}
		p := tierProb[tier]
		if tier == topology.Tier3 || tier == topology.Stub {
			p *= scale
		}
		if w.rng.Float64() < p {
			adopters = append(adopters, asn)
			w.Truth[asn] = &Truth{ASN: asn, DeployDay: 0}
		}
	}
	// Assign deployment days: the first nStart filter from day 0.
	w.rng.Shuffle(len(adopters), func(i, j int) { adopters[i], adopters[j] = adopters[j], adopters[i] })
	for i, asn := range adopters {
		tr := w.Truth[asn]
		if i >= nStart {
			tr.DeployDay = 1 + w.rng.Intn(w.Cfg.Days-1)
		}
		roll := w.rng.Float64()
		switch {
		case w.Topo.Info[asn].Tier == topology.Tier1:
			// In a compressed topology every tier-1's customer cone contains
			// some invalid origin, so an exempting tier-1 would leak most
			// test prefixes — unlike the real clique, where the paper's
			// exempting tier-1s still measured 100% because the observed
			// invalid origins were not on their customer paths. Keep the
			// clique's adopters full-filtering; exemptions live in the
			// transit tiers (and scenario casts set them explicitly).
			tr.Policy, tr.Kind = rov.Full(), "full"
		case roll < w.Cfg.CustomerExemptFrac:
			tr.Policy, tr.Kind = rov.CustomerExempt(), "customer-exempt"
		case roll < w.Cfg.CustomerExemptFrac+w.Cfg.PreferValidFrac:
			tr.Policy, tr.Kind = rov.PreferValid(), "prefer-valid"
		case roll < w.Cfg.CustomerExemptFrac+w.Cfg.PreferValidFrac+w.Cfg.EquipmentIssueFrac:
			// A full deployment minus one router: the session toward one
			// random neighbor bypasses validation entirely.
			nbrs := sortedNeighbors(w.Graph.AS(asn))
			if len(nbrs) > 0 {
				bad := nbrs[w.rng.Intn(len(nbrs))]
				tr.Policy = &rov.Policy{Default: rov.ModeDrop, ByASN: map[inet.ASN]rov.Mode{bad: rov.ModeAccept}}
				tr.Kind = "equipment-partial"
				tr.PartialNeighbor = bad
			} else {
				tr.Policy, tr.Kind = rov.Full(), "full"
			}
		default:
			tr.Policy, tr.Kind = rov.Full(), "full"
		}
		if w.Topo.Info[asn].Tier != topology.Tier1 && w.rng.Float64() < w.Cfg.RollbackFrac {
			// Equipment-driven rollbacks (the BIT story) happen at the edge;
			// a clique member retracting would dominate a compressed world.
			tr.RollbackDay = tr.DeployDay + 1 + w.rng.Intn(w.Cfg.Days-tr.DeployDay)
		}
		if w.rng.Float64() < w.Cfg.DefaultRouteLeakFrac {
			tr.DefaultLeak = true // wired up after invalids exist
		} else if w.rng.Float64() < w.Cfg.SLURMExceptionFrac {
			// Marked now, bound to a concrete invalid prefix once the
			// invalid schedule exists (applySLURMExceptions).
			tr.SLURMException = netip.PrefixFrom(inet.V4(0), 0)
		}
	}
	// Fill in non-adopters.
	for _, asn := range w.Topo.ASNs {
		if w.Truth[asn] == nil {
			w.Truth[asn] = &Truth{ASN: asn, DeployDay: -1, Kind: "none"}
		}
	}
}

// buildInvalids schedules the misconfigured announcements that create test
// prefixes, in three real-world shapes:
//
//   - unannounced-space invalids (the majority): the victim holds a ROA for
//     reserved space it does not announce; filtering ASes have no route at
//     all to these prefixes;
//   - covered invalids: the wrong origin announces a more-specific inside a
//     /16 the victim legitimately announces (collateral-damage fuel, §7.4);
//   - shared invalids: the victim announces the very same prefix validly,
//     so the prefix is reachable from ROV ASes and must be excluded from
//     the test set (§3.2).
func (w *World) buildInvalids(clean map[inet.ASN]bool) {
	// Victim candidates for covered/shared shapes: prefixes with a ROA
	// from day 0, so announcements are invalid for the whole timeline.
	type victim struct {
		asn inet.ASN
		p   netip.Prefix
	}
	var victims []victim
	for p, day := range w.roaDayByPrefix {
		if day != 0 {
			continue
		}
		if owner := w.ownerOf(p); owner != 0 {
			victims = append(victims, victim{owner, p})
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].p.String() < victims[j].p.String() })
	w.rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })

	asns := w.Topo.ASNs
	horizon := w.Cfg.Days + 1
	pickWrongOrigin := func(not inet.ASN) inet.ASN {
		for tries := 0; tries < 400; tries++ {
			cand := asns[w.rng.Intn(len(asns))]
			if cand != not && clean[cand] {
				return cand
			}
		}
		return 0
	}

	// Shape 1: unannounced reserved space. Block 39 of each RIR region is
	// never touched by the topology allocator.
	reservedIdx := make(map[rpki.RIR]int)
	for i := 0; i < w.Cfg.InvalidAnnouncements && i < len(victims); i++ {
		v := victims[i]
		origin := pickWrongOrigin(v.asn)
		if origin == 0 {
			continue
		}
		info := w.Topo.Info[v.asn]
		auth := w.Authorities[info.RIR]
		res16 := inet.SubnetAt(topology.RIRBlock(info.RIR, 39), 16, uint32(reservedIdx[info.RIR]))
		reservedIdx[info.RIR]++
		caSubject := fmt.Sprintf("as%d-reserved-%d", v.asn, i)
		if _, err := auth.IssueCA(caSubject, "", rpki.ResourceSet{Prefixes: []netip.Prefix{res16}}, 0, horizon); err != nil {
			panic(fmt.Sprintf("core: reserved CA: %v", err))
		}
		if _, err := auth.IssueROA(caSubject, v.asn,
			[]rpki.ROAPrefix{{Prefix: res16, MaxLength: 16}}, 0, horizon); err != nil {
			panic(fmt.Sprintf("core: reserved ROA: %v", err))
		}
		w.Invalids = append(w.Invalids, InvalidAnn{
			Prefix:   inet.SubnetAt(res16, 20, 0),
			Origin:   origin,
			Victim:   v.asn,
			StartDay: 0,
			EndDay:   horizon, // persistent: active through the final day
		})
	}

	// Shapes 2 and 3: carved from announced victim prefixes. The victim
	// must sit behind providers that filter from day 0: then its covering
	// route keeps traffic safe along the filtered core, and diversion only
	// hits ASes whose own paths cross a non-filtering transit carrying the
	// more-specific — the Figure-9 shape, rare as in the paper, instead of
	// universal.
	wellGuarded := func(asn inet.ASN) bool {
		provs := w.Topo.Providers(asn)
		if len(provs) == 0 {
			return false
		}
		for _, p := range provs {
			tr := w.Truth[p]
			if !(tr.DeployDay == 0 && tr.RollbackDay == 0 && tr.Kind == "full") {
				return false
			}
		}
		return true
	}
	var guarded []victim
	for _, v := range victims[w.Cfg.InvalidAnnouncements:] {
		if wellGuarded(v.asn) {
			guarded = append(guarded, v)
		}
	}
	nCov := w.Cfg.CoveredInvalidAnnouncements
	for j := 0; j < nCov+w.Cfg.SharedInvalidAnnouncements && j < len(guarded); j++ {
		v := guarded[j]
		origin := pickWrongOrigin(v.asn)
		if origin == 0 {
			continue
		}
		// Carve the LAST /20 of the victim's /16: hosts and measurement
		// clients are addressed from the bottom of the block and must not
		// fall inside the misconfigured sub-prefix.
		sub := inet.SubnetAt(v.p, 20, 15)
		shared := j >= nCov
		if shared {
			// The victim also announces the /20 itself; loosen its ROA so
			// that announcement is Valid while the wrong origin stays
			// Invalid.
			info := w.Topo.Info[v.asn]
			auth := w.Authorities[info.RIR]
			if _, err := auth.IssueROA(fmt.Sprintf("as%d", v.asn), v.asn,
				[]rpki.ROAPrefix{{Prefix: v.p, MaxLength: 24}}, 0, horizon); err != nil {
				panic(fmt.Sprintf("core: shared-victim ROA: %v", err))
			}
		}
		w.Invalids = append(w.Invalids, InvalidAnn{
			Prefix:   sub,
			Origin:   origin,
			Victim:   v.asn,
			StartDay: 0,
			EndDay:   horizon, // persistent
			Shared:   shared,
			Covered:  true,
		})
	}
}

// ownerOf returns the AS allocated prefix p, or 0.
func (w *World) ownerOf(p netip.Prefix) inet.ASN {
	for _, asn := range w.Topo.ASNs {
		for _, own := range w.Topo.Info[asn].Prefixes {
			if own == p {
				return asn
			}
		}
	}
	return 0
}

func (w *World) nextHostSeed() int64 {
	w.hostSeq++
	return w.Cfg.Seed*31 + w.hostSeq
}

// buildHosts attaches candidate end hosts to every AS and tNode hosts under
// each invalid prefix.
func (w *World) buildHosts() {
	for _, asn := range w.Topo.ASNs {
		info := w.Topo.Info[asn]
		base := info.Prefixes[0]
		for i := 0; i < w.Cfg.HostsPerAS; i++ {
			addr := inet.NthAddr(base, uint32(10+i))
			pol := w.samplePolicy()
			h := netsim.NewHost(addr, asn, pol, w.nextHostSeed())
			h.BackgroundRate = w.sampleBackground()
			w.Net.AddHost(h)
		}
	}
	// tNode hosts live inside the wrong-origin AS, addressed from the
	// invalid prefix. Covered invalids carry a single tNode: their traffic
	// can be diverted by non-filtering transit (§7.4), and in the wild such
	// prefixes are a small minority of the tNode population (TDC reached 3
	// of its ~38 tNodes) — weighting them like ordinary invalids would
	// drown every filtering AS's score in collateral damage.
	for idx, inv := range w.Invalids {
		perInv := max(1, w.Cfg.TNodesPerInvalid)
		if inv.Covered {
			perInv = 1
		}
		for i := 0; i < perInv; i++ {
			addr := inet.NthAddr(inv.Prefix, uint32(20+i))
			h := netsim.NewHost(addr, inv.Origin, ipid.Global, w.nextHostSeed(), 443, 80)
			h.BackgroundRate = w.rng.Float64() * 3
			if w.rng.Float64() < w.Cfg.TNodeBrokenFrac {
				w.breakTNode(h)
			}
			w.Net.AddHost(h)
		}
		if w.rng.Float64() < w.Cfg.InboundFilterFrac {
			// The wrong-origin AS egress-filters responses from the
			// invalid prefix (the paper's inbound-filtering confound).
			p := inv.Prefix
			prev := w.Net.EgressFilter[inv.Origin]
			w.Net.EgressFilter[inv.Origin] = func(pkt netsim.Packet) bool {
				if prev != nil && prev(pkt) {
					return true
				}
				return p.Contains(pkt.Src)
			}
		}
		_ = idx
	}
}

// breakTNode gives a tNode host one of the §4.1-violating behaviours.
func (w *World) breakTNode(h *netsim.Host) {
	cfg := tcpsim.DefaultConfig(443, 80)
	switch w.rng.Intn(3) {
	case 0: // never retransmits (fails qualification condition b)
		cfg.Behavior = tcpsim.NoRetransmit
		h.TCP = tcpsim.New(cfg)
	case 1: // keeps retransmitting after RST (fails condition c)
		cfg.Behavior = tcpsim.IgnoreRST
		h.TCP = tcpsim.New(cfg)
	default: // entirely silent (fails condition a)
		h.Handler = func(*netsim.Sim, netsim.Packet) bool { return true }
	}
}

// samplePolicy draws an IP-ID policy from the configured mix.
func (w *World) samplePolicy() ipid.Policy {
	r := w.rng.Float64()
	switch {
	case r < w.Cfg.GlobalCounterFrac:
		return ipid.Global
	case r < w.Cfg.GlobalCounterFrac+0.25:
		return ipid.PerDestination
	case r < w.Cfg.GlobalCounterFrac+0.40:
		return ipid.Random
	default:
		return ipid.Constant
	}
}

// sampleBackground draws a background rate from the low/med/high mix.
func (w *World) sampleBackground() float64 {
	r := w.rng.Float64()
	switch {
	case r < w.Cfg.BGLowFrac:
		return w.rng.Float64() * 9
	case r < w.Cfg.BGLowFrac+w.Cfg.BGMedFrac:
		return 10 + w.rng.Float64()*20
	default:
		return 30 + w.rng.Float64()*70
	}
}

// buildClients places the two measurement clients in clean (never-filtering,
// cleanly-uplinked) stub ASes far apart in the numbering: like the paper's
// clients, they must be able to reach the RPKI-invalid test prefixes.
func (w *World) buildClients(clean map[inet.ASN]bool) {
	var stubASes []inet.ASN
	for _, asn := range w.Topo.ASNs {
		if w.Topo.Info[asn].Tier == topology.Stub && clean[asn] {
			stubASes = append(stubASes, asn)
		}
	}
	if len(stubASes) < 2 {
		// Fall back to any clean AS, then to any never-filtering AS: the
		// paper's clients just need reachability to the test prefixes and
		// the ability to spoof.
		for _, asn := range w.Topo.ASNs {
			if clean[asn] {
				stubASes = append(stubASes, asn)
			}
		}
	}
	if len(stubASes) < 2 {
		for _, asn := range w.Topo.ASNs {
			if w.Truth[asn].DeployDay < 0 {
				stubASes = append(stubASes, asn)
			}
		}
	}
	if len(stubASes) < 2 {
		panic("core: no never-filtering ASes available for measurement clients")
	}
	a, b := stubASes[0], stubASes[len(stubASes)-1]
	w.ClientA = netsim.NewHost(inet.NthAddr(w.Topo.Info[a].Prefixes[0], 250), a, ipid.Global, w.nextHostSeed())
	w.ClientB = netsim.NewHost(inet.NthAddr(w.Topo.Info[b].Prefixes[0], 250), b, ipid.Global, w.nextHostSeed())
	w.Net.AddHost(w.ClientA)
	w.Net.AddHost(w.ClientB)
}

// buildCollector wires a RouteViews-style collector fed by the tier-1
// clique plus a sample of tier-2s: realistic partial visibility.
func (w *World) buildCollector() {
	feeders := append([]inet.ASN(nil), w.Topo.Tier1...)
	for _, asn := range w.Topo.ASNs {
		if w.Topo.Info[asn].Tier == topology.Tier2 && w.rng.Float64() < 0.6 {
			feeders = append(feeders, asn)
		}
	}
	w.Collector = &collectors.Collector{Name: "routeviews", Feeders: feeders}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// applyDefaultLeaks wires up the §7.6 partial default-route leaks: each
// marked adopter defaults traffic for ONE invalid /20 toward a provider
// that never filters (the Swisscom on-ramp-tunnel shape), capping its score
// just below 100%.
func (w *World) applyDefaultLeaks() {
	if len(w.Invalids) == 0 {
		return
	}
	i := 0
	for _, asn := range w.Topo.ASNs {
		tr := w.Truth[asn]
		if tr == nil || !tr.DefaultLeak {
			continue
		}
		var leakVia inet.ASN
		for _, prov := range w.Topo.Providers(asn) {
			if w.Truth[prov].DeployDay < 0 {
				leakVia = prov
				break
			}
		}
		if leakVia == 0 {
			tr.DefaultLeak = false
			continue
		}
		inv := w.Invalids[i%len(w.Invalids)]
		i++
		a := w.Graph.AS(asn)
		a.DefaultRoute, a.HasDefault = leakVia, true
		// Scope the leak to a single host route inside the invalid prefix:
		// the Swisscom case re-exposed only the tunnelled destinations, and
		// a leak covering a whole tNode-rich /20 would sink the AS's score
		// out of the >90% band §7.6 analyses.
		a.DefaultScope = netip.PrefixFrom(inet.NthAddr(inv.Prefix, 20), 32)
	}
}

// AddCandidateHosts attaches n additional measurement-friendly hosts
// (global IP-ID counter, low background traffic) to an AS, guaranteeing it
// is observable by the vVP pipeline. Experiment casts use this the way the
// paper relies on ASes having enough qualifying hosts.
func (w *World) AddCandidateHosts(asn inet.ASN, n int) {
	info, ok := w.Topo.Info[asn]
	if !ok || len(info.Prefixes) == 0 {
		return
	}
	base := info.Prefixes[0]
	for i := 0; i < n; i++ {
		addr := inet.NthAddr(base, uint32(100+i))
		if _, exists := w.Net.HostAt(addr); exists {
			continue
		}
		h := netsim.NewHost(addr, asn, ipid.Global, w.nextHostSeed())
		h.BackgroundRate = 1 + float64(i%3)
		w.Net.AddHost(h)
	}
}

// ActiveAt reports whether the announcement is active at the given day.
func (a InvalidAnn) ActiveAt(day int) bool { return day >= a.StartDay && day < a.EndDay }

// applySLURMExceptions binds each marked adopter's SLURM whitelist to a
// concrete invalid prefix from the schedule.
func (w *World) applySLURMExceptions() {
	if len(w.Invalids) == 0 {
		return
	}
	i := 0
	for _, asn := range w.Topo.ASNs {
		tr := w.Truth[asn]
		if tr == nil || !tr.SLURMException.IsValid() {
			continue
		}
		tr.SLURMException = w.Invalids[i%len(w.Invalids)].Prefix
		i++
	}
}

// sortedNeighbors returns an AS's neighbors in ascending order.
func sortedNeighbors(a *bgp.AS) []inet.ASN {
	out := make([]inet.ASN, 0, len(a.Neighbors))
	for n := range a.Neighbors {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
