package core

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/topology"
)

// buildInvalids schedules the misconfigured announcements that create test
// prefixes, in three real-world shapes:
//
//   - unannounced-space invalids (the majority): the victim holds a ROA for
//     reserved space it does not announce; filtering ASes have no route at
//     all to these prefixes;
//   - covered invalids: the wrong origin announces a more-specific inside a
//     /16 the victim legitimately announces (collateral-damage fuel, §7.4);
//   - shared invalids: the victim announces the very same prefix validly,
//     so the prefix is reachable from ROV ASes and must be excluded from
//     the test set (§3.2).
func (w *World) buildInvalids(clean map[inet.ASN]bool) {
	// Victim candidates for covered/shared shapes: prefixes with a ROA
	// from day 0, so announcements are invalid for the whole timeline.
	type victim struct {
		asn inet.ASN
		p   netip.Prefix
	}
	// One pass over the allocation table: looking owners up per candidate
	// prefix was O(ASes × prefixes) per query and quadratic overall, which
	// dominated the build at paper scale.
	owners := make(map[netip.Prefix]inet.ASN)
	for _, asn := range w.Topo.ASNs {
		for _, own := range w.Topo.Info[asn].Prefixes {
			owners[own] = asn
		}
	}
	var victims []victim
	for p, day := range w.roaDayByPrefix {
		if day != 0 {
			continue
		}
		if owner := owners[p]; owner != 0 {
			victims = append(victims, victim{owner, p})
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].p.String() < victims[j].p.String() })
	w.rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })

	asns := w.Topo.ASNs
	horizon := w.Cfg.Days + 1
	pickWrongOrigin := func(not inet.ASN) inet.ASN {
		for tries := 0; tries < 400; tries++ {
			cand := asns[w.rng.Intn(len(asns))]
			if cand != not && clean[cand] {
				return cand
			}
		}
		return 0
	}

	// Shape 1: unannounced reserved space. Block 39 of each RIR region is
	// never touched by the topology allocator.
	reservedIdx := make(map[rpki.RIR]int)
	for i := 0; i < w.Cfg.InvalidAnnouncements && i < len(victims); i++ {
		v := victims[i]
		origin := pickWrongOrigin(v.asn)
		if origin == 0 {
			continue
		}
		info := w.Topo.Info[v.asn]
		auth := w.Authorities[info.RIR]
		res16 := inet.SubnetAt(topology.RIRBlock(info.RIR, 39), 16, uint32(reservedIdx[info.RIR]))
		reservedIdx[info.RIR]++
		caSubject := fmt.Sprintf("as%d-reserved-%d", v.asn, i)
		if _, err := auth.IssueCA(caSubject, "", rpki.ResourceSet{Prefixes: []netip.Prefix{res16}}, 0, horizon); err != nil {
			panic(fmt.Sprintf("core: reserved CA: %v", err))
		}
		if _, err := auth.IssueROA(caSubject, v.asn,
			[]rpki.ROAPrefix{{Prefix: res16, MaxLength: 16}}, 0, horizon); err != nil {
			panic(fmt.Sprintf("core: reserved ROA: %v", err))
		}
		w.Invalids = append(w.Invalids, InvalidAnn{
			Prefix:   inet.SubnetAt(res16, 20, 0),
			Origin:   origin,
			Victim:   v.asn,
			StartDay: 0,
			EndDay:   horizon, // persistent: active through the final day
		})
	}

	// Shapes 2 and 3: carved from announced victim prefixes. The victim
	// must sit behind providers that filter from day 0: then its covering
	// route keeps traffic safe along the filtered core, and diversion only
	// hits ASes whose own paths cross a non-filtering transit carrying the
	// more-specific — the Figure-9 shape, rare as in the paper, instead of
	// universal.
	wellGuarded := func(asn inet.ASN) bool {
		provs := w.Topo.Providers(asn)
		if len(provs) == 0 {
			return false
		}
		for _, p := range provs {
			tr := w.Truth[p]
			if !(tr.DeployDay == 0 && tr.RollbackDay == 0 && tr.Kind == "full") {
				return false
			}
		}
		return true
	}
	var guarded []victim
	for _, v := range victims[w.Cfg.InvalidAnnouncements:] {
		if wellGuarded(v.asn) {
			guarded = append(guarded, v)
		}
	}
	nCov := w.Cfg.CoveredInvalidAnnouncements
	for j := 0; j < nCov+w.Cfg.SharedInvalidAnnouncements && j < len(guarded); j++ {
		v := guarded[j]
		origin := pickWrongOrigin(v.asn)
		if origin == 0 {
			continue
		}
		// Carve the LAST /20 of the victim's /16: hosts and measurement
		// clients are addressed from the bottom of the block and must not
		// fall inside the misconfigured sub-prefix.
		sub := inet.SubnetAt(v.p, 20, 15)
		shared := j >= nCov
		if shared {
			// The victim also announces the /20 itself; loosen its ROA so
			// that announcement is Valid while the wrong origin stays
			// Invalid.
			info := w.Topo.Info[v.asn]
			auth := w.Authorities[info.RIR]
			if _, err := auth.IssueROA(fmt.Sprintf("as%d", v.asn), v.asn,
				[]rpki.ROAPrefix{{Prefix: v.p, MaxLength: 24}}, 0, horizon); err != nil {
				panic(fmt.Sprintf("core: shared-victim ROA: %v", err))
			}
		}
		w.Invalids = append(w.Invalids, InvalidAnn{
			Prefix:   sub,
			Origin:   origin,
			Victim:   v.asn,
			StartDay: 0,
			EndDay:   horizon, // persistent
			Shared:   shared,
			Covered:  true,
		})
	}
}

// applyDefaultLeaks wires up the §7.6 partial default-route leaks: each
// marked adopter defaults traffic for ONE invalid /20 toward a provider
// that never filters (the Swisscom on-ramp-tunnel shape), capping its score
// just below 100%.
func (w *World) applyDefaultLeaks() {
	if len(w.Invalids) == 0 {
		return
	}
	i := 0
	for _, asn := range w.Topo.ASNs {
		tr := w.Truth[asn]
		if tr == nil || !tr.DefaultLeak {
			continue
		}
		var leakVia inet.ASN
		for _, prov := range w.Topo.Providers(asn) {
			if w.Truth[prov].DeployDay < 0 {
				leakVia = prov
				break
			}
		}
		if leakVia == 0 {
			tr.DefaultLeak = false
			continue
		}
		inv := w.Invalids[i%len(w.Invalids)]
		i++
		a := w.Graph.AS(asn)
		a.DefaultRoute, a.HasDefault = leakVia, true
		// Scope the leak to a single host route inside the invalid prefix:
		// the Swisscom case re-exposed only the tunnelled destinations, and
		// a leak covering a whole tNode-rich /20 would sink the AS's score
		// out of the >90% band §7.6 analyses.
		a.DefaultScope = netip.PrefixFrom(inet.NthAddr(inv.Prefix, 20), 32)
	}
}

// applySLURMExceptions binds each marked adopter's SLURM whitelist to a
// concrete invalid prefix from the schedule.
func (w *World) applySLURMExceptions() {
	if len(w.Invalids) == 0 {
		return
	}
	i := 0
	for _, asn := range w.Topo.ASNs {
		tr := w.Truth[asn]
		if tr == nil || !tr.SLURMException.IsValid() {
			continue
		}
		tr.SLURMException = w.Invalids[i%len(w.Invalids)].Prefix
		i++
	}
}
