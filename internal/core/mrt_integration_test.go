package core

import (
	"bytes"
	"testing"

	"github.com/netsec-lab/rovista/internal/collectors"
	"github.com/netsec-lab/rovista/internal/mrt"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// TestMRTRoundTripPreservesTestPrefixSelection: archiving the collector
// view as a RouteViews-style MRT dump and re-importing it must yield the
// same exclusively-invalid test prefixes — the property the paper's whole
// pipeline rests on when it consumes real MRT archives.
func TestMRTRoundTripPreservesTestPrefixSelection(t *testing.T) {
	w := buildSmall(t, 23)
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	view := w.Collector.Snapshot(w.Graph)
	want := view.ExclusivelyInvalid(w.VRPs)

	var buf bytes.Buffer
	if err := mrt.WriteView(&buf, w.Collector.Name, view, w.Collector.Feeders, 1700000000); err != nil {
		t.Fatal(err)
	}
	dump, err := mrt.ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dump.CollectorName != w.Collector.Name {
		t.Fatalf("collector name %q", dump.CollectorName)
	}

	// Recompute exclusivity from the re-imported observations.
	obs := dump.Observations()
	byPrefix := map[string][]collectors.RouteObs{}
	for _, o := range obs {
		byPrefix[o.Prefix.String()] = append(byPrefix[o.Prefix.String()], o)
	}
	got := map[string]bool{}
	for key, list := range byPrefix {
		all := true
		for _, o := range list {
			if w.VRPs.Validate(o.Prefix, o.Origin()) != rpki.Invalid {
				all = false
				break
			}
		}
		if all {
			got[key] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("exclusive prefixes: %d after round trip, want %d", len(got), len(want))
	}
	for _, p := range want {
		if !got[p.String()] {
			t.Fatalf("lost exclusive prefix %v in MRT round trip", p)
		}
	}
}
