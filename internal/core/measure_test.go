package core

import (
	"net/netip"
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/detect"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
	"github.com/netsec-lab/rovista/internal/scan"
)

// measureWith builds a fresh world for (wcfg, seed), advances it to day 0,
// and runs one full round with the given worker count, recording raw pair
// results. Fresh worlds per run isolate the comparison from the host-state
// evolution the discovery scans cause.
func measureWith(t *testing.T, wcfg WorldConfig, seed int64, workers int) *Snapshot {
	t.Helper()
	w, err := BuildWorld(wcfg)
	if err != nil {
		t.Fatalf("BuildWorld: %v", err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	cfg := DefaultRunnerConfig(seed)
	cfg.Workers = workers
	cfg.RecordPairs = true
	snap := NewRunner(w, cfg).Measure()
	// Timings legitimately differ between runs; null them for comparison.
	snap.Metrics = nil
	return snap
}

// TestMeasureParallelDeterminism is the pipeline's core contract: because
// every pair measures inside an isolated context whose state derives only
// from (seed, AS, tNode index, vVP index), the full snapshot — reports,
// consistency fraction, and every raw pair sample — must be bit-for-bit
// identical for any worker count.
func TestMeasureParallelDeterminism(t *testing.T) {
	tiny := SmallWorldConfig(0) // second world size: ~half the ASes
	tiny.Topology.NumTier3 = 15
	tiny.Topology.NumStub = 40

	cases := []struct {
		name string
		cfg  func(seed int64) WorldConfig
		seed int64
	}{
		{"small/seed5", SmallWorldConfig, 5},
		{"small/seed11", SmallWorldConfig, 11},
		{"tiny/seed5", func(seed int64) WorldConfig {
			c := tiny
			c.Seed = seed
			c.Topology.Seed = seed
			return c
		}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := measureWith(t, tc.cfg(tc.seed), tc.seed, 1)
			if len(want.PairResults) == 0 {
				t.Fatal("round measured no pairs; determinism check is vacuous")
			}
			for _, workers := range []int{2, 8} {
				got := measureWith(t, tc.cfg(tc.seed), tc.seed, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d produced a different snapshot than serial", workers)
				}
			}
		})
	}
}

// TestVVPCacheAutoInvalidation covers the generation-keyed cache: adding
// hosts used to require an explicit InvalidateVVPCache call, and forgetting
// it served stale discoveries.
func TestVVPCacheAutoInvalidation(t *testing.T) {
	w, err := BuildWorld(SmallWorldConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(w, DefaultRunnerConfig(9))
	before := len(r.DiscoverVVPs())
	w.AddCandidateHosts(w.Topo.ASNs[0], 4)
	after := len(r.DiscoverVVPs())
	if after <= before {
		t.Fatalf("cache not refreshed after host additions: %d then %d vVPs", before, after)
	}
}

// Fake stages for exercising Measure's composition without a simulation.

type fakePrefixes struct{ prefixes []netip.Prefix }

func (f fakePrefixes) TestPrefixes() []netip.Prefix { return f.prefixes }

type fakeTNodes struct{ tns []scan.TNode }

func (f fakeTNodes) QualifyTNodes([]netip.Prefix) []scan.TNode { return f.tns }

type fakeVVPs struct{ vvps []scan.VVP }

func (f fakeVVPs) DiscoverVVPs() []scan.VVP { return f.vvps }

// fakeMeasurer judges every pair usable: outbound-filtered for one AS,
// reachable for the rest.
type fakeMeasurer struct{ filtered inet.ASN }

func (f fakeMeasurer) MeasurePair(p pipeline.Pair) detect.PairResult {
	out := detect.NoFiltering
	if p.ASN == f.filtered {
		out = detect.OutboundFiltering
	}
	return detect.PairResult{VVP: p.VVP.Addr, TNode: p.TNode, Usable: true, Outcome: out}
}

// TestMeasureStageOverrides drives a full round through injected stages —
// no world simulation at all — verifying Measure is a pure composition of
// the five pipeline stages plus the §6.1 cutoff and §6.2 aggregation.
func TestMeasureStageOverrides(t *testing.T) {
	a := func(last byte) netip.Addr { return netip.AddrFrom4([4]byte{192, 0, 2, last}) }
	tns := []scan.TNode{
		{Addr: a(1), Port: 443},
		{Addr: a(2), Port: 443},
		{Addr: a(3), Port: 443},
	}
	vvps := []scan.VVP{
		{Addr: a(10), ASN: 100, BackgroundRate: 1},
		{Addr: a(11), ASN: 100, BackgroundRate: 2},
		{Addr: a(20), ASN: 200, BackgroundRate: 1},
		{Addr: a(21), ASN: 200, BackgroundRate: 2},
		{Addr: a(30), ASN: 300, BackgroundRate: 50}, // above the §6.1 cutoff
		{Addr: a(31), ASN: 300, BackgroundRate: 60},
	}
	r := NewRunner(&World{}, DefaultRunnerConfig(1))
	r.Prefixes = fakePrefixes{prefixes: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")}}
	r.TNodes = fakeTNodes{tns: tns}
	r.VVPs = fakeVVPs{vvps: vvps}
	r.Measurer = fakeMeasurer{filtered: 100}

	snap := r.Measure()
	if snap.TestPrefixes != 1 || len(snap.TNodes) != 3 || snap.AllVVPs != 6 {
		t.Fatalf("stage outputs not threaded: %+v", snap)
	}
	if len(snap.Reports) != 2 {
		t.Fatalf("expected 2 scored ASes (AS300 cut off), got %d", len(snap.Reports))
	}
	if rep := snap.Reports[100]; rep == nil || rep.Score != 100 || rep.TNodesFiltered != 3 {
		t.Fatalf("AS100 report: %+v", snap.Reports[100])
	}
	if rep := snap.Reports[200]; rep == nil || rep.Score != 0 || rep.TNodesMeasured != 3 {
		t.Fatalf("AS200 report: %+v", snap.Reports[200])
	}
	if snap.ConsistentPairFraction != 1 {
		t.Fatalf("unanimous fakes must be fully consistent, got %v", snap.ConsistentPairFraction)
	}

	m := snap.Metrics
	if m == nil {
		t.Fatal("Metrics missing from snapshot")
	}
	// 2 scorable ASes × 3 tNodes × 2 vVPs; AS300 never reaches measurement.
	if m.PairsMeasured != 12 || m.PairsUsable != 12 || m.PairsDiscarded != 0 {
		t.Fatalf("pair counters: %+v", m)
	}
	for _, stage := range []string{StageTestPrefixes, StageQualifyTNodes, StageDiscoverVVPs, StageMeasurePairs, StageScore} {
		if _, ok := m.StageDuration(stage); !ok {
			t.Fatalf("stage %q not timed", stage)
		}
	}
}

// TestMeasureProgressCallback checks the observability hook fires for every
// stage and counts every pair.
func TestMeasureProgressCallback(t *testing.T) {
	r := NewRunner(&World{}, DefaultRunnerConfig(1))
	a := func(last byte) netip.Addr { return netip.AddrFrom4([4]byte{192, 0, 2, last}) }
	r.Prefixes = fakePrefixes{}
	r.TNodes = fakeTNodes{tns: []scan.TNode{{Addr: a(1)}, {Addr: a(2)}, {Addr: a(3)}}}
	r.VVPs = fakeVVPs{vvps: []scan.VVP{{Addr: a(10), ASN: 100}, {Addr: a(11), ASN: 100}}}
	r.Measurer = fakeMeasurer{}

	seen := make(map[string]int)
	lastDone := make(map[string]int)
	r.Cfg.Progress = func(stage string, done, total int) {
		seen[stage]++
		lastDone[stage] = done
		if stage == StageMeasurePairs && total != 6 {
			t.Fatalf("measure-pairs total = %d, want 6", total)
		}
	}
	r.Measure()
	for _, stage := range []string{StageTestPrefixes, StageQualifyTNodes, StageDiscoverVVPs, StageMeasurePairs, StageScore} {
		if seen[stage] == 0 {
			t.Fatalf("no progress reported for %q", stage)
		}
	}
	if lastDone[StageMeasurePairs] != 6 {
		t.Fatalf("measure-pairs never reported completion: %d", lastDone[StageMeasurePairs])
	}
}

// TestPathCacheRoundEquivalence: a full measurement round with the
// forwarding-path cache enabled must be bit-for-bit identical to one with
// the cache disabled — the cache is an invisible optimization, never a
// behaviour change.
func TestPathCacheRoundEquivalence(t *testing.T) {
	run := func(disable bool) *Snapshot {
		w, err := BuildWorld(SmallWorldConfig(5))
		if err != nil {
			t.Fatalf("BuildWorld: %v", err)
		}
		if err := w.AdvanceTo(0); err != nil {
			t.Fatalf("AdvanceTo: %v", err)
		}
		w.Net.DisablePathCache = disable
		cfg := DefaultRunnerConfig(5)
		cfg.Workers = 4
		cfg.RecordPairs = true
		snap := NewRunner(w, cfg).Measure()
		snap.Metrics = nil // timings legitimately differ
		return snap
	}
	want := run(true)
	if len(want.PairResults) == 0 {
		t.Fatal("round measured no pairs; equivalence check is vacuous")
	}
	if got := run(false); !reflect.DeepEqual(got, want) {
		t.Fatal("cached round produced a different snapshot than uncached")
	}
}
