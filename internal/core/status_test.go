package core

import (
	"testing"

	"github.com/netsec-lab/rovista/internal/pipeline"
)

// TestRoundStatusHealthy: an ordinary round over a healthy world reports ok.
func TestRoundStatusHealthy(t *testing.T) {
	snap := measureWith(t, SmallWorldConfig(5), 5, 1)
	if snap.Status != pipeline.RoundOK {
		t.Fatalf("healthy round Status = %v, want ok", snap.Status)
	}
	if snap.Status.InsufficientData() {
		t.Fatal("healthy round flagged as insufficient data")
	}
}

// TestRoundStatusInsufficientTNodes: demanding more tNodes than any small
// world yields must produce the typed degraded verdict, not an empty report
// masquerading as "zero protection everywhere".
func TestRoundStatusInsufficientTNodes(t *testing.T) {
	w, err := BuildWorld(SmallWorldConfig(5))
	if err != nil {
		t.Fatalf("BuildWorld: %v", err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	cfg := DefaultRunnerConfig(5)
	cfg.MinTNodes = 1 << 20
	snap := NewRunner(w, cfg).Measure()
	if snap.Status != pipeline.RoundInsufficientTNodes {
		t.Fatalf("Status = %v, want insufficient-tnodes", snap.Status)
	}
	if !snap.Status.InsufficientData() {
		t.Fatal("degraded round not flagged as insufficient data")
	}
	if len(snap.Reports) != 0 {
		t.Fatalf("degraded round still produced %d reports", len(snap.Reports))
	}
}

// TestRoundStatusInsufficientVVPs: a round where no AS clears the vVP
// minimum (an extreme churn epoch, or an absurd threshold) must say so.
func TestRoundStatusInsufficientVVPs(t *testing.T) {
	w, err := BuildWorld(SmallWorldConfig(5))
	if err != nil {
		t.Fatalf("BuildWorld: %v", err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	cfg := DefaultRunnerConfig(5)
	cfg.MinVVPsPerAS = 1 << 20
	snap := NewRunner(w, cfg).Measure()
	if snap.Status != pipeline.RoundInsufficientVVPs {
		t.Fatalf("Status = %v, want insufficient-vvps", snap.Status)
	}
	if len(snap.Reports) != 0 {
		t.Fatalf("round without measurable ASes produced %d reports", len(snap.Reports))
	}
}
