package core

import (
	"net"
	"testing"

	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/rtr"
)

// TestRTRDeliveryEquivalence: a router that receives its VRPs through the
// RFC 8210 wire protocol must filter exactly like one handed the relying
// party's set directly — the full plumbing of §2.2 (repositories → relying
// party → RTR → router → import policy) is lossless.
func TestRTRDeliveryEquivalence(t *testing.T) {
	w := buildSmall(t, 21)
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}

	// Ship the validated set through an RTR session.
	cache := rtr.NewCache(100)
	cache.Update(w.VRPs)
	serverConn, clientConn := net.Pipe()
	done := make(chan struct{})
	go func() { cache.Serve(serverConn); close(done) }()
	client := rtr.NewClient(clientConn)
	if err := client.Reset(); err != nil {
		t.Fatal(err)
	}
	wired := client.VRPSet()
	clientConn.Close()
	serverConn.Close()
	<-done

	if wired.Len() != w.VRPs.Len() {
		t.Fatalf("wire delivered %d VRPs, relying party produced %d", wired.Len(), w.VRPs.Len())
	}
	// Every invalid announcement validates identically under both views.
	for _, inv := range w.Invalids {
		direct := w.VRPs.Validate(inv.Prefix, inv.Origin)
		overWire := wired.Validate(inv.Prefix, inv.Origin)
		if direct != overWire {
			t.Fatalf("%v by %v: direct %v vs wire %v", inv.Prefix, inv.Origin, direct, overWire)
		}
	}
	// And the full VRP lists agree exactly.
	a, b := w.VRPs.All(), wired.All()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("VRP %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestRTRIncrementalTracksAdvance: serial-incremental refreshes track the
// world's RPKI evolution across days.
func TestRTRIncrementalTracksAdvance(t *testing.T) {
	w := buildSmall(t, 22)
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	cache := rtr.NewCache(7)
	cache.Update(w.VRPs)

	serverConn, clientConn := net.Pipe()
	done := make(chan struct{})
	go func() { cache.Serve(serverConn); close(done) }()
	defer func() { clientConn.Close(); serverConn.Close(); <-done }()

	client := rtr.NewClient(clientConn)
	if err := client.Reset(); err != nil {
		t.Fatal(err)
	}
	day0 := client.Len()

	// Advance the world: more ROAs become valid; push the delta.
	if err := w.AdvanceTo(w.Cfg.Days); err != nil {
		t.Fatal(err)
	}
	cache.Update(w.VRPs)
	if err := client.Refresh(); err != nil {
		t.Fatal(err)
	}
	if client.Len() <= day0 {
		t.Fatalf("client VRPs did not grow: %d -> %d", day0, client.Len())
	}
	if client.Len() != w.VRPs.Len() {
		t.Fatalf("client has %d VRPs, world has %d", client.Len(), w.VRPs.Len())
	}
	_ = rpki.Valid // document the dependency main point: validation semantics
}
