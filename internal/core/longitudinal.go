package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/netsec-lab/rovista/internal/inet"
)

// Timeline is a sequence of measurement snapshots over the world's days —
// RoVista's 20-month longitudinal dataset in miniature.
type Timeline struct {
	Days      []int
	Snapshots []*Snapshot
}

// RunTimeline advances the world day by day at the given interval, running
// a full measurement round at each step.
func (r *Runner) RunTimeline(interval int) (*Timeline, error) {
	return r.RunTimelineContext(context.Background(), interval)
}

// RunTimelineContext is RunTimeline with cooperative cancellation: ctx is
// checked between rounds (a round, once started, runs to completion so the
// timeline never holds a half-measured snapshot). On cancellation the
// partial timeline is returned with a nil error — completed rounds are
// valid results that callers flush, not collateral of the interrupt.
func (r *Runner) RunTimelineContext(ctx context.Context, interval int) (*Timeline, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: non-positive snapshot interval %d", interval)
	}
	tl := &Timeline{}
	for day := 0; day <= r.W.Cfg.Days; day += interval {
		if ctx.Err() != nil {
			return tl, nil
		}
		if err := r.W.AdvanceTo(day); err != nil {
			return nil, err
		}
		snap := r.Measure()
		tl.Days = append(tl.Days, day)
		tl.Snapshots = append(tl.Snapshots, snap)
	}
	return tl, nil
}

// RunRounds runs up to n rounds starting at startDay and stepping interval
// days, clamping at the end of the world's timeline (rounds past the end
// re-measure the final day — the world is static there, so with a fixed
// seed they reproduce its last state). Like RunTimelineContext, ctx
// cancellation between rounds returns the partial timeline with a nil
// error. This is the loop rovistad's measurement goroutine and rovista's
// -rounds mode share.
func (r *Runner) RunRounds(ctx context.Context, startDay, interval, n int) (*Timeline, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: non-positive snapshot interval %d", interval)
	}
	if startDay < 0 {
		return nil, fmt.Errorf("core: negative start day %d", startDay)
	}
	tl := &Timeline{}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return tl, nil
		}
		day := startDay + i*interval
		if day > r.W.Cfg.Days {
			day = r.W.Cfg.Days
		}
		if err := r.W.AdvanceTo(day); err != nil {
			return nil, err
		}
		snap := r.Measure()
		tl.Days = append(tl.Days, day)
		tl.Snapshots = append(tl.Snapshots, snap)
	}
	return tl, nil
}

// ScoreSeries extracts one AS's protection score over time; days without a
// report for the AS yield NaN-free gaps (skipped entries).
func (t *Timeline) ScoreSeries(asn inet.ASN) (days []int, scores []float64) {
	for i, snap := range t.Snapshots {
		if rep, ok := snap.Reports[asn]; ok {
			days = append(days, t.Days[i])
			scores = append(scores, rep.Score)
		}
	}
	return
}

// FullProtectionSeries returns, per snapshot, the percentage of measured
// ASes with a 100% score (Figure 6).
func (t *Timeline) FullProtectionSeries() (days []int, pct []float64) {
	for i, snap := range t.Snapshots {
		if len(snap.Reports) == 0 {
			continue
		}
		full := 0
		for _, rep := range snap.Reports {
			if rep.Score >= 100 {
				full++
			}
		}
		days = append(days, t.Days[i])
		pct = append(pct, 100*float64(full)/float64(len(snap.Reports)))
	}
	return
}

// JumpEvents finds ASes whose score jumped from ≤lo to ≥hi between
// consecutive snapshots, grouped by the day of the jump — the §7.3 signal
// used to spot collateral-benefit cohorts.
func (t *Timeline) JumpEvents(lo, hi float64) map[int][]inet.ASN {
	out := make(map[int][]inet.ASN)
	for i := 1; i < len(t.Snapshots); i++ {
		prev, cur := t.Snapshots[i-1], t.Snapshots[i]
		for asn, rep := range cur.Reports {
			p, ok := prev.Reports[asn]
			if !ok {
				continue
			}
			if p.Score <= lo && rep.Score >= hi {
				out[t.Days[i]] = append(out[t.Days[i]], asn)
			}
		}
	}
	for d := range out {
		sort.Slice(out[d], func(i, j int) bool { return out[d][i] < out[d][j] })
	}
	return out
}
