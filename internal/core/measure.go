package core

import (
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/detect"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
	"github.com/netsec-lab/rovista/internal/scan"
	"github.com/netsec-lab/rovista/internal/seedmix"
)

// Stage names, as they appear in Metrics and Progress callbacks.
const (
	StageTestPrefixes  = "test-prefixes"
	StageQualifyTNodes = "qualify-tnodes"
	StageDiscoverVVPs  = "discover-vvps"
	StageMeasurePairs  = "measure-pairs"
	StageScore         = "score"
)

// World-backed default stage implementations. Each wraps the Runner so the
// staged Measure below and any experiment that swaps a single stage share
// the same code paths.

// worldPrefixSource selects exclusively-invalid prefixes from the
// collector's partial view (§3.2).
type worldPrefixSource struct{ r *Runner }

func (s worldPrefixSource) TestPrefixes() []netip.Prefix {
	w := s.r.W
	return w.Collector.Snapshot(w.Graph).ExclusivelyInvalid(w.VRPs)
}

// worldTNodeQualifier discovers and qualifies tNodes (§4.1) and applies the
// false-tNode mitigation.
type worldTNodeQualifier struct{ r *Runner }

func (q worldTNodeQualifier) QualifyTNodes(prefixes []netip.Prefix) []scan.TNode {
	return q.r.filterFalseTNodes(q.r.scanner().DiscoverTNodes(prefixes))
}

// worldVVPProvider runs (or serves the cached) §4.2 vVP discovery.
type worldVVPProvider struct{ r *Runner }

func (p worldVVPProvider) DiscoverVVPs() []scan.VVP { return p.r.DiscoverVVPs() }

// isolatedPairMeasurer measures one pair inside an isolated context (cloned
// hosts on a network overlay), with the pair's seed derived from
// (round seed, AS, tNode index, vVP index) through the splitmix64 mixer —
// collision-free where the old shift-xor packing aliased (ti, vi)
// combinations. Isolation is what lets the executor run pairs on any number
// of workers with bit-for-bit identical results.
type isolatedPairMeasurer struct{ r *Runner }

func (m isolatedPairMeasurer) MeasurePair(p pipeline.Pair) detect.PairResult {
	seed := seedmix.Mix(m.r.Cfg.Seed, int64(uint32(p.ASN)), int64(p.TNodeIdx), int64(p.VVPIdx))
	return detect.MeasurePairIsolated(m.r.W.Net, m.r.W.ClientA, p.VVP.Addr, p.TNode, seed, m.r.Cfg.Detect)
}

// Stage accessors: the override field when set, the world-backed default
// otherwise.

func (r *Runner) prefixSource() pipeline.TestPrefixSource {
	if r.Prefixes != nil {
		return r.Prefixes
	}
	return worldPrefixSource{r}
}

func (r *Runner) tnodeQualifier() pipeline.TNodeQualifier {
	if r.TNodes != nil {
		return r.TNodes
	}
	return worldTNodeQualifier{r}
}

func (r *Runner) vvpProvider() pipeline.VVPProvider {
	if r.VVPs != nil {
		return r.VVPs
	}
	return worldVVPProvider{r}
}

func (r *Runner) pairMeasurer() pipeline.PairMeasurer {
	if r.Measurer != nil {
		return r.Measurer
	}
	return isolatedPairMeasurer{r}
}

func (r *Runner) scorer() pipeline.Scorer {
	if r.Scorer != nil {
		return r.Scorer
	}
	return pipeline.UnanimityScorer{}
}

// progress forwards to the configured callback, if any.
func (r *Runner) progress(stage string, done, total int) {
	if r.Cfg.Progress != nil {
		r.Cfg.Progress(stage, done, total)
	}
}

// asUnit is one AS's slice of the round's flat pair grid.
type asUnit struct {
	asn    inet.ASN
	vvps   []scan.VVP // capped at MaxVVPsPerAS
	offset int        // index of the AS's first pair in the flat layout
}

// Measure runs one complete RoVista round at the world's current day as a
// composition of five pipeline stages:
//
//	TestPrefixSource → TNodeQualifier → VVPProvider → PairMeasurer → Scorer
//
// The pair-measurement stage runs on Cfg.Workers goroutines. Every pair is
// measured in an isolated context whose state derives only from the pair's
// identity and the round seed, so the flat result grid — and therefore the
// whole Snapshot — is identical for every worker count.
func (r *Runner) Measure() *Snapshot {
	w := r.W
	ex := &pipeline.Executor{Workers: r.Cfg.Workers}
	metrics := &pipeline.Metrics{Workers: ex.PoolSize()}
	snap := &Snapshot{
		Day:                w.Day,
		VVPsByAS:           make(map[inet.ASN][]scan.VVP),
		Reports:            make(map[inet.ASN]*ASReport),
		VVPBackgroundRates: make(map[inet.ASN][]float64),
		Metrics:            metrics,
	}

	// 1. Collector view → exclusively-invalid test prefixes (§3.2).
	stop := metrics.StartStage(StageTestPrefixes)
	testPrefixes := r.prefixSource().TestPrefixes()
	stop()
	snap.TestPrefixes = len(testPrefixes)
	r.progress(StageTestPrefixes, 1, 1)

	// 2. tNode discovery, qualification and false-tNode removal (§4.1).
	stop = metrics.StartStage(StageQualifyTNodes)
	snap.TNodes = r.tnodeQualifier().QualifyTNodes(testPrefixes)
	stop()
	r.progress(StageQualifyTNodes, 1, 1)
	if len(snap.TNodes) < r.Cfg.MinTNodes {
		return snap
	}

	// 3. vVP discovery (§4.2) and the background-traffic cutoff (§6.1).
	stop = metrics.StartStage(StageDiscoverVVPs)
	all := r.vvpProvider().DiscoverVVPs()
	stop()
	r.progress(StageDiscoverVVPs, 1, 1)
	snap.AllVVPs = len(all)
	for _, v := range all {
		snap.VVPBackgroundRates[v.ASN] = append(snap.VVPBackgroundRates[v.ASN], v.BackgroundRate)
		if v.BackgroundRate <= r.Cfg.BackgroundCutoff {
			snap.VVPsByAS[v.ASN] = append(snap.VVPsByAS[v.ASN], v)
		}
	}

	// 4. Per-pair measurement. The grid is laid out AS-by-AS in ascending
	// ASN order, (tNode, vVP)-major within an AS; pair i always lands in
	// results[i], so execution order (and worker count) cannot change the
	// outcome — only isolation makes that true, see isolatedPairMeasurer.
	asns := make([]inet.ASN, 0, len(snap.VVPsByAS))
	for asn := range snap.VVPsByAS {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	var units []asUnit
	var pairs []pipeline.Pair
	for _, asn := range asns {
		vvps := snap.VVPsByAS[asn]
		if len(vvps) < r.Cfg.MinVVPsPerAS {
			continue
		}
		if len(vvps) > r.Cfg.MaxVVPsPerAS {
			vvps = vvps[:r.Cfg.MaxVVPsPerAS]
		}
		units = append(units, asUnit{asn: asn, vvps: vvps, offset: len(pairs)})
		for ti, tn := range snap.TNodes {
			for vi, v := range vvps {
				pairs = append(pairs, pipeline.Pair{ASN: asn, TNodeIdx: ti, VVPIdx: vi, TNode: tn, VVP: v})
			}
		}
	}
	stop = metrics.StartStage(StageMeasurePairs)
	measurer := r.pairMeasurer()
	results := make([]detect.PairResult, len(pairs))
	if r.Cfg.Progress != nil {
		ex.Progress = func(done, total int) { r.progress(StageMeasurePairs, done, total) }
	}
	ex.ForEach(len(pairs), func(i int) { results[i] = measurer.MeasurePair(pairs[i]) })
	stop()
	metrics.PairsMeasured = len(results)
	for _, res := range results {
		if res.Usable {
			metrics.PairsUsable++
		} else {
			metrics.PairsDiscarded++
		}
	}
	if r.Cfg.RecordPairs {
		snap.PairResults = append(snap.PairResults, results...)
	}

	// 5. Per-AS scoring with the §6.2 unanimity rule.
	stop = metrics.StartStage(StageScore)
	scorer := r.scorer()
	consistent, totalCells := 0, 0
	for _, u := range units {
		n := len(snap.TNodes) * len(u.vvps)
		out := scorer.ScoreAS(u.asn, snap.TNodes, len(u.vvps), results[u.offset:u.offset+n])
		consistent += out.ConsistentCells
		totalCells += out.TotalCells
		if out.TNodesMeasured == 0 {
			continue
		}
		snap.Reports[u.asn] = &ASReport{
			ASN:            u.asn,
			Score:          out.Score,
			VVPs:           len(u.vvps),
			TNodesMeasured: out.TNodesMeasured,
			TNodesFiltered: out.TNodesFiltered,
			Unanimous:      out.Unanimous,
			Verdicts:       out.Verdicts,
		}
	}
	stop()
	r.progress(StageScore, 1, 1)
	if totalCells > 0 {
		snap.ConsistentPairFraction = float64(consistent) / float64(totalCells)
	}
	return snap
}
