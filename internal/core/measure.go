package core

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/detect"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
	"github.com/netsec-lab/rovista/internal/scan"
	"github.com/netsec-lab/rovista/internal/seedmix"
)

// Stage names, as they appear in Metrics and Progress callbacks.
const (
	StageTestPrefixes  = "test-prefixes"
	StageQualifyTNodes = "qualify-tnodes"
	StageDiscoverVVPs  = "discover-vvps"
	StageMeasurePairs  = "measure-pairs"
	StageScore         = "score"
)

// World-backed default stage implementations. Each wraps the Runner so the
// staged Measure below and any experiment that swaps a single stage share
// the same code paths.

// worldPrefixSource selects exclusively-invalid prefixes from the
// collector's partial view (§3.2).
type worldPrefixSource struct{ r *Runner }

func (s worldPrefixSource) TestPrefixes() []netip.Prefix {
	w := s.r.W
	return w.Collector.Snapshot(w.Graph).ExclusivelyInvalid(w.VRPs)
}

// worldTNodeQualifier discovers and qualifies tNodes (§4.1) and applies the
// false-tNode mitigation.
type worldTNodeQualifier struct{ r *Runner }

func (q worldTNodeQualifier) QualifyTNodes(prefixes []netip.Prefix) []scan.TNode {
	return q.r.filterFalseTNodes(q.r.scanner().DiscoverTNodes(prefixes))
}

// worldVVPProvider runs (or serves the cached) §4.2 vVP discovery.
type worldVVPProvider struct{ r *Runner }

func (p worldVVPProvider) DiscoverVVPs() []scan.VVP { return p.r.DiscoverVVPs() }

// isolatedPairMeasurer measures one pair inside an isolated context (cloned
// hosts on a network overlay), with the pair's seed derived from
// (round seed, AS, tNode index, vVP index) through the splitmix64 mixer —
// collision-free where the old shift-xor packing aliased (ti, vi)
// combinations. Isolation is what lets the executor run pairs on any number
// of workers with bit-for-bit identical results.
//
// With Cfg.PairRetries set, an unusable measurement is retried with bounded
// backoff: each attempt derives a fresh seed from (pair seed, attempt) and
// shifts its probe schedule later in virtual time, so a transient fault
// (flap window, loss streak, background burst) does not recur by
// construction. The attempt sequence is a pure function of the pair
// identity, preserving worker-count determinism.
type isolatedPairMeasurer struct{ r *Runner }

func (m isolatedPairMeasurer) MeasurePair(p pipeline.Pair) detect.PairResult {
	r := m.r
	base := seedmix.Mix(r.Cfg.Seed, int64(uint32(p.ASN)), int64(p.TNodeIdx), int64(p.VVPIdx))
	res := detect.MeasurePairIsolated(r.W.Net, r.W.ClientA, p.VVP.Addr, p.TNode, base, r.Cfg.Detect)
	backoff := r.Cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 2
	}
	for attempt := 1; !res.Usable && attempt <= r.Cfg.PairRetries; attempt++ {
		cfg := r.Cfg.Detect
		cfg.Offset = float64(attempt) * backoff
		res = detect.MeasurePairIsolated(r.W.Net, r.W.ClientA, p.VVP.Addr, p.TNode,
			seedmix.Mix(base, int64(attempt)), cfg)
		res.Attempts = attempt + 1
	}
	return res
}

// roundFingerprint captures every measurement input that is not part of a
// pair's identity or routing/liveness stamp: if any field changes between
// rounds, no cached result is reusable and the result cache flushes. It is
// a comparable struct (compared with ==), deliberately NOT a hash — a
// collision would silently splice a stale result into the grid and break
// the bit-identical contract.
type roundFingerprint struct {
	seed       int64
	detect     detect.Config
	retries    int
	backoff    float64
	requalify  bool
	faults     faults.Profile
	faultSeed  int64
	netGen     uint64
	clientAddr netip.Addr
}

// resultCache returns the runner's pair-result cache when the incremental
// path applies: Cfg.Incremental set, the world-backed measurer in place (a
// custom Measurer stage has inputs the epoch model cannot see), and a
// routed network to derive epochs from.
func (r *Runner) resultCache() *pipeline.ResultCache {
	if !r.Cfg.Incremental || r.Measurer != nil || r.W.Net == nil || r.W.Graph == nil {
		return nil
	}
	if r.pairCache == nil {
		r.pairCache = pipeline.NewResultCache()
	}
	return r.pairCache
}

// roundFingerprint builds the current round's fingerprint. Must run after
// ArmFaults (the network's fault state and generation are part of it).
func (r *Runner) currentFingerprint() roundFingerprint {
	return roundFingerprint{
		seed:       r.Cfg.Seed,
		detect:     r.Cfg.Detect,
		retries:    r.Cfg.PairRetries,
		backoff:    r.Cfg.RetryBackoff,
		requalify:  r.Cfg.RequalifyVVPs,
		faults:     r.W.Net.Faults,
		faultSeed:  r.W.Net.FaultSeed,
		netGen:     r.W.Net.Generation(),
		clientAddr: r.W.ClientA.Addr,
	}
}

// pairStamper derives each pair's validity stamp, memoizing the per-address
// (LPM id, affected epoch) resolution: a round touches only a few hundred
// distinct addresses while laying out tens of thousands of pairs.
type pairStamper struct {
	w    *World
	memo map[netip.Addr]addrStamp
}

type addrStamp struct {
	id    uint32
	epoch uint64
}

func newPairStamper(w *World) *pairStamper {
	return &pairStamper{w: w, memo: make(map[netip.Addr]addrStamp, 64)}
}

func (s *pairStamper) addr(a netip.Addr) addrStamp {
	if st, ok := s.memo[a]; ok {
		return st
	}
	id, epoch := s.w.Net.PathEpoch(a)
	st := addrStamp{id: uint32(id), epoch: epoch}
	s.memo[a] = st
	return st
}

// stamp computes the pair's Stamp. A pair measurement exchanges packets
// toward exactly three destinations — the client, the vVP, and the tNode —
// so the stamp folds those destinations' forwarding epochs and LPM ids
// with the two measured hosts' churn state; nothing else outside the round
// fingerprint can change the measurement's outcome.
func (s *pairStamper) stamp(p *pipeline.Pair) pipeline.Stamp {
	cl := s.addr(s.w.ClientA.Addr)
	vvp := s.addr(p.VVP.Addr)
	tn := s.addr(p.TNode.Addr)
	epoch := cl.epoch
	if vvp.epoch > epoch {
		epoch = vvp.epoch
	}
	if tn.epoch > epoch {
		epoch = tn.epoch
	}
	return pipeline.Stamp{
		Epoch:         epoch,
		ClientID:      cl.id,
		VVPID:         vvp.id,
		TNodeID:       tn.id,
		VVPVanished:   s.w.Net.IsVanished(p.VVP.Addr),
		TNodeVanished: s.w.Net.IsVanished(p.TNode.Addr),
	}
}

// Stage accessors: the override field when set, the world-backed default
// otherwise.

func (r *Runner) prefixSource() pipeline.TestPrefixSource {
	if r.Prefixes != nil {
		return r.Prefixes
	}
	return worldPrefixSource{r}
}

func (r *Runner) tnodeQualifier() pipeline.TNodeQualifier {
	if r.TNodes != nil {
		return r.TNodes
	}
	return worldTNodeQualifier{r}
}

func (r *Runner) vvpProvider() pipeline.VVPProvider {
	if r.VVPs != nil {
		return r.VVPs
	}
	return worldVVPProvider{r}
}

func (r *Runner) pairMeasurer() pipeline.PairMeasurer {
	if r.Measurer != nil {
		return r.Measurer
	}
	return isolatedPairMeasurer{r}
}

func (r *Runner) scorer() pipeline.Scorer {
	if r.Scorer != nil {
		return r.Scorer
	}
	return pipeline.UnanimityScorer{}
}

// progress forwards to the configured callback, if any.
func (r *Runner) progress(stage string, done, total int) {
	if r.Cfg.Progress != nil {
		r.Cfg.Progress(stage, done, total)
	}
}

// asUnit is one AS's slice of the round's flat pair grid.
type asUnit struct {
	asn    inet.ASN
	vvps   []scan.VVP // capped at MaxVVPsPerAS
	offset int        // index of the AS's first pair in the flat layout
}

// Measure runs one complete RoVista round at the world's current day as a
// composition of five pipeline stages:
//
//	TestPrefixSource → TNodeQualifier → VVPProvider → PairMeasurer → Scorer
//
// The pair-measurement stage runs on Cfg.Workers goroutines. Every pair is
// measured in an isolated context whose state derives only from the pair's
// identity and the round seed, so the flat result grid — and therefore the
// whole Snapshot — is identical for every worker count.
func (r *Runner) Measure() *Snapshot {
	w := r.W
	fp := r.Cfg.Faults
	if fp.Enabled() && w.Net != nil {
		// Arming is idempotent per (profile, seed); it applies the stable
		// per-host perturbations (counter splits) before discovery runs.
		w.Net.ArmFaults(fp, seedmix.Mix(r.Cfg.Seed, faults.StreamArm))
	}
	ex := &pipeline.Executor{Workers: r.Cfg.Workers}
	metrics := &pipeline.Metrics{Workers: ex.PoolSize()}
	if fp.Name != "" {
		metrics.Faults.Profile = fp.Name
	} else {
		metrics.Faults.Profile = "none"
	}
	snap := &Snapshot{
		Day:                w.Day,
		VVPsByAS:           make(map[inet.ASN][]scan.VVP),
		Reports:            make(map[inet.ASN]*ASReport),
		VVPBackgroundRates: make(map[inet.ASN][]float64),
		Metrics:            metrics,
	}

	// 1. Collector view → exclusively-invalid test prefixes (§3.2).
	stop := metrics.StartStage(StageTestPrefixes)
	testPrefixes := r.prefixSource().TestPrefixes()
	stop()
	snap.TestPrefixes = len(testPrefixes)
	r.progress(StageTestPrefixes, 1, 1)

	// 2. tNode discovery, qualification and false-tNode removal (§4.1).
	stop = metrics.StartStage(StageQualifyTNodes)
	snap.TNodes = r.tnodeQualifier().QualifyTNodes(testPrefixes)
	stop()
	r.progress(StageQualifyTNodes, 1, 1)
	if len(snap.TNodes) < r.Cfg.MinTNodes {
		snap.Status = pipeline.RoundInsufficientTNodes
		return snap
	}

	// 3. vVP discovery (§4.2) and the background-traffic cutoff (§6.1).
	stop = metrics.StartStage(StageDiscoverVVPs)
	all := r.vvpProvider().DiscoverVVPs()
	stop()
	r.progress(StageDiscoverVVPs, 1, 1)
	snap.AllVVPs = len(all)
	for _, v := range all {
		snap.VVPBackgroundRates[v.ASN] = append(snap.VVPBackgroundRates[v.ASN], v.BackgroundRate)
		if v.BackgroundRate <= r.Cfg.BackgroundCutoff {
			snap.VVPsByAS[v.ASN] = append(snap.VVPsByAS[v.ASN], v)
		}
	}

	// vVP churn: some vantage points vanish between qualification and
	// measurement (the paper's daily scans routinely lost hosts). Each
	// decision keys on the host address alone, so it is independent of map
	// iteration order; vanished hosts stay in the pair grid — robustness
	// means the round must absorb measuring a dead column — and are
	// restored when the round ends.
	if fp.ChurnProb > 0 && w.Net != nil {
		defer w.Net.ClearVanished()
		for _, vvps := range snap.VVPsByAS {
			for _, v := range vvps {
				if faults.Bernoulli(fp.ChurnProb, w.Net.FaultSeed, faults.StreamChurn, int64(inet.V4Int(v.Addr))) {
					w.Net.SetVanished(v.Addr)
					metrics.Faults.VVPsChurned++
				}
			}
		}
	}

	// 4. Per-pair measurement. The grid is laid out AS-by-AS in ascending
	// ASN order, (tNode, vVP)-major within an AS; pair i always lands in
	// results[i], so execution order (and worker count) cannot change the
	// outcome — only isolation makes that true, see isolatedPairMeasurer.
	asns := make([]inet.ASN, 0, len(snap.VVPsByAS))
	for asn := range snap.VVPsByAS {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	var units []asUnit
	var pairs []pipeline.Pair
	for _, asn := range asns {
		vvps := snap.VVPsByAS[asn]
		if len(vvps) < r.Cfg.MinVVPsPerAS {
			continue
		}
		if len(vvps) > r.Cfg.MaxVVPsPerAS {
			vvps = vvps[:r.Cfg.MaxVVPsPerAS]
		}
		units = append(units, asUnit{asn: asn, vvps: vvps, offset: len(pairs)})
		for ti, tn := range snap.TNodes {
			for vi, v := range vvps {
				pairs = append(pairs, pipeline.Pair{ASN: asn, TNodeIdx: ti, VVPIdx: vi, TNode: tn, VVP: v})
			}
		}
	}
	if len(units) == 0 {
		snap.Status = pipeline.RoundInsufficientVVPs
	}
	stop = metrics.StartStage(StageMeasurePairs)
	measurer := r.pairMeasurer()
	results := make([]detect.PairResult, len(pairs))
	if r.Cfg.Progress != nil {
		ex.Progress = func(done, total int) { r.progress(StageMeasurePairs, done, total) }
	}
	// Transient origin flaps: withdraw + re-announce batches for routed
	// prefixes, pushed through the incremental convergence engine. They run
	// serially before the parallel measure stage (event batches mutate the
	// graph, which the workers read), and each batch coalesces to a net
	// no-op, so the routing state the pairs measure against is untouched —
	// the flaps exercise the event path, not the outcome. Targets derive
	// from (round seed, StreamRouteFlap, flap index) alone, so any worker
	// count injects the identical sequence.
	if fp.RouteFlaps > 0 && w.Graph != nil && w.Topo != nil {
		type origin struct {
			asn inet.ASN
			p   netip.Prefix
		}
		var cands []origin
		for _, asn := range w.Topo.ASNs {
			if ps := w.Topo.Info[asn].Prefixes; len(ps) > 0 {
				cands = append(cands, origin{asn, ps[0]})
			}
		}
		for i := 0; i < fp.RouteFlaps && len(cands) > 0; i++ {
			c := cands[uint64(seedmix.Mix(r.Cfg.Seed, faults.StreamRouteFlap, int64(i)))%uint64(len(cands))]
			if _, err := w.Graph.ApplyEvents([]bgp.RouteEvent{
				{Kind: bgp.EvWithdraw, AS: c.asn, Prefix: c.p},
				{Kind: bgp.EvAnnounce, AS: c.asn, Prefix: c.p},
			}); err == nil {
				metrics.Faults.RouteFlaps++
			}
		}
	}
	// Transient BGP flaps: thrash the forwarding-path cache concurrently
	// with the workers. The cache is proven result-invariant (the path-cache
	// equivalence tests), so the invalidations stress the concurrent rebuild
	// path without perturbing any measurement — exactly CacheFlaps of them,
	// so the metric stays deterministic.
	var flapWG sync.WaitGroup
	if fp.CacheFlaps > 0 && w.Net != nil && len(pairs) > 0 {
		metrics.Faults.PathCacheFlaps = fp.CacheFlaps
		flapWG.Add(1)
		go func() {
			defer flapWG.Done()
			for i := 0; i < fp.CacheFlaps; i++ {
				w.Net.InvalidatePathCache()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Incremental skip path: splice cached results for pairs whose identity
	// and stamp are unchanged since the last round and re-measure only the
	// misses. Stamps are computed after the origin-flap batches above (an
	// uncoalesced flap moves an epoch and forces a re-measure, never the
	// other way round) and while the churn vanished-set is active, so a
	// vanished vVP's dead-column result is cached under its vanished bit.
	cache := r.resultCache()
	if cache == nil {
		metrics.FullRound = true
		metrics.PairsRemeasured = len(pairs)
		ex.ForEach(len(pairs), func(i int) { results[i] = measurer.MeasurePair(pairs[i]) })
	} else {
		cache.BeginRound(r.currentFingerprint())
		if r.fullRound {
			r.fullRound = false
			metrics.FullRound = true
			cache.Flush()
		}
		stamper := newPairStamper(w)
		stamps := make([]pipeline.Stamp, len(pairs))
		miss := make([]int, 0, len(pairs))
		for i := range pairs {
			stamps[i] = stamper.stamp(&pairs[i])
			if res, ok := cache.Lookup(pipeline.IdentityFor(pairs[i]), stamps[i]); ok {
				results[i] = res
			} else {
				miss = append(miss, i)
			}
		}
		ex.ForEach(len(miss), func(k int) {
			i := miss[k]
			results[i] = measurer.MeasurePair(pairs[i])
		})
		// Store the raw results before the re-qualification pass below can
		// mutate the grid in place; a later splice must reproduce the raw
		// measurement, not this round's post-processed view of it.
		for _, i := range miss {
			cache.Store(pipeline.IdentityFor(pairs[i]), stamps[i], results[i])
		}
		metrics.PairsReused = len(pairs) - len(miss)
		metrics.PairsRemeasured = len(miss)
	}
	flapWG.Wait()
	stop()
	for _, res := range results {
		if res.Attempts > 1 {
			metrics.Faults.PairRetries += res.Attempts - 1
			if res.Usable {
				metrics.Faults.PairsRecovered++
			}
		}
	}

	// vVP re-qualification: a column that came back mostly unusable points
	// at the vantage point itself (churned away, counter gone unstable)
	// rather than at any tNode. Re-run the §4.2 qualification scan for such
	// vVPs; the ones that fail it have their remaining results discarded so
	// an unstable counter can never vote on a verdict. Runs serially on the
	// round driver with seeds derived per address — deterministic at any
	// worker count.
	if r.Cfg.RequalifyVVPs && w.Net != nil {
		for _, u := range units {
			nv := len(u.vvps)
			for vi, v := range u.vvps {
				bad := 0
				for ti := range snap.TNodes {
					if !results[u.offset+ti*nv+vi].Usable {
						bad++
					}
				}
				if 2*bad < len(snap.TNodes) {
					continue
				}
				metrics.Faults.VVPsUnstable++
				sc := r.scanner()
				sc.Seed = seedmix.Mix(r.Cfg.Seed, faults.StreamRequalify, int64(inet.V4Int(v.Addr)))
				if len(sc.DiscoverVVPs([]netip.Addr{v.Addr})) == 1 {
					metrics.Faults.VVPsRequalified++
					continue
				}
				metrics.Faults.VVPsDropped++
				for ti := range snap.TNodes {
					res := &results[u.offset+ti*nv+vi]
					res.Usable = false
					res.Outcome = detect.Inconclusive
				}
			}
		}
	}

	metrics.PairsMeasured = len(results)
	for _, res := range results {
		if res.Usable {
			metrics.PairsUsable++
		} else {
			metrics.PairsDiscarded++
		}
	}
	if r.Cfg.RecordPairs {
		snap.PairResults = append(snap.PairResults, results...)
	}

	// 5. Per-AS scoring with the §6.2 unanimity rule.
	stop = metrics.StartStage(StageScore)
	scorer := r.scorer()
	consistent, totalCells := 0, 0
	for _, u := range units {
		n := len(snap.TNodes) * len(u.vvps)
		out := scorer.ScoreAS(u.asn, snap.TNodes, len(u.vvps), results[u.offset:u.offset+n])
		consistent += out.ConsistentCells
		totalCells += out.TotalCells
		if out.TNodesMeasured == 0 {
			continue
		}
		snap.Reports[u.asn] = &ASReport{
			ASN:            u.asn,
			Score:          out.Score,
			VVPs:           len(u.vvps),
			TNodesMeasured: out.TNodesMeasured,
			TNodesFiltered: out.TNodesFiltered,
			Unanimous:      out.Unanimous,
			Verdicts:       out.Verdicts,
		}
	}
	stop()
	r.progress(StageScore, 1, 1)
	if totalCells > 0 {
		snap.ConsistentPairFraction = float64(consistent) / float64(totalCells)
	}
	// A round that measured units but could not score a single AS (every
	// column unusable or discarded — the harsh-faults regime) is degraded,
	// not a measurement of zero deployment.
	if len(snap.Reports) == 0 && snap.Status == pipeline.RoundOK {
		snap.Status = pipeline.RoundInsufficientVVPs
	}
	return snap
}
