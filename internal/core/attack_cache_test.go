package core

import (
	"net/netip"
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
)

// attackCovering returns a subprefix-hijack event for the /25 containing
// addr — strictly more specific than any test prefix, so it wins LPM
// everywhere it propagates — launched by an AS that is neither the
// address's origin nor the measurement clients' host AS.
func attackCovering(t *testing.T, w *World, addr netip.Addr) (bgp.RouteEvent, inet.ASN) {
	t.Helper()
	sub := netip.PrefixFrom(addr, 25).Masked()
	victim, _ := w.Graph.OriginOf(w.ClientA.ASN, addr)
	for _, asn := range w.Topo.ASNs {
		if asn == victim || asn == w.ClientA.ASN || asn == w.ClientB.ASN {
			continue
		}
		if w.Graph.AS(asn).OriginatesCovering(addr) {
			continue
		}
		return bgp.RouteEvent{Kind: bgp.EvAnnounce, AS: asn, Prefix: sub}, asn
	}
	t.Fatal("no eligible attacker")
	return bgp.RouteEvent{}, 0
}

// TestAttackMovesStampForEveryDestination is the stale-cache regression
// anchor at the stamp level: a pair measurement sends packets toward three
// destinations — the client, the vVP, and the tNode (the destination the
// pair's spoofed probe names). A hijack covering any one of them must move
// that pair's Stamp, or the result cache would happily replay a pre-attack
// verdict.
func TestAttackMovesStampForEveryDestination(t *testing.T) {
	w, err := BuildWorld(SmallWorldConfig(71))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(w, DefaultRunnerConfig(71))
	snap := r.Measure()
	if len(snap.TNodes) == 0 || len(snap.VVPsByAS) == 0 {
		t.Fatal("round discovered no tNodes or vVPs")
	}
	pair := &pipeline.Pair{TNode: snap.TNodes[0]}
	for _, vvps := range snap.VVPsByAS {
		pair.VVP = vvps[0]
		break
	}

	dests := map[string]netip.Addr{
		"client": w.ClientA.Addr,
		"vvp":    pair.VVP.Addr,
		"tnode":  pair.TNode.Addr, // the spoofed packet's destination
	}
	for name, addr := range dests {
		t.Run(name, func(t *testing.T) {
			before := newPairStamper(w).stamp(pair)
			ev, attacker := attackCovering(t, w, addr)
			if _, err := w.Graph.ApplyEvents([]bgp.RouteEvent{ev}); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if _, err := w.Graph.ApplyEvents([]bgp.RouteEvent{{Kind: bgp.EvWithdraw, AS: attacker, Prefix: ev.Prefix}}); err != nil {
					t.Fatal(err)
				}
			}()
			after := newPairStamper(w).stamp(pair)
			if before == after {
				t.Fatalf("hijack of %s destination %v left pair stamp unchanged (%+v)", name, addr, before)
			}
		})
	}
}

// TestMidCampaignHijackNeverServesStaleVerdicts is the end-to-end
// regression: with the incremental cache warm, a mid-campaign subprefix
// hijack of a tNode's space must force remeasurement — the incremental
// snapshot stays bit-identical to a from-scratch runner's and never reports
// the victim through pre-attack cached results.
func TestMidCampaignHijackNeverServesStaleVerdicts(t *testing.T) {
	const seed = 73
	wInc, wRef := worldPair(t, seed)

	cfgInc := DefaultRunnerConfig(seed)
	cfgInc.Workers = 4
	cfgRef := cfgInc
	cfgRef.Workers = 1
	cfgRef.Incremental = false
	rInc := NewRunner(wInc, cfgInc)
	rRef := NewRunner(wRef, cfgRef)

	// Round 1 warms the cache.
	pre := rInc.Measure()
	rRef.Measure()
	if len(pre.TNodes) == 0 {
		t.Fatal("no tNodes discovered")
	}
	target := pre.TNodes[0]

	// Mid-campaign hijack: an attacker announces the /24 holding the tNode
	// (the same batch internal/hijack's SubprefixHijack primitive emits).
	ev, _ := attackCovering(t, wInc, target.Addr)
	for _, w := range []*World{wInc, wRef} {
		if _, err := w.Graph.ApplyEvents([]bgp.RouteEvent{ev}); err != nil {
			t.Fatal(err)
		}
	}

	got := rInc.Measure()
	want := rRef.Measure()
	if got.Metrics.PairsRemeasured == 0 {
		t.Fatal("no pair was remeasured after the hijack: the cache served stale results")
	}
	got.Metrics, want.Metrics = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Fatal("incremental snapshot diverged from from-scratch runner after mid-campaign hijack")
	}

	// The attack makes the victim unreachable on the data plane, so no
	// report may still carry a pre-attack "responses flowed" verdict
	// (Verdicts[addr] == false) for it — that is exactly what a stale cached
	// pair result would replay. Post-attack the victim either drops out of
	// discovery entirely or is judged filtered everywhere.
	preReachable := 0
	for _, rep := range pre.Reports {
		if v, ok := rep.Verdicts[target.Addr]; ok && !v {
			preReachable++
		}
	}
	if preReachable == 0 {
		t.Fatal("victim tNode was never reported reachable pre-attack; regression test is vacuous")
	}
	for asn, rep := range got.Reports {
		if v, ok := rep.Verdicts[target.Addr]; ok && !v {
			t.Fatalf("AS %v still reports hijacked tNode %v as reachable (stale cached verdict)", asn, target.Addr)
		}
	}
}
