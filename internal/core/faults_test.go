package core

import (
	"github.com/netsec-lab/rovista/internal/rpki"
	"math"
	"testing"
)

// TestMeasureUnderPacketLoss: with a small random loss rate the pipeline
// must stay sound — verdicts that survive the usability and unanimity gates
// still agree with the data-plane oracle — even if coverage shrinks
// (lossy rounds are discarded, not mis-scored).
func TestMeasureUnderPacketLoss(t *testing.T) {
	w := buildSmall(t, 25)
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	w.Net.LossRate = 0.01
	r := NewRunner(w, DefaultRunnerConfig(25))
	snap := r.Measure()
	if len(snap.Reports) == 0 {
		t.Skip("loss removed all reports at this seed")
	}
	agree, total := 0, 0
	for asn, rep := range snap.Reports {
		for addr, filtered := range rep.Verdicts {
			total++
			if filtered == !w.Graph.Reachable(asn, addr) {
				agree++
			}
		}
	}
	if total == 0 {
		t.Skip("no verdicts under loss")
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Fatalf("verdict accuracy %.1f%% under 1%% loss (%d/%d)", 100*frac, agree, total)
	}
}

// TestMeasureUnderHeavyLossDegradesGracefully: at punitive loss rates the
// pipeline must not fabricate results — coverage collapses instead.
func TestMeasureUnderHeavyLossDegradesGracefully(t *testing.T) {
	clean := buildSmall(t, 26)
	if err := clean.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	cleanReports := len(NewRunner(clean, DefaultRunnerConfig(26)).Measure().Reports)

	lossy := buildSmall(t, 26)
	if err := lossy.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	lossy.Net.LossRate = 0.25
	snap := NewRunner(lossy, DefaultRunnerConfig(26)).Measure()

	if len(snap.Reports) >= cleanReports {
		t.Fatalf("25%% loss did not reduce coverage: %d vs %d clean", len(snap.Reports), cleanReports)
	}
	for asn, rep := range snap.Reports {
		if math.IsNaN(rep.Score) || rep.Score < 0 || rep.Score > 100 {
			t.Fatalf("AS %v score %v under heavy loss", asn, rep.Score)
		}
	}
}

// TestSLURMExceptionCapsScore: an AS with a SLURM whitelist for one invalid
// prefix must reach that prefix (and only gain, never lose, reachability).
func TestSLURMExceptionCapsScore(t *testing.T) {
	cfg := SmallWorldConfig(27)
	cfg.SLURMExceptionFrac = 0.5 // force plenty of exceptions
	cfg.DefaultRouteLeakFrac = 0
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	found := false
	for asn, tr := range w.Truth {
		if !tr.SLURMException.IsValid() || !tr.DeployedAt(0) || tr.Kind != "full" {
			continue
		}
		found = true
		// The whitelisted prefix must be in this AS's RIB (not filtered).
		if _, ok := w.Graph.AS(asn).BestRoute(tr.SLURMException); !ok {
			// Possible only when routing never offered it (e.g. the AS
			// cannot hear it at all); verify it is not a filtering artifact
			// by checking the VRP view really whitelists it.
			if w.Graph.AS(asn).VRPs.Validate(tr.SLURMException, w.Truth[asn].ASN) == rpki.Invalid {
				t.Fatalf("AS %v: SLURM prefix still validates invalid", asn)
			}
		}
	}
	if !found {
		t.Skip("no applicable SLURM exception at this seed")
	}
}

// TestEquipmentPartialLeaksThroughBadNeighbor: an equipment-partial AS
// accepts invalid routes only over the unsupporting session.
func TestEquipmentPartialLeaksThroughBadNeighbor(t *testing.T) {
	cfg := SmallWorldConfig(28)
	cfg.EquipmentIssueFrac = 0.6
	cfg.CustomerExemptFrac = 0
	cfg.PreferValidFrac = 0
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	checked := false
	for asn, tr := range w.Truth {
		if tr.Kind != "equipment-partial" || !tr.DeployedAt(0) {
			continue
		}
		for _, r := range w.Graph.AS(asn).Routes() {
			if r.Validity == rpki.Invalid && r.LearnedFrom != tr.PartialNeighbor {
				t.Fatalf("AS %v installed invalid route from %v, not the broken session %v",
					asn, r.LearnedFrom, tr.PartialNeighbor)
			}
			if r.Validity == rpki.Invalid {
				checked = true
			}
		}
	}
	if !checked {
		t.Skip("no invalid routes leaked at this seed")
	}
}
