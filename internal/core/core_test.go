package core

import (
	"github.com/netsec-lab/rovista/internal/inet"
	"math"
	"testing"

	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/rpki"
)

func buildSmall(t *testing.T, seed int64) *World {
	t.Helper()
	w, err := BuildWorld(SmallWorldConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorldStructure(t *testing.T) {
	w := buildSmall(t, 1)
	if len(w.Topo.ASNs) != 124 {
		t.Fatalf("AS count = %d", len(w.Topo.ASNs))
	}
	if len(w.Invalids) == 0 {
		t.Fatal("no invalid announcements scheduled")
	}
	if w.ClientA.ASN == w.ClientB.ASN {
		t.Fatal("clients must live in different ASes")
	}
	if w.Truth[w.ClientA.ASN].DeployDay >= 0 || w.Truth[w.ClientB.ASN].DeployDay >= 0 {
		t.Fatal("client ASes must never filter")
	}
	// Hosts: HostsPerAS per AS + tNodes + 2 clients.
	if w.Net.Hosts() < len(w.Topo.ASNs)*w.Cfg.HostsPerAS {
		t.Fatalf("host count = %d", w.Net.Hosts())
	}
}

func TestAdvanceToValidatesRPKI(t *testing.T) {
	w := buildSmall(t, 2)
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	if w.VRPs == nil || w.VRPs.Len() == 0 {
		t.Fatal("no VRPs after AdvanceTo")
	}
	// Each invalid announcement must actually validate as invalid; for
	// shared ones, the victim's own announcement of the same prefix must be
	// valid (that is what makes them unusable as test prefixes).
	for _, inv := range w.Invalids {
		if got := w.VRPs.Validate(inv.Prefix, inv.Origin); got != rpki.Invalid {
			t.Fatalf("invalid announcement %v by %v validates as %v", inv.Prefix, inv.Origin, got)
		}
		if inv.Shared {
			if got := w.VRPs.Validate(inv.Prefix, inv.Victim); got != rpki.Valid {
				t.Fatalf("shared victim's announcement of %v validates as %v", inv.Prefix, got)
			}
		}
	}
}

func TestROACoverageGrowsOverTime(t *testing.T) {
	w := buildSmall(t, 3)
	w.AdvanceTo(0)
	start := w.VRPs.Len()
	w.AdvanceTo(w.Cfg.Days)
	end := w.VRPs.Len()
	if end <= start {
		t.Fatalf("ROA coverage did not grow: %d -> %d", start, end)
	}
}

func TestROVScheduleAppliesPolicies(t *testing.T) {
	w := buildSmall(t, 4)
	w.AdvanceTo(w.Cfg.Days)
	filtering, none := 0, 0
	for asn, tr := range w.Truth {
		a := w.Graph.AS(asn)
		if tr.DeployedAt(w.Cfg.Days) {
			filtering++
			if a.Policy == nil || a.VRPs == nil {
				t.Fatalf("deployed AS %v missing policy/VRPs", asn)
			}
		} else {
			none++
			if a.Policy != nil {
				t.Fatalf("non-deployed AS %v has a policy", asn)
			}
		}
	}
	if filtering == 0 {
		t.Fatal("no AS ever deploys ROV")
	}
	frac := float64(filtering) / float64(filtering+none)
	if frac < 0.08 || frac > 0.45 {
		t.Fatalf("deployment fraction %v outside plausible band", frac)
	}
}

func TestROVAdoptionGrowsOverTime(t *testing.T) {
	w := buildSmall(t, 5)
	count := func(day int) int {
		n := 0
		for _, tr := range w.Truth {
			if tr.DeployedAt(day) {
				n++
			}
		}
		return n
	}
	if count(0) >= count(w.Cfg.Days) {
		t.Fatalf("adoption did not grow: %d -> %d", count(0), count(w.Cfg.Days))
	}
}

func TestGroundTruthFiltering(t *testing.T) {
	w := buildSmall(t, 6)
	w.AdvanceTo(0)
	// For a fully deploying AS with no default leak, invalid prefixes must
	// be unreachable; for a never-deploying AS with only non-filtering
	// providers they should mostly be reachable.
	var inv InvalidAnn
	found := false
	for _, cand := range w.Invalids {
		if !cand.Shared {
			inv, found = cand, true
			break
		}
	}
	if !found {
		t.Skip("no exclusive invalid in this seed")
	}
	for asn, tr := range w.Truth {
		if tr.Kind == "full" && tr.DeployedAt(0) && asn != inv.Origin {
			// A filtering AS must never install the invalid route itself.
			// (It may still *reach* the prefix through a non-filtering
			// transit holding the more-specific — collateral damage, §7.4 —
			// or through its own default route.)
			if _, ok := w.Graph.AS(asn).BestRoute(inv.Prefix); ok {
				t.Fatalf("full-ROV AS %v installed the invalid route", asn)
			}
		}
	}
}

func TestSharedInvalidReachableFromROVAS(t *testing.T) {
	w := buildSmall(t, 7)
	w.AdvanceTo(0)
	// Shared prefixes are announced by victim too; an ROV AS keeps the
	// valid route, so the prefix stays reachable (though traffic lands at
	// the victim). That is exactly why they are excluded as test prefixes.
	view := w.Collector.Snapshot(w.Graph)
	excl := view.ExclusivelyInvalid(w.VRPs)
	exclSet := map[string]bool{}
	for _, p := range excl {
		exclSet[p.String()] = true
	}
	for _, inv := range w.Invalids {
		if inv.Shared && exclSet[inv.Prefix.String()] {
			t.Fatalf("shared invalid %v classified as exclusive", inv.Prefix)
		}
		if !inv.Shared && !exclSet[inv.Prefix.String()] {
			t.Fatalf("exclusive invalid %v missing from test prefixes", inv.Prefix)
		}
	}
}

func TestMeasureSnapshot(t *testing.T) {
	w := buildSmall(t, 8)
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(w, DefaultRunnerConfig(8))
	snap := r.Measure()

	if len(snap.TNodes) < r.Cfg.MinTNodes {
		t.Fatalf("only %d tNodes qualified", len(snap.TNodes))
	}
	if snap.AllVVPs == 0 {
		t.Fatal("no vVPs discovered")
	}
	if len(snap.Reports) == 0 {
		t.Fatal("no ASes scored")
	}
	// Consistency should be high (the paper reports 95.1%).
	if snap.ConsistentPairFraction < 0.85 {
		t.Fatalf("consistency = %v, want >= 0.85", snap.ConsistentPairFraction)
	}
	// Scores are percentages.
	for asn, rep := range snap.Reports {
		if rep.Score < 0 || rep.Score > 100 || math.IsNaN(rep.Score) {
			t.Fatalf("AS %v score = %v", asn, rep.Score)
		}
	}
}

func TestMeasureMatchesOracle(t *testing.T) {
	w := buildSmall(t, 9)
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(w, DefaultRunnerConfig(9))
	snap := r.Measure()
	if len(snap.Reports) == 0 {
		t.Fatal("no reports")
	}
	// Every per-tNode verdict RoVista reaches must match the data-plane
	// oracle (§6.3.1 found a perfect match for all measured tuples).
	agree, total := 0, 0
	for asn, rep := range snap.Reports {
		for addr, filtered := range rep.Verdicts {
			total++
			if filtered == !w.Graph.Reachable(asn, addr) {
				agree++
			}
		}
	}
	if total == 0 {
		t.Fatal("no verdicts recorded")
	}
	if frac := float64(agree) / float64(total); frac < 0.98 {
		t.Fatalf("only %.1f%% of verdicts match the oracle (%d/%d)", 100*frac, agree, total)
	}
}

func TestDeployedASesScoreHigherThanNone(t *testing.T) {
	w := buildSmall(t, 10)
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(w, DefaultRunnerConfig(10))
	snap := r.Measure()
	var deployed, nondeployed []float64
	for asn, rep := range snap.Reports {
		if w.Truth[asn].Kind == "full" && w.Truth[asn].DeployedAt(0) && !w.Truth[asn].DefaultLeak {
			deployed = append(deployed, rep.Score)
		}
		if w.Truth[asn].DeployDay < 0 {
			nondeployed = append(nondeployed, rep.Score)
		}
	}
	if len(deployed) == 0 || len(nondeployed) == 0 {
		t.Skip("seed lacks both cohorts among scored ASes")
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(deployed) <= mean(nondeployed) {
		t.Fatalf("deployed mean %.1f <= non-deployed mean %.1f", mean(deployed), mean(nondeployed))
	}
	// A full-ROV AS without a default leak can only reach tNodes whose
	// invalid prefix has a covering legitimate announcement (collateral
	// damage, §7.4); anything else reachable means filtering failed.
	coveredPrefix := map[string]bool{}
	for _, inv := range w.Invalids {
		if inv.Covered {
			coveredPrefix[inv.Prefix.String()] = true
		}
	}
	tnodePrefix := map[string]string{}
	for _, tn := range snap.TNodes {
		tnodePrefix[tn.Addr.String()] = tn.Prefix.String()
	}
	for asn, rep := range snap.Reports {
		tr := w.Truth[asn]
		if !(tr.Kind == "full" && tr.DeployedAt(0) && !tr.DefaultLeak) {
			continue
		}
		for addr, filtered := range rep.Verdicts {
			if !filtered && !coveredPrefix[tnodePrefix[addr.String()]] {
				t.Fatalf("full-ROV AS %v reaches uncovered invalid tNode %v", asn, addr)
			}
		}
	}
}

func TestRunTimeline(t *testing.T) {
	cfg := SmallWorldConfig(11)
	cfg.Days = 40
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(w, DefaultRunnerConfig(11))
	tl, err := r.RunTimeline(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Snapshots) != 3 { // days 0, 20, 40
		t.Fatalf("snapshots = %d", len(tl.Snapshots))
	}
	days, pct := tl.FullProtectionSeries()
	if len(days) == 0 {
		t.Fatal("no full-protection series")
	}
	for _, p := range pct {
		if p < 0 || p > 100 {
			t.Fatalf("pct = %v", p)
		}
	}
}

func TestRunTimelineBadInterval(t *testing.T) {
	w := buildSmall(t, 12)
	r := NewRunner(w, DefaultRunnerConfig(12))
	if _, err := r.RunTimeline(0); err == nil {
		t.Fatal("expected error for zero interval")
	}
}

func TestAdvanceToOutOfRange(t *testing.T) {
	w := buildSmall(t, 13)
	if err := w.AdvanceTo(-1); err == nil {
		t.Fatal("expected error for negative day")
	}
	if err := w.AdvanceTo(w.Cfg.Days + 1); err == nil {
		t.Fatal("expected error past the horizon")
	}
}

func TestBuildWorldRejectsZeroDays(t *testing.T) {
	cfg := SmallWorldConfig(1)
	cfg.Days = 0
	if _, err := BuildWorld(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestTruthDeployedAt(t *testing.T) {
	tr := &Truth{DeployDay: 10, RollbackDay: 50}
	cases := []struct {
		day  int
		want bool
	}{{0, false}, {9, false}, {10, true}, {49, true}, {50, false}, {100, false}}
	for _, c := range cases {
		if got := tr.DeployedAt(c.day); got != c.want {
			t.Errorf("DeployedAt(%d) = %v, want %v", c.day, got, c.want)
		}
	}
	never := &Truth{DeployDay: -1}
	if never.DeployedAt(100) {
		t.Fatal("never-deploying AS reported deployed")
	}
}

func TestVVPDiscoveryFindsOnlyGlobalCounters(t *testing.T) {
	w := buildSmall(t, 14)
	w.AdvanceTo(0)
	r := NewRunner(w, DefaultRunnerConfig(14))
	vvps := r.DiscoverVVPs()
	if len(vvps) == 0 {
		t.Fatal("no vVPs found")
	}
	for _, v := range vvps {
		h, ok := w.Net.HostAt(v.Addr)
		if !ok {
			t.Fatalf("vVP %v has no host", v.Addr)
		}
		if h.IPID.Policy() != ipid.Global {
			t.Fatalf("vVP %v has %v counter", v.Addr, h.IPID.Policy())
		}
	}
	// Cache behaves.
	again := r.DiscoverVVPs()
	if len(again) != len(vvps) {
		t.Fatal("cache returned different vVPs")
	}
	// Rediscovery re-measures Poisson background, so borderline hosts may
	// flip; the population must stay essentially the same.
	r.InvalidateVVPCache()
	fresh := r.DiscoverVVPs()
	diff := len(fresh) - len(vvps)
	if diff < 0 {
		diff = -diff
	}
	if diff > len(vvps)/10+1 {
		t.Fatalf("rediscovery differs too much: %d vs %d", len(fresh), len(vvps))
	}
}

func TestMeasureDeterministicAcrossRuns(t *testing.T) {
	run := func() map[inet.ASN]float64 {
		w := buildSmall(t, 31)
		if err := w.AdvanceTo(0); err != nil {
			t.Fatal(err)
		}
		return NewRunner(w, DefaultRunnerConfig(31)).Measure().Scores()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("scored %d vs %d ASes", len(a), len(b))
	}
	for asn, s := range a {
		if b[asn] != s {
			t.Fatalf("AS %v scored %v vs %v across identical runs", asn, s, b[asn])
		}
	}
}
