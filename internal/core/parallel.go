package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// buildWorkers resolves the configured world-build worker count (0 means
// GOMAXPROCS). The worker count never affects a built world's contents —
// every parallel stage follows the plan/execute discipline below — so this
// is purely a throughput knob.
func (w *World) buildWorkers() int {
	if n := w.Cfg.BuildWorkers; n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelDo runs fn(i) for i in [0, n) across the given number of workers.
//
// This is the execution half of the world builder's plan/execute split: a
// serial planning pass performs every generator-rng draw in the canonical
// order (the draw stream is part of a world's identity), producing
// self-contained unit plans; parallelDo then executes the plans, each of
// which writes only its own slot of a plan-indexed result; a serial merge
// applies results in plan order. Workers pull indices from a shared cursor,
// so scheduling is nondeterministic but the result is not — a world built
// with any worker count is bit-for-bit identical to the serial build.
func parallelDo(workers, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
