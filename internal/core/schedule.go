package core

import (
	"fmt"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// MarkDirty records that routing state for prefix must be re-converged at
// the next AdvanceTo (used by external mutators such as hijack injection).
func (w *World) MarkDirty(p netip.Prefix) { w.dirty[p.Masked()] = true }

// AddLink inserts a new adjacency mid-timeline (e.g. a content provider
// becoming a tier-1's customer, the Figure-10 scenario). A new edge can
// shift best routes for arbitrary prefixes, so the next AdvanceTo performs
// a full re-convergence.
func (w *World) AddLink(a, b inet.ASN, rel bgp.Relationship) error {
	if err := w.Graph.Link(a, b, rel); err != nil {
		return err
	}
	w.converged = false
	return nil
}

// AdvanceTo moves the world to the given day: the relying party re-validates
// the repositories, per-AS ROV policies flip according to the schedule,
// misconfigured announcements start or stop, and routing re-converges —
// incrementally when possible.
func (w *World) AdvanceTo(day int) error {
	if day < 0 || day > w.Cfg.Days {
		return fmt.Errorf("core: day %d outside timeline [0, %d]", day, w.Cfg.Days)
	}
	w.Day = day

	// Relying-party validation at this day.
	rp := &rpki.RelyingParty{Day: day}
	repos := make([]*rpki.Repository, 0, len(w.Authorities))
	for _, r := range rpki.AllRIRs {
		repos = append(repos, w.Authorities[r].Repo)
	}
	vrps, _ := rp.Validate(repos)
	w.VRPs = vrps

	// Apply ROV schedule. Only filtering ASes hold a VRP view: origin
	// validation at import costs a trie walk per announcement, and
	// non-validating ASes by definition do not perform it.
	for asn, tr := range w.Truth {
		a := w.Graph.AS(asn)
		if tr.DeployedAt(day) {
			a.Policy = tr.Policy
			if tr.SLURMException.IsValid() {
				// RFC 8416 local exception: VRPs covering the whitelisted
				// prefix are filtered out of this AS's view, so the route
				// validates NotFound and passes the filter (§7.1).
				slurm := &rpki.SLURM{PrefixFilters: []rpki.PrefixFilter{{Prefix: coveringFilter(tr.SLURMException)}}}
				a.VRPs = slurm.Apply(vrps)
			} else {
				a.VRPs = vrps
			}
		} else {
			a.Policy = nil
			a.VRPs = nil
		}
	}

	// Apply the invalid-announcement schedule.
	dirty := make(map[netip.Prefix]bool, len(w.dirty)+len(w.Invalids))
	for p := range w.dirty {
		dirty[p] = true
	}
	for _, inv := range w.Invalids {
		active := day >= inv.StartDay && day < inv.EndDay
		w.setOriginated(inv.Origin, inv.Prefix, active)
		if inv.Shared {
			w.setOriginated(inv.Victim, inv.Prefix, active)
		}
		dirty[inv.Prefix] = true
	}

	// Converge: full the first time, incremental afterwards. Policy
	// changes only alter import decisions for RPKI-invalid announcements,
	// and every invalid announcement's prefix is in the dirty set.
	if !w.converged {
		if _, err := w.Graph.Converge(); err != nil {
			return err
		}
		w.converged = true
	} else {
		ps := make([]netip.Prefix, 0, len(dirty))
		for p := range dirty {
			ps = append(ps, p)
		}
		if _, err := w.Graph.ConvergePrefixes(ps); err != nil {
			return err
		}
	}
	w.dirty = make(map[netip.Prefix]bool)
	return nil
}

// coveringFilter widens an invalid /20 to the /16 that holds its covering
// ROA, so the SLURM filter removes the VRP that would invalidate it.
func coveringFilter(p netip.Prefix) netip.Prefix {
	wide, _ := p.Addr().Prefix(16)
	return wide
}

// setOriginated adds or removes p from asn's originated prefixes.
func (w *World) setOriginated(asn inet.ASN, p netip.Prefix, active bool) {
	a := w.Graph.AS(asn)
	idx := -1
	for i, own := range a.Originated {
		if own == p {
			idx = i
			break
		}
	}
	switch {
	case active && idx < 0:
		a.Originated = append(a.Originated, p)
	case !active && idx >= 0:
		a.Originated = append(a.Originated[:idx], a.Originated[idx+1:]...)
	}
}
