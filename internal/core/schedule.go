package core

import (
	"fmt"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// MarkDirty records that routing state for prefix must be re-converged at
// the next AdvanceTo (used by external mutators such as hijack injection).
func (w *World) MarkDirty(p netip.Prefix) { w.dirty[p.Masked()] = true }

// AddLink inserts a new adjacency mid-timeline (e.g. a content provider
// becoming a tier-1's customer, the Figure-10 scenario). Once the world has
// converged, the edge goes through the event engine immediately: a new link
// can shift best routes for arbitrary prefixes, so the link-change event
// dirties the whole interned prefix set and re-converges through the one
// propagation engine.
func (w *World) AddLink(a, b inet.ASN, rel bgp.Relationship) error {
	if !w.converged {
		return w.Graph.Link(a, b, rel)
	}
	_, err := w.Graph.ApplyEvents([]bgp.RouteEvent{{Kind: bgp.EvLinkChange, AS: a, Peer: b, Rel: rel}})
	return err
}

// AdvanceTo moves the world to the given day. The relying party re-validates
// the repositories and every validating AS receives its (possibly
// SLURM-filtered) view of the day's VRPs; then, instead of re-converging
// every schedule participant, the day transition is diffed against the last
// advanced day and only the actual changes — ROV deployments or rollbacks,
// misconfigured announcements starting or stopping, ROAs whose validity
// window opened or closed — are applied as RouteEvents in one batch. The
// first call performs the full from-scratch convergence; repeated calls for
// the same day (the round driver's steady state) coalesce to nothing.
func (w *World) AdvanceTo(day int) error {
	if day < 0 || day > w.Cfg.Days {
		return fmt.Errorf("core: day %d outside timeline [0, %d]", day, w.Cfg.Days)
	}
	prevDay := w.lastDay
	first := !w.converged
	w.Day = day

	// Relying-party validation at this day.
	rp := &rpki.RelyingParty{Day: day}
	repos := make([]*rpki.Repository, 0, len(w.Authorities))
	for _, r := range rpki.AllRIRs {
		repos = append(repos, w.Authorities[r].Repo)
	}
	vrps, _ := rp.Validate(repos)
	w.VRPs = vrps

	var events []bgp.RouteEvent

	// ROV schedule. Only filtering ASes hold a VRP view: origin validation
	// at import costs a trie walk per announcement, and non-validating ASes
	// by definition do not perform it. Deployment flips travel as
	// policy-change events (the engine scopes their dirty set to the
	// VRP-covered prefixes); an AS whose deployment state did not change
	// just has its view pointer refreshed — the views differ at most by the
	// day's ROA diff, which the roa-change event below re-validates.
	for asn, tr := range w.Truth {
		a := w.Graph.AS(asn)
		deployed := tr.DeployedAt(day)
		var view *rpki.VRPSet
		if deployed {
			view = filteredView(tr, vrps)
		}
		switch {
		case first:
			if deployed {
				a.Policy, a.VRPs = tr.Policy, view
			} else {
				a.Policy, a.VRPs = nil, nil
			}
		case deployed != tr.DeployedAt(prevDay):
			if deployed {
				events = append(events, bgp.RouteEvent{Kind: bgp.EvPolicyChange, AS: asn, Policy: tr.Policy, VRPs: view})
			} else {
				events = append(events, bgp.RouteEvent{Kind: bgp.EvPolicyChange, AS: asn})
			}
		case deployed:
			a.VRPs = view
		}
	}

	// Misconfigured-announcement schedule: only start/stop transitions
	// become events; the engine coalesces them with everything else in the
	// batch.
	for _, inv := range w.Invalids {
		active := inv.ActiveAt(day)
		if first {
			w.setOriginated(inv.Origin, inv.Prefix, active)
			if inv.Shared {
				w.setOriginated(inv.Victim, inv.Prefix, active)
			}
			continue
		}
		if active == inv.ActiveAt(prevDay) {
			continue
		}
		kind := bgp.EvWithdraw
		if active {
			kind = bgp.EvAnnounce
		}
		events = append(events, bgp.RouteEvent{Kind: kind, AS: inv.Origin, Prefix: inv.Prefix})
		if inv.Shared {
			events = append(events, bgp.RouteEvent{Kind: kind, AS: inv.Victim, Prefix: inv.Prefix})
		}
	}

	// ROA validity windows that opened or closed between the two days, plus
	// externally marked prefixes, travel as one roa-change event: the engine
	// re-converges every interned prefix the listed space overlaps, which
	// re-runs import-time validation exactly where it can differ.
	var roaDiff []netip.Prefix
	if !first {
		for p, d0 := range w.roaDayByPrefix {
			if (prevDay >= d0) != (day >= d0) {
				roaDiff = append(roaDiff, p)
			}
		}
		for p := range w.dirty {
			roaDiff = append(roaDiff, p)
		}
	}
	if len(roaDiff) > 0 {
		events = append(events, bgp.RouteEvent{Kind: bgp.EvROAChange, Prefixes: roaDiff})
	}

	// Converge: full the first time, one incremental event batch afterwards.
	if first {
		if _, err := w.Graph.Converge(); err != nil {
			return err
		}
		w.converged = true
	} else if len(events) > 0 {
		if _, err := w.Graph.ApplyEvents(events); err != nil {
			return err
		}
	}
	w.dirty = make(map[netip.Prefix]bool)
	w.lastDay = day
	return nil
}

// coveringFilter widens an invalid /20 to the /16 that holds its covering
// ROA, so the SLURM filter removes the VRP that would invalidate it.
func coveringFilter(p netip.Prefix) netip.Prefix {
	wide, _ := p.Addr().Prefix(16)
	return wide
}

// filteredView computes one AS's view of the VRP set: the global set, minus
// any RFC 8416 local exception. VRPs covering the whitelisted prefix are
// filtered out of this AS's view, so the route validates NotFound and
// passes the filter (§7.1).
func filteredView(tr *Truth, vrps *rpki.VRPSet) *rpki.VRPSet {
	if !tr.SLURMException.IsValid() {
		return vrps
	}
	slurm := &rpki.SLURM{PrefixFilters: []rpki.PrefixFilter{{Prefix: coveringFilter(tr.SLURMException)}}}
	return slurm.Apply(vrps)
}

// RefreshVRPViews replaces the world's VRP set — e.g. with a snapshot
// synchronized from a live RTR cache — and refreshes the (possibly
// SLURM-filtered) view of every AS currently deploying ROV. It does not
// re-converge: callers follow up with an EvROAChange batch through
// Graph.ApplyEvents naming the prefixes whose validity may have changed,
// exactly as AdvanceTo does for scheduled ROA transitions.
func (w *World) RefreshVRPViews(vrps *rpki.VRPSet) {
	w.VRPs = vrps
	for asn, tr := range w.Truth {
		if !tr.DeployedAt(w.Day) {
			continue
		}
		w.Graph.AS(asn).VRPs = filteredView(tr, vrps)
	}
}

// setOriginated adds or removes p from asn's originated prefixes.
func (w *World) setOriginated(asn inet.ASN, p netip.Prefix, active bool) {
	a := w.Graph.AS(asn)
	idx := -1
	for i, own := range a.Originated {
		if own == p {
			idx = i
			break
		}
	}
	switch {
	case active && idx < 0:
		a.Originated = append(a.Originated, p)
	case !active && idx >= 0:
		a.Originated = append(a.Originated[:idx], a.Originated[idx+1:]...)
	}
}
