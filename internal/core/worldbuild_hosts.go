package core

import (
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/collectors"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/tcpsim"
	"github.com/netsec-lab/rovista/internal/topology"
)

// hostPlan is one pre-drawn host construction unit: everything a worker
// needs to build the host without touching the generator rng. The serial
// planning pass draws in the historical stream order; execution is free to
// run in any order because each plan fills exactly one slot of a
// plan-indexed slice.
type hostPlan struct {
	addr netip.Addr
	asn  inet.ASN
	pol  ipid.Policy
	seed int64
	rate float64
	// tnode hosts listen on 443/80; brokenMode ≥ 0 selects one of the
	// §4.1-violating behaviours (pre-drawn, since breaking draws from rng).
	tnode      bool
	brokenMode int
}

// build constructs the planned host. Pure function of the plan: safe to run
// from any worker.
func (p hostPlan) build() *netsim.Host {
	var h *netsim.Host
	if p.tnode {
		h = netsim.NewHost(p.addr, p.asn, p.pol, p.seed, 443, 80)
	} else {
		h = netsim.NewHost(p.addr, p.asn, p.pol, p.seed)
	}
	h.BackgroundRate = p.rate
	if p.brokenMode >= 0 {
		breakTNodeMode(h, p.brokenMode)
	}
	return h
}

// buildHosts attaches candidate end hosts to every AS and tNode hosts under
// each invalid prefix. Planning (all rng draws) is serial; host synthesis —
// TCP endpoint and counter construction, the bulk of the work at 50k+ ASes —
// fans out across the build workers; the merge attaches hosts in plan order
// so the network's host population and generation counter evolve exactly as
// in the serial build.
func (w *World) buildHosts() {
	var plans []hostPlan
	for _, asn := range w.Topo.ASNs {
		info := w.Topo.Info[asn]
		if len(info.Prefixes) == 0 {
			continue // transit-only AS (Topology.OriginFrac): no address space
		}
		base := info.Prefixes[0]
		for i := 0; i < w.Cfg.HostsPerAS; i++ {
			addr := inet.NthAddr(base, uint32(10+i))
			pol := w.samplePolicy()
			seed := w.nextHostSeed()
			plans = append(plans, hostPlan{
				addr: addr, asn: asn, pol: pol, seed: seed,
				rate: w.sampleBackground(), brokenMode: -1,
			})
		}
	}
	// tNode hosts live inside the wrong-origin AS, addressed from the
	// invalid prefix. Covered invalids carry a single tNode: their traffic
	// can be diverted by non-filtering transit (§7.4), and in the wild such
	// prefixes are a small minority of the tNode population (TDC reached 3
	// of its ~38 tNodes) — weighting them like ordinary invalids would
	// drown every filtering AS's score in collateral damage.
	for _, inv := range w.Invalids {
		perInv := max(1, w.Cfg.TNodesPerInvalid)
		if inv.Covered {
			perInv = 1
		}
		for i := 0; i < perInv; i++ {
			addr := inet.NthAddr(inv.Prefix, uint32(20+i))
			seed := w.nextHostSeed()
			rate := w.rng.Float64() * 3
			mode := -1
			if w.rng.Float64() < w.Cfg.TNodeBrokenFrac {
				mode = w.rng.Intn(3)
			}
			plans = append(plans, hostPlan{
				addr: addr, asn: inv.Origin, pol: ipid.Global, seed: seed,
				rate: rate, tnode: true, brokenMode: mode,
			})
		}
		if w.rng.Float64() < w.Cfg.InboundFilterFrac {
			// The wrong-origin AS egress-filters responses from the
			// invalid prefix (the paper's inbound-filtering confound).
			p := inv.Prefix
			prev := w.Net.EgressFilter[inv.Origin]
			w.Net.EgressFilter[inv.Origin] = func(pkt netsim.Packet) bool {
				if prev != nil && prev(pkt) {
					return true
				}
				return p.Contains(pkt.Src)
			}
		}
	}
	hosts := make([]*netsim.Host, len(plans))
	parallelDo(w.buildWorkers(), len(plans), func(i int) {
		hosts[i] = plans[i].build()
	})
	for _, h := range hosts {
		w.Net.AddHost(h)
	}
}

// breakTNodeMode gives a tNode host one of the §4.1-violating behaviours.
func breakTNodeMode(h *netsim.Host, mode int) {
	cfg := tcpsim.DefaultConfig(443, 80)
	switch mode {
	case 0: // never retransmits (fails qualification condition b)
		cfg.Behavior = tcpsim.NoRetransmit
		h.TCP = tcpsim.New(cfg)
	case 1: // keeps retransmitting after RST (fails condition c)
		cfg.Behavior = tcpsim.IgnoreRST
		h.TCP = tcpsim.New(cfg)
	default: // entirely silent (fails condition a)
		h.Handler = func(*netsim.Sim, netsim.Packet) bool { return true }
	}
}

// samplePolicy draws an IP-ID policy from the configured mix.
func (w *World) samplePolicy() ipid.Policy {
	r := w.rng.Float64()
	switch {
	case r < w.Cfg.GlobalCounterFrac:
		return ipid.Global
	case r < w.Cfg.GlobalCounterFrac+0.25:
		return ipid.PerDestination
	case r < w.Cfg.GlobalCounterFrac+0.40:
		return ipid.Random
	default:
		return ipid.Constant
	}
}

// sampleBackground draws a background rate from the low/med/high mix.
func (w *World) sampleBackground() float64 {
	r := w.rng.Float64()
	switch {
	case r < w.Cfg.BGLowFrac:
		return w.rng.Float64() * 9
	case r < w.Cfg.BGLowFrac+w.Cfg.BGMedFrac:
		return 10 + w.rng.Float64()*20
	default:
		return 30 + w.rng.Float64()*70
	}
}

// buildClients places the two measurement clients in clean (never-filtering,
// cleanly-uplinked) stub ASes far apart in the numbering: like the paper's
// clients, they must be able to reach the RPKI-invalid test prefixes.
func (w *World) buildClients(clean map[inet.ASN]bool) {
	// Clients need address space to live in, so transit-only ASes (worlds
	// with Topology.OriginFrac set) are never candidates.
	addressable := func(asn inet.ASN) bool { return len(w.Topo.Info[asn].Prefixes) > 0 }
	var stubASes []inet.ASN
	for _, asn := range w.Topo.ASNs {
		if w.Topo.Info[asn].Tier == topology.Stub && clean[asn] && addressable(asn) {
			stubASes = append(stubASes, asn)
		}
	}
	if len(stubASes) < 2 {
		// Fall back to any clean AS, then to any never-filtering AS: the
		// paper's clients just need reachability to the test prefixes and
		// the ability to spoof.
		for _, asn := range w.Topo.ASNs {
			if clean[asn] && addressable(asn) {
				stubASes = append(stubASes, asn)
			}
		}
	}
	if len(stubASes) < 2 {
		for _, asn := range w.Topo.ASNs {
			if w.Truth[asn].DeployDay < 0 && addressable(asn) {
				stubASes = append(stubASes, asn)
			}
		}
	}
	if len(stubASes) < 2 {
		panic("core: no never-filtering ASes available for measurement clients")
	}
	a, b := stubASes[0], stubASes[len(stubASes)-1]
	w.ClientA = netsim.NewHost(inet.NthAddr(w.Topo.Info[a].Prefixes[0], 250), a, ipid.Global, w.nextHostSeed())
	w.ClientB = netsim.NewHost(inet.NthAddr(w.Topo.Info[b].Prefixes[0], 250), b, ipid.Global, w.nextHostSeed())
	w.Net.AddHost(w.ClientA)
	w.Net.AddHost(w.ClientB)
}

// buildCollector wires a RouteViews-style collector fed by the tier-1
// clique plus a sample of tier-2s: realistic partial visibility.
func (w *World) buildCollector() {
	feeders := append([]inet.ASN(nil), w.Topo.Tier1...)
	for _, asn := range w.Topo.ASNs {
		if w.Topo.Info[asn].Tier == topology.Tier2 && w.rng.Float64() < 0.6 {
			feeders = append(feeders, asn)
		}
	}
	w.Collector = &collectors.Collector{Name: "routeviews", Feeders: feeders}
}

// sortedNeighbors returns an AS's neighbors in ascending order.
func sortedNeighbors(a *bgp.AS) []inet.ASN {
	out := make([]inet.ASN, 0, len(a.Neighbors))
	for n := range a.Neighbors {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
