package baselines

import (
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/collectors"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/rpki"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// build: AS 1 provider (filters when rov1), customers 2 (ROV) and 3 (none);
// AS 4 originates the RPKI-invalid test prefix via provider 1.
func build(t *testing.T, rov1, rov2 bool) (*bgp.Graph, *rpki.VRPSet) {
	t.Helper()
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 999, Prefix: pfx("103.21.244.0/24"), MaxLength: 24}})
	g := bgp.NewGraph()
	g.Link(1, 2, bgp.Customer)
	g.Link(1, 3, bgp.Customer)
	g.Link(1, 4, bgp.Customer)
	g.AS(2).Originated = []netip.Prefix{pfx("10.2.0.0/16")}
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	g.AS(4).Originated = []netip.Prefix{pfx("103.21.244.0/24")}
	if rov1 {
		g.AS(1).Policy = rov.Full()
		g.AS(1).VRPs = vrps
	}
	if rov2 {
		g.AS(2).Policy = rov.Full()
		g.AS(2).VRPs = vrps
	}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	return g, vrps
}

func TestSinglePrefixVerdicts(t *testing.T) {
	g, _ := build(t, false, true)
	v := SinglePrefix(g, ip("103.21.244.1"), []inet.ASN{2, 3})
	if v[2] != Safe {
		t.Fatalf("ROV AS labelled %v", v[2])
	}
	if v[3] != Unsafe {
		t.Fatalf("non-ROV AS labelled %v", v[3])
	}
}

func TestSinglePrefixCustomerExemptionFalseNegative(t *testing.T) {
	// The AT&T story (Figure 10): provider 1 filters except from customers;
	// the test-prefix owner becomes its customer, so every other customer
	// reaches the test prefix and is misclassified unsafe.
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 999, Prefix: pfx("103.21.244.0/24"), MaxLength: 24}})
	g := bgp.NewGraph()
	g.Link(1, 2, bgp.Customer)
	g.Link(1, 13335, bgp.Customer) // "Cloudflare" as a customer
	g.AS(2).Originated = []netip.Prefix{pfx("10.2.0.0/16")}
	g.AS(13335).Originated = []netip.Prefix{pfx("103.21.244.0/24")}
	g.AS(1).Policy = rov.CustomerExempt()
	g.AS(1).VRPs = vrps
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	verdicts := SinglePrefix(g, ip("103.21.244.1"), []inet.ASN{1, 2})
	if verdicts[1] != Unsafe || verdicts[2] != Unsafe {
		t.Fatalf("verdicts = %v, want both unsafe", verdicts)
	}
	// RoVista-style scores would rate AS 1 high (it filters everything
	// except this one customer route): that is the false negative.
	scores := map[inet.ASN]float64{1: 97.8, 2: 0}
	r := CompareSinglePrefix(verdicts, scores)
	if r.FalseNegatives != 1 {
		t.Fatalf("FN = %d, want 1", r.FalseNegatives)
	}
	if r.FalsePositives != 0 {
		t.Fatalf("FP = %d", r.FalsePositives)
	}
}

func TestCompareSinglePrefixFalsePositive(t *testing.T) {
	verdicts := map[inet.ASN]Verdict{7: Safe}
	scores := map[inet.ASN]float64{7: 0} // RoVista: no protection at all
	r := CompareSinglePrefix(verdicts, scores)
	if r.FalsePositives != 1 || r.Compared != 1 {
		t.Fatalf("r = %+v", r)
	}
	if r.FPRate() != 1 || r.FNRate() != 0 {
		t.Fatalf("rates = %v %v", r.FPRate(), r.FNRate())
	}
}

func TestCompareSinglePrefixSkipsUnscored(t *testing.T) {
	verdicts := map[inet.ASN]Verdict{7: Safe}
	r := CompareSinglePrefix(verdicts, nil)
	if r.Compared != 0 || r.FPRate() != 0 {
		t.Fatalf("r = %+v", r)
	}
}

func TestAPNICStyleCollapsesTo0Or100(t *testing.T) {
	g, _ := build(t, false, true)
	rates := APNICStyle(g, ip("103.21.244.1"), []inet.ASN{2, 3}, 10)
	if rates[2] != 100 {
		t.Fatalf("ROV AS rate = %v", rates[2])
	}
	if rates[3] != 0 {
		t.Fatalf("non-ROV AS rate = %v", rates[3])
	}
}

func TestPassiveInference(t *testing.T) {
	g, vrps := build(t, false, true)
	coll := &collectors.Collector{Feeders: []inet.ASN{1, 3}}
	view := coll.Snapshot(g)
	labels := PassiveInference(view, vrps, []inet.ASN{1, 2, 3})
	// AS 1 and 3 are on the invalid path (1 transits it, 3 holds it);
	// AS 2 filtered it, so it never appears — labelled filtering.
	if labels[1] || labels[3] {
		t.Fatalf("transit/holder labelled as filtering: %v", labels)
	}
	if !labels[2] {
		t.Fatal("ROV AS should be labelled filtering")
	}
}

func TestPassiveInferenceLimitedVisibility(t *testing.T) {
	// A non-ROV AS that simply is not on any observed invalid path gets
	// (mis)labelled as filtering — the §2.3 failure mode.
	g, vrps := build(t, false, false)
	coll := &collectors.Collector{Feeders: []inet.ASN{4}} // only the origin feeds
	view := coll.Snapshot(g)
	labels := PassiveInference(view, vrps, []inet.ASN{3})
	if !labels[3] {
		t.Fatal("expected the passive method to misclassify the unseen AS")
	}
	// Yet the data plane shows AS 3 can reach the invalid prefix.
	if v := SinglePrefix(g, ip("103.21.244.1"), []inet.ASN{3}); v[3] != Unsafe {
		t.Fatal("AS 3 should actually reach the invalid prefix")
	}
}

func TestVerdictString(t *testing.T) {
	if Safe.String() != "safe" || Unsafe.String() != "unsafe" {
		t.Fatal("verdict strings wrong")
	}
}

func TestSortEntries(t *testing.T) {
	es := []CrowdEntry{{ASN: 9}, {ASN: 1}, {ASN: 5}}
	SortEntries(es)
	if es[0].ASN != 1 || es[1].ASN != 5 || es[2].ASN != 9 {
		t.Fatalf("sorted = %+v", es)
	}
}
