// Package baselines implements the alternative ROV measurement approaches
// the paper compares RoVista against (§8): the single-RPKI-invalid-prefix
// technique behind Cloudflare's isbgpsafeyet.com, the APNIC dashboard's
// ad-network client sampling, and passive control-plane inference from
// collector views.
package baselines

import (
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/collectors"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// Verdict is a single-prefix measurement's per-AS label.
type Verdict uint8

// Single-prefix verdicts (isbgpsafeyet.com wording).
const (
	// Unsafe: the AS fetched content from the RPKI-invalid prefix.
	Unsafe Verdict = iota
	// Safe: the AS could only fetch from the valid prefix.
	Safe
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v == Safe {
		return "safe"
	}
	return "unsafe"
}

// SinglePrefix classifies each candidate AS by whether it can reach one
// specific RPKI-invalid test address — the isbgpsafeyet.com methodology.
// An AS is Safe when the invalid destination is unreachable and Unsafe
// otherwise.
func SinglePrefix(g *bgp.Graph, testAddr netip.Addr, candidates []inet.ASN) map[inet.ASN]Verdict {
	out := make(map[inet.ASN]Verdict, len(candidates))
	for _, asn := range candidates {
		if g.Reachable(asn, testAddr) {
			out[asn] = Unsafe
		} else {
			out[asn] = Safe
		}
	}
	return out
}

// FPFN quantifies a single-prefix measurement against RoVista scores using
// the paper's conservative thresholds: a false negative is an AS labelled
// unsafe whose protection score exceeds 90%; a false positive is an AS
// labelled safe whose score is 0%.
type FPFN struct {
	FalsePositives int
	FalseNegatives int
	Compared       int
}

// FPRate returns false positives / compared.
func (f FPFN) FPRate() float64 {
	if f.Compared == 0 {
		return 0
	}
	return float64(f.FalsePositives) / float64(f.Compared)
}

// FNRate returns false negatives / compared.
func (f FPFN) FNRate() float64 {
	if f.Compared == 0 {
		return 0
	}
	return float64(f.FalseNegatives) / float64(f.Compared)
}

// CompareSinglePrefix evaluates single-prefix verdicts against scores.
func CompareSinglePrefix(verdicts map[inet.ASN]Verdict, scores map[inet.ASN]float64) FPFN {
	var out FPFN
	for asn, v := range verdicts {
		score, ok := scores[asn]
		if !ok {
			continue
		}
		out.Compared++
		switch {
		case v == Unsafe && score > 90:
			out.FalseNegatives++
		case v == Safe && score == 0:
			out.FalsePositives++
		}
	}
	return out
}

// APNICStyle emulates the APNIC dashboard: per-AS "clients" (we sample k
// virtual clients per AS) each try the invalid destination; the metric is
// the percentage of clients that could NOT fetch it. With a single test
// prefix every client in an AS shares fate, so values collapse to 0 or 100 —
// exactly the granularity loss the paper discusses.
func APNICStyle(g *bgp.Graph, testAddr netip.Addr, candidates []inet.ASN, clientsPerAS int) map[inet.ASN]float64 {
	out := make(map[inet.ASN]float64, len(candidates))
	for _, asn := range candidates {
		blocked := 0
		for c := 0; c < clientsPerAS; c++ {
			if !g.Reachable(asn, testAddr) {
				blocked++
			}
		}
		if clientsPerAS > 0 {
			out[asn] = 100 * float64(blocked) / float64(clientsPerAS)
		}
	}
	return out
}

// PassiveInference labels an AS as filtering when it never appears on the
// propagation path of any RPKI-invalid announcement in the collector view.
// The paper (§2.3) notes this misclassifies heavily: absence from observed
// paths usually reflects limited visibility, not filtering.
func PassiveInference(view *collectors.View, vrps *rpki.VRPSet, candidates []inet.ASN) map[inet.ASN]bool {
	onInvalidPath := make(map[inet.ASN]bool)
	for _, p := range view.Prefixes() {
		for _, r := range view.Routes(p) {
			if vrps.Validate(p, r.Origin()) != rpki.Invalid {
				continue
			}
			for _, hop := range r.Path {
				onInvalidPath[hop] = true
			}
		}
	}
	out := make(map[inet.ASN]bool, len(candidates))
	for _, asn := range candidates {
		out[asn] = !onInvalidPath[asn]
	}
	return out
}

// CrowdLabel is a crowdsourced-list entry label (Cloudflare's categories).
type CrowdLabel string

// Crowdsourced labels.
const (
	LabelSafe          CrowdLabel = "safe"
	LabelPartiallySafe CrowdLabel = "partially safe"
	LabelUnsafe        CrowdLabel = "unsafe"
)

// CrowdEntry is one row of a crowdsourced operator list.
type CrowdEntry struct {
	ASN   inet.ASN
	Label CrowdLabel
}

// SortEntries orders entries by ASN for deterministic output.
func SortEntries(es []CrowdEntry) {
	sort.Slice(es, func(i, j int) bool { return es[i].ASN < es[j].ASN })
}
