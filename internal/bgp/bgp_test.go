package bgp

import (
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// buildChain creates provider(1) -> customer(2) -> customer(3); AS 3
// originates 10.3.0.0/16.
func buildChain(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	g.Link(1, 2, Customer) // 2 is 1's customer
	g.Link(2, 3, Customer)
	g.AddAS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPropagationUpChain(t *testing.T) {
	g := buildChain(t)
	r, ok := g.AS(1).BestRoute(pfx("10.3.0.0/16"))
	if !ok {
		t.Fatal("provider did not learn customer route")
	}
	if r.Origin() != 3 || r.LearnedFrom != 2 {
		t.Fatalf("route = %+v", r)
	}
	if len(r.Path) != 2 || r.Path[0] != 2 || r.Path[1] != 3 {
		t.Fatalf("path = %v, want [2 3]", r.Path)
	}
}

func TestDataPathDelivery(t *testing.T) {
	g := buildChain(t)
	path, ok := g.DataPath(1, ip("10.3.1.1"))
	if !ok {
		t.Fatal("packet not delivered")
	}
	want := []inet.ASN{1, 2, 3}
	if len(path) != 3 {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestDataPathUnroutable(t *testing.T) {
	g := buildChain(t)
	if _, ok := g.DataPath(1, ip("99.9.9.9")); ok {
		t.Fatal("unannounced space must be unreachable")
	}
}

func TestValleyFreeExport(t *testing.T) {
	// 1 and 2 are peers; 3 is 2's provider. A route learned by 2 from its
	// peer 1 must NOT be exported to provider 3 (no valley routing).
	g := NewGraph()
	g.Link(1, 2, Peer)
	g.Link(3, 2, Customer) // 2 is 3's customer
	g.AddAS(1).Originated = []netip.Prefix{pfx("10.1.0.0/16")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.AS(2).BestRoute(pfx("10.1.0.0/16")); !ok {
		t.Fatal("peer route should be learned by 2")
	}
	if _, ok := g.AS(3).BestRoute(pfx("10.1.0.0/16")); ok {
		t.Fatal("peer-learned route leaked to provider (valley)")
	}
}

func TestPeerRouteExportedToCustomers(t *testing.T) {
	// Same topology but 4 is 2's customer: peer routes DO go to customers.
	g := NewGraph()
	g.Link(1, 2, Peer)
	g.Link(2, 4, Customer)
	g.AddAS(1).Originated = []netip.Prefix{pfx("10.1.0.0/16")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.AS(4).BestRoute(pfx("10.1.0.0/16")); !ok {
		t.Fatal("peer route should reach customer")
	}
}

func TestPreferCustomerOverPeerOverProvider(t *testing.T) {
	// AS 10 hears 10.9.0.0/16 from a customer (20), a peer (30) and a
	// provider (40); it must pick the customer route.
	g := NewGraph()
	g.Link(10, 20, Customer)
	g.Link(10, 30, Peer)
	g.Link(40, 10, Customer) // 40 is 10's provider
	origin := inet.ASN(99)
	for _, via := range []inet.ASN{20, 30, 40} {
		g.Link(via, origin+inet.ASN(via), Customer) // give each a distinct stub...
	}
	// Simpler: three distinct origins all announcing the same prefix via
	// different neighbors of 10.
	g.AS(20).Originated = []netip.Prefix{pfx("10.9.0.0/16")}
	g.AS(30).Originated = []netip.Prefix{pfx("10.9.0.0/16")}
	g.AS(40).Originated = []netip.Prefix{pfx("10.9.0.0/16")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	r, ok := g.AS(10).BestRoute(pfx("10.9.0.0/16"))
	if !ok || r.LearnedFrom != 20 {
		t.Fatalf("best = %+v, want via customer 20", r)
	}
}

func TestShorterPathPreferred(t *testing.T) {
	// Two provider paths to the same origin: 1->2->5 and 1->3->4->5; the
	// shorter must win at AS 1.
	g := NewGraph()
	g.Link(2, 1, Customer) // 2 provider of 1
	g.Link(3, 1, Customer)
	g.Link(5, 2, Customer) // 5 provider of 2? No: Link(a,b,Customer) = b is a's customer.
	// Rebuild carefully below instead.
	g = NewGraph()
	// 5 originates; 2 is a customer of 5; 1 is a customer of 2.
	// Also 4 customer of 5, 3 customer of 4, 1 customer of 3.
	g.Link(5, 2, Customer)
	g.Link(2, 1, Customer)
	g.Link(5, 4, Customer)
	g.Link(4, 3, Customer)
	g.Link(3, 1, Customer)
	g.AddAS(5).Originated = []netip.Prefix{pfx("10.5.0.0/16")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	r, ok := g.AS(1).BestRoute(pfx("10.5.0.0/16"))
	if !ok {
		t.Fatal("no route at AS 1")
	}
	if r.LearnedFrom != 2 || len(r.Path) != 2 {
		t.Fatalf("best = %+v, want 2-hop path via 2", r)
	}
}

func TestLoopPrevention(t *testing.T) {
	// Triangle of peers all re-announcing: convergence must terminate and
	// no AS should install a route with itself on the path.
	g := NewGraph()
	g.Link(1, 2, Peer)
	g.Link(2, 3, Peer)
	g.Link(3, 1, Peer)
	g.AddAS(1).Originated = []netip.Prefix{pfx("10.1.0.0/16")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range []inet.ASN{1, 2, 3} {
		for _, r := range g.AS(asn).Routes() {
			for _, hop := range r.Path {
				if hop == asn {
					t.Fatalf("AS %v installed looped path %v", asn, r.Path)
				}
			}
		}
	}
}

func TestMoreSpecificWinsForwarding(t *testing.T) {
	// Origin 3 announces /16; origin 4 announces a /24 inside it
	// (sub-prefix hijack); traffic for the /24 must go to 4.
	g := NewGraph()
	g.Link(1, 3, Customer)
	g.Link(1, 4, Customer)
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	g.AS(4).Originated = []netip.Prefix{pfx("10.3.96.0/24")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	if origin, _ := g.OriginOf(1, ip("10.3.96.5")); origin != 4 {
		t.Fatalf("sub-prefix traffic went to %v, want hijacker 4", origin)
	}
	if origin, _ := g.OriginOf(1, ip("10.3.1.1")); origin != 3 {
		t.Fatalf("covering-prefix traffic went to %v, want 3", origin)
	}
}

func TestDefaultRouteForwarding(t *testing.T) {
	// AS 2 has no route for the destination but defaults to AS 1.
	g := NewGraph()
	g.Link(1, 2, Customer)
	g.Link(1, 3, Customer)
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	// Do not converge AS 2's route: emulate by removing after convergence.
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	a2 := g.AS(2)
	a2.DropRoute(pfx("10.3.0.0/16"))
	_, ok := g.DataPath(2, ip("10.3.0.1"))
	if ok {
		t.Fatal("without default route the packet must drop")
	}
	a2.DefaultRoute, a2.HasDefault = 1, true
	path, ok := g.DataPath(2, ip("10.3.0.1"))
	if !ok {
		t.Fatalf("default route should deliver; path=%v", path)
	}
}

func TestDataPathLoopDetection(t *testing.T) {
	// Two ASes defaulting to each other must terminate as undelivered.
	g := NewGraph()
	g.Link(1, 2, Peer)
	a1, a2 := g.AS(1), g.AS(2)
	a1.resetRoutingState(g)
	a2.resetRoutingState(g)
	a1.DefaultRoute, a1.HasDefault = 2, true
	a2.DefaultRoute, a2.HasDefault = 1, true
	if _, ok := g.DataPath(1, ip("10.0.0.1")); ok {
		t.Fatal("default-route loop must not deliver")
	}
}

func TestSelfLinkRejected(t *testing.T) {
	g := NewGraph()
	if err := g.Link(7, 7, Peer); err == nil {
		t.Fatal("self link should error")
	}
}

func TestOwnPrefixNeverDisplaced(t *testing.T) {
	// The legitimate origin also hears a hijack of its own prefix; its own
	// route must remain.
	g := NewGraph()
	g.Link(1, 2, Peer)
	g.AS(1).Originated = []netip.Prefix{pfx("10.1.0.0/16")}
	g.AS(2).Originated = []netip.Prefix{pfx("10.1.0.0/16")} // hijacker
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	r, _ := g.AS(1).BestRoute(pfx("10.1.0.0/16"))
	if !r.SelfOriginated() {
		t.Fatal("own prefix displaced by learned route")
	}
}

func TestConvergenceDeterminism(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		g.Link(1, 2, Customer)
		g.Link(1, 3, Customer)
		g.Link(2, 4, Customer)
		g.Link(3, 4, Customer)
		g.Link(2, 3, Peer)
		g.AS(4).Originated = []netip.Prefix{pfx("10.4.0.0/16")}
		g.Converge()
		return g
	}
	g1, g2 := build(), build()
	for asn := range g1.ASes {
		r1, ok1 := g1.AS(asn).BestRoute(pfx("10.4.0.0/16"))
		r2, ok2 := g2.AS(asn).BestRoute(pfx("10.4.0.0/16"))
		if ok1 != ok2 || (ok1 && !routesEqual(r1, r2)) {
			t.Fatalf("AS %v: nondeterministic result %+v vs %+v", asn, r1, r2)
		}
	}
}

func TestAnnouncementHelpers(t *testing.T) {
	a := Announcement{Prefix: pfx("10.0.0.0/8"), Path: []inet.ASN{2, 3, 4}}
	if a.Origin() != 4 {
		t.Fatalf("Origin = %v", a.Origin())
	}
	if !a.ContainsAS(3) || a.ContainsAS(9) {
		t.Fatal("ContainsAS wrong")
	}
	if (Announcement{}).Origin() != 0 {
		t.Fatal("empty announcement origin should be 0")
	}
}

func TestRelationshipString(t *testing.T) {
	if Customer.String() != "customer" || Peer.String() != "peer" || Provider.String() != "provider" {
		t.Fatal("relationship strings wrong")
	}
}

// rovDropPolicy drops invalid routes — a minimal in-package stand-in to keep
// this test independent of internal/rov (which has its own tests).
type rovDropPolicy struct{}

func (rovDropPolicy) Evaluate(_, _ inet.ASN, _ Relationship, _ Announcement, v rpki.Validity) ImportDecision {
	return ImportDecision{Accept: v != rpki.Invalid}
}

func TestROVFilteringAtImport(t *testing.T) {
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 3, Prefix: pfx("10.3.0.0/16"), MaxLength: 16}})
	g := NewGraph()
	g.Link(1, 2, Customer)
	g.Link(2, 3, Customer)
	g.Link(2, 4, Customer)
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")} // valid origin
	g.AS(4).Originated = []netip.Prefix{pfx("10.3.0.0/16")} // invalid origin
	g.AS(2).Policy = rovDropPolicy{}
	g.AS(2).VRPs = vrps
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	r, ok := g.AS(2).BestRoute(pfx("10.3.0.0/16"))
	if !ok || r.Origin() != 3 {
		t.Fatalf("ROV AS picked %+v, want origin 3", r)
	}
	if r.Validity != rpki.Valid {
		t.Fatalf("validity = %v, want valid", r.Validity)
	}
	// AS 1 (no ROV) hears only what AS 2 exports — the valid route.
	r1, ok := g.AS(1).BestRoute(pfx("10.3.0.0/16"))
	if !ok || r1.Origin() != 3 {
		t.Fatalf("upstream got %+v", r1)
	}
}

// TestFigure9CollateralDamage reproduces the paper's Figure 9: AS 3292
// deploys ROV but its transit AS 3320 does not. AS 36947 hijacks a /24
// inside Orange's (AS 5511) /20. AS 3292 only keeps the valid /20, but
// forwarding hands the packet to AS 3320, whose more-specific /24 entry
// sends it to the hijacker.
func TestFigure9CollateralDamage(t *testing.T) {
	const (
		tdc      inet.ASN = 3292
		dtag     inet.ASN = 3320
		orange   inet.ASN = 5511
		seabone  inet.ASN = 6762
		hijacker inet.ASN = 36947
	)
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: orange, Prefix: pfx("193.251.160.0/20"), MaxLength: 20}})

	g := NewGraph()
	g.Link(dtag, tdc, Customer) // TDC buys transit from DTAG
	g.Link(dtag, orange, Peer)  // DTAG peers with Orange
	g.Link(dtag, seabone, Peer) // DTAG peers with Seabone
	g.Link(seabone, hijacker, Customer)
	g.AS(orange).Originated = []netip.Prefix{pfx("193.251.160.0/20")}
	g.AS(hijacker).Originated = []netip.Prefix{pfx("193.251.160.0/24")}
	g.AS(tdc).Policy = rovDropPolicy{}
	g.AS(tdc).VRPs = vrps
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}

	// TDC's own table holds only the valid /20.
	if _, ok := g.AS(tdc).BestRoute(pfx("193.251.160.0/24")); ok {
		t.Fatal("ROV AS should have filtered the invalid /24")
	}
	if _, ok := g.AS(tdc).BestRoute(pfx("193.251.160.0/20")); !ok {
		t.Fatal("ROV AS should keep the valid /20")
	}

	// Yet the data path for an address in the hijacked /24 ends at the
	// hijacker: collateral damage.
	origin, ok := g.OriginOf(tdc, ip("193.251.160.1"))
	if !ok {
		t.Fatal("packet should be delivered (to the wrong place)")
	}
	if origin != hijacker {
		t.Fatalf("delivered to %v, want hijacker %v", origin, hijacker)
	}

	// Control: an address in the /20 outside the /24 goes to Orange.
	origin, _ = g.OriginOf(tdc, ip("193.251.170.1"))
	if origin != orange {
		t.Fatalf("control traffic went to %v, want %v", origin, orange)
	}
}
