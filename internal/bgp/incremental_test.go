package bgp

import (
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// buildDiamond builds 1 at the top, 2 and 3 as its customers, 4 below both,
// with 5 as a second origin AS attached to 3.
func buildDiamond() *Graph {
	g := NewGraph()
	g.Link(1, 2, Customer)
	g.Link(1, 3, Customer)
	g.Link(2, 4, Customer)
	g.Link(3, 4, Customer)
	g.Link(3, 5, Customer)
	g.AS(4).Originated = []netip.Prefix{pfx("10.4.0.0/16")}
	g.AS(5).Originated = []netip.Prefix{pfx("10.5.0.0/16")}
	return g
}

func snapshotRoutes(g *Graph) map[inet.ASN][]Route {
	out := make(map[inet.ASN][]Route)
	for asn, a := range g.ASes {
		out[asn] = a.Routes()
	}
	return out
}

func routesMatch(t *testing.T, a, b map[inet.ASN][]Route) {
	t.Helper()
	for asn, ra := range a {
		rb := b[asn]
		if len(ra) != len(rb) {
			t.Fatalf("AS %v route count %d vs %d", asn, len(ra), len(rb))
		}
		for i := range ra {
			if !routesEqual(ra[i], rb[i]) {
				t.Fatalf("AS %v route %d differs: %+v vs %+v", asn, i, ra[i], rb[i])
			}
		}
	}
}

func TestConvergePrefixesMatchesFullAfterPolicyChange(t *testing.T) {
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 4, Prefix: pfx("10.5.0.0/16"), MaxLength: 16}})
	// AS 5's announcement of 10.5.0.0/16 is invalid (ROA names AS 4).
	mk := func() *Graph {
		g := buildDiamond()
		for _, a := range g.ASes {
			a.VRPs = vrps
		}
		return g
	}

	// Incremental path: converge without ROV, then AS 3 turns on ROV and
	// only the invalid prefix re-converges.
	inc := mk()
	if _, err := inc.Converge(); err != nil {
		t.Fatal(err)
	}
	inc.AS(3).Policy = rovDropPolicy{}
	if _, err := inc.ConvergePrefixes([]netip.Prefix{pfx("10.5.0.0/16")}); err != nil {
		t.Fatal(err)
	}

	// Reference path: same final world, full converge.
	full := mk()
	full.AS(3).Policy = rovDropPolicy{}
	if _, err := full.Converge(); err != nil {
		t.Fatal(err)
	}

	routesMatch(t, snapshotRoutes(full), snapshotRoutes(inc))

	// AS 3 must have dropped the invalid prefix but kept everything else.
	if _, ok := inc.AS(3).BestRoute(pfx("10.5.0.0/16")); ok {
		t.Fatal("invalid prefix survived at filtering AS")
	}
	if _, ok := inc.AS(3).BestRoute(pfx("10.4.0.0/16")); !ok {
		t.Fatal("valid prefix lost during incremental converge")
	}
}

func TestConvergePrefixesNewOrigination(t *testing.T) {
	inc := buildDiamond()
	if _, err := inc.Converge(); err != nil {
		t.Fatal(err)
	}
	// A hijack appears: AS 2 starts originating AS 5's prefix.
	inc.AS(2).Originated = append(inc.AS(2).Originated, pfx("10.5.0.0/16"))
	if _, err := inc.ConvergePrefixes([]netip.Prefix{pfx("10.5.0.0/16")}); err != nil {
		t.Fatal(err)
	}

	full := buildDiamond()
	full.AS(2).Originated = append(full.AS(2).Originated, pfx("10.5.0.0/16"))
	if _, err := full.Converge(); err != nil {
		t.Fatal(err)
	}
	routesMatch(t, snapshotRoutes(full), snapshotRoutes(inc))
}

func TestConvergePrefixesWithdrawnOrigination(t *testing.T) {
	g := buildDiamond()
	g.AS(2).Originated = append(g.AS(2).Originated, pfx("10.5.0.0/16"))
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	// Hijack ends.
	g.AS(2).Originated = g.AS(2).Originated[:len(g.AS(2).Originated)-1]
	if _, err := g.ConvergePrefixes([]netip.Prefix{pfx("10.5.0.0/16")}); err != nil {
		t.Fatal(err)
	}
	full := buildDiamond()
	if _, err := full.Converge(); err != nil {
		t.Fatal(err)
	}
	routesMatch(t, snapshotRoutes(full), snapshotRoutes(g))
}

func TestConvergePrefixesEmpty(t *testing.T) {
	g := buildDiamond()
	g.Converge()
	before := snapshotRoutes(g)
	rounds, err := g.ConvergePrefixes(nil)
	if err != nil || rounds != 0 {
		t.Fatalf("rounds=%d err=%v", rounds, err)
	}
	routesMatch(t, before, snapshotRoutes(g))
}

// TestConvergePrefixesAfterLink: a neighbor linked in AFTER the first full
// convergence must participate in subsequent incremental convergences. The
// per-AS export lists are rebuilt lazily, keyed on a topology generation that
// Link bumps — before that fix, resetPrefixes reused the stale lists and the
// new neighbor silently never learned a route until the next full Converge.
func TestConvergePrefixesAfterLink(t *testing.T) {
	g := buildDiamond()
	if _, err := g.Converge(); err != nil {
		t.Fatalf("converge: %v", err)
	}

	// AS 6 joins as a customer of 2 (an existing, already-converged AS), and
	// AS 2 gains it as an export target.
	if err := g.Link(2, 6, Customer); err != nil {
		t.Fatalf("link: %v", err)
	}
	p := pfx("10.4.0.0/16")
	if _, err := g.ConvergePrefixes([]netip.Prefix{p, pfx("10.5.0.0/16")}); err != nil {
		t.Fatalf("converge prefixes: %v", err)
	}
	r, ok := g.AS(6).BestRoute(p)
	if !ok {
		t.Fatal("AS 6 (linked after full convergence) has no route to 10.4.0.0/16 after ConvergePrefixes")
	}
	wantPath := []inet.ASN{2, 4}
	if !pathsEqual(r.Path, wantPath) {
		t.Fatalf("AS 6 route path %v, want %v", r.Path, wantPath)
	}

	// The incremental result must match a from-scratch full convergence.
	g2 := buildDiamond()
	if err := g2.Link(2, 6, Customer); err != nil {
		t.Fatalf("link: %v", err)
	}
	if _, err := g2.Converge(); err != nil {
		t.Fatalf("converge: %v", err)
	}
	routesMatch(t, snapshotRoutes(g2), snapshotRoutes(g))
}
