// Package bgp implements the inter-domain routing substrate: AS-level BGP
// announcements, Gao-Rexford import/export policy, deterministic route
// selection, convergence to a stable routing state, and data-plane path
// computation via per-AS longest-prefix-match forwarding.
//
// Route Origin Validation plugs in through the ImportPolicy interface; the
// concrete ROV policies live in internal/rov so the routing engine stays
// agnostic of RPKI details beyond the validation outcome.
package bgp

import (
	"fmt"
	"net/netip"
	"slices"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// Relationship describes a neighbor from the local AS's point of view.
type Relationship int8

// Gao-Rexford relationship types.
const (
	// Customer: the neighbor pays us for transit.
	Customer Relationship = iota
	// Peer: settlement-free peering.
	Peer
	// Provider: we pay the neighbor for transit.
	Provider
)

// String implements fmt.Stringer.
func (r Relationship) String() string {
	switch r {
	case Customer:
		return "customer"
	case Peer:
		return "peer"
	case Provider:
		return "provider"
	default:
		return fmt.Sprintf("Relationship(%d)", int8(r))
	}
}

// localPref maps the relationship a route was learned over to the standard
// Gao-Rexford preference tiers.
func (r Relationship) localPref() int {
	switch r {
	case Customer:
		return 300
	case Peer:
		return 200
	default:
		return 100
	}
}

// Announcement is a BGP UPDATE as seen on the wire between two ASes.
type Announcement struct {
	Prefix netip.Prefix
	// Path is the AS path; Path[0] is the sender, Path[len-1] the origin.
	Path []inet.ASN
}

// Origin returns the originating AS of the announcement.
func (a Announcement) Origin() inet.ASN {
	if len(a.Path) == 0 {
		return 0
	}
	return a.Path[len(a.Path)-1]
}

// ContainsAS reports whether asn appears on the path (loop detection).
func (a Announcement) ContainsAS(asn inet.ASN) bool {
	return slices.Contains(a.Path, asn)
}

// Route is an installed routing-table entry.
type Route struct {
	Prefix      netip.Prefix
	Path        []inet.ASN // full AS path including the origin; empty for self-originated
	LearnedFrom inet.ASN   // neighbor ASN, or the local ASN for self-originated routes
	Rel         Relationship
	Validity    rpki.Validity // RFC 6811 outcome recorded at import time
	LocalPref   int
	selfOrigin  bool
}

// SelfOriginated reports whether the route covers a locally originated prefix.
func (r Route) SelfOriginated() bool { return r.selfOrigin }

// Origin returns the route's origin AS (the local AS for self routes).
func (r Route) Origin() inet.ASN {
	if len(r.Path) == 0 {
		return r.LearnedFrom
	}
	return r.Path[len(r.Path)-1]
}

// better reports whether r should be preferred over o under the standard
// decision process: higher LocalPref, then shorter AS path, then lowest
// next-hop ASN as the deterministic tiebreak.
func (r Route) better(o Route) bool {
	if r.LocalPref != o.LocalPref {
		return r.LocalPref > o.LocalPref
	}
	if len(r.Path) != len(o.Path) {
		return len(r.Path) < len(o.Path)
	}
	return r.LearnedFrom < o.LearnedFrom
}

// ImportDecision is an ImportPolicy verdict.
type ImportDecision struct {
	// Accept indicates the route enters the Adj-RIB-In at all.
	Accept bool
	// LocalPrefDelta adjusts the relationship-derived LocalPref (used by
	// prefer-valid policies to depreference invalid routes).
	LocalPrefDelta int
}

// ImportPolicy decides whether an AS accepts an announcement from a
// neighbor. Implementations receive the RFC 6811 validity computed against
// the AS's own VRP view.
type ImportPolicy interface {
	Evaluate(local inet.ASN, neighbor inet.ASN, rel Relationship, ann Announcement, validity rpki.Validity) ImportDecision
}

// AcceptAll is the policy of an AS that performs no origin validation.
type AcceptAll struct{}

// Evaluate implements ImportPolicy.
func (AcceptAll) Evaluate(inet.ASN, inet.ASN, Relationship, Announcement, rpki.Validity) ImportDecision {
	return ImportDecision{Accept: true}
}
