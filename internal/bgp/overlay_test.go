package bgp

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// baseFingerprint captures the base graph's routing state at byte level:
// every Adj-RIB-In cell, Loc-RIB slot and spill entry by value (announcement
// pointers included, so even an in-place rewrite with equal contents would
// show), plus the epoch machinery and prefix table position. Overlay
// isolation means this is exactly equal before and after any overlay work.
type baseFingerprint struct {
	version, floor uint64
	tabLen         int
	tabGen         uint64
	affected       []uint64
	adjIn          map[inet.ASN][]adjCell
	rib            map[inet.ASN][]locRoute
	spill          map[inet.ASN][]adjRoute
	originated     map[inet.ASN][]netip.Prefix
	leaking        map[inet.ASN]bool
	forged         map[inet.ASN]map[netip.Prefix]inet.ASN
}

func fingerprintGraph(g *Graph) baseFingerprint {
	fp := baseFingerprint{
		version:    g.version,
		floor:      g.affectedFloor,
		tabLen:     g.tab.Len(),
		tabGen:     g.tab.gen,
		affected:   append([]uint64(nil), g.affected...),
		adjIn:      make(map[inet.ASN][]adjCell),
		rib:        make(map[inet.ASN][]locRoute),
		spill:      make(map[inet.ASN][]adjRoute),
		originated: make(map[inet.ASN][]netip.Prefix),
		leaking:    make(map[inet.ASN]bool),
		forged:     make(map[inet.ASN]map[netip.Prefix]inet.ASN),
	}
	for asn, a := range g.ASes {
		fp.adjIn[asn] = append([]adjCell(nil), a.adjIn...)
		fp.rib[asn] = append([]locRoute(nil), a.rib...)
		fp.spill[asn] = append([]adjRoute(nil), a.spillPool...)
		fp.originated[asn] = append([]netip.Prefix(nil), a.Originated...)
		fp.leaking[asn] = a.Leaking
		if len(a.forged) > 0 {
			m := make(map[netip.Prefix]inet.ASN, len(a.forged))
			for p, o := range a.forged {
				m[p] = o
			}
			fp.forged[asn] = m
		}
	}
	return fp
}

func diffFingerprints(t *testing.T, label string, want, got baseFingerprint) {
	t.Helper()
	if want.version != got.version || want.floor != got.floor {
		t.Fatalf("%s: version/floor moved: %d/%d -> %d/%d", label, want.version, want.floor, got.version, got.floor)
	}
	if want.tabLen != got.tabLen || want.tabGen != got.tabGen {
		t.Fatalf("%s: prefix table moved: len %d->%d gen %d->%d", label, want.tabLen, got.tabLen, want.tabGen, got.tabGen)
	}
	if len(want.affected) != len(got.affected) {
		t.Fatalf("%s: affected length %d -> %d", label, len(want.affected), len(got.affected))
	}
	for i := range want.affected {
		if want.affected[i] != got.affected[i] {
			t.Fatalf("%s: affected[%d] %d -> %d", label, i, want.affected[i], got.affected[i])
		}
	}
	for asn := range want.rib {
		if la, lb := len(want.adjIn[asn]), len(got.adjIn[asn]); la != lb {
			t.Fatalf("%s: AS %v adjIn length %d -> %d", label, asn, la, lb)
		}
		for i := range want.adjIn[asn] {
			if want.adjIn[asn][i] != got.adjIn[asn][i] {
				t.Fatalf("%s: AS %v adjIn[%d] changed", label, asn, i)
			}
		}
		for i := range want.rib[asn] {
			if want.rib[asn][i] != got.rib[asn][i] {
				t.Fatalf("%s: AS %v rib[%d] changed: %+v -> %+v", label, asn, i, want.rib[asn][i], got.rib[asn][i])
			}
		}
		for i := range want.spill[asn] {
			if want.spill[asn][i] != got.spill[asn][i] {
				t.Fatalf("%s: AS %v spill[%d] changed", label, asn, i)
			}
		}
		if la, lb := len(want.originated[asn]), len(got.originated[asn]); la != lb {
			t.Fatalf("%s: AS %v originated %d -> %d prefixes", label, asn, la, lb)
		}
		for i := range want.originated[asn] {
			if want.originated[asn][i] != got.originated[asn][i] {
				t.Fatalf("%s: AS %v originated[%d] changed", label, asn, i)
			}
		}
		if want.leaking[asn] != got.leaking[asn] {
			t.Fatalf("%s: AS %v leaking %v -> %v", label, asn, want.leaking[asn], got.leaking[asn])
		}
		if len(want.forged[asn]) != len(got.forged[asn]) {
			t.Fatalf("%s: AS %v forged map changed", label, asn)
		}
	}
}

// originsOf returns the ASNs that originate at least one prefix, sorted.
func originsOf(g *Graph) (asns []inet.ASN, prefixes []netip.Prefix) {
	for _, asn := range sortedASNsIn(g) {
		a := g.AS(asn)
		if len(a.Originated) > 0 {
			asns = append(asns, asn)
			prefixes = append(prefixes, a.Originated...)
		}
	}
	return asns, prefixes
}

// randomWhatIfBatch builds one randomized counterfactual event batch: origin
// hijacks, subprefix hijacks, forged-origin hijacks, leak toggles, policy
// flips and link additions, against the graph's live origins.
func randomWhatIfBatch(g *Graph, rng *rand.Rand) []RouteEvent {
	asns := sortedASNsIn(g)
	origins, prefixes := originsOf(g)
	victim := origins[rng.Intn(len(origins))]
	vp := prefixes[rng.Intn(len(prefixes))]
	attacker := asns[rng.Intn(len(asns))]
	var evs []RouteEvent
	for n := 1 + rng.Intn(3); n > 0; n-- {
		switch rng.Intn(6) {
		case 0: // exact-prefix origin hijack
			evs = append(evs, RouteEvent{Kind: EvAnnounce, AS: attacker, Prefix: vp})
		case 1: // subprefix hijack (interns a new, more specific prefix)
			sub := netip.PrefixFrom(inet.NthAddr(vp, uint32(rng.Intn(200))), 24)
			evs = append(evs, RouteEvent{Kind: EvAnnounce, AS: attacker, Prefix: sub})
		case 2: // forged-origin hijack
			evs = append(evs, RouteEvent{Kind: EvAnnounce, AS: attacker, Prefix: vp, ForgedOrigin: victim})
		case 3: // route leak
			evs = append(evs, RouteEvent{Kind: EvLeakChange, AS: attacker, Leak: rng.Intn(2) == 0})
		case 4: // ROV deployment
			vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: victim, Prefix: vp, MaxLength: vp.Bits()}})
			evs = append(evs, RouteEvent{Kind: EvPolicyChange, AS: asns[rng.Intn(len(asns))], Policy: rovDropPolicy{}, VRPs: vrps})
		case 5: // new adjacency
			a, b := asns[rng.Intn(len(asns))], asns[rng.Intn(len(asns))]
			if a != b {
				evs = append(evs, RouteEvent{Kind: EvLinkChange, AS: a, Peer: b, Rel: Peer})
			}
		}
	}
	return evs
}

// TestOverlayIsolationProperty is the overlay's headline guarantee: any
// randomized sequence of what-if queries — each forking an overlay, applying
// an adversarial event batch, and reading data-plane answers from it — leaves
// the base graph's routing state byte-identical, down to announcement
// pointers and epoch arrays.
func TestOverlayIsolationProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randomHierarchy(seed)
		rng := rand.New(rand.NewSource(seed * 977))
		before := fingerprintGraph(g)
		baseAnswers := collectAnswers(g)
		for q := 0; q < 8; q++ {
			ov := NewOverlay(g)
			if ov.Stale() {
				t.Fatal("fresh overlay reports stale")
			}
			if _, err := ov.ApplyEvents(randomWhatIfBatch(g, rng)); err != nil {
				t.Fatalf("seed %d query %d: %v", seed, q, err)
			}
			// Force data-plane reads through the overlay (LPM walks, path
			// computation) — these must not fault or write shared state.
			collectAnswers(ov.Graph())
		}
		diffFingerprints(t, fmt.Sprintf("seed %d", seed), before, fingerprintGraph(g))
		// The base must still answer identically, not just hold equal bytes.
		after := collectAnswers(g)
		if len(after) != len(baseAnswers) {
			t.Fatalf("seed %d: answer count changed", seed)
		}
		for k, v := range baseAnswers {
			if after[k] != v {
				t.Fatalf("seed %d: base answer %s changed: %v -> %v", seed, k, v, after[k])
			}
		}
	}
}

// collectAnswers reads a deterministic sample of data-plane answers.
func collectAnswers(g *Graph) map[string]inet.ASN {
	out := make(map[string]inet.ASN)
	asns := sortedASNsIn(g)
	_, prefixes := originsOf(g)
	for i, src := range asns {
		for j, p := range prefixes {
			if (i+j)%5 != 0 {
				continue
			}
			dst := inet.NthAddr(p, 1)
			origin, ok := g.OriginOf(src, dst)
			if !ok {
				origin = 0
			}
			out[fmt.Sprintf("%v->%v", src, dst)] = origin
		}
	}
	return out
}

// TestOverlayEqualsCloneAndMutateRebuild: a what-if answer computed on the
// copy-on-write overlay must equal the answer from a from-scratch rebuild —
// an identically-constructed world with the same events applied directly.
func TestOverlayEqualsCloneAndMutateRebuild(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randomHierarchy(seed)
		rng := rand.New(rand.NewSource(seed * 31337))
		batch := randomWhatIfBatch(g, rng)

		ov := NewOverlay(g)
		if _, err := ov.ApplyEvents(batch); err != nil {
			t.Fatalf("overlay apply: %v", err)
		}

		ref := randomHierarchy(seed) // identical build
		if _, err := ref.ApplyEvents(batch); err != nil {
			t.Fatalf("direct apply: %v", err)
		}
		diffWorlds(t, fmt.Sprintf("seed %d", seed), snapshotWorld(ref), snapshotWorld(ov.Graph()))
	}
}

// TestForgedOriginEvadesROV: a plain hijack is dropped by an ROV-deploying
// AS, but the forged-origin variant validates (the wire origin is the ROA's
// ASN) and diverts traffic to the attacker anyway.
func TestForgedOriginEvadesROV(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		g.Link(1, 2, Customer)
		g.Link(1, 3, Customer)
		g.Link(2, 4, Customer) // victim
		g.Link(3, 5, Customer) // attacker
		g.AS(4).Originated = []netip.Prefix{pfx("10.4.0.0/16")}
		vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 4, Prefix: pfx("10.4.0.0/16"), MaxLength: 16}})
		g.AS(2).Policy, g.AS(2).VRPs = rovDropPolicy{}, vrps
		if _, err := g.Converge(); err != nil {
			t.Fatal(err)
		}
		return g
	}
	dst := ip("10.4.0.1")

	// Plain origin hijack: AS 2 validates and drops, so its cone (AS 2
	// itself) keeps routing to the victim.
	g := build()
	if _, err := g.ApplyEvents([]RouteEvent{{Kind: EvAnnounce, AS: 5, Prefix: pfx("10.4.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	if origin, _ := g.OriginOf(2, dst); origin != 4 {
		t.Fatalf("plain hijack: AS 2 traffic went to %v, want victim 4", origin)
	}

	// Forged-origin hijack: the wire path ends in AS 4, validates, and AS 2's
	// path through the attacker ties at equal pref/length — the lower
	// neighbor ASN wins, so use the topology where the forged path is
	// strictly shorter: attacker path [5 4] vs legit [4] from 2's customer.
	// From AS 3 (no ROV), both hijack flavors divert; from AS 2 (ROV), only
	// the forged one can.
	g = build()
	if _, err := g.ApplyEvents([]RouteEvent{{Kind: EvAnnounce, AS: 5, Prefix: pfx("10.4.0.0/16"), ForgedOrigin: 4}}); err != nil {
		t.Fatal(err)
	}
	if origin, _ := g.OriginOf(3, dst); origin != 5 {
		t.Fatalf("forged hijack: AS 3 traffic went to %v, want attacker 5", origin)
	}
	r, ok := g.AS(3).BestRoute(pfx("10.4.0.0/16"))
	if !ok || r.Origin() != 4 {
		t.Fatalf("forged announcement should carry wire origin 4, got %+v", r)
	}
	// The victim's own loop check rejects the forged path.
	if origin, _ := g.OriginOf(4, dst); origin != 4 {
		t.Fatalf("victim lost its own prefix to %v", origin)
	}
}

// TestForgedOriginChangeDirties pins the coalescing rule: re-announcing an
// already-originated prefix with a (new) forged origin must dirty the prefix
// and re-flood, even though the origination set did not change.
func TestForgedOriginChangeDirties(t *testing.T) {
	g := buildChain(t)
	if _, err := g.ApplyEvents([]RouteEvent{{Kind: EvAnnounce, AS: 1, Prefix: pfx("10.9.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	r, _ := g.AS(3).BestRoute(pfx("10.9.0.0/16"))
	if r.Origin() != 1 {
		t.Fatalf("origin = %v, want 1", r.Origin())
	}
	res, err := g.ApplyEvents([]RouteEvent{{Kind: EvAnnounce, AS: 1, Prefix: pfx("10.9.0.0/16"), ForgedOrigin: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyPrefixes == 0 {
		t.Fatal("forged-origin change coalesced to a no-op")
	}
	if r, _ = g.AS(3).BestRoute(pfx("10.9.0.0/16")); r.Origin() != 9 {
		t.Fatalf("wire origin after forge = %v, want 9", r.Origin())
	}
	// Withdraw restores exactly: the origination and the forged mapping go.
	if _, err := g.ApplyEvents([]RouteEvent{{Kind: EvWithdraw, AS: 1, Prefix: pfx("10.9.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.AS(3).BestRoute(pfx("10.9.0.0/16")); ok {
		t.Fatal("route survived withdraw")
	}
	if len(g.AS(1).forged) != 0 {
		t.Fatal("forged mapping survived withdraw")
	}
}

// TestLeakToggleRestoresExactly: leaking on re-exports provider routes to
// everyone; leaking off restores the pre-leak routing state exactly (the
// re-flood rebuilds announcements, so this compares logical routing state —
// full Loc-RIBs and sampled data paths — not arena pointers).
func TestLeakToggleRestoresExactly(t *testing.T) {
	g := randomHierarchy(3)
	before := snapshotWorld(g)
	asns, _ := originsOf(g)
	leaker := asns[0]
	if _, err := g.ApplyEvents([]RouteEvent{{Kind: EvLeakChange, AS: leaker, Leak: true}}); err != nil {
		t.Fatal(err)
	}
	if !g.AS(leaker).Leaking {
		t.Fatal("leak did not arm")
	}
	if _, err := g.ApplyEvents([]RouteEvent{{Kind: EvLeakChange, AS: leaker, Leak: false}}); err != nil {
		t.Fatal(err)
	}
	diffWorlds(t, "leak restore", before, snapshotWorld(g))
}

// TestTopologyWideEventsMoveFloor pins the AffectedEpoch contract for
// destinations no interned prefix covers: link and leak events reroute
// arbitrary destinations, so they must move the floor (and with it the
// NoPrefixID epoch), not just the per-prefix epochs.
func TestTopologyWideEventsMoveFloor(t *testing.T) {
	g := buildChain(t)
	if _, err := g.ApplyEvents([]RouteEvent{{Kind: EvLinkChange, AS: 1, Peer: 9, Rel: Customer}}); err != nil {
		t.Fatal(err)
	}
	if got, want := g.AffectedEpoch(NoPrefixID), g.Version(); got != want {
		t.Fatalf("link change: NoPrefixID epoch %d, want %d", got, want)
	}
	if _, err := g.ApplyEvents([]RouteEvent{{Kind: EvLeakChange, AS: 2, Leak: true}}); err != nil {
		t.Fatal(err)
	}
	if got, want := g.AffectedEpoch(NoPrefixID), g.Version(); got != want {
		t.Fatalf("leak change: NoPrefixID epoch %d, want %d", got, want)
	}
}

// TestOverlayStaleness: converging the base after a fork flips Stale.
func TestOverlayStaleness(t *testing.T) {
	g := buildChain(t)
	ov := NewOverlay(g)
	if ov.Stale() {
		t.Fatal("fresh overlay stale")
	}
	if _, err := g.ApplyEvents([]RouteEvent{{Kind: EvAnnounce, AS: 1, Prefix: pfx("10.8.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	if !ov.Stale() {
		t.Fatal("overlay not stale after base event batch")
	}
}

// TestOverlayMaterializationScopes: a subprefix hijack on an overlay should
// privatize only the cone that imports the new announcement, and a no-op
// fork should privatize nothing.
func TestOverlayMaterializationScopes(t *testing.T) {
	g := randomHierarchy(2)
	ov := NewOverlay(g)
	if n := ov.MaterializedASes(); n != 0 {
		t.Fatalf("fresh overlay materialized %d ASes", n)
	}
	asns, prefixes := originsOf(g)
	sub := netip.PrefixFrom(inet.NthAddr(prefixes[0], 0), 24)
	if _, err := ov.ApplyEvents([]RouteEvent{{Kind: EvAnnounce, AS: asns[len(asns)-1], Prefix: sub}}); err != nil {
		t.Fatal(err)
	}
	n := ov.MaterializedASes()
	if n == 0 {
		t.Fatal("subprefix hijack materialized nothing")
	}
	if n > len(g.ASes) {
		t.Fatalf("materialized %d of %d ASes", n, len(g.ASes))
	}
}
