package bgp

import (
	"math/rand"
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rib"
)

// refTrie builds an internal/rib reference trie from an AS's Loc-RIB.
func refTrie(t *testing.T, a *AS) *rib.Trie[Route] {
	t.Helper()
	tr := rib.NewTrie[Route]()
	for _, r := range a.Routes() {
		if err := tr.Insert(r.Prefix, r); err != nil {
			t.Fatalf("trie insert %v: %v", r.Prefix, err)
		}
	}
	return tr
}

// checkLookupAgainstTrie compares AS.Lookup with the trie reference for dst.
func checkLookupAgainstTrie(t *testing.T, a *AS, tr *rib.Trie[Route], dst netip.Addr) {
	t.Helper()
	gotR, gotOK := a.Lookup(dst)
	wantP, wantR, wantOK := tr.Lookup(dst)
	if gotOK != wantOK {
		t.Fatalf("AS %v Lookup(%v): hit=%v, trie reference says %v", a.ASN, dst, gotOK, wantOK)
	}
	if !gotOK {
		return
	}
	if gotR.Prefix != wantP {
		t.Fatalf("AS %v Lookup(%v): matched %v, trie reference matched %v", a.ASN, dst, gotR.Prefix, wantP)
	}
	if !routesEqual(gotR, wantR) {
		t.Fatalf("AS %v Lookup(%v): route %+v, trie reference %+v", a.ASN, dst, gotR, wantR)
	}
}

// TestLookupAgreesWithTrieReference: the data-plane longest-prefix match over
// the slice-backed Loc-RIB (per-plen key probes against the interned prefix
// table) must agree with the binary-trie reference in internal/rib for every
// address — same hit/miss, same matched prefix, same route — across random
// topologies announcing nested prefixes at many depths, and must keep
// agreeing after DropRoute punches holes in the table.
func TestLookupAgreesWithTrieReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed*7901 + 13))
		g := randomHierarchy(seed)
		asns := g.sortedASNs()

		// Layer nested prefixes onto a few origins: a /12 with /16, /20 and
		// /24 more-specifics, some from different origins — the shape that
		// exercises every probe length in Lookup.
		var probes []netip.Addr
		for i := 0; i < 4; i++ {
			origin := asns[rng.Intn(len(asns))]
			base := netip.PrefixFrom(inet.V4(uint32(64+i)<<24), 12)
			g.AS(origin).Originated = append(g.AS(origin).Originated, base)
			for _, plen := range []int{16, 20, 24} {
				sub := inet.SubnetAt(base, plen, uint32(rng.Intn(1<<(plen-12))))
				who := asns[rng.Intn(len(asns))]
				g.AS(who).Originated = append(g.AS(who).Originated, sub)
				probes = append(probes, sub.Addr(), inet.NthAddr(sub, 1))
			}
			probes = append(probes, base.Addr(), inet.NthAddr(base, 77))
		}
		if _, err := g.Converge(); err != nil {
			t.Fatalf("seed %d: converge: %v", seed, err)
		}
		// Random addresses, covered or not.
		for i := 0; i < 64; i++ {
			probes = append(probes, inet.V4(rng.Uint32()))
		}

		for _, i := range []int{0, len(asns) / 2, len(asns) - 1} {
			a := g.AS(asns[i])
			tr := refTrie(t, a)
			for _, dst := range probes {
				checkLookupAgainstTrie(t, a, tr, dst)
			}

			// DropRoute holes: remove a third of the routes and require the
			// next-less-specific to take over exactly as in the reference.
			routes := a.Routes()
			for _, r := range routes {
				if rng.Float64() < 0.33 {
					a.DropRoute(r.Prefix)
					tr.Remove(r.Prefix)
				}
			}
			for _, dst := range probes {
				checkLookupAgainstTrie(t, a, tr, dst)
			}
		}
	}
}

// TestDefaultScopeFallbackMatchesReference: when the LPM misses (or the hole
// punched by DropRoute makes it miss), the data plane falls back to the
// default route only for destinations inside DefaultScope — and the
// trie-reference miss plus scope containment exactly predicts which.
func TestDefaultScopeFallbackMatchesReference(t *testing.T) {
	g := NewGraph()
	g.AddAS(1)
	g.AddAS(2)
	g.AddAS(3)
	g.Link(1, 2, Customer) // 1 is 2's provider
	g.Link(1, 3, Customer)
	g.AS(3).Originated = []netip.Prefix{netip.PrefixFrom(inet.V4(10<<24), 8)}
	if _, err := g.Converge(); err != nil {
		t.Fatalf("converge: %v", err)
	}

	a := g.AS(2)
	scope := netip.PrefixFrom(inet.V4(192<<24), 8)
	a.DefaultRoute, a.HasDefault = 1, true
	a.DefaultScope = scope
	g.BumpVersion()

	tr := refTrie(t, a)
	inScope := inet.NthAddr(scope, 9)
	outScope := inet.V4(11 << 24)
	covered := inet.V4(10<<24 | 42)

	for _, dst := range []netip.Addr{inScope, outScope, covered} {
		_, _, trieHit := tr.Lookup(dst)
		_, lpmHit := a.Lookup(dst)
		if trieHit != lpmHit {
			t.Fatalf("Lookup(%v)=%v, trie reference %v", dst, lpmHit, trieHit)
		}
		path, delivered := g.DataPath(2, dst)
		switch {
		case trieHit:
			if !delivered {
				t.Fatalf("DataPath(2, %v): covered destination not delivered (path %v)", dst, path)
			}
		case scope.Contains(dst):
			// LPM miss inside the scope: must take the default toward AS 1
			// (which has no route either, so the packet dies there — but the
			// hop must happen).
			if delivered || len(path) < 2 || path[len(path)-1] != 1 {
				t.Fatalf("DataPath(2, %v): expected default-route hop to AS 1, got path=%v delivered=%v", dst, path, delivered)
			}
		default:
			// LPM miss outside the scope: the packet must never leave AS 2.
			if delivered || len(path) > 1 {
				t.Fatalf("DataPath(2, %v): expected unroutable at src, got path=%v delivered=%v", dst, path, delivered)
			}
		}
	}
}
