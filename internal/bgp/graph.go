package bgp

import (
	"fmt"
	"net/netip"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netsec-lab/rovista/internal/inet"
)

// Cold-convergence GC policy: the first Converge of a graph at or above
// coldGCCapMinASes ASes runs with the GC growth factor capped at
// coldGCPercent (see Converge for why). Small worlds — unit tests, focused
// experiments — never touch the process-wide setting.
const (
	coldGCPercent    = 60
	coldGCCapMinASes = 4096
)

// Graph is the AS-level Internet: the set of ASes and their adjacencies.
type Graph struct {
	ASes map[inet.ASN]*AS

	// tab interns every prefix that appears in routing state to a dense
	// PrefixID. It is shared by all member ASes (AddAS wires it in).
	tab *PrefixTable

	// version counts routing-state recomputations (Converge, the event
	// engine, ConvergePrefixes). Consumers that cache derived forwarding
	// state — netsim's data-path cache, for one — compare versions to
	// re-validate. Surgical RIB edits that bypass convergence (AS.DropRoute,
	// direct field mutation without a re-converge) must call BumpVersion
	// explicitly.
	version uint64

	// sortedCache memoizes sortedASNs; AddAS invalidates it. asList and
	// asIndex are the dense mirror (ascending-ASN order): propagation
	// addresses receivers by index, not by ASN map lookups, and indexGen
	// tells per-AS export lists when the indices they hold went stale.
	sortedCache []inet.ASN
	asnsDirty   bool
	asList      []*AS
	asIndex     map[inet.ASN]int32
	indexGen    uint64

	// Reusable propagation state. Each round's pending updates live
	// receiver-grouped in one flat buffer (grouped); counts/starts/fill are
	// the counting-scatter arrays (indexed like asList) and recvs the sorted
	// list of receivers with pending updates. spans locate each receiver's
	// emissions in the per-worker scratch outputs; queue is the seed buffer.
	counts  []int32
	starts  []int32
	fill    []int32
	grouped []update
	// recvs lists the receivers with pending updates this round; recvsNext
	// is the double buffer the serial emission phase fills for the next
	// round while recvs is still being read.
	recvs     []int32
	recvsNext []int32
	spans     []outSpan
	prop      []propScratch
	queue     []update
	// warmed flips after the first full convergence; it gates the cold-run
	// GC growth cap applied while the retained working set first allocates.
	warmed bool

	// pidMark is the dirty-set membership array (stamp-generation scheme:
	// pidMark[id] == pidMarkGen means id is in the current dirty set).
	pidMark    []uint32
	pidMarkGen uint32

	// affected[id] is the routing version at which prefix id — or any
	// interned prefix containing it — last changed; affectedFloor is the
	// version at which everything last changed (full converges, link
	// changes, BumpVersion). Per-prefix forwarding caches compare their
	// entry's version against AffectedEpoch instead of dropping everything
	// on every version bump.
	affected      []uint64
	affectedFloor uint64

	stats ConvergeStats
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{ASes: make(map[inet.ASN]*AS), tab: NewPrefixTable()}
}

// AddAS creates (or returns) the AS with the given number.
func (g *Graph) AddAS(asn inet.ASN) *AS {
	if a, ok := g.ASes[asn]; ok {
		return a
	}
	a := NewAS(asn)
	a.tab = g.tab // share the graph-wide intern table
	g.ASes[asn] = a
	g.asnsDirty = true
	return a
}

// AS returns the AS with the given number, or nil.
func (g *Graph) AS(asn inet.ASN) *AS { return g.ASes[asn] }

// Prefixes returns the graph-wide prefix intern table. Forwarding-state
// caches use it to resolve destination addresses to interned prefix IDs.
func (g *Graph) Prefixes() *PrefixTable { return g.tab }

// Link records a customer-provider or peering adjacency. rel is the
// relationship of b as seen from a: Link(a, b, Customer) means b is a's
// customer (and therefore a is b's provider).
func (g *Graph) Link(a, b inet.ASN, rel Relationship) error {
	if a == b {
		return fmt.Errorf("bgp: self-link on %v", a)
	}
	asA, asB := g.AddAS(a), g.AddAS(b)
	asA.materializeTopo()
	asB.materializeTopo()
	asA.Neighbors[b] = rel
	asB.Neighbors[a] = invertRel(rel)
	// The export fan-out lists of both endpoints are stale now; the
	// generation bump forces a rebuild on the next (possibly incremental)
	// convergence.
	asA.topoGen++
	asB.topoGen++
	return nil
}

// Version returns a counter that increases whenever the graph's routing
// state is recomputed. Forwarding-path caches key on it.
func (g *Graph) Version() uint64 { return g.version }

// BumpVersion marks the routing state as changed without a convergence run.
// Call it after surgical edits (DropRoute, direct default-route toggles not
// followed by a re-converge) so path caches drop their entries. Because the
// edit bypassed the engine, every prefix's affected epoch moves forward.
func (g *Graph) BumpVersion() {
	g.version++
	g.affectedFloor = g.version
}

// AffectedEpoch returns the routing version at which forwarding toward the
// given interned prefix (or any interned prefix containing it, which its
// data paths may traverse) last changed. Cache entries computed at version
// v stay valid while v >= AffectedEpoch(id). NoPrefixID — destinations no
// interned prefix covers — is only affected by non-convergence edits and
// topology-wide changes, which move the floor.
func (g *Graph) AffectedEpoch(id PrefixID) uint64 {
	if id == NoPrefixID {
		return g.affectedFloor
	}
	if int(id) >= len(g.affected) {
		// Interned but not yet converged: stay conservative.
		return g.version
	}
	if e := g.affected[id]; e > g.affectedFloor {
		return e
	}
	return g.affectedFloor
}

// ForwardingEpoch resolves dst to its most-specific interned prefix and
// returns both the prefix's id and the routing version at which forwarding
// toward it last changed (AffectedEpoch). Together the two values form a
// complete validity stamp for any state derived from dst's forwarding paths:
// the paths changed iff the epoch moved, and the destination was repointed
// at different routes iff the id changed (interning a more specific prefix
// can do that without any epoch movement). The measurement-round result
// cache keys on exactly this pair, per destination a pair measurement
// touches.
func (g *Graph) ForwardingEpoch(dst netip.Addr) (PrefixID, uint64) {
	id, ok := g.tab.LPM(dst)
	if !ok {
		id = NoPrefixID
	}
	return id, g.AffectedEpoch(id)
}

// bumpAffected records that the given prefixes changed at the current
// version, propagating to their interned descendants (whose data paths can
// traverse the changed routes).
func (g *Graph) bumpAffected(pids []PrefixID) {
	v := g.version
	n := g.tab.Len()
	if len(g.affected) < n {
		t := make([]uint64, n)
		copy(t, g.affected)
		g.affected = t
	}
	if len(pids)*4 >= n {
		// Dense dirty set: the containment walk below would cost more than
		// bumping everything.
		for i := range g.affected {
			g.affected[i] = v
		}
		return
	}
	for _, id := range pids {
		if int(id) >= n {
			continue
		}
		g.affected[id] = v
		px := g.tab.Prefix(id)
		for j := 0; j < n; j++ {
			if g.affected[j] == v {
				continue
			}
			q := g.tab.Prefix(PrefixID(j))
			if px.Bits() <= q.Bits() && px.Contains(q.Addr()) {
				g.affected[j] = v
			}
		}
	}
}

// bumpAllAffected marks every prefix (and the uncovered-destination class)
// as changed at the current version.
func (g *Graph) bumpAllAffected() {
	n := g.tab.Len()
	if len(g.affected) < n {
		g.affected = make([]uint64, n)
	}
	for i := range g.affected {
		g.affected[i] = g.version
	}
	g.affectedFloor = g.version
}

// update is one in-flight announcement during convergence. The Announcement
// is shared across the sender's fan-out and treated as immutable; toIdx is
// the receiver's dense index and rel the receiver's relationship to the
// sender, both precomputed in the sender's export targets. The sender is not
// stored: every emitted announcement prepends its sender, so ann.Path[0] IS
// the sender — keeping the struct at 16 bytes, which matters because the
// peak-round update stream is the first convergence's dominant transient.
type update struct {
	ann   *Announcement
	toIdx int32
	rel   Relationship
}

// outSpan locates one receiver's changed prefix IDs inside a worker's
// changed buffer; the serial emission phase walks spans in receiver order,
// so the next round's grouping is independent of worker count and
// scheduling.
type outSpan struct {
	w          int32
	start, end int32
}

// propScratch is one worker's reusable convergence state. Workers are
// assigned distinct entries, so no locking is needed.
type propScratch struct {
	// stamp/stampGen dedupe changed prefix IDs per receiver without a map.
	stamp    []uint32
	stampGen uint32
	// changed accumulates the round's changed prefix IDs across every
	// receiver this worker processed; outSpan regions index into it.
	changed []PrefixID
	arena   annArena
	touched int
}

// maxRounds caps convergence; Gao-Rexford-compliant policies converge far
// sooner, so hitting the cap indicates a policy bug.
const maxRounds = 256

// internAll interns every prefix that can appear in routing or forwarding
// state — originated prefixes and scoped default routes — before any AS
// sizes its ID-indexed tables. This must complete before the parallel
// propagation starts: workers index per-AS slices by ID without growth.
func (g *Graph) internAll(asns []inet.ASN) {
	for _, asn := range asns {
		a := g.ASes[asn]
		for _, p := range a.Originated {
			g.tab.Intern(p)
		}
		if a.HasDefault && a.DefaultScope.IsValid() {
			g.tab.Intern(a.DefaultScope)
		}
	}
}

// ensureProp sizes the propagation scratch for the current worker count and
// intern-table size (serial phase only).
func (g *Graph) ensureProp() {
	w := runtime.GOMAXPROCS(0)
	if len(g.prop) < w {
		t := make([]propScratch, w)
		copy(t, g.prop)
		g.prop = t
	}
	need := g.tab.Len()
	for i := range g.prop {
		if len(g.prop[i].stamp) < need {
			t := make([]uint32, need)
			copy(t, g.prop[i].stamp)
			g.prop[i].stamp = t
		}
	}
}

// Converge recomputes the global routing state from scratch: every AS
// re-originates its prefixes and announcements propagate until quiescence.
// It returns the number of rounds taken. Converge shares the propagation
// engine with the event path — it is "apply every origination" with the
// whole prefix set dirty.
func (g *Graph) Converge() (int, error) {
	g.version++
	// The first convergence at scale allocates the engine's entire retained
	// working set — dense per-AS tables, the spill pool, announcement arenas,
	// the grouped update stream. While that ramp is in flight the default GC
	// growth factor would stack the transient flood garbage on top of a heap
	// goal computed from the growing live set, roughly doubling peak RSS.
	// Cap the growth factor for the cold run only; steady-state converges
	// refill retained memory with almost no fresh allocation, so they run at
	// the ambient setting and pay no extra mark cost.
	if !g.warmed {
		g.warmed = true
		if len(g.ASes) >= coldGCCapMinASes {
			if prev := debug.SetGCPercent(coldGCPercent); prev < coldGCPercent && prev > 0 {
				debug.SetGCPercent(prev)
			} else {
				defer debug.SetGCPercent(prev)
			}
		}
	}
	asns := g.sortedASNs()
	g.internAll(asns)
	for _, a := range g.asList {
		a.resetRoutingState(g)
	}
	g.ensureProp()
	queue := g.seedQueue(nil, 0)
	rounds, _, err := g.propagate(queue)
	g.bumpAllAffected()
	g.stats.FullConverges.Add(1)
	g.stats.Rounds.Add(uint64(rounds))
	return rounds, err
}

// ConvergePrefixes incrementally re-converges only the given prefixes,
// leaving all other routing state untouched. BGP routes for distinct
// prefixes never interact, so after any change that can only affect a known
// prefix set (a new hijack, a ROA appearing, an AS toggling its ROV policy —
// which only alters import decisions for RPKI-invalid announcements) this is
// equivalent to a full Converge at a fraction of the cost. It is a thin
// compatibility wrapper over the event engine's dirty-set core; new callers
// should prefer ApplyEvents, which also coalesces and scopes the dirty set
// itself.
//
// Converge must have run once before the first incremental call.
func (g *Graph) ConvergePrefixes(prefixes []netip.Prefix) (int, error) {
	if len(prefixes) == 0 {
		return 0, nil
	}
	start := time.Now()
	pids := make([]PrefixID, 0, len(prefixes))
	for _, p := range prefixes {
		pids = append(pids, g.tab.Intern(p))
	}
	rounds, touched, err := g.convergeDirty(pids)
	g.stats.IncrementalConverges.Add(1)
	g.stats.DirtyPrefixes.Add(uint64(len(pids)))
	g.stats.Rounds.Add(uint64(rounds))
	g.stats.ASesTouched.Add(uint64(touched))
	g.stats.observe(time.Since(start))
	return rounds, err
}

// convergeDirty is the dirty-set scheduler at the heart of the engine: it
// resets exactly the dirty prefixes in every AS, reseeds their remaining
// originations, and floods to quiescence. All entry points — Converge (all
// prefixes dirty), ConvergePrefixes, ApplyEvents — reduce to it, so there
// is one propagation engine, not two.
func (g *Graph) convergeDirty(pids []PrefixID) (rounds, touched int, err error) {
	if len(pids) == 0 {
		return 0, 0, nil
	}
	g.version++
	g.sortedASNs()
	g.ensureProp()
	gen := g.markPids(pids)
	for _, a := range g.asList {
		a.resetPrefixes(g, pids, g.pidMark, gen)
	}
	queue := g.seedQueue(g.pidMark, gen)
	rounds, touched, err = g.propagate(queue)
	g.bumpAffected(pids)
	return rounds, touched, err
}

// markPids stamps the dirty set into the membership array and returns the
// generation to test against.
func (g *Graph) markPids(pids []PrefixID) uint32 {
	need := g.tab.Len()
	if len(g.pidMark) < need {
		g.pidMark = make([]uint32, need)
		g.pidMarkGen = 0
	}
	g.pidMarkGen++
	if g.pidMarkGen == 0 { // generation wrap: stale stamps could collide
		clear(g.pidMark)
		g.pidMarkGen = 1
	}
	for _, id := range pids {
		if int(id) < len(g.pidMark) {
			g.pidMark[id] = g.pidMarkGen
		}
	}
	return g.pidMarkGen
}

// seedQueue emits the origination announcements for every dirty prefix (all
// originated prefixes when mark is nil), in ascending-ASN order so the
// first round is deterministic.
func (g *Graph) seedQueue(mark []uint32, gen uint32) []update {
	ar := &g.prop[0].arena
	queue := g.queue[:0]
	for _, a := range g.asList {
		for _, p := range a.Originated {
			id, ok := g.tab.IDOf(p)
			if !ok {
				continue
			}
			if mark != nil && (int(id) >= len(mark) || mark[id] != gen) {
				continue
			}
			l := a.bestLoc(id)
			if l == nil || !l.isSelf() {
				continue
			}
			targets := a.exportTargets(l)
			if len(targets) == 0 {
				continue
			}
			// Self routes seed with an empty tail; a forged-origin hijack
			// instead seeds [self, victim] so receivers see the victim as the
			// wire origin (RFC 6811 validates it) while traffic terminates
			// here. The victim itself rejects the path via its loop check.
			rest := l.ann.Path
			if f := a.forgedFor(l.ann.Prefix); f != 0 && f != a.ASN {
				rest = []inet.ASN{f}
			}
			ann := ar.announcement(l.ann.Prefix, a.ASN, rest)
			for _, t := range targets {
				queue = append(queue, update{ann: ann, toIdx: t.idx, rel: t.rel})
			}
		}
	}
	return queue
}

// propagate floods queued updates to quiescence. Each round's pending
// updates live receiver-grouped in ONE flat buffer (g.grouped): workers
// claim receivers off an atomic cursor, import their groups, and record only
// the changed prefix IDs (per-worker buffers plus per-receiver spans); a
// serial emission phase then walks the spans in receiver order, counts each
// emission's fan-out per target, lays out next-round regions in ascending
// receiver order, and writes the new updates straight into g.grouped —
// which this round's imports have fully consumed, so it is overwritten in
// place. The update stream therefore exists exactly once at any moment
// (there is no per-worker output buffer and no separate merged queue),
// which is what bounds the first convergence's peak RSS at 74k ASes. The
// serial walk's order is fixed, so the grouping — and with it every
// tiebreak sequence — is bit-identical at any worker count while allocating
// nothing per round in steady state. touched counts receivers whose Loc-RIB
// changed at least once.
func (g *Graph) propagate(queue []update) (int, int, error) {
	nAS := len(g.asList)
	if len(g.counts) < nAS {
		t := make([]int32, nAS)
		copy(t, g.counts)
		g.counts = t
		g.starts = make([]int32, nAS)
		g.fill = make([]int32, nAS)
	}
	maxWorkers := runtime.GOMAXPROCS(0)
	for i := range g.prop {
		g.prop[i].touched = 0
	}
	totalTouched := 0
	finish := func(rounds int, err error) (int, int, error) {
		for i := range g.prop {
			totalTouched += g.prop[i].touched
		}
		for _, idx := range g.recvs { // restore the counts-all-zero invariant
			g.counts[idx] = 0
		}
		g.recvs = g.recvs[:0]
		return rounds, totalTouched, err
	}

	// Group the seed by receiver, then hand its buffer back for the next
	// convergence. Updates whose target is not in the dense index are
	// dropped here, exactly as the per-round scatter drops them.
	for _, u := range queue {
		if u.toIdx >= 0 && int(u.toIdx) < nAS {
			g.counts[u.toIdx]++
		}
	}
	g.recvs = collectRecvs(g.recvs[:0], g.counts[:nAS])
	total := g.layoutGroups(g.recvs)
	for _, u := range queue {
		if u.toIdx >= 0 && int(u.toIdx) < nAS {
			g.grouped[g.fill[u.toIdx]] = u
			g.fill[u.toIdx]++
		}
	}
	g.queue = queue[:0]

	for round := 1; round <= maxRounds; round++ {
		if total == 0 {
			return finish(round-1, nil)
		}
		recvs := g.recvs
		if cap(g.spans) < len(recvs) {
			g.spans = make([]outSpan, len(recvs))
		}
		spans := g.spans[:len(recvs)]
		workers := maxWorkers
		if workers > len(recvs) {
			workers = len(recvs)
		}
		for w := 0; w < workers; w++ {
			g.prop[w].changed = g.prop[w].changed[:0]
		}
		var wg sync.WaitGroup
		var cursor atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				sc := &g.prop[wid]
				for {
					i := int(cursor.Add(1) - 1)
					if i >= len(recvs) {
						return
					}
					idx := recvs[i]
					a := g.asList[idx]
					sc.stampGen++
					if sc.stampGen == 0 {
						clear(sc.stamp)
						sc.stampGen = 1
					}
					start := int32(len(sc.changed))
					for _, u := range g.grouped[g.starts[idx] : g.starts[idx]+g.counts[idx]] {
						if id, ch := a.importAnnRel(u.ann.Path[0], u.rel, u.ann); ch {
							if sc.stamp[id] != sc.stampGen {
								sc.stamp[id] = sc.stampGen
								sc.changed = append(sc.changed, id)
							}
						}
					}
					if int32(len(sc.changed)) > start {
						sc.touched++
					}
					spans[i] = outSpan{w: int32(wid), start: start, end: int32(len(sc.changed))}
				}
			}(w)
		}
		wg.Wait()

		// Serial emission: walk the changed spans in receiver order twice —
		// once counting each emission's fan-out per target, then (after the
		// layout) placing the new updates straight into g.grouped, which
		// this round's imports have fully consumed. A receiver's Loc-RIB is
		// only written while that receiver imports, so reading bestLoc here
		// sees exactly the state the worker phase left behind.
		for _, idx := range recvs {
			g.counts[idx] = 0
		}
		for i := range spans {
			sp := spans[i]
			sender := g.asList[recvs[i]]
			for _, id := range g.prop[sp.w].changed[sp.start:sp.end] {
				l := sender.bestLoc(id)
				if l == nil {
					continue
				}
				for _, t := range sender.exportTargets(l) {
					if t.idx >= 0 && int(t.idx) < nAS {
						g.counts[t.idx]++
					}
				}
			}
		}
		next := collectRecvs(g.recvsNext[:0], g.counts[:nAS])
		total = g.layoutGroups(next)
		ar := &g.prop[0].arena
		for i := range spans {
			sp := spans[i]
			sender := g.asList[recvs[i]]
			for _, id := range g.prop[sp.w].changed[sp.start:sp.end] {
				l := sender.bestLoc(id)
				if l == nil {
					continue
				}
				var ann *Announcement
				for _, t := range sender.exportTargets(l) {
					if t.idx >= 0 && int(t.idx) < nAS {
						if ann == nil {
							ann = ar.announcement(l.ann.Prefix, sender.ASN, l.ann.Path)
						}
						g.grouped[g.fill[t.idx]] = update{ann: ann, toIdx: t.idx, rel: t.rel}
						g.fill[t.idx]++
					}
				}
			}
		}
		g.recvsNext = recvs[:0]
		g.recvs = next
	}
	return finish(maxRounds, fmt.Errorf("bgp: convergence did not quiesce in %d rounds", maxRounds))
}

// layoutGroups assigns each pending receiver (recvs, sorted) a contiguous
// region of g.grouped from the counted group sizes, primes the fill cursors,
// and sizes the buffer. Every slot is written by the subsequent place pass,
// so growth never copies.
func (g *Graph) layoutGroups(recvs []int32) int {
	off := int32(0)
	for _, idx := range recvs {
		g.starts[idx] = off
		g.fill[idx] = off
		off += g.counts[idx]
	}
	if cap(g.grouped) < int(off) {
		g.grouped = make([]update, off)
	} else {
		g.grouped = g.grouped[:off]
	}
	return int(off)
}

// collectRecvs scans the per-AS pending-update counts and appends every
// dense index with a non-zero count to dst, in ascending order. A linear
// walk of the counts array is cheaper than sorting an appended receiver
// list: it is one pass over nAS int32s per round, branch-free in the hot
// counting loops, and yields the sorted order for free.
func collectRecvs(dst []int32, counts []int32) []int32 {
	for idx, c := range counts {
		if c > 0 {
			dst = append(dst, int32(idx))
		}
	}
	return dst
}

// sortedASNs returns the graph's ASNs in ascending order, rebuilding the
// dense index (asList, asIndex) when membership changed. The result is
// cached — membership changes only through AddAS, which invalidates it —
// and callers must treat it as read-only.
func (g *Graph) sortedASNs() []inet.ASN {
	if !g.asnsDirty && g.sortedCache != nil {
		return g.sortedCache
	}
	out := g.sortedCache[:0]
	for asn := range g.ASes {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	g.sortedCache = out
	g.asList = g.asList[:0]
	if g.asIndex == nil {
		g.asIndex = make(map[inet.ASN]int32, len(out))
	} else {
		clear(g.asIndex)
	}
	for i, asn := range out {
		g.asList = append(g.asList, g.ASes[asn])
		g.asIndex[asn] = int32(i)
	}
	g.indexGen++ // export lists holding old indices are stale now
	g.asnsDirty = false
	return out
}

// indexOf resolves an ASN to its dense index, -1 if absent.
func (g *Graph) indexOf(asn inet.ASN) int32 {
	if i, ok := g.asIndex[asn]; ok {
		return i
	}
	return -1
}

// maxDataPathHops bounds data-plane path computation against loops that can
// arise from default routes.
const maxDataPathHops = 64

// DataPath computes the AS-level forwarding path from src toward dst using
// each hop's longest-prefix match (falling back to the hop's default route).
// delivered reports whether the final AS originates a prefix covering dst.
func (g *Graph) DataPath(src inet.ASN, dst netip.Addr) (path []inet.ASN, delivered bool) {
	cur := src
	visited := make(map[inet.ASN]bool)
	for hop := 0; hop < maxDataPathHops; hop++ {
		a := g.ASes[cur]
		if a == nil {
			return path, false
		}
		path = append(path, cur)
		if a.OriginatesCovering(dst) {
			return path, true
		}
		if visited[cur] {
			return path, false // forwarding loop
		}
		visited[cur] = true
		next, ok := a.Lookup(dst)
		switch {
		case ok && next.selfOrigin:
			// Originated prefix but not covering dst was handled above;
			// a self route here means dst is in our space yet unreachable.
			return path, false
		case ok:
			cur = next.LearnedFrom
		case a.HasDefault && (!a.DefaultScope.IsValid() || a.DefaultScope.Contains(dst)):
			cur = a.DefaultRoute
		default:
			return path, false
		}
	}
	return path, false
}

// Reachable reports whether packets from src reach an AS originating a
// prefix that covers dst.
func (g *Graph) Reachable(src inet.ASN, dst netip.Addr) bool {
	_, ok := g.DataPath(src, dst)
	return ok
}

// OriginOf returns the AS that would receive traffic for dst sent from src
// (the last hop of the data path), which under hijacks may differ from the
// legitimate origin.
func (g *Graph) OriginOf(src inet.ASN, dst netip.Addr) (inet.ASN, bool) {
	path, ok := g.DataPath(src, dst)
	if !ok || len(path) == 0 {
		return 0, false
	}
	return path[len(path)-1], true
}
