package bgp

import (
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/netsec-lab/rovista/internal/inet"
)

// Graph is the AS-level Internet: the set of ASes and their adjacencies.
type Graph struct {
	ASes map[inet.ASN]*AS

	// tab interns every prefix that appears in routing state to a dense
	// PrefixID. It is shared by all member ASes (AddAS wires it in).
	tab *PrefixTable

	// version counts routing-state recomputations (Converge and
	// ConvergePrefixes). Consumers that cache derived forwarding state —
	// netsim's data-path cache, for one — compare versions to invalidate.
	// Surgical RIB edits that bypass convergence (AS.DropRoute, direct field
	// mutation without a re-converge) must call BumpVersion explicitly.
	version uint64

	// sortedCache memoizes sortedASNs; AddAS invalidates it. Convergence
	// (full and incremental) walks the AS list in sorted order every call,
	// and re-sorting tens of thousands of ASNs per measurement round was
	// pure overhead once the membership stopped changing.
	sortedCache []inet.ASN
	asnsDirty   bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{ASes: make(map[inet.ASN]*AS), tab: NewPrefixTable()}
}

// AddAS creates (or returns) the AS with the given number.
func (g *Graph) AddAS(asn inet.ASN) *AS {
	if a, ok := g.ASes[asn]; ok {
		return a
	}
	a := NewAS(asn)
	a.tab = g.tab // share the graph-wide intern table
	g.ASes[asn] = a
	g.asnsDirty = true
	return a
}

// AS returns the AS with the given number, or nil.
func (g *Graph) AS(asn inet.ASN) *AS { return g.ASes[asn] }

// Prefixes returns the graph-wide prefix intern table. Forwarding-state
// caches use it to resolve destination addresses to interned prefix IDs.
func (g *Graph) Prefixes() *PrefixTable { return g.tab }

// Link records a customer-provider or peering adjacency. rel is the
// relationship of b as seen from a: Link(a, b, Customer) means b is a's
// customer (and therefore a is b's provider).
func (g *Graph) Link(a, b inet.ASN, rel Relationship) error {
	if a == b {
		return fmt.Errorf("bgp: self-link on %v", a)
	}
	asA, asB := g.AddAS(a), g.AddAS(b)
	asA.Neighbors[b] = rel
	switch rel {
	case Customer:
		asB.Neighbors[a] = Provider
	case Provider:
		asB.Neighbors[a] = Customer
	default:
		asB.Neighbors[a] = Peer
	}
	// The export fan-out lists of both endpoints are stale now; the
	// generation bump forces a rebuild on the next (possibly incremental)
	// convergence.
	asA.topoGen++
	asB.topoGen++
	return nil
}

// Version returns a counter that increases whenever the graph's routing
// state is recomputed. Forwarding-path caches key on it.
func (g *Graph) Version() uint64 { return g.version }

// BumpVersion marks the routing state as changed without a convergence run.
// Call it after surgical edits (DropRoute, direct default-route toggles not
// followed by a re-converge) so path caches drop their entries.
func (g *Graph) BumpVersion() { g.version++ }

// update is one in-flight announcement during convergence. The Announcement
// is shared across the sender's fan-out and treated as immutable.
type update struct {
	to   inet.ASN
	from inet.ASN
	ann  *Announcement
}

// maxRounds caps convergence; Gao-Rexford-compliant policies converge far
// sooner, so hitting the cap indicates a policy bug.
const maxRounds = 256

// internAll interns every prefix that can appear in routing or forwarding
// state — originated prefixes and scoped default routes — before any AS
// sizes its ID-indexed tables. This must complete before the parallel
// propagation starts: workers index per-AS slices by ID without growth.
func (g *Graph) internAll(asns []inet.ASN) {
	for _, asn := range asns {
		a := g.ASes[asn]
		for _, p := range a.Originated {
			g.tab.Intern(p)
		}
		if a.HasDefault && a.DefaultScope.IsValid() {
			g.tab.Intern(a.DefaultScope)
		}
	}
}

// Converge recomputes the global routing state from scratch: every AS
// re-originates its prefixes and announcements propagate until quiescence.
// It returns the number of rounds taken.
func (g *Graph) Converge() (int, error) {
	g.version++
	asns := g.sortedASNs()
	g.internAll(asns)
	for _, asn := range asns {
		g.ASes[asn].resetRoutingState()
	}
	var queue []update
	for _, asn := range asns {
		a := g.ASes[asn]
		for _, p := range a.Originated {
			id, _ := g.tab.IDOf(p)
			l := a.bestLoc(id)
			if l == nil {
				continue
			}
			ann := a.announcementFor(l)
			for _, nbr := range a.exportTargets(l) {
				queue = append(queue, update{to: nbr, from: asn, ann: ann})
			}
		}
	}
	return g.propagate(queue)
}

// ConvergePrefixes incrementally re-converges only the given prefixes,
// leaving all other routing state untouched. BGP routes for distinct
// prefixes never interact, so after any change that can only affect a known
// prefix set (a new hijack, a ROA appearing, an AS toggling its ROV policy —
// which only alters import decisions for RPKI-invalid announcements) this is
// equivalent to a full Converge at a fraction of the cost. The paper's
// longitudinal engine leans on this: per-snapshot changes touch only the
// invalid / test prefixes.
//
// Converge must have run once before the first incremental call.
func (g *Graph) ConvergePrefixes(prefixes []netip.Prefix) (int, error) {
	if len(prefixes) == 0 {
		return 0, nil
	}
	g.version++
	set := make(map[PrefixID]bool, len(prefixes))
	for _, p := range prefixes {
		set[g.tab.Intern(p)] = true
	}
	asns := g.sortedASNs()
	for _, asn := range asns {
		g.ASes[asn].resetPrefixes(set)
	}
	var queue []update
	for _, asn := range asns {
		a := g.ASes[asn]
		for _, p := range a.Originated {
			id, ok := g.tab.IDOf(p)
			if !ok || !set[id] {
				continue
			}
			l := a.bestLoc(id)
			if l == nil {
				continue
			}
			ann := a.announcementFor(l)
			for _, nbr := range a.exportTargets(l) {
				queue = append(queue, update{to: nbr, from: asn, ann: ann})
			}
		}
	}
	return g.propagate(queue)
}

// propagate floods queued updates to quiescence. The grouping map, receiver
// list, and per-worker scratch state are allocated once and reused across
// rounds: convergence runs tens of rounds over the same AS population, and
// rebuilding those structures per round dominated convergence garbage.
func (g *Graph) propagate(queue []update) (int, error) {
	byRecv := make(map[inet.ASN][]update, len(g.ASes))
	var recvs []inet.ASN
	var outs [][]update
	maxWorkers := runtime.GOMAXPROCS(0)
	scratch := make([]propScratch, maxWorkers)

	for round := 1; round <= maxRounds; round++ {
		if len(queue) == 0 {
			return round - 1, nil
		}
		// Group this round's updates by receiver. Receivers only mutate
		// their own routing state, so they are processed in parallel; the
		// per-receiver outputs are merged in deterministic receiver order.
		// Buckets keep their backing arrays between rounds (truncated to
		// zero length); recvs is rebuilt from the non-empty buckets.
		for r, b := range byRecv {
			byRecv[r] = b[:0]
		}
		for _, u := range queue {
			byRecv[u.to] = append(byRecv[u.to], u)
		}
		recvs = recvs[:0]
		for r, b := range byRecv {
			if len(b) > 0 {
				recvs = append(recvs, r)
			}
		}
		sort.Slice(recvs, func(i, j int) bool { return recvs[i] < recvs[j] })

		if cap(outs) < len(recvs) {
			outs = make([][]update, len(recvs))
		} else {
			outs = outs[:len(recvs)]
			for i := range outs {
				outs[i] = nil
			}
		}
		workers := maxWorkers
		if workers > len(recvs) {
			workers = len(recvs)
		}
		var wg sync.WaitGroup
		var cursor atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sc *propScratch) {
				defer wg.Done()
				if sc.seen == nil {
					sc.seen = make(map[PrefixID]bool)
				}
				for {
					i := int(cursor.Add(1) - 1)
					if i >= len(recvs) {
						return
					}
					recv := recvs[i]
					a := g.ASes[recv]
					if a == nil {
						continue
					}
					changed := sc.changed[:0]
					clear(sc.seen)
					for _, u := range byRecv[recv] {
						if id, ch := a.importAnn(u.from, u.ann); ch {
							if !sc.seen[id] {
								sc.seen[id] = true
								changed = append(changed, id)
							}
						}
					}
					var out []update
					for _, id := range changed {
						l := a.bestLoc(id)
						if l == nil {
							continue
						}
						ann := a.announcementFor(l)
						for _, nbr := range a.exportTargets(l) {
							out = append(out, update{to: nbr, from: recv, ann: ann})
						}
					}
					sc.changed = changed[:0]
					outs[i] = out
				}
			}(&scratch[w])
		}
		wg.Wait()

		total := 0
		for _, o := range outs {
			total += len(o)
		}
		next := queue[:0]
		if cap(next) < total {
			next = make([]update, 0, total)
		}
		for _, o := range outs {
			next = append(next, o...)
		}
		queue = next
	}
	return maxRounds, fmt.Errorf("bgp: convergence did not quiesce in %d rounds", maxRounds)
}

// propScratch is one worker's reusable convergence state. Workers are
// assigned distinct entries, so no locking is needed.
type propScratch struct {
	seen    map[PrefixID]bool
	changed []PrefixID
}

// sortedASNs returns the graph's ASNs in ascending order. The result is
// cached — membership changes only through AddAS, which invalidates it —
// and callers must treat it as read-only.
func (g *Graph) sortedASNs() []inet.ASN {
	if !g.asnsDirty && g.sortedCache != nil {
		return g.sortedCache
	}
	out := g.sortedCache[:0]
	for asn := range g.ASes {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	g.sortedCache = out
	g.asnsDirty = false
	return out
}

// maxDataPathHops bounds data-plane path computation against loops that can
// arise from default routes.
const maxDataPathHops = 64

// DataPath computes the AS-level forwarding path from src toward dst using
// each hop's longest-prefix match (falling back to the hop's default route).
// delivered reports whether the final AS originates a prefix covering dst.
func (g *Graph) DataPath(src inet.ASN, dst netip.Addr) (path []inet.ASN, delivered bool) {
	cur := src
	visited := make(map[inet.ASN]bool)
	for hop := 0; hop < maxDataPathHops; hop++ {
		a := g.ASes[cur]
		if a == nil {
			return path, false
		}
		path = append(path, cur)
		if a.OriginatesCovering(dst) {
			return path, true
		}
		if visited[cur] {
			return path, false // forwarding loop
		}
		visited[cur] = true
		next, ok := a.Lookup(dst)
		switch {
		case ok && next.selfOrigin:
			// Originated prefix but not covering dst was handled above;
			// a self route here means dst is in our space yet unreachable.
			return path, false
		case ok:
			cur = next.LearnedFrom
		case a.HasDefault && (!a.DefaultScope.IsValid() || a.DefaultScope.Contains(dst)):
			cur = a.DefaultRoute
		default:
			return path, false
		}
	}
	return path, false
}

// Reachable reports whether packets from src reach an AS originating a
// prefix that covers dst.
func (g *Graph) Reachable(src inet.ASN, dst netip.Addr) bool {
	_, ok := g.DataPath(src, dst)
	return ok
}

// OriginOf returns the AS that would receive traffic for dst sent from src
// (the last hop of the data path), which under hijacks may differ from the
// legitimate origin.
func (g *Graph) OriginOf(src inet.ASN, dst netip.Addr) (inet.ASN, bool) {
	path, ok := g.DataPath(src, dst)
	if !ok || len(path) == 0 {
		return 0, false
	}
	return path[len(path)-1], true
}
