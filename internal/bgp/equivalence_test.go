package bgp

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// The incremental/full equivalence property: any sequence of RouteEvent
// batches applied to a converged graph must leave routing state bit-identical
// — Loc-RIBs including paths, preferences and recorded validity, and the data
// paths derived from them — to a from-scratch rebuild of the same final
// world, at any worker count. This is the contract that lets every consumer
// (day scheduler, hijack injector, fault flaps, the serving daemon) ride the
// event path without ever re-running a full convergence.

// scriptOp is one generated mutation step: the event batch fed to the
// incremental graph, plus the out-of-band VRP view swap (the scheduler
// refreshes validating ASes' views directly and announces the delta as an
// EvROAChange, so the script reproduces that calling convention).
type scriptOp struct {
	evs  []RouteEvent
	vrps *rpki.VRPSet // when non-nil: new view for every AS with a policy
}

// genScript builds a deterministic random mutation script against the given
// converged hierarchy. It tracks the current global VRP view so policy-on
// events hand out the view a real scheduler would.
func genScript(g *Graph, seed int64, n int) []scriptOp {
	rng := rand.New(rand.NewSource(seed))
	asns := sortedASNsIn(g)

	// Prefix pool: everything originated at build time plus fresh space for
	// announces, so scripts mix MOAS conflicts, hijacks and novel prefixes.
	var pool []netip.Prefix
	for _, asn := range asns {
		pool = append(pool, g.AS(asn).Originated...)
	}
	for i := 0; i < 8; i++ {
		pool = append(pool, netip.PrefixFrom(inet.V4(uint32(200+i)<<24), 16))
	}

	mkVRPs := func() ([]rpki.VRP, *rpki.VRPSet) {
		var vrps []rpki.VRP
		for _, p := range pool {
			if rng.Float64() < 0.3 {
				vrps = append(vrps, rpki.VRP{
					ASN:       asns[rng.Intn(len(asns))],
					Prefix:    p,
					MaxLength: p.Bits(),
				})
			}
		}
		return vrps, rpki.NewVRPSet(vrps)
	}
	curList, curSet := mkVRPs()

	nextStub := inet.ASN(20000)
	var script []scriptOp
	for len(script) < n {
		asn := asns[rng.Intn(len(asns))]
		p := pool[rng.Intn(len(pool))]
		switch rng.Intn(8) {
		case 0, 1: // origination change
			kind := EvAnnounce
			if rng.Intn(2) == 0 {
				kind = EvWithdraw
			}
			script = append(script, scriptOp{evs: []RouteEvent{{Kind: kind, AS: asn, Prefix: p}}})
		case 2: // coalescing flap: withdraw + re-announce in one batch
			script = append(script, scriptOp{evs: []RouteEvent{
				{Kind: EvWithdraw, AS: asn, Prefix: p},
				{Kind: EvAnnounce, AS: asn, Prefix: p},
			}})
		case 3: // mixed batch: several independent origination events
			b := scriptOp{}
			for k := 0; k < 2+rng.Intn(3); k++ {
				kind := EvAnnounce
				if rng.Intn(2) == 0 {
					kind = EvWithdraw
				}
				b.evs = append(b.evs, RouteEvent{
					Kind: kind, AS: asns[rng.Intn(len(asns))], Prefix: pool[rng.Intn(len(pool))],
				})
			}
			script = append(script, b)
		case 4: // ROV deployment
			script = append(script, scriptOp{evs: []RouteEvent{{
				Kind: EvPolicyChange, AS: asn, Policy: rovDropPolicy{}, VRPs: curSet,
			}}})
		case 5: // ROV rollback
			script = append(script, scriptOp{evs: []RouteEvent{{Kind: EvPolicyChange, AS: asn}}})
		case 6: // ROA churn: swap every validating AS's view, announce the diff
			newList, newSet := mkVRPs()
			changed := map[netip.Prefix]bool{}
			for _, v := range curList {
				changed[v.Prefix] = true
			}
			for _, v := range newList {
				changed[v.Prefix] = true
			}
			var diff []netip.Prefix
			for p := range changed {
				diff = append(diff, p)
			}
			sort.Slice(diff, func(i, j int) bool { return diff[i].String() < diff[j].String() })
			curList, curSet = newList, newSet
			script = append(script, scriptOp{
				evs:  []RouteEvent{{Kind: EvROAChange, Prefixes: diff}},
				vrps: newSet,
			})
		case 7: // topology growth: a stub joins and announces fresh space
			stub := nextStub
			nextStub++
			sp := netip.PrefixFrom(inet.V4(uint32(stub)<<8), 24)
			script = append(script, scriptOp{evs: []RouteEvent{
				{Kind: EvLinkChange, AS: asn, Peer: stub, Rel: Customer},
				{Kind: EvAnnounce, AS: stub, Prefix: sp},
			}})
		}
	}
	return script
}

// applyIncremental replays one op through the event engine.
func applyIncremental(t *testing.T, g *Graph, op scriptOp) {
	t.Helper()
	swapViews(g, op.vrps)
	if _, err := g.ApplyEvents(op.evs); err != nil {
		t.Fatalf("ApplyEvents(%+v): %v", op.evs, err)
	}
}

// applyDirect replays one op as raw mutations, no convergence: the reference
// graph is rebuilt from scratch with one full Converge at the end.
func applyDirect(t *testing.T, g *Graph, op scriptOp) {
	t.Helper()
	swapViews(g, op.vrps)
	for _, ev := range op.evs {
		switch ev.Kind {
		case EvAnnounce:
			g.AS(ev.AS).setOriginated(ev.Prefix, true)
		case EvWithdraw:
			g.AS(ev.AS).setOriginated(ev.Prefix, false)
		case EvPolicyChange:
			a := g.AS(ev.AS)
			a.Policy, a.VRPs = ev.Policy, ev.VRPs
		case EvROAChange:
			// view swap already applied by swapViews
		case EvLinkChange:
			if err := g.Link(ev.AS, ev.Peer, ev.Rel); err != nil {
				t.Fatalf("Link(%v, %v): %v", ev.AS, ev.Peer, err)
			}
		}
	}
}

func swapViews(g *Graph, vrps *rpki.VRPSet) {
	if vrps == nil {
		return
	}
	for _, a := range g.ASes {
		if a.Policy != nil {
			a.VRPs = vrps
		}
	}
}

func sortedASNsIn(g *Graph) []inet.ASN {
	out := make([]inet.ASN, 0, len(g.ASes))
	for asn := range g.ASes {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapshotWorld captures everything the equivalence property compares:
// per-AS Loc-RIBs (full Route values, so paths, learned-from, preferences
// and recorded validity all participate) and a deterministic sample of
// data-plane paths.
func snapshotWorld(g *Graph) map[string]any {
	out := make(map[string]any)
	asns := sortedASNsIn(g)
	for _, asn := range asns {
		out[fmt.Sprintf("rib:%v", asn)] = g.AS(asn).Routes()
	}
	var dsts []netip.Addr
	for _, asn := range asns {
		for _, p := range g.AS(asn).Originated {
			dsts = append(dsts, inet.NthAddr(p, 1))
		}
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i].Less(dsts[j]) })
	for i, src := range asns {
		for j := range dsts {
			if (i+j)%7 != 0 { // deterministic sample, keeps the test fast
				continue
			}
			path, ok := g.DataPath(src, dsts[j])
			out[fmt.Sprintf("path:%v->%v", src, dsts[j])] = struct {
				Path []inet.ASN
				OK   bool
			}{path, ok}
		}
	}
	return out
}

func diffWorlds(t *testing.T, label string, want, got map[string]any) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: snapshot key counts differ: %d vs %d", label, len(want), len(got))
	}
	for k, w := range want {
		if !reflect.DeepEqual(w, got[k]) {
			t.Fatalf("%s: %s differs:\nwant %+v\ngot  %+v", label, k, w, got[k])
		}
	}
}

// TestEventEquivalenceRandomized is the headline property test: for several
// seeds, a random script of event batches applied incrementally (at worker
// counts 1 and 4) must leave the graph bit-identical to a from-scratch
// rebuild of the same final world.
func TestEventEquivalenceRandomized(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Reference: replay mutations raw, then one full convergence.
			ref := randomHierarchy(seed)
			script := genScript(ref, seed^0x5eed, 36)
			for _, op := range script {
				applyDirect(t, ref, op)
			}
			if _, err := ref.Converge(); err != nil {
				t.Fatal(err)
			}
			want := snapshotWorld(ref)

			// Incremental, at two worker counts.
			for _, procs := range []int{1, 4} {
				prev := runtime.GOMAXPROCS(procs)
				inc := randomHierarchy(seed)
				for _, op := range genScript(inc, seed^0x5eed, 36) {
					applyIncremental(t, inc, op)
				}
				got := snapshotWorld(inc)
				runtime.GOMAXPROCS(prev)
				diffWorlds(t, fmt.Sprintf("procs=%d", procs), want, got)
			}
		})
	}
}

// TestEventFlapCoalesces pins the microsecond-flap contract: a batch that
// withdraws and re-announces the same origination must coalesce to zero
// dirty prefixes, run no propagation, and leave the graph version untouched
// (so not even cache epochs move).
func TestEventFlapCoalesces(t *testing.T) {
	g := randomHierarchy(3)
	asns := sortedASNsIn(g)
	var origin inet.ASN
	var p netip.Prefix
	for _, asn := range asns {
		if own := g.AS(asn).Originated; len(own) > 0 {
			origin, p = asn, own[0]
			break
		}
	}
	before := snapshotWorld(g)
	verBefore := g.Version()

	res, err := g.ApplyEvents([]RouteEvent{
		{Kind: EvWithdraw, AS: origin, Prefix: p},
		{Kind: EvAnnounce, AS: origin, Prefix: p},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyPrefixes != 0 || res.Rounds != 0 || res.ASesTouched != 0 {
		t.Fatalf("flap did not coalesce: %+v", res)
	}
	if g.Version() != verBefore {
		t.Fatalf("flap bumped graph version %d -> %d", verBefore, g.Version())
	}
	diffWorlds(t, "flap", before, snapshotWorld(g))
}

// TestEventBatchErrorReportsNoWork: a batch naming an unknown AS fails
// without claiming any convergence work.
func TestEventBatchErrorReportsNoWork(t *testing.T) {
	g := randomHierarchy(4)
	res, err := g.ApplyEvents([]RouteEvent{{Kind: EvAnnounce, AS: 999999, Prefix: pfx("10.0.0.0/16")}})
	if err == nil {
		t.Fatal("expected error for unknown AS")
	}
	if res.DirtyPrefixes != 0 || res.Rounds != 0 {
		t.Fatalf("failed batch reported work: %+v", res)
	}
}
