package bgp

import (
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// pkey packs a masked IPv4 prefix into a compact map key.
func pkey(p netip.Prefix) uint64 {
	return uint64(inet.V4Int(p.Addr()))<<8 | uint64(uint8(p.Bits()))
}

// maskKey returns the key of addr truncated to plen bits.
func maskKey(addr uint32, plen int) uint64 {
	if plen == 0 {
		return 0
	}
	m := addr >> (32 - plen) << (32 - plen)
	return uint64(m)<<8 | uint64(uint8(plen))
}

// adjRoute is one Adj-RIB-In entry: the announcement as received (shared
// across the sender's whole fan-out and immutable) plus the attributes fixed
// at import time. Holding the announcement pointer instead of copying
// prefix+path into a Route shrinks the entry and makes the "did the best
// route actually change" check a pointer compare in the common case.
type adjRoute struct {
	ann      *Announcement
	from     inet.ASN
	pref     int32
	rel      Relationship
	validity rpki.Validity
}

// adjBetter mirrors Route.better on Adj-RIB-In entries: higher LocalPref,
// then shorter AS path, then lowest neighbor ASN as the deterministic
// tiebreak.
func adjBetter(r, o *adjRoute) bool {
	if r.pref != o.pref {
		return r.pref > o.pref
	}
	if len(r.ann.Path) != len(o.ann.Path) {
		return len(r.ann.Path) < len(o.ann.Path)
	}
	return r.from < o.from
}

// adjCell is the per-prefix Adj-RIB-In: at most one route per neighbor.
// The first route lives inline — most (AS, prefix) pairs hear the prefix
// from a single neighbor — and additional neighbors spill into more, whose
// backing array is reused across convergence runs. An empty cell has a nil
// r0.ann.
type adjCell struct {
	r0   adjRoute
	more []adjRoute
}

func (c *adjCell) upsert(r adjRoute) {
	if c.r0.ann == nil {
		c.r0 = r
		return
	}
	if c.r0.from == r.from {
		c.r0 = r
		return
	}
	for i := range c.more {
		if c.more[i].from == r.from {
			c.more[i] = r
			return
		}
	}
	c.more = append(c.more, r)
}

// clearCell empties the cell while keeping the spill array's capacity for
// the next convergence. Stale entries are zeroed so announcement memory from
// a previous routing epoch is not pinned.
func (c *adjCell) clearCell() {
	c.r0 = adjRoute{}
	if cap(c.more) > 0 {
		clear(c.more[:cap(c.more)])
		c.more = c.more[:0]
	}
}

// locRoute is one Loc-RIB slot: the selected route for the prefix whose ID
// indexes it. set distinguishes "no route" from the zero route; self-
// originated slots carry a synthesized announcement with a nil path.
type locRoute struct {
	ann        *Announcement
	from       inet.ASN
	pref       int32
	rel        Relationship
	validity   rpki.Validity
	selfOrigin bool
	set        bool
}

// route materializes the public Route view of the slot.
func (l *locRoute) route() Route {
	return Route{
		Prefix:      l.ann.Prefix,
		Path:        l.ann.Path,
		LearnedFrom: l.from,
		Rel:         l.rel,
		Validity:    l.validity,
		LocalPref:   int(l.pref),
		selfOrigin:  l.selfOrigin,
	}
}

// AS is one autonomous system in the graph: its neighbors, policy, and
// routing state.
type AS struct {
	ASN       inet.ASN
	Neighbors map[inet.ASN]Relationship

	// Originated lists the prefixes this AS legitimately announces.
	Originated []netip.Prefix

	// Policy is the import policy (ROV behaviour); nil means AcceptAll.
	Policy ImportPolicy

	// VRPs is this AS's local view of the validated payloads (after any
	// SLURM processing); nil means the AS sees no VRPs (all NotFound).
	VRPs *rpki.VRPSet

	// DefaultRoute, when set, names the neighbor that receives traffic for
	// destinations missing from the FIB (the §7.6 "default route" pitfall).
	DefaultRoute inet.ASN
	HasDefault   bool
	// DefaultScope, when valid, restricts the default route to destinations
	// inside the prefix — modelling partial leaks such as Swisscom's DDoS
	// on-ramp tunnels (§7.6), which re-exposed only some filtered space.
	DefaultScope netip.Prefix

	// tab interns prefixes to the dense IDs that index adjIn and rib. Every
	// AS in a Graph shares the graph's table; a standalone AS owns one.
	tab *PrefixTable

	// adjIn and rib are indexed by PrefixID; they grow to tab.Len() during
	// the serial reset phase of each convergence and are reused (cleared in
	// place, never reallocated) across runs.
	adjIn []adjCell
	rib   []locRoute
	// lenCount tracks how many FIB entries exist per prefix length, so the
	// data-plane LPM only probes populated lengths.
	lenCount [33]int

	// export fan-out lists, precomputed at reset time. exportGen records the
	// topology generation the lists were built against; resetPrefixes
	// rebuilds them whenever the neighbor set has changed since.
	exportAll       []inet.ASN // every neighbor
	exportCustomers []inet.ASN // customer neighbors only
	topoGen         uint64
	exportGen       uint64
}

// NewAS creates an AS with no neighbors.
func NewAS(asn inet.ASN) *AS {
	return &AS{
		ASN:       asn,
		Neighbors: make(map[inet.ASN]Relationship),
		tab:       NewPrefixTable(),
	}
}

// policy returns the effective import policy.
func (a *AS) policy() ImportPolicy {
	if a.Policy == nil {
		return AcceptAll{}
	}
	return a.Policy
}

// validity computes the RFC 6811 outcome of ann under this AS's VRP view.
func (a *AS) validity(ann *Announcement) rpki.Validity {
	if a.VRPs == nil {
		return rpki.NotFound
	}
	return a.VRPs.Validate(ann.Prefix, ann.Origin())
}

// ensureSized grows the ID-indexed tables to cover every interned prefix.
// Must run on the serial path (reset phase) — the parallel import workers
// index the slices without bounds growth.
func (a *AS) ensureSized() {
	n := a.tab.Len()
	if n <= len(a.adjIn) && n <= len(a.rib) {
		return
	}
	if cap(a.adjIn) < n {
		t := make([]adjCell, n)
		copy(t, a.adjIn)
		a.adjIn = t
	} else {
		a.adjIn = a.adjIn[:n]
	}
	if cap(a.rib) < n {
		t := make([]locRoute, n)
		copy(t, a.rib)
		a.rib = t
	} else {
		a.rib = a.rib[:n]
	}
}

// resetRoutingState clears all learned state (used before a re-convergence).
func (a *AS) resetRoutingState() {
	if a.tab == nil {
		a.tab = NewPrefixTable()
	}
	for _, p := range a.Originated {
		a.tab.Intern(p)
	}
	a.ensureSized()
	for i := range a.adjIn {
		a.adjIn[i].clearCell()
	}
	clear(a.rib)
	a.lenCount = [33]int{}
	for _, p := range a.Originated {
		if id, ok := a.tab.IDOf(p); ok {
			a.installSelf(id)
		}
	}
	a.rebuildExportLists()
	a.exportGen = a.topoGen
}

// resetPrefixes clears learned state for exactly the prefixes in set and
// re-installs self routes for any originated prefix in the set. Export
// fan-out lists are rebuilt when the neighbor set has changed since they
// were computed (or when they were never built), so a link added after the
// first full Converge participates in incremental re-convergence.
func (a *AS) resetPrefixes(set map[PrefixID]bool) {
	a.ensureSized()
	for id := range set {
		a.adjIn[id].clearCell()
		if a.rib[id].set {
			a.rib[id] = locRoute{}
			a.lenCount[a.tab.plenOf(id)]--
		}
	}
	for _, p := range a.Originated {
		if id, ok := a.tab.IDOf(p); ok && set[id] {
			a.installSelf(id)
		}
	}
	if a.exportGen != a.topoGen || (len(a.exportAll) == 0 && len(a.Neighbors) > 0) {
		a.rebuildExportLists()
		a.exportGen = a.topoGen
	}
}

func (a *AS) rebuildExportLists() {
	a.exportAll = a.exportAll[:0]
	a.exportCustomers = a.exportCustomers[:0]
	for n, rel := range a.Neighbors {
		a.exportAll = append(a.exportAll, n)
		if rel == Customer {
			a.exportCustomers = append(a.exportCustomers, n)
		}
	}
	sort.Slice(a.exportAll, func(i, j int) bool { return a.exportAll[i] < a.exportAll[j] })
	sort.Slice(a.exportCustomers, func(i, j int) bool { return a.exportCustomers[i] < a.exportCustomers[j] })
}

// installSelf installs the self-originated route for an interned prefix.
func (a *AS) installSelf(id PrefixID) {
	if !a.rib[id].set {
		a.lenCount[a.tab.plenOf(id)]++
	}
	a.rib[id] = locRoute{
		ann:        &Announcement{Prefix: a.tab.Prefix(id)},
		from:       a.ASN,
		pref:       1 << 20, // own routes beat anything learned
		selfOrigin: true,
		set:        true,
	}
}

// importAnn runs the import pipeline for one announcement from a neighbor.
// It returns the announcement's prefix ID and whether the best route for
// that prefix changed. The announcement (and its path slice) is retained
// without copying; senders must treat emitted announcements as immutable.
func (a *AS) importAnn(from inet.ASN, ann *Announcement) (PrefixID, bool) {
	rel, ok := a.Neighbors[from]
	if !ok || ann.ContainsAS(a.ASN) {
		return 0, false
	}
	validity := a.validity(ann)
	dec := a.policy().Evaluate(a.ASN, from, rel, *ann, validity)
	if !dec.Accept {
		return 0, false
	}
	id, ok := a.tab.IDOf(ann.Prefix)
	if !ok || int(id) >= len(a.adjIn) {
		// Prefixes reach the import path only via announcements, and every
		// announcement originates from a prefix interned during the serial
		// reset phase — so this is unreachable during convergence and only
		// guards direct misuse.
		return 0, false
	}
	c := &a.adjIn[id]
	c.upsert(adjRoute{
		ann:      ann,
		from:     from,
		pref:     int32(rel.localPref() + dec.LocalPrefDelta),
		rel:      rel,
		validity: validity,
	})
	return id, a.selectBest(id, c)
}

// selectBest recomputes the best route for an interned prefix, reporting
// whether the installed best changed.
func (a *AS) selectBest(id PrefixID, c *adjCell) bool {
	old := &a.rib[id]
	if old.set && old.selfOrigin {
		return false // own prefixes never lose to learned routes
	}
	if c.r0.ann == nil {
		return false
	}
	// Order of iteration is irrelevant: adjBetter ends with a strict
	// neighbor-ASN tiebreak and each neighbor appears at most once, so the
	// winner is unique.
	best := &c.r0
	for i := range c.more {
		if adjBetter(&c.more[i], best) {
			best = &c.more[i]
		}
	}
	if old.set && old.from == best.from && old.pref == best.pref &&
		(old.ann == best.ann || pathsEqual(old.ann.Path, best.ann.Path)) {
		return false
	}
	if !old.set {
		a.lenCount[a.tab.plenOf(id)]++
	}
	*old = locRoute{
		ann:      best.ann,
		from:     best.from,
		pref:     best.pref,
		rel:      best.rel,
		validity: best.validity,
		set:      true,
	}
	return true
}

func pathsEqual(x, y []inet.ASN) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func routesEqual(x, y Route) bool {
	if x.Prefix != y.Prefix || x.LearnedFrom != y.LearnedFrom || x.LocalPref != y.LocalPref {
		return false
	}
	return pathsEqual(x.Path, y.Path)
}

// exportTargets returns the neighbors that should receive the given best
// route under Gao-Rexford export rules: routes from customers (and own
// routes) go to everyone; routes from peers/providers go to customers only.
// The neighbor the route was learned from is included — the receiver's
// AS-path loop check discards the echo — keeping the fan-out lists static.
func (a *AS) exportTargets(l *locRoute) []inet.ASN {
	if l.selfOrigin || l.rel == Customer {
		return a.exportAll
	}
	return a.exportCustomers
}

// announcementFor builds the announcement this AS sends for the selected
// route l. The returned path is freshly allocated and shared by every
// neighbor copy, so receivers must not mutate it.
func (a *AS) announcementFor(l *locRoute) *Announcement {
	path := make([]inet.ASN, 0, len(l.ann.Path)+1)
	path = append(path, a.ASN)
	path = append(path, l.ann.Path...)
	return &Announcement{Prefix: l.ann.Prefix, Path: path}
}

// Lookup performs the data-plane longest-prefix match for dst. The boolean
// reports whether a FIB entry (not the default route) matched.
func (a *AS) Lookup(dst netip.Addr) (Route, bool) {
	addr := inet.V4Int(dst)
	for plen := 32; plen >= 0; plen-- {
		if a.lenCount[plen] == 0 {
			continue
		}
		if id, ok := a.tab.idOfKey(maskKey(addr, plen)); ok && int(id) < len(a.rib) && a.rib[id].set {
			return a.rib[id].route(), true
		}
	}
	return Route{}, false
}

// BestRoute returns the selected route for an exact prefix.
func (a *AS) BestRoute(prefix netip.Prefix) (Route, bool) {
	id, ok := a.tab.IDOf(prefix)
	if !ok || int(id) >= len(a.rib) || !a.rib[id].set {
		return Route{}, false
	}
	return a.rib[id].route(), true
}

// bestLoc returns the Loc-RIB slot for an interned prefix, or nil.
func (a *AS) bestLoc(id PrefixID) *locRoute {
	if int(id) >= len(a.rib) || !a.rib[id].set {
		return nil
	}
	return &a.rib[id]
}

// Routes returns all selected routes (the Loc-RIB) ordered by prefix.
func (a *AS) Routes() []Route {
	ids := make([]PrefixID, 0, len(a.rib))
	for id := range a.rib {
		if a.rib[id].set {
			ids = append(ids, PrefixID(id))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return a.tab.keyOf(ids[i]) < a.tab.keyOf(ids[j]) })
	out := make([]Route, len(ids))
	for i, id := range ids {
		out[i] = a.rib[id].route()
	}
	return out
}

// DropRoute removes the FIB entry for prefix (used by tests and fault
// injection to model partial tables).
func (a *AS) DropRoute(prefix netip.Prefix) bool {
	id, ok := a.tab.IDOf(prefix)
	if !ok || int(id) >= len(a.rib) || !a.rib[id].set {
		return false
	}
	a.lenCount[a.tab.plenOf(id)]--
	a.rib[id] = locRoute{}
	return true
}

// OriginatesCovering reports whether the AS originates a prefix containing
// dst (i.e. the packet has reached its destination network).
func (a *AS) OriginatesCovering(dst netip.Addr) bool {
	for _, p := range a.Originated {
		if p.Contains(dst) {
			return true
		}
	}
	return false
}
