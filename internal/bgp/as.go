package bgp

import (
	"math/bits"
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// pkey packs a masked IPv4 prefix into a compact map key.
func pkey(p netip.Prefix) uint64 {
	return uint64(inet.V4Int(p.Addr()))<<8 | uint64(uint8(p.Bits()))
}

// maskKey returns the key of addr truncated to plen bits.
func maskKey(addr uint32, plen int) uint64 {
	if plen == 0 {
		return 0
	}
	m := addr >> (32 - plen) << (32 - plen)
	return uint64(m)<<8 | uint64(uint8(plen))
}

// adjRoute is one Adj-RIB-In entry: the announcement as received (shared
// across the sender's whole fan-out and immutable) plus the attributes fixed
// at import time. Holding the announcement pointer instead of copying
// prefix+path into a Route shrinks the entry to 16 bytes and makes the "did
// anything change" checks pointer compares in the common case. pref is an
// int16: effective LocalPrefs live in [-1000, 300] (relationship tiers plus
// the prefer-valid penalty), and importAnnRel clamps pathological policies.
type adjRoute struct {
	ann      *Announcement
	from     inet.ASN
	pref     int16
	rel      Relationship
	validity rpki.Validity
}

// adjBetter mirrors Route.better on Adj-RIB-In entries: higher LocalPref,
// then shorter AS path, then lowest neighbor ASN as the deterministic
// tiebreak.
func adjBetter(r, o *adjRoute) bool {
	if r.pref != o.pref {
		return r.pref > o.pref
	}
	if len(r.ann.Path) != len(o.ann.Path) {
		return len(r.ann.Path) < len(o.ann.Path)
	}
	return r.from < o.from
}

// spillRef addresses a run of adjRoutes inside the owning AS's spill pool:
// off is the run's start, n the live entries, c the run's capacity.
type spillRef struct {
	off  uint32
	n, c uint16
}

// adjCell is the per-prefix Adj-RIB-In: at most one route per neighbor. The
// first route lives inline — most (AS, prefix) pairs hear the prefix from a
// single neighbor — and additional neighbors spill into a run of the AS's
// slab-allocated spill pool, reused in place across convergence runs. An
// empty cell has a nil r0.ann; r0 is always populated before the spill.
type adjCell struct {
	r0    adjRoute
	spill spillRef
}

// spillOf returns the cell's live spill entries.
func (a *AS) spillOf(c *adjCell) []adjRoute {
	if c.spill.n == 0 {
		return nil
	}
	return a.spillPool[c.spill.off : c.spill.off+uint32(c.spill.n)]
}

// upsertCell installs or replaces the entry for r.from in the cell. Spill
// runs grow by relocation; the outgrown run is recycled through the AS's
// per-size-class free lists, so a cell climbing 2→4→…→2^k leaves no dead
// space behind (per-prefix resets reuse runs in place and never relocate).
func (a *AS) upsertCell(c *adjCell, r adjRoute) {
	if c.r0.ann == nil || c.r0.from == r.from {
		c.r0 = r
		return
	}
	sp := a.spillOf(c)
	for i := range sp {
		if sp[i].from == r.from {
			sp[i] = r
			return
		}
	}
	if c.spill.n < c.spill.c {
		a.spillPool[c.spill.off+uint32(c.spill.n)] = r
		c.spill.n++
		return
	}
	newCap := c.spill.c * 2
	if newCap < 2 {
		newCap = 2
	}
	off := a.allocSpill(newCap)
	run := a.spillPool[off : off+uint32(newCap)]
	n := copy(run, sp)
	run[n] = r
	if c.spill.c > 0 {
		a.freeSpill(c.spill)
	}
	c.spill = spillRef{off: off, n: uint16(n) + 1, c: newCap}
}

// allocSpill returns the offset of a zeroed run of exactly capacity entries
// (a power of two), preferring a same-class run recycled by freeSpill over
// extending the pool's tail.
func (a *AS) allocSpill(capacity uint16) uint32 {
	k := bits.TrailingZeros16(capacity)
	if head := a.spillFree[k]; head != 0 {
		off := head - 1
		a.spillFree[k] = uint32(a.spillPool[off].from)
		a.spillPool[off].from = 0
		return off
	}
	off := uint32(len(a.spillPool))
	for range capacity {
		a.spillPool = append(a.spillPool, adjRoute{})
	}
	return off
}

// freeSpill pushes an outgrown run onto the free list for its size class.
// The run is cleared first — it must stop pinning announcements the moment
// it leaves service — and the first entry's from field carries the next-free
// link. Links and list heads store offset+1 so the zero value means "empty".
func (a *AS) freeSpill(ref spillRef) {
	clear(a.spillPool[ref.off : ref.off+uint32(ref.c)])
	k := bits.TrailingZeros16(ref.c)
	a.spillPool[ref.off].from = inet.ASN(a.spillFree[k])
	a.spillFree[k] = ref.off + 1
}

// clearCell empties the cell, keeping its spill run (zeroed in place) for
// the next convergence so announcement memory from a previous routing epoch
// is not pinned and the run needs no reallocation.
func (a *AS) clearCell(c *adjCell) {
	c.r0 = adjRoute{}
	if c.spill.n > 0 {
		clear(a.spillPool[c.spill.off : c.spill.off+uint32(c.spill.n)])
		c.spill.n = 0
	}
}

// locRoute is one Loc-RIB slot: the selected route for the prefix whose ID
// indexes it. The slot is exactly 16 bytes — at full-Internet scale the dense
// rib arrays dominate live memory, so the two former booleans are derived
// instead of stored: a nil ann means "no route" (no separate set flag), and a
// set slot with an empty announcement path is self-originated (learned
// announcements always carry their sender in Path[0]; self slots carry a
// synthesized announcement with a nil path).
type locRoute struct {
	ann      *Announcement
	from     inet.ASN
	pref     int16
	rel      Relationship
	validity rpki.Validity
}

// selfPref is the LocalPref of self-originated slots. Learned prefs clamp to
// the same ceiling in the pathological-policy case, but a tie there still
// resolves to the self route: Route.better falls through to shortest path and
// the self path is empty.
const selfPref = 32767

// isSet reports whether the slot holds a route.
func (l *locRoute) isSet() bool { return l.ann != nil }

// isSelf reports whether a set slot is self-originated.
func (l *locRoute) isSelf() bool { return len(l.ann.Path) == 0 }

// route materializes the public Route view of the slot.
func (l *locRoute) route() Route {
	return Route{
		Prefix:      l.ann.Prefix,
		Path:        l.ann.Path,
		LearnedFrom: l.from,
		Rel:         l.rel,
		Validity:    l.validity,
		LocalPref:   int(l.pref),
		selfOrigin:  l.isSelf(),
	}
}

// exportTarget is one precomputed fan-out destination: the neighbor's dense
// graph index (so propagation skips the ASN map), its ASN, and the
// receiver's relationship to this AS (the inverse of this AS's view), which
// the receiver's import pipeline needs and would otherwise look up per
// update.
type exportTarget struct {
	idx int32
	asn inet.ASN
	rel Relationship
}

// invertRel flips a relationship to the other endpoint's point of view.
func invertRel(rel Relationship) Relationship {
	switch rel {
	case Customer:
		return Provider
	case Provider:
		return Customer
	default:
		return Peer
	}
}

// AS is one autonomous system in the graph: its neighbors, policy, and
// routing state.
type AS struct {
	ASN       inet.ASN
	Neighbors map[inet.ASN]Relationship

	// Originated lists the prefixes this AS legitimately announces.
	Originated []netip.Prefix

	// Policy is the import policy (ROV behaviour); nil means AcceptAll.
	Policy ImportPolicy

	// VRPs is this AS's local view of the validated payloads (after any
	// SLURM processing); nil means the AS sees no VRPs (all NotFound).
	VRPs *rpki.VRPSet

	// Leaking, when set, disables Gao-Rexford export scoping: every best
	// route is exported to every neighbor, modelling a full route leak
	// (provider/peer routes re-announced to other providers and peers).
	// Toggled through EvLeakChange events so the leak re-converges and
	// restores deterministically.
	Leaking bool

	// forged maps an originated prefix to the origin ASN this AS forges when
	// announcing it (a forged-origin hijack: the wire path ends in the victim
	// so ROV validates the announcement, but traffic still terminates here).
	// Managed through EvAnnounce events carrying ForgedOrigin.
	forged map[netip.Prefix]inet.ASN

	// DefaultRoute, when set, names the neighbor that receives traffic for
	// destinations missing from the FIB (the §7.6 "default route" pitfall).
	DefaultRoute inet.ASN
	HasDefault   bool
	// DefaultScope, when valid, restricts the default route to destinations
	// inside the prefix — modelling partial leaks such as Swisscom's DDoS
	// on-ramp tunnels (§7.6), which re-exposed only some filtered space.
	DefaultScope netip.Prefix

	// tab interns prefixes to the dense IDs that index adjIn and rib. Every
	// AS in a Graph shares the graph's table; a standalone AS owns one.
	tab *PrefixTable

	// adjIn and rib are indexed by PrefixID; they grow to tab.Len() during
	// the serial reset phase of each convergence and are reused (cleared in
	// place, never reallocated) across runs. spillPool backs the adjIn
	// cells' multi-neighbor runs; it is truncated on full resets and its
	// runs are zeroed in place on per-prefix resets.
	adjIn     []adjCell
	rib       []locRoute
	spillPool []adjRoute
	// spillFree heads the per-size-class free lists of spill runs recycled
	// by relocation growth; index k holds runs of capacity 1<<k, and values
	// are offset+1 (0 = empty list).
	spillFree [16]uint32
	// lenCount tracks how many FIB entries exist per prefix length, so the
	// data-plane LPM only probes populated lengths.
	lenCount [33]int

	// export fan-out lists, precomputed at reset time. exportGen records the
	// topology generation the lists were built against and exportIdxGen the
	// graph AS-index generation; the reset phase rebuilds the lists whenever
	// either has moved (a link was added, or graph membership re-indexed).
	exportAll       []exportTarget // every neighbor
	exportCustomers []exportTarget // customer neighbors only
	topoGen         uint64
	exportGen       uint64
	exportIdxGen    uint64

	// cowState marks adjIn/rib/spillPool/export lists as shared with a base
	// AS (overlay clones); materialize copies them before the first write.
	// cowTopo marks Neighbors as shared; materializeTopo copies it.
	cowState bool
	cowTopo  bool
}

// NewAS creates an AS with no neighbors.
func NewAS(asn inet.ASN) *AS {
	return &AS{
		ASN:       asn,
		Neighbors: make(map[inet.ASN]Relationship),
		tab:       NewPrefixTable(),
	}
}

// validity computes the RFC 6811 outcome of ann under this AS's VRP view.
func (a *AS) validity(ann *Announcement) rpki.Validity {
	if a.VRPs == nil {
		return rpki.NotFound
	}
	return a.VRPs.Validate(ann.Prefix, ann.Origin())
}

// ensureSized grows the ID-indexed tables to cover every interned prefix.
// Must run on the serial path (reset phase) — the parallel import workers
// index the slices without bounds growth.
func (a *AS) ensureSized() {
	n := a.tab.Len()
	if n <= len(a.adjIn) && n <= len(a.rib) {
		return
	}
	if cap(a.adjIn) < n {
		t := make([]adjCell, n)
		copy(t, a.adjIn)
		a.adjIn = t
	} else {
		a.adjIn = a.adjIn[:n]
	}
	if cap(a.rib) < n {
		t := make([]locRoute, n)
		copy(t, a.rib)
		a.rib = t
	} else {
		a.rib = a.rib[:n]
	}
}

// resetRoutingState clears all learned state (used before a full
// re-convergence). The spill pool is compacted to zero: every cell's run
// reference dies with the memset of adjIn.
func (a *AS) resetRoutingState(g *Graph) {
	if a.cowState {
		// Everything is cleared below anyway; detach with fresh zeroed
		// slices instead of copying shared state just to memset it.
		a.cowState = false
		a.adjIn = make([]adjCell, len(a.adjIn))
		a.rib = make([]locRoute, len(a.rib))
		a.spillPool = nil
		a.exportAll, a.exportCustomers = nil, nil
	}
	if a.tab == nil {
		a.tab = NewPrefixTable()
	}
	for _, p := range a.Originated {
		a.tab.Intern(p)
	}
	a.ensureSized()
	clear(a.adjIn)
	clear(a.rib)
	clear(a.spillPool)
	a.spillPool = a.spillPool[:0]
	a.spillFree = [16]uint32{}
	a.lenCount = [33]int{}
	for _, p := range a.Originated {
		if id, ok := a.tab.IDOf(p); ok {
			a.installSelf(id)
		}
	}
	a.rebuildExportLists(g)
}

// resetPrefixes clears learned state for exactly the given prefixes and
// re-installs self routes for any originated prefix among them (membership
// is tested via the graph's mark array at generation gen). Export fan-out
// lists are rebuilt when stale, so a link added after the first full
// Converge participates in incremental re-convergence.
func (a *AS) resetPrefixes(g *Graph, pids []PrefixID, mark []uint32, gen uint32) {
	if a.cowState && a.cowNeedsWrite(g, pids, mark, gen) {
		a.materialize()
	}
	a.ensureSized()
	for _, id := range pids {
		c := &a.adjIn[id]
		if c.r0.ann != nil {
			a.clearCell(c)
		}
		if a.rib[id].isSet() {
			a.rib[id] = locRoute{}
			a.lenCount[a.tab.plenOf(id)]--
		}
	}
	for _, p := range a.Originated {
		if id, ok := a.tab.IDOf(p); ok && int(id) < len(mark) && mark[id] == gen {
			a.installSelf(id)
		}
	}
	if a.exportGen != a.topoGen || a.exportIdxGen != g.indexGen ||
		(len(a.exportAll) == 0 && len(a.Neighbors) > 0) {
		a.rebuildExportLists(g)
	}
}

func (a *AS) rebuildExportLists(g *Graph) {
	a.exportAll = a.exportAll[:0]
	a.exportCustomers = a.exportCustomers[:0]
	for n, rel := range a.Neighbors {
		t := exportTarget{idx: g.indexOf(n), asn: n, rel: invertRel(rel)}
		a.exportAll = append(a.exportAll, t)
		if rel == Customer {
			a.exportCustomers = append(a.exportCustomers, t)
		}
	}
	sort.Slice(a.exportAll, func(i, j int) bool { return a.exportAll[i].asn < a.exportAll[j].asn })
	sort.Slice(a.exportCustomers, func(i, j int) bool { return a.exportCustomers[i].asn < a.exportCustomers[j].asn })
	a.exportGen = a.topoGen
	a.exportIdxGen = g.indexGen
}

// installSelf installs the self-originated route for an interned prefix.
func (a *AS) installSelf(id PrefixID) {
	if !a.rib[id].isSet() {
		a.lenCount[a.tab.plenOf(id)]++
	}
	a.rib[id] = locRoute{
		ann:  &Announcement{Prefix: a.tab.Prefix(id)},
		from: a.ASN,
		pref: selfPref, // own routes beat anything learned
	}
}

// importAnnRel runs the import pipeline for one announcement from a
// neighbor, with the neighbor relationship already resolved (the sender
// precomputes it in its export targets, saving the map lookup per update).
// It returns the announcement's prefix ID and whether the best route for
// that prefix changed. The announcement (and its path slice) is retained
// without copying; senders must treat emitted announcements as immutable.
func (a *AS) importAnnRel(from inet.ASN, rel Relationship, ann *Announcement) (PrefixID, bool) {
	id, ok := a.tab.IDOf(ann.Prefix)
	if !ok || int(id) >= len(a.adjIn) {
		// Prefixes reach the import path only via announcements, and every
		// announcement originates from a prefix interned during the serial
		// reset phase — so this is unreachable during convergence and only
		// guards direct misuse.
		return 0, false
	}
	// Delta check against the Adj-RIB-In: a sender's whole fan-out shares
	// one announcement pointer per round, so an identical pointer means
	// this neighbor re-sent exactly what we already imported.
	if c := &a.adjIn[id]; c.r0.ann == ann && c.r0.from == from {
		return 0, false
	}
	if ann.ContainsAS(a.ASN) {
		return 0, false
	}
	validity := a.validity(ann)
	pref := int(rel.localPref())
	if a.Policy != nil {
		dec := a.Policy.Evaluate(a.ASN, from, rel, *ann, validity)
		if !dec.Accept {
			return 0, false
		}
		pref += dec.LocalPrefDelta
		if pref > 32767 {
			pref = 32767
		} else if pref < -32768 {
			pref = -32768
		}
	}
	// The announcement is accepted: copy shared overlay state before the
	// cell/RIB writes (the pointer into adjIn must be taken afterwards).
	a.materialize()
	c := &a.adjIn[id]
	a.upsertCell(c, adjRoute{
		ann:      ann,
		from:     from,
		pref:     int16(pref),
		rel:      rel,
		validity: validity,
	})
	return id, a.selectBest(id, c)
}

// importAnn is importAnnRel with the relationship resolved from the
// neighbor table (the non-hot-path entry point; unknown senders are
// rejected).
func (a *AS) importAnn(from inet.ASN, ann *Announcement) (PrefixID, bool) {
	rel, ok := a.Neighbors[from]
	if !ok {
		return 0, false
	}
	return a.importAnnRel(from, rel, ann)
}

// selectBest recomputes the best route for an interned prefix, reporting
// whether the installed best changed.
func (a *AS) selectBest(id PrefixID, c *adjCell) bool {
	old := &a.rib[id]
	if old.isSet() && old.isSelf() {
		return false // own prefixes never lose to learned routes
	}
	if c.r0.ann == nil {
		return false
	}
	// Order of iteration is irrelevant: adjBetter ends with a strict
	// neighbor-ASN tiebreak and each neighbor appears at most once, so the
	// winner is unique.
	best := &c.r0
	sp := a.spillOf(c)
	for i := range sp {
		if adjBetter(&sp[i], best) {
			best = &sp[i]
		}
	}
	if old.isSet() && old.from == best.from && old.pref == best.pref &&
		(old.ann == best.ann || pathsEqual(old.ann.Path, best.ann.Path)) {
		return false
	}
	if !old.isSet() {
		a.lenCount[a.tab.plenOf(id)]++
	}
	*old = locRoute{
		ann:      best.ann,
		from:     best.from,
		pref:     best.pref,
		rel:      best.rel,
		validity: best.validity,
	}
	return true
}

func pathsEqual(x, y []inet.ASN) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func routesEqual(x, y Route) bool {
	if x.Prefix != y.Prefix || x.LearnedFrom != y.LearnedFrom || x.LocalPref != y.LocalPref {
		return false
	}
	return pathsEqual(x.Path, y.Path)
}

// exportTargets returns the neighbors that should receive the given best
// route under Gao-Rexford export rules: routes from customers (and own
// routes) go to everyone; routes from peers/providers go to customers only.
// A leaking AS exports everything to everyone. The neighbor the route was
// learned from is included — the receiver's AS-path loop check discards the
// echo — keeping the fan-out lists static.
func (a *AS) exportTargets(l *locRoute) []exportTarget {
	if a.Leaking || l.isSelf() || l.rel == Customer {
		return a.exportAll
	}
	return a.exportCustomers
}

// Lookup performs the data-plane longest-prefix match for dst. The boolean
// reports whether a FIB entry (not the default route) matched.
func (a *AS) Lookup(dst netip.Addr) (Route, bool) {
	addr := inet.V4Int(dst)
	for plen := 32; plen >= 0; plen-- {
		if a.lenCount[plen] == 0 {
			continue
		}
		if id, ok := a.tab.idOfKey(maskKey(addr, plen)); ok && int(id) < len(a.rib) && a.rib[id].isSet() {
			return a.rib[id].route(), true
		}
	}
	return Route{}, false
}

// BestRoute returns the selected route for an exact prefix.
func (a *AS) BestRoute(prefix netip.Prefix) (Route, bool) {
	id, ok := a.tab.IDOf(prefix)
	if !ok || int(id) >= len(a.rib) || !a.rib[id].isSet() {
		return Route{}, false
	}
	return a.rib[id].route(), true
}

// bestLoc returns the Loc-RIB slot for an interned prefix, or nil.
func (a *AS) bestLoc(id PrefixID) *locRoute {
	if int(id) >= len(a.rib) || !a.rib[id].isSet() {
		return nil
	}
	return &a.rib[id]
}

// Routes returns all selected routes (the Loc-RIB) ordered by prefix.
func (a *AS) Routes() []Route {
	ids := make([]PrefixID, 0, len(a.rib))
	for id := range a.rib {
		if a.rib[id].isSet() {
			ids = append(ids, PrefixID(id))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return a.tab.keyOf(ids[i]) < a.tab.keyOf(ids[j]) })
	out := make([]Route, len(ids))
	for i, id := range ids {
		out[i] = a.rib[id].route()
	}
	return out
}

// DropRoute removes the FIB entry for prefix (used by tests and fault
// injection to model partial tables).
func (a *AS) DropRoute(prefix netip.Prefix) bool {
	id, ok := a.tab.IDOf(prefix)
	if !ok || int(id) >= len(a.rib) || !a.rib[id].isSet() {
		return false
	}
	a.materialize()
	a.lenCount[a.tab.plenOf(id)]--
	a.rib[id] = locRoute{}
	return true
}

// setForged records (or clears, for origin 0) the forged origin this AS uses
// when announcing p, reporting whether the mapping changed. ApplyEvents
// re-converges the prefix on change; direct callers must do the same.
func (a *AS) setForged(p netip.Prefix, origin inet.ASN) bool {
	p = p.Masked()
	if a.forged[p] == origin {
		return false
	}
	if origin == 0 {
		delete(a.forged, p)
		return true
	}
	if a.forged == nil {
		a.forged = make(map[netip.Prefix]inet.ASN, 1)
	}
	a.forged[p] = origin
	return true
}

// forgedFor returns the forged origin for an originated prefix (0 = none).
func (a *AS) forgedFor(p netip.Prefix) inet.ASN { return a.forged[p] }

// OriginatesCovering reports whether the AS originates a prefix containing
// dst (i.e. the packet has reached its destination network).
func (a *AS) OriginatesCovering(dst netip.Addr) bool {
	for _, p := range a.Originated {
		if p.Contains(dst) {
			return true
		}
	}
	return false
}
