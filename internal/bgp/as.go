package bgp

import (
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// pkey packs a masked IPv4 prefix into a compact map key.
func pkey(p netip.Prefix) uint64 {
	return uint64(inet.V4Int(p.Addr()))<<8 | uint64(uint8(p.Bits()))
}

// maskKey returns the key of addr truncated to plen bits.
func maskKey(addr uint32, plen int) uint64 {
	if plen == 0 {
		return 0
	}
	m := addr >> (32 - plen) << (32 - plen)
	return uint64(m)<<8 | uint64(uint8(plen))
}

// prefixState is the per-prefix Adj-RIB-In: at most one route per neighbor.
type prefixState struct {
	routes []Route
}

func (s *prefixState) upsert(r Route) {
	for i := range s.routes {
		if s.routes[i].LearnedFrom == r.LearnedFrom {
			s.routes[i] = r
			return
		}
	}
	s.routes = append(s.routes, r)
}

// AS is one autonomous system in the graph: its neighbors, policy, and
// routing state.
type AS struct {
	ASN       inet.ASN
	Neighbors map[inet.ASN]Relationship

	// Originated lists the prefixes this AS legitimately announces.
	Originated []netip.Prefix

	// Policy is the import policy (ROV behaviour); nil means AcceptAll.
	Policy ImportPolicy

	// VRPs is this AS's local view of the validated payloads (after any
	// SLURM processing); nil means the AS sees no VRPs (all NotFound).
	VRPs *rpki.VRPSet

	// DefaultRoute, when set, names the neighbor that receives traffic for
	// destinations missing from the FIB (the §7.6 "default route" pitfall).
	DefaultRoute inet.ASN
	HasDefault   bool
	// DefaultScope, when valid, restricts the default route to destinations
	// inside the prefix — modelling partial leaks such as Swisscom's DDoS
	// on-ramp tunnels (§7.6), which re-exposed only some filtered space.
	DefaultScope netip.Prefix

	adjIn map[uint64]*prefixState
	// rib maps prefix key -> selected best route.
	rib map[uint64]Route
	// lenCount tracks how many FIB entries exist per prefix length, so the
	// data-plane LPM only probes populated lengths.
	lenCount [33]int

	// export fan-out lists, precomputed at reset time.
	exportAll       []inet.ASN // every neighbor
	exportCustomers []inet.ASN // customer neighbors only
}

// NewAS creates an AS with no neighbors.
func NewAS(asn inet.ASN) *AS {
	return &AS{
		ASN:       asn,
		Neighbors: make(map[inet.ASN]Relationship),
		adjIn:     make(map[uint64]*prefixState),
		rib:       make(map[uint64]Route),
	}
}

// policy returns the effective import policy.
func (a *AS) policy() ImportPolicy {
	if a.Policy == nil {
		return AcceptAll{}
	}
	return a.Policy
}

// validity computes the RFC 6811 outcome of ann under this AS's VRP view.
func (a *AS) validity(ann Announcement) rpki.Validity {
	if a.VRPs == nil {
		return rpki.NotFound
	}
	return a.VRPs.Validate(ann.Prefix, ann.Origin())
}

// resetRoutingState clears all learned state (used before a re-convergence).
func (a *AS) resetRoutingState() {
	a.adjIn = make(map[uint64]*prefixState)
	a.rib = make(map[uint64]Route, len(a.Originated))
	a.lenCount = [33]int{}
	for _, p := range a.Originated {
		a.installBest(Route{
			Prefix:      p.Masked(),
			LearnedFrom: a.ASN,
			LocalPref:   1 << 20, // own routes beat anything learned
			selfOrigin:  true,
		})
	}
	a.rebuildExportLists()
}

// resetPrefixes clears learned state for exactly the prefixes in set
// (keyed by pkey) and re-installs self routes for any originated prefix in
// the set. Export fan-out lists are rebuilt if missing.
func (a *AS) resetPrefixes(set map[uint64]bool) {
	for k := range set {
		delete(a.adjIn, k)
		if r, ok := a.rib[k]; ok {
			delete(a.rib, k)
			a.lenCount[r.Prefix.Bits()]--
		}
	}
	for _, p := range a.Originated {
		if set[pkey(p.Masked())] {
			a.installBest(Route{
				Prefix:      p.Masked(),
				LearnedFrom: a.ASN,
				LocalPref:   1 << 20,
				selfOrigin:  true,
			})
		}
	}
	if len(a.exportAll) == 0 && len(a.Neighbors) > 0 {
		a.rebuildExportLists()
	}
}

func (a *AS) rebuildExportLists() {
	a.exportAll = a.exportAll[:0]
	a.exportCustomers = a.exportCustomers[:0]
	for n, rel := range a.Neighbors {
		a.exportAll = append(a.exportAll, n)
		if rel == Customer {
			a.exportCustomers = append(a.exportCustomers, n)
		}
	}
	sort.Slice(a.exportAll, func(i, j int) bool { return a.exportAll[i] < a.exportAll[j] })
	sort.Slice(a.exportCustomers, func(i, j int) bool { return a.exportCustomers[i] < a.exportCustomers[j] })
}

func (a *AS) installBest(r Route) {
	k := pkey(r.Prefix)
	if _, had := a.rib[k]; !had {
		a.lenCount[r.Prefix.Bits()]++
	}
	a.rib[k] = r
}

// importAnnouncement runs the import pipeline for one announcement from a
// neighbor. It returns true when the best route for the prefix changed.
// The announcement's path slice is retained without copying; senders must
// treat emitted paths as immutable.
func (a *AS) importAnnouncement(from inet.ASN, ann Announcement) bool {
	rel, ok := a.Neighbors[from]
	if !ok || ann.ContainsAS(a.ASN) {
		return false
	}
	validity := a.validity(ann)
	dec := a.policy().Evaluate(a.ASN, from, rel, ann, validity)
	if !dec.Accept {
		return false
	}
	r := Route{
		Prefix:      ann.Prefix,
		Path:        ann.Path,
		LearnedFrom: from,
		Rel:         rel,
		Validity:    validity,
		LocalPref:   rel.localPref() + dec.LocalPrefDelta,
	}
	k := pkey(r.Prefix)
	st := a.adjIn[k]
	if st == nil {
		st = &prefixState{}
		a.adjIn[k] = st
	}
	st.upsert(r)
	return a.selectBest(k, st)
}

// selectBest recomputes the best route for the prefix behind key k,
// reporting whether the installed best changed.
func (a *AS) selectBest(k uint64, st *prefixState) bool {
	old, hadOld := a.rib[k]
	if hadOld && old.selfOrigin {
		return false // own prefixes never lose to learned routes
	}
	var best Route
	haveBest := false
	// Order of iteration is irrelevant: better() ends with a strict
	// LearnedFrom tiebreak and each neighbor appears at most once, so the
	// winner is unique.
	for i := range st.routes {
		if !haveBest || st.routes[i].better(best) {
			best, haveBest = st.routes[i], true
		}
	}
	if !haveBest {
		return false
	}
	if hadOld && routesEqual(old, best) {
		return false
	}
	a.installBest(best)
	return true
}

func routesEqual(x, y Route) bool {
	if x.Prefix != y.Prefix || x.LearnedFrom != y.LearnedFrom || x.LocalPref != y.LocalPref || len(x.Path) != len(y.Path) {
		return false
	}
	for i := range x.Path {
		if x.Path[i] != y.Path[i] {
			return false
		}
	}
	return true
}

// exportTargets returns the neighbors that should receive the given best
// route under Gao-Rexford export rules: routes from customers (and own
// routes) go to everyone; routes from peers/providers go to customers only.
// The neighbor the route was learned from is included — the receiver's
// AS-path loop check discards the echo — keeping the fan-out lists static.
func (a *AS) exportTargets(r Route) []inet.ASN {
	if r.selfOrigin || r.Rel == Customer {
		return a.exportAll
	}
	return a.exportCustomers
}

// announcementFor builds the announcement this AS sends for route r. The
// returned path is freshly allocated and shared by every neighbor copy, so
// receivers must not mutate it.
func (a *AS) announcementFor(r Route) *Announcement {
	path := make([]inet.ASN, 0, len(r.Path)+1)
	path = append(path, a.ASN)
	path = append(path, r.Path...)
	return &Announcement{Prefix: r.Prefix, Path: path}
}

// Lookup performs the data-plane longest-prefix match for dst. The boolean
// reports whether a FIB entry (not the default route) matched.
func (a *AS) Lookup(dst netip.Addr) (Route, bool) {
	addr := inet.V4Int(dst)
	for plen := 32; plen >= 0; plen-- {
		if a.lenCount[plen] == 0 {
			continue
		}
		if r, ok := a.rib[maskKey(addr, plen)]; ok {
			return r, true
		}
	}
	return Route{}, false
}

// BestRoute returns the selected route for an exact prefix.
func (a *AS) BestRoute(prefix netip.Prefix) (Route, bool) {
	r, ok := a.rib[pkey(prefix.Masked())]
	return r, ok
}

// Routes returns all selected routes (the Loc-RIB) ordered by prefix.
func (a *AS) Routes() []Route {
	out := make([]Route, 0, len(a.rib))
	for _, r := range a.rib {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return pkey(out[i].Prefix) < pkey(out[j].Prefix) })
	return out
}

// DropRoute removes the FIB entry for prefix (used by tests and fault
// injection to model partial tables).
func (a *AS) DropRoute(prefix netip.Prefix) bool {
	k := pkey(prefix.Masked())
	r, ok := a.rib[k]
	if !ok {
		return false
	}
	delete(a.rib, k)
	a.lenCount[r.Prefix.Bits()]--
	return true
}

// OriginatesCovering reports whether the AS originates a prefix containing
// dst (i.e. the packet has reached its destination network).
func (a *AS) OriginatesCovering(dst netip.Addr) bool {
	for _, p := range a.Originated {
		if p.Contains(dst) {
			return true
		}
	}
	return false
}
