package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"sync/atomic"
	"time"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// EventKind classifies a RouteEvent.
type EventKind uint8

// Route event kinds.
const (
	// EvAnnounce: AS begins originating Prefix.
	EvAnnounce EventKind = iota
	// EvWithdraw: AS stops originating Prefix.
	EvWithdraw
	// EvPolicyChange: AS's import policy and VRP view are replaced by the
	// event's Policy and VRPs (both may be nil — an ROV rollback).
	EvPolicyChange
	// EvROAChange: the VRP views already assigned to validating ASes changed
	// for the given ROA Prefixes (issuance, expiry, SLURM edits). The engine
	// mutates nothing; it re-converges every interned prefix the listed
	// space overlaps so import-time validation is re-run where it can differ.
	EvROAChange
	// EvLinkChange: a new or re-typed adjacency between AS and Peer with
	// relationship Rel (as Graph.Link). A new edge can shift best paths for
	// arbitrary prefixes, so this dirties the whole interned prefix set.
	EvLinkChange
	// EvLeakChange: AS starts (Leak true) or stops (Leak false) leaking —
	// exporting every best route to every neighbor regardless of Gao-Rexford
	// scoping. A leak reroutes arbitrary prefixes through the leaker, so this
	// dirties the whole interned prefix set, exactly like a link change.
	EvLeakChange
)

// String returns the kind's wire-ish name.
func (k EventKind) String() string {
	switch k {
	case EvAnnounce:
		return "announce"
	case EvWithdraw:
		return "withdraw"
	case EvPolicyChange:
		return "policy-change"
	case EvROAChange:
		return "roa-change"
	case EvLinkChange:
		return "link-change"
	case EvLeakChange:
		return "leak-change"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// RouteEvent is one typed routing-state change. Which fields are read
// depends on Kind:
//
//	EvAnnounce/EvWithdraw: AS, Prefix, and optionally ForgedOrigin
//	EvPolicyChange:        AS, Policy, VRPs, and optionally Prefixes as an
//	                       explicit dirty-scope hint (when empty the engine
//	                       derives the scope from the old and new VRP views)
//	EvROAChange:           Prefixes (the changed ROA space)
//	EvLinkChange:          AS, Peer, Rel
//	EvLeakChange:          AS, Leak
type RouteEvent struct {
	Kind   EventKind
	AS     inet.ASN
	Peer   inet.ASN
	Rel    Relationship
	Prefix netip.Prefix
	// Prefixes carries multi-prefix scopes (EvROAChange, and the optional
	// EvPolicyChange hint).
	Prefixes []netip.Prefix
	Policy   ImportPolicy
	VRPs     *rpki.VRPSet
	// ForgedOrigin, when non-zero on an EvAnnounce, makes AS announce Prefix
	// with a wire path ending in this ASN instead of itself (a forged-origin
	// hijack that validates under ROV). Withdrawing the prefix clears it.
	ForgedOrigin inet.ASN
	// Leak carries the desired leaking state for EvLeakChange.
	Leak bool
}

// EventResult summarizes what one ApplyEvents batch did.
type EventResult struct {
	// Events is the number of events consumed (before coalescing).
	Events int
	// DirtyPrefixes is how many interned prefixes were re-converged; 0 means
	// the batch coalesced to a no-op (e.g. a withdraw+announce flap) and no
	// propagation ran.
	DirtyPrefixes int
	// Rounds is the number of propagation rounds the re-convergence took.
	Rounds int
	// ASesTouched counts ASes whose Loc-RIB changed during propagation.
	ASesTouched int
}

// ApplyEvents applies a batch of route events and incrementally re-converges
// exactly the affected prefixes. It is the single write path of the
// convergence engine: Converge, ConvergePrefixes, and ApplyEvents all drive
// the same dirty-set propagation core, so an event batch yields routing
// state bit-identical to a from-scratch rebuild of the same world (the
// equivalence property tests pin this down at multiple worker counts).
//
// Announce/withdraw events are coalesced per (AS, prefix): only the net
// origination change is applied, so a transient flap — withdraw immediately
// followed by re-announce inside one batch — costs microseconds and leaves
// routing state untouched. Policy, ROA, and link events accumulate their
// dirty scopes into the same re-convergence, so a batch pays one propagation
// regardless of how many events it carries.
//
// Graph membership and policy mutations are applied in order; the batch is
// not transactional — on error, events preceding the faulty one may already
// have been applied (the returned result reports zero work in that case, and
// callers should treat the graph as needing a full Converge).
//
// Converge must have run once before the first event batch, exactly as with
// ConvergePrefixes.
func (g *Graph) ApplyEvents(events []RouteEvent) (EventResult, error) {
	start := time.Now()
	res := EventResult{Events: len(events)}
	g.stats.Batches.Add(1)
	g.stats.EventsApplied.Add(uint64(len(events)))
	if len(events) == 0 {
		g.stats.observe(time.Since(start))
		return res, nil
	}

	// Pass 1: coalesce origination events into the net desired state and
	// apply the structural mutations (policy swaps, links), accumulating the
	// dirty prefix-ID scope as we go.
	type originKey struct {
		asn inet.ASN
		id  PrefixID
	}
	type originState struct {
		active bool
		forged inet.ASN
	}
	var (
		order     []originKey
		desired   map[originKey]originState
		leakOrder []inet.ASN
		leakWant  map[inet.ASN]bool
		dirty     map[PrefixID]struct{}
	)
	dirtyAll := false
	markDirty := func(id PrefixID) {
		if dirty == nil {
			dirty = make(map[PrefixID]struct{}, 8)
		}
		dirty[id] = struct{}{}
	}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case EvAnnounce, EvWithdraw:
			if g.ASes[ev.AS] == nil {
				return EventResult{Events: len(events)}, fmt.Errorf("bgp: %s event for unknown AS %v", ev.Kind, ev.AS)
			}
			if !ev.Prefix.IsValid() {
				return EventResult{Events: len(events)}, fmt.Errorf("bgp: %s event for AS %v with invalid prefix", ev.Kind, ev.AS)
			}
			k := originKey{ev.AS, g.tab.Intern(ev.Prefix)}
			if desired == nil {
				desired = make(map[originKey]originState, 4)
			}
			if _, seen := desired[k]; !seen {
				order = append(order, k)
			}
			st := originState{active: ev.Kind == EvAnnounce}
			if st.active && ev.ForgedOrigin != ev.AS {
				st.forged = ev.ForgedOrigin
			}
			desired[k] = st
		case EvPolicyChange:
			a := g.ASes[ev.AS]
			if a == nil {
				return EventResult{Events: len(events)}, fmt.Errorf("bgp: policy-change event for unknown AS %v", ev.AS)
			}
			oldVRPs := a.VRPs
			a.Policy, a.VRPs = ev.Policy, ev.VRPs
			if len(ev.Prefixes) > 0 {
				for _, p := range ev.Prefixes {
					markDirty(g.tab.Intern(p))
				}
				continue
			}
			// Import policies discriminate only on validation outcomes, and
			// an announcement's outcome can differ from NotFound only where
			// the old or new VRP view covers it — everything else imports
			// identically under any policy, so the covered prefixes bound
			// the dirty scope.
			for id, n := 0, g.tab.Len(); id < n; id++ {
				p := g.tab.Prefix(PrefixID(id))
				if (oldVRPs != nil && oldVRPs.CoversPrefix(p)) ||
					(ev.VRPs != nil && ev.VRPs.CoversPrefix(p)) {
					markDirty(PrefixID(id))
				}
			}
		case EvROAChange:
			for _, roa := range ev.Prefixes {
				for id, n := 0, g.tab.Len(); id < n; id++ {
					if roa.Overlaps(g.tab.Prefix(PrefixID(id))) {
						markDirty(PrefixID(id))
					}
				}
			}
		case EvLinkChange:
			if err := g.Link(ev.AS, ev.Peer, ev.Rel); err != nil {
				return EventResult{Events: len(events)}, err
			}
			dirtyAll = true
		case EvLeakChange:
			if g.ASes[ev.AS] == nil {
				return EventResult{Events: len(events)}, fmt.Errorf("bgp: leak-change event for unknown AS %v", ev.AS)
			}
			if leakWant == nil {
				leakWant = make(map[inet.ASN]bool, 2)
			}
			if _, seen := leakWant[ev.AS]; !seen {
				leakOrder = append(leakOrder, ev.AS)
			}
			leakWant[ev.AS] = ev.Leak
		default:
			return EventResult{Events: len(events)}, fmt.Errorf("bgp: unknown event kind %d", ev.Kind)
		}
	}

	// Pass 2: apply the net origination changes. Only transitions dirty a
	// prefix — a flap that withdraws and re-announces inside the batch
	// coalesces to nothing here. A forged-origin change dirties the prefix
	// even when the origination set itself is unchanged: the wire path the
	// origin seeds is different, so it must re-flood.
	for _, k := range order {
		a := g.ASes[k.asn]
		p := g.tab.Prefix(k.id)
		st := desired[k]
		changed := a.setOriginated(p, st.active)
		if a.setForged(p, st.forged) {
			changed = true
		}
		if changed {
			markDirty(k.id)
		}
	}
	// Net leak toggles dirty the whole prefix set, like link changes.
	for _, asn := range leakOrder {
		if a := g.ASes[asn]; a.Leaking != leakWant[asn] {
			a.Leaking = leakWant[asn]
			dirtyAll = true
		}
	}

	var pids []PrefixID
	if dirtyAll {
		pids = make([]PrefixID, g.tab.Len())
		for id := range pids {
			pids[id] = PrefixID(id)
		}
	} else if len(dirty) > 0 {
		pids = make([]PrefixID, 0, len(dirty))
		for id := range dirty {
			pids = append(pids, id)
		}
		sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	}
	rounds, touched, err := g.convergeDirty(pids)
	if dirtyAll {
		// Topology-wide changes (links, leak toggles) can reroute even
		// destinations no interned prefix covers; move the floor so cached
		// paths toward the NoPrefixID class drop too. bumpAffected's dense
		// path covers every interned prefix but not that class.
		g.affectedFloor = g.version
	}
	res.DirtyPrefixes = len(pids)
	res.Rounds = rounds
	res.ASesTouched = touched
	if len(pids) > 0 {
		g.stats.IncrementalConverges.Add(1)
		g.stats.DirtyPrefixes.Add(uint64(len(pids)))
		g.stats.Rounds.Add(uint64(rounds))
		g.stats.ASesTouched.Add(uint64(touched))
	}
	g.stats.observe(time.Since(start))
	return res, err
}

// SetOriginated adds or removes an originated prefix on the AS, reporting
// whether the set changed. ApplyEvents uses it to apply net origination
// changes; direct callers must re-converge the prefix afterwards.
func (a *AS) setOriginated(p netip.Prefix, active bool) bool {
	idx := -1
	for i, own := range a.Originated {
		if own == p {
			idx = i
			break
		}
	}
	switch {
	case active && idx < 0:
		a.Originated = append(a.Originated, p)
		return true
	case !active && idx >= 0:
		a.Originated = append(a.Originated[:idx], a.Originated[idx+1:]...)
		return true
	}
	return false
}

// statsLatRingSize bounds the re-convergence latency reservoir (a power of
// two so the ring index is a mask).
const statsLatRingSize = 1 << 10

// ConvergeStats accumulates the convergence engine's observability counters.
// All fields are atomics: the serving daemon's /metrics endpoint reads them
// concurrently with the measurement loop's convergences.
type ConvergeStats struct {
	// EventsApplied counts RouteEvents consumed; Batches counts ApplyEvents
	// calls (a batch may coalesce to zero work).
	EventsApplied atomic.Uint64
	Batches       atomic.Uint64
	// IncrementalConverges counts dirty-set propagation runs (event batches
	// and ConvergePrefixes calls that had work); FullConverges counts
	// from-scratch Converge runs.
	IncrementalConverges atomic.Uint64
	FullConverges        atomic.Uint64
	// DirtyPrefixes, ASesTouched and Rounds are cumulative over incremental
	// runs: prefixes re-flooded, ASes whose Loc-RIB changed, and propagation
	// rounds taken.
	DirtyPrefixes atomic.Uint64
	ASesTouched   atomic.Uint64
	Rounds        atomic.Uint64

	latCount atomic.Uint64
	latRing  [statsLatRingSize]atomic.Int64 // nanoseconds, sliding reservoir
}

// observe records one incremental re-convergence latency.
func (s *ConvergeStats) observe(d time.Duration) {
	i := s.latCount.Add(1) - 1
	s.latRing[i&(statsLatRingSize-1)].Store(int64(d))
}

// LatencyQuantiles returns the p50 and p99 of the recorded re-convergence
// latencies (over the sliding reservoir; zeros when nothing was recorded).
func (s *ConvergeStats) LatencyQuantiles() (p50, p99 time.Duration) {
	n := s.latCount.Load()
	if n == 0 {
		return 0, 0
	}
	if n > statsLatRingSize {
		n = statsLatRingSize
	}
	lats := make([]int64, n)
	for i := range lats {
		lats[i] = s.latRing[i].Load()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := func(q float64) int64 {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return time.Duration(idx(0.50)), time.Duration(idx(0.99))
}

// Snapshot renders the counters as an expvar-friendly map. Mean ASes touched
// per event batch and the latency quantiles are derived here so consumers
// get ready-to-plot numbers.
func (s *ConvergeStats) Snapshot() map[string]any {
	p50, p99 := s.LatencyQuantiles()
	batches := s.Batches.Load()
	var meanTouched float64
	if inc := s.IncrementalConverges.Load(); inc > 0 {
		meanTouched = float64(s.ASesTouched.Load()) / float64(inc)
	}
	return map[string]any{
		"events_applied":        s.EventsApplied.Load(),
		"event_batches":         batches,
		"incremental_converges": s.IncrementalConverges.Load(),
		"full_converges":        s.FullConverges.Load(),
		"dirty_prefixes":        s.DirtyPrefixes.Load(),
		"ases_touched":          s.ASesTouched.Load(),
		"ases_touched_mean":     meanTouched,
		"rounds":                s.Rounds.Load(),
		"reconverge_p50_us":     float64(p50) / 1e3,
		"reconverge_p99_us":     float64(p99) / 1e3,
	}
}

// Stats returns the graph's convergence counters (never nil; shared with the
// engine, so the returned pointer stays live).
func (g *Graph) Stats() *ConvergeStats { return &g.stats }
