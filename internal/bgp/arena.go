package bgp

import (
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
)

// Announcement arena chunk sizes. One convergence at paper scale emits a few
// million announcements; carving them out of large chunks turns two heap
// allocations per emission (the Announcement and its path slice) into two
// amortized pointer bumps, which is where the multi-GB per-convergence churn
// used to come from.
const (
	annChunkSize  = 1024
	pathChunkASNs = 16384
)

// annArena is a bump allocator for announcements and their AS paths. Each
// propagation worker owns one (plus one for the serial seeding phase), so
// allocation needs no locking.
//
// Lifetime rule: chunks are never rewritten or reused once full — routes
// installed in Loc-RIBs, collector snapshots, and traced paths all alias the
// announcement storage, so recycling a chunk across convergences would
// corrupt retained state. A superseded chunk simply loses its last reference
// when the routes pointing into it are reset, and the garbage collector
// reclaims it; only the index-addressed per-AS tables (Adj-RIB-In cells,
// Loc-RIB slots, spill pool) are reused in place.
type annArena struct {
	anns []Announcement
	path []inet.ASN
}

// announcement materializes an announcement whose path is [first, rest...]
// in arena storage. The returned pointer and its path are immutable.
func (ar *annArena) announcement(prefix netip.Prefix, first inet.ASN, rest []inet.ASN) *Announcement {
	need := len(rest) + 1
	if len(ar.path)+need > cap(ar.path) {
		size := pathChunkASNs
		if need > size {
			size = need
		}
		ar.path = make([]inet.ASN, 0, size)
	}
	start := len(ar.path)
	ar.path = append(ar.path, first)
	ar.path = append(ar.path, rest...)
	// Full slice expression: later bumps append past this path's capacity,
	// never into it.
	p := ar.path[start:len(ar.path):len(ar.path)]
	if len(ar.anns) == cap(ar.anns) {
		ar.anns = make([]Announcement, 0, annChunkSize)
	}
	ar.anns = append(ar.anns, Announcement{Prefix: prefix, Path: p})
	return &ar.anns[len(ar.anns)-1]
}
