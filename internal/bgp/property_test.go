package bgp

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"github.com/netsec-lab/rovista/internal/inet"
)

// randomHierarchy builds a random 3-tier topology with peering and returns
// the converged graph.
func randomHierarchy(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	nTop, nMid, nLeaf := 3+rng.Intn(3), 6+rng.Intn(6), 15+rng.Intn(15)
	var top, mid, leaf []inet.ASN
	next := inet.ASN(100)
	add := func(n int) []inet.ASN {
		out := make([]inet.ASN, n)
		for i := range out {
			out[i] = next
			next++
			g.AddAS(out[i])
		}
		return out
	}
	top, mid, leaf = add(nTop), add(nMid), add(nLeaf)
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			g.Link(top[i], top[j], Peer)
		}
	}
	for _, m := range mid {
		g.Link(top[rng.Intn(len(top))], m, Customer)
		if rng.Float64() < 0.4 {
			g.Link(top[rng.Intn(len(top))], m, Customer)
		}
	}
	for i := 0; i < len(mid); i++ {
		for j := i + 1; j < len(mid); j++ {
			if rng.Float64() < 0.2 {
				g.Link(mid[i], mid[j], Peer)
			}
		}
	}
	for k, l := range leaf {
		g.Link(mid[rng.Intn(len(mid))], l, Customer)
		if rng.Float64() < 0.3 {
			g.Link(mid[rng.Intn(len(mid))], l, Customer)
		}
		// Every leaf originates one prefix.
		p := netip.PrefixFrom(inet.V4(uint32(10+k)<<24), 16)
		g.AS(l).Originated = []netip.Prefix{p}
	}
	if _, err := g.Converge(); err != nil {
		panic(err)
	}
	return g
}

// TestValleyFreeProperty: every installed route's path must be valley-free.
// Walking from the route holder toward the origin, edges (how each hop
// learned the route) must match the pattern Provider* Peer? Customer*:
// traffic climbs away from the origin, crosses at most one peering link,
// then descends — the Gao-Rexford guarantee.
func TestValleyFreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomHierarchy(seed)
		for asn, a := range g.ASes {
			for _, r := range a.Routes() {
				if r.SelfOriginated() {
					continue
				}
				// Edge sequence from the holder toward the origin.
				cur := asn
				hops := r.Path
				state := 0 // 0: providers allowed; 1: seen peer; 2: descending
				for _, next := range hops {
					rel, ok := g.AS(cur).Neighbors[next]
					if !ok {
						t.Logf("AS %v path %v uses non-adjacent hop %v", asn, hops, next)
						return false
					}
					switch rel {
					case Provider: // climbing away from origin? No: next is cur's provider
						if state != 0 {
							t.Logf("AS %v path %v climbs after turning (state %d)", asn, hops, state)
							return false
						}
					case Peer:
						if state >= 1 {
							t.Logf("AS %v path %v crosses two peer links", asn, hops)
							return false
						}
						state = 1
					case Customer:
						state = 2
					}
					cur = next
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestConvergenceIdempotent: converging an unchanged graph again must yield
// identical routing state.
func TestConvergenceIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomHierarchy(seed)
		before := snapshotRoutes(g)
		if _, err := g.Converge(); err != nil {
			return false
		}
		after := snapshotRoutes(g)
		for asn, ra := range before {
			rb := after[asn]
			if len(ra) != len(rb) {
				return false
			}
			for i := range ra {
				if !routesEqual(ra[i], rb[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestLookupAgreesWithBestRoute: the data-plane LPM must return the
// installed best route of the most specific covering prefix.
func TestLookupAgreesWithBestRoute(t *testing.T) {
	f := func(seed int64) bool {
		g := randomHierarchy(seed)
		rng := rand.New(rand.NewSource(seed ^ 77))
		for asn, a := range g.ASes {
			routes := a.Routes()
			if len(routes) == 0 {
				continue
			}
			r := routes[rng.Intn(len(routes))]
			addr := inet.NthAddr(r.Prefix, 1)
			got, ok := a.Lookup(addr)
			if !ok {
				t.Logf("AS %v: no LPM for %v despite installed %v", asn, addr, r.Prefix)
				return false
			}
			// The match must cover the address and be at least as specific
			// as the route we picked.
			if !got.Prefix.Contains(addr) || got.Prefix.Bits() < r.Prefix.Bits() {
				t.Logf("AS %v: LPM %v for addr %v under %v", asn, got.Prefix, addr, r.Prefix)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestDeliveredPathsEndAtOrigin: every delivered data-plane path terminates
// at an AS originating a covering prefix, and transits only adjacent ASes.
func TestDeliveredPathsEndAtOrigin(t *testing.T) {
	f := func(seed int64) bool {
		g := randomHierarchy(seed)
		rng := rand.New(rand.NewSource(seed ^ 99))
		var asns []inet.ASN
		for asn := range g.ASes {
			asns = append(asns, asn)
		}
		for trial := 0; trial < 30; trial++ {
			src := asns[rng.Intn(len(asns))]
			dst := inet.V4(uint32(10+rng.Intn(30))<<24 | uint32(rng.Intn(1<<16)))
			path, delivered := g.DataPath(src, dst)
			if !delivered {
				continue
			}
			last := path[len(path)-1]
			if !g.AS(last).OriginatesCovering(dst) {
				return false
			}
			for i := 1; i < len(path); i++ {
				if _, adj := g.AS(path[i-1]).Neighbors[path[i]]; !adj {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
