package bgp

import (
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
)

// PrefixID is a dense interned identifier for a masked IPv4 prefix. Every
// prefix that can appear in routing state — originated prefixes, announced
// prefixes, scoped default routes — is interned into the graph's PrefixTable
// at origination time, so per-AS routing tables index flat slices by ID
// instead of hashing pointer-heavy map keys. IDs are never reused: a world
// that withdraws a prefix keeps its ID (the per-AS slot simply empties),
// which is what lets incremental re-convergence and path caches key on IDs
// across snapshots.
type PrefixID uint32

// NoPrefixID is the sentinel for "no interned prefix covers this address".
const NoPrefixID PrefixID = ^PrefixID(0)

// PrefixTable interns masked IPv4 prefixes to dense PrefixIDs. One table is
// shared by every AS in a Graph. Interning happens only on the serial
// convergence/build path; lookups are lock-free reads and safe to run
// concurrently with each other (the parallel propagate workers and the
// measurement data plane both lean on this).
type PrefixTable struct {
	byKey    map[uint64]PrefixID
	prefixes []netip.Prefix
	keys     []uint64
	// lenCount tracks interned prefixes per prefix length so the global LPM
	// only probes populated lengths — same trick as the per-AS FIB walk.
	lenCount [33]int
	gen      uint64
}

// NewPrefixTable returns an empty table.
func NewPrefixTable() *PrefixTable {
	return &PrefixTable{byKey: make(map[uint64]PrefixID)}
}

// Len reports the number of interned prefixes (also the next ID).
func (t *PrefixTable) Len() int { return len(t.prefixes) }

// Gen returns a counter that increases whenever a new prefix is interned.
// Consumers memoizing address→ID resolutions key on it.
func (t *PrefixTable) Gen() uint64 { return t.gen }

// Intern returns the ID for p (masked), assigning the next dense ID on first
// sight. Not safe for concurrent use; call only from the serial build or
// convergence path.
func (t *PrefixTable) Intern(p netip.Prefix) PrefixID {
	m := p.Masked()
	k := pkey(m)
	if id, ok := t.byKey[k]; ok {
		return id
	}
	id := PrefixID(len(t.prefixes))
	t.byKey[k] = id
	t.prefixes = append(t.prefixes, m)
	t.keys = append(t.keys, k)
	t.lenCount[m.Bits()]++
	t.gen++
	return id
}

// IDOf returns the ID of p (masked) if it has been interned.
func (t *PrefixTable) IDOf(p netip.Prefix) (PrefixID, bool) {
	id, ok := t.byKey[pkey(p.Masked())]
	return id, ok
}

// idOfKey resolves a packed prefix key (see pkey/maskKey).
func (t *PrefixTable) idOfKey(k uint64) (PrefixID, bool) {
	id, ok := t.byKey[k]
	return id, ok
}

// Prefix returns the prefix behind an ID. IDs come from Intern/IDOf/LPM, so
// out-of-range values are a caller bug and panic via the bounds check.
func (t *PrefixTable) Prefix(id PrefixID) netip.Prefix { return t.prefixes[id] }

// keyOf returns the packed sort key of an interned prefix.
func (t *PrefixTable) keyOf(id PrefixID) uint64 { return t.keys[id] }

// plenOf returns the prefix length of an interned prefix.
func (t *PrefixTable) plenOf(id PrefixID) int { return int(uint8(t.keys[id])) }

// LPM returns the most specific interned prefix containing addr. Because
// every prefix consulted by the data plane (FIB entries, originated prefixes,
// scoped defaults) is interned, two addresses resolving to the same ID are
// forwarded identically from every source AS — the property the netsim
// forwarding-path cache keys on.
func (t *PrefixTable) LPM(addr netip.Addr) (PrefixID, bool) {
	v := inet.V4Int(addr)
	for plen := 32; plen >= 0; plen-- {
		if t.lenCount[plen] == 0 {
			continue
		}
		if id, ok := t.byKey[maskKey(v, plen)]; ok {
			return id, true
		}
	}
	return NoPrefixID, false
}
