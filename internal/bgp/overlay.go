package bgp

import (
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
)

// Overlay is a copy-on-write fork of a converged Graph. The fork shares the
// base graph's interned prefix storage, Adj-RIB-In cells, Loc-RIB slices, and
// export fan-out lists; an AS copies its routing state the first time the
// overlay's convergence engine needs to write it. That makes "what changes if
// AS X deploys ROV / drops a route / gets hijacked" queries cheap: only the
// dirty cone of the counterfactual event pays for private state, and the base
// graph is provably never written (the overlay isolation property tests pin
// this down byte-for-byte).
//
// Validity contract: an overlay forks the base's slice headers, so it is
// coherent only while the base's routing state stays frozen. Any base
// convergence, event batch, or version bump after the fork makes the overlay
// stale — Stale() reports this, and callers (the /v1/whatif path) must fork a
// fresh overlay per query and serialize forks against base mutations.
type Overlay struct {
	g           *Graph
	base        *Graph
	baseVersion uint64
	baseTabGen  uint64
}

// NewOverlay forks g. The base must have converged at least once (the fork
// captures its dense AS index; overlay convergences are incremental).
func NewOverlay(base *Graph) *Overlay {
	base.sortedASNs() // refresh the dense index if membership changed
	og := &Graph{
		ASes:          make(map[inet.ASN]*AS, len(base.ASes)),
		tab:           base.tab.fork(),
		version:       base.version,
		affectedFloor: base.affectedFloor,
		warmed:        true,
		sortedCache:   append([]inet.ASN(nil), base.sortedCache...),
		asList:        make([]*AS, len(base.asList)),
		asIndex:       make(map[inet.ASN]int32, len(base.asList)),
		indexGen:      base.indexGen,
		affected:      append([]uint64(nil), base.affected...),
	}
	for i, a := range base.asList {
		c := a.cowClone(og.tab)
		og.ASes[c.ASN] = c
		og.asList[i] = c
		og.asIndex[c.ASN] = int32(i)
	}
	return &Overlay{g: og, base: base, baseVersion: base.version, baseTabGen: base.tab.gen}
}

// Graph returns the overlay's private graph. Reads and event batches against
// it never touch the base.
func (o *Overlay) Graph() *Graph { return o.g }

// ApplyEvents applies a counterfactual event batch to the overlay.
func (o *Overlay) ApplyEvents(events []RouteEvent) (EventResult, error) {
	return o.g.ApplyEvents(events)
}

// Stale reports whether the base graph's routing state moved since the fork,
// invalidating the overlay's shared slice headers.
func (o *Overlay) Stale() bool {
	return o.base.version != o.baseVersion || o.base.tab.gen != o.baseTabGen
}

// MaterializedASes counts ASes whose routing state went private — the size of
// the dirty cone the overlay's convergences actually touched.
func (o *Overlay) MaterializedASes() int {
	n := 0
	for _, a := range o.g.asList {
		if !a.cowState {
			n++
		}
	}
	return n
}

// fork returns a copy-on-write fork of the table. The fork clamps the shared
// slices' capacities to their lengths, so interning into either side
// reallocates privately instead of writing shared backing.
func (t *PrefixTable) fork() *PrefixTable {
	n := len(t.prefixes)
	byKey := make(map[uint64]PrefixID, n)
	for k, v := range t.byKey {
		byKey[k] = v
	}
	return &PrefixTable{
		byKey:    byKey,
		prefixes: t.prefixes[:n:n],
		keys:     t.keys[:n:n],
		lenCount: t.lenCount,
		gen:      t.gen,
	}
}

// cowClone returns a copy-on-write clone of the AS wired to the overlay's
// forked table. Routing-state slices are shared with capacity clamped to
// length (any append reallocates privately); maps and slices the engine
// mutates in place — Originated, the forged-origin map — are copied eagerly,
// and Neighbors copies lazily via materializeTopo.
func (a *AS) cowClone(tab *PrefixTable) *AS {
	c := *a
	c.tab = tab
	c.Originated = append([]netip.Prefix(nil), a.Originated...)
	c.adjIn = a.adjIn[:len(a.adjIn):len(a.adjIn)]
	c.rib = a.rib[:len(a.rib):len(a.rib)]
	c.spillPool = a.spillPool[:len(a.spillPool):len(a.spillPool)]
	c.exportAll = a.exportAll[:len(a.exportAll):len(a.exportAll)]
	c.exportCustomers = a.exportCustomers[:len(a.exportCustomers):len(a.exportCustomers)]
	if a.forged != nil {
		c.forged = make(map[netip.Prefix]inet.ASN, len(a.forged))
		for p, o := range a.forged {
			c.forged[p] = o
		}
	}
	c.cowState = true
	c.cowTopo = true
	return &c
}

// materialize copies the shared routing-state slices before the first write.
// Spill-run offsets and free-list heads stay valid: they index positions, and
// the copy preserves layout.
func (a *AS) materialize() {
	if !a.cowState {
		return
	}
	a.cowState = false
	adjIn := make([]adjCell, len(a.adjIn))
	copy(adjIn, a.adjIn)
	a.adjIn = adjIn
	rib := make([]locRoute, len(a.rib))
	copy(rib, a.rib)
	a.rib = rib
	if len(a.spillPool) > 0 {
		sp := make([]adjRoute, len(a.spillPool))
		copy(sp, a.spillPool)
		a.spillPool = sp
	}
	a.exportAll = append([]exportTarget(nil), a.exportAll...)
	a.exportCustomers = append([]exportTarget(nil), a.exportCustomers...)
}

// materializeTopo copies the shared Neighbors map before a topology write.
func (a *AS) materializeTopo() {
	if !a.cowTopo {
		return
	}
	a.cowTopo = false
	nb := make(map[inet.ASN]Relationship, len(a.Neighbors))
	for n, rel := range a.Neighbors {
		nb[n] = rel
	}
	a.Neighbors = nb
}

// cowNeedsWrite reports whether resetPrefixes would write shared state for
// this dirty set: an occupied Adj-RIB-In cell or set Loc-RIB slot among the
// dirty prefixes, a self route to reinstall, or stale export fan-out lists.
// Pure table growth is excluded — ensureSized reallocates and never writes
// shared backing.
func (a *AS) cowNeedsWrite(g *Graph, pids []PrefixID, mark []uint32, gen uint32) bool {
	for _, id := range pids {
		if int(id) >= len(a.adjIn) || int(id) >= len(a.rib) {
			continue // beyond the fork point: nothing installed yet
		}
		if a.adjIn[id].r0.ann != nil || a.rib[id].isSet() {
			return true
		}
	}
	for _, p := range a.Originated {
		if id, ok := a.tab.IDOf(p); ok && int(id) < len(mark) && mark[id] == gen {
			return true
		}
	}
	return a.exportGen != a.topoGen || a.exportIdxGen != g.indexGen ||
		(len(a.exportAll) == 0 && len(a.Neighbors) > 0)
}
