package bgp

import (
	"net/netip"
	"testing"
)

// FuzzPrefixTable interprets fuzz bytes as an intern/lookup script and checks
// the table's core invariants against a brute-force shadow model: interning
// is idempotent and mask-canonical, IDs stay dense and stable, and LPM always
// returns the longest interned prefix containing the address (or reports
// none when no interned prefix covers it).
func FuzzPrefixTable(f *testing.F) {
	f.Add([]byte{10, 0, 0, 0, 8, 10, 0, 0, 1})
	f.Add([]byte{192, 168, 1, 0, 24, 192, 168, 1, 7, 192, 168, 1, 0, 25})
	f.Add([]byte{0, 0, 0, 0, 0, 255, 255, 255, 255, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := NewPrefixTable()
		var interned []netip.Prefix

		// Script: 5 bytes intern a prefix (4 address bytes + length%33),
		// then the same 4 address bytes are probed via LPM.
		for i := 0; i+4 < len(data); i += 5 {
			addr := netip.AddrFrom4([4]byte{data[i], data[i+1], data[i+2], data[i+3]})
			p := netip.PrefixFrom(addr, int(data[i+4])%33)

			before := tab.Len()
			id := tab.Intern(p)
			if got := tab.Prefix(id); got != p.Masked() {
				t.Fatalf("Prefix(Intern(%v)) = %v, want %v", p, got, p.Masked())
			}
			if again := tab.Intern(p); again != id {
				t.Fatalf("re-interning %v changed ID %d -> %d", p, id, again)
			}
			if id2 := tab.Intern(p.Masked()); id2 != id {
				t.Fatalf("interning masked form of %v gave different ID", p)
			}
			seen := false
			for _, q := range interned {
				if q == p.Masked() {
					seen = true
					break
				}
			}
			if !seen {
				interned = append(interned, p.Masked())
				if int(id) != before {
					t.Fatalf("new prefix %v got ID %d, want dense next ID %d", p, id, before)
				}
			} else if tab.Len() != before {
				t.Fatalf("re-interning known prefix %v grew the table", p)
			}
			if tab.Len() != len(interned) {
				t.Fatalf("Len() = %d, shadow model has %d", tab.Len(), len(interned))
			}

			// LPM against the brute-force longest match over the shadow set.
			probe := addr
			wantLen := -1
			var want netip.Prefix
			for _, q := range interned {
				if q.Contains(probe) && q.Bits() > wantLen {
					wantLen, want = q.Bits(), q
				}
			}
			gotID, ok := tab.LPM(probe)
			if (wantLen >= 0) != ok {
				t.Fatalf("LPM(%v) ok=%v, shadow model says %v", probe, ok, wantLen >= 0)
			}
			if ok && tab.Prefix(gotID) != want {
				t.Fatalf("LPM(%v) = %v, want %v", probe, tab.Prefix(gotID), want)
			}
			if wantID, okID := tab.IDOf(want); ok && (!okID || wantID != gotID) {
				t.Fatalf("IDOf(%v) disagrees with LPM result", want)
			}
		}

		// Gen must count exactly the distinct interned prefixes.
		if tab.Gen() != uint64(len(interned)) {
			t.Fatalf("Gen() = %d after %d distinct interns", tab.Gen(), len(interned))
		}
	})
}
