package bgp

import (
	"net/netip"
	"testing"
)

// BenchmarkConverge measures a full from-scratch convergence of a random
// 3-tier hierarchy. Converge rebuilds all routing state, so re-running it on
// the same graph is representative of cold convergence.
func BenchmarkConverge(b *testing.B) {
	g := randomHierarchy(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Converge(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergePrefixes measures the incremental path the longitudinal
// engine leans on: re-converging only a handful of prefixes on an already
// converged graph.
func BenchmarkConvergePrefixes(b *testing.B) {
	g := randomHierarchy(1)
	var prefixes []netip.Prefix
	for _, a := range g.ASes {
		if len(a.Originated) > 0 {
			prefixes = append(prefixes, a.Originated[0])
		}
		if len(prefixes) == 4 {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ConvergePrefixes(prefixes); err != nil {
			b.Fatal(err)
		}
	}
}
