package rtr

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"github.com/netsec-lab/rovista/internal/rpki"
)

// Client is the router side of the protocol: it synchronizes a local VRP
// set from a cache and hands it to the BGP import policies.
type Client struct {
	rw       io.ReadWriter
	session  uint16
	serial   uint32
	notified uint32
	synced   bool
	aborted  atomic.Bool
	vrps     map[string]rpki.VRP
}

// NewClient wraps a stream to a cache.
func NewClient(rw io.ReadWriter) *Client {
	return &Client{rw: rw, vrps: make(map[string]rpki.VRP)}
}

// Serial returns the serial of the last completed sync.
func (c *Client) Serial() uint32 { return c.serial }

// Notified returns the serial carried by the most recent Serial Notify the
// cache pushed mid-session, or 0 when none was seen. A value above Serial()
// means the cache has newer data and a Refresh is worthwhile.
func (c *Client) Notified() uint32 { return c.notified }

// ErrAborted is returned by Reset/Refresh when Abort interrupted a sync.
var ErrAborted = errors.New("rtr: client aborted")

// Abort unblocks a Reset or Refresh that is parked in a blocking read.
// Client reads have no deadline — over a net.Conn or net.Pipe the read loop
// would otherwise leak its goroutine when the caller's context is cancelled
// mid-stream — so Abort closes the underlying transport (when it is an
// io.Closer) to force the pending ReadPDU to return. The client is
// unusable afterwards; callers reconnect with a fresh Client.
func (c *Client) Abort() error {
	c.aborted.Store(true)
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// Reset performs a full resynchronization (Reset Query → Cache Response →
// prefix PDUs → End of Data).
func (c *Client) Reset() error {
	if err := writePDU(c.rw, &PDU{Version: Version, Type: TypeResetQuery}); err != nil {
		return err
	}
	c.vrps = make(map[string]rpki.VRP)
	return c.consumeResponse(true)
}

// Refresh performs an incremental sync from the client's current serial.
// When the cache answers Cache Reset (history trimmed), it falls back to a
// full Reset automatically.
func (c *Client) Refresh() error {
	if !c.synced {
		return c.Reset()
	}
	if err := writePDU(c.rw, &PDU{Version: Version, Type: TypeSerialQuery, Session: c.session, Serial: c.serial}); err != nil {
		return err
	}
	return c.consumeResponse(false)
}

// consumeResponse processes PDUs until End of Data (or Cache Reset).
func (c *Client) consumeResponse(isReset bool) error {
	sawCacheResponse := false
	for {
		pdu, err := ReadPDU(c.rw)
		if err != nil {
			if c.aborted.Load() {
				return ErrAborted
			}
			return err
		}
		switch pdu.Type {
		case TypeSerialNotify:
			// Caches may push unsolicited notifies at any time, including
			// interleaved with an in-flight response. Record and continue.
			c.notified = pdu.Serial
		case TypeCacheResponse:
			sawCacheResponse = true
			c.session = pdu.Session
		case TypeIPv4Prefix:
			if !sawCacheResponse {
				return fmt.Errorf("rtr: prefix PDU before Cache Response")
			}
			v := pdu.VRPOf()
			k := vrpKey(v)
			if pdu.Flags&FlagAnnounce != 0 {
				c.vrps[k] = v
			} else {
				delete(c.vrps, k)
			}
		case TypeEndOfData:
			if !sawCacheResponse {
				return fmt.Errorf("rtr: End of Data before Cache Response")
			}
			c.serial = pdu.Serial
			c.synced = true
			return nil
		case TypeCacheReset:
			if isReset {
				return fmt.Errorf("rtr: cache reset during reset")
			}
			return c.Reset()
		case TypeErrorReport:
			return fmt.Errorf("rtr: cache error %d: %s", pdu.Session, pdu.Text)
		default:
			return fmt.Errorf("rtr: unexpected PDU %v", pdu.Type)
		}
	}
}

func vrpKey(v rpki.VRP) string {
	return fmt.Sprintf("%v|%d|%d", v.Prefix, v.MaxLength, v.ASN)
}

// VRPSet materializes the synchronized VRPs for the BGP import pipeline.
func (c *Client) VRPSet() *rpki.VRPSet {
	out := make([]rpki.VRP, 0, len(c.vrps))
	for _, v := range c.vrps {
		out = append(out, v)
	}
	return rpki.NewVRPSet(out)
}

// Len reports the number of synchronized VRPs.
func (c *Client) Len() int { return len(c.vrps) }
