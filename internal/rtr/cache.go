package rtr

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/netsec-lab/rovista/internal/rpki"
)

// Cache is the relying-party side of the protocol: it holds versioned VRP
// snapshots and serves Reset/Serial queries over any stream. One Cache can
// serve many router sessions concurrently.
type Cache struct {
	mu      sync.Mutex
	session uint16
	serial  uint32
	// snapshots maps serial -> full VRP list at that serial, so Serial
	// Queries can be answered with deltas.
	snapshots map[uint32][]rpki.VRP
	// retain bounds how many historical serials are kept for deltas.
	retain int
}

// NewCache creates a cache with the given session ID and an empty serial-0
// snapshot.
func NewCache(session uint16) *Cache {
	return &Cache{
		session:   session,
		snapshots: map[uint32][]rpki.VRP{0: nil},
		retain:    16,
	}
}

// Serial returns the current serial number.
func (c *Cache) Serial() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// Update publishes a new VRP set, bumping the serial. It returns the new
// serial number.
func (c *Cache) Update(vrps *rpki.VRPSet) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.serial++
	c.snapshots[c.serial] = vrps.All()
	// Trim old snapshots beyond the retention window.
	for s := range c.snapshots {
		if c.serial-s > uint32(c.retain) {
			delete(c.snapshots, s)
		}
	}
	return c.serial
}

// diff computes announce/withdraw lists between two snapshots.
func diff(old, new []rpki.VRP) (announce, withdraw []rpki.VRP) {
	key := func(v rpki.VRP) string {
		return fmt.Sprintf("%v|%d|%d", v.Prefix, v.MaxLength, v.ASN)
	}
	oldSet := make(map[string]rpki.VRP, len(old))
	for _, v := range old {
		oldSet[key(v)] = v
	}
	newSet := make(map[string]rpki.VRP, len(new))
	for _, v := range new {
		newSet[key(v)] = v
		if _, ok := oldSet[key(v)]; !ok {
			announce = append(announce, v)
		}
	}
	for _, v := range old {
		if _, ok := newSet[key(v)]; !ok {
			withdraw = append(withdraw, v)
		}
	}
	sortVRPs(announce)
	sortVRPs(withdraw)
	return
}

func sortVRPs(vs []rpki.VRP) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Prefix != vs[j].Prefix {
			return vs[i].Prefix.String() < vs[j].Prefix.String()
		}
		if vs[i].ASN != vs[j].ASN {
			return vs[i].ASN < vs[j].ASN
		}
		return vs[i].MaxLength < vs[j].MaxLength
	})
}

// Serve handles one router session on the stream until EOF or error. It
// answers Reset Queries with the full current snapshot and Serial Queries
// with deltas (or Cache Reset when the requested serial has been trimmed).
func (c *Cache) Serve(rw io.ReadWriter) error {
	for {
		pdu, err := ReadPDU(rw)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if pdu.Version != Version {
			c.sendError(rw, ErrUnsupportedVersion, "unsupported version")
			return fmt.Errorf("rtr: client version %d", pdu.Version)
		}
		switch pdu.Type {
		case TypeResetQuery:
			if err := c.sendFull(rw); err != nil {
				return err
			}
		case TypeSerialQuery:
			if err := c.sendDelta(rw, pdu.Serial); err != nil {
				return err
			}
		default:
			c.sendError(rw, ErrUnsupportedPDUType, fmt.Sprintf("unexpected %v", pdu.Type))
			return fmt.Errorf("rtr: unexpected client PDU %v", pdu.Type)
		}
	}
}

func (c *Cache) sendFull(w io.Writer) error {
	c.mu.Lock()
	serial := c.serial
	snap := append([]rpki.VRP(nil), c.snapshots[serial]...)
	session := c.session
	c.mu.Unlock()

	if err := writePDU(w, &PDU{Version: Version, Type: TypeCacheResponse, Session: session}); err != nil {
		return err
	}
	for _, v := range snap {
		if err := writePDU(w, PrefixPDU(v, true, session)); err != nil {
			return err
		}
	}
	return writePDU(w, &PDU{Version: Version, Type: TypeEndOfData, Session: session, Serial: serial})
}

func (c *Cache) sendDelta(w io.Writer, from uint32) error {
	c.mu.Lock()
	serial := c.serial
	session := c.session
	oldSnap, ok := c.snapshots[from]
	newSnap := c.snapshots[serial]
	c.mu.Unlock()

	if !ok {
		// The requested serial fell out of the retention window: the
		// client must reset.
		return writePDU(w, &PDU{Version: Version, Type: TypeCacheReset, Session: session})
	}
	announce, withdraw := diff(oldSnap, newSnap)
	if err := writePDU(w, &PDU{Version: Version, Type: TypeCacheResponse, Session: session}); err != nil {
		return err
	}
	for _, v := range announce {
		if err := writePDU(w, PrefixPDU(v, true, session)); err != nil {
			return err
		}
	}
	for _, v := range withdraw {
		if err := writePDU(w, PrefixPDU(v, false, session)); err != nil {
			return err
		}
	}
	return writePDU(w, &PDU{Version: Version, Type: TypeEndOfData, Session: session, Serial: serial})
}

func (c *Cache) sendError(w io.Writer, code uint16, text string) {
	writePDU(w, &PDU{Version: Version, Type: TypeErrorReport, Session: code, Text: text})
}

// NotifySerial writes a Serial Notify for the current serial (caches send
// this unsolicited when new data arrives).
func (c *Cache) NotifySerial(w io.Writer) error {
	c.mu.Lock()
	pdu := &PDU{Version: Version, Type: TypeSerialNotify, Session: c.session, Serial: c.serial}
	c.mu.Unlock()
	return writePDU(w, pdu)
}

func writePDU(w io.Writer, p *PDU) error {
	_, err := w.Write(p.Marshal())
	return err
}
