package rtr

import (
	"bytes"
	"net"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func sampleVRPs() *rpki.VRPSet {
	return rpki.NewVRPSet([]rpki.VRP{
		{ASN: 64500, Prefix: pfx("10.0.0.0/8"), MaxLength: 16},
		{ASN: 64501, Prefix: pfx("192.0.2.0/24"), MaxLength: 24},
		{ASN: 64502, Prefix: pfx("198.51.100.0/24"), MaxLength: 28},
	})
}

func TestPDURoundTripPrefix(t *testing.T) {
	in := PrefixPDU(rpki.VRP{ASN: 64500, Prefix: pfx("10.1.0.0/16"), MaxLength: 24}, true, 42)
	out, err := ReadPDU(bytes.NewReader(in.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != TypeIPv4Prefix || out.Session != 42 || out.Flags != FlagAnnounce {
		t.Fatalf("out = %+v", out)
	}
	v := out.VRPOf()
	if v.ASN != 64500 || v.Prefix != pfx("10.1.0.0/16") || v.MaxLength != 24 {
		t.Fatalf("vrp = %+v", v)
	}
}

func TestPDURoundTripAll(t *testing.T) {
	pdus := []*PDU{
		{Version: Version, Type: TypeSerialNotify, Session: 7, Serial: 99},
		{Version: Version, Type: TypeSerialQuery, Session: 7, Serial: 12},
		{Version: Version, Type: TypeResetQuery},
		{Version: Version, Type: TypeCacheResponse, Session: 7},
		{Version: Version, Type: TypeEndOfData, Session: 7, Serial: 5},
		{Version: Version, Type: TypeCacheReset, Session: 7},
		{Version: Version, Type: TypeErrorReport, Session: ErrNoDataAvailable, Text: "nothing yet"},
	}
	for _, in := range pdus {
		out, err := ReadPDU(bytes.NewReader(in.Marshal()))
		if err != nil {
			t.Fatalf("%v: %v", in.Type, err)
		}
		if out.Type != in.Type || out.Session != in.Session || out.Serial != in.Serial || out.Text != in.Text {
			t.Fatalf("round trip %v: got %+v", in.Type, out)
		}
	}
}

func TestPDURoundTripProperty(t *testing.T) {
	f := func(addr [4]byte, plenRaw, mlRaw uint8, asn uint32, announce bool, session uint16) bool {
		plen := int(plenRaw % 33)
		p, _ := netip.AddrFrom4(addr).Prefix(plen)
		in := PrefixPDU(rpki.VRP{ASN: inet.ASN(asn), Prefix: p, MaxLength: int(mlRaw % 33)}, announce, session)
		out, err := ReadPDU(bytes.NewReader(in.Marshal()))
		if err != nil {
			return false
		}
		return out.VRPOf() == in.VRPOf() && (out.Flags == FlagAnnounce) == announce
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadPDUTruncated(t *testing.T) {
	full := (&PDU{Version: Version, Type: TypeSerialNotify, Serial: 1}).Marshal()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadPDU(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestReadPDUBadLength(t *testing.T) {
	b := (&PDU{Version: Version, Type: TypeResetQuery}).Marshal()
	b[7] = 200 // claim a huge body
	if _, err := ReadPDU(bytes.NewReader(b)); err == nil {
		t.Fatal("bad length accepted")
	}
}

// runSession wires a cache and a client over a pipe and runs fn.
func runSession(t *testing.T, cache *Cache, fn func(c *Client)) {
	t.Helper()
	serverConn, clientConn := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- cache.Serve(serverConn) }()
	client := NewClient(clientConn)
	fn(client)
	clientConn.Close()
	serverConn.Close()
	<-done
}

func TestResetSync(t *testing.T) {
	cache := NewCache(9)
	cache.Update(sampleVRPs())
	runSession(t, cache, func(c *Client) {
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
		if c.Len() != 3 {
			t.Fatalf("synced %d VRPs, want 3", c.Len())
		}
		if c.Serial() != 1 {
			t.Fatalf("serial = %d", c.Serial())
		}
		set := c.VRPSet()
		if set.Validate(pfx("10.5.0.0/16"), 64500) != rpki.Valid {
			t.Fatal("synced VRPs do not validate")
		}
	})
}

func TestIncrementalSync(t *testing.T) {
	cache := NewCache(9)
	cache.Update(sampleVRPs())
	runSession(t, cache, func(c *Client) {
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
		// Publish a delta: one VRP added, one removed.
		cache.Update(rpki.NewVRPSet([]rpki.VRP{
			{ASN: 64500, Prefix: pfx("10.0.0.0/8"), MaxLength: 16},
			{ASN: 64501, Prefix: pfx("192.0.2.0/24"), MaxLength: 24},
			{ASN: 64999, Prefix: pfx("203.0.113.0/24"), MaxLength: 24},
		}))
		if err := c.Refresh(); err != nil {
			t.Fatal(err)
		}
		if c.Len() != 3 {
			t.Fatalf("after delta: %d VRPs", c.Len())
		}
		set := c.VRPSet()
		if set.Validate(pfx("203.0.113.0/24"), 64999) != rpki.Valid {
			t.Fatal("announced VRP missing")
		}
		if set.Validate(pfx("198.51.100.0/24"), 64502) != rpki.NotFound {
			t.Fatal("withdrawn VRP still present")
		}
		if c.Serial() != 2 {
			t.Fatalf("serial = %d", c.Serial())
		}
	})
}

func TestRefreshWithoutChanges(t *testing.T) {
	cache := NewCache(3)
	cache.Update(sampleVRPs())
	runSession(t, cache, func(c *Client) {
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
		before := c.Len()
		if err := c.Refresh(); err != nil {
			t.Fatal(err)
		}
		if c.Len() != before {
			t.Fatalf("no-op refresh changed VRP count %d -> %d", before, c.Len())
		}
	})
}

func TestCacheResetFallback(t *testing.T) {
	cache := NewCache(3)
	cache.retain = 2
	cache.Update(sampleVRPs())
	runSession(t, cache, func(c *Client) {
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
		// Burn through the retention window so serial 1 is trimmed.
		for i := 0; i < 5; i++ {
			cache.Update(sampleVRPs())
		}
		if err := c.Refresh(); err != nil {
			t.Fatal(err)
		}
		if c.Serial() != cache.Serial() {
			t.Fatalf("client serial %d != cache %d after fallback", c.Serial(), cache.Serial())
		}
		if c.Len() != 3 {
			t.Fatalf("VRPs = %d after fallback reset", c.Len())
		}
	})
}

func TestFirstRefreshIsReset(t *testing.T) {
	cache := NewCache(3)
	cache.Update(sampleVRPs())
	runSession(t, cache, func(c *Client) {
		if err := c.Refresh(); err != nil { // never synced: must fall back
			t.Fatal(err)
		}
		if c.Len() != 3 {
			t.Fatalf("VRPs = %d", c.Len())
		}
	})
}

func TestSerialNotify(t *testing.T) {
	cache := NewCache(3)
	cache.Update(sampleVRPs())
	var buf bytes.Buffer
	if err := cache.NotifySerial(&buf); err != nil {
		t.Fatal(err)
	}
	pdu, err := ReadPDU(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pdu.Type != TypeSerialNotify || pdu.Serial != 1 {
		t.Fatalf("pdu = %+v", pdu)
	}
}

func TestDiff(t *testing.T) {
	old := []rpki.VRP{
		{ASN: 1, Prefix: pfx("10.0.0.0/8"), MaxLength: 8},
		{ASN: 2, Prefix: pfx("20.0.0.0/8"), MaxLength: 8},
	}
	new := []rpki.VRP{
		{ASN: 2, Prefix: pfx("20.0.0.0/8"), MaxLength: 8},
		{ASN: 3, Prefix: pfx("30.0.0.0/8"), MaxLength: 8},
	}
	ann, wd := diff(old, new)
	if len(ann) != 1 || ann[0].ASN != 3 {
		t.Fatalf("announce = %+v", ann)
	}
	if len(wd) != 1 || wd[0].ASN != 1 {
		t.Fatalf("withdraw = %+v", wd)
	}
}

func TestPDUTypeString(t *testing.T) {
	if TypeSerialNotify.String() != "Serial Notify" || TypeIPv4Prefix.String() != "IPv4 Prefix" {
		t.Fatal("PDU type strings wrong")
	}
}

// End-to-end: relying-party output flows through the wire protocol into a
// router's import policy.
func TestRTRFeedsImportPolicy(t *testing.T) {
	// Build a tiny RPKI world and validate it.
	auth := rpki.NewAuthority(rpki.RIPE, 1, rpki.ResourceSet{
		Prefixes: []netip.Prefix{pfx("10.0.0.0/8")},
		ASNs:     []rpki.ASNRange{{Lo: 1, Hi: 70000}},
	}, 0, 100)
	auth.IssueCA("isp", "", rpki.ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}}, 0, 100)
	auth.IssueROA("isp", 64500, []rpki.ROAPrefix{{Prefix: pfx("10.1.0.0/16"), MaxLength: 20}}, 0, 100)
	rp := &rpki.RelyingParty{Day: 1}
	vrps, errs := rp.Validate([]*rpki.Repository{auth.Repo})
	if len(errs) != 0 {
		t.Fatal(errs)
	}

	cache := NewCache(77)
	cache.Update(vrps)
	runSession(t, cache, func(c *Client) {
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
		routerView := c.VRPSet()
		if routerView.Validate(pfx("10.1.0.0/18"), 64500) != rpki.Valid {
			t.Fatal("router view should validate the covered announcement")
		}
		if routerView.Validate(pfx("10.1.0.0/18"), 666) != rpki.Invalid {
			t.Fatal("router view should reject the wrong origin")
		}
	})
}

// TestAbortUnblocksPendingRead is the regression test for the read-loop
// leak: a client parked in ReadPDU (cache sent Cache Response then went
// silent) must be released by Abort rather than blocking forever.
func TestAbortUnblocksPendingRead(t *testing.T) {
	serverConn, clientConn := net.Pipe()
	defer serverConn.Close()

	// Half a response: Cache Response, then silence. The client's read
	// loop is now parked with no deadline.
	go func() {
		ReadPDU(serverConn) // consume the Reset Query
		writePDU(serverConn, &PDU{Version: Version, Type: TypeCacheResponse, Session: 5})
	}()

	client := NewClient(clientConn)
	done := make(chan error, 1)
	go func() { done <- client.Reset() }()

	// Give the reset a moment to get parked, then abort it.
	time.Sleep(10 * time.Millisecond)
	client.Abort()

	select {
	case err := <-done:
		if err != ErrAborted {
			t.Fatalf("Reset returned %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Reset still blocked after Abort")
	}
}

// TestSerialNotifyMidResponse: an unsolicited Serial Notify interleaved
// with an in-flight response must be recorded, not treated as a protocol
// error.
func TestSerialNotifyMidResponse(t *testing.T) {
	serverConn, clientConn := net.Pipe()
	defer serverConn.Close()
	defer clientConn.Close()

	go func() {
		ReadPDU(serverConn)
		writePDU(serverConn, &PDU{Version: Version, Type: TypeCacheResponse, Session: 5})
		writePDU(serverConn, &PDU{Version: Version, Type: TypeSerialNotify, Session: 5, Serial: 9})
		writePDU(serverConn, PrefixPDU(rpki.VRP{ASN: 64500, Prefix: pfx("10.0.0.0/8"), MaxLength: 16}, true, 5))
		writePDU(serverConn, &PDU{Version: Version, Type: TypeEndOfData, Session: 5, Serial: 3})
	}()

	client := NewClient(clientConn)
	if err := client.Reset(); err != nil {
		t.Fatal(err)
	}
	if client.Len() != 1 || client.Serial() != 3 {
		t.Fatalf("len=%d serial=%d", client.Len(), client.Serial())
	}
	if client.Notified() != 9 {
		t.Fatalf("Notified() = %d, want 9", client.Notified())
	}
}
