// Package rtr implements the RPKI-to-Router protocol (RFC 8210) in the wire
// format routers actually consume: the relying party (cache) serves
// Validated ROA Payloads to router clients as binary PDUs over a byte
// stream, with serial-incremental updates, session identifiers, and the
// Serial Query / Reset Query / Cache Response / End of Data exchange.
//
// The paper's background (§2.2) pins this as the link between the relying
// party and ROV-performing routers; this package makes the repository's VRP
// plumbing real down to the octet level. The cache and client speak over
// any net.Conn (tests use net.Pipe), and the client maintains a VRP set
// usable directly by the BGP import policies.
package rtr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// Version is the protocol version implemented (RFC 8210 = version 1).
const Version = 1

// PDUType enumerates RFC 8210 PDU types.
type PDUType uint8

// PDU types (RFC 8210 §5).
const (
	TypeSerialNotify  PDUType = 0
	TypeSerialQuery   PDUType = 1
	TypeResetQuery    PDUType = 2
	TypeCacheResponse PDUType = 3
	TypeIPv4Prefix    PDUType = 4
	TypeIPv6Prefix    PDUType = 6
	TypeEndOfData     PDUType = 7
	TypeCacheReset    PDUType = 8
	TypeErrorReport   PDUType = 10
)

// String implements fmt.Stringer.
func (t PDUType) String() string {
	switch t {
	case TypeSerialNotify:
		return "Serial Notify"
	case TypeSerialQuery:
		return "Serial Query"
	case TypeResetQuery:
		return "Reset Query"
	case TypeCacheResponse:
		return "Cache Response"
	case TypeIPv4Prefix:
		return "IPv4 Prefix"
	case TypeIPv6Prefix:
		return "IPv6 Prefix"
	case TypeEndOfData:
		return "End of Data"
	case TypeCacheReset:
		return "Cache Reset"
	case TypeErrorReport:
		return "Error Report"
	default:
		return fmt.Sprintf("PDUType(%d)", uint8(t))
	}
}

// Flags for prefix PDUs.
const (
	// FlagAnnounce marks an added VRP; withdrawn VRPs clear the bit.
	FlagAnnounce uint8 = 1
)

// Error codes (RFC 8210 §5.10) used by this implementation.
const (
	ErrCorruptData        uint16 = 0
	ErrInternalError      uint16 = 1
	ErrNoDataAvailable    uint16 = 2
	ErrInvalidRequest     uint16 = 3
	ErrUnsupportedVersion uint16 = 4
	ErrUnsupportedPDUType uint16 = 5
)

// PDU is one protocol data unit.
type PDU struct {
	Version uint8
	Type    PDUType
	// Session is the session ID (or the error code for Error Report PDUs;
	// zero/flags field for queries per RFC 8210's header reuse).
	Session uint16
	// Serial carries the serial number where applicable.
	Serial uint32

	// Prefix fields (IPv4 Prefix PDUs).
	Flags     uint8
	Prefix    netip.Prefix
	MaxLength uint8
	ASN       inet.ASN

	// Text carries Error Report diagnostic text.
	Text string
}

const headerLen = 8

var (
	// ErrShortPDU reports a truncated input.
	ErrShortPDU = errors.New("rtr: short PDU")
	// ErrBadLength reports a header length inconsistent with its type.
	ErrBadLength = errors.New("rtr: bad PDU length")
)

// Marshal encodes the PDU into RFC 8210 wire format.
func (p *PDU) Marshal() []byte {
	switch p.Type {
	case TypeSerialNotify, TypeSerialQuery:
		b := make([]byte, 12)
		p.header(b, 12)
		binary.BigEndian.PutUint32(b[8:], p.Serial)
		return b
	case TypeResetQuery, TypeCacheResponse, TypeCacheReset:
		b := make([]byte, 8)
		p.header(b, 8)
		return b
	case TypeIPv4Prefix:
		b := make([]byte, 20)
		p.header(b, 20)
		b[8] = p.Flags
		b[9] = uint8(p.Prefix.Bits())
		b[10] = p.MaxLength
		// b[11] reserved
		a := p.Prefix.Masked().Addr().As4()
		copy(b[12:16], a[:])
		binary.BigEndian.PutUint32(b[16:], uint32(p.ASN))
		return b
	case TypeEndOfData:
		// Version-1 End of Data carries refresh/retry/expire intervals; we
		// emit the RFC defaults.
		b := make([]byte, 24)
		p.header(b, 24)
		binary.BigEndian.PutUint32(b[8:], p.Serial)
		binary.BigEndian.PutUint32(b[12:], 3600) // refresh
		binary.BigEndian.PutUint32(b[16:], 600)  // retry
		binary.BigEndian.PutUint32(b[20:], 7200) // expire
		return b
	case TypeErrorReport:
		text := []byte(p.Text)
		// Encapsulated-PDU length 0, then text length + text.
		n := headerLen + 4 + 0 + 4 + len(text)
		b := make([]byte, n)
		p.header(b, n)
		binary.BigEndian.PutUint32(b[8:], 0)
		binary.BigEndian.PutUint32(b[12:], uint32(len(text)))
		copy(b[16:], text)
		return b
	default:
		b := make([]byte, 8)
		p.header(b, 8)
		return b
	}
}

func (p *PDU) header(b []byte, length int) {
	b[0] = p.Version
	b[1] = uint8(p.Type)
	binary.BigEndian.PutUint16(b[2:], p.Session)
	binary.BigEndian.PutUint32(b[4:], uint32(length))
}

// ReadPDU reads and decodes one PDU from r.
func ReadPDU(r io.Reader) (*PDU, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[4:])
	if length < headerLen || length > 1<<16 {
		return nil, ErrBadLength
	}
	body := make([]byte, length-headerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrShortPDU, err)
	}
	p := &PDU{
		Version: hdr[0],
		Type:    PDUType(hdr[1]),
		Session: binary.BigEndian.Uint16(hdr[2:]),
	}
	switch p.Type {
	case TypeSerialNotify, TypeSerialQuery:
		if len(body) != 4 {
			return nil, ErrBadLength
		}
		p.Serial = binary.BigEndian.Uint32(body)
	case TypeResetQuery, TypeCacheResponse, TypeCacheReset:
		if len(body) != 0 {
			return nil, ErrBadLength
		}
	case TypeIPv4Prefix:
		if len(body) != 12 {
			return nil, ErrBadLength
		}
		p.Flags = body[0]
		plen := int(body[1])
		p.MaxLength = body[2]
		addr := netip.AddrFrom4([4]byte(body[4:8]))
		if plen > 32 {
			return nil, fmt.Errorf("rtr: prefix length %d out of range", plen)
		}
		p.Prefix = netip.PrefixFrom(addr, plen)
		p.ASN = inet.ASN(binary.BigEndian.Uint32(body[8:12]))
	case TypeEndOfData:
		if len(body) != 16 {
			return nil, ErrBadLength
		}
		p.Serial = binary.BigEndian.Uint32(body)
	case TypeErrorReport:
		if len(body) < 8 {
			return nil, ErrBadLength
		}
		encLen := binary.BigEndian.Uint32(body)
		if int(8+encLen) > len(body) {
			return nil, ErrBadLength
		}
		textLen := binary.BigEndian.Uint32(body[4+encLen:])
		if int(8+encLen+textLen) > len(body) {
			return nil, ErrBadLength
		}
		p.Text = string(body[8+encLen : 8+encLen+textLen])
	default:
		return nil, fmt.Errorf("rtr: unsupported PDU type %v", p.Type)
	}
	return p, nil
}

// VRPOf converts an IPv4 Prefix PDU to a VRP.
func (p *PDU) VRPOf() rpki.VRP {
	return rpki.VRP{ASN: p.ASN, Prefix: p.Prefix.Masked(), MaxLength: int(p.MaxLength)}
}

// PrefixPDU builds an IPv4 Prefix PDU from a VRP.
func PrefixPDU(v rpki.VRP, announce bool, session uint16) *PDU {
	flags := uint8(0)
	if announce {
		flags = FlagAnnounce
	}
	return &PDU{
		Version:   Version,
		Type:      TypeIPv4Prefix,
		Session:   session,
		Flags:     flags,
		Prefix:    v.Prefix,
		MaxLength: uint8(v.MaxLength),
		ASN:       v.ASN,
	}
}
