// Package rib provides the routing-table substrate shared by the BGP engine
// and the RPKI validator: a binary trie over IPv4 prefixes supporting exact
// lookup, longest-prefix match, and covering/covered-by traversals.
//
// RoVista's side channel is specific to the IPv4 IP-ID field, so the trie is
// deliberately IPv4-only; IPv6 inputs are rejected loudly rather than
// silently mishandled.
package rib

import (
	"fmt"
	"net/netip"
)

// Trie is a binary prefix trie mapping IPv4 prefixes to values of type V.
// The zero value is not usable; create one with NewTrie.
type Trie[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root: &node[V]{}}
}

// Len reports the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

func v4Bits(a netip.Addr) (uint32, error) {
	if !a.Is4() {
		return 0, fmt.Errorf("rib: %v is not an IPv4 address", a)
	}
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

func checkPrefix(p netip.Prefix) (uint32, int, error) {
	if !p.IsValid() {
		return 0, 0, fmt.Errorf("rib: invalid prefix %v", p)
	}
	bits, err := v4Bits(p.Addr())
	if err != nil {
		return 0, 0, err
	}
	return bits, p.Bits(), nil
}

// bit returns the i-th most significant bit of v (i in [0, 31]).
func bit(v uint32, i int) int { return int(v>>(31-i)) & 1 }

// Insert stores val under p, replacing any existing value. It returns an
// error for non-IPv4 or invalid prefixes.
func (t *Trie[V]) Insert(p netip.Prefix, val V) error {
	addr, plen, err := checkPrefix(p.Masked())
	if err != nil {
		return err
	}
	n := t.root
	for i := 0; i < plen; i++ {
		b := bit(addr, i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = val, true
	return nil
}

// Remove deletes the exact prefix p. It reports whether an entry existed.
func (t *Trie[V]) Remove(p netip.Prefix) bool {
	addr, plen, err := checkPrefix(p.Masked())
	if err != nil {
		return false
	}
	// Track the path so empty branches can be pruned afterwards.
	path := make([]*node[V], 0, plen+1)
	n := t.root
	path = append(path, n)
	for i := 0; i < plen; i++ {
		n = n.child[bit(addr, i)]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	// Prune childless, valueless nodes bottom-up.
	for i := len(path) - 1; i > 0; i-- {
		cur := path[i]
		if cur.set || cur.child[0] != nil || cur.child[1] != nil {
			break
		}
		parent := path[i-1]
		b := bit(addr, i-1)
		parent.child[b] = nil
	}
	return true
}

// Get returns the value stored at exactly p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	addr, plen, err := checkPrefix(p.Masked())
	if err != nil {
		return zero, false
	}
	n := t.root
	for i := 0; i < plen; i++ {
		n = n.child[bit(addr, i)]
		if n == nil {
			return zero, false
		}
	}
	if !n.set {
		return zero, false
	}
	return n.val, true
}

// Lookup performs longest-prefix match for the address and returns the
// matching prefix, its value, and whether any entry matched.
func (t *Trie[V]) Lookup(a netip.Addr) (netip.Prefix, V, bool) {
	var zero V
	addr, err := v4Bits(a)
	if err != nil {
		return netip.Prefix{}, zero, false
	}
	n := t.root
	bestLen := -1
	var bestVal V
	for i := 0; ; i++ {
		if n.set {
			bestLen, bestVal = i, n.val
		}
		if i == 32 {
			break
		}
		n = n.child[bit(addr, i)]
		if n == nil {
			break
		}
	}
	if bestLen < 0 {
		return netip.Prefix{}, zero, false
	}
	p, _ := a.Prefix(bestLen)
	return p, bestVal, true
}

// Covering returns every stored (prefix, value) whose prefix covers p —
// i.e. is equal to or less specific than p. Results are ordered from least
// to most specific.
func (t *Trie[V]) Covering(p netip.Prefix) []Entry[V] {
	addr, plen, err := checkPrefix(p.Masked())
	if err != nil {
		return nil
	}
	var out []Entry[V]
	n := t.root
	for i := 0; ; i++ {
		if n.set {
			cp, _ := p.Addr().Prefix(i)
			out = append(out, Entry[V]{Prefix: cp, Value: n.val})
		}
		if i == plen {
			break
		}
		n = n.child[bit(addr, i)]
		if n == nil {
			break
		}
	}
	return out
}

// CoveredBy returns every stored (prefix, value) equal to or more specific
// than p, in depth-first order.
func (t *Trie[V]) CoveredBy(p netip.Prefix) []Entry[V] {
	addr, plen, err := checkPrefix(p.Masked())
	if err != nil {
		return nil
	}
	n := t.root
	for i := 0; i < plen; i++ {
		n = n.child[bit(addr, i)]
		if n == nil {
			return nil
		}
	}
	var out []Entry[V]
	collect(n, addr, plen, &out)
	return out
}

func collect[V any](n *node[V], addr uint32, depth int, out *[]Entry[V]) {
	if n.set {
		a := netip.AddrFrom4([4]byte{byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)})
		p, _ := a.Prefix(depth)
		*out = append(*out, Entry[V]{Prefix: p, Value: n.val})
	}
	if depth == 32 {
		return
	}
	if n.child[0] != nil {
		collect(n.child[0], addr, depth+1, out)
	}
	if n.child[1] != nil {
		collect(n.child[1], addr|1<<(31-depth), depth+1, out)
	}
}

// Entry pairs a prefix with its stored value.
type Entry[V any] struct {
	Prefix netip.Prefix
	Value  V
}

// Walk visits every stored entry in depth-first order. Returning false from
// fn stops the walk early.
func (t *Trie[V]) Walk(fn func(netip.Prefix, V) bool) {
	walk(t.root, 0, 0, fn)
}

func walk[V any](n *node[V], addr uint32, depth int, fn func(netip.Prefix, V) bool) bool {
	if n.set {
		a := netip.AddrFrom4([4]byte{byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)})
		p, _ := a.Prefix(depth)
		if !fn(p, n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if n.child[0] != nil && !walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	if n.child[1] != nil && !walk(n.child[1], addr|1<<(31-depth), depth+1, fn) {
		return false
	}
	return true
}

// Entries returns all stored entries in depth-first order.
func (t *Trie[V]) Entries() []Entry[V] {
	out := make([]Entry[V], 0, t.size)
	t.Walk(func(p netip.Prefix, v V) bool {
		out = append(out, Entry[V]{Prefix: p, Value: v})
		return true
	})
	return out
}
