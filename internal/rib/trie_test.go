package rib

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestInsertGet(t *testing.T) {
	tr := NewTrie[string]()
	if err := tr.Insert(pfx("10.0.0.0/8"), "ten"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(pfx("10.1.0.0/16"), "ten-one"); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Get(pfx("10.0.0.0/8")); !ok || v != "ten" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if _, ok := tr.Get(pfx("10.0.0.0/9")); ok {
		t.Fatal("unexpected hit for absent prefix")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestInsertReplaces(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(pfx("192.0.2.0/24"), 1)
	tr.Insert(pfx("192.0.2.0/24"), 2)
	if v, _ := tr.Get(pfx("192.0.2.0/24")); v != 2 {
		t.Fatalf("v = %d, want 2", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestInsertRejectsIPv6(t *testing.T) {
	tr := NewTrie[int]()
	if err := tr.Insert(netip.MustParsePrefix("2001:db8::/32"), 1); err == nil {
		t.Fatal("expected error for IPv6 prefix")
	}
}

func TestInsertMasksHostBits(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(netip.MustParsePrefix("10.9.8.7/8"), 5)
	if v, ok := tr.Get(pfx("10.0.0.0/8")); !ok || v != 5 {
		t.Fatalf("masked insert not found: %v %v", v, ok)
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(pfx("0.0.0.0/0"), "default")
	tr.Insert(pfx("10.0.0.0/8"), "eight")
	tr.Insert(pfx("10.1.0.0/16"), "sixteen")
	tr.Insert(pfx("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		a    string
		want string
	}{
		{"10.1.2.3", "twentyfour"},
		{"10.1.9.1", "sixteen"},
		{"10.200.0.1", "eight"},
		{"8.8.8.8", "default"},
	}
	for _, c := range cases {
		_, v, ok := tr.Lookup(addr(c.a))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s) = %q,%v, want %q", c.a, v, ok, c.want)
		}
	}
}

func TestLookupNoMatch(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(pfx("10.0.0.0/8"), 1)
	if _, _, ok := tr.Lookup(addr("11.0.0.1")); ok {
		t.Fatal("unexpected match")
	}
	if _, _, ok := tr.Lookup(netip.MustParseAddr("::1")); ok {
		t.Fatal("IPv6 lookup should miss")
	}
}

func TestLookupHostRoute(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(pfx("192.0.2.55/32"), 7)
	p, v, ok := tr.Lookup(addr("192.0.2.55"))
	if !ok || v != 7 || p.Bits() != 32 {
		t.Fatalf("host route lookup = %v %v %v", p, v, ok)
	}
	if _, _, ok := tr.Lookup(addr("192.0.2.56")); ok {
		t.Fatal("neighbouring address must not match /32")
	}
}

func TestRemove(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(pfx("10.0.0.0/8"), 1)
	tr.Insert(pfx("10.1.0.0/16"), 2)
	if !tr.Remove(pfx("10.1.0.0/16")) {
		t.Fatal("Remove returned false for present prefix")
	}
	if tr.Remove(pfx("10.1.0.0/16")) {
		t.Fatal("Remove returned true for absent prefix")
	}
	if _, v, ok := tr.Lookup(addr("10.1.2.3")); !ok || v != 1 {
		t.Fatalf("after removal, Lookup = %v %v; want parent match", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestRemovePreservesDescendants(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(pfx("10.0.0.0/8"), 1)
	tr.Insert(pfx("10.1.0.0/16"), 2)
	tr.Remove(pfx("10.0.0.0/8"))
	if v, ok := tr.Get(pfx("10.1.0.0/16")); !ok || v != 2 {
		t.Fatalf("descendant lost after parent removal: %v %v", v, ok)
	}
}

func TestCovering(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(pfx("10.0.0.0/8"), "a")
	tr.Insert(pfx("10.1.0.0/16"), "b")
	tr.Insert(pfx("10.1.2.0/24"), "c")
	tr.Insert(pfx("11.0.0.0/8"), "x")

	got := tr.Covering(pfx("10.1.2.0/25"))
	if len(got) != 3 {
		t.Fatalf("Covering returned %d entries, want 3: %+v", len(got), got)
	}
	// Least specific first.
	if got[0].Value != "a" || got[1].Value != "b" || got[2].Value != "c" {
		t.Fatalf("order wrong: %+v", got)
	}
	// A prefix covers itself.
	self := tr.Covering(pfx("10.1.0.0/16"))
	if len(self) != 2 || self[1].Value != "b" {
		t.Fatalf("self-covering wrong: %+v", self)
	}
}

func TestCoveredBy(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(pfx("10.0.0.0/8"), "a")
	tr.Insert(pfx("10.1.0.0/16"), "b")
	tr.Insert(pfx("10.1.2.0/24"), "c")
	tr.Insert(pfx("11.0.0.0/8"), "x")

	got := tr.CoveredBy(pfx("10.0.0.0/8"))
	if len(got) != 3 {
		t.Fatalf("CoveredBy returned %d entries, want 3", len(got))
	}
	got16 := tr.CoveredBy(pfx("10.1.0.0/16"))
	if len(got16) != 2 {
		t.Fatalf("CoveredBy /16 returned %d entries, want 2", len(got16))
	}
	if tr.CoveredBy(pfx("172.16.0.0/12")) != nil {
		t.Fatal("CoveredBy of empty region should be nil")
	}
}

func TestWalkAndEntries(t *testing.T) {
	tr := NewTrie[int]()
	prefixes := []string{"10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16", "0.0.0.0/0"}
	for i, s := range prefixes {
		tr.Insert(pfx(s), i)
	}
	entries := tr.Entries()
	if len(entries) != len(prefixes) {
		t.Fatalf("Entries len = %d, want %d", len(entries), len(prefixes))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		seen[e.Prefix.String()] = true
	}
	for _, s := range prefixes {
		if !seen[s] {
			t.Errorf("missing %s in entries %v", s, seen)
		}
	}
	// Early stop.
	n := 0
	tr.Walk(func(netip.Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop walk visited %d, want 1", n)
	}
}

// Property: Lookup result always covers the queried address, and no stored
// prefix that also covers the address is more specific than the result.
func TestLookupLPMProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrie[int]()
		var stored []netip.Prefix
		for i := 0; i < 60; i++ {
			a := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			p, _ := a.Prefix(rng.Intn(33))
			tr.Insert(p, i)
			stored = append(stored, p.Masked())
		}
		for trial := 0; trial < 40; trial++ {
			q := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			got, _, ok := tr.Lookup(q)
			best := -1
			for _, p := range stored {
				if p.Contains(q) && p.Bits() > best {
					best = p.Bits()
				}
			}
			if !ok {
				if best != -1 {
					return false
				}
				continue
			}
			if !got.Contains(q) || got.Bits() != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: after inserting a set and removing half, Get reflects exactly
// the surviving set.
func TestInsertRemoveConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrie[int]()
		kept := map[netip.Prefix]int{}
		removed := map[netip.Prefix]bool{}
		for i := 0; i < 40; i++ {
			a := netip.AddrFrom4([4]byte{byte(rng.Intn(4)), byte(rng.Intn(4)), 0, 0})
			p, _ := a.Prefix(8 + rng.Intn(17))
			p = p.Masked()
			tr.Insert(p, i)
			kept[p] = i
		}
		for p := range kept {
			if rng.Intn(2) == 0 {
				tr.Remove(p)
				delete(kept, p)
				removed[p] = true
			}
		}
		for p, want := range kept {
			if v, ok := tr.Get(p); !ok || v != want {
				return false
			}
		}
		for p := range removed {
			if _, ok := tr.Get(p); ok {
				return false
			}
		}
		return tr.Len() == len(kept)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
