// Package ipid models how operating systems assign the 16-bit IPv4
// Identification field. RoVista's side channel depends on hosts that use a
// single *global* counter incremented once per transmitted packet (early
// Windows, FreeBSD); this package also models the per-destination ("local"),
// random and constant assignment policies so the vVP qualification scan has
// realistic negatives to reject.
package ipid

import (
	"fmt"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/seedmix"
)

// Policy enumerates IP-ID assignment behaviours.
type Policy uint8

const (
	// Global increments one shared counter for every packet sent,
	// regardless of destination — the side channel RoVista exploits.
	Global Policy = iota
	// PerDestination keeps an independent counter per destination address
	// ("local" counter); indistinguishable from Global when probed from a
	// single source, which is why the qualification scan uses spoofing.
	PerDestination
	// Random draws each IP-ID uniformly at random.
	Random
	// Constant always emits zero (common for DF-bit senders).
	Constant
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Global:
		return "global"
	case PerDestination:
		return "per-destination"
	case Random:
		return "random"
	case Constant:
		return "constant"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Counter assigns IP-ID values under a given policy. Counters are not safe
// for concurrent use; the simulator serializes packet emission per host.
type Counter struct {
	policy  Policy
	global  uint16
	perDest map[netip.Addr]uint16
	src     seedmix.Source

	// lanes, when non-empty, splits a Global counter into per-CPU counters:
	// each transmission lands on a pseudo-randomly chosen lane (as Linux
	// per-CPU IP-ID generations do under multi-queue NICs). The observed
	// sequence is then non-monotonic, which is exactly the unstable-counter
	// population the §4.2 vVP qualification must reject.
	lanes []uint16
	// resetIn, when positive, counts transmissions until the counter
	// re-randomizes (a reboot or counter re-key mid-round).
	resetIn int
}

// NewCounter creates a Counter with the given policy. The seed feeds both
// the initial counter offset and the Random policy's generator so whole
// simulations stay reproducible. Seeding is O(1): counters are constructed
// per cloned host on the pair-measurement hot path, where math/rand's
// 607-word lag-table seeding once dominated round CPU.
func NewCounter(policy Policy, seed int64) *Counter {
	c := &Counter{policy: policy, src: *seedmix.NewSource(seed)}
	c.global = c.rand16()
	if policy == PerDestination {
		c.perDest = make(map[netip.Addr]uint16)
	}
	return c
}

// rand16 draws a uniform 16-bit value from the counter's source.
func (c *Counter) rand16() uint16 { return uint16(c.src.Uint64() >> 48) }

// Policy returns the counter's assignment policy.
func (c *Counter) Policy() Policy { return c.policy }

// EnableSplit turns a Global counter into ways per-CPU lanes, each starting
// at an independent random offset. Calling it again with the same width is a
// no-op; other policies ignore it. Split assignment is a stable property of
// a host (set once when faults are armed), so it survives Fork.
func (c *Counter) EnableSplit(ways int) {
	if c.policy != Global || ways < 2 || len(c.lanes) == ways {
		return
	}
	c.lanes = make([]uint16, ways)
	for i := range c.lanes {
		c.lanes[i] = c.rand16()
	}
}

// SplitWays returns the number of per-CPU lanes (0 when not split).
func (c *Counter) SplitWays() int { return len(c.lanes) }

// ResetAfter schedules a one-shot counter re-randomization after n more
// transmissions — the mid-round reboot/re-key perturbation. Non-positive n
// cancels a pending reset.
func (c *Counter) ResetAfter(n int) { c.resetIn = n }

// spend charges n transmissions against a pending reset and re-randomizes
// the counter state when the deadline passes.
func (c *Counter) spend(n int) {
	if c.resetIn <= 0 {
		return
	}
	c.resetIn -= n
	if c.resetIn > 0 {
		return
	}
	c.resetIn = 0
	c.global = c.rand16()
	for i := range c.lanes {
		c.lanes[i] = c.rand16()
	}
}

// Next returns the IP-ID for the next packet sent to dst and advances the
// internal state. Wraparound is the natural uint16 overflow.
func (c *Counter) Next(dst netip.Addr) uint16 {
	switch c.policy {
	case Global:
		c.spend(1)
		if len(c.lanes) > 0 {
			lane := int(c.src.Uint64() % uint64(len(c.lanes)))
			c.lanes[lane]++
			return c.lanes[lane]
		}
		c.global++
		return c.global
	case PerDestination:
		v := c.perDest[dst] + 1
		if _, ok := c.perDest[dst]; !ok {
			v = c.rand16()
		}
		c.perDest[dst] = v
		return v
	case Random:
		return c.rand16()
	default: // Constant
		return 0
	}
}

// Peek returns the value the global counter currently holds without
// advancing it. Only meaningful for the Global policy; other policies
// return zero.
func (c *Counter) Peek() uint16 {
	if c.policy == Global {
		return c.global
	}
	return 0
}

// Fork returns a fresh counter with the same assignment policy (including a
// per-CPU split, which is a host property) but independent state seeded by
// seed. Pair measurements fork the counters of the hosts they touch: a
// forked counter starts at a new random offset, which the side channel
// tolerates by construction (the detector reads counter *growth*, never
// absolute values). Pending resets are per-measurement state and do not
// survive the fork.
func (c *Counter) Fork(seed int64) *Counter {
	nc := NewCounter(c.policy, seed)
	nc.EnableSplit(len(c.lanes))
	return nc
}

// Advance bumps the global counter by n packets' worth of background
// traffic in one step (used by the simulator to account for traffic to
// destinations outside the measurement). Split counters spread the batch
// across lanes round-robin — background flows hash across CPUs too.
func (c *Counter) Advance(n int) {
	if c.policy != Global || n <= 0 {
		return
	}
	c.spend(n)
	if w := len(c.lanes); w > 0 {
		each := n / w
		for i := range c.lanes {
			add := each
			if i < n%w {
				add++
			}
			c.lanes[i] += uint16(add)
		}
		return
	}
	c.global += uint16(n)
}
