package ipid

import (
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	dstA = netip.MustParseAddr("192.0.2.1")
	dstB = netip.MustParseAddr("198.51.100.7")
)

func TestGlobalCounterMonotone(t *testing.T) {
	c := NewCounter(Global, 1)
	prev := c.Next(dstA)
	for i := 0; i < 100; i++ {
		dst := dstA
		if i%2 == 1 {
			dst = dstB
		}
		cur := c.Next(dst)
		if cur-prev != 1 {
			t.Fatalf("global counter step = %d, want 1", cur-prev)
		}
		prev = cur
	}
}

func TestGlobalCounterWraparound(t *testing.T) {
	c := NewCounter(Global, 1)
	c.global = 0xFFFE
	if v := c.Next(dstA); v != 0xFFFF {
		t.Fatalf("got %#x, want 0xFFFF", v)
	}
	if v := c.Next(dstA); v != 0 {
		t.Fatalf("got %#x after wrap, want 0", v)
	}
}

func TestPerDestinationIndependence(t *testing.T) {
	c := NewCounter(PerDestination, 2)
	a1 := c.Next(dstA)
	b1 := c.Next(dstB)
	a2 := c.Next(dstA)
	b2 := c.Next(dstB)
	if a2-a1 != 1 {
		t.Fatalf("per-dest A step = %d, want 1", a2-a1)
	}
	if b2-b1 != 1 {
		t.Fatalf("per-dest B step = %d, want 1", b2-b1)
	}
	// Interleaved traffic to B must not advance A's counter: sending many
	// packets to B then one to A still yields a single step on A.
	for i := 0; i < 50; i++ {
		c.Next(dstB)
	}
	a3 := c.Next(dstA)
	if a3-a2 != 1 {
		t.Fatalf("cross-destination leakage: step = %d", a3-a2)
	}
}

func TestRandomPolicyNotSequential(t *testing.T) {
	c := NewCounter(Random, 3)
	sequential := 0
	prev := c.Next(dstA)
	for i := 0; i < 200; i++ {
		cur := c.Next(dstA)
		if cur-prev == 1 {
			sequential++
		}
		prev = cur
	}
	if sequential > 5 {
		t.Fatalf("random policy produced %d sequential steps", sequential)
	}
}

func TestConstantPolicy(t *testing.T) {
	c := NewCounter(Constant, 4)
	for i := 0; i < 10; i++ {
		if v := c.Next(dstA); v != 0 {
			t.Fatalf("constant policy emitted %d", v)
		}
	}
}

func TestAdvance(t *testing.T) {
	c := NewCounter(Global, 5)
	before := c.Peek()
	c.Advance(37)
	if c.Peek()-before != 37 {
		t.Fatalf("Advance moved counter by %d, want 37", c.Peek()-before)
	}
	// Advance is a no-op for non-global counters.
	r := NewCounter(Random, 5)
	r.Advance(10)
	if r.Peek() != 0 {
		t.Fatal("Peek on non-global counter should be 0")
	}
}

func TestDeterministicSeeding(t *testing.T) {
	a := NewCounter(Global, 42)
	b := NewCounter(Global, 42)
	for i := 0; i < 20; i++ {
		if a.Next(dstA) != b.Next(dstA) {
			t.Fatal("same seed must produce identical sequences")
		}
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{
		Global: "global", PerDestination: "per-destination",
		Random: "random", Constant: "constant", Policy(9): "Policy(9)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

// Property: under Global policy, after n sends the counter has advanced by
// exactly n mod 2^16 regardless of destination mix.
func TestGlobalAdvanceProperty(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall)
		c := NewCounter(Global, seed)
		start := c.Peek()
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				c.Next(dstB)
			} else {
				c.Next(dstA)
			}
		}
		return c.Peek()-start == uint16(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCounterNonMonotonic(t *testing.T) {
	c := NewCounter(Global, 42)
	c.EnableSplit(4)
	if c.SplitWays() != 4 {
		t.Fatalf("SplitWays = %d, want 4", c.SplitWays())
	}
	// Lane scheduling is rng-driven; over a short run a 4-way split must
	// produce at least one backward step on the 16-bit ring — that is the
	// per-CPU-counter signature §4.2 qualification rejects.
	prev := c.Next(dstA)
	backward := false
	for i := 0; i < 64; i++ {
		id := c.Next(dstA)
		if int16(id-prev) <= 0 {
			backward = true
		}
		prev = id
	}
	if !backward {
		t.Fatal("4-way split counter stayed globally monotonic over 64 draws")
	}
}

func TestSplitIgnoredForNonGlobal(t *testing.T) {
	c := NewCounter(PerDestination, 42)
	c.EnableSplit(4)
	if c.SplitWays() != 0 {
		t.Fatal("split must be a no-op for non-global policies")
	}
}

func TestSplitDeterministicPerSeed(t *testing.T) {
	draw := func() []uint16 {
		c := NewCounter(Global, 7)
		c.EnableSplit(2)
		out := make([]uint16, 32)
		for i := range out {
			out[i] = c.Next(dstA)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed split counters diverged at draw %d", i)
		}
	}
}

func TestForkPreservesSplit(t *testing.T) {
	c := NewCounter(Global, 7)
	c.EnableSplit(3)
	f := c.Fork(99)
	if f.SplitWays() != 3 {
		t.Fatalf("fork lost the split: ways = %d", f.SplitWays())
	}
}

func TestResetAfterReRandomizes(t *testing.T) {
	c := NewCounter(Global, 7)
	base := NewCounter(Global, 7)
	c.ResetAfter(5)
	same := true
	for i := 0; i < 20; i++ {
		if c.Next(dstA) != base.Next(dstA) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("counter with a pending reset never diverged from its twin")
	}
}

func TestResetAfterAppliesOnce(t *testing.T) {
	a := NewCounter(Global, 7)
	b := NewCounter(Global, 7)
	a.ResetAfter(3)
	b.ResetAfter(3)
	for i := 0; i < 40; i++ {
		if a.Next(dstA) != b.Next(dstA) {
			t.Fatalf("identical reset schedules diverged at draw %d", i)
		}
	}
}

func TestAdvanceSpendsTowardReset(t *testing.T) {
	a := NewCounter(Global, 7)
	b := NewCounter(Global, 7)
	a.ResetAfter(5)
	b.ResetAfter(5)
	// Background traffic (Advance) must burn the reset budget exactly like
	// probe draws (Next) so the mid-round reset lands where it is seeded.
	a.Advance(5)
	b.Next(dstA)
	b.Next(dstA)
	b.Next(dstA)
	b.Next(dstA)
	b.Next(dstA)
	if a.Peek() == 0 && b.Peek() == 0 {
		t.Skip("both counters landed on zero (improbable)")
	}
}
