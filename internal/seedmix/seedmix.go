// Package seedmix derives statistically independent sub-seeds from a parent
// seed and an arbitrary tuple of stream identifiers. The measurement pipeline
// keys every per-(vVP, tNode) round by (seed, asn, tNodeIdx, vvpIdx); the xor
// scheme it used historically (`seed ^ asn<<20 ^ ti<<8 ^ vi`) collides for
// distinct tuples as soon as an index exceeds its shift window, silently
// correlating rounds. Mix runs every component through a full splitmix64
// avalanche instead, so distinct tuples yield distinct, well-scrambled seeds.
package seedmix

// splitmix64 is the finalizer from Steele et al., "Fast Splittable
// Pseudorandom Number Generators" (OOPSLA 2014) — a bijective avalanche over
// the full 64-bit space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix absorbs the parts into a single derived seed. Each part passes through
// the splitmix64 avalanche before absorption, so low-entropy components
// (small indexes, sequential ASNs) still flip about half the output bits and
// cannot cancel each other the way xor-shift packing can.
func Mix(parts ...int64) int64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, p := range parts {
		h = splitmix64(h ^ uint64(p))
	}
	return int64(h)
}

// Source is a splitmix64 random source: O(1) seeding (unlike math/rand's
// default source, whose Seed walks a 607-word lag table) and a single
// multiply-xor per output. The pair-measurement stage clones host state per
// round, so cheap construction matters.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) *Source { return &Source{state: uint64(seed)} }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Int63 implements math/rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements math/rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }
