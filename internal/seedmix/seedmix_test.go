package seedmix

import (
	"math/rand"
	"testing"
)

// oldXorScheme is the historical per-pair seed derivation from
// core.Runner.Measure, kept here to demonstrate the collision class the
// mixer removes.
func oldXorScheme(seed int64, asn uint32, ti, vi int) int64 {
	return seed ^ int64(asn)<<20 ^ int64(ti)<<8 ^ int64(vi)
}

func TestOldXorSchemeCollides(t *testing.T) {
	// (ti=0, vi=256) and (ti=1, vi=0) pack to the same value: vi overflows
	// into ti's shift window. The guard documents why Mix exists.
	a := oldXorScheme(7, 42, 0, 256)
	b := oldXorScheme(7, 42, 1, 0)
	if a != b {
		t.Fatalf("expected the xor scheme to collide, got %d vs %d", a, b)
	}
}

func TestMixDistinctOverPairTuples(t *testing.T) {
	seen := make(map[int64][4]int64)
	for _, seed := range []int64{0, 1, -1, 1 << 40} {
		for asn := int64(0); asn < 40; asn++ {
			for ti := int64(0); ti < 40; ti++ {
				for vi := int64(0); vi < 8; vi++ {
					m := Mix(seed, asn, ti, vi)
					if prev, dup := seen[m]; dup {
						t.Fatalf("Mix collision: %v and %v -> %d",
							prev, [4]int64{seed, asn, ti, vi}, m)
					}
					seen[m] = [4]int64{seed, asn, ti, vi}
				}
			}
		}
	}
}

func TestMixOrderSensitive(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix must depend on component order")
	}
	if Mix(0, 0) == Mix(0) {
		t.Fatal("Mix must depend on component count")
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one low bit of one component should flip roughly half the
	// output bits; require at least 16 of 64 to catch accidental linearity.
	base := Mix(9, 100, 3, 1)
	for _, alt := range []int64{Mix(9, 101, 3, 1), Mix(9, 100, 2, 1), Mix(8, 100, 3, 1)} {
		diff := uint64(base ^ alt)
		bits := 0
		for ; diff != 0; diff &= diff - 1 {
			bits++
		}
		if bits < 16 {
			t.Fatalf("weak avalanche: only %d bits differ", bits)
		}
	}
}

func TestSourceIsValidRandSource(t *testing.T) {
	rng := rand.New(NewSource(42))
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		v := rng.Int63()
		if v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 990 {
		t.Fatalf("suspiciously many duplicates: %d unique of 1000", len(seen))
	}
	// Same seed, same stream.
	a, b := rand.New(NewSource(7)), rand.New(NewSource(7))
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Source is not deterministic")
		}
	}
}

func TestSourceSeedResets(t *testing.T) {
	s := NewSource(5)
	first := s.Uint64()
	s.Uint64()
	s.Seed(5)
	if got := s.Uint64(); got != first {
		t.Fatalf("Seed(5) did not reset the stream: %d vs %d", got, first)
	}
}
