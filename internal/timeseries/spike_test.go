package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIPIDDeltaWraparound(t *testing.T) {
	cases := []struct {
		a, b uint16
		want uint16
	}{
		{0, 5, 5},
		{100, 100, 0},
		{0xFFFE, 3, 5},
		{0xFFFF, 0, 1},
		{5, 3, 0xFFFE}, // backwards reads as a huge forward jump
	}
	for _, c := range cases {
		if got := IPIDDelta(c.a, c.b); got != c.want {
			t.Errorf("IPIDDelta(%#x, %#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIPIDDeltaAdditiveProperty(t *testing.T) {
	// delta(a, a+k) == k for all a, k (mod 2^16).
	f := func(a, k uint16) bool {
		return IPIDDelta(a, a+k) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthSeries(t *testing.T) {
	gs := GrowthSeries([]uint16{10, 12, 15, 0xFFFF, 4})
	want := []float64{2, 3, float64(uint16(0xFFFF - 15)), 5}
	if len(gs) != len(want) {
		t.Fatalf("len = %d, want %d", len(gs), len(want))
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("gs[%d] = %v, want %v", i, gs[i], want[i])
		}
	}
	if GrowthSeries([]uint16{1}) != nil {
		t.Fatal("single sample should produce nil series")
	}
}

func TestDetectorFindsObviousSpike(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pre := make([]float64, 10)
	for i := range pre {
		pre[i] = 3 + rng.Float64() // background ~3 pkt/interval
	}
	post := []float64{3.2, 14.1, 3.4, 3.1} // +10 spike at index 1
	res := NewDetector().Detect(pre, post)
	if len(res.Spikes) != 1 {
		t.Fatalf("spikes = %+v, want exactly one", res.Spikes)
	}
	if res.Spikes[0].Index != 1 {
		t.Fatalf("spike index = %d, want 1", res.Spikes[0].Index)
	}
	if !res.Usable {
		t.Fatalf("low-noise vVP should be usable (FN=%v)", res.FNRate)
	}
}

func TestDetectorNoSpikeInFlatTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pre := make([]float64, 10)
	post := make([]float64, 6)
	for i := range pre {
		pre[i] = 5 + rng.NormFloat64()*0.3
	}
	for i := range post {
		post[i] = 5 + rng.NormFloat64()*0.3
	}
	res := NewDetector().Detect(pre, post)
	if len(res.Spikes) != 0 {
		t.Fatalf("false spikes detected: %+v", res.Spikes)
	}
}

func TestDetectorUnusableWhenNoisy(t *testing.T) {
	// Background noise so large that a 10-packet spike is undetectable.
	rng := rand.New(rand.NewSource(77))
	pre := make([]float64, 12)
	for i := range pre {
		pre[i] = 200 + rng.NormFloat64()*80
	}
	res := NewDetector().Detect(pre, []float64{230})
	if res.Usable {
		t.Fatalf("high-noise vVP should be excluded (FN=%v)", res.FNRate)
	}
}

func TestDetectorEmptyPost(t *testing.T) {
	res := NewDetector().Detect([]float64{1, 2, 3}, nil)
	if res.Usable || len(res.Spikes) != 0 {
		t.Fatal("empty post window must be unusable with no spikes")
	}
}

func TestDetectorFalsePositiveRate(t *testing.T) {
	// Under the null (no spike) the per-point rejection rate should be
	// near alpha. Aggregate over many trials.
	det := NewDetector()
	trials, points, fp := 200, 5, 0
	for s := 0; s < trials; s++ {
		rng := rand.New(rand.NewSource(int64(1000 + s)))
		pre := make([]float64, 10)
		post := make([]float64, points)
		for i := range pre {
			pre[i] = 4 + rng.NormFloat64()
		}
		for i := range post {
			post[i] = 4 + rng.NormFloat64()
		}
		fp += len(det.Detect(pre, post).Spikes)
	}
	rate := float64(fp) / float64(trials*points)
	// Small-sample fits inflate the rate somewhat; it must stay well below
	// a naive threshold detector's but need not be exactly 5%.
	if rate > 0.15 {
		t.Fatalf("false positive rate %v too high", rate)
	}
}

func TestDetectorTrendingBackground(t *testing.T) {
	// A vVP whose background rate ramps up (nonstationary) must not fire
	// just because of the trend — this is why the paper uses ARIMA.
	pre := make([]float64, 12)
	for i := range pre {
		pre[i] = float64(2 + i) // deterministic ramp: 2,3,...,13
	}
	post := []float64{14, 15, 16} // ramp continues, no spike
	res := NewDetector().Detect(pre, post)
	for _, s := range res.Spikes {
		if s.Excess > 5 {
			t.Fatalf("trend misread as spike: %+v", s)
		}
	}
}

func TestMeanModelFallback(t *testing.T) {
	m := NewMeanModel([]float64{4, 4, 4, 4})
	mean, sd := m.Forecast(3)
	for i := range mean {
		if mean[i] != 4 {
			t.Fatalf("mean[%d] = %v, want 4", i, mean[i])
		}
		if sd[i] <= 0 {
			t.Fatalf("sd[%d] = %v, want > 0 floor", i, sd[i])
		}
	}
}

func TestMeanModelEmptySeries(t *testing.T) {
	m := NewMeanModel(nil)
	mean, sd := m.Forecast(1)
	if math.IsNaN(mean[0]) || math.IsNaN(sd[0]) {
		t.Fatal("empty-series fallback must not produce NaN")
	}
}

func TestFitAutoStationaryPicksARMA(t *testing.T) {
	x := genAR1(400, 1, 0.4, 1, 55)
	f := FitAuto(x, 0.05)
	if _, ok := f.(*ARMA); !ok {
		t.Fatalf("FitAuto on stationary series returned %T, want *ARMA", f)
	}
}

func TestFitAutoRandomWalkPicksARIMA(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x := make([]float64, 400)
	for i := 1; i < len(x); i++ {
		x[i] = x[i-1] + rng.NormFloat64()
	}
	f := FitAuto(x, 0.05)
	if _, ok := f.(*ARIMA); !ok {
		t.Fatalf("FitAuto on random walk returned %T, want *ARIMA", f)
	}
}

func TestFitAutoTinySeriesFallsBack(t *testing.T) {
	f := FitAuto([]float64{1, 2}, 0.05)
	if _, ok := f.(*MeanModel); !ok {
		t.Fatalf("FitAuto on tiny series returned %T, want *MeanModel", f)
	}
}

func TestARIMAForecastRandomWalkWithDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, 2000)
	for i := 1; i < len(x); i++ {
		x[i] = x[i-1] + 2 + rng.NormFloat64()*0.5
	}
	m, err := FitARIMA(x, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean, sd := m.Forecast(5)
	last := x[len(x)-1]
	// Forecast should continue the drift: ~last + 2k.
	for k := 0; k < 5; k++ {
		want := last + 2*float64(k+1)
		if math.Abs(mean[k]-want) > 3 {
			t.Fatalf("forecast[%d] = %v, want ~%v", k, mean[k], want)
		}
	}
	for i := 1; i < len(sd); i++ {
		if sd[i] < sd[i-1] {
			t.Fatalf("integrated sd must grow: %v", sd)
		}
	}
}

func TestFitARIMANegativeD(t *testing.T) {
	if _, err := FitARIMA(make([]float64, 50), 1, -1, 0); err == nil {
		t.Fatal("expected error for negative d")
	}
}

// TestDetectorShortWindows drives the detector through the degenerate fit
// windows a faulty round actually produces (lost probes shrink pre below any
// model's minimum) and asserts each case declares itself unusable instead of
// fabricating spikes from a near-empty fit.
func TestDetectorShortWindows(t *testing.T) {
	d := NewDetector()
	cases := []struct {
		name       string
		pre, post  []float64
		wantUsable bool
		wantSpikes int
	}{
		{name: "empty pre", pre: nil, post: []float64{12}, wantUsable: false},
		{name: "single sample", pre: []float64{2}, post: []float64{12, 2}, wantUsable: false},
		{name: "two samples", pre: []float64{2, 3}, post: []float64{12}, wantUsable: false},
		{name: "three samples", pre: []float64{2, 3, 2}, post: []float64{12}, wantUsable: false},
		{name: "empty post", pre: []float64{2, 3, 2, 3, 2, 3, 2, 3, 2, 3}, post: nil, wantUsable: false},
		{name: "both empty", pre: nil, post: nil, wantUsable: false},
		{
			name: "four flat samples usable",
			pre:  []float64{2, 2, 2, 2}, post: []float64{2, 14, 2},
			wantUsable: true, wantSpikes: 1,
		},
		{
			name: "constant-zero background",
			pre:  []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, post: []float64{0, 12, 0},
			wantUsable: true, wantSpikes: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := d.Detect(tc.pre, tc.post)
			if res.Usable != tc.wantUsable {
				t.Fatalf("Usable = %v, want %v (FNRate %.3f)", res.Usable, tc.wantUsable, res.FNRate)
			}
			if !tc.wantUsable && len(res.Spikes) != 0 {
				t.Fatalf("unusable result still reported %d spikes", len(res.Spikes))
			}
			if tc.wantUsable && len(res.Spikes) != tc.wantSpikes {
				t.Fatalf("got %d spikes, want %d", len(res.Spikes), tc.wantSpikes)
			}
		})
	}
}

// TestDetectorShortWindowNoFalseSpikes sweeps every pre length from 0 to 12
// over pure Poisson-ish noise with a noisy post window and checks the
// detector never turns sampling noise into a spike, however short the fit.
func TestDetectorShortWindowNoFalseSpikes(t *testing.T) {
	d := NewDetector()
	noise := []float64{3, 1, 4, 1, 5, 2, 6, 5, 3, 5, 1, 4}
	for n := 0; n <= len(noise); n++ {
		res := d.Detect(noise[:n], []float64{4, 2, 5, 3})
		if len(res.Spikes) != 0 {
			t.Fatalf("pre length %d: spurious spikes %+v", n, res.Spikes)
		}
	}
}
