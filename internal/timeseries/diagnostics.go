package timeseries

import (
	"math"

	"github.com/netsec-lab/rovista/internal/stats"
)

// LjungBoxResult is a portmanteau test for residual autocorrelation: a
// well-fitted ARMA/ARIMA model leaves white-noise residuals, so Q should be
// small relative to the χ² threshold.
type LjungBoxResult struct {
	Q       float64 // the Ljung-Box statistic
	Lags    int
	DF      int     // degrees of freedom (lags − fitted parameters)
	Crit    float64 // χ²(DF) critical value at the tested level
	Passing bool    // residuals look like white noise
}

// LjungBox computes the Ljung-Box Q statistic over the first `lags`
// autocorrelations of residuals, with `fitted` parameters subtracted from
// the degrees of freedom, testing at significance alpha.
func LjungBox(residuals []float64, lags, fitted int, alpha float64) LjungBoxResult {
	n := len(residuals)
	if lags <= 0 || n <= lags+1 {
		// Too short to test: treat as passing.
		df := lags - fitted
		if df < 1 {
			df = 1
		}
		return LjungBoxResult{Lags: lags, DF: df, Crit: ChiSquareQuantile(1-alpha, df), Passing: true}
	}
	q := 0.0
	for k := 1; k <= lags; k++ {
		r := stats.Autocorrelation(residuals, k)
		if math.IsNaN(r) {
			continue
		}
		q += r * r / float64(n-k)
	}
	q *= float64(n) * (float64(n) + 2)

	df := lags - fitted
	if df < 1 {
		df = 1
	}
	crit := ChiSquareQuantile(1-alpha, df)
	return LjungBoxResult{Q: q, Lags: lags, DF: df, Crit: crit, Passing: q <= crit}
}

// ChiSquareQuantile returns the p-quantile of the χ² distribution with df
// degrees of freedom via the Wilson–Hilferty cube approximation (accurate to
// a few parts in a thousand for df ≥ 1, plenty for diagnostics).
func ChiSquareQuantile(p float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	switch df {
	case 1:
		// χ²(1) is the square of a standard normal: exact.
		z := stats.NormalQuantile((1 + p) / 2)
		return z * z
	case 2:
		// χ²(2) is exponential with mean 2: exact.
		return -2 * math.Log(1-p)
	}
	z := stats.NormalQuantile(p)
	k := float64(df)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}
