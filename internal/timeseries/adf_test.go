package timeseries

import (
	"math/rand"
	"testing"
)

func TestADFStationarySeries(t *testing.T) {
	x := genAR1(500, 1, 0.3, 1, 17)
	r := ADF(x, -1)
	if r.Degenerate {
		t.Fatal("unexpected degenerate result")
	}
	if !r.StationaryAt(0.05) {
		t.Fatalf("AR(1) with phi=0.3 should be detected stationary; stat=%v crit5=%v", r.Stat, r.Crit5)
	}
}

func TestADFRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := make([]float64, 500)
	for i := 1; i < len(x); i++ {
		x[i] = x[i-1] + rng.NormFloat64()
	}
	r := ADF(x, -1)
	if r.Degenerate {
		t.Fatal("unexpected degenerate result")
	}
	if r.StationaryAt(0.05) {
		t.Fatalf("random walk should not be stationary; stat=%v crit5=%v", r.Stat, r.Crit5)
	}
}

func TestADFTrendingSeriesNonstationary(t *testing.T) {
	// A strong linear trend plus noise is nonstationary for the
	// constant-only specification; the paper switches to ARIMA here.
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 400)
	for i := range x {
		x[i] = float64(i)*2 + rng.NormFloat64()
	}
	r := ADF(x, -1)
	if r.Degenerate {
		t.Fatal("unexpected degenerate result")
	}
	if r.StationaryAt(0.05) {
		t.Fatalf("trending series should not be stationary; stat=%v", r.Stat)
	}
}

func TestADFConstantSeriesDegenerate(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 7
	}
	r := ADF(x, -1)
	if !r.Degenerate {
		t.Fatal("constant series should be degenerate")
	}
	if !r.StationaryAt(0.05) {
		t.Fatal("constant series should count as stationary")
	}
}

func TestADFShortSeriesDegenerate(t *testing.T) {
	r := ADF([]float64{1, 2, 3}, -1)
	if !r.Degenerate {
		t.Fatal("short series should be degenerate")
	}
}

func TestADFCriticalValuesOrdering(t *testing.T) {
	c1, c5, c10 := adfCritical(100)
	if !(c1 < c5 && c5 < c10) {
		t.Fatalf("critical values out of order: %v %v %v", c1, c5, c10)
	}
	// Must approach the asymptotic values as n grows.
	a1, a5, a10 := adfCritical(1_000_000)
	if a1 > -3.42 || a5 > -2.85 || a10 > -2.56 {
		t.Fatalf("asymptotic criticals wrong: %v %v %v", a1, a5, a10)
	}
}

func TestADFPowerAcrossSeeds(t *testing.T) {
	// The 5% test should reject the (true) unit-root null at most ~5% of
	// the time over many random walks; allow generous slack for a small
	// number of trials.
	rejected := 0
	const trials = 60
	for s := int64(0); s < trials; s++ {
		rng := rand.New(rand.NewSource(100 + s))
		x := make([]float64, 300)
		for i := 1; i < len(x); i++ {
			x[i] = x[i-1] + rng.NormFloat64()
		}
		if r := ADF(x, -1); !r.Degenerate && r.StationaryAt(0.05) {
			rejected++
		}
	}
	if rejected > trials/5 {
		t.Fatalf("ADF rejected unit root %d/%d times, size badly off", rejected, trials)
	}
}
