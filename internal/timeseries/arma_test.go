package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

func genAR1(n int, c, phi, sigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	x[0] = c / (1 - phi)
	for i := 1; i < n; i++ {
		x[i] = c + phi*x[i-1] + rng.NormFloat64()*sigma
	}
	return x
}

func TestFitARMARecoverAR1(t *testing.T) {
	x := genAR1(2000, 2, 0.6, 1, 42)
	m, err := FitARMA(x, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.6) > 0.06 {
		t.Fatalf("phi = %v, want ~0.6", m.Phi[0])
	}
	if math.Abs(m.C-2) > 0.35 {
		t.Fatalf("c = %v, want ~2", m.C)
	}
	if math.Abs(m.Sigma2-1) > 0.15 {
		t.Fatalf("sigma2 = %v, want ~1", m.Sigma2)
	}
}

func TestFitARMARecoverARMA11(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 6000
	x := make([]float64, n)
	wPrev := 0.0
	for i := 1; i < n; i++ {
		w := rng.NormFloat64()
		x[i] = 1 + 0.5*x[i-1] + w + 0.4*wPrev
		wPrev = w
	}
	m, err := FitARMA(x, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.5) > 0.1 {
		t.Fatalf("phi = %v, want ~0.5", m.Phi[0])
	}
	if math.Abs(m.Theta[0]-0.4) > 0.12 {
		t.Fatalf("theta = %v, want ~0.4", m.Theta[0])
	}
}

func TestFitARMATooShort(t *testing.T) {
	if _, err := FitARMA([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("expected ErrTooShort")
	}
}

func TestFitARMANegativeOrder(t *testing.T) {
	if _, err := FitARMA(make([]float64, 100), -1, 0); err == nil {
		t.Fatal("expected error for negative order")
	}
}

func TestARMAForecastConvergesToMean(t *testing.T) {
	x := genAR1(3000, 5, 0.5, 0.5, 3)
	m, err := FitARMA(x, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean, sd := m.Forecast(50)
	// Stationary AR(1) forecast converges to c/(1−φ) = 10.
	longRun := m.C / (1 - m.Phi[0])
	if math.Abs(mean[49]-longRun) > 0.5 {
		t.Fatalf("long forecast = %v, want ~%v", mean[49], longRun)
	}
	// Prediction sd must be nondecreasing and start near sigma.
	for i := 1; i < len(sd); i++ {
		if sd[i]+1e-12 < sd[i-1] {
			t.Fatalf("sd not nondecreasing at %d: %v < %v", i, sd[i], sd[i-1])
		}
	}
	if math.Abs(sd[0]-math.Sqrt(m.Sigma2)) > 1e-9 {
		t.Fatalf("sd[0] = %v, want sqrt(sigma2) = %v", sd[0], math.Sqrt(m.Sigma2))
	}
}

func TestPsiWeightsAR1(t *testing.T) {
	m := &ARMA{Phi: []float64{0.5}, Sigma2: 1}
	psi := m.PsiWeights(5)
	want := []float64{1, 0.5, 0.25, 0.125, 0.0625}
	for i := range want {
		if math.Abs(psi[i]-want[i]) > 1e-12 {
			t.Errorf("psi[%d] = %v, want %v", i, psi[i], want[i])
		}
	}
}

func TestPsiWeightsMA1(t *testing.T) {
	m := &ARMA{Theta: []float64{0.7}, Sigma2: 1}
	psi := m.PsiWeights(4)
	want := []float64{1, 0.7, 0, 0}
	for i := range want {
		if math.Abs(psi[i]-want[i]) > 1e-12 {
			t.Errorf("psi[%d] = %v, want %v", i, psi[i], want[i])
		}
	}
}

func TestARMAForecastZeroHorizon(t *testing.T) {
	m := &ARMA{Phi: []float64{0.5}, Sigma2: 1}
	mean, sd := m.Forecast(0)
	if mean != nil || sd != nil {
		t.Fatal("zero horizon should return nils")
	}
}

func TestAICPrefersTrueOrder(t *testing.T) {
	x := genAR1(3000, 0, 0.7, 1, 21)
	m1, err := FitARMA(x, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := FitARMA(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The richer model may fit marginally better in-sample, but AIC's
	// penalty should keep the parsimonious model competitive (within the
	// 2-per-parameter penalty budget).
	if m3.AIC() < m1.AIC()-8 {
		t.Fatalf("AIC(ARMA(2,1)) = %v substantially beats AIC(AR(1)) = %v on AR(1) data", m3.AIC(), m1.AIC())
	}
}
