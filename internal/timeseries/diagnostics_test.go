package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

func TestChiSquareQuantileKnownValues(t *testing.T) {
	// Reference values (df, p, quantile) from standard tables.
	cases := []struct {
		df   int
		p    float64
		want float64
	}{
		{1, 0.95, 3.841},
		{5, 0.95, 11.070},
		{10, 0.95, 18.307},
		{10, 0.99, 23.209},
		{30, 0.95, 43.773},
	}
	for _, c := range cases {
		got := ChiSquareQuantile(c.p, c.df)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("ChiSq(%v, %d) = %.3f, want %.3f", c.p, c.df, got, c.want)
		}
	}
	if !math.IsNaN(ChiSquareQuantile(0.95, 0)) {
		t.Fatal("df=0 should be NaN")
	}
}

func TestLjungBoxWhiteNoisePasses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	passes := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		res := make([]float64, 200)
		for j := range res {
			res[j] = rng.NormFloat64()
		}
		if LjungBox(res, 10, 0, 0.05).Passing {
			passes++
		}
	}
	// Should pass ~95% of the time under the null.
	if passes < trials*8/10 {
		t.Fatalf("white noise passed only %d/%d", passes, trials)
	}
}

func TestLjungBoxCorrelatedFails(t *testing.T) {
	// Strongly autocorrelated residuals must fail.
	rng := rand.New(rand.NewSource(9))
	res := make([]float64, 300)
	for j := 1; j < len(res); j++ {
		res[j] = 0.8*res[j-1] + rng.NormFloat64()*0.3
	}
	if LjungBox(res, 10, 0, 0.05).Passing {
		t.Fatal("AR(1) residuals passed the whiteness test")
	}
}

func TestLjungBoxOnFittedModelResiduals(t *testing.T) {
	// Fit the true model: residuals should be white. Fit a too-small model:
	// residuals stay correlated.
	rng := rand.New(rand.NewSource(13))
	n := 2000
	x := make([]float64, n)
	for i := 2; i < n; i++ {
		x[i] = 0.6*x[i-1] - 0.3*x[i-2] + rng.NormFloat64()
	}
	good, err := FitARMA(x, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	goodRes := residualsOf(good, x)
	if !LjungBox(goodRes, 10, 2, 0.01).Passing {
		t.Fatal("true-order fit left correlated residuals")
	}
}

// residualsOf recomputes one-step-ahead residuals of a fitted AR model.
func residualsOf(m *ARMA, x []float64) []float64 {
	p := len(m.Phi)
	var out []float64
	for t := p; t < len(x); t++ {
		pred := m.C
		for i := 1; i <= p; i++ {
			pred += m.Phi[i-1] * x[t-i]
		}
		out = append(out, x[t]-pred)
	}
	return out
}

func TestLjungBoxShortSeriesPasses(t *testing.T) {
	if !LjungBox([]float64{1, 2}, 10, 0, 0.05).Passing {
		t.Fatal("untestably short series should pass by default")
	}
}
