// Package timeseries implements the statistical machinery from Appendix A of
// the RoVista paper: Augmented Dickey-Fuller stationarity testing, ARMA and
// ARIMA model fitting, multi-step forecasting with prediction variance, and
// one-tailed z-score spike detection over observed IP-ID growth patterns.
package timeseries

import (
	"errors"
	"fmt"
	"math"

	"github.com/netsec-lab/rovista/internal/stats"
)

// Forecaster is the common interface of fitted models: it predicts the next
// h values together with the standard deviation of each prediction error.
type Forecaster interface {
	Forecast(h int) (mean, sd []float64)
}

// ARMA is a fitted ARMA(p, q) model
//
//	x_t = c + Σ φ_i x_{t−i} + w_t + Σ θ_j w_{t−j}
//
// estimated with the Hannan–Rissanen two-stage regression procedure.
type ARMA struct {
	C      float64   // intercept
	Phi    []float64 // AR coefficients φ_1..φ_p
	Theta  []float64 // MA coefficients θ_1..θ_q
	Sigma2 float64   // innovation variance

	// tail state for forecasting: most recent observations (newest last)
	// and most recent innovation estimates (newest last).
	xTail []float64
	wTail []float64

	n int // observations used in the fit
}

// ErrTooShort is returned when a series is too short for the requested model.
var ErrTooShort = errors.New("timeseries: series too short for model order")

// FitARMA fits an ARMA(p, q) model to x. For q == 0 this reduces to a pure
// AR fit by OLS; otherwise the Hannan–Rissanen procedure is used: a long
// autoregression provides innovation estimates which then join the lagged
// observations as regressors.
func FitARMA(x []float64, p, q int) (*ARMA, error) {
	if p < 0 || q < 0 {
		return nil, fmt.Errorf("timeseries: negative order p=%d q=%d", p, q)
	}
	n := len(x)
	minN := 3*(p+q+1) + 2
	if n < minN {
		return nil, ErrTooShort
	}
	var w []float64 // innovation estimates aligned with x (NaN until warm)
	if q > 0 {
		m := p + q + 2 // long-AR order for stage one
		if n < 2*m+4 {
			m = max(1, (n-4)/2)
		}
		longAR, err := fitAR(x, m)
		if err != nil {
			return nil, err
		}
		w = longAR.residualSeries(x)
	}

	lag := max(p, q)
	rows := 0
	for t := lag; t < n; t++ {
		if q > 0 && hasNaN(w[t-q:t]) {
			continue
		}
		rows++
	}
	cols := 1 + p + q
	if rows <= cols {
		return nil, ErrTooShort
	}
	a := stats.NewMatrix(rows, cols)
	b := make([]float64, rows)
	r := 0
	for t := lag; t < n; t++ {
		if q > 0 && hasNaN(w[t-q:t]) {
			continue
		}
		a.Set(r, 0, 1)
		for i := 1; i <= p; i++ {
			a.Set(r, i, x[t-i])
		}
		for j := 1; j <= q; j++ {
			a.Set(r, p+j, w[t-j])
		}
		b[r] = x[t]
		r++
	}
	res, err := stats.OLS(a, b)
	if err != nil {
		return nil, err
	}
	m := &ARMA{
		C:      res.Coef[0],
		Phi:    append([]float64(nil), res.Coef[1:1+p]...),
		Theta:  append([]float64(nil), res.Coef[1+p:]...),
		Sigma2: res.Sigma2,
		n:      n,
	}
	m.prime(x)
	return m, nil
}

// prime recomputes the innovation tail by filtering x through the model and
// stores the observation/innovation state needed for forecasting.
func (m *ARMA) prime(x []float64) {
	p, q := len(m.Phi), len(m.Theta)
	w := make([]float64, len(x))
	for t := range x {
		pred := m.C
		for i := 1; i <= p; i++ {
			if t-i >= 0 {
				pred += m.Phi[i-1] * x[t-i]
			}
		}
		for j := 1; j <= q; j++ {
			if t-j >= 0 {
				pred += m.Theta[j-1] * w[t-j]
			}
		}
		w[t] = x[t] - pred
	}
	kx := min(p, len(x))
	m.xTail = append([]float64(nil), x[len(x)-kx:]...)
	kw := min(q, len(w))
	m.wTail = append([]float64(nil), w[len(w)-kw:]...)
}

// Forecast predicts the next h values. The prediction standard deviation is
// computed from the model's ψ-weights: Var[e_h] = σ² Σ_{j<h} ψ_j².
func (m *ARMA) Forecast(h int) (mean, sd []float64) {
	if h <= 0 {
		return nil, nil
	}
	p, q := len(m.Phi), len(m.Theta)
	xs := append([]float64(nil), m.xTail...)
	ws := append([]float64(nil), m.wTail...)
	mean = make([]float64, h)
	for k := 0; k < h; k++ {
		pred := m.C
		for i := 1; i <= p; i++ {
			if len(xs)-i >= 0 && i <= len(xs) {
				pred += m.Phi[i-1] * xs[len(xs)-i]
			}
		}
		for j := 1; j <= q; j++ {
			if j <= len(ws) {
				pred += m.Theta[j-1] * ws[len(ws)-j]
			}
		}
		mean[k] = pred
		xs = append(xs, pred)
		ws = append(ws, 0) // future innovations have zero expectation
	}
	psi := m.PsiWeights(h)
	sd = make([]float64, h)
	acc := 0.0
	for k := 0; k < h; k++ {
		acc += psi[k] * psi[k]
		sd[k] = math.Sqrt(m.Sigma2 * acc)
	}
	return mean, sd
}

// PsiWeights returns the first h MA(∞) ψ-weights of the model (ψ_0 = 1).
func (m *ARMA) PsiWeights(h int) []float64 {
	p, q := len(m.Phi), len(m.Theta)
	psi := make([]float64, h)
	if h == 0 {
		return psi
	}
	psi[0] = 1
	for j := 1; j < h; j++ {
		v := 0.0
		if j <= q {
			v += m.Theta[j-1]
		}
		for i := 1; i <= p && i <= j; i++ {
			v += m.Phi[i-1] * psi[j-i]
		}
		psi[j] = v
	}
	return psi
}

// arFit is a pure autoregression used internally for Hannan–Rissanen stage one.
type arFit struct {
	c    float64
	phi  []float64
	sig2 float64
}

func fitAR(x []float64, p int) (*arFit, error) {
	n := len(x)
	if n <= p+2 {
		return nil, ErrTooShort
	}
	rows := n - p
	a := stats.NewMatrix(rows, p+1)
	b := make([]float64, rows)
	for t := p; t < n; t++ {
		r := t - p
		a.Set(r, 0, 1)
		for i := 1; i <= p; i++ {
			a.Set(r, i, x[t-i])
		}
		b[r] = x[t]
	}
	res, err := stats.OLS(a, b)
	if err != nil {
		return nil, err
	}
	return &arFit{c: res.Coef[0], phi: res.Coef[1:], sig2: res.Sigma2}, nil
}

// residualSeries returns innovation estimates aligned with x; entries before
// the warm-up window are NaN.
func (f *arFit) residualSeries(x []float64) []float64 {
	p := len(f.phi)
	w := make([]float64, len(x))
	for t := range x {
		if t < p {
			w[t] = math.NaN()
			continue
		}
		pred := f.c
		for i := 1; i <= p; i++ {
			pred += f.phi[i-1] * x[t-i]
		}
		w[t] = x[t] - pred
	}
	return w
}

// AIC returns Akaike's information criterion for the fitted model, used for
// order selection in FitAuto.
func (m *ARMA) AIC() float64 {
	k := float64(1 + len(m.Phi) + len(m.Theta))
	n := float64(m.n)
	s2 := m.Sigma2
	if s2 <= 0 {
		s2 = 1e-12
	}
	return n*math.Log(s2) + 2*k
}

func hasNaN(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}
