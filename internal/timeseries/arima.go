package timeseries

import (
	"fmt"

	"github.com/netsec-lab/rovista/internal/stats"
)

// ARIMA is a fitted ARIMA(p, d, q) model: an ARMA(p, q) model on the d-times
// differenced series, with forecasts integrated back to the original scale.
type ARIMA struct {
	D    int
	ARMA *ARMA

	// lastLevels[k] holds the final value of the series differenced k times,
	// k = 0..d−1, needed to undo the differencing during forecasting.
	lastLevels []float64
}

// FitARIMA fits an ARIMA(p, d, q) model to x.
func FitARIMA(x []float64, p, d, q int) (*ARIMA, error) {
	if d < 0 {
		return nil, fmt.Errorf("timeseries: negative differencing order d=%d", d)
	}
	work := append([]float64(nil), x...)
	last := make([]float64, 0, d)
	for k := 0; k < d; k++ {
		if len(work) < 2 {
			return nil, ErrTooShort
		}
		last = append(last, work[len(work)-1])
		work = stats.Diff(work)
	}
	arma, err := FitARMA(work, p, q)
	if err != nil {
		return nil, err
	}
	return &ARIMA{D: d, ARMA: arma, lastLevels: last}, nil
}

// Forecast predicts the next h values of the original (undifferenced) series.
// Prediction standard deviations use the integrated ψ-weights: differencing d
// times corresponds to d cumulative summations of the ARMA ψ-sequence.
func (m *ARIMA) Forecast(h int) (mean, sd []float64) {
	if h <= 0 {
		return nil, nil
	}
	dmean, _ := m.ARMA.Forecast(h)
	// Integrate the mean forecast back up through the d levels.
	mean = append([]float64(nil), dmean...)
	for k := m.D - 1; k >= 0; k-- {
		level := m.lastLevels[k]
		for i := range mean {
			level += mean[i]
			mean[i] = level
		}
	}
	// ψ-weights of the integrated process: cumulative-sum the ARMA ψ d times.
	psi := m.ARMA.PsiWeights(h)
	for k := 0; k < m.D; k++ {
		acc := 0.0
		for i := range psi {
			acc += psi[i]
			psi[i] = acc
		}
	}
	sd = make([]float64, h)
	acc := 0.0
	for i := 0; i < h; i++ {
		acc += psi[i] * psi[i]
		sd[i] = sqrt(m.ARMA.Sigma2 * acc)
	}
	return mean, sd
}

// FitAuto selects and fits a model for x following the paper's recipe:
// run the ADF test; if the series is stationary fit an ARMA model, otherwise
// difference once and fit an ARIMA(p, 1, q). Orders are chosen over a small
// grid by AIC. A degenerate or unfittable series falls back to a constant
// mean/variance model so that detection never fails outright.
func FitAuto(x []float64, alpha float64) Forecaster {
	d := 0
	if r := ADF(x, -1); !r.Degenerate && !r.StationaryAt(alpha) {
		d = 1
	}
	var best Forecaster
	bestAIC := 0.0
	for p := 0; p <= 2; p++ {
		for q := 0; q <= 1; q++ {
			if p == 0 && q == 0 {
				continue
			}
			var f Forecaster
			var aic float64
			if d == 0 {
				m, err := FitARMA(x, p, q)
				if err != nil {
					continue
				}
				f, aic = m, m.AIC()
			} else {
				m, err := FitARIMA(x, p, d, q)
				if err != nil {
					continue
				}
				f, aic = m, m.ARMA.AIC()
			}
			if best == nil || aic < bestAIC {
				best, bestAIC = f, aic
			}
		}
	}
	if best == nil {
		return NewMeanModel(x)
	}
	return best
}

// TrendModel fits x_t = a + b·t by OLS and forecasts the extrapolated trend
// with constant residual noise. The spike detector uses it for short
// nonstationary background windows, where integrating an ARIMA model's
// forecast variance would drown the spikes it is trying to find.
type TrendModel struct {
	A, B  float64 // intercept and slope
	Sigma float64 // residual standard deviation
	TStat float64 // t-statistic of the slope (trend significance)
	n     int     // fitted sample size
}

// NewTrendModel fits a trend model; it returns nil when the series is too
// short or degenerate.
func NewTrendModel(x []float64) *TrendModel {
	if len(x) < 4 {
		return nil
	}
	a := stats.NewMatrix(len(x), 2)
	for i := range x {
		a.Set(i, 0, 1)
		a.Set(i, 1, float64(i))
	}
	res, err := stats.OLS(a, x)
	if err != nil {
		return nil
	}
	sigma := sqrt(res.Sigma2)
	if sigma <= 0 {
		sigma = 0.5
	}
	return &TrendModel{A: res.Coef[0], B: res.Coef[1], Sigma: sigma, TStat: res.TStat(1), n: len(x)}
}

// Forecast implements Forecaster.
func (m *TrendModel) Forecast(h int) (mean, sd []float64) {
	mean = make([]float64, h)
	sd = make([]float64, h)
	for k := 0; k < h; k++ {
		mean[k] = m.A + m.B*float64(m.n+k)
		sd[k] = m.Sigma
	}
	return mean, sd
}

// MeanModel is the fallback forecaster: it predicts the sample mean with the
// sample standard deviation at every horizon. For the short, nearly-constant
// background-traffic series RoVista observes this is often the model that
// actually gets used, exactly as the paper's 10-packet constraint implies.
type MeanModel struct {
	Mu    float64
	Sigma float64
}

// NewMeanModel builds a MeanModel from a sample.
func NewMeanModel(x []float64) *MeanModel {
	mu := stats.Mean(x)
	sigma := stats.StdDev(x)
	if !(sigma > 0) || isNaN(sigma) { // constant or single-point series
		sigma = 0.5
	}
	if isNaN(mu) {
		mu = 0
	}
	return &MeanModel{Mu: mu, Sigma: sigma}
}

// Forecast implements Forecaster.
func (m *MeanModel) Forecast(h int) (mean, sd []float64) {
	mean = make([]float64, h)
	sd = make([]float64, h)
	for i := range mean {
		mean[i] = m.Mu
		sd[i] = m.Sigma
	}
	return mean, sd
}
