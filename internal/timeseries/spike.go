package timeseries

import (
	"math"

	"github.com/netsec-lab/rovista/internal/stats"
)

func sqrt(v float64) float64 {
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

func isNaN(v float64) bool { return math.IsNaN(v) }

// Spike describes one detected spike in an observed window.
type Spike struct {
	Index  int     // position within the observation window
	Z      float64 // z-score against the forecast
	Excess float64 // observed − predicted, in packets
}

// SpikeResult is the outcome of running the Appendix-A detector on one
// pre/post observation pair.
type SpikeResult struct {
	Spikes []Spike
	// FNRate is the estimated asymptotic false-negative probability for a
	// spike of ExpectedSpike packets given the fitted noise level.
	FNRate float64
	// Usable reports whether the vVP's background noise admits any inference
	// at all (the paper excludes vVPs whose estimated FP/FN exceeds α).
	Usable bool
}

// Detector runs one-tailed z-score hypothesis tests on observed IP-ID growth
// against a model fitted to pre-measurement background traffic.
type Detector struct {
	// Alpha is the test significance level; the paper uses 0.05.
	Alpha float64
	// ExpectedSpike is the spike magnitude the measurement should induce
	// (the number of spoofed packets, 10 in the paper); used for the
	// false-negative estimate that gates vVP usability.
	ExpectedSpike float64
	// MinExcess discards statistically significant but physically tiny
	// spikes (Poisson shot noise); zero defaults to ExpectedSpike/2.
	MinExcess float64
}

// NewDetector returns a Detector with the paper's defaults (α = 0.05,
// expected spike of 10 packets).
func NewDetector() *Detector {
	return &Detector{Alpha: 0.05, ExpectedSpike: 10}
}

// fitDetect selects the forecasting model for spike detection. Unlike
// FitAuto (general forecasting), a nonstationary background is modelled as
// a deterministic linear trend with *constant* prediction noise: compounding
// ARIMA forecast variance over the post window would swallow the RTO echo
// spike that distinguishes outbound filtering.
func (d *Detector) fitDetect(pre []float64) Forecaster {
	if r := ADF(pre, -1); !r.Degenerate && !r.StationaryAt(d.Alpha) {
		// Short windows make ADF unreliable, so additionally require the
		// fitted trend itself to be overwhelmingly significant before
		// extrapolating it: a spurious slope fitted to ~10 Poisson samples
		// inflates the forecast exactly where the RTO echo lands, turning
		// outbound filtering into "no filtering". Genuine ramps (the only
		// nonstationarity the hosts exhibit) clear t > 5 easily.
		if m := NewTrendModel(pre); m != nil && m.TStat > 5 {
			return m
		}
	}
	var best Forecaster
	bestAIC := 0.0
	for p := 1; p <= 2; p++ {
		m, err := FitARMA(pre, p, 0)
		if err != nil {
			continue
		}
		if best == nil || m.AIC() < bestAIC {
			best, bestAIC = m, m.AIC()
		}
	}
	if best == nil {
		return NewMeanModel(pre)
	}
	return best
}

// Detect fits a model to the background series pre (IP-ID growth per probe
// interval) and tests each value of post for an upward spike.
func (d *Detector) Detect(pre, post []float64) SpikeResult {
	if len(post) == 0 {
		return SpikeResult{Usable: false}
	}
	// A fit window shorter than the smallest model needs admits no inference
	// at all: with fewer samples than the ARMA order every fit falls through
	// to the MeanModel, whose NaN-sanitized mean over zero-to-three samples
	// turns ordinary Poisson noise into spurious high-z "spikes" that the
	// caller would then trust (lost probes, by contrast, are caught upstream
	// by the sample-count check). Declare the vVP unusable instead.
	if len(pre) < 4 {
		return SpikeResult{Usable: false, FNRate: 1}
	}
	model := d.fitDetect(pre)
	mean, sd := model.Forecast(len(post))

	// Small-sample corrections: the paper fits on as few as 10 probes, where
	// OLS understates the innovation variance and the normal quantile is too
	// permissive. Use a Student-t-style critical value with the effective
	// degrees of freedom and floor the noise estimate by the (model-free)
	// differenced-series estimate σ̂ ≈ sd(Δpre)/√2.
	z := stats.NormalQuantile(1 - d.Alpha)
	dof := float64(len(pre) - 4)
	if dof < 3 {
		dof = 3
	}
	tAlpha := z + (z*z*z+z)/(4*dof) // Cornish-Fisher expansion of t quantile
	floor := 0.5                    // half a packet per interval at minimum
	if diffs := stats.Diff(pre); len(diffs) >= 2 {
		if f := stats.StdDev(diffs) / math.Sqrt2; f > floor {
			floor = f
		}
	}

	minExcess := d.MinExcess
	if minExcess == 0 {
		minExcess = d.ExpectedSpike / 2
	}
	var res SpikeResult
	for k := range post {
		s := sd[k]
		if s < floor {
			s = floor
		}
		z := (post[k] - mean[k]) / s
		if z > tAlpha && post[k]-mean[k] >= minExcess {
			res.Spikes = append(res.Spikes, Spike{Index: k, Z: z, Excess: post[k] - mean[k]})
		}
	}

	// Appendix A: the asymptotic FN rate for a spike of size s is
	// Φ(t_α − s/σ̂); exclude vVPs for which this exceeds α.
	noise := sd[0]
	if noise < floor {
		noise = floor
	}
	res.FNRate = stats.NormalCDF(tAlpha - d.ExpectedSpike/noise)
	res.Usable = res.FNRate <= d.Alpha
	return res
}

// GrowthSeries converts raw IP-ID samples (with 16-bit wraparound) into the
// per-interval growth series the detector consumes.
func GrowthSeries(ids []uint16) []float64 {
	if len(ids) < 2 {
		return nil
	}
	out := make([]float64, len(ids)-1)
	for i := 1; i < len(ids); i++ {
		out[i-1] = float64(IPIDDelta(ids[i-1], ids[i]))
	}
	return out
}

// IPIDDelta returns the forward distance from a to b on the 16-bit IP-ID
// ring, correctly handling wraparound (e.g. 0xFFFE → 0x0003 is 5).
func IPIDDelta(a, b uint16) uint16 { return b - a }
