package timeseries

import (
	"math"

	"github.com/netsec-lab/rovista/internal/stats"
)

// ADFResult is the outcome of an Augmented Dickey-Fuller unit-root test with
// an intercept (the "constant, no trend" specification the paper needs: IP-ID
// growth-rate series have a level but no deterministic trend once stationary).
type ADFResult struct {
	Stat       float64 // t-statistic on γ in Δx_t = α + γ x_{t−1} + Σ δ_i Δx_{t−i} + ε_t
	Lags       int     // number of lagged differences included
	N          int     // effective observations
	Crit1      float64 // 1% critical value
	Crit5      float64 // 5% critical value
	Crit10     float64 // 10% critical value
	Degenerate bool    // true when the series was too short/constant to test
}

// StationaryAt reports whether the unit-root null is rejected at the given
// significance level (one of 0.01, 0.05, 0.10; anything else uses 5%).
func (r ADFResult) StationaryAt(alpha float64) bool {
	if r.Degenerate {
		// A constant series is trivially stationary.
		return true
	}
	crit := r.Crit5
	switch alpha {
	case 0.01:
		crit = r.Crit1
	case 0.10:
		crit = r.Crit10
	}
	return r.Stat < crit
}

// adfCritical returns MacKinnon-style finite-sample critical values for the
// constant-only ADF regression, interpolated by sample size.
func adfCritical(n int) (c1, c5, c10 float64) {
	// Response-surface coefficients (MacKinnon 1991/2010), constant case:
	// crit(n) ≈ β∞ + β1/n + β2/n².
	nn := float64(n)
	c1 = -3.43035 - 6.5393/nn - 16.786/(nn*nn)
	c5 = -2.86154 - 2.8903/nn - 4.234/(nn*nn)
	c10 = -2.56677 - 1.5384/nn - 2.809/(nn*nn)
	return
}

// ADF runs the Augmented Dickey-Fuller test on x with the given number of
// lagged difference terms. If lags < 0 the Schwert rule-of-thumb
// ⌊12·(n/100)^{1/4}⌋ capped to what the sample supports is used.
func ADF(x []float64, lags int) ADFResult {
	n := len(x)
	if n < 8 || isConstant(x) {
		return ADFResult{Degenerate: true}
	}
	if lags < 0 {
		lags = int(math.Floor(12 * math.Pow(float64(n)/100, 0.25)))
	}
	// Each lag costs observations and a regressor; shrink until feasible.
	for lags > 0 && n-1-lags <= lags+3 {
		lags--
	}
	dx := stats.Diff(x)
	rows := len(dx) - lags
	cols := 2 + lags // intercept, x_{t-1}, lagged diffs
	if rows <= cols {
		return ADFResult{Degenerate: true}
	}
	a := stats.NewMatrix(rows, cols)
	b := make([]float64, rows)
	for t := lags; t < len(dx); t++ {
		r := t - lags
		a.Set(r, 0, 1)
		a.Set(r, 1, x[t]) // x_{t-1} relative to dx index t (dx[t] = x[t+1]-x[t])
		for i := 1; i <= lags; i++ {
			a.Set(r, 1+i, dx[t-i])
		}
		b[r] = dx[t]
	}
	res, err := stats.OLS(a, b)
	if err != nil {
		return ADFResult{Degenerate: true}
	}
	c1, c5, c10 := adfCritical(rows)
	return ADFResult{
		Stat:   res.TStat(1),
		Lags:   lags,
		N:      rows,
		Crit1:  c1,
		Crit5:  c5,
		Crit10: c10,
	}
}

func isConstant(x []float64) bool {
	for i := 1; i < len(x); i++ {
		if x[i] != x[0] {
			return false
		}
	}
	return true
}
