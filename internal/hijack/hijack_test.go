package hijack

import (
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
)

func world(t *testing.T, seed int64) *core.World {
	t.Helper()
	w, err := core.BuildWorld(core.SmallWorldConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerate(t *testing.T) {
	w := world(t, 1)
	evs := Generate(w, 50, 1)
	if len(evs) < 40 {
		t.Fatalf("events = %d", len(evs))
	}
	subs := 0
	for _, e := range evs {
		if e.Victim == e.Attacker {
			t.Fatal("self-hijack generated")
		}
		if e.SubPrefix {
			subs++
			if e.Prefix.Bits() != 24 {
				t.Fatalf("sub-prefix hijack bits = %d", e.Prefix.Bits())
			}
			vp := w.Topo.Info[e.Victim].Prefixes[0]
			if !vp.Contains(e.Prefix.Addr()) {
				t.Fatalf("sub-prefix %v outside victim space %v", e.Prefix, vp)
			}
		} else if e.Prefix != w.Topo.Info[e.Victim].Prefixes[0] {
			t.Fatalf("exact hijack prefix mismatch")
		}
	}
	if subs == 0 || subs == len(evs) {
		t.Fatalf("sub-prefix mix = %d/%d", subs, len(evs))
	}
}

func TestAnalyzeRestoresRouting(t *testing.T) {
	w := world(t, 2)
	evs := Generate(w, 10, 2)

	before := map[inet.ASN]int{}
	for _, asn := range w.Topo.ASNs {
		before[asn] = len(w.Graph.AS(asn).Routes())
	}
	Analyze(w, map[inet.ASN]float64{}, evs)
	for _, asn := range w.Topo.ASNs {
		if got := len(w.Graph.AS(asn).Routes()); got != before[asn] {
			t.Fatalf("AS %v route count changed %d -> %d", asn, before[asn], got)
		}
	}
	// Attackers must not keep originating hijacked prefixes.
	for _, ev := range evs {
		for _, p := range w.Graph.AS(ev.Attacker).Originated {
			if p == ev.Prefix && !ownsPrefix(w, ev.Attacker, ev.Prefix) {
				t.Fatalf("hijack origination leaked: %v still announces %v", ev.Attacker, ev.Prefix)
			}
		}
	}
}

// TestHijackRestoresExactState pins the event-path restoration guarantee:
// after a hijack announce + withdraw pair travels through ApplyEvents, every
// AS's Loc-RIB — paths, learned-from neighbors, local preferences, validity,
// the lot — is bit-identical to the pre-hijack snapshot, and sampled data
// paths re-resolve identically.
func TestHijackRestoresExactState(t *testing.T) {
	w := world(t, 5)
	evs := Generate(w, 8, 5)
	if len(evs) == 0 {
		t.Fatal("no events generated")
	}

	before := make(map[inet.ASN][]bgp.Route, len(w.Topo.ASNs))
	for _, asn := range w.Topo.ASNs {
		before[asn] = w.Graph.AS(asn).Routes()
	}
	pathsBefore := samplePaths(w)

	for _, ev := range evs {
		if _, err := w.Graph.ApplyEvents([]bgp.RouteEvent{{Kind: bgp.EvAnnounce, AS: ev.Attacker, Prefix: ev.Prefix}}); err != nil {
			t.Fatalf("announce: %v", err)
		}
		if _, err := w.Graph.ApplyEvents([]bgp.RouteEvent{{Kind: bgp.EvWithdraw, AS: ev.Attacker, Prefix: ev.Prefix}}); err != nil {
			t.Fatalf("withdraw: %v", err)
		}
	}

	for _, asn := range w.Topo.ASNs {
		if got := w.Graph.AS(asn).Routes(); !reflect.DeepEqual(got, before[asn]) {
			t.Fatalf("AS %v Loc-RIB changed after hijack announce+withdraw:\nbefore %+v\nafter  %+v",
				asn, before[asn], got)
		}
	}
	if got := samplePaths(w); !reflect.DeepEqual(got, pathsBefore) {
		t.Fatalf("data paths changed after hijack announce+withdraw")
	}
}

// samplePaths resolves a deterministic sample of origin-to-origin data paths.
func samplePaths(w *core.World) [][]inet.ASN {
	var origins []inet.ASN
	for _, asn := range w.Topo.ASNs {
		if len(w.Topo.Info[asn].Prefixes) > 0 {
			origins = append(origins, asn)
			if len(origins) == 12 {
				break
			}
		}
	}
	var out [][]inet.ASN
	for _, src := range origins {
		for _, dst := range origins {
			if src == dst {
				continue
			}
			path, _ := w.Graph.DataPath(src, w.Topo.Info[dst].Prefixes[0].Addr())
			out = append(out, path)
		}
	}
	return out
}

func ownsPrefix(w *core.World, asn inet.ASN, p interface{ String() string }) bool {
	for _, own := range w.Topo.Info[asn].Prefixes {
		if own.String() == p.String() {
			return true
		}
	}
	return false
}

func TestAnalyzeCoverageAndSpread(t *testing.T) {
	w := world(t, 3)
	evs := Generate(w, 40, 3)
	reports := Analyze(w, map[inet.ASN]float64{}, evs)
	if len(reports) != len(evs) {
		t.Fatalf("reports = %d, want %d", len(reports), len(evs))
	}
	covered, spread := 0, 0
	for _, r := range reports {
		if r.RPKICovered {
			covered++
		}
		if r.SpreadASes > 0 {
			spread++
		}
	}
	if covered == 0 || covered == len(reports) {
		t.Fatalf("coverage mix = %d/%d", covered, len(reports))
	}
	if spread == 0 {
		t.Fatal("no hijack spread at all")
	}
}

func TestROVContainsCoveredHijacks(t *testing.T) {
	w := world(t, 4)
	evs := Generate(w, 60, 4)
	reports := Analyze(w, map[inet.ASN]float64{}, evs)
	var covSpread, uncovSpread, nCov, nUncov float64
	for _, r := range reports {
		if r.SpreadASes == 0 {
			continue
		}
		if r.RPKICovered {
			covSpread += float64(r.SpreadASes)
			nCov++
		} else {
			uncovSpread += float64(r.SpreadASes)
			nUncov++
		}
	}
	if nCov == 0 || nUncov == 0 {
		t.Skip("seed lacks both covered and uncovered spreading hijacks")
	}
	// ROV-covered hijacks must spread less on average: the filtering core
	// contains them.
	if covSpread/nCov >= uncovSpread/nUncov {
		t.Fatalf("covered hijacks spread %.1f vs uncovered %.1f; ROV has no effect?",
			covSpread/nCov, uncovSpread/nUncov)
	}
}

func TestSummarize(t *testing.T) {
	reports := []Report{
		{RPKICovered: true, SpreadASes: 2, AllScored: true},
		{RPKICovered: true, SpreadASes: 4, HighScoreOnPath: true},
		{RPKICovered: false, SpreadASes: 10, HighScoreOnPath: true},
		{RPKICovered: false, SpreadASes: 20},
	}
	s := Summarize(reports)
	if s.Total != 4 || s.RPKICovered != 2 {
		t.Fatalf("s = %+v", s)
	}
	if s.CoveredAllScored != 1 || s.CoveredHighScore != 1 || s.UncoveredHighScore != 1 {
		t.Fatalf("s = %+v", s)
	}
	if s.MeanSpreadCovered != 3 || s.MeanSpreadUncovered != 15 {
		t.Fatalf("spreads = %v %v", s.MeanSpreadCovered, s.MeanSpreadUncovered)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Total != 0 || s.MeanSpreadCovered != 0 {
		t.Fatalf("s = %+v", s)
	}
}
