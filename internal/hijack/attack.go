package hijack

import (
	"fmt"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
)

// AttackKind classifies a typed attack primitive. The taxonomy follows the
// RPKI-attack catalogues (SoK 2408.12359, CURE 2312.01872): exact-prefix
// origin hijacks, more-specific subprefix hijacks, Gao-Rexford route leaks,
// and forged-origin spoofs that validate under ROV.
type AttackKind uint8

// Attack kinds.
const (
	// OriginHijack: the attacker originates the victim's exact prefix.
	OriginHijack AttackKind = iota
	// SubprefixHijack: the attacker originates a /24 inside the victim's
	// space; longest-prefix match diverts even ASes that kept the legitimate
	// covering route.
	SubprefixHijack
	// RouteLeak: the attacker re-exports provider/peer routes to everyone,
	// attracting transit traffic it should never carry.
	RouteLeak
	// ForgedOriginHijack: the attacker announces the victim's prefix with a
	// wire path ending in the victim's ASN, so RFC 6811 validation passes at
	// ROV deployers while traffic still terminates at the attacker.
	ForgedOriginHijack
)

// String implements fmt.Stringer.
func (k AttackKind) String() string {
	switch k {
	case OriginHijack:
		return "origin-hijack"
	case SubprefixHijack:
		return "subprefix-hijack"
	case RouteLeak:
		return "route-leak"
	case ForgedOriginHijack:
		return "forged-origin"
	default:
		return fmt.Sprintf("AttackKind(%d)", uint8(k))
	}
}

// Attack is one typed adversarial primitive with an exact-restoration
// guarantee: applying LaunchEvents and then RestoreEvents through the event
// engine returns the world to its pre-attack routing state bit-for-bit
// (provided the launch actually changed state — campaign runners skip
// launches that would collide with existing originations, which keeps the
// guarantee compositional across overlapping attacks).
type Attack struct {
	Kind     AttackKind
	Attacker inet.ASN
	Victim   inet.ASN
	// Prefix is what the attacker announces (equal to VictimPrefix for
	// exact-prefix kinds, a /24 inside it for subprefix hijacks; unused for
	// route leaks).
	Prefix netip.Prefix
	// VictimPrefix is the victim space whose traffic the attack diverts.
	VictimPrefix netip.Prefix
}

// NewAttack builds an attack of the given kind. sub deterministically picks
// the /24 inside victimPrefix for subprefix hijacks (any value; it wraps).
func NewAttack(kind AttackKind, attacker, victim inet.ASN, victimPrefix netip.Prefix, sub uint32) Attack {
	a := Attack{
		Kind:         kind,
		Attacker:     attacker,
		Victim:       victim,
		Prefix:       victimPrefix,
		VictimPrefix: victimPrefix,
	}
	if kind == SubprefixHijack && victimPrefix.Bits() < 24 {
		n := uint32(1) << (24 - victimPrefix.Bits())
		base := inet.V4Int(victimPrefix.Masked().Addr()) + (sub%n)<<8
		a.Prefix = netip.PrefixFrom(inet.V4(base), 24)
	}
	return a
}

// LaunchEvents returns the event batch that starts the attack.
func (a Attack) LaunchEvents() []bgp.RouteEvent {
	switch a.Kind {
	case RouteLeak:
		return []bgp.RouteEvent{{Kind: bgp.EvLeakChange, AS: a.Attacker, Leak: true}}
	case ForgedOriginHijack:
		return []bgp.RouteEvent{{Kind: bgp.EvAnnounce, AS: a.Attacker, Prefix: a.Prefix, ForgedOrigin: a.Victim}}
	default:
		return []bgp.RouteEvent{{Kind: bgp.EvAnnounce, AS: a.Attacker, Prefix: a.Prefix}}
	}
}

// RestoreEvents returns the event batch that exactly undoes LaunchEvents.
func (a Attack) RestoreEvents() []bgp.RouteEvent {
	if a.Kind == RouteLeak {
		return []bgp.RouteEvent{{Kind: bgp.EvLeakChange, AS: a.Attacker, Leak: false}}
	}
	return []bgp.RouteEvent{{Kind: bgp.EvWithdraw, AS: a.Attacker, Prefix: a.Prefix}}
}

// ProbeAddr returns an address inside the attacked space; observing where
// traffic toward it terminates decides per-AS exposure.
func (a Attack) ProbeAddr() netip.Addr {
	p := a.Prefix
	if a.Kind == RouteLeak {
		p = a.VictimPrefix
	}
	return inet.NthAddr(p, 1)
}

// String renders the attack for logs and reports.
func (a Attack) String() string {
	if a.Kind == RouteLeak {
		return fmt.Sprintf("%v by AS%d", a.Kind, a.Attacker)
	}
	return fmt.Sprintf("%v of %v (AS%d) by AS%d", a.Kind, a.Prefix, a.Victim, a.Attacker)
}
