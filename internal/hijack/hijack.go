// Package hijack reproduces the paper's §7.5 BGPStream study: it generates
// BGP hijacking events (prefix and sub-prefix, against RPKI-covered and
// uncovered victims), injects them into a world, observes their propagation
// through the collector, and joins the resulting AS paths with ROV
// protection scores to estimate how many attacks ROV (or a missing ROA)
// would have prevented.
package hijack

import (
	"math/rand"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
)

// Event is one reported hijack attempt.
type Event struct {
	Day       int
	Prefix    netip.Prefix // the prefix the attacker announces
	Victim    inet.ASN     // legitimate holder
	Attacker  inet.ASN
	SubPrefix bool // true: more-specific hijack of the victim's space
}

// Generate draws n hijack events against random victims. coveredFrac of
// the victims hold a ROA for the attacked space (the paper observed 14% of
// BGPStream reports were RPKI-covered).
func Generate(w *core.World, n int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	asns := w.Topo.ASNs
	var out []Event
	for i := 0; i < n; i++ {
		victim := asns[rng.Intn(len(asns))]
		attacker := asns[rng.Intn(len(asns))]
		if attacker == victim {
			continue
		}
		vps := w.Topo.Info[victim].Prefixes
		if len(vps) == 0 {
			continue // transit-only AS (Topology.OriginFrac): nothing to hijack
		}
		vp := vps[0]
		ev := Event{
			Day:      rng.Intn(w.Cfg.Days + 1),
			Victim:   victim,
			Attacker: attacker,
		}
		if rng.Float64() < 0.5 {
			// Sub-prefix hijack: announce a /24 inside the victim's /16.
			ev.Prefix = subnet24(vp, rng)
			ev.SubPrefix = true
		} else {
			ev.Prefix = vp
		}
		out = append(out, ev)
	}
	return out
}

func subnet24(p netip.Prefix, rng *rand.Rand) netip.Prefix {
	n := 1 << (24 - p.Bits())
	idx := rng.Intn(n)
	base := p.Masked().Addr().As4()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += uint32(idx) << 8
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}), 24)
}

// Report is the §7.5 per-event analysis row.
type Report struct {
	Event
	// RPKICovered: a VRP covers the hijacked prefix at the event's day.
	RPKICovered bool
	// SpreadASes is how many ASes accepted a route to the attacker's
	// announcement (its blast radius).
	SpreadASes int
	// PathScored / PathLen count ASes with a RoVista score on one observed
	// propagation path and its total length.
	PathScored, PathLen int
	// AllScored: every AS on the observed path had a score.
	AllScored bool
	// MaxScore is the highest score among path ASes.
	MaxScore float64
	// HighScoreOnPath: some path AS scored above 90 yet propagated the
	// announcement (customer-exemption signature, §7.5).
	HighScoreOnPath bool
}

// Analyze injects each event into the world (at the world's current day),
// measures its propagation, and joins with the given scores. The world's
// routing state is restored after each event.
func Analyze(w *core.World, scores map[inet.ASN]float64, events []Event) []Report {
	out := make([]Report, 0, len(events))
	for _, ev := range events {
		rep := Report{Event: ev}
		if w.VRPs != nil {
			rep.RPKICovered = w.VRPs.CoversPrefix(ev.Prefix)
		}

		// Inject the hijack as a route event: the engine scopes the
		// re-convergence to the announced prefix.
		w.Graph.ApplyEvents([]bgp.RouteEvent{{Kind: bgp.EvAnnounce, AS: ev.Attacker, Prefix: ev.Prefix}})

		// Blast radius: ASes whose best route for the hijacked prefix leads
		// to the attacker.
		for _, asn := range w.Topo.ASNs {
			if r, ok := w.Graph.AS(asn).BestRoute(ev.Prefix); ok && r.Origin() == ev.Attacker {
				rep.SpreadASes++
			}
		}

		// Observed path: the collector's view of the hijacked announcement.
		view := w.Collector.Snapshot(w.Graph)
		for _, r := range view.Routes(ev.Prefix) {
			if r.Origin() != ev.Attacker {
				continue
			}
			rep.PathLen = len(r.Path)
			for _, hop := range r.Path {
				if hop == ev.Attacker {
					continue
				}
				if s, ok := scores[hop]; ok {
					rep.PathScored++
					if s > rep.MaxScore {
						rep.MaxScore = s
					}
					if s > 90 {
						rep.HighScoreOnPath = true
					}
				}
			}
			rep.AllScored = rep.PathLen > 1 && rep.PathScored == rep.PathLen-1
			break
		}

		// Withdraw the hijack and restore routing (the withdraw event
		// re-converges the same prefix cone back to its pre-hijack state —
		// the restoration regression test pins bit-identity down).
		w.Graph.ApplyEvents([]bgp.RouteEvent{{Kind: bgp.EvWithdraw, AS: ev.Attacker, Prefix: ev.Prefix}})
		out = append(out, rep)
	}
	return out
}

// Summary aggregates reports the way §7.5 does.
type Summary struct {
	Total            int
	RPKICovered      int
	CoveredAllScored int // covered events with full path score info
	// CoveredHighScore: covered events that nevertheless crossed a >90%
	// AS (customers exempted from filtering).
	CoveredHighScore int
	// UncoveredHighScore: uncovered events that crossed a >90% AS — the
	// attacks a ROA would have prevented.
	UncoveredHighScore int
	// MeanSpreadCovered / MeanSpreadUncovered compare blast radii.
	MeanSpreadCovered, MeanSpreadUncovered float64
}

// Summarize folds reports into the paper's headline quantities.
func Summarize(reports []Report) Summary {
	var s Summary
	nCov, nUncov := 0, 0
	for _, r := range reports {
		s.Total++
		if r.RPKICovered {
			s.RPKICovered++
			nCov++
			s.MeanSpreadCovered += float64(r.SpreadASes)
			if r.AllScored {
				s.CoveredAllScored++
			}
			if r.HighScoreOnPath {
				s.CoveredHighScore++
			}
		} else {
			nUncov++
			s.MeanSpreadUncovered += float64(r.SpreadASes)
			if r.HighScoreOnPath {
				s.UncoveredHighScore++
			}
		}
	}
	if nCov > 0 {
		s.MeanSpreadCovered /= float64(nCov)
	}
	if nUncov > 0 {
		s.MeanSpreadUncovered /= float64(nUncov)
	}
	return s
}
