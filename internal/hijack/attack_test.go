package hijack

import (
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
)

// TestAttackLaunchRestoreExactState extends the hijack restoration guarantee
// to every typed attack primitive: launch + restore through the event engine
// leaves all Loc-RIBs and sampled data paths bit-identical, for each kind.
func TestAttackLaunchRestoreExactState(t *testing.T) {
	w := world(t, 7)
	var victims []inet.ASN
	for _, asn := range w.Topo.ASNs {
		if len(w.Topo.Info[asn].Prefixes) > 0 {
			victims = append(victims, asn)
		}
	}
	if len(victims) < 2 {
		t.Fatal("not enough origin ASes")
	}
	victim := victims[0]
	attacker := victims[1]
	vp := w.Topo.Info[victim].Prefixes[0]

	for _, kind := range []AttackKind{OriginHijack, SubprefixHijack, RouteLeak, ForgedOriginHijack} {
		t.Run(kind.String(), func(t *testing.T) {
			a := NewAttack(kind, attacker, victim, vp, 5)
			before := make(map[inet.ASN][]bgp.Route, len(w.Topo.ASNs))
			for _, asn := range w.Topo.ASNs {
				before[asn] = w.Graph.AS(asn).Routes()
			}
			pathsBefore := samplePaths(w)

			if _, err := w.Graph.ApplyEvents(a.LaunchEvents()); err != nil {
				t.Fatalf("launch: %v", err)
			}
			if _, err := w.Graph.ApplyEvents(a.RestoreEvents()); err != nil {
				t.Fatalf("restore: %v", err)
			}

			for _, asn := range w.Topo.ASNs {
				if got := w.Graph.AS(asn).Routes(); !reflect.DeepEqual(got, before[asn]) {
					t.Fatalf("AS %v Loc-RIB changed after %v launch+restore", asn, kind)
				}
			}
			if got := samplePaths(w); !reflect.DeepEqual(got, pathsBefore) {
				t.Fatalf("data paths changed after %v launch+restore", kind)
			}
		})
	}
}

// TestAttackKindSemantics spot-checks each primitive's effect while active.
func TestAttackKindSemantics(t *testing.T) {
	w := world(t, 8)
	var victims []inet.ASN
	for _, asn := range w.Topo.ASNs {
		if len(w.Topo.Info[asn].Prefixes) > 0 {
			victims = append(victims, asn)
		}
	}
	victim, attacker := victims[0], victims[len(victims)-1]
	vp := w.Topo.Info[victim].Prefixes[0]

	sub := NewAttack(SubprefixHijack, attacker, victim, vp, 9)
	if sub.Prefix.Bits() != 24 || !vp.Contains(sub.Prefix.Addr()) {
		t.Fatalf("subprefix %v not a /24 inside %v", sub.Prefix, vp)
	}
	if !sub.Prefix.Contains(sub.ProbeAddr()) {
		t.Fatalf("probe %v outside attacked prefix %v", sub.ProbeAddr(), sub.Prefix)
	}

	if _, err := w.Graph.ApplyEvents(sub.LaunchEvents()); err != nil {
		t.Fatal(err)
	}
	// A subprefix hijack wins LPM everywhere the announcement spread: some
	// AS must now deliver probe traffic to the attacker.
	diverted := 0
	for _, asn := range w.Topo.ASNs {
		if origin, ok := w.Graph.OriginOf(asn, sub.ProbeAddr()); ok && origin == attacker && asn != attacker {
			diverted++
		}
	}
	if diverted == 0 {
		t.Fatal("subprefix hijack diverted no traffic")
	}
	if _, err := w.Graph.ApplyEvents(sub.RestoreEvents()); err != nil {
		t.Fatal(err)
	}

	forged := NewAttack(ForgedOriginHijack, attacker, victim, vp, 0)
	if _, err := w.Graph.ApplyEvents(forged.LaunchEvents()); err != nil {
		t.Fatal(err)
	}
	// The forged announcement's wire origin must be the victim everywhere it
	// was accepted.
	seen := false
	for _, asn := range w.Topo.ASNs {
		if asn == attacker {
			continue
		}
		if r, ok := w.Graph.AS(asn).BestRoute(vp); ok && len(r.Path) > 0 && r.Path[len(r.Path)-2] == attacker {
			seen = true
			if r.Origin() != victim {
				t.Fatalf("forged route at AS %v has wire origin %v, want victim %v", asn, r.Origin(), victim)
			}
		}
	}
	if !seen {
		t.Fatal("forged announcement propagated nowhere")
	}
	if _, err := w.Graph.ApplyEvents(forged.RestoreEvents()); err != nil {
		t.Fatal(err)
	}
}
