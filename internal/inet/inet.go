// Package inet holds the small shared vocabulary of Internet number
// resources used across the repository: AS numbers and IPv4 prefix
// arithmetic helpers built on net/netip.
package inet

import (
	"fmt"
	"net/netip"
)

// ASN is an Autonomous System Number.
type ASN uint32

// String renders the conventional "AS64500" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// V4 converts a 32-bit integer to an IPv4 address.
func V4(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// V4Int converts an IPv4 address to its 32-bit integer value. It panics on
// non-IPv4 input, which is always a programming error in this codebase.
func V4Int(a netip.Addr) uint32 {
	if !a.Is4() {
		panic(fmt.Sprintf("inet: %v is not IPv4", a))
	}
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// NthAddr returns the n-th address inside prefix p (0 is the network
// address). It panics when n exceeds the prefix size.
func NthAddr(p netip.Prefix, n uint32) netip.Addr {
	size := PrefixSize(p)
	if uint64(n) >= size {
		panic(fmt.Sprintf("inet: address index %d out of range for %v", n, p))
	}
	return V4(V4Int(p.Masked().Addr()) + n)
}

// PrefixSize returns the number of addresses covered by p.
func PrefixSize(p netip.Prefix) uint64 {
	return uint64(1) << (32 - p.Bits())
}

// Subnets splits p into its two direct children (one bit longer). It panics
// on a /32.
func Subnets(p netip.Prefix) (lo, hi netip.Prefix) {
	if p.Bits() >= 32 {
		panic(fmt.Sprintf("inet: cannot subnet %v", p))
	}
	base := V4Int(p.Masked().Addr())
	nb := p.Bits() + 1
	lo = netip.PrefixFrom(V4(base), nb)
	hi = netip.PrefixFrom(V4(base|1<<(31-p.Bits())), nb)
	return
}

// SubnetAt returns the i-th subnet of p at the given longer bit length.
// For example SubnetAt(10.0.0.0/8, 16, 3) = 10.3.0.0/16.
func SubnetAt(p netip.Prefix, bits int, i uint32) netip.Prefix {
	if bits < p.Bits() || bits > 32 {
		panic(fmt.Sprintf("inet: bad subnet length %d for %v", bits, p))
	}
	n := uint64(1) << (bits - p.Bits())
	if uint64(i) >= n {
		panic(fmt.Sprintf("inet: subnet index %d out of range for %v -> /%d", i, p, bits))
	}
	base := V4Int(p.Masked().Addr())
	return netip.PrefixFrom(V4(base+i<<(32-bits)), bits)
}

// Overlaps reports whether two prefixes share any address.
func Overlaps(a, b netip.Prefix) bool {
	return a.Contains(b.Masked().Addr()) || b.Contains(a.Masked().Addr())
}
