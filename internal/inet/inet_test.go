package inet

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestASNString(t *testing.T) {
	if got := ASN(64500).String(); got != "AS64500" {
		t.Fatalf("got %q", got)
	}
}

func TestV4RoundTrip(t *testing.T) {
	f := func(v uint32) bool { return V4Int(V4(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestV4IntPanicsOnIPv6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	V4Int(netip.MustParseAddr("::1"))
}

func TestNthAddr(t *testing.T) {
	p := netip.MustParsePrefix("10.1.0.0/16")
	if a := NthAddr(p, 0); a != netip.MustParseAddr("10.1.0.0") {
		t.Fatalf("NthAddr(0) = %v", a)
	}
	if a := NthAddr(p, 257); a != netip.MustParseAddr("10.1.1.1") {
		t.Fatalf("NthAddr(257) = %v", a)
	}
}

func TestNthAddrOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NthAddr(netip.MustParsePrefix("10.0.0.0/30"), 4)
}

func TestPrefixSize(t *testing.T) {
	cases := map[string]uint64{
		"10.0.0.0/8": 1 << 24, "192.0.2.0/24": 256, "1.2.3.4/32": 1, "0.0.0.0/0": 1 << 32,
	}
	for s, want := range cases {
		if got := PrefixSize(netip.MustParsePrefix(s)); got != want {
			t.Errorf("PrefixSize(%s) = %d, want %d", s, got, want)
		}
	}
}

func TestSubnets(t *testing.T) {
	lo, hi := Subnets(netip.MustParsePrefix("10.0.0.0/8"))
	if lo != netip.MustParsePrefix("10.0.0.0/9") || hi != netip.MustParsePrefix("10.128.0.0/9") {
		t.Fatalf("Subnets = %v %v", lo, hi)
	}
}

func TestSubnetAt(t *testing.T) {
	p := netip.MustParsePrefix("10.0.0.0/8")
	if got := SubnetAt(p, 16, 3); got != netip.MustParsePrefix("10.3.0.0/16") {
		t.Fatalf("SubnetAt = %v", got)
	}
	if got := SubnetAt(p, 8, 0); got != p {
		t.Fatalf("identity SubnetAt = %v", got)
	}
}

func TestSubnetAtOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SubnetAt(netip.MustParsePrefix("10.0.0.0/8"), 9, 2)
}

func TestOverlaps(t *testing.T) {
	a := netip.MustParsePrefix("10.0.0.0/8")
	b := netip.MustParsePrefix("10.5.0.0/16")
	c := netip.MustParsePrefix("11.0.0.0/8")
	if !Overlaps(a, b) || !Overlaps(b, a) {
		t.Fatal("containment should overlap")
	}
	if Overlaps(a, c) {
		t.Fatal("disjoint prefixes should not overlap")
	}
	if !Overlaps(a, a) {
		t.Fatal("prefix overlaps itself")
	}
}

// Property: the i-th /b subnet of p contains exactly its own NthAddr range
// and subnets at equal index are disjoint from index+1.
func TestSubnetAtDisjointProperty(t *testing.T) {
	p := netip.MustParsePrefix("172.16.0.0/12")
	f := func(iRaw uint8) bool {
		i := uint32(iRaw % 15)
		s1 := SubnetAt(p, 16, i)
		s2 := SubnetAt(p, 16, i+1)
		return !Overlaps(s1, s2) && p.Contains(s1.Addr()) && p.Contains(s2.Addr())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
