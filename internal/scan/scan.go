// Package scan implements RoVista's ZMap-style discovery and qualification
// phases (§4.1–4.2 of the paper):
//
//   - vVP discovery: find hosts whose IP-ID comes from a single global
//     counter, by interleaving direct probes with bursty spoofed probes and
//     requiring the counter to reflect both;
//   - tNode qualification: confirm that a host under an RPKI-invalid prefix
//     (a) answers spoofed SYNs with SYN-ACKs, (b) retransmits on RTO, and
//     (c) stops retransmitting on RST.
//
// Scans run inside the discrete-event simulator; the "ZMap sweep" enumerates
// attached hosts, since unattached addresses can never respond.
package scan

import (
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/tcpsim"
)

// VVP is a qualified virtual vantage point: a host with an observable
// global IP-ID counter.
type VVP struct {
	Addr netip.Addr
	ASN  inet.ASN
	// BackgroundRate is the estimated background traffic in packets/second,
	// measured during qualification; RoVista discards vVPs above a cutoff
	// (10 pkt/s in the paper).
	BackgroundRate float64
}

// TNode is a qualified test node: a responsive host under an exclusively
// RPKI-invalid prefix with compliant RTO behaviour.
type TNode struct {
	Addr   netip.Addr
	ASN    inet.ASN
	Port   uint16
	Prefix netip.Prefix
}

// Scanner drives discovery. ClientA and ClientB must live in two different
// ASes (the paper uses two measurement clients so each can receive the
// responses the other's spoofed probes elicit).
type Scanner struct {
	Net              *netsim.Network
	ClientA, ClientB *netsim.Host
	// Ports are tried in order when locating listening services.
	Ports []uint16
	Seed  int64
}

// NewScanner wires a scanner over net using the two given client hosts.
func NewScanner(net *netsim.Network, a, b *netsim.Host, ports ...uint16) *Scanner {
	if len(ports) == 0 {
		ports = []uint16{443, 80, 22}
	}
	return &Scanner{Net: net, ClientA: a, ClientB: b, Ports: ports}
}

// vvpProbes is the per-phase probe count from §4.2.
const vvpProbes = 5

// DiscoverVVPs qualifies each candidate address per §4.2: five paced direct
// SYN-ACK probes, five bursty spoofed SYN-ACK probes, five more direct
// probes. A candidate qualifies when every direct probe drew a RST and the
// counter grew monotonically by at least the total number of packets the
// host must have sent.
func (sc *Scanner) DiscoverVVPs(candidates []netip.Addr) []VVP {
	s := netsim.NewSim(sc.Net, sc.Seed)

	type obs struct {
		ids  []uint16
		mark int // index of the first post-burst observation
	}
	results := make(map[netip.Addr]*obs, len(candidates))
	for _, c := range candidates {
		results[c] = &obs{}
	}

	sc.ClientA.Handler = func(_ *netsim.Sim, pkt netsim.Packet) bool {
		if pkt.Kind != tcpsim.RST {
			return true
		}
		if o, ok := results[pkt.Src]; ok {
			o.ids = append(o.ids, pkt.IPID)
		}
		return true
	}
	defer func() { sc.ClientA.Handler = nil }()

	// All candidates are probed concurrently in virtual time; flows are
	// distinguished by source address, so they cannot interfere. Start
	// times follow a keyed random permutation (§5): consecutive addresses
	// are probed far apart, so no network sees a burst.
	spread := 0.01 * float64(len(candidates))
	offsets := ScheduleOffsets(len(candidates), spread, sc.Seed|1)
	for i, c := range candidates {
		cand := c
		o := results[cand]
		base := offsets[i]
		port := sc.Ports[0]
		sp := uint16(20000 + i%20000)
		// Phase (a): five direct probes, one second apart (§4.2: spacing
		// minimizes reordering).
		for k := 0; k < vvpProbes; k++ {
			kk := k
			s.At(base+float64(kk), func() {
				s.SendFrom(sc.ClientA, sc.ClientA.Addr, cand, sp+uint16(kk), port, tcpsim.SYNACK)
			})
		}
		// Phase (b): five bursty spoofed probes from distinct sources; the
		// RSTs they elicit go elsewhere, advancing only a *global* counter.
		s.At(base+float64(vvpProbes), func() {
			o.mark = len(o.ids)
			for k := 0; k < vvpProbes; k++ {
				spoof := spoofSource(sc.ClientB.Addr, k)
				s.SendFrom(sc.ClientB, spoof, cand, uint16(30000+k), port, tcpsim.SYNACK)
			}
		})
		// Phase (c): five more direct probes.
		for k := 0; k < vvpProbes; k++ {
			kk := k
			s.At(base+float64(vvpProbes)+1+float64(kk), func() {
				s.SendFrom(sc.ClientA, sc.ClientA.Addr, cand, sp+uint16(vvpProbes+kk), port, tcpsim.SYNACK)
			})
		}
	}
	s.Run(spread + 2*float64(vvpProbes) + 10)

	var out []VVP
	for _, c := range candidates {
		o := results[c]
		v, ok := sc.qualifyVVP(c, o.ids, o.mark)
		if ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// qualifyVVP applies the §4.2 acceptance rule to the observed RST IP-IDs.
func (sc *Scanner) qualifyVVP(addr netip.Addr, ids []uint16, mark int) (VVP, bool) {
	if len(ids) != 2*vvpProbes || mark != vvpProbes {
		return VVP{}, false // silent host, lossy path, or reordering
	}
	host, ok := sc.Net.HostAt(addr)
	if !ok {
		return VVP{}, false
	}
	// Estimate the background rate from phase (a): each 1 s gap contains
	// one RST of ours plus background.
	var phaseA float64
	for i := 1; i < vvpProbes; i++ {
		d := ids[i] - ids[i-1]
		if d == 0 || d > 1<<14 {
			return VVP{}, false // constant counter or random jumps
		}
		phaseA += float64(d - 1)
	}
	bg := phaseA / float64(vvpProbes-1) // packets/second

	// Across the burst: the host sent 5 spoofed-elicited RSTs plus one to
	// us, so a global counter must grow by at least 6; a per-destination
	// counter grows by exactly 1 (+background).
	burstGrowth := float64(ids[mark] - ids[mark-1])
	// Allow generous background slack (gap is ~1 s long).
	minGrowth := float64(vvpProbes + 1)
	maxGrowth := minGrowth + 12*(bg+1)
	if burstGrowth < minGrowth || burstGrowth > maxGrowth {
		return VVP{}, false
	}
	// Phase (c) must stay monotone and counter-like too.
	for i := mark + 1; i < len(ids); i++ {
		d := ids[i] - ids[i-1]
		if d == 0 || d > 1<<14 {
			return VVP{}, false
		}
	}
	return VVP{Addr: addr, ASN: host.ASN, BackgroundRate: bg}, true
}

// spoofSource derives the k-th spoofed source address near base.
func spoofSource(base netip.Addr, k int) netip.Addr {
	b := base.As4()
	b[3] += byte(k + 1)
	return netip.AddrFrom4(b)
}

// FindListeners sweeps the given prefixes for hosts answering a SYN on one
// of the scanner's ports (the ZMap phase of tNode discovery). It returns
// address/port pairs.
func (sc *Scanner) FindListeners(prefixes []netip.Prefix) []TNode {
	s := netsim.NewSim(sc.Net, sc.Seed+1)
	type key struct {
		addr netip.Addr
		port uint16
	}
	answered := make(map[key]bool)
	sc.ClientA.Handler = func(_ *netsim.Sim, pkt netsim.Packet) bool {
		if pkt.Kind == tcpsim.SYNACK {
			answered[key{pkt.Src, pkt.SrcPort}] = true
		}
		return true
	}
	defer func() { sc.ClientA.Handler = nil }()

	var candidates []netip.Addr
	prefixOf := make(map[netip.Addr]netip.Prefix)
	for _, p := range prefixes {
		for _, a := range sc.Net.AddrsIn(p) {
			candidates = append(candidates, a)
			prefixOf[a] = p
		}
	}
	// Sweep in permuted (address, port) order, as ZMap does.
	nPairs := len(candidates) * len(sc.Ports)
	sweep := 0.002 * float64(nPairs)
	offsets := ScheduleOffsets(nPairs, sweep, sc.Seed|1)
	for i, a := range candidates {
		addr := a
		for j, port := range sc.Ports {
			pt := port
			at := offsets[i*len(sc.Ports)+j]
			s.At(at, func() {
				s.SendFrom(sc.ClientA, sc.ClientA.Addr, addr, uint16(25000+i%30000), pt, tcpsim.SYN)
			})
		}
	}
	s.Run(sweep + float64(len(sc.Ports)) + 20)

	var out []TNode
	seen := make(map[netip.Addr]bool)
	for _, a := range candidates {
		if seen[a] {
			continue
		}
		for _, port := range sc.Ports {
			if answered[key{a, port}] {
				host, _ := sc.Net.HostAt(a)
				out = append(out, TNode{Addr: a, ASN: host.ASN, Port: port, Prefix: prefixOf[a]})
				seen[a] = true
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// QualifyTNode checks conditions (a)–(c) from §4.1 for one listener, using
// the two clients: A sends SYNs spoofed as B, and B observes the SYN-ACKs.
func (sc *Scanner) QualifyTNode(cand TNode) bool {
	s := netsim.NewSim(sc.Net, sc.Seed+2)
	// Earlier sweeps may have left half-open state with absolute deadlines
	// from a previous virtual clock; start clean.
	if h, ok := sc.Net.HostAt(cand.Addr); ok {
		h.TCP.Reset()
	}

	const (
		portNoRST   = 46001 // B stays silent: the tNode must retransmit
		portWithRST = 46002 // B RSTs: the tNode must stop
	)
	synAcks := map[uint16]int{}
	sc.ClientB.Handler = func(sim *netsim.Sim, pkt netsim.Packet) bool {
		if pkt.Kind != tcpsim.SYNACK || pkt.Src != cand.Addr {
			return true
		}
		synAcks[pkt.DstPort]++
		if pkt.DstPort == portWithRST {
			return false // fall through: default automaton sends the RST
		}
		return true // swallow: simulate an unreachable reply path
	}
	defer func() { sc.ClientB.Handler = nil }()

	// Experiment 1: spoofed SYN; B never answers → expect RTO
	// retransmissions within 1–3 s (condition b).
	s.At(0, func() {
		s.SendFrom(sc.ClientA, sc.ClientB.Addr, cand.Addr, portNoRST, cand.Port, tcpsim.SYN)
	})
	// Experiment 2: spoofed SYN; B RSTs the SYN-ACK → no retransmission
	// (condition c). Run after experiment 1's retransmissions have played
	// out so the counts cannot be confused.
	s.At(30, func() {
		s.SendFrom(sc.ClientA, sc.ClientB.Addr, cand.Addr, portWithRST, cand.Port, tcpsim.SYN)
	})
	s.Run(60)

	// Condition (a): both spoofed SYNs were answered at all.
	// Condition (b): the unanswered flow retransmitted at least once.
	// Condition (c): the RST-answered flow did not retransmit.
	return synAcks[portNoRST] >= 2 && synAcks[portWithRST] == 1
}

// DiscoverTNodes finds and qualifies tNodes under the given (exclusively
// RPKI-invalid) prefixes.
func (sc *Scanner) DiscoverTNodes(prefixes []netip.Prefix) []TNode {
	var out []TNode
	for _, cand := range sc.FindListeners(prefixes) {
		if sc.QualifyTNode(cand) {
			out = append(out, cand)
		}
	}
	return out
}
