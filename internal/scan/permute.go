package scan

import (
	"encoding/binary"
	"math"
)

// Permutation is a keyed bijection over [0, N), built from a four-round
// Feistel network with cycle-walking — the technique ZMap uses to visit the
// address space in a random-looking order without keeping state per target.
// The paper's ethics section (§5) relies on exactly this: probes to a host
// population are spread out "according to a random permutation of each pair
// of IP address and port number" so no target sees a burst.
type Permutation struct {
	n          uint64
	halfBits   uint
	halfMask   uint64
	roundKeys  [4]uint64
	domainBits uint
}

// NewPermutation creates a permutation of [0, n) keyed by seed. n must be
// at least 1.
func NewPermutation(n uint64, seed int64) *Permutation {
	if n == 0 {
		n = 1
	}
	// Domain: the smallest even-bit-width power of two >= n (Feistel wants
	// an even split); indexes landing outside [0, n) are cycle-walked.
	bits := uint(1)
	for (uint64(1) << bits) < n {
		bits++
	}
	if bits%2 == 1 {
		bits++
	}
	p := &Permutation{
		n:          n,
		domainBits: bits,
		halfBits:   bits / 2,
	}
	p.halfMask = (uint64(1) << p.halfBits) - 1
	s := uint64(seed)
	for i := range p.roundKeys {
		s = splitmix64(s)
		p.roundKeys[i] = s
	}
	return p
}

// splitmix64 is the SplitMix64 mixing function — a fast, well-distributed
// 64-bit mixer used both for round-key derivation and as the round function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// feistel applies the 4-round network over the even-bit domain.
func (p *Permutation) feistel(x uint64) uint64 {
	l := x >> p.halfBits
	r := x & p.halfMask
	for _, k := range p.roundKeys {
		l, r = r, l^(splitmix64(r^k)&p.halfMask)
	}
	return l<<p.halfBits | r
}

// Index maps position i (0 ≤ i < N) to the i-th element of the permuted
// sequence. Cycle-walking re-applies the network until the value lands back
// inside [0, N); since the domain is less than 4N, the expected walk is
// short and always terminates (the network is a bijection on the domain).
func (p *Permutation) Index(i uint64) uint64 {
	x := p.feistel(i % p.n)
	for x >= p.n {
		x = p.feistel(x)
	}
	return x
}

// N returns the permutation size.
func (p *Permutation) N() uint64 { return p.n }

// ScheduleOffsets returns probe start-time offsets that spread n probes
// over window seconds in permuted order: probe i fires at its permuted
// slot, so consecutive targets in input order are far apart in time. This
// is the §5 pacing applied by the scanner sweeps.
func ScheduleOffsets(n int, window float64, seed int64) []float64 {
	if n <= 0 {
		return nil
	}
	perm := NewPermutation(uint64(n), seed)
	out := make([]float64, n)
	slot := window / float64(n)
	if math.IsInf(slot, 0) || math.IsNaN(slot) {
		slot = 0
	}
	for i := 0; i < n; i++ {
		out[i] = float64(perm.Index(uint64(i))) * slot
	}
	return out
}

// pairKey packs (index, port) for permutations over address/port pairs.
func pairKey(i uint32, port uint16) uint64 {
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], i)
	binary.BigEndian.PutUint16(b[4:6], port)
	return binary.BigEndian.Uint64(b[:])
}
