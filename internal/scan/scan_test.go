package scan

import (
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/netsim"
	"github.com/netsec-lab/rovista/internal/tcpsim"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// fixture: AS 10 provider; AS 1 and 2 host the clients; AS 3 hosts vVP
// candidates; AS 4 announces the test prefix with tNode candidates.
type fixture struct {
	net              *netsim.Network
	clientA, clientB *netsim.Host
	sc               *Scanner
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	g := bgp.NewGraph()
	for _, asn := range []inet.ASN{1, 2, 3, 4} {
		g.Link(10, asn, bgp.Customer)
	}
	g.AS(1).Originated = []netip.Prefix{pfx("10.1.0.0/16")}
	g.AS(2).Originated = []netip.Prefix{pfx("10.2.0.0/16")}
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	g.AS(4).Originated = []netip.Prefix{pfx("10.4.0.0/16")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	n := netsim.NewNetwork(g)
	a := netsim.NewHost(ip("10.1.0.1"), 1, ipid.Global, 1)
	b := netsim.NewHost(ip("10.2.0.1"), 2, ipid.Global, 2)
	n.AddHost(a)
	n.AddHost(b)
	f := &fixture{net: n, clientA: a, clientB: b}
	f.sc = NewScanner(n, a, b, 443)
	return f
}

func TestDiscoverVVPsByPolicy(t *testing.T) {
	f := newFixture(t)
	mk := func(last byte, pol ipid.Policy, bg float64) netip.Addr {
		addr := netip.AddrFrom4([4]byte{10, 3, 0, last})
		h := netsim.NewHost(addr, 3, pol, int64(last))
		h.BackgroundRate = bg
		f.net.AddHost(h)
		return addr
	}
	global := mk(10, ipid.Global, 2)
	perDest := mk(11, ipid.PerDestination, 2)
	random := mk(12, ipid.Random, 2)
	constant := mk(13, ipid.Constant, 2)

	vvps := f.sc.DiscoverVVPs([]netip.Addr{global, perDest, random, constant})
	if len(vvps) != 1 {
		t.Fatalf("qualified %d vVPs, want only the global-counter host: %+v", len(vvps), vvps)
	}
	if vvps[0].Addr != global {
		t.Fatalf("qualified %v, want %v", vvps[0].Addr, global)
	}
	if vvps[0].ASN != 3 {
		t.Fatalf("ASN = %v", vvps[0].ASN)
	}
	// Background estimate should be in the right ballpark (2 pkt/s).
	if vvps[0].BackgroundRate < 0 || vvps[0].BackgroundRate > 8 {
		t.Fatalf("background estimate %v", vvps[0].BackgroundRate)
	}
}

func TestDiscoverVVPsSilentHostRejected(t *testing.T) {
	f := newFixture(t)
	addr := ip("10.3.0.30")
	h := netsim.NewHost(addr, 3, ipid.Global, 30)
	h.Handler = func(*netsim.Sim, netsim.Packet) bool { return true } // never answers
	f.net.AddHost(h)
	if vvps := f.sc.DiscoverVVPs([]netip.Addr{addr}); len(vvps) != 0 {
		t.Fatalf("silent host qualified: %+v", vvps)
	}
}

func TestDiscoverVVPsUnreachableCandidate(t *testing.T) {
	f := newFixture(t)
	if vvps := f.sc.DiscoverVVPs([]netip.Addr{ip("99.9.9.9")}); len(vvps) != 0 {
		t.Fatalf("unreachable candidate qualified: %+v", vvps)
	}
}

func TestDiscoverVVPsBackgroundEstimate(t *testing.T) {
	f := newFixture(t)
	addr := ip("10.3.0.40")
	h := netsim.NewHost(addr, 3, ipid.Global, 40)
	h.BackgroundRate = 6
	f.net.AddHost(h)
	vvps := f.sc.DiscoverVVPs([]netip.Addr{addr})
	if len(vvps) != 1 {
		t.Fatalf("vvps = %+v", vvps)
	}
	if est := vvps[0].BackgroundRate; est < 2 || est > 12 {
		t.Fatalf("estimate %v for true rate 6", est)
	}
}

func addTNodeHost(f *fixture, last byte, cfgMod func(*tcpsim.Config)) netip.Addr {
	addr := netip.AddrFrom4([4]byte{10, 4, 0, last})
	cfg := tcpsim.DefaultConfig(443)
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	h := netsim.NewHost(addr, 4, ipid.Global, int64(last))
	h.TCP = tcpsim.New(cfg)
	f.net.AddHost(h)
	return addr
}

func TestFindListeners(t *testing.T) {
	f := newFixture(t)
	open := addTNodeHost(f, 20, nil)
	// A host with no open ports is invisible to the sweep.
	closed := netsim.NewHost(ip("10.4.0.21"), 4, ipid.Global, 21)
	f.net.AddHost(closed)

	got := f.sc.FindListeners([]netip.Prefix{pfx("10.4.0.0/16")})
	if len(got) != 1 || got[0].Addr != open || got[0].Port != 443 {
		t.Fatalf("listeners = %+v", got)
	}
	if got[0].Prefix != pfx("10.4.0.0/16") {
		t.Fatalf("prefix = %v", got[0].Prefix)
	}
}

func TestQualifyTNodeCompliant(t *testing.T) {
	f := newFixture(t)
	addr := addTNodeHost(f, 22, nil)
	tn := TNode{Addr: addr, ASN: 4, Port: 443, Prefix: pfx("10.4.0.0/16")}
	if !f.sc.QualifyTNode(tn) {
		t.Fatal("compliant host should qualify")
	}
}

func TestQualifyTNodeNoRetransmit(t *testing.T) {
	f := newFixture(t)
	addr := addTNodeHost(f, 23, func(c *tcpsim.Config) { c.Behavior = tcpsim.NoRetransmit })
	tn := TNode{Addr: addr, ASN: 4, Port: 443, Prefix: pfx("10.4.0.0/16")}
	if f.sc.QualifyTNode(tn) {
		t.Fatal("non-retransmitting host must fail condition (b)")
	}
}

func TestQualifyTNodeIgnoresRST(t *testing.T) {
	f := newFixture(t)
	addr := addTNodeHost(f, 24, func(c *tcpsim.Config) { c.Behavior = tcpsim.IgnoreRST })
	tn := TNode{Addr: addr, ASN: 4, Port: 443, Prefix: pfx("10.4.0.0/16")}
	if f.sc.QualifyTNode(tn) {
		t.Fatal("RST-ignoring host must fail condition (c)")
	}
}

func TestQualifyTNodeSilent(t *testing.T) {
	f := newFixture(t)
	addr := addTNodeHost(f, 25, nil)
	h, _ := f.net.HostAt(addr)
	h.Handler = func(*netsim.Sim, netsim.Packet) bool { return true }
	tn := TNode{Addr: addr, ASN: 4, Port: 443, Prefix: pfx("10.4.0.0/16")}
	if f.sc.QualifyTNode(tn) {
		t.Fatal("silent host must fail condition (a)")
	}
}

func TestDiscoverTNodesEndToEnd(t *testing.T) {
	f := newFixture(t)
	good := addTNodeHost(f, 26, nil)
	addTNodeHost(f, 27, func(c *tcpsim.Config) { c.Behavior = tcpsim.NoRetransmit })

	got := f.sc.DiscoverTNodes([]netip.Prefix{pfx("10.4.0.0/16")})
	if len(got) != 1 || got[0].Addr != good {
		t.Fatalf("tNodes = %+v, want only %v", got, good)
	}
}

func TestScannerDefaultPorts(t *testing.T) {
	f := newFixture(t)
	sc := NewScanner(f.net, f.clientA, f.clientB)
	if len(sc.Ports) == 0 {
		t.Fatal("default ports missing")
	}
}
