package scan

import (
	"net/netip"
	"testing"
)

// Degraded-round inputs: a faulty epoch can leave discovery with nothing to
// scan. Every front-end must return an empty (never nil-panicking, never
// fabricated) result so the pipeline's typed insufficient-data verdict — not
// a crash or a phantom measurement — is what the caller sees.

func TestDiscoverVVPsNoCandidates(t *testing.T) {
	f := newFixture(t)
	if got := f.sc.DiscoverVVPs(nil); len(got) != 0 {
		t.Fatalf("DiscoverVVPs(nil) = %d vVPs, want none", len(got))
	}
	if got := f.sc.DiscoverVVPs([]netip.Addr{}); len(got) != 0 {
		t.Fatalf("DiscoverVVPs(empty) = %d vVPs, want none", len(got))
	}
}

func TestDiscoverVVPsAllUnreachable(t *testing.T) {
	f := newFixture(t)
	// Addresses under a prefix no AS originates: routed nowhere.
	cands := []netip.Addr{ip("172.16.0.1"), ip("172.16.0.2")}
	if got := f.sc.DiscoverVVPs(cands); len(got) != 0 {
		t.Fatalf("unreachable candidates qualified as vVPs: %v", got)
	}
}

func TestFindListenersNoPrefixes(t *testing.T) {
	f := newFixture(t)
	if got := f.sc.FindListeners(nil); len(got) != 0 {
		t.Fatalf("FindListeners(nil) = %v, want none", got)
	}
}

func TestFindListenersEmptyPrefix(t *testing.T) {
	f := newFixture(t)
	// A valid prefix with no hosts attached under it.
	if got := f.sc.FindListeners([]netip.Prefix{pfx("10.9.0.0/16")}); len(got) != 0 {
		t.Fatalf("FindListeners over hostless prefix = %v, want none", got)
	}
}

func TestDiscoverTNodesNoPrefixes(t *testing.T) {
	f := newFixture(t)
	if got := f.sc.DiscoverTNodes(nil); len(got) != 0 {
		t.Fatalf("DiscoverTNodes(nil) = %v, want none", got)
	}
}

func TestScheduleOffsetsDegenerate(t *testing.T) {
	if got := ScheduleOffsets(0, 10, 1); got != nil {
		t.Fatalf("ScheduleOffsets(0) = %v, want nil", got)
	}
	if got := ScheduleOffsets(-3, 10, 1); got != nil {
		t.Fatalf("ScheduleOffsets(-3) = %v, want nil", got)
	}
	// Zero window: every offset collapses to zero but stays finite.
	for i, off := range ScheduleOffsets(5, 0, 1) {
		if off != 0 {
			t.Fatalf("offset[%d] = %v with zero window", i, off)
		}
	}
}

func TestPermutationSizeZero(t *testing.T) {
	p := NewPermutation(0, 7)
	if p.N() == 0 {
		t.Fatal("zero-size permutation must clamp to a non-empty domain")
	}
	if got := p.Index(0); got >= p.N() {
		t.Fatalf("Index(0) = %d outside domain %d", got, p.N())
	}
}
