package scan

import (
	"testing"
	"testing/quick"
)

func TestPermutationIsBijection(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 7, 16, 100, 1000, 4097} {
		p := NewPermutation(n, 42)
		seen := make(map[uint64]bool, n)
		for i := uint64(0); i < n; i++ {
			v := p.Index(i)
			if v >= n {
				t.Fatalf("n=%d: Index(%d) = %d out of range", n, i, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate output %d", n, v)
			}
			seen[v] = true
		}
		if uint64(len(seen)) != n {
			t.Fatalf("n=%d: covered %d values", n, len(seen))
		}
	}
}

func TestPermutationBijectionProperty(t *testing.T) {
	f := func(nRaw uint16, seed int64) bool {
		n := uint64(nRaw%2000) + 1
		p := NewPermutation(n, seed)
		seen := make(map[uint64]bool, n)
		for i := uint64(0); i < n; i++ {
			v := p.Index(i)
			if v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationDeterministicPerSeed(t *testing.T) {
	a := NewPermutation(500, 7)
	b := NewPermutation(500, 7)
	c := NewPermutation(500, 8)
	same, diff := true, false
	for i := uint64(0); i < 500; i++ {
		if a.Index(i) != b.Index(i) {
			same = false
		}
		if a.Index(i) != c.Index(i) {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different permutations")
	}
	if !diff {
		t.Fatal("different seeds produced identical permutations")
	}
}

func TestPermutationActuallyShuffles(t *testing.T) {
	// The permutation must not be (close to) the identity.
	p := NewPermutation(1000, 3)
	fixed := 0
	for i := uint64(0); i < 1000; i++ {
		if p.Index(i) == i {
			fixed++
		}
	}
	if fixed > 50 {
		t.Fatalf("%d fixed points out of 1000", fixed)
	}
}

func TestPermutationSpreadsNeighbours(t *testing.T) {
	// Consecutive inputs should land far apart on average — that is the
	// whole point of scan-order randomization.
	p := NewPermutation(10000, 9)
	var sum float64
	for i := uint64(1); i < 10000; i++ {
		d := int64(p.Index(i)) - int64(p.Index(i-1))
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	// Uniformly random spacing averages ~N/3.
	if mean := sum / 9999; mean < 1500 {
		t.Fatalf("mean neighbour distance %.0f too small", mean)
	}
}

func TestScheduleOffsets(t *testing.T) {
	offs := ScheduleOffsets(100, 10, 5)
	if len(offs) != 100 {
		t.Fatalf("len = %d", len(offs))
	}
	seen := map[float64]bool{}
	for _, o := range offs {
		if o < 0 || o >= 10 {
			t.Fatalf("offset %v out of window", o)
		}
		if seen[o] {
			t.Fatalf("duplicate slot %v", o)
		}
		seen[o] = true
	}
	if ScheduleOffsets(0, 10, 5) != nil {
		t.Fatal("zero probes should yield nil")
	}
}

func TestPairKeyInjective(t *testing.T) {
	f := func(a uint32, pa uint16, b uint32, pb uint16) bool {
		if a == b && pa == pb {
			return pairKey(a, pa) == pairKey(b, pb)
		}
		return pairKey(a, pa) != pairKey(b, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
