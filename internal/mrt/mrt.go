// Package mrt implements the MRT export format (RFC 6396) that RouteViews
// and RIPE RIS publish their collector snapshots in — specifically the
// TABLE_DUMP_V2 RIB encoding (PEER_INDEX_TABLE + RIB_IPV4_UNICAST) with
// four-octet AS_PATH attributes.
//
// The paper's pipeline starts from RouteViews MRT dumps; this package lets
// the repository's collector views round-trip through the same byte format
// a real deployment would archive, so downstream tooling (and tests) can
// consume either.
package mrt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/collectors"
	"github.com/netsec-lab/rovista/internal/inet"
)

// MRT record types/subtypes used (RFC 6396 §4).
const (
	TypeTableDumpV2 uint16 = 13

	SubtypePeerIndexTable uint16 = 1
	SubtypeRIBIPv4Unicast uint16 = 2
)

// BGP path attribute type codes.
const (
	attrOrigin uint8 = 1
	attrASPath uint8 = 2
)

// asPathSequence is the AS_PATH segment type for an ordered path.
const asPathSequence uint8 = 2

// ErrMalformed reports undecodable MRT input.
var ErrMalformed = errors.New("mrt: malformed record")

// Record is one decoded MRT record.
type Record struct {
	Timestamp uint32
	Type      uint16
	Subtype   uint16
	Body      []byte
}

// writeRecord emits one MRT record with header.
func writeRecord(w io.Writer, timestamp uint32, typ, subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], timestamp)
	binary.BigEndian.PutUint16(hdr[4:], typ)
	binary.BigEndian.PutUint16(hdr[6:], subtype)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadRecord decodes one MRT record from r; io.EOF signals a clean end.
func ReadRecord(r io.Reader) (*Record, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: header: %v", ErrMalformed, err)
	}
	length := binary.BigEndian.Uint32(hdr[8:])
	if length > 1<<24 {
		return nil, fmt.Errorf("%w: implausible length %d", ErrMalformed, length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrMalformed, err)
	}
	return &Record{
		Timestamp: binary.BigEndian.Uint32(hdr[0:]),
		Type:      binary.BigEndian.Uint16(hdr[4:]),
		Subtype:   binary.BigEndian.Uint16(hdr[6:]),
		Body:      body,
	}, nil
}

// Dump is the decoded content of a TABLE_DUMP_V2 archive.
type Dump struct {
	CollectorName string
	Timestamp     uint32 // from the archive's PEER_INDEX_TABLE record
	Peers         []Peer
	Entries       []RIBEntry
}

// Peer is one PEER_INDEX_TABLE entry.
type Peer struct {
	ASN  inet.ASN
	Addr netip.Addr
}

// RIBEntry is one (prefix, peer, path) observation.
type RIBEntry struct {
	Prefix    netip.Prefix
	PeerIndex int
	Path      []inet.ASN
}

// WriteView serializes a collector view (plus its peer table) as a
// TABLE_DUMP_V2 archive. Peer addresses are synthesized from the feeder
// ASNs (the simulator's collectors peer at the AS level).
func WriteView(w io.Writer, name string, view *collectors.View, feeders []inet.ASN, timestamp uint32) error {
	peerIdx := make(map[inet.ASN]int, len(feeders))
	peers := make([]Peer, 0, len(feeders))
	for _, f := range feeders {
		if _, dup := peerIdx[f]; dup {
			continue
		}
		peerIdx[f] = len(peers)
		peers = append(peers, Peer{ASN: f, Addr: inet.V4(uint32(f))})
	}
	if err := writeRecord(w, timestamp, TypeTableDumpV2, SubtypePeerIndexTable, marshalPeerIndex(name, peers)); err != nil {
		return err
	}

	prefixes := view.Prefixes()
	for seq, p := range prefixes {
		obs := view.Routes(p)
		// Stable peer order within the entry.
		sort.Slice(obs, func(i, j int) bool { return obs[i].Feeder < obs[j].Feeder })
		body, err := marshalRIBEntry(uint32(seq), p, obs, peerIdx, timestamp)
		if err != nil {
			return err
		}
		if err := writeRecord(w, timestamp, TypeTableDumpV2, SubtypeRIBIPv4Unicast, body); err != nil {
			return err
		}
	}
	return nil
}

func marshalPeerIndex(name string, peers []Peer) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.BigEndian, uint32(0)) // collector BGP ID
	binary.Write(&b, binary.BigEndian, uint16(len(name)))
	b.WriteString(name)
	binary.Write(&b, binary.BigEndian, uint16(len(peers)))
	for _, p := range peers {
		// Peer type 0x02: AS number is 32 bits, address is IPv4.
		b.WriteByte(0x02)
		binary.Write(&b, binary.BigEndian, uint32(0)) // peer BGP ID
		a := p.Addr.As4()
		b.Write(a[:])
		binary.Write(&b, binary.BigEndian, uint32(p.ASN))
	}
	return b.Bytes()
}

func marshalRIBEntry(seq uint32, p netip.Prefix, obs []collectors.RouteObs, peerIdx map[inet.ASN]int, timestamp uint32) ([]byte, error) {
	var b bytes.Buffer
	binary.Write(&b, binary.BigEndian, seq)
	b.WriteByte(uint8(p.Bits()))
	nb := (p.Bits() + 7) / 8
	addr := p.Masked().Addr().As4()
	b.Write(addr[:nb])
	binary.Write(&b, binary.BigEndian, uint16(len(obs)))
	for _, o := range obs {
		idx, ok := peerIdx[o.Feeder]
		if !ok {
			return nil, fmt.Errorf("mrt: observation from unknown feeder %v", o.Feeder)
		}
		binary.Write(&b, binary.BigEndian, uint16(idx))
		binary.Write(&b, binary.BigEndian, timestamp)
		attrs := marshalAttrs(o.Path)
		binary.Write(&b, binary.BigEndian, uint16(len(attrs)))
		b.Write(attrs)
	}
	return b.Bytes(), nil
}

// marshalAttrs encodes ORIGIN and a four-octet AS_PATH.
func marshalAttrs(path []inet.ASN) []byte {
	var b bytes.Buffer
	// ORIGIN: flags 0x40 (transitive), type 1, len 1, value 0 (IGP).
	b.Write([]byte{0x40, attrOrigin, 1, 0})
	// AS_PATH: one AS_SEQUENCE segment of 4-byte ASNs.
	var seg bytes.Buffer
	seg.WriteByte(asPathSequence)
	seg.WriteByte(uint8(len(path)))
	for _, asn := range path {
		binary.Write(&seg, binary.BigEndian, uint32(asn))
	}
	b.Write([]byte{0x40, attrASPath, uint8(seg.Len())})
	b.Write(seg.Bytes())
	return b.Bytes()
}

// ReadDump parses a single TABLE_DUMP_V2 archive.
func ReadDump(r io.Reader) (*Dump, error) {
	dumps, err := ReadDumps(r)
	if err != nil {
		return nil, err
	}
	if len(dumps) > 1 {
		return nil, fmt.Errorf("%w: %d concatenated archives (use ReadDumps)", ErrMalformed, len(dumps))
	}
	return dumps[0], nil
}

// ReadDumps parses a stream of concatenated TABLE_DUMP_V2 archives — the
// shape of a longitudinal capture where successive RIB snapshots are
// appended to one file. A new dump begins at each PEER_INDEX_TABLE record;
// dumps are returned in stream order so callers can diff neighbors into
// announce/withdraw deltas.
func ReadDumps(r io.Reader) ([]*Dump, error) {
	var dumps []*Dump
	var d *Dump
	for {
		rec, err := ReadRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if rec.Type != TypeTableDumpV2 {
			continue // tolerate foreign record types, as real parsers do
		}
		switch rec.Subtype {
		case SubtypePeerIndexTable:
			name, peers, err := parsePeerIndex(rec.Body)
			if err != nil {
				return nil, err
			}
			d = &Dump{CollectorName: name, Timestamp: rec.Timestamp, Peers: peers}
			dumps = append(dumps, d)
		case SubtypeRIBIPv4Unicast:
			if d == nil {
				return nil, fmt.Errorf("%w: RIB entry before peer index", ErrMalformed)
			}
			entries, err := parseRIBEntry(rec.Body, len(d.Peers))
			if err != nil {
				return nil, err
			}
			d.Entries = append(d.Entries, entries...)
		}
	}
	if len(dumps) == 0 {
		return nil, fmt.Errorf("%w: missing peer index table", ErrMalformed)
	}
	return dumps, nil
}

func parsePeerIndex(b []byte) (string, []Peer, error) {
	if len(b) < 8 {
		return "", nil, ErrMalformed
	}
	nameLen := int(binary.BigEndian.Uint16(b[4:]))
	if len(b) < 8+nameLen {
		return "", nil, ErrMalformed
	}
	name := string(b[6 : 6+nameLen])
	off := 6 + nameLen
	count := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	peers := make([]Peer, 0, count)
	for i := 0; i < count; i++ {
		if off >= len(b) {
			return "", nil, ErrMalformed
		}
		typ := b[off]
		off++
		off += 4 // peer BGP ID
		var addr netip.Addr
		if typ&0x01 != 0 { // IPv6 peer address
			if off+16 > len(b) {
				return "", nil, ErrMalformed
			}
			addr = netip.AddrFrom16([16]byte(b[off : off+16]))
			off += 16
		} else {
			if off+4 > len(b) {
				return "", nil, ErrMalformed
			}
			addr = netip.AddrFrom4([4]byte(b[off : off+4]))
			off += 4
		}
		var asn uint32
		if typ&0x02 != 0 { // 4-octet AS
			if off+4 > len(b) {
				return "", nil, ErrMalformed
			}
			asn = binary.BigEndian.Uint32(b[off:])
			off += 4
		} else {
			if off+2 > len(b) {
				return "", nil, ErrMalformed
			}
			asn = uint32(binary.BigEndian.Uint16(b[off:]))
			off += 2
		}
		peers = append(peers, Peer{ASN: inet.ASN(asn), Addr: addr})
	}
	return name, peers, nil
}

func parseRIBEntry(b []byte, peerCount int) ([]RIBEntry, error) {
	if len(b) < 5 {
		return nil, ErrMalformed
	}
	plen := int(b[4])
	if plen > 32 {
		return nil, fmt.Errorf("%w: prefix length %d", ErrMalformed, plen)
	}
	nb := (plen + 7) / 8
	if len(b) < 5+nb+2 {
		return nil, ErrMalformed
	}
	var addr4 [4]byte
	copy(addr4[:], b[5:5+nb])
	prefix := netip.PrefixFrom(netip.AddrFrom4(addr4), plen)
	off := 5 + nb
	count := int(binary.BigEndian.Uint16(b[off:]))
	off += 2

	var out []RIBEntry
	for i := 0; i < count; i++ {
		if off+8 > len(b) {
			return nil, ErrMalformed
		}
		peerIdx := int(binary.BigEndian.Uint16(b[off:]))
		if peerIdx >= peerCount {
			return nil, fmt.Errorf("%w: peer index %d out of range", ErrMalformed, peerIdx)
		}
		off += 2
		off += 4 // originated time
		attrLen := int(binary.BigEndian.Uint16(b[off:]))
		off += 2
		if off+attrLen > len(b) {
			return nil, ErrMalformed
		}
		path, err := parseASPath(b[off : off+attrLen])
		if err != nil {
			return nil, err
		}
		off += attrLen
		out = append(out, RIBEntry{Prefix: prefix, PeerIndex: peerIdx, Path: path})
	}
	return out, nil
}

// parseASPath walks the BGP path attributes for the four-octet AS_PATH.
func parseASPath(b []byte) ([]inet.ASN, error) {
	off := 0
	for off+3 <= len(b) {
		flags := b[off]
		typ := b[off+1]
		var alen, hdr int
		if flags&0x10 != 0 { // extended length
			if off+4 > len(b) {
				return nil, ErrMalformed
			}
			alen = int(binary.BigEndian.Uint16(b[off+2:]))
			hdr = 4
		} else {
			alen = int(b[off+2])
			hdr = 3
		}
		if off+hdr+alen > len(b) {
			return nil, ErrMalformed
		}
		val := b[off+hdr : off+hdr+alen]
		if typ == attrASPath {
			return parseASPathSegments(val)
		}
		off += hdr + alen
	}
	return nil, nil // no AS_PATH attribute: locally originated
}

func parseASPathSegments(b []byte) ([]inet.ASN, error) {
	var out []inet.ASN
	off := 0
	for off < len(b) {
		if off+2 > len(b) {
			return nil, ErrMalformed
		}
		segType := b[off]
		n := int(b[off+1])
		off += 2
		if off+4*n > len(b) {
			return nil, ErrMalformed
		}
		for i := 0; i < n; i++ {
			asn := binary.BigEndian.Uint32(b[off:])
			off += 4
			if segType == asPathSequence {
				out = append(out, inet.ASN(asn))
			}
		}
	}
	return out, nil
}

// Observations converts the dump back into collector route observations.
func (d *Dump) Observations() []collectors.RouteObs {
	out := make([]collectors.RouteObs, 0, len(d.Entries))
	for _, e := range d.Entries {
		out = append(out, collectors.RouteObs{
			Prefix: e.Prefix,
			Path:   e.Path,
			Feeder: d.Peers[e.PeerIndex].ASN,
		})
	}
	return out
}
