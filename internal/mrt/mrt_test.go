package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/collectors"
	"github.com/netsec-lab/rovista/internal/inet"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func buildView(t *testing.T) (*collectors.View, []inet.ASN) {
	t.Helper()
	g := bgp.NewGraph()
	g.Link(1, 2, bgp.Peer)
	g.Link(1, 3, bgp.Customer)
	g.Link(2, 3, bgp.Customer)
	g.Link(1, 4, bgp.Customer)
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16"), pfx("10.30.0.0/20")}
	g.AS(4).Originated = []netip.Prefix{pfx("10.4.0.0/16")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	feeders := []inet.ASN{1, 2}
	coll := &collectors.Collector{Name: "rv-test", Feeders: feeders}
	return coll.Snapshot(g), feeders
}

func TestRoundTrip(t *testing.T) {
	view, feeders := buildView(t)
	var buf bytes.Buffer
	if err := WriteView(&buf, "rv-test", view, feeders, 1700000000); err != nil {
		t.Fatal(err)
	}
	dump, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dump.CollectorName != "rv-test" {
		t.Fatalf("name = %q", dump.CollectorName)
	}
	if len(dump.Peers) != 2 {
		t.Fatalf("peers = %d", len(dump.Peers))
	}

	// Every original observation must survive the round trip.
	want := map[string]bool{}
	for _, p := range view.Prefixes() {
		for _, o := range view.Routes(p) {
			want[obsKey(o)] = true
		}
	}
	got := dump.Observations()
	if len(got) != len(want) {
		t.Fatalf("observations = %d, want %d", len(got), len(want))
	}
	for _, o := range got {
		if !want[obsKey(o)] {
			t.Fatalf("unexpected observation %+v", o)
		}
	}
}

func obsKey(o collectors.RouteObs) string {
	s := o.Prefix.String() + "|" + o.Feeder.String()
	for _, h := range o.Path {
		s += "," + h.String()
	}
	return s
}

func TestOriginsPreserved(t *testing.T) {
	view, feeders := buildView(t)
	var buf bytes.Buffer
	WriteView(&buf, "x", view, feeders, 1)
	dump, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range dump.Observations() {
		if len(o.Path) == 0 {
			t.Fatalf("empty path for %v", o.Prefix)
		}
		if o.Path[0] != o.Feeder {
			t.Fatalf("path %v does not start at feeder %v", o.Path, o.Feeder)
		}
	}
}

func TestEmptyView(t *testing.T) {
	g := bgp.NewGraph()
	g.AddAS(1)
	coll := &collectors.Collector{Feeders: []inet.ASN{1}}
	var buf bytes.Buffer
	if err := WriteView(&buf, "empty", coll.Snapshot(g), []inet.ASN{1}, 0); err != nil {
		t.Fatal(err)
	}
	dump, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Entries) != 0 || len(dump.Peers) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
}

func TestReadDumpMissingIndex(t *testing.T) {
	// A RIB record with no preceding peer index must be rejected.
	var buf bytes.Buffer
	writeRecord(&buf, 0, TypeTableDumpV2, SubtypeRIBIPv4Unicast, make([]byte, 7))
	if _, err := ReadDump(&buf); err == nil {
		t.Fatal("missing peer index accepted")
	}
}

func TestReadDumpEmptyInput(t *testing.T) {
	if _, err := ReadDump(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty archive accepted")
	}
}

func TestReadRecordTruncation(t *testing.T) {
	view, feeders := buildView(t)
	var buf bytes.Buffer
	WriteView(&buf, "x", view, feeders, 1)
	full := buf.Bytes()
	// Any strict prefix that ends mid-record must error (not EOF-clean),
	// except cuts at record boundaries.
	boundaries := map[int]bool{0: true}
	r := bytes.NewReader(full)
	off := 0
	for {
		rec, err := ReadRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		off += 12 + len(rec.Body)
		boundaries[off] = true
	}
	for cut := 1; cut < len(full); cut++ {
		if boundaries[cut] {
			continue
		}
		if _, err := ReadDump(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestForeignRecordTypesTolerated(t *testing.T) {
	view, feeders := buildView(t)
	var buf bytes.Buffer
	// Interleave a foreign record (e.g. BGP4MP type 16) before the dump.
	writeRecord(&buf, 0, 16, 4, []byte{1, 2, 3})
	WriteView(&buf, "x", view, feeders, 1)
	dump, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Entries) == 0 {
		t.Fatal("entries lost when skipping foreign records")
	}
}

func TestParseASPathExtendedLength(t *testing.T) {
	// Build an AS_PATH attribute with the extended-length flag set.
	path := []inet.ASN{65001, 65002, 65003}
	var seg bytes.Buffer
	seg.WriteByte(asPathSequence)
	seg.WriteByte(3)
	for _, a := range path {
		var w [4]byte
		w[0] = byte(uint32(a) >> 24)
		w[1] = byte(uint32(a) >> 16)
		w[2] = byte(uint32(a) >> 8)
		w[3] = byte(uint32(a))
		seg.Write(w[:])
	}
	var attr bytes.Buffer
	attr.Write([]byte{0x50, attrASPath, 0, byte(seg.Len())}) // 0x50: transitive+extlen
	attr.Write(seg.Bytes())
	got, err := parseASPath(attr.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 65001 || got[2] != 65003 {
		t.Fatalf("path = %v", got)
	}
}

func TestParseASPathIgnoresASSets(t *testing.T) {
	// An AS_SET segment (type 1) contributes no ordered hops.
	var seg bytes.Buffer
	seg.WriteByte(1) // AS_SET
	seg.WriteByte(2)
	seg.Write([]byte{0, 0, 0, 1, 0, 0, 0, 2})
	var attr bytes.Buffer
	attr.Write([]byte{0x40, attrASPath, byte(seg.Len())})
	attr.Write(seg.Bytes())
	got, err := parseASPath(attr.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("AS_SET members leaked into path: %v", got)
	}
}
