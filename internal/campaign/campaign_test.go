package campaign

import (
	"context"
	"encoding/json"
	"net/netip"
	"os"
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/hijack"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/rpki"
)

func buildWorld(t *testing.T, seed int64) *core.World {
	t.Helper()
	w, err := core.BuildWorld(core.SmallWorldConfig(seed))
	if err != nil {
		t.Fatalf("BuildWorld: %v", err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	return w
}

func stripMetrics(tl *core.Timeline) {
	for _, s := range tl.Snapshots {
		s.Metrics = nil
	}
}

// TestZeroAttackCampaignMatchesRunRounds is the metamorphic anchor: campaign
// plumbing with an empty schedule must be invisible — the timeline is
// bit-identical to plain RunRounds over an identically-built world, at
// worker counts 1 and 4.
func TestZeroAttackCampaignMatchesRunRounds(t *testing.T) {
	const seed, rounds, interval = 31, 4, 5
	for _, workers := range []int{1, 4} {
		wRef := buildWorld(t, seed)
		wCam := buildWorld(t, seed)

		cfg := core.DefaultRunnerConfig(seed)
		cfg.Workers = workers
		rRef := core.NewRunner(wRef, cfg)
		rCam := core.NewRunner(wCam, cfg)

		want, err := rRef.RunRounds(context.Background(), 0, interval, rounds)
		if err != nil {
			t.Fatalf("workers=%d: RunRounds: %v", workers, err)
		}
		c := New(wCam, rCam, Config{Seed: seed, Rounds: rounds, Interval: interval})
		rep, err := c.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: campaign: %v", workers, err)
		}
		if len(rep.Schedule) != 0 || len(rep.Observations) != 0 {
			t.Fatalf("workers=%d: zero-attack campaign scheduled %d attacks, observed %d",
				workers, len(rep.Schedule), len(rep.Observations))
		}
		stripMetrics(want)
		stripMetrics(rep.Timeline)
		if !reflect.DeepEqual(rep.Timeline, want) {
			t.Fatalf("workers=%d: zero-attack campaign timeline diverged from RunRounds", workers)
		}
	}
}

// TestCampaignDeterminismAcrossWorkers pins fixed-seed determinism: the same
// seed over identically-built worlds yields a bit-identical report (schedule,
// observations, quadrants, confusion) at worker counts 1, 2, and 8.
func TestCampaignDeterminismAcrossWorkers(t *testing.T) {
	const seed = 47
	var ref *Report
	for _, workers := range []int{1, 2, 8} {
		w := buildWorld(t, seed)
		cfg := core.DefaultRunnerConfig(seed)
		cfg.Workers = workers
		r := core.NewRunner(w, cfg)
		rep, err := New(w, r, DefaultConfig(seed)).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rep.Schedule) == 0 {
			t.Fatal("empty schedule; determinism test is vacuous")
		}
		stripMetrics(rep.Timeline)
		if ref == nil {
			ref = rep
			continue
		}
		if !reflect.DeepEqual(rep, ref) {
			t.Fatalf("workers=%d: campaign report diverged from workers=1", workers)
		}
	}
}

// TestCampaignRestorationExact: after a full campaign (overlapping windows,
// all kinds) the world's routing state is bit-identical to its pre-campaign
// state.
func TestCampaignRestorationExact(t *testing.T) {
	const seed = 53
	w := buildWorld(t, seed)
	before := make(map[inet.ASN][]bgp.Route, len(w.Topo.ASNs))
	for _, asn := range w.Topo.ASNs {
		before[asn] = w.Graph.AS(asn).Routes()
	}

	cfg := core.DefaultRunnerConfig(seed)
	cfg.Workers = 2
	r := core.NewRunner(w, cfg)
	ccfg := DefaultConfig(seed)
	ccfg.Attacks = 12
	ccfg.Interval = 1 // no timeline churn: isolate attack launch/restore
	ccfg.StartDay = 0
	rep, err := New(w, r, ccfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Schedule) == 0 {
		t.Fatal("empty schedule")
	}
	// The campaign ends on day rounds-1; settle the world back to that day's
	// scheduled state is already done by finish(). Routing must match the
	// same world advanced to the same day without any campaign.
	w2 := buildWorld(t, seed)
	if err := w2.AdvanceTo(rep.Timeline.Days[len(rep.Timeline.Days)-1]); err != nil {
		t.Fatal(err)
	}
	for _, asn := range w2.Topo.ASNs {
		want := w2.Graph.AS(asn).Routes()
		got := w.Graph.AS(asn).Routes()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("AS %v Loc-RIB differs from attack-free world after restoration", asn)
		}
	}
}

// quadWorld builds the hand-wired topology for the quadrant table:
//
//	          AS1 (tier-1)
//	         /          \
//	   AS2 (ROV)        AS3
//	   /      \        /  |  \
//	 AS4      AS6   AS5  AS7  AS8 (ROV)
//	(victim)       (attacker)
//
// AS4 originates 10.4.0.0/16 with a covering ROA (maxlen 16).
func quadWorld(t *testing.T) (*Campaign, netip.Prefix) {
	t.Helper()
	vp := netip.MustParsePrefix("10.4.0.0/16")
	g := bgp.NewGraph()
	for _, l := range [][2]inet.ASN{{1, 2}, {1, 3}, {2, 4}, {2, 6}, {3, 5}, {3, 7}, {3, 8}} {
		if err := g.Link(l[0], l[1], bgp.Customer); err != nil {
			t.Fatal(err)
		}
	}
	g.AS(4).Originated = []netip.Prefix{vp}
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 4, Prefix: vp, MaxLength: vp.Bits()}})
	for _, rovAS := range []inet.ASN{2, 8} {
		g.AS(rovAS).Policy = rov.Full()
		g.AS(rovAS).VRPs = vrps
	}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	return &Campaign{W: &core.World{Graph: g}}, vp
}

// TestQuadrantClassificationTable drives the paper's four quadrants end to
// end on a hand-wired topology, asserting each (AS, attack) cell against the
// data plane: exposure is decided by where probe traffic actually
// terminates, not by any score.
func TestQuadrantClassificationTable(t *testing.T) {
	cases := []struct {
		name     string
		kind     hijack.AttackKind
		asn      inet.ASN
		deployed bool
		exposed  bool
		want     Quadrant
	}{
		// Exact-prefix origin hijack of a ROA-covered prefix:
		{"rov-deployer-filters-invalid", hijack.OriginHijack, 2, true, false, DamageAvoided},
		{"customer-shielded-by-rov-provider", hijack.OriginHijack, 6, false, false, CollateralBenefit},
		{"unprotected-behind-open-provider", hijack.OriginHijack, 7, false, true, Exposed},
		// Forged-origin spoof: the wire origin validates, so even the ROV
		// deployer behind the attacker's provider is diverted.
		{"rov-deployer-diverted-by-forged-origin", hijack.ForgedOriginHijack, 8, true, true, CollateralDamage},
		{"forged-origin-still-filtered-upstream-of-victim", hijack.ForgedOriginHijack, 6, false, false, CollateralBenefit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, vp := quadWorld(t)
			att := hijack.NewAttack(tc.kind, 5, 4, vp, 0)
			if _, err := c.W.Graph.ApplyEvents(att.LaunchEvents()); err != nil {
				t.Fatal(err)
			}
			// Data-plane oracle first: where does the probe actually land?
			origin, ok := c.W.Graph.OriginOf(tc.asn, att.ProbeAddr())
			if !ok {
				t.Fatalf("AS%d cannot deliver probe %v at all", tc.asn, att.ProbeAddr())
			}
			wantOrigin := inet.ASN(4)
			if tc.exposed {
				wantOrigin = 5
			}
			if origin != wantOrigin {
				t.Fatalf("data-plane oracle: AS%d probe terminates at AS%d, want AS%d",
					tc.asn, origin, wantOrigin)
			}
			if got := c.exposedTo(att, tc.asn); got != tc.exposed {
				t.Fatalf("exposedTo(AS%d) = %v, oracle says %v", tc.asn, got, tc.exposed)
			}
			if got := Classify(tc.deployed, tc.exposed); got != tc.want {
				t.Fatalf("Classify(%v, %v) = %v, want %v", tc.deployed, tc.exposed, got, tc.want)
			}
		})
	}
}

// TestLeakExposureGaoRexford pins the route-leak exposure rule on a
// hand-wired peering topology: AS9 (customer of both AS1 and AS2, where
// AS1—AS2 peer) leaks its provider-learned route for AS4's prefix, pulling
// AS2's traffic — and that of AS2's customer AS10 — through itself.
func TestLeakExposureGaoRexford(t *testing.T) {
	vp := netip.MustParsePrefix("10.4.0.0/16")
	g := bgp.NewGraph()
	if err := g.Link(1, 2, bgp.Peer); err != nil {
		t.Fatal(err)
	}
	for _, l := range [][2]inet.ASN{{1, 4}, {1, 9}, {2, 9}, {2, 10}} {
		if err := g.Link(l[0], l[1], bgp.Customer); err != nil {
			t.Fatal(err)
		}
	}
	g.AS(4).Originated = []netip.Prefix{vp}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	c := &Campaign{W: &core.World{Graph: g}}
	att := hijack.NewAttack(hijack.RouteLeak, 9, 4, vp, 0)

	if c.exposedTo(att, 10) {
		t.Fatal("AS10 exposed before the leak launched")
	}
	if _, err := g.ApplyEvents(att.LaunchEvents()); err != nil {
		t.Fatal(err)
	}
	// Data-plane oracle: AS10's traffic must now transit the leaker.
	path, ok := g.DataPath(10, att.ProbeAddr())
	if !ok {
		t.Fatal("AS10 lost reachability under the leak")
	}
	through := false
	for _, hop := range path {
		if hop == 9 {
			through = true
		}
	}
	if !through {
		t.Fatalf("leak did not attract AS10's traffic (path %v)", path)
	}
	if !c.exposedTo(att, 10) {
		t.Fatal("exposedTo missed the leak exposure the data plane shows")
	}
	// The victim's own provider reaches it directly — no exposure.
	if c.exposedTo(att, 1) {
		t.Fatal("AS1 wrongly classified as leak-exposed")
	}
	if _, err := g.ApplyEvents(att.RestoreEvents()); err != nil {
		t.Fatal(err)
	}
	if c.exposedTo(att, 10) {
		t.Fatal("AS10 still exposed after restore")
	}
}

// TestCampaignQuadrantF1Paper is the acceptance gate: under the paper fault
// profile, measured protection (score >= 50) must agree with the data-plane
// oracle at F1 >= 0.90 across a full campaign. When ROBUSTNESS_JSON names
// the benchmark artifact, the result is merged in under "campaign".
func TestCampaignQuadrantF1Paper(t *testing.T) {
	const seed = 61
	w := buildWorld(t, seed)
	cfg := core.DefaultRunnerConfig(seed)
	cfg.Workers = 4
	cfg.Faults = faults.Paper()
	r := core.NewRunner(w, cfg)
	rep, err := New(w, r, DefaultConfig(seed)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Observations) == 0 {
		t.Fatal("campaign produced no observations; F1 gate is vacuous")
	}
	total := 0
	for _, n := range rep.Quadrants {
		total += n
	}
	if total == 0 {
		t.Fatal("empty quadrant report")
	}
	t.Logf("quadrants: damage-avoided=%d collateral-benefit=%d collateral-damage=%d exposed=%d F1=%.3f acc=%.3f skipped=%d",
		rep.Quadrants[DamageAvoided], rep.Quadrants[CollateralBenefit],
		rep.Quadrants[CollateralDamage], rep.Quadrants[Exposed],
		rep.F1, rep.Accuracy, len(rep.SkippedLaunches))
	if rep.F1 < 0.90 {
		t.Fatalf("campaign F1 = %.3f under paper faults, want >= 0.90", rep.F1)
	}

	path := os.Getenv("ROBUSTNESS_JSON")
	if path == "" {
		return
	}
	doc := map[string]any{}
	if blob, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(blob, &doc); err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
	}
	doc["campaign"] = map[string]any{
		"seed":               seed,
		"profile":            "paper",
		"f1":                 rep.F1,
		"accuracy":           rep.Accuracy,
		"attacks_scheduled":  len(rep.Schedule),
		"launches_skipped":   len(rep.SkippedLaunches),
		"observations":       len(rep.Observations),
		"damage_avoided":     rep.Quadrants[DamageAvoided],
		"collateral_benefit": rep.Quadrants[CollateralBenefit],
		"collateral_damage":  rep.Quadrants[CollateralDamage],
		"exposed":            rep.Quadrants[Exposed],
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
