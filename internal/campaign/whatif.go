package campaign

import (
	"fmt"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rov"
)

// maxWhatIfProbes caps the number of prefixes a single query evaluates.
const maxWhatIfProbes = 8

// WhatIfQuery is one counterfactual question against the live world.
type WhatIfQuery struct {
	// Action selects the counterfactual: "deploy-rov" (ASN adopts
	// drop-invalid filtering), "drop-route" (ASN loses its route for
	// Prefix), "hijack" (Attacker originates Prefix; if Victim is non-zero
	// the announcement forges Victim as wire origin), or "leak" (ASN starts
	// re-exporting provider/peer routes).
	Action   string
	ASN      inet.ASN
	Attacker inet.ASN
	Victim   inet.ASN
	Prefix   netip.Prefix
}

// PrefixImpact reports how one probed prefix's forwarding changed in the
// counterfactual world relative to the live one.
type PrefixImpact struct {
	Prefix string `json:"prefix"`
	Probe  string `json:"probe"`
	// ChangedOrigins counts ASes whose traffic toward Probe terminates at a
	// different origin than in the live world.
	ChangedOrigins int `json:"changed_origins"`
	// ExposedASes counts ASes whose traffic now terminates at the attacker
	// (hijack queries only).
	ExposedASes int `json:"exposed_ases"`
}

// WhatIfResult is the answer to a WhatIfQuery.
type WhatIfResult struct {
	Action string `json:"action"`
	// BaseVersion is the live graph's routing epoch the overlay forked from.
	BaseVersion uint64 `json:"base_version"`
	// MaterializedASes is how many of the overlay's ASes needed private
	// routing state; the rest still share the base world's memory.
	MaterializedASes int `json:"materialized_ases"`
	TotalASes        int `json:"total_ases"`
	// Re-convergence stats for the counterfactual batch.
	DirtyPrefixes int `json:"dirty_prefixes"`
	Rounds        int `json:"rounds"`
	ASesTouched   int `json:"ases_touched"`
	Impacts       []PrefixImpact `json:"impacts"`
}

// WhatIfEngine answers counterfactual queries over copy-on-write overlays of
// a live world. Each query forks a fresh overlay, applies the counterfactual
// event batch there, and diffs forwarding against the base — the base graph
// is never written. Callers must serialize Query against base-world
// mutations (the overlay shares the base's memory and is only coherent while
// the base is frozen); rovistad holds its world mutex across both.
type WhatIfEngine struct {
	W *core.World
}

// Query answers one counterfactual. It performs only reads on the base
// world.
func (e *WhatIfEngine) Query(q WhatIfQuery) (*WhatIfResult, error) {
	events, probes, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	ov := bgp.NewOverlay(e.W.Graph)
	var res bgp.EventResult
	if q.Action == "drop-route" {
		// No event encodes a local route drop; edit the overlay's clone of
		// the AS directly (DropRoute materializes it first).
		if ov.Graph().AS(q.ASN).DropRoute(q.Prefix) {
			ov.Graph().BumpVersion()
			res.ASesTouched = 1
		}
	} else if res, err = ov.ApplyEvents(events); err != nil {
		return nil, fmt.Errorf("whatif: %w", err)
	}
	out := &WhatIfResult{
		Action:           q.Action,
		BaseVersion:      e.W.Graph.Version(),
		MaterializedASes: ov.MaterializedASes(),
		TotalASes:        len(e.W.Topo.ASNs),
		DirtyPrefixes:    res.DirtyPrefixes,
		Rounds:           res.Rounds,
		ASesTouched:      res.ASesTouched,
	}
	og := ov.Graph()
	for _, p := range probes {
		probe := inet.NthAddr(p, 1)
		imp := PrefixImpact{Prefix: p.String(), Probe: probe.String()}
		for _, asn := range e.W.Topo.ASNs {
			b, bok := e.W.Graph.OriginOf(asn, probe)
			o, ook := og.OriginOf(asn, probe)
			if b != o || bok != ook {
				imp.ChangedOrigins++
			}
			if q.Action == "hijack" && ook && o == q.Attacker && asn != q.Attacker {
				imp.ExposedASes++
			}
		}
		out.Impacts = append(out.Impacts, imp)
	}
	return out, nil
}

// plan validates the query and builds its counterfactual event batch plus
// the prefixes whose forwarding the answer should diff.
func (e *WhatIfEngine) plan(q WhatIfQuery) ([]bgp.RouteEvent, []netip.Prefix, error) {
	switch q.Action {
	case "deploy-rov":
		if e.W.Graph.AS(q.ASN) == nil {
			return nil, nil, fmt.Errorf("whatif: unknown AS %v", q.ASN)
		}
		ev := bgp.RouteEvent{Kind: bgp.EvPolicyChange, AS: q.ASN, Policy: rov.Full(), VRPs: e.W.VRPs}
		return []bgp.RouteEvent{ev}, e.invalidProbes(), nil
	case "drop-route":
		if e.W.Graph.AS(q.ASN) == nil {
			return nil, nil, fmt.Errorf("whatif: unknown AS %v", q.ASN)
		}
		if !q.Prefix.IsValid() {
			return nil, nil, fmt.Errorf("whatif: drop-route needs a prefix")
		}
		return nil, []netip.Prefix{q.Prefix.Masked()}, nil
	case "hijack":
		if e.W.Graph.AS(q.Attacker) == nil {
			return nil, nil, fmt.Errorf("whatif: unknown attacker %v", q.Attacker)
		}
		if !q.Prefix.IsValid() {
			return nil, nil, fmt.Errorf("whatif: hijack needs a prefix")
		}
		ev := bgp.RouteEvent{Kind: bgp.EvAnnounce, AS: q.Attacker, Prefix: q.Prefix}
		if q.Victim != 0 {
			ev.ForgedOrigin = q.Victim
		}
		return []bgp.RouteEvent{ev}, []netip.Prefix{q.Prefix.Masked()}, nil
	case "leak":
		if e.W.Graph.AS(q.ASN) == nil {
			return nil, nil, fmt.Errorf("whatif: unknown AS %v", q.ASN)
		}
		ev := bgp.RouteEvent{Kind: bgp.EvLeakChange, AS: q.ASN, Leak: true}
		probes := e.invalidProbes()
		if len(probes) == 0 {
			probes = e.originProbes(4)
		}
		return []bgp.RouteEvent{ev}, probes, nil
	default:
		return nil, nil, fmt.Errorf("whatif: unknown action %q (want deploy-rov, drop-route, hijack, or leak)", q.Action)
	}
}

// invalidProbes returns the prefixes of currently-active RPKI-invalid
// announcements — the routes a new ROV deployment would actually filter.
func (e *WhatIfEngine) invalidProbes() []netip.Prefix {
	var out []netip.Prefix
	for _, inv := range e.W.Invalids {
		if !inv.ActiveAt(e.W.Day) {
			continue
		}
		out = append(out, inv.Prefix.Masked())
		if len(out) == maxWhatIfProbes {
			break
		}
	}
	return out
}

// originProbes returns up to n legitimate origin prefixes as a fallback
// probe set.
func (e *WhatIfEngine) originProbes(n int) []netip.Prefix {
	var out []netip.Prefix
	for _, asn := range e.W.Topo.ASNs {
		for _, p := range e.W.Topo.Info[asn].Prefixes {
			out = append(out, p.Masked())
			if len(out) == n {
				return out
			}
		}
	}
	return out
}
