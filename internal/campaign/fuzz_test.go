package campaign

import (
	"reflect"
	"sync"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/hijack"
	"github.com/netsec-lab/rovista/internal/inet"
)

// fuzzWorld is built once and must be returned to exactly this state by
// every fuzz iteration — the invariant under test.
var (
	fuzzOnce     sync.Once
	fuzzW        *core.World
	fuzzOrigins  []inet.ASN
	fuzzASNs     []inet.ASN
	fuzzBaseline map[inet.ASN][]bgp.Route
)

func fuzzSetup(f *testing.F) {
	f.Helper()
	fuzzOnce.Do(func() {
		w, err := core.BuildWorld(core.SmallWorldConfig(97))
		if err != nil {
			f.Fatalf("BuildWorld: %v", err)
		}
		if err := w.AdvanceTo(0); err != nil {
			f.Fatalf("AdvanceTo: %v", err)
		}
		fuzzW = w
		fuzzASNs = w.Topo.ASNs
		for _, asn := range w.Topo.ASNs {
			if len(w.Topo.Info[asn].Prefixes) > 0 {
				fuzzOrigins = append(fuzzOrigins, asn)
			}
		}
		fuzzBaseline = make(map[inet.ASN][]bgp.Route, len(fuzzASNs))
		for _, asn := range fuzzASNs {
			fuzzBaseline[asn] = w.Graph.AS(asn).Routes()
		}
	})
}

const fuzzRounds = 5

// decodeSchedule turns raw fuzz bytes into an attack schedule, 6 bytes per
// attack: kind, attacker index, victim index, subprefix selector, start
// round, duration. Arbitrary bytes decode to arbitrary overlap patterns —
// including same-prefix collisions, windows ending past the last round
// (announce-without-withdraw until teardown), and zero-length tails.
func decodeSchedule(data []byte) []Scheduled {
	var out []Scheduled
	for len(data) >= 6 && len(out) < 16 {
		kind := hijack.AttackKind(data[0] % 4)
		attacker := fuzzASNs[int(data[1])%len(fuzzASNs)]
		victim := fuzzOrigins[int(data[2])%len(fuzzOrigins)]
		sub := uint32(data[3])
		start := int(data[4]) % fuzzRounds
		dur := 1 + int(data[5])%4 // may run past the final round
		data = data[6:]
		if attacker == victim {
			continue
		}
		vp := fuzzW.Topo.Info[victim].Prefixes[0]
		end := start + dur
		if end > fuzzRounds {
			end = fuzzRounds
		}
		out = append(out, Scheduled{
			Attack: hijack.NewAttack(kind, attacker, victim, vp, sub),
			Start:  start,
			End:    end,
		})
	}
	return out
}

// FuzzCampaignSchedule throws arbitrary schedules — overlapping attack
// windows, repeated launches of the same prefix, announces whose withdraw
// only happens at teardown — at the campaign step machinery and checks the
// core restoration invariant: after all rounds plus finish(), every Loc-RIB
// in the world is bit-identical to its pre-campaign state.
func FuzzCampaignSchedule(f *testing.F) {
	fuzzSetup(f)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 5, 0, 1})
	f.Add([]byte{1, 7, 2, 9, 1, 3, 2, 7, 2, 9, 1, 3})                  // leak + same-attacker overlap
	f.Add([]byte{3, 4, 1, 0, 0, 4, 0, 4, 1, 0, 2, 4})                  // forged + colliding exact hijack
	f.Add([]byte{0, 3, 3, 0, 4, 4, 1, 3, 3, 1, 4, 4, 2, 3, 3, 2, 4, 4}) // everything ends at teardown

	f.Fuzz(func(t *testing.T, data []byte) {
		sched := decodeSchedule(data)
		c := NewWithSchedule(fuzzW, nil, Config{Rounds: fuzzRounds}, sched)
		for i := 0; i < fuzzRounds; i++ {
			if err := c.step(i); err != nil {
				t.Fatalf("step(%d): %v", i, err)
			}
		}
		if err := c.finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		for _, asn := range fuzzASNs {
			if got := fuzzW.Graph.AS(asn).Routes(); !reflect.DeepEqual(got, fuzzBaseline[asn]) {
				t.Fatalf("AS %v Loc-RIB not restored after campaign teardown (schedule %v)", asn, sched)
			}
		}
	})
}
