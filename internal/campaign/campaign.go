// Package campaign runs seeded, deterministic attack campaigns against a
// world: typed attacks (origin hijacks, subprefix hijacks, route leaks,
// forged-origin spoofs) scheduled over measurement rounds as coalesced
// bgp.RouteEvent batches, with each AS's *observed* protection — did traffic
// from its cone reach the hijacker? — scored against its measured RoVista
// score. The per-(AS, attack) classification reproduces the paper's
// collateral-benefit/damage quadrants: an AS can be protected without
// deploying ROV (a filtering provider shields it) or exposed despite
// deploying (a forged-origin spoof validates, a customer exemption leaks).
//
// Campaign plumbing is a pure superset of plain rounds: with zero attacks a
// campaign's timeline is bit-identical to core.Runner.RunRounds — the
// metamorphic test battery pins this, plus fixed-seed determinism across
// worker counts and exact world restoration after full teardown.
package campaign

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/hijack"
	"github.com/netsec-lab/rovista/internal/inet"
)

// Config parameterizes a campaign.
type Config struct {
	// Seed drives attack scheduling (kinds, victims, windows). The same seed
	// over the same world yields a bit-identical Report at any worker count.
	Seed int64
	// Rounds is the number of measurement rounds; StartDay and Interval step
	// the world's days exactly as core.Runner.RunRounds does.
	Rounds   int
	StartDay int
	Interval int
	// Attacks is the number of attack draws (self-targeting draws are
	// discarded, so the schedule may hold slightly fewer).
	Attacks int
	// MaxDuration bounds an attack's active window in rounds (default 3).
	MaxDuration int
	// Kind mix: fractions of subprefix hijacks, route leaks, and
	// forged-origin spoofs; the remainder are exact-prefix origin hijacks.
	// Defaults: 0.25 / 0.2 / 0.2.
	SubprefixFrac, LeakFrac, ForgedFrac float64
	// ScoreThreshold splits "protected" from "unprotected" when comparing
	// measured scores against the data-plane oracle (default 50).
	ScoreThreshold float64
}

// DefaultConfig returns a paper-flavored campaign configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		Rounds:         6,
		StartDay:       0,
		Interval:       5,
		Attacks:        8,
		MaxDuration:    3,
		SubprefixFrac:  0.25,
		LeakFrac:       0.2,
		ForgedFrac:     0.2,
		ScoreThreshold: 50,
	}
}

func (c *Config) defaults() {
	if c.MaxDuration <= 0 {
		c.MaxDuration = 3
	}
	if c.ScoreThreshold == 0 {
		c.ScoreThreshold = 50
	}
}

// Scheduled is one attack with its active round window [Start, End); an
// attack with End == Rounds is torn down by the post-campaign restoration.
type Scheduled struct {
	hijack.Attack
	Start, End int
}

// Quadrant is the per-(AS, attack) protection-outcome classification, the
// paper's collateral-benefit/damage analysis: the deployment axis is ground
// truth (did the AS itself filter at that day), the outcome axis is the data
// plane (did its traffic reach the attacker).
type Quadrant uint8

// Quadrant values.
const (
	// DamageAvoided: the AS deploys ROV and its traffic stayed clean.
	DamageAvoided Quadrant = iota
	// CollateralBenefit: the AS does not deploy, yet its traffic stayed
	// clean — typically a filtering provider shields it.
	CollateralBenefit
	// CollateralDamage: the AS deploys ROV but was diverted anyway —
	// forged-origin spoofs, leaks, and customer exemptions land here.
	CollateralDamage
	// Exposed: no deployment, traffic diverted.
	Exposed
)

// String implements fmt.Stringer.
func (q Quadrant) String() string {
	switch q {
	case DamageAvoided:
		return "damage-avoided"
	case CollateralBenefit:
		return "collateral-benefit"
	case CollateralDamage:
		return "collateral-damage"
	case Exposed:
		return "exposed"
	default:
		return fmt.Sprintf("Quadrant(%d)", uint8(q))
	}
}

// Classify maps the (deployed, exposed) pair to its quadrant.
func Classify(deployed, exposed bool) Quadrant {
	switch {
	case deployed && !exposed:
		return DamageAvoided
	case !deployed && !exposed:
		return CollateralBenefit
	case deployed && exposed:
		return CollateralDamage
	default:
		return Exposed
	}
}

// Observation is one (round, attack, AS) protection outcome.
type Observation struct {
	Round, Day int
	// Attack indexes into Report.Schedule.
	Attack   int
	ASN      inet.ASN
	Deployed bool
	Exposed  bool
	// Score is the AS's measured RoVista score that round.
	Score    float64
	Quadrant Quadrant
}

// Report is a campaign's full result.
type Report struct {
	Schedule []Scheduled
	// SkippedLaunches indexes scheduled attacks whose launch would have
	// collided with an existing origination or leak and was skipped to keep
	// restoration exact.
	SkippedLaunches []int
	Timeline        *core.Timeline
	Observations    []Observation
	// Quadrants counts observations per Quadrant value.
	Quadrants [4]int
	// Confusion compares measured protection (score >= threshold) against
	// the data-plane oracle per (AS, round); F1 and Accuracy are derived.
	Confusion faults.Confusion
	F1        float64
	Accuracy  float64
}

// Campaign binds a schedule to a world and runner.
type Campaign struct {
	W   *core.World
	R   *core.Runner
	Cfg Config

	sched   []Scheduled
	active  []bool
	skipped []bool
}

// New schedules a campaign over the world. The schedule is derived from
// Cfg.Seed alone (given the world), so it is reproducible.
func New(w *core.World, r *core.Runner, cfg Config) *Campaign {
	cfg.defaults()
	c := &Campaign{W: w, R: r, Cfg: cfg}
	c.setSchedule(schedule(w, cfg))
	return c
}

// NewWithSchedule binds an explicit schedule (fuzzing and table tests).
func NewWithSchedule(w *core.World, r *core.Runner, cfg Config, sched []Scheduled) *Campaign {
	cfg.defaults()
	c := &Campaign{W: w, R: r, Cfg: cfg}
	c.setSchedule(sched)
	return c
}

func (c *Campaign) setSchedule(sched []Scheduled) {
	c.sched = sched
	c.active = make([]bool, len(sched))
	c.skipped = make([]bool, len(sched))
}

// Schedule returns the campaign's attack schedule.
func (c *Campaign) Schedule() []Scheduled { return c.sched }

// schedule draws the attack set deterministically from the config seed.
func schedule(w *core.World, cfg Config) []Scheduled {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var origins []inet.ASN
	for _, asn := range w.Topo.ASNs {
		if len(w.Topo.Info[asn].Prefixes) > 0 {
			origins = append(origins, asn)
		}
	}
	if len(origins) == 0 || cfg.Rounds <= 0 {
		return nil
	}
	asns := w.Topo.ASNs
	out := make([]Scheduled, 0, cfg.Attacks)
	for i := 0; i < cfg.Attacks; i++ {
		victim := origins[rng.Intn(len(origins))]
		attacker := asns[rng.Intn(len(asns))]
		roll := rng.Float64()
		sub := rng.Uint32()
		start := rng.Intn(cfg.Rounds)
		dur := 1 + rng.Intn(cfg.MaxDuration)
		if attacker == victim {
			continue // discard the draw, keep the stream position
		}
		kind := hijack.OriginHijack
		switch {
		case roll < cfg.SubprefixFrac:
			kind = hijack.SubprefixHijack
		case roll < cfg.SubprefixFrac+cfg.LeakFrac:
			kind = hijack.RouteLeak
		case roll < cfg.SubprefixFrac+cfg.LeakFrac+cfg.ForgedFrac:
			kind = hijack.ForgedOriginHijack
		}
		vp := w.Topo.Info[victim].Prefixes[0]
		end := start + dur
		if end > cfg.Rounds {
			end = cfg.Rounds
		}
		out = append(out, Scheduled{
			Attack: hijack.NewAttack(kind, attacker, victim, vp, sub),
			Start:  start,
			End:    end,
		})
	}
	return out
}

// launchCollides reports whether launching s now would overlap state some
// other origination (an earlier attack, or the world's own schedule) already
// holds — in which case restoring s would tear down state it did not create.
// Skipping colliding launches is what makes restoration exact by
// construction under arbitrary overlapping windows (the fuzzer leans on it).
func (c *Campaign) launchCollides(s Scheduled) bool {
	a := c.W.Graph.AS(s.Attacker)
	if a == nil {
		return true
	}
	if s.Kind == hijack.RouteLeak {
		return a.Leaking
	}
	target := s.Prefix.Masked()
	for _, p := range a.Originated {
		if p == target {
			return true
		}
	}
	return false
}

// step applies round i's event batches: restores for attacks whose window
// ended, then launches for attacks whose window starts. Both are coalesced
// batches — one re-convergence each, regardless of attack count.
func (c *Campaign) step(i int) error {
	var restore []Scheduled
	for j := range c.sched {
		if c.active[j] && c.sched[j].End == i {
			restore = append(restore, c.sched[j])
			c.active[j] = false
		}
	}
	if err := c.applyRestores(restore); err != nil {
		return err
	}
	for j := range c.sched {
		if c.sched[j].Start != i || c.active[j] || c.skipped[j] {
			continue
		}
		if c.launchCollides(c.sched[j]) {
			c.skipped[j] = true
			continue
		}
		if _, err := c.W.Graph.ApplyEvents(c.sched[j].LaunchEvents()); err != nil {
			return fmt.Errorf("campaign: launch %v: %w", c.sched[j].Attack, err)
		}
		c.active[j] = true
	}
	return nil
}

// finish restores every still-active attack (announce-without-withdraw
// schedules included), returning the world to its pre-campaign state.
func (c *Campaign) finish() error {
	var restore []Scheduled
	for j := range c.sched {
		if c.active[j] {
			restore = append(restore, c.sched[j])
			c.active[j] = false
		}
	}
	return c.applyRestores(restore)
}

func (c *Campaign) applyRestores(restore []Scheduled) error {
	if len(restore) == 0 {
		return nil
	}
	var batch []bgp.RouteEvent
	for _, s := range restore {
		batch = append(batch, s.RestoreEvents()...)
	}
	if _, err := c.W.Graph.ApplyEvents(batch); err != nil {
		return fmt.Errorf("campaign: restore batch: %w", err)
	}
	return nil
}

// Run executes the campaign: per round it advances the world, applies the
// round's restore and launch batches, measures, and classifies each scored
// AS against every active attack. After the last round every remaining
// attack is restored. Cancellation between rounds returns the partial
// report with a nil error, mirroring RunRounds.
func (c *Campaign) Run(ctx context.Context) (*Report, error) {
	if c.Cfg.Interval <= 0 {
		return nil, fmt.Errorf("campaign: non-positive interval %d", c.Cfg.Interval)
	}
	if c.Cfg.StartDay < 0 {
		return nil, fmt.Errorf("campaign: negative start day %d", c.Cfg.StartDay)
	}
	rep := &Report{Schedule: c.sched, Timeline: &core.Timeline{}}
	for i := 0; i < c.Cfg.Rounds; i++ {
		if ctx.Err() != nil {
			break
		}
		day := c.Cfg.StartDay + i*c.Cfg.Interval
		if day > c.W.Cfg.Days {
			day = c.W.Cfg.Days
		}
		if err := c.W.AdvanceTo(day); err != nil {
			return nil, err
		}
		if err := c.step(i); err != nil {
			return nil, err
		}
		snap := c.R.Measure()
		rep.Timeline.Days = append(rep.Timeline.Days, day)
		rep.Timeline.Snapshots = append(rep.Timeline.Snapshots, snap)
		c.observe(rep, i, day, snap)
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	for j := range c.skipped {
		if c.skipped[j] {
			rep.SkippedLaunches = append(rep.SkippedLaunches, j)
		}
	}
	rep.F1 = rep.Confusion.F1()
	rep.Accuracy = rep.Confusion.Accuracy()
	return rep, nil
}

// observe classifies every scored AS against every active attack and folds
// the measured-vs-oracle protection agreement into the confusion matrix.
// Iteration orders are fixed (schedule order, ascending ASN), so reports are
// bit-identical across worker counts.
func (c *Campaign) observe(rep *Report, round, day int, snap *core.Snapshot) {
	asns := make([]inet.ASN, 0, len(snap.Reports))
	for asn := range snap.Reports {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	thr := c.Cfg.ScoreThreshold
	for _, asn := range asns {
		r := snap.Reports[asn]
		pred := r.Score >= thr
		oracle := c.R.OracleScore(asn, snap.TNodes) >= thr
		rep.Confusion.Add(oracle, pred)
	}

	for j := range c.sched {
		if !c.active[j] {
			continue
		}
		att := c.sched[j].Attack
		for _, asn := range asns {
			deployed := false
			if tr := c.W.Truth[asn]; tr != nil {
				deployed = tr.DeployedAt(day)
			}
			exposed := c.exposedTo(att, asn)
			q := Classify(deployed, exposed)
			rep.Observations = append(rep.Observations, Observation{
				Round:    round,
				Day:      day,
				Attack:   j,
				ASN:      asn,
				Deployed: deployed,
				Exposed:  exposed,
				Score:    snap.Reports[asn].Score,
				Quadrant: q,
			})
			rep.Quadrants[q]++
		}
	}
}

// exposedTo decides per-AS exposure on the data plane: for hijack kinds,
// traffic toward the attacked space terminates at the attacker; for route
// leaks, the AS's traffic toward the victim transits the attacker over a
// Gao-Rexford-violating segment (provider/peer in, provider/peer out).
func (c *Campaign) exposedTo(att hijack.Attack, asn inet.ASN) bool {
	if asn == att.Attacker {
		return false
	}
	g := c.W.Graph
	if att.Kind == hijack.RouteLeak {
		path, ok := g.DataPath(asn, att.ProbeAddr())
		if !ok {
			return false
		}
		aas := g.AS(att.Attacker)
		for k := 1; k+1 < len(path); k++ {
			if path[k] != att.Attacker {
				continue
			}
			onward, ok := aas.Lookup(att.ProbeAddr())
			if !ok || onward.SelfOriginated() || onward.Rel == bgp.Customer {
				continue
			}
			if rel, known := aas.Neighbors[path[k-1]]; known && rel != bgp.Customer {
				// Neither endpoint is a customer: the attacker is gluing two
				// provider/peer edges together, which only a leak exports.
				return true
			}
		}
		return false
	}
	origin, ok := g.OriginOf(asn, att.ProbeAddr())
	return ok && origin == att.Attacker
}
