package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n−1 denominator),
// or NaN when fewer than two observations are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Diff returns the first difference xs[i+1] − xs[i]; length is len(xs)−1.
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

// Autocovariance returns the lag-k sample autocovariance of xs.
func Autocovariance(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for i := 0; i+k < n; i++ {
		s += (xs[i] - m) * (xs[i+k] - m)
	}
	return s / float64(n)
}

// Autocorrelation returns the lag-k sample autocorrelation of xs.
func Autocorrelation(xs []float64, k int) float64 {
	c0 := Autocovariance(xs, 0)
	if c0 == 0 {
		return math.NaN()
	}
	return Autocovariance(xs, k) / c0
}

// ECDF is an empirical cumulative distribution function built from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample (which is copied).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of the sample ≤ x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Len reports the sample size behind the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points returns (x, F(x)) pairs at the given x values, ready for plotting.
func (e *ECDF) Points(xs []float64) [][2]float64 {
	out := make([][2]float64, len(xs))
	for i, x := range xs {
		out[i] = [2]float64{x, e.At(x)}
	}
	return out
}

// Histogram counts the sample into equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first/last bin.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	if bins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, bins)
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}
