package stats

import (
	"errors"
	"math"
)

// OLSResult holds the output of an ordinary-least-squares fit.
type OLSResult struct {
	Coef      []float64 // fitted coefficients, one per regressor column
	Residuals []float64 // b - a·coef
	Sigma2    float64   // residual variance, SSR / (n - p)
	N         int       // number of observations
	P         int       // number of regressors
	// StdErr holds the standard error of each coefficient (same order as
	// Coef). Computed from sigma² (XᵀX)⁻¹; used by the ADF t-statistic.
	StdErr []float64
}

// TStat returns the t-statistic of coefficient j (coef/stderr).
func (r *OLSResult) TStat(j int) float64 {
	if r.StdErr[j] == 0 {
		return math.Inf(1)
	}
	return r.Coef[j] / r.StdErr[j]
}

// OLS fits b ≈ a·x by least squares and reports coefficients, residuals,
// residual variance and coefficient standard errors.
func OLS(a *Matrix, b []float64) (*OLSResult, error) {
	if a.Rows != len(b) {
		return nil, errors.New("stats: OLS design/response length mismatch")
	}
	if a.Rows <= a.Cols {
		return nil, errors.New("stats: OLS needs more observations than regressors")
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		return nil, err
	}
	fitted, err := a.MulVec(coef)
	if err != nil {
		return nil, err
	}
	res := make([]float64, len(b))
	ssr := 0.0
	for i := range b {
		res[i] = b[i] - fitted[i]
		ssr += res[i] * res[i]
	}
	dof := float64(a.Rows - a.Cols)
	sigma2 := ssr / dof

	// Coefficient covariance: sigma² (XᵀX)⁻¹. XᵀX is small (p×p), so solve
	// p linear systems against the identity by reusing least squares on the
	// augmented design — cheap at these sizes.
	xtx, err := a.T().Mul(a)
	if err != nil {
		return nil, err
	}
	inv, err := invertSPD(xtx)
	if err != nil {
		return nil, err
	}
	stderr := make([]float64, a.Cols)
	for j := 0; j < a.Cols; j++ {
		v := sigma2 * inv.At(j, j)
		if v < 0 {
			v = 0
		}
		stderr[j] = math.Sqrt(v)
	}
	return &OLSResult{Coef: coef, Residuals: res, Sigma2: sigma2, N: a.Rows, P: a.Cols, StdErr: stderr}, nil
}

// invertSPD inverts a symmetric positive-definite matrix via Cholesky.
func invertSPD(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, errors.New("stats: invertSPD requires a square matrix")
	}
	// Cholesky factorization a = L Lᵀ.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Solve L Lᵀ X = I column by column.
	inv := NewMatrix(n, n)
	y := make([]float64, n)
	x := make([]float64, n)
	for c := 0; c < n; c++ {
		for i := 0; i < n; i++ {
			e := 0.0
			if i == c {
				e = 1
			}
			s := e
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * y[k]
			}
			y[i] = s / l.At(i, i)
		}
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * x[k]
			}
			x[i] = s / l.At(i, i)
		}
		for i := 0; i < n; i++ {
			inv.Set(i, c, x[i])
		}
	}
	return inv, nil
}
