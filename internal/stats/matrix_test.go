package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", at.At(2, 1))
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square nonsingular system has the exact solution.
	a, _ := MatrixFromRows([][]float64{{2, 0}, {0, 4}})
	x, err := LeastSquares(a, []float64{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-9) || !almostEq(x[1], 2, 1e-9) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// y = 1 + 2t sampled with no noise must be recovered exactly.
	var rows [][]float64
	var b []float64
	for t0 := 0; t0 < 10; t0++ {
		rows = append(rows, []float64{1, float64(t0)})
		b = append(b, 1+2*float64(t0))
	}
	a, _ := MatrixFromRows(rows)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-9) || !almostEq(x[1], 2, 1e-9) {
		t.Fatalf("x = %v, want [1 2]", x)
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected singularity error for collinear design")
	}
}

// Property: for random well-conditioned systems, the residual of the normal
// equations Aᵀ(Ax−b) is ~0 (characterizes the least-squares solution).
func TestLeastSquaresNormalEquationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 20, 3
		a := NewMatrix(n, p)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // singular random draw: vacuously fine
		}
		ax, _ := a.MulVec(x)
		r := make([]float64, n)
		for i := range r {
			r[i] = ax[i] - b[i]
		}
		atr, _ := a.T().MulVec(r)
		for _, v := range atr {
			if math.Abs(v) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInvertSPD(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{4, 1}, {1, 3}})
	inv, err := invertSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(prod.At(i, j), want, 1e-9) {
				t.Errorf("(a·a⁻¹)[%d][%d] = %v, want %v", i, j, prod.At(i, j), want)
			}
		}
	}
}

func TestInvertSPDNotPositiveDefinite(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := invertSPD(a); err == nil {
		t.Fatal("expected error for non-SPD matrix")
	}
}
