// Package stats provides the small linear-algebra and statistics substrate
// used by the time-series models in internal/timeseries and by the analysis
// helpers across the repository.
//
// Only dense, column-major-free (row-major) matrices are provided; the sizes
// involved in RoVista's models are tiny (tens of rows, a handful of columns),
// so clarity is preferred over blocking or SIMD tricks.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("stats: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices; all rows must have equal length.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("stats: ragged rows: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("stats: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns m * v for a column vector v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("stats: dimension mismatch %dx%d * vec(%d)", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// ErrSingular is returned when a system has no unique solution.
var ErrSingular = errors.New("stats: matrix is singular or ill-conditioned")

// qrDecompose computes a thin Householder QR factorization in place.
// It returns the packed factors used by qrSolve.
type qrFactor struct {
	a     *Matrix   // packed R above diagonal, Householder vectors below
	rdiag []float64 // diagonal of R
}

func qrDecompose(a *Matrix) (*qrFactor, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("stats: QR requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute 2-norm of column k below row k without over/underflow.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			return nil, ErrSingular
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &qrFactor{a: qr, rdiag: rdiag}, nil
}

// solve computes the least-squares solution of a*x = b given the factorization.
func (f *qrFactor) solve(b []float64) ([]float64, error) {
	m, n := f.a.Rows, f.a.Cols
	if len(b) != m {
		return nil, fmt.Errorf("stats: rhs length %d, want %d", len(b), m)
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Householder transformations: y = Qᵀ b.
	for k := 0; k < n; k++ {
		s := 0.0
		for i := k; i < m; i++ {
			s += f.a.At(i, k) * y[i]
		}
		s = -s / f.a.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.a.At(i, k)
		}
	}
	// Back-substitute R x = y.
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		if math.Abs(f.rdiag[k]) < 1e-12 {
			return nil, ErrSingular
		}
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= f.a.At(k, j) * x[j]
		}
		x[k] = s / f.rdiag[k]
	}
	return x, nil
}

// LeastSquares solves min ‖a·x − b‖₂ via Householder QR and returns x.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := qrDecompose(a)
	if err != nil {
		return nil, err
	}
	return f.solve(b)
}
