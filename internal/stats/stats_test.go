package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", m)
	}
	// Sample variance with n-1 denominator: SS = 32, 32/7.
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of single value should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestDiff(t *testing.T) {
	d := Diff([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	if len(d) != len(want) {
		t.Fatalf("len = %d, want %d", len(d), len(want))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("d[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	if Diff([]float64{1}) != nil {
		t.Fatal("Diff of one element should be nil")
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	if r0 := Autocorrelation(xs, 0); !almostEq(r0, 1, 1e-12) {
		t.Fatalf("lag-0 autocorrelation = %v, want 1", r0)
	}
	if r1 := Autocorrelation(xs, 1); math.Abs(r1) > 0.05 {
		t.Fatalf("lag-1 autocorrelation of white noise = %v, want ~0", r1)
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// x_t = 0.8 x_{t-1} + w_t has lag-1 autocorrelation ≈ 0.8.
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 8000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.8*xs[i-1] + rng.NormFloat64()
	}
	if r1 := Autocorrelation(xs, 1); math.Abs(r1-0.8) > 0.05 {
		t.Fatalf("lag-1 autocorrelation = %v, want ~0.8", r1)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d, want 4", e.Len())
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		e := NewECDF(xs)
		prev := -1.0
		for x := -30.0; x <= 30; x += 0.5 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.1, 0.2, 0.7, 0.9, -1, 2}, 0, 1, 2)
	// -1 clamps to bin 0; 2 clamps to bin 1.
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("histogram = %v, want [3 3]", h)
	}
	if Histogram(nil, 1, 0, 2) != nil {
		t.Fatal("invalid range should return nil")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.6448536269514722, 0.95},
		{-1.6448536269514722, 0.05},
		{1.959963984540054, 0.975},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEq(got, c.want, 1e-9) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for p := 0.001; p < 1; p += 0.013 {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almostEq(got, p, 1e-8) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Fatal("Quantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("Quantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.5)) {
		t.Fatal("Quantile(-0.5) should be NaN")
	}
}

func TestNormalSFComplement(t *testing.T) {
	for _, x := range []float64{-3, -1, 0, 0.5, 2, 4} {
		if s := NormalCDF(x) + NormalSF(x); !almostEq(s, 1, 1e-12) {
			t.Errorf("CDF+SF at %v = %v, want 1", x, s)
		}
	}
}

func TestOLSRecoverLine(t *testing.T) {
	// y = 3 + 0.5 t + noise; coefficient recovery within tolerance.
	rng := rand.New(rand.NewSource(3))
	n := 200
	a := NewMatrix(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a.Set(i, 0, 1)
		a.Set(i, 1, float64(i))
		b[i] = 3 + 0.5*float64(i) + rng.NormFloat64()*0.1
	}
	res, err := OLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Coef[0], 3, 0.1) || !almostEq(res.Coef[1], 0.5, 0.01) {
		t.Fatalf("coef = %v, want ~[3 0.5]", res.Coef)
	}
	if res.Sigma2 > 0.05 || res.Sigma2 <= 0 {
		t.Fatalf("sigma2 = %v, want ~0.01", res.Sigma2)
	}
	// Slope t-statistic should be enormous for a strong trend.
	if res.TStat(1) < 100 {
		t.Fatalf("t-stat = %v, want large", res.TStat(1))
	}
}

func TestOLSUnderdetermined(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := OLS(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for underdetermined OLS")
	}
}
