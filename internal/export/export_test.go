package export

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/netsec-lab/rovista/internal/core"
)

func snapshot(t *testing.T) *core.Snapshot {
	t.Helper()
	w, err := core.BuildWorld(core.SmallWorldConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	return core.NewRunner(w, core.DefaultRunnerConfig(3)).Measure()
}

func TestFromSnapshotOrdering(t *testing.T) {
	d := FromSnapshot(snapshot(t))
	if len(d.Records) == 0 {
		t.Fatal("no records")
	}
	for i := 1; i < len(d.Records); i++ {
		a, b := d.Records[i-1], d.Records[i]
		if a.Score < b.Score || (a.Score == b.Score && a.ASN > b.ASN) {
			t.Fatalf("ordering violated at %d: %+v then %+v", i, a, b)
		}
	}
	for _, r := range d.Records {
		if r.TNodesFiltered > r.TNodesMeasured {
			t.Fatalf("filtered > measured: %+v", r)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := FromSnapshot(snapshot(t))
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rov_protection_score") {
		t.Fatal("JSON missing field names")
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Day != d.Day || len(back.Records) != len(d.Records) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range d.Records {
		if back.Records[i] != d.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, back.Records[i], d.Records[i])
		}
	}
}

// TestFormatVersionRoundTrip pins the versioned-schema contract: writers
// stamp the current FormatVersion, readers accept anything up to it (0 is
// the legacy pre-versioned form) and refuse newer data. The exact
// export → parse → DeepEqual round trip is shared with rovistad's JSON
// endpoint, which is tested against the same ReadJSON in internal/api.
func TestFormatVersionRoundTrip(t *testing.T) {
	d := FromSnapshot(snapshot(t))
	if d.Format != FormatVersion {
		t.Fatalf("FromSnapshot stamped format %d, want %d", d.Format, FormatVersion)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"format_version": 1`) {
		t.Fatal("serialized JSON missing format_version")
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, d) {
		t.Fatalf("round trip not exact:\n got %+v\nwant %+v", back, d)
	}

	// Legacy (version 0) data still parses.
	legacy := `{"day":3,"tnodes":2,"consistency":1,"records":[]}`
	if _, err := ReadJSON(strings.NewReader(legacy)); err != nil {
		t.Fatalf("legacy dataset rejected: %v", err)
	}
	// Future versions are refused instead of silently misread.
	future := `{"format_version":99,"day":3,"tnodes":2,"consistency":1}`
	if _, err := ReadJSON(strings.NewReader(future)); err == nil {
		t.Fatal("future format_version accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := FromSnapshot(snapshot(t))
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(d.Records) {
		t.Fatalf("rows = %d, want %d", len(recs), len(d.Records))
	}
	for i := range recs {
		// Score goes through 2-decimal formatting.
		if recs[i].ASN != d.Records[i].ASN || recs[i].VVPs != d.Records[i].VVPs {
			t.Fatalf("row %d differs", i)
		}
		diff := recs[i].Score - d.Records[i].Score
		if diff > 0.01 || diff < -0.01 {
			t.Fatalf("row %d score drift %v", i, diff)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("wrong header accepted")
	}
	bad := "asn,rov_protection_score,vvps,tnodes_measured,tnodes_filtered,unanimous\nx,1,2,3,4,true\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric ASN accepted")
	}
}

func TestTimelineSeries(t *testing.T) {
	cfg := core.SmallWorldConfig(4)
	cfg.Days = 40
	w, err := core.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(4))
	tl, err := r.RunTimeline(20)
	if err != nil {
		t.Fatal(err)
	}
	// Pick any scored AS from the last snapshot.
	last := tl.Snapshots[len(tl.Snapshots)-1]
	for asn := range last.Reports {
		pts := TimelineSeries(tl, asn)
		if len(pts) == 0 {
			t.Fatalf("no series for %v", asn)
		}
		for _, p := range pts {
			if p.Score < 0 || p.Score > 100 {
				t.Fatalf("point %+v out of range", p)
			}
		}
		break
	}
}
