// Package export renders measurement output as the machine-readable
// datasets the paper's public site (rovista.netsecurelab.org) publishes:
// per-AS score tables in JSON and CSV, and longitudinal series. Downstream
// consumers (dashboards, notebooks) read these instead of Go structs.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
)

// ScoreRecord is one published per-AS result.
type ScoreRecord struct {
	ASN            uint32  `json:"asn"`
	Score          float64 `json:"rov_protection_score"`
	VVPs           int     `json:"vvps"`
	TNodesMeasured int     `json:"tnodes_measured"`
	TNodesFiltered int     `json:"tnodes_filtered"`
	Unanimous      bool    `json:"unanimous"`
}

// FormatVersion is the current schema version of exported JSON datasets.
// It is bumped whenever a field changes meaning or shape, so downstream
// consumers can refuse data newer than they understand. Version history:
//
//	0 — legacy, pre-versioned datasets (accepted on read)
//	1 — format_version field added; otherwise identical to 0
const FormatVersion = 1

// Dataset is one measurement round's published dataset.
type Dataset struct {
	Format      int           `json:"format_version"`
	Day         int           `json:"day"`
	TNodes      int           `json:"tnodes"`
	Consistency float64       `json:"consistency"`
	Records     []ScoreRecord `json:"records"`
}

// FromSnapshot converts a snapshot into a publishable dataset with records
// ordered by descending score then ascending ASN.
func FromSnapshot(snap *core.Snapshot) *Dataset {
	d := &Dataset{
		Format:      FormatVersion,
		Day:         snap.Day,
		TNodes:      len(snap.TNodes),
		Consistency: snap.ConsistentPairFraction,
	}
	for asn, rep := range snap.Reports {
		d.Records = append(d.Records, ScoreRecord{
			ASN:            uint32(asn),
			Score:          rep.Score,
			VVPs:           rep.VVPs,
			TNodesMeasured: rep.TNodesMeasured,
			TNodesFiltered: rep.TNodesFiltered,
			Unanimous:      rep.Unanimous,
		})
	}
	d.Sort()
	return d
}

// Sort orders the records canonically: descending score, then ascending
// ASN. Every producer of a Dataset (FromSnapshot, the rovistad export
// endpoint) applies the same order so byte-level diffs stay meaningful.
func (d *Dataset) Sort() {
	sort.Slice(d.Records, func(i, j int) bool {
		if d.Records[i].Score != d.Records[j].Score {
			return d.Records[i].Score > d.Records[j].Score
		}
		return d.Records[i].ASN < d.Records[j].ASN
	})
}

// WriteJSON emits the dataset as indented JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadJSON parses a dataset produced by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("export: decoding dataset: %w", err)
	}
	if d.Format > FormatVersion {
		return nil, fmt.Errorf("export: dataset format_version %d is newer than supported version %d", d.Format, FormatVersion)
	}
	return &d, nil
}

// csvHeader is the column layout of the CSV rendering.
var csvHeader = []string{"asn", "rov_protection_score", "vvps", "tnodes_measured", "tnodes_filtered", "unanimous"}

// WriteCSV emits the dataset's records as CSV with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range d.Records {
		row := []string{
			strconv.FormatUint(uint64(r.ASN), 10),
			strconv.FormatFloat(r.Score, 'f', 2, 64),
			strconv.Itoa(r.VVPs),
			strconv.Itoa(r.TNodesMeasured),
			strconv.Itoa(r.TNodesFiltered),
			strconv.FormatBool(r.Unanimous),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV produced by WriteCSV back into records.
func ReadCSV(r io.Reader) ([]ScoreRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("export: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("export: empty csv")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != csvHeader[0] {
		return nil, fmt.Errorf("export: unexpected header %v", rows[0])
	}
	out := make([]ScoreRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		asn, err1 := strconv.ParseUint(row[0], 10, 32)
		score, err2 := strconv.ParseFloat(row[1], 64)
		vvps, err3 := strconv.Atoi(row[2])
		tm, err4 := strconv.Atoi(row[3])
		tf, err5 := strconv.Atoi(row[4])
		un, err6 := strconv.ParseBool(row[5])
		for _, e := range []error{err1, err2, err3, err4, err5, err6} {
			if e != nil {
				return nil, fmt.Errorf("export: row %d: %w", i+2, e)
			}
		}
		out = append(out, ScoreRecord{
			ASN: uint32(asn), Score: score, VVPs: vvps,
			TNodesMeasured: tm, TNodesFiltered: tf, Unanimous: un,
		})
	}
	return out, nil
}

// SeriesPoint is one longitudinal data point.
type SeriesPoint struct {
	Day   int     `json:"day"`
	Score float64 `json:"score"`
}

// TimelineSeries extracts one AS's longitudinal series in exportable form.
func TimelineSeries(tl *core.Timeline, asn inet.ASN) []SeriesPoint {
	days, scores := tl.ScoreSeries(asn)
	out := make([]SeriesPoint, len(days))
	for i := range days {
		out[i] = SeriesPoint{Day: days[i], Score: scores[i]}
	}
	return out
}
