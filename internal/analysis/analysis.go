// Package analysis implements the paper's §7 analyses over measurement
// output: score CDFs (Figures 5 and 11), AS-rank binning (Figure 7),
// collateral-benefit cohort detection (§7.3), collateral-damage forensics
// (§7.4), and the §7.6 classification of why ASes stall below a 100% score.
package analysis

import (
	"sort"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/topology"
	"github.com/netsec-lab/rovista/internal/trace"
)

// CDFPoint is one point of an empirical CDF over scores.
type CDFPoint struct {
	Score float64
	Frac  float64
}

// ScoreCDF computes the CDF of the given scores at 1-point resolution
// (Figure 5).
func ScoreCDF(scores map[inet.ASN]float64) []CDFPoint {
	if len(scores) == 0 {
		return nil
	}
	vals := make([]float64, 0, len(scores))
	for _, s := range scores {
		vals = append(vals, s)
	}
	sort.Float64s(vals)
	var out []CDFPoint
	for x := 0.0; x <= 100.0; x++ {
		idx := sort.SearchFloat64s(vals, x+1e-9)
		out = append(out, CDFPoint{Score: x, Frac: float64(idx) / float64(len(vals))})
	}
	return out
}

// ScoreBuckets is the Figure-7 stacked distribution: fraction of ASes per
// score range.
type ScoreBuckets struct {
	// Fractions for [0,20), [20,40), [40,60), [60,80), [80,100].
	Frac [5]float64
	N    int
}

func bucketOf(score float64) int {
	switch {
	case score < 20:
		return 0
	case score < 40:
		return 1
	case score < 60:
		return 2
	case score < 80:
		return 3
	default:
		return 4
	}
}

// RankBin is one Figure-7 x-axis bin.
type RankBin struct {
	LoRank, HiRank int // inclusive rank range
	Buckets        ScoreBuckets
}

// ScoreByRank bins scored ASes by topology rank (Figure 7: higher-ranked
// ASes tend to score higher).
func ScoreByRank(topo *topology.Topology, scores map[inet.ASN]float64, binSize int) []RankBin {
	if binSize <= 0 {
		binSize = 1000
	}
	byRank := topo.ByRank()
	var out []RankBin
	for lo := 0; lo < len(byRank); lo += binSize {
		hi := lo + binSize
		if hi > len(byRank) {
			hi = len(byRank)
		}
		bin := RankBin{LoRank: lo + 1, HiRank: hi}
		for _, asn := range byRank[lo:hi] {
			if s, ok := scores[asn]; ok {
				bin.Buckets.Frac[bucketOf(s)]++
				bin.Buckets.N++
			}
		}
		if bin.Buckets.N > 0 {
			for i := range bin.Buckets.Frac {
				bin.Buckets.Frac[i] /= float64(bin.Buckets.N)
			}
		}
		out = append(out, bin)
	}
	return out
}

// MeanScoreTopVsBottom summarizes Figure 7's headline: mean score of the
// top-ranked half vs the bottom half.
func MeanScoreTopVsBottom(topo *topology.Topology, scores map[inet.ASN]float64) (top, bottom float64) {
	byRank := topo.ByRank()
	half := len(byRank) / 2
	sum := func(asns []inet.ASN) float64 {
		s, n := 0.0, 0
		for _, asn := range asns {
			if v, ok := scores[asn]; ok {
				s += v
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	return sum(byRank[:half]), sum(byRank[half:])
}

// BenefitCohort is a §7.3 finding: customer ASes whose scores jumped to
// full protection on the same day their shared provider deployed ROV.
type BenefitCohort struct {
	Day      int
	Provider inet.ASN
	// Members are the ASes that jumped together (provider included when it
	// jumped too).
	Members []inet.ASN
	// StubMembers are single-homed stubs — the ones guaranteed to inherit
	// full collateral benefit.
	StubMembers []inet.ASN
}

// BenefitCohorts groups same-day score jumps by a shared provider.
func BenefitCohorts(topo *topology.Topology, jumps map[int][]inet.ASN) []BenefitCohort {
	var days []int
	for d := range jumps {
		days = append(days, d)
	}
	sort.Ints(days)
	var out []BenefitCohort
	for _, day := range days {
		members := jumps[day]
		if len(members) < 2 {
			continue
		}
		memberSet := make(map[inet.ASN]bool, len(members))
		for _, m := range members {
			memberSet[m] = true
		}
		// Find a member or upstream acting as provider of other members.
		counts := make(map[inet.ASN]int)
		for _, m := range members {
			for _, p := range topo.Providers(m) {
				counts[p]++
			}
		}
		var provider inet.ASN
		best := 0
		for p, c := range counts {
			if c > best || (c == best && p < provider) {
				provider, best = p, c
			}
		}
		if best < 2 {
			continue
		}
		cohort := BenefitCohort{Day: day, Provider: provider, Members: members}
		for _, m := range members {
			if topo.IsStubWithSingleProvider(m) {
				cohort.StubMembers = append(cohort.StubMembers, m)
			}
		}
		out = append(out, cohort)
	}
	return out
}

// DamageCase is a §7.4 finding: a high-scoring AS that still reaches some
// tNodes because a non-filtering transit diverts its traffic to the
// invalid more-specific.
type DamageCase struct {
	ASN   inet.ASN
	TNode inet.ASN // the wrong origin actually receiving the traffic
	// Via is the first AS on the path with a zero score (the diverter).
	Via inet.ASN
}

// DetectCollateralDamage runs the paper's three-step procedure over a
// snapshot: for each AS scoring above minScore but below 100, traceroute
// the reachable tNodes and confirm the packets flow through a zero-score
// next hop even though a valid covering route exists.
func DetectCollateralDamage(w *core.World, snap *core.Snapshot, minScore float64) []DamageCase {
	scores := snap.Scores()
	var out []DamageCase
	var asns []inet.ASN
	for asn := range snap.Reports {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		rep := snap.Reports[asn]
		if rep.Score <= minScore || rep.Score >= 100 {
			continue
		}
		for addr, filtered := range rep.Verdicts {
			if filtered {
				continue
			}
			res := trace.TCPTraceroute(w.Net, asn, addr, 443)
			if !res.Reached || len(res.Hops) < 2 {
				continue
			}
			via := res.FirstHopAfterSource()
			if s, ok := scores[via]; ok && s > 0 {
				continue // the next hop filters; not the §7.4 pattern
			}
			// Confirm a covering valid/unknown route exists at the AS (its
			// packets had somewhere legitimate to go).
			if r, lpmOK := w.Graph.AS(asn).Lookup(addr); lpmOK && !r.SelfOriginated() {
				out = append(out, DamageCase{ASN: asn, TNode: res.LastHop(), Via: via})
			}
		}
	}
	return out
}

// ChallengeKind classifies why an AS stalls below 100% (§7.6).
type ChallengeKind string

// Challenge kinds.
const (
	ChallengeCustomerRoutes ChallengeKind = "customer-route-exemption"
	ChallengeDefaultRoute   ChallengeKind = "default-route"
	ChallengeEquipment      ChallengeKind = "equipment-or-other"
)

// Challenge is one §7.6 classification.
type Challenge struct {
	ASN  inet.ASN
	Kind ChallengeKind
	// Evidence is the AS the successful traceroutes pass through (for the
	// customer/default cases).
	Evidence inet.ASN
}

// ClassifyChallenges analyses ASes with score in (minScore, 100) using
// traceroutes toward the tNodes they can still reach: if every successful
// first hop is a customer, the AS exempts customer routes; if every
// successful first hop is one non-customer AS, a default route (or single
// leak) is the likely cause; otherwise it is bucketed as equipment/other.
func ClassifyChallenges(w *core.World, snap *core.Snapshot, minScore float64) []Challenge {
	var out []Challenge
	var asns []inet.ASN
	for asn := range snap.Reports {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		rep := snap.Reports[asn]
		if rep.Score <= minScore || rep.Score >= 100 {
			continue
		}
		firstHops := map[inet.ASN]bool{}
		allCustomers := true
		reachable := 0
		for addr, filtered := range rep.Verdicts {
			if filtered {
				continue
			}
			res := trace.TCPTraceroute(w.Net, asn, addr, 443)
			if !res.Reached {
				continue
			}
			reachable++
			fh := res.FirstHopAfterSource()
			firstHops[fh] = true
			if rel, ok := w.Graph.AS(asn).Neighbors[fh]; !ok || rel != bgp.Customer {
				allCustomers = false
			}
		}
		if reachable == 0 {
			continue
		}
		ch := Challenge{ASN: asn}
		switch {
		case allCustomers:
			ch.Kind = ChallengeCustomerRoutes
		case len(firstHops) == 1:
			ch.Kind = ChallengeDefaultRoute
			for fh := range firstHops {
				ch.Evidence = fh
			}
		default:
			ch.Kind = ChallengeEquipment
		}
		out = append(out, ch)
	}
	return out
}
