package analysis

import (
	"testing"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/topology"
)

func TestScoreCDF(t *testing.T) {
	scores := map[inet.ASN]float64{1: 0, 2: 50, 3: 100, 4: 100}
	cdf := ScoreCDF(scores)
	if len(cdf) != 101 {
		t.Fatalf("points = %d", len(cdf))
	}
	at := func(x float64) float64 {
		for _, p := range cdf {
			if p.Score == x {
				return p.Frac
			}
		}
		return -1
	}
	if at(0) != 0.25 {
		t.Fatalf("F(0) = %v", at(0))
	}
	if at(50) != 0.5 {
		t.Fatalf("F(50) = %v", at(50))
	}
	if at(100) != 1 {
		t.Fatalf("F(100) = %v", at(100))
	}
	// Monotone.
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Frac < cdf[i-1].Frac {
			t.Fatal("CDF not monotone")
		}
	}
	if ScoreCDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[float64]int{0: 0, 19.9: 0, 20: 1, 55: 2, 79: 3, 80: 4, 100: 4}
	for s, want := range cases {
		if got := bucketOf(s); got != want {
			t.Errorf("bucketOf(%v) = %d, want %d", s, got, want)
		}
	}
}

func smallTopo(seed int64) *topology.Topology {
	return topology.Generate(topology.Config{
		Seed: seed, NumTier1: 4, NumTier2: 10, NumTier3: 30, NumStub: 80,
		PrefixesPerAS: 1, Tier2PeerProb: 0.3, Tier3PeerProb: 0.05, MultihomeProb: 0.4,
	})
}

func TestScoreByRank(t *testing.T) {
	topo := smallTopo(1)
	// Top-ranked ASes score high, bottom low.
	scores := map[inet.ASN]float64{}
	for i, asn := range topo.ByRank() {
		if i < 20 {
			scores[asn] = 100
		} else {
			scores[asn] = 0
		}
	}
	bins := ScoreByRank(topo, scores, 20)
	if len(bins) != (len(topo.ASNs)+19)/20 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Buckets.Frac[4] != 1 {
		t.Fatalf("top bin high-score frac = %v", bins[0].Buckets.Frac)
	}
	if last := bins[len(bins)-1]; last.Buckets.Frac[0] != 1 {
		t.Fatalf("bottom bin low-score frac = %v", last.Buckets.Frac)
	}
	top, bottom := MeanScoreTopVsBottom(topo, scores)
	if top <= bottom {
		t.Fatalf("top %v <= bottom %v", top, bottom)
	}
}

func TestScoreByRankDefaultsBinSize(t *testing.T) {
	topo := smallTopo(2)
	bins := ScoreByRank(topo, map[inet.ASN]float64{}, 0)
	if len(bins) != 1 { // 124 ASes < default bin 1000
		t.Fatalf("bins = %d", len(bins))
	}
}

func TestBenefitCohorts(t *testing.T) {
	topo := smallTopo(3)
	// Pick a provider with at least 2 customers and fake a jump cohort.
	var provider inet.ASN
	var customers []inet.ASN
	for _, asn := range topo.ASNs {
		if cs := topo.Customers(asn); len(cs) >= 2 {
			provider, customers = asn, cs[:2]
			break
		}
	}
	if provider == 0 {
		t.Skip("no multi-customer provider in topology")
	}
	jumps := map[int][]inet.ASN{
		30: append([]inet.ASN{}, customers...),
		40: {customers[0]}, // singleton: ignored
	}
	cohorts := BenefitCohorts(topo, jumps)
	if len(cohorts) != 1 {
		t.Fatalf("cohorts = %+v", cohorts)
	}
	if cohorts[0].Provider != provider || cohorts[0].Day != 30 {
		t.Fatalf("cohort = %+v, want provider %v at day 30", cohorts[0], provider)
	}
}

func TestBenefitCohortsNoSharedProvider(t *testing.T) {
	topo := smallTopo(4)
	// Two tier-1s never share a provider.
	jumps := map[int][]inet.ASN{10: {topo.Tier1[0], topo.Tier1[1]}}
	if got := BenefitCohorts(topo, jumps); len(got) != 0 {
		t.Fatalf("unexpected cohort: %+v", got)
	}
}

// End-to-end §7.3/§7.4/§7.6 detection over a measured world.
func TestDetectionsOverWorld(t *testing.T) {
	cfg := core.SmallWorldConfig(6)
	cfg.CoveredInvalidAnnouncements = 2 // more collateral-damage fuel
	w, err := core.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	r := core.NewRunner(w, core.DefaultRunnerConfig(6))
	snap := r.Measure()
	if len(snap.Reports) == 0 {
		t.Skip("seed yields no scored ASes")
	}

	damage := DetectCollateralDamage(w, snap, 50)
	for _, d := range damage {
		// Every reported diverter must have a zero (or absent) score.
		if s, ok := snap.Scores()[d.Via]; ok && s > 0 {
			t.Fatalf("diverter %v has score %v", d.Via, s)
		}
		// Damage cases must involve ASes that filter (score > 50 here).
		if s := snap.Scores()[d.ASN]; s <= 50 {
			t.Fatalf("damage case for low scorer %v (%v)", d.ASN, s)
		}
	}

	challenges := ClassifyChallenges(w, snap, 50)
	for _, c := range challenges {
		switch c.Kind {
		case ChallengeCustomerRoutes, ChallengeDefaultRoute, ChallengeEquipment:
		default:
			t.Fatalf("unknown challenge kind %q", c.Kind)
		}
	}
}
