package loadharness

import (
	"math/rand"
	"testing"
	"time"

	"github.com/netsec-lab/rovista/internal/api"
	"github.com/netsec-lab/rovista/internal/store"
	"github.com/netsec-lab/rovista/internal/stream"
)

func newTarget(t *testing.T, burst int) (*api.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := store.Synthesize(st, store.SynthConfig{ASes: 200, Rounds: 10, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	return api.New(st, api.Config{RateBurst: burst}), st
}

func TestRunMixedLoad(t *testing.T) {
	srv, _ := newTarget(t, 0) // no rate limiting: every request must succeed
	rep, err := Run(srv.Handler(), Config{
		Clients:  1000,
		Workers:  2,
		Requests: 4000,
		ASes:     200,
		Rounds:   10,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 4000 {
		t.Fatalf("Requests = %d, want 4000", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", rep.Errors)
	}
	if rep.RateLimited != 0 {
		t.Fatalf("RateLimited = %d with limiting disabled", rep.RateLimited)
	}
	if rep.QPS <= 0 {
		t.Fatalf("QPS = %v, want > 0", rep.QPS)
	}
	if !(rep.P50us <= rep.P99us && rep.P99us <= rep.P999us) {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p999=%v", rep.P50us, rep.P99us, rep.P999us)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestRunAppendStorm(t *testing.T) {
	srv, st := newTarget(t, 0)
	rounds := st.Rounds()
	var appended int
	rep, err := Run(srv.Handler(), Config{
		Clients:     1000,
		Workers:     2,
		Duration:    200 * time.Millisecond,
		ASes:        200,
		Rounds:      rounds,
		Seed:        1,
		AppendEvery: 10 * time.Millisecond,
		Append: func() error {
			appended++
			return store.Synthesize(st, store.SynthConfig{ASes: 200, Rounds: 1, Seed: int64(100 + appended)})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("Errors = %d, want 0 (queries must survive mid-load appends)", rep.Errors)
	}
	if st.Rounds() <= rounds || rep.Appends == 0 {
		t.Fatalf("append storm did not land: rounds %d→%d, appends=%d", rounds, st.Rounds(), rep.Appends)
	}
}

func TestRunSubscriberMix(t *testing.T) {
	srv, _ := newTarget(t, 0)
	hub := stream.NewHub()
	var round uint32
	rep, err := Run(srv.Handler(), Config{
		Clients:     100,
		Workers:     2,
		Duration:    200 * time.Millisecond,
		ASes:        200,
		Rounds:      10,
		Seed:        1,
		Subscribers: 8,
		Hub:         hub,
		AppendEvery: 10 * time.Millisecond,
		Append: func() error {
			round++
			hub.Publish(stream.Update{Round: round, Deltas: []stream.ScoreDelta{{ASN: 1000, Old: 1, New: 2}}})
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Subscribers != 8 {
		t.Fatalf("Subscribers = %d, want 8", rep.Subscribers)
	}
	// Every published round fans out to all 8 subscribers, none of whom
	// fall behind at this rate.
	if want := int64(round) * 8; rep.Deliveries != want || rep.SubEvicted != 0 {
		t.Fatalf("deliveries = %d (want %d), evicted = %d", rep.Deliveries, want, rep.SubEvicted)
	}
	if hub.Subscribers.Load() != 0 {
		t.Fatalf("harness left %d subscriptions attached", hub.Subscribers.Load())
	}
}

func TestRunRateLimited(t *testing.T) {
	srv, _ := newTarget(t, 2) // tiny burst: hot clients must hit 429s
	rep, err := Run(srv.Handler(), Config{
		Clients:  50,
		Workers:  2,
		Requests: 2000,
		ASes:     200,
		Rounds:   10,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RateLimited == 0 {
		t.Fatal("expected 429s with burst=2 and 50 hot clients")
	}
	if rep.Errors != 0 {
		t.Fatalf("Errors = %d, want 0 (429s are not errors)", rep.Errors)
	}
}

func TestRunDurationBound(t *testing.T) {
	srv, _ := newTarget(t, 0)
	rep, err := Run(srv.Handler(), Config{
		Clients:  100,
		Workers:  1,
		Duration: 50 * time.Millisecond,
		ASes:     200,
		Rounds:   10,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("duration-bound run served no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", rep.Errors)
	}
}

func TestQuantilesMonotone(t *testing.T) {
	h := &latHistogram{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h.record(time.Duration(rng.Intn(1_000_000)) * time.Nanosecond)
	}
	h.record(time.Hour) // overflow path
	p50, p99, p999 := quantiles([]*latHistogram{h})
	if !(p50 > 0 && p50 <= p99 && p99 <= p999) {
		t.Fatalf("quantiles not monotone: %v %v %v", p50, p99, p999)
	}
}

func TestClientAddrs(t *testing.T) {
	addrs := clientAddrs(300)
	if addrs[0] != "10.0.0.0:4242" {
		t.Fatalf("addrs[0] = %q", addrs[0])
	}
	if addrs[257] != "10.0.1.1:4242" {
		t.Fatalf("addrs[257] = %q", addrs[257])
	}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate client address %q", a)
		}
		seen[a] = true
	}
}
