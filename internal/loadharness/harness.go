// Package loadharness drives realistic multi-client load against the
// rovistad serving path and reports throughput and tail latency. It is the
// repo's stand-in for the paper service's real fan-in: the dashboard's
// "millions of users" are modelled as N simulated client connection
// contexts (distinct source IPs, so the rate limiter and its eviction
// machinery are exercised for real) issuing a Zipf-distributed query mix —
// a hot set of popular ASes, cold timeseries pulls, rankings, and the
// occasional bulk export — optionally while a background writer appends
// rounds mid-load to trigger cache-invalidation storms.
//
// The harness can drive an http.Handler in-process (measuring the serving
// path itself, no kernel sockets in the way) or a live daemon over HTTP.
package loadharness

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netsec-lab/rovista/internal/stream"
)

// Config shapes a load run.
type Config struct {
	// Clients is the number of simulated client connection contexts, each
	// with a distinct source IP (default 1_000_000). Client selection per
	// request is Zipf-skewed: a hot minority dominates, a long tail keeps
	// first-contact registration and eviction churning.
	Clients int
	// Workers is the number of concurrent driver goroutines
	// (default GOMAXPROCS).
	Workers int
	// Duration bounds the run in wall-clock time (default 5s) unless
	// Requests is set.
	Duration time.Duration
	// Requests, when positive, bounds the run by total request count
	// instead of Duration.
	Requests int64
	// ZipfS is the Zipf skew exponent for hot-AS and hot-client selection
	// (must be > 1; default 1.1 — a few percent of ASes draw most point
	// lookups, matching dashboard traffic).
	ZipfS float64
	// ASes / Rounds describe the population the target serves (used to
	// synthesize request paths; ASNs are FirstASN..FirstASN+ASes-1).
	ASes, Rounds int
	// FirstASN is the lowest ASN in the population (default 1000, the
	// store synthesizer's convention).
	FirstASN int
	// Seed makes the request stream deterministic per worker.
	Seed int64
	// AppendEvery, when positive together with Append, runs a background
	// writer invoking Append on that period — the mid-load invalidation
	// storm.
	AppendEvery time.Duration
	// Append appends one round to the store under test.
	Append func() error
	// Subscribers, together with Hub, adds push-subscription load: that many
	// subscriber goroutines attach to Hub and drain score updates for the
	// whole run, each delivery's publish→receive latency recorded (the
	// staleness of a pushed score at the fan-out layer). The storm writer is
	// the natural publisher: have Append publish an Update per round.
	Subscribers int
	// Hub is the score fan-out the subscribers attach to (in-process runs).
	Hub *stream.Hub
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1_000_000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.ASes <= 0 {
		c.ASes = 1000
	}
	if c.Rounds <= 0 {
		c.Rounds = 50
	}
	if c.FirstASN <= 0 {
		c.FirstASN = 1000
	}
	return c
}

// Report is a load run's outcome.
type Report struct {
	Requests    int64         `json:"requests"`
	Errors      int64         `json:"errors"`       // 5xx or transport failures
	RateLimited int64         `json:"rate_limited"` // 429 responses
	Appends     int64         `json:"appends"`      // storm-writer rounds appended
	Elapsed     time.Duration `json:"-"`
	ElapsedSec  float64       `json:"elapsed_s"`
	QPS         float64       `json:"qps"`
	P50us       float64       `json:"p50_us"`
	P99us       float64       `json:"p99_us"`
	P999us      float64       `json:"p999_us"`
	// AllocsPerReq is heap allocations per request across harness and
	// server combined (in-process runs only; 0 over HTTP).
	AllocsPerReq float64 `json:"allocs_per_req"`

	// Subscriber-side results (zero unless Config.Subscribers was set):
	// deliveries received, subscribers evicted for falling behind, and the
	// p99 publish→receive latency in µs.
	Subscribers int64   `json:"subscribers,omitempty"`
	Deliveries  int64   `json:"deliveries,omitempty"`
	SubEvicted  int64   `json:"sub_evicted,omitempty"`
	SubP99us    float64 `json:"sub_p99_us,omitempty"`
}

func (r Report) String() string {
	s := fmt.Sprintf(
		"%d requests in %.2fs → %.0f qps\nlatency p50 %.1fµs  p99 %.1fµs  p999 %.1fµs\nerrors %d  rate-limited %d  appends %d  allocs/req %.1f",
		r.Requests, r.Elapsed.Seconds(), r.QPS, r.P50us, r.P99us, r.P999us,
		r.Errors, r.RateLimited, r.Appends, r.AllocsPerReq)
	if r.Subscribers > 0 {
		s += fmt.Sprintf("\nsubscribers %d  deliveries %d  evicted %d  delivery p99 %.1fµs",
			r.Subscribers, r.Deliveries, r.SubEvicted, r.SubP99us)
	}
	return s
}

// latHistogram records request latencies in 100ns buckets (covering
// ~6.5ms) plus an overflow list, so merging and quantile extraction are
// exact for the fast path and conservative for stragglers.
const (
	latBuckets  = 1 << 16
	latUnit     = 100 * time.Nanosecond
	latOverflow = latBuckets - 1
)

type latHistogram struct {
	buckets  [latBuckets]uint32
	overflow []int64 // ns, latencies past the bucketed range
}

func (h *latHistogram) record(d time.Duration) {
	i := int(d / latUnit)
	if i >= latOverflow {
		h.overflow = append(h.overflow, int64(d))
		i = latOverflow
	}
	h.buckets[i]++
}

// quantiles merges per-worker histograms and extracts p50/p99/p999 in µs.
func quantiles(hists []*latHistogram) (p50, p99, p999 float64) {
	var total uint64
	merged := make([]uint64, latBuckets)
	for _, h := range hists {
		for i, n := range h.buckets[:] {
			merged[i] += uint64(n)
			total += uint64(n)
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	q := func(p float64) float64 {
		target := uint64(p * float64(total-1))
		var cum uint64
		for i, n := range merged {
			cum += n
			if cum > target {
				return float64(i) * float64(latUnit) / float64(time.Microsecond)
			}
		}
		return float64(latOverflow) * float64(latUnit) / float64(time.Microsecond)
	}
	return q(0.50), q(0.99), q(0.999)
}

// opKind is one request archetype in the mix.
type opKind int

const (
	opHotAS opKind = iota
	opColdTimeseries
	opTop
	opRounds
	opDiff
	opExport
)

// pickOp draws from the mix: mostly hot point lookups, a steady diet of
// cold timeseries and rankings, occasional diffs and bulk exports.
func pickOp(rng *rand.Rand) opKind {
	switch r := rng.Intn(100); {
	case r < 50:
		return opHotAS
	case r < 70:
		return opColdTimeseries
	case r < 85:
		return opTop
	case r < 90:
		return opRounds
	case r < 95:
		return opDiff
	default:
		return opExport
	}
}

// target abstracts the two driving modes; it reports the HTTP status (0 on
// transport failure).
type target func(u *url.URL, clientAddr string) int

// paths holds the pre-parsed URL population so the per-request work is a
// couple of RNG draws and one Request allocation.
type paths struct {
	as     []*url.URL // /v1/as/{asn}
	ts     []*url.URL // /v1/as/{asn}/timeseries
	top    *url.URL
	rounds *url.URL
	diff   *url.URL
	export *url.URL
}

func buildPaths(cfg Config) (*paths, error) {
	p := &paths{
		as: make([]*url.URL, cfg.ASes),
		ts: make([]*url.URL, cfg.ASes),
	}
	must := func(raw string) *url.URL {
		u, err := url.Parse(raw)
		if err != nil {
			panic(err) // static paths, cannot fail
		}
		return u
	}
	for i := 0; i < cfg.ASes; i++ {
		asn := strconv.Itoa(cfg.FirstASN + i)
		p.as[i] = must("/v1/as/" + asn)
		p.ts[i] = must("/v1/as/" + asn + "/timeseries")
	}
	p.top = must("/v1/top?n=25")
	p.rounds = must("/v1/rounds")
	p.diff = must("/v1/diff?from=0&to=latest")
	p.export = must("/v1/export?format=json")
	return p, nil
}

// clientAddrs synthesizes one source address per simulated client:
// 10.x.y.z from the client index, a fixed port (the limiter keys on the
// bare IP). This is the "connection context" — what a distinct downstream
// TCP connection would present to the server.
func clientAddrs(n int) []string {
	addrs := make([]string, n)
	var buf [24]byte
	for c := 0; c < n; c++ {
		b := buf[:0]
		b = append(b, "10."...)
		b = strconv.AppendInt(b, int64(c>>16&255), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(c>>8&255), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(c&255), 10)
		b = append(b, ":4242"...)
		addrs[c] = string(b)
	}
	return addrs
}

// Run drives h in-process with cfg's workload and returns the report.
func Run(h http.Handler, cfg Config) (Report, error) {
	do := func(u *url.URL, clientAddr string) int {
		req := &http.Request{
			Method:     http.MethodGet,
			URL:        u,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Host:       "loadgen",
			RemoteAddr: clientAddr,
		}
		w := &discardWriter{}
		h.ServeHTTP(w, req)
		if w.status == 0 {
			return http.StatusOK
		}
		return w.status
	}
	return run(do, cfg, true)
}

// RunHTTP drives a live server at baseURL (e.g. "http://127.0.0.1:8080")
// over real HTTP. Client identity is the harness process's source address,
// so per-IP rate limiting should be disabled on the target.
func RunHTTP(baseURL string, cfg Config) (Report, error) {
	base, err := url.Parse(baseURL)
	if err != nil {
		return Report{}, fmt.Errorf("loadharness: bad base URL: %w", err)
	}
	cfg = cfg.withDefaults()
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers * 2,
			MaxIdleConnsPerHost: cfg.Workers * 2,
		},
		Timeout: 30 * time.Second,
	}
	do := func(u *url.URL, _ string) int {
		resp, err := client.Get(base.ResolveReference(u).String())
		if err != nil {
			return 0
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	return run(do, cfg, false)
}

// discardWriter is the in-process response sink: it keeps the status and
// drops the body without copying.
type discardWriter struct {
	h      http.Header
	status int
}

func (w *discardWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *discardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *discardWriter) WriteHeader(code int)        { w.status = code }

func run(do target, cfg Config, inProcess bool) (Report, error) {
	cfg = cfg.withDefaults()
	p, err := buildPaths(cfg)
	if err != nil {
		return Report{}, err
	}
	addrs := clientAddrs(cfg.Clients)

	var (
		requests, errors, limited, appends atomic.Int64
		budget                             atomic.Int64
		stop                               atomic.Bool
	)
	budget.Store(cfg.Requests)

	// Background append storm.
	stormDone := make(chan struct{})
	stormStop := make(chan struct{})
	if cfg.AppendEvery > 0 && cfg.Append != nil {
		go func() {
			defer close(stormDone)
			tick := time.NewTicker(cfg.AppendEvery)
			defer tick.Stop()
			for {
				select {
				case <-stormStop:
					return
				case <-tick.C:
					if err := cfg.Append(); err != nil {
						errors.Add(1)
						return
					}
					appends.Add(1)
				}
			}
		}()
	} else {
		close(stormDone)
	}

	// Push-subscription load: each subscriber drains the hub for the whole
	// run, recording publish→receive latency. Eviction (channel closed by
	// the hub mid-run) ends that subscriber early and is counted — the
	// slow-consumer policy showing up under load is a result, not an error.
	var (
		deliveries, subEvicted atomic.Int64
		subs                   []*stream.Subscriber
		subHists               []*latHistogram
		subWg                  sync.WaitGroup
	)
	if cfg.Hub != nil && cfg.Subscribers > 0 {
		for i := 0; i < cfg.Subscribers; i++ {
			sub := cfg.Hub.Subscribe(stream.SubFilter{}, 256)
			hist := &latHistogram{}
			subs = append(subs, sub)
			subHists = append(subHists, hist)
			subWg.Add(1)
			go func(sub *stream.Subscriber, hist *latHistogram) {
				defer subWg.Done()
				for u := range sub.C {
					hist.record(time.Since(u.At))
					deliveries.Add(1)
				}
				if sub.Evicted() {
					subEvicted.Add(1)
				}
			}(sub, hist)
		}
	}

	var memBefore runtime.MemStats
	if inProcess {
		runtime.ReadMemStats(&memBefore)
	}

	hists := make([]*latHistogram, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	if cfg.Requests <= 0 {
		time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
	}
	for wk := 0; wk < cfg.Workers; wk++ {
		hist := &latHistogram{}
		hists[wk] = hist
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wk)*0x9e3779b9))
			asZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.ASes-1))
			clientZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Clients-1))
			for {
				if cfg.Requests > 0 {
					if budget.Add(-1) < 0 {
						return
					}
				} else if stop.Load() {
					return
				}
				var u *url.URL
				switch pickOp(rng) {
				case opHotAS:
					u = p.as[asZipf.Uint64()]
				case opColdTimeseries:
					u = p.ts[rng.Intn(cfg.ASes)]
				case opTop:
					u = p.top
				case opRounds:
					u = p.rounds
				case opDiff:
					u = p.diff
				default:
					u = p.export
				}
				addr := addrs[clientZipf.Uint64()]
				t0 := time.Now()
				status := do(u, addr)
				hist.record(time.Since(t0))
				requests.Add(1)
				switch {
				case status == 0 || status >= 500:
					errors.Add(1)
				case status == http.StatusTooManyRequests:
					limited.Add(1)
				}
			}
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stormStop)
	<-stormDone
	for _, sub := range subs {
		sub.Close() // idempotent; evicted subscribers are already detached
	}
	subWg.Wait()

	rep := Report{
		Requests:    requests.Load(),
		Errors:      errors.Load(),
		RateLimited: limited.Load(),
		Appends:     appends.Load(),
		Elapsed:     elapsed,
		ElapsedSec:  elapsed.Seconds(),
	}
	if rep.Requests > 0 {
		rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	}
	rep.P50us, rep.P99us, rep.P999us = quantiles(hists)
	if len(subs) > 0 {
		rep.Subscribers = int64(len(subs))
		rep.Deliveries = deliveries.Load()
		rep.SubEvicted = subEvicted.Load()
		_, rep.SubP99us, _ = quantiles(subHists)
	}
	if inProcess && rep.Requests > 0 {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		rep.AllocsPerReq = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(rep.Requests)
	}
	return rep, nil
}
