// Package groundtruth replays the paper's §6.3 cross-validation against
// operator-provided information: public deployment announcements (Tables 2
// and 3), the MANRS operator survey, and crowdsourced lists — including the
// staleness and error modes the paper encountered (operators who announced
// ROV and later silently retracted it, and lists that were never updated).
package groundtruth

import (
	"math/rand"
	"sort"

	"github.com/netsec-lab/rovista/internal/baselines"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
)

// Claim is one operator's public statement about their ROV deployment.
type Claim struct {
	ASN       inet.ASN
	ClaimsROV bool
	// Source mimics the provenance buckets in the paper's Table 2.
	Source string
	// Stale marks claims the generator knows to be outdated (e.g. the AS
	// rolled ROV back after announcing it — the BIT story).
	Stale bool
}

// BuildAnnouncements samples public ROV announcements from the world's
// ground truth as of the given day: nPos ASes claiming deployment (some of
// which rolled back — those claims are stale) and nNeg claiming none.
func BuildAnnouncements(w *core.World, day, nPos, nNeg int, seed int64) []Claim {
	rng := rand.New(rand.NewSource(seed))
	var deployers, rolledBack, nevers []inet.ASN
	for _, asn := range sortedASNs(w) {
		tr := w.Truth[asn]
		switch {
		case tr.DeployDay >= 0 && tr.RollbackDay > 0 && day >= tr.RollbackDay:
			rolledBack = append(rolledBack, asn)
		case tr.DeployedAt(day) && tr.Kind == "full":
			// Public announcements come from operators running the real
			// thing; partial modes rarely get announced (and the paper's
			// Table 2 claimants are full deployments).
			deployers = append(deployers, asn)
		case tr.DeployDay < 0:
			nevers = append(nevers, asn)
		}
	}
	rng.Shuffle(len(deployers), func(i, j int) { deployers[i], deployers[j] = deployers[j], deployers[i] })
	rng.Shuffle(len(nevers), func(i, j int) { nevers[i], nevers[j] = nevers[j], nevers[i] })
	// Negative claims come from operators who demonstrably have no
	// protection at all (the paper's two non-deployers measured 0%);
	// never-deployers shielded by filtering providers would make the claim
	// unverifiable rather than wrong.
	var unprotected []inet.ASN
	for _, asn := range nevers {
		all := true
		for _, inv := range w.Invalids {
			if inv.Shared || !inv.ActiveAt(day) {
				continue
			}
			if !w.Graph.Reachable(asn, inet.NthAddr(inv.Prefix, 20)) {
				all = false
				break
			}
		}
		if all {
			unprotected = append(unprotected, asn)
		}
	}
	if len(unprotected) >= nNeg {
		nevers = unprotected
	}

	var claims []Claim
	// Stale positive claims first: every rolled-back AS once announced ROV.
	for _, asn := range rolledBack {
		if len(claims) >= nPos {
			break
		}
		claims = append(claims, Claim{ASN: asn, ClaimsROV: true, Source: "announcement", Stale: true})
	}
	for _, asn := range deployers {
		if len(claims) >= nPos {
			break
		}
		claims = append(claims, Claim{ASN: asn, ClaimsROV: true, Source: "announcement"})
	}
	for i := 0; i < nNeg && i < len(nevers); i++ {
		claims = append(claims, Claim{ASN: nevers[i], ClaimsROV: false, Source: "announcement"})
	}
	return claims
}

// Comparison joins a claim with a RoVista score.
type Comparison struct {
	Claim
	Score      float64
	HasScore   bool
	Consistent bool
}

// Compare checks claims against measured scores using the paper's reading:
// a deployment claim is consistent with a score ≥ 90%, a non-deployment
// claim with a score of 0%.
func Compare(claims []Claim, scores map[inet.ASN]float64) []Comparison {
	out := make([]Comparison, 0, len(claims))
	for _, c := range claims {
		cmp := Comparison{Claim: c}
		if s, ok := scores[c.ASN]; ok {
			cmp.Score, cmp.HasScore = s, true
			if c.ClaimsROV {
				cmp.Consistent = s >= 90
			} else {
				cmp.Consistent = s == 0
			}
		}
		out = append(out, cmp)
	}
	return out
}

// SurveyAnswer is a MANRS-style survey response.
type SurveyAnswer string

// Survey answers.
const (
	AnswerDeployed    SurveyAnswer = "deployed"
	AnswerNotDeployed SurveyAnswer = "not-deployed"
	AnswerUncertain   SurveyAnswer = "uncertain"
)

// SurveyResponse is one operator's reply.
type SurveyResponse struct {
	ASN    inet.ASN
	Answer SurveyAnswer
}

// SimulateSurvey samples n operators; most answer truthfully, a fraction is
// uncertain about their own deployment (as in §6.3.2, where 4 of 31
// respondents did not know).
func SimulateSurvey(w *core.World, day, n int, uncertainFrac float64, seed int64) []SurveyResponse {
	rng := rand.New(rand.NewSource(seed))
	asns := sortedASNs(w)
	rng.Shuffle(len(asns), func(i, j int) { asns[i], asns[j] = asns[j], asns[i] })
	var out []SurveyResponse
	for _, asn := range asns {
		if len(out) >= n {
			break
		}
		r := SurveyResponse{ASN: asn}
		switch {
		case rng.Float64() < uncertainFrac:
			r.Answer = AnswerUncertain
		case w.Truth[asn].DeployedAt(day):
			r.Answer = AnswerDeployed
		default:
			r.Answer = AnswerNotDeployed
		}
		out = append(out, r)
	}
	return out
}

// BuildCrowdsourcedList generates a Cloudflare-style community list as of
// `day`, compiled with a reporting lag and a label-error rate: entries
// reflect each AS's policy `lagDays` ago, and errFrac of labels are wrong —
// the two failure modes (§8) behind the list's disagreement with RoVista.
func BuildCrowdsourcedList(w *core.World, day, lagDays int, errFrac float64, n int, seed int64) []baselines.CrowdEntry {
	rng := rand.New(rand.NewSource(seed))
	asns := sortedASNs(w)
	rng.Shuffle(len(asns), func(i, j int) { asns[i], asns[j] = asns[j], asns[i] })
	asOf := day - lagDays
	if asOf < 0 {
		asOf = 0
	}
	var out []baselines.CrowdEntry
	for _, asn := range asns {
		if len(out) >= n {
			break
		}
		tr := w.Truth[asn]
		var label baselines.CrowdLabel
		switch {
		case tr.DeployedAt(asOf) && tr.Kind == "full":
			label = baselines.LabelSafe
		case tr.DeployedAt(asOf):
			label = baselines.LabelPartiallySafe
		default:
			label = baselines.LabelUnsafe
		}
		if rng.Float64() < errFrac {
			label = wrongLabel(label, rng)
		}
		out = append(out, baselines.CrowdEntry{ASN: asn, Label: label})
	}
	baselines.SortEntries(out)
	return out
}

func wrongLabel(l baselines.CrowdLabel, rng *rand.Rand) baselines.CrowdLabel {
	options := []baselines.CrowdLabel{baselines.LabelSafe, baselines.LabelPartiallySafe, baselines.LabelUnsafe}
	for {
		o := options[rng.Intn(len(options))]
		if o != l {
			return o
		}
	}
}

func sortedASNs(w *core.World) []inet.ASN {
	out := append([]inet.ASN(nil), w.Topo.ASNs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
