package groundtruth

import (
	"testing"

	"github.com/netsec-lab/rovista/internal/baselines"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
)

func smallWorld(t *testing.T, seed int64) *core.World {
	t.Helper()
	cfg := core.SmallWorldConfig(seed)
	cfg.RollbackFrac = 0.3 // ensure stale claims exist
	w, err := core.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(cfg.Days); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildAnnouncements(t *testing.T) {
	w := smallWorld(t, 1)
	claims := BuildAnnouncements(w, w.Cfg.Days, 10, 2, 1)
	pos, neg, stale := 0, 0, 0
	for _, c := range claims {
		if c.ClaimsROV {
			pos++
			if c.Stale {
				stale++
				// Stale positive claims must belong to rolled-back ASes.
				tr := w.Truth[c.ASN]
				if tr.RollbackDay == 0 || tr.DeployDay < 0 {
					t.Fatalf("stale claim for non-rolled-back %v", c.ASN)
				}
			} else if !w.Truth[c.ASN].DeployedAt(w.Cfg.Days) {
				t.Fatalf("fresh claim for non-deployer %v", c.ASN)
			}
		} else {
			neg++
			if w.Truth[c.ASN].DeployDay >= 0 {
				t.Fatalf("negative claim for deployer %v", c.ASN)
			}
		}
	}
	if pos == 0 || neg != 2 {
		t.Fatalf("pos=%d neg=%d", pos, neg)
	}
	if stale == 0 {
		t.Fatal("expected at least one stale claim with RollbackFrac=0.3")
	}
}

func TestCompare(t *testing.T) {
	claims := []Claim{
		{ASN: 1, ClaimsROV: true},
		{ASN: 2, ClaimsROV: true, Stale: true},
		{ASN: 3, ClaimsROV: false},
		{ASN: 4, ClaimsROV: true}, // unscored
	}
	scores := map[inet.ASN]float64{1: 100, 2: 0, 3: 0}
	out := Compare(claims, scores)
	if !out[0].Consistent {
		t.Fatal("100% scorer claiming ROV should be consistent")
	}
	if out[1].Consistent {
		t.Fatal("stale claim with 0% score must be inconsistent")
	}
	if !out[2].Consistent {
		t.Fatal("non-claimer at 0% should be consistent")
	}
	if out[3].HasScore || out[3].Consistent {
		t.Fatal("unscored claim must not be marked consistent")
	}
}

func TestSimulateSurvey(t *testing.T) {
	w := smallWorld(t, 2)
	resp := SimulateSurvey(w, w.Cfg.Days, 30, 0.15, 2)
	if len(resp) != 30 {
		t.Fatalf("responses = %d", len(resp))
	}
	uncertain := 0
	for _, r := range resp {
		switch r.Answer {
		case AnswerUncertain:
			uncertain++
		case AnswerDeployed:
			if !w.Truth[r.ASN].DeployedAt(w.Cfg.Days) {
				t.Fatalf("%v lied about deploying", r.ASN)
			}
		case AnswerNotDeployed:
			if w.Truth[r.ASN].DeployedAt(w.Cfg.Days) {
				t.Fatalf("%v lied about not deploying", r.ASN)
			}
		}
	}
	if uncertain == 0 || uncertain == 30 {
		t.Fatalf("uncertain = %d, want some but not all", uncertain)
	}
}

func TestBuildCrowdsourcedList(t *testing.T) {
	w := smallWorld(t, 3)
	list := BuildCrowdsourcedList(w, w.Cfg.Days, 0, 0, 40, 3)
	if len(list) != 40 {
		t.Fatalf("entries = %d", len(list))
	}
	for _, e := range list {
		tr := w.Truth[e.ASN]
		switch e.Label {
		case baselines.LabelSafe:
			if !(tr.DeployedAt(w.Cfg.Days) && tr.Kind == "full") {
				t.Fatalf("%v mislabelled safe (%+v)", e.ASN, tr)
			}
		case baselines.LabelUnsafe:
			if tr.DeployedAt(w.Cfg.Days) {
				t.Fatalf("%v mislabelled unsafe", e.ASN)
			}
		}
	}
	// Sorted by ASN.
	for i := 1; i < len(list); i++ {
		if list[i].ASN < list[i-1].ASN {
			t.Fatal("list not sorted")
		}
	}
}

func TestBuildCrowdsourcedListLag(t *testing.T) {
	w := smallWorld(t, 4)
	// With a lag covering the whole timeline, labels reflect day 0.
	lagged := BuildCrowdsourcedList(w, w.Cfg.Days, w.Cfg.Days, 0, 60, 4)
	mismatches := 0
	for _, e := range lagged {
		tr := w.Truth[e.ASN]
		nowDeployed := tr.DeployedAt(w.Cfg.Days)
		labelSaysDeployed := e.Label != baselines.LabelUnsafe
		if nowDeployed != labelSaysDeployed {
			mismatches++
		}
	}
	if mismatches == 0 {
		t.Fatal("a maximally lagged list should disagree with current truth somewhere")
	}
}

func TestBuildCrowdsourcedListErrors(t *testing.T) {
	w := smallWorld(t, 5)
	clean := BuildCrowdsourcedList(w, w.Cfg.Days, 0, 0, 50, 5)
	noisy := BuildCrowdsourcedList(w, w.Cfg.Days, 0, 0.5, 50, 5)
	diff := 0
	for i := range clean {
		if clean[i].ASN == noisy[i].ASN && clean[i].Label != noisy[i].Label {
			diff++
		}
	}
	if diff < 10 {
		t.Fatalf("error injection changed only %d labels", diff)
	}
}
