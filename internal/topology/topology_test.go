package topology

import (
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
)

func smallConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		NumTier1:      4,
		NumTier2:      10,
		NumTier3:      30,
		NumStub:       80,
		PrefixesPerAS: 1.2,
		Tier2PeerProb: 0.3,
		Tier3PeerProb: 0.05,
		MultihomeProb: 0.4,
	}
}

func TestGenerateCounts(t *testing.T) {
	topo := Generate(smallConfig(1))
	if len(topo.ASNs) != 4+10+30+80 {
		t.Fatalf("AS count = %d", len(topo.ASNs))
	}
	counts := map[Tier]int{}
	for _, info := range topo.Info {
		counts[info.Tier]++
	}
	if counts[Tier1] != 4 || counts[Tier2] != 10 || counts[Tier3] != 30 || counts[Stub] != 80 {
		t.Fatalf("tier counts = %v", counts)
	}
}

func TestTier1Clique(t *testing.T) {
	topo := Generate(smallConfig(2))
	for i, a := range topo.Tier1 {
		asA := topo.Graph.AS(a)
		for j, b := range topo.Tier1 {
			if i == j {
				continue
			}
			if rel, ok := asA.Neighbors[b]; !ok || rel != bgp.Peer {
				t.Fatalf("tier1 %v-%v not peering (rel=%v ok=%v)", a, b, rel, ok)
			}
		}
		// Transit-free: no providers.
		for nbr, rel := range asA.Neighbors {
			if rel == bgp.Provider {
				t.Fatalf("tier1 %v has provider %v", a, nbr)
			}
		}
	}
}

func TestEveryNonTier1HasProvider(t *testing.T) {
	topo := Generate(smallConfig(3))
	for _, asn := range topo.ASNs {
		if topo.Info[asn].Tier == Tier1 {
			continue
		}
		if len(topo.Providers(asn)) == 0 {
			t.Fatalf("%v (%v) has no provider", asn, topo.Info[asn].Tier)
		}
	}
}

func TestPrefixesUniqueAndOwned(t *testing.T) {
	topo := Generate(smallConfig(4))
	seen := map[string]inet.ASN{}
	for _, asn := range topo.ASNs {
		info := topo.Info[asn]
		if len(info.Prefixes) == 0 {
			t.Fatalf("%v has no prefixes", asn)
		}
		for _, p := range info.Prefixes {
			if owner, dup := seen[p.String()]; dup {
				t.Fatalf("prefix %v allocated to both %v and %v", p, owner, asn)
			}
			seen[p.String()] = asn
			if p.Bits() != 16 {
				t.Fatalf("prefix %v not a /16", p)
			}
		}
		// Graph originations must match the metadata.
		got := topo.Graph.AS(asn).Originated
		if len(got) != len(info.Prefixes) {
			t.Fatalf("origination mismatch for %v", asn)
		}
	}
}

func TestConesAndRanks(t *testing.T) {
	topo := Generate(smallConfig(5))
	// Every AS's cone includes itself.
	for _, asn := range topo.ASNs {
		if topo.Info[asn].ConeSize < 1 {
			t.Fatalf("%v cone = %d", asn, topo.Info[asn].ConeSize)
		}
	}
	// A provider's cone strictly contains each customer's cone size-wise.
	for _, asn := range topo.ASNs {
		for _, c := range topo.Customers(asn) {
			if topo.Info[asn].ConeSize <= topo.Info[c].ConeSize {
				t.Fatalf("provider %v cone %d <= customer %v cone %d",
					asn, topo.Info[asn].ConeSize, c, topo.Info[c].ConeSize)
			}
		}
	}
	// Ranks are a permutation of 1..N ordered by cone size.
	byRank := topo.ByRank()
	if len(byRank) != len(topo.ASNs) {
		t.Fatal("ByRank length mismatch")
	}
	for i := 1; i < len(byRank); i++ {
		prev, cur := topo.Info[byRank[i-1]], topo.Info[byRank[i]]
		if prev.ConeSize < cur.ConeSize {
			t.Fatalf("rank order violates cone order at %d", i)
		}
	}
	// Tier-1s should dominate the top ranks.
	topTier1 := 0
	for _, asn := range byRank[:4] {
		if topo.Info[asn].Tier == Tier1 {
			topTier1++
		}
	}
	if topTier1 < 3 {
		t.Fatalf("only %d tier-1s in top 4 ranks", topTier1)
	}
}

func TestStubsAreLowRanked(t *testing.T) {
	topo := Generate(smallConfig(6))
	byRank := topo.ByRank()
	// The bottom half of the ranking should be overwhelmingly stubs.
	stubs := 0
	half := byRank[len(byRank)/2:]
	for _, asn := range half {
		if topo.Info[asn].Tier == Stub {
			stubs++
		}
	}
	if float64(stubs)/float64(len(half)) < 0.7 {
		t.Fatalf("bottom half only %d/%d stubs", stubs, len(half))
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(smallConfig(7))
	b := Generate(smallConfig(7))
	if len(a.ASNs) != len(b.ASNs) {
		t.Fatal("AS count differs across runs")
	}
	for _, asn := range a.ASNs {
		ia, ib := a.Info[asn], b.Info[asn]
		if ia.Tier != ib.Tier || ia.RIR != ib.RIR || ia.ConeSize != ib.ConeSize || ia.Rank != ib.Rank {
			t.Fatalf("metadata differs for %v: %+v vs %+v", asn, ia, ib)
		}
		na, nb := a.Graph.AS(asn).Neighbors, b.Graph.AS(asn).Neighbors
		if len(na) != len(nb) {
			t.Fatalf("neighbor count differs for %v", asn)
		}
		for n, rel := range na {
			if nb[n] != rel {
				t.Fatalf("relationship differs for %v-%v", asn, n)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Generate(smallConfig(8))
	b := Generate(smallConfig(9))
	same := true
	for _, asn := range a.ASNs {
		na, nb := a.Graph.AS(asn).Neighbors, b.Graph.AS(asn).Neighbors
		if len(na) != len(nb) {
			same = false
			break
		}
		for n, rel := range na {
			if nb[n] != rel {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestFullConvergenceAndReachability(t *testing.T) {
	topo := Generate(smallConfig(10))
	rounds, err := topo.Graph.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("expected at least one convergence round")
	}
	// Every AS should be able to reach every originated prefix (no ROV,
	// fully connected hierarchy).
	asns := topo.ASNs
	missed := 0
	total := 0
	for _, src := range asns[:20] { // sample sources
		for _, dst := range asns[len(asns)-20:] { // sample destinations
			if src == dst {
				continue
			}
			total++
			addr := inet.NthAddr(topo.Info[dst].Prefixes[0], 1)
			if !topo.Graph.Reachable(src, addr) {
				missed++
			}
		}
	}
	if missed > 0 {
		t.Fatalf("%d/%d sampled paths unreachable in a clean world", missed, total)
	}
}

func TestTierString(t *testing.T) {
	if Tier1.String() != "tier1" || Stub.String() != "stub" {
		t.Fatal("tier strings wrong")
	}
}

func TestIsStubWithSingleProvider(t *testing.T) {
	topo := Generate(smallConfig(11))
	found := false
	for _, asn := range topo.ASNs {
		if topo.IsStubWithSingleProvider(asn) {
			found = true
			if topo.Info[asn].Tier != Stub || len(topo.Providers(asn)) != 1 {
				t.Fatalf("misclassified %v", asn)
			}
		}
	}
	if !found {
		t.Fatal("expected at least one single-homed stub")
	}
}

func TestDefaultConfigGenerates(t *testing.T) {
	topo := Generate(DefaultConfig(1))
	if len(topo.ASNs) != 8+60+250+900 {
		t.Fatalf("default world size = %d", len(topo.ASNs))
	}
	if _, err := topo.Graph.Converge(); err != nil {
		t.Fatal(err)
	}
}
