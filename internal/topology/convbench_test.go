package topology

import (
	"net/netip"
	"testing"
)

func BenchmarkConvergeDefault(b *testing.B) {
	topo := Generate(DefaultConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topo.Graph.Converge(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvergeIncremental(b *testing.B) {
	topo := Generate(DefaultConfig(1))
	if _, err := topo.Graph.Converge(); err != nil {
		b.Fatal(err)
	}
	// Re-converge 20 prefixes (a typical per-snapshot dirty set).
	var ps []netip.Prefix
	for _, asn := range topo.ASNs[:20] {
		ps = append(ps, topo.Info[asn].Prefixes[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topo.Graph.ConvergePrefixes(ps); err != nil {
			b.Fatal(err)
		}
	}
}
