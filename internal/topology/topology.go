// Package topology generates synthetic AS-level Internet topologies with
// the structural features RoVista's analysis depends on: a transit-free
// tier-1 clique, a transit hierarchy with multihoming, settlement-free
// peering, per-RIR address allocation, and CAIDA-style customer-cone AS
// ranking (§7.2 of the paper ranks ASes by customer cone size).
//
// Generation is fully deterministic given a Config seed, so every experiment
// in the repository is reproducible.
package topology

import (
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// Tier buckets ASes by their role in the transit hierarchy.
type Tier uint8

// Tiers, from the clique down to stubs.
const (
	Tier1 Tier = 1 // transit-free clique
	Tier2 Tier = 2 // large transit networks
	Tier3 Tier = 3 // regional providers
	Stub  Tier = 4 // edge networks
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	case Tier3:
		return "tier3"
	case Stub:
		return "stub"
	default:
		return fmt.Sprintf("Tier(%d)", uint8(t))
	}
}

// Config controls topology generation.
type Config struct {
	Seed int64

	NumTier1 int // size of the transit-free clique
	NumTier2 int
	NumTier3 int
	NumStub  int

	// PrefixesPerAS is the mean number of /16 prefixes allocated per AS
	// (minimum 1).
	PrefixesPerAS float64

	// OriginFrac, when in (0, 1), is the fraction of ASes that originate
	// prefixes at all; the rest are transit-only. Zero means every AS
	// originates (the historical behaviour — no extra rng draws happen in
	// that mode, so existing worlds are bit-for-bit unchanged). Paper-scale
	// worlds use this to model tens of thousands of vantage ASes against a
	// small routed test-prefix population: full-table Adj-RIB-In state is
	// quadratic in (ASes × prefixes), and the real measurement only ever
	// routes a few hundred prefixes of interest.
	OriginFrac float64

	// Tier2PeerProb / Tier3PeerProb are the probabilities that two same-tier
	// ASes peer.
	Tier2PeerProb float64
	Tier3PeerProb float64

	// MultihomeProb is the chance an AS takes a second (or third) provider.
	MultihomeProb float64
}

// DefaultConfig returns a mid-sized world: large enough to exhibit the
// paper's phenomena, small enough to converge in well under a second.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		NumTier1:      8,
		NumTier2:      60,
		NumTier3:      250,
		NumStub:       900,
		PrefixesPerAS: 1.5,
		Tier2PeerProb: 0.30,
		Tier3PeerProb: 0.02,
		MultihomeProb: 0.45,
	}
}

// ASInfo is the generator's metadata about one AS.
type ASInfo struct {
	ASN      inet.ASN
	Tier     Tier
	RIR      rpki.RIR
	Prefixes []netip.Prefix
	// ConeSize is the CAIDA-style customer cone size (self included).
	ConeSize int
	// Rank is the 1-based position when ordering by descending cone size.
	Rank int
}

// Topology is a generated AS-level Internet.
type Topology struct {
	Graph *bgp.Graph
	Info  map[inet.ASN]*ASInfo
	// ASNs lists all AS numbers in ascending order.
	ASNs []inet.ASN
	// Tier1 lists the clique members.
	Tier1 []inet.ASN
}

// firstASN is where generated AS numbering starts.
const firstASN inet.ASN = 1001

// Generate builds a topology from cfg.
func Generate(cfg Config) *Topology {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Topology{
		Graph: bgp.NewGraph(),
		Info:  make(map[inet.ASN]*ASInfo),
	}

	next := firstASN
	alloc := func(tier Tier, n int) []inet.ASN {
		out := make([]inet.ASN, n)
		for i := range out {
			asn := next
			next++
			out[i] = asn
			info := &ASInfo{ASN: asn, Tier: tier, RIR: rpki.AllRIRs[rng.Intn(len(rpki.AllRIRs))]}
			t.Info[asn] = info
			t.ASNs = append(t.ASNs, asn)
			t.Graph.AddAS(asn)
		}
		return out
	}

	t1 := alloc(Tier1, cfg.NumTier1)
	t2 := alloc(Tier2, cfg.NumTier2)
	t3 := alloc(Tier3, cfg.NumTier3)
	stubs := alloc(Stub, cfg.NumStub)
	t.Tier1 = t1

	// Tier-1 full mesh of peering (the clique).
	for i := 0; i < len(t1); i++ {
		for j := i + 1; j < len(t1); j++ {
			t.Graph.Link(t1[i], t1[j], bgp.Peer)
		}
	}

	pickProviders := func(pool []inet.ASN, customer inet.ASN) {
		if len(pool) == 0 {
			return
		}
		n := 1
		for n < 3 && rng.Float64() < cfg.MultihomeProb {
			n++
		}
		seen := map[inet.ASN]bool{}
		for k := 0; k < n; k++ {
			p := pool[rng.Intn(len(pool))]
			if seen[p] {
				continue
			}
			seen[p] = true
			t.Graph.Link(p, customer, bgp.Customer)
		}
	}
	for _, asn := range t2 {
		pickProviders(t1, asn)
	}
	for _, asn := range t3 {
		pickProviders(t2, asn)
	}
	for _, asn := range stubs {
		// Stubs mostly buy from tier-3, occasionally directly from tier-2.
		pool := t3
		if rng.Float64() < 0.15 {
			pool = t2
		}
		pickProviders(pool, asn)
	}

	// Same-tier peering.
	peerWithin := func(pool []inet.ASN, prob float64) {
		for i := 0; i < len(pool); i++ {
			for j := i + 1; j < len(pool); j++ {
				if rng.Float64() < prob {
					t.Graph.Link(pool[i], pool[j], bgp.Peer)
				}
			}
		}
	}
	peerWithin(t2, cfg.Tier2PeerProb)
	peerWithin(t3, cfg.Tier3PeerProb)

	t.allocatePrefixes(cfg, rng)
	t.computeCones()
	return t
}

// RIRBlock returns the i-th /8 address pool of a RIR: each RIR owns forty
// consecutive /8s, mirroring how real v4 space is carved among the
// registries.
func RIRBlock(r rpki.RIR, i int) netip.Prefix {
	base := 8 + int(r)*40 + (i % 40)
	return netip.PrefixFrom(inet.V4(uint32(base)<<24), 8)
}

func (t *Topology) allocatePrefixes(cfg Config, rng *rand.Rand) {
	// Allocation cursor per RIR: (block index, /16 index within block).
	type cursor struct{ block, sub int }
	cursors := make(map[rpki.RIR]*cursor)
	for _, r := range rpki.AllRIRs {
		cursors[r] = &cursor{}
	}
	for _, asn := range t.ASNs {
		info := t.Info[asn]
		if cfg.OriginFrac > 0 && cfg.OriginFrac < 1 && rng.Float64() >= cfg.OriginFrac {
			continue // transit-only AS: no allocation, no origination
		}
		n := 1
		for float64(n) < cfg.PrefixesPerAS && rng.Float64() < 0.5 {
			n++
		}
		cur := cursors[info.RIR]
		for k := 0; k < n; k++ {
			if cur.sub >= 256 {
				cur.block++
				cur.sub = 0
			}
			block := RIRBlock(info.RIR, cur.block)
			p := inet.SubnetAt(block, 16, uint32(cur.sub))
			cur.sub++
			info.Prefixes = append(info.Prefixes, p)
		}
		t.Graph.AS(asn).Originated = append([]netip.Prefix(nil), info.Prefixes...)
	}
}

// computeCones fills in ConeSize and Rank. Each AS's customer cone is
// counted by an independent BFS over customer edges using a per-worker
// generation-stamped visited array — O(ASes) memory per worker instead of
// the full set-per-AS memoization a DFS union needs, which at 50k+ ASes
// (where tier-1 cones span nearly the whole graph) is the difference
// between megabytes and gigabytes. The per-AS counts are independent, so
// the BFSes run in parallel; cone size is a pure function of the topology,
// making the result identical at any worker count.
func (t *Topology) computeCones() {
	n := len(t.ASNs)
	idx := make(map[inet.ASN]int32, n)
	for i, asn := range t.ASNs {
		idx[asn] = int32(i)
	}
	customers := make([][]int32, n)
	for i, asn := range t.ASNs {
		for nbr, rel := range t.Graph.AS(asn).Neighbors {
			if rel == bgp.Customer {
				customers[i] = append(customers[i], idx[nbr])
			}
		}
	}
	sizes := make([]int, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = max(n, 1)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			visited := make([]int32, n)
			queue := make([]int32, 0, 64)
			stamp := int32(0)
			for {
				i := int(cursor.Add(1) - 1)
				if i >= n {
					return
				}
				stamp++
				queue = append(queue[:0], int32(i))
				visited[i] = stamp
				count := 0
				for len(queue) > 0 {
					v := queue[len(queue)-1]
					queue = queue[:len(queue)-1]
					count++
					for _, c := range customers[v] {
						if visited[c] != stamp {
							visited[c] = stamp
							queue = append(queue, c)
						}
					}
				}
				sizes[i] = count
			}
		}()
	}
	wg.Wait()

	type ranked struct {
		asn  inet.ASN
		size int
	}
	rs := make([]ranked, 0, len(t.ASNs))
	for i, asn := range t.ASNs {
		t.Info[asn].ConeSize = sizes[i]
		rs = append(rs, ranked{asn, sizes[i]})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].size != rs[j].size {
			return rs[i].size > rs[j].size
		}
		return rs[i].asn < rs[j].asn
	})
	for i, r := range rs {
		t.Info[r.asn].Rank = i + 1
	}
}

// ByRank returns all ASNs ordered by ascending rank (biggest cone first).
func (t *Topology) ByRank() []inet.ASN {
	out := append([]inet.ASN(nil), t.ASNs...)
	sort.Slice(out, func(i, j int) bool { return t.Info[out[i]].Rank < t.Info[out[j]].Rank })
	return out
}

// Providers returns asn's providers.
func (t *Topology) Providers(asn inet.ASN) []inet.ASN {
	var out []inet.ASN
	for nbr, rel := range t.Graph.AS(asn).Neighbors {
		if rel == bgp.Provider {
			out = append(out, nbr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Customers returns asn's customers.
func (t *Topology) Customers(asn inet.ASN) []inet.ASN {
	var out []inet.ASN
	for nbr, rel := range t.Graph.AS(asn).Neighbors {
		if rel == bgp.Customer {
			out = append(out, nbr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsStubWithSingleProvider reports whether asn is a stub with exactly one
// upstream — the shape that inherits full collateral benefit (§7.3).
func (t *Topology) IsStubWithSingleProvider(asn inet.ASN) bool {
	return t.Info[asn].Tier == Stub && len(t.Providers(asn)) == 1
}
