package rov

import (
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

var ann = bgp.Announcement{Prefix: pfx("10.0.0.0/16"), Path: []inet.ASN{2, 3}}

func TestNoneAcceptsInvalid(t *testing.T) {
	d := None().Evaluate(1, 2, bgp.Peer, ann, rpki.Invalid)
	if !d.Accept || d.LocalPrefDelta != 0 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestFullDropsInvalidOnly(t *testing.T) {
	p := Full()
	if d := p.Evaluate(1, 2, bgp.Customer, ann, rpki.Invalid); d.Accept {
		t.Fatal("invalid should be dropped")
	}
	if d := p.Evaluate(1, 2, bgp.Customer, ann, rpki.Valid); !d.Accept {
		t.Fatal("valid should be accepted")
	}
	if d := p.Evaluate(1, 2, bgp.Customer, ann, rpki.NotFound); !d.Accept {
		t.Fatal("not-found should be accepted")
	}
}

func TestCustomerExempt(t *testing.T) {
	p := CustomerExempt()
	if d := p.Evaluate(1, 2, bgp.Customer, ann, rpki.Invalid); !d.Accept {
		t.Fatal("customer invalid should pass (exemption)")
	}
	if d := p.Evaluate(1, 2, bgp.Peer, ann, rpki.Invalid); d.Accept {
		t.Fatal("peer invalid should be dropped")
	}
	if d := p.Evaluate(1, 2, bgp.Provider, ann, rpki.Invalid); d.Accept {
		t.Fatal("provider invalid should be dropped")
	}
}

func TestPreferValidDepreferences(t *testing.T) {
	p := PreferValid()
	d := p.Evaluate(1, 2, bgp.Customer, ann, rpki.Invalid)
	if !d.Accept || d.LocalPrefDelta >= 0 {
		t.Fatalf("decision = %+v, want accept with negative delta", d)
	}
	d = p.Evaluate(1, 2, bgp.Customer, ann, rpki.Valid)
	if !d.Accept || d.LocalPrefDelta != 0 {
		t.Fatalf("valid route should carry no penalty: %+v", d)
	}
}

func TestPerASNOverrideBeatsRelOverride(t *testing.T) {
	p := &Policy{
		Default: ModeDrop,
		ByRel:   map[bgp.Relationship]Mode{bgp.Peer: ModeDrop},
		ByASN:   map[inet.ASN]Mode{42: ModeAccept},
	}
	if d := p.Evaluate(1, 42, bgp.Peer, ann, rpki.Invalid); !d.Accept {
		t.Fatal("per-ASN override should win")
	}
	if d := p.Evaluate(1, 43, bgp.Peer, ann, rpki.Invalid); d.Accept {
		t.Fatal("other neighbors still filtered")
	}
}

func TestDescribe(t *testing.T) {
	cases := []struct {
		p    *Policy
		want string
	}{
		{None(), "none"},
		{Full(), "drop-invalid"},
		{CustomerExempt(), "drop-invalid-customer-exempt"},
		{PreferValid(), "prefer-valid"},
		{nil, "none"},
	}
	for _, c := range cases {
		if got := c.p.Describe(); got != c.want {
			t.Errorf("Describe = %q, want %q", got, c.want)
		}
	}
}

func TestIsFiltering(t *testing.T) {
	if None().IsFiltering() {
		t.Fatal("None should not filter")
	}
	if !Full().IsFiltering() || !CustomerExempt().IsFiltering() || !PreferValid().IsFiltering() {
		t.Fatal("filtering policies misreported")
	}
	var nilP *Policy
	if nilP.IsFiltering() {
		t.Fatal("nil policy should not filter")
	}
	perASNOnly := &Policy{Default: ModeAccept, ByASN: map[inet.ASN]Mode{7: ModeDrop}}
	if !perASNOnly.IsFiltering() {
		t.Fatal("per-ASN drop should count as filtering")
	}
}

// End-to-end: prefer-valid keeps the invalid route available as backup but
// routes to the valid origin when both exist.
func TestPreferValidEndToEnd(t *testing.T) {
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 3, Prefix: pfx("10.3.0.0/16"), MaxLength: 16}})
	g := bgp.NewGraph()
	g.Link(1, 2, bgp.Customer)
	g.Link(2, 3, bgp.Customer)
	g.Link(2, 4, bgp.Customer)
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	g.AS(4).Originated = []netip.Prefix{pfx("10.3.0.0/16")} // invalid origin
	g.AS(2).Policy = PreferValid()
	g.AS(2).VRPs = vrps
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	r, ok := g.AS(2).BestRoute(pfx("10.3.0.0/16"))
	if !ok || r.Origin() != 3 {
		t.Fatalf("prefer-valid picked %+v, want origin 3", r)
	}
}

// End-to-end: the customer exemption leaves the AS reachable to
// customer-announced invalid prefixes — the AT&T/Cloudflare episode from
// Figure 10.
func TestCustomerExemptEndToEnd(t *testing.T) {
	const (
		att        inet.ASN = 7018
		cloudflare inet.ASN = 13335
		other      inet.ASN = 200
	)
	// Cloudflare's test prefix is deliberately RPKI-invalid (ROA pins a
	// different origin).
	vrps := rpki.NewVRPSet([]rpki.VRP{{ASN: 99999, Prefix: pfx("103.21.244.0/24"), MaxLength: 24}})
	g := bgp.NewGraph()
	g.Link(att, cloudflare, bgp.Customer) // Cloudflare became AT&T's customer
	g.Link(att, other, bgp.Customer)
	g.AS(cloudflare).Originated = []netip.Prefix{pfx("103.21.244.0/24")}
	g.AS(att).Policy = CustomerExempt()
	g.AS(att).VRPs = vrps
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	// AT&T accepts the invalid customer route and propagates it onward.
	if !g.Reachable(att, ip("103.21.244.1")) {
		t.Fatal("customer-exempt AS should reach the invalid prefix")
	}
	if !g.Reachable(other, ip("103.21.244.1")) {
		t.Fatal("invalid route should propagate through the exempting AS")
	}
}
