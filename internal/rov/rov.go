// Package rov implements the Route Origin Validation policies an AS can
// apply at BGP import time. It covers the policy spectrum the paper
// observes in the wild (§7.6): full filtering, exempting customer routes
// (AT&T/Cogent-style), depreferencing instead of dropping ("prefer valid"),
// and no validation at all.
package rov

import (
	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
)

// Mode is what an AS does with an RPKI-invalid announcement.
type Mode uint8

// Policy modes.
const (
	// ModeAccept performs no origin validation (or ignores the result).
	ModeAccept Mode = iota
	// ModeDrop rejects invalid announcements at import.
	ModeDrop
	// ModePreferValid accepts invalid announcements but depreferences them
	// below any valid or not-found alternative.
	ModePreferValid
)

// preferValidPenalty pushes invalid routes below every relationship tier.
const preferValidPenalty = -1000

// Policy is a composable ROV import policy: a default mode with optional
// per-relationship and per-neighbor overrides (most specific wins).
type Policy struct {
	Default Mode
	ByRel   map[bgp.Relationship]Mode
	ByASN   map[inet.ASN]Mode
}

var _ bgp.ImportPolicy = (*Policy)(nil)

// Evaluate implements bgp.ImportPolicy.
func (p *Policy) Evaluate(local, neighbor inet.ASN, rel bgp.Relationship, ann bgp.Announcement, validity rpki.Validity) bgp.ImportDecision {
	mode := p.Default
	if m, ok := p.ByRel[rel]; ok {
		mode = m
	}
	if m, ok := p.ByASN[neighbor]; ok {
		mode = m
	}
	if validity != rpki.Invalid {
		return bgp.ImportDecision{Accept: true}
	}
	switch mode {
	case ModeDrop:
		return bgp.ImportDecision{Accept: false}
	case ModePreferValid:
		return bgp.ImportDecision{Accept: true, LocalPrefDelta: preferValidPenalty}
	default:
		return bgp.ImportDecision{Accept: true}
	}
}

// None returns the no-validation policy.
func None() *Policy { return &Policy{Default: ModeAccept} }

// Full returns the drop-invalid-everywhere policy.
func Full() *Policy { return &Policy{Default: ModeDrop} }

// CustomerExempt returns a policy that drops invalid routes from peers and
// providers but accepts them from customers — the profit-protecting
// exemption the paper confirms at AT&T, Cogent, ARNES and Forthnet.
func CustomerExempt() *Policy {
	return &Policy{
		Default: ModeDrop,
		ByRel:   map[bgp.Relationship]Mode{bgp.Customer: ModeAccept},
	}
}

// PreferValid returns the depreference-only policy.
func PreferValid() *Policy { return &Policy{Default: ModePreferValid} }

// Describe returns a short human-readable policy label used in reports.
func (p *Policy) Describe() string {
	if p == nil {
		return "none"
	}
	base := ""
	switch p.Default {
	case ModeDrop:
		base = "drop-invalid"
	case ModePreferValid:
		base = "prefer-valid"
	default:
		base = "none"
	}
	if m, ok := p.ByRel[bgp.Customer]; ok && m == ModeAccept && p.Default == ModeDrop {
		return "drop-invalid-customer-exempt"
	}
	if len(p.ByRel) > 0 || len(p.ByASN) > 0 {
		return base + "+overrides"
	}
	return base
}

// IsFiltering reports whether the policy ever drops or depreferences
// invalid routes (i.e. the AS "deploys ROV" in any form).
func (p *Policy) IsFiltering() bool {
	if p == nil {
		return false
	}
	if p.Default != ModeAccept {
		return true
	}
	for _, m := range p.ByRel {
		if m != ModeAccept {
			return true
		}
	}
	for _, m := range p.ByASN {
		if m != ModeAccept {
			return true
		}
	}
	return false
}
