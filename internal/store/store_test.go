package store

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
)

// testRecord builds a small hand-written round.
func testRecord(day int, scores map[inet.ASN]float64) *RoundRecord {
	rec := &RoundRecord{
		Day:              day,
		Status:           pipeline.RoundOK,
		TestPrefixes:     7,
		TNodes:           5,
		AllVVPs:          40,
		ConsistencyCenti: 9510,
		Evidence: Evidence{
			PairsMeasured: 100, PairsUsable: 93, PairsDiscarded: 7,
			Profile: "none",
		},
	}
	for asn, sc := range scores {
		rec.Entries = append(rec.Entries, Entry{
			ASN: asn, Centi: centi(sc), VVPs: 2,
			TNodesMeasured: 5, TNodesFiltered: int(sc * 5 / 100),
			Unanimous: true,
		})
	}
	return rec
}

func TestAppendReloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rounds := []map[inet.ASN]float64{
		{10: 0, 20: 50, 30: 100},
		{10: 20, 20: 50, 40: 99.99},
		{10: 20, 30: 100, 40: 0.01},
	}
	for i, sc := range rounds {
		if err := st.Append(testRecord(i*5, sc)); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]*RoundRecord, st.Rounds())
	for i := range want {
		want[i] = st.Round(i)
	}
	gen := st.Generation()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Rounds() != len(rounds) {
		t.Fatalf("reloaded %d rounds, want %d", re.Rounds(), len(rounds))
	}
	for i := range want {
		if !reflect.DeepEqual(re.Round(i), want[i]) {
			t.Fatalf("round %d mismatch after reload:\n got %+v\nwant %+v", i, re.Round(i), want[i])
		}
	}
	if re.Generation() == 0 || gen == 0 {
		t.Fatal("generation must advance with appends")
	}

	// Index semantics.
	if p, ok := re.Current(10); !ok || p.Round != 2 || p.Score() != 20 {
		t.Fatalf("Current(10) = %+v, %v", p, ok)
	}
	if p, ok := re.Current(20); !ok || p.Round != 1 || p.Score() != 50 {
		t.Fatalf("Current(20) = %+v, %v (must be last round the AS appeared in)", p, ok)
	}
	if _, ok := re.Current(999); ok {
		t.Fatal("Current of unknown ASN must miss")
	}
	if s := re.Series(10); len(s) != 3 || s[0].Score() != 0 || s[2].Round != 2 {
		t.Fatalf("Series(10) = %+v", s)
	}
	if e, ok := re.EntryAt(40, 1); !ok || e.Score() != 99.99 {
		t.Fatalf("EntryAt(40, 1) = %+v, %v", e, ok)
	}
	if _, ok := re.EntryAt(40, 0); ok {
		t.Fatal("EntryAt(40, 0) must miss: AS not scored in round 0")
	}

	// Appending after reload continues the history.
	if err := re.Append(testRecord(15, map[inet.ASN]float64{10: 30})); err != nil {
		t.Fatal(err)
	}
	if re.Rounds() != 4 || re.Round(3).Round != 3 {
		t.Fatalf("append after reload: rounds=%d", re.Rounds())
	}
}

func TestTopNAndDiff(t *testing.T) {
	st, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	must(t, st.Append(testRecord(0, map[inet.ASN]float64{1: 10, 2: 90, 3: 90, 4: 0})))
	must(t, st.Append(testRecord(5, map[inet.ASN]float64{1: 10, 2: 95, 5: 40})))

	top := st.TopN(2, true)
	if len(top) != 2 || top[0].ASN != 2 || top[1].ASN != 5 {
		t.Fatalf("TopN(2, protected) = %+v", top)
	}
	bottom := st.TopN(10, false)
	if len(bottom) != 3 || bottom[0].ASN != 1 {
		t.Fatalf("TopN(10, unprotected) = %+v", bottom)
	}

	diff, err := st.Diff(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// AS2 changed 90→95; AS3 and AS4 vanished; AS5 appeared; AS1 unchanged.
	wantKinds := map[inet.ASN]string{2: "changed", 3: "vanished", 4: "vanished", 5: "appeared"}
	if len(diff) != len(wantKinds) {
		t.Fatalf("diff = %+v", diff)
	}
	for _, d := range diff {
		switch wantKinds[d.ASN] {
		case "changed":
			if d.Appeared || d.Vanished || d.From.Score() != 90 || d.To.Score() != 95 {
				t.Fatalf("bad changed entry %+v", d)
			}
		case "vanished":
			if !d.Vanished {
				t.Fatalf("bad vanished entry %+v", d)
			}
		case "appeared":
			if !d.Appeared {
				t.Fatalf("bad appeared entry %+v", d)
			}
		default:
			t.Fatalf("unexpected diff ASN %v", d.ASN)
		}
	}
	if _, err := st.Diff(0, 7); err == nil {
		t.Fatal("out-of-range diff must error")
	}
}

func TestSegmentRollCompactReload(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{SegmentRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		must(t, st.Append(testRecord(i, map[inet.ASN]float64{10: float64(i * 10), 20: 50})))
	}
	if n := countSegs(t, dir); n != 4 {
		t.Fatalf("got %d segments before compaction, want 4", n)
	}
	want := snapshotRecords(st)
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := countSegs(t, dir); n != 1 {
		t.Fatalf("got %d segments after compaction, want 1", n)
	}
	if got := snapshotRecords(st); !reflect.DeepEqual(got, want) {
		t.Fatal("compaction changed logical content")
	}
	// Appends continue into the compacted segment, and reload sees all.
	must(t, st.Append(testRecord(7, map[inet.ASN]float64{10: 70})))
	must(t, st.Close())
	re, err := Open(dir, Config{SegmentRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Rounds() != 8 {
		t.Fatalf("reloaded %d rounds after compact+append, want 8", re.Rounds())
	}
	for i, rec := range want {
		if !reflect.DeepEqual(re.Round(i), rec) {
			t.Fatalf("round %d mismatch after compact+reload", i)
		}
	}
}

func TestFromSnapshot(t *testing.T) {
	snap := &core.Snapshot{
		Day:                    42,
		TestPrefixes:           9,
		AllVVPs:                33,
		ConsistentPairFraction: 0.951,
		Status:                 pipeline.RoundInsufficientTNodes,
		Reports: map[inet.ASN]*core.ASReport{
			7: {ASN: 7, Score: 62.5, VVPs: 3, TNodesMeasured: 8, TNodesFiltered: 5, Unanimous: true},
			3: {ASN: 3, Score: 0, VVPs: 2, TNodesMeasured: 4, Unanimous: false},
		},
		Metrics: &pipeline.Metrics{
			PairsMeasured: 50, PairsUsable: 44, PairsDiscarded: 6,
			Faults: pipeline.FaultMetrics{Profile: "paper", PairRetries: 4, VVPsChurned: 1},
		},
	}
	rec := FromSnapshot(snap)
	if rec.Day != 42 || rec.Status != pipeline.RoundInsufficientTNodes || rec.TestPrefixes != 9 || rec.AllVVPs != 33 {
		t.Fatalf("header fields: %+v", rec)
	}
	if rec.ConsistencyCenti != 9510 {
		t.Fatalf("consistency = %d", rec.ConsistencyCenti)
	}
	if len(rec.Entries) != 2 || rec.Entries[0].ASN != 3 || rec.Entries[1].ASN != 7 {
		t.Fatalf("entries must be ASN-sorted: %+v", rec.Entries)
	}
	if rec.Entries[1].Score() != 62.5 || !rec.Entries[1].Unanimous || rec.Entries[0].Unanimous {
		t.Fatalf("entry content: %+v", rec.Entries)
	}
	if rec.Evidence.Profile != "paper" || rec.Evidence.PairRetries != 4 || rec.Evidence.PairsDiscarded != 6 {
		t.Fatalf("evidence: %+v", rec.Evidence)
	}

	// Nil metrics must not panic and leaves zero evidence.
	snap.Metrics = nil
	if ev := FromSnapshot(snap).Evidence; ev != (Evidence{}) {
		t.Fatalf("evidence without metrics: %+v", ev)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SynthConfig{ASes: 50, Rounds: 6, Seed: 99}
	a, err := Open(t.TempDir(), Config{})
	must(t, err)
	defer a.Close()
	must(t, Synthesize(a, cfg))
	b, err := Open(t.TempDir(), Config{})
	must(t, err)
	defer b.Close()
	must(t, Synthesize(b, cfg))
	if !reflect.DeepEqual(snapshotRecords(a), snapshotRecords(b)) {
		t.Fatal("same seed must synthesize identical stores")
	}
	c, err := Open(t.TempDir(), Config{})
	must(t, err)
	defer c.Close()
	cfg.Seed = 100
	must(t, Synthesize(c, cfg))
	if reflect.DeepEqual(snapshotRecords(a), snapshotRecords(c)) {
		t.Fatal("different seeds must differ")
	}
	if a.Rounds() != 6 || len(a.Latest().Entries) != 50 {
		t.Fatalf("synthesized shape: rounds=%d entries=%d", a.Rounds(), len(a.Latest().Entries))
	}
}

// TestConcurrentAppendQuery exercises the live writer vs. reader contract
// under the race detector (make race runs this package with -race).
func TestConcurrentAppendQuery(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	must(t, Synthesize(st, SynthConfig{ASes: 30, Rounds: 1, Seed: 7}))

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			asn := inet.ASN(1000 + worker)
			for {
				select {
				case <-done:
					return
				default:
				}
				st.Current(asn)
				st.Series(asn)
				st.TopN(5, worker%2 == 0)
				if n := st.Rounds(); n >= 2 {
					if _, err := st.Diff(0, n-1); err != nil {
						t.Error(err)
						return
					}
				}
				st.Generation()
			}
		}(i)
	}
	for r := 0; r < 30; r++ {
		must(t, st.Append(testRecord(r, map[inet.ASN]float64{1000: float64(r % 100), 1001: 50})))
		if r == 15 {
			must(t, st.Compact())
		}
	}
	close(done)
	wg.Wait()
	if st.Rounds() != 31 {
		t.Fatalf("rounds = %d", st.Rounds())
	}
}

// TestQueryPathLockFree is the contention-free-read guard: the writer
// mutex is the only lock in the package, and no query may acquire it. Any
// regression that reintroduces locking on the read path (a helper that
// grabs mu, a delegate that forgets the snapshot) trips the counter.
func TestQueryPathLockFree(t *testing.T) {
	st, err := Open(t.TempDir(), Config{})
	must(t, err)
	defer st.Close()
	must(t, Synthesize(st, SynthConfig{ASes: 50, Rounds: 8, Seed: 3}))

	base := st.WriterLockAcquisitions()
	for i := 0; i < 1000; i++ {
		asn := inet.ASN(1000 + i%50)
		st.Generation()
		st.Rounds()
		st.Round(i % 8)
		st.Latest()
		st.Current(asn)
		st.Series(asn)
		st.EntryAt(asn, i%8)
		st.TopN(10, i%2 == 0)
		if _, err := st.Diff(0, 7); err != nil {
			t.Fatal(err)
		}
		v := st.View()
		v.Current(asn)
		v.TopN(5, true)
	}
	if got := st.WriterLockAcquisitions(); got != base {
		t.Fatalf("query path acquired %d locks (writer-lock count %d → %d); reads must be lock-free", got-base, base, got)
	}
}

// TestSnapshotConsistencyUnderAppendCompact is the torn-index guard for
// the lock-free read path: while one writer appends and compacts, readers
// grab Views and assert every publication is complete and
// generation-consistent — the generation equals the round count, the
// latest record's index matches, and the history index agrees with the
// records for an AS present in every round. Runs under `make race`.
func TestSnapshotConsistencyUnderAppendCompact(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentRounds: 4})
	must(t, err)
	defer st.Close()
	must(t, st.Append(testRecord(0, map[inet.ASN]float64{1000: 10, 1001: 50})))

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				v := st.View()
				n := v.Rounds()
				if got := v.Generation(); got != uint64(n) {
					t.Errorf("torn snapshot: generation %d with %d rounds", got, n)
					return
				}
				latest := v.Latest()
				if latest == nil || latest.Round != uint32(n-1) {
					t.Errorf("torn snapshot: latest %+v with %d rounds", latest, n)
					return
				}
				// AS 1000 is in every appended round: its history must
				// track the round count exactly, ending at the latest
				// round with the latest round's score.
				hist := v.Series(1000)
				if len(hist) != n {
					t.Errorf("torn index: %d history points for 1000 with %d rounds", len(hist), n)
					return
				}
				last := hist[len(hist)-1]
				if last.Round != uint32(n-1) {
					t.Errorf("torn index: history ends at round %d, latest is %d", last.Round, n-1)
					return
				}
				if e, ok := latest.Entry(1000); !ok || e.Centi != last.Centi {
					t.Errorf("torn index: history score %d, record score %+v ok=%v", last.Centi, e, ok)
					return
				}
			}
		}()
	}
	for r := 1; r < 40; r++ {
		must(t, st.Append(testRecord(r, map[inet.ASN]float64{1000: float64(r % 100), 1001: 50, inet.ASN(2000 + r): 75})))
		if r%10 == 0 {
			must(t, st.Compact())
		}
	}
	close(done)
	wg.Wait()
	if st.Rounds() != 40 {
		t.Fatalf("rounds = %d", st.Rounds())
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func countSegs(t *testing.T, dir string) int {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.rvs"))
	if err != nil {
		t.Fatal(err)
	}
	return len(names)
}

func snapshotRecords(st *Store) []*RoundRecord {
	out := make([]*RoundRecord, st.Rounds())
	for i := range out {
		out[i] = st.Round(i)
	}
	return out
}
