package store

import (
	"math/rand"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
	"github.com/netsec-lab/rovista/internal/seedmix"
)

// SynthConfig shapes a synthetic history.
type SynthConfig struct {
	ASes   int
	Rounds int
	Seed   int64
	// DayStep is the simulated-day gap between rounds (default 5).
	DayStep int
	// ChurnProb is the chance an AS's score moves between rounds; moves
	// are small random walks with occasional full flips, mimicking the
	// slow drift plus deployment jumps real histories show.
	ChurnProb float64
}

// Synthesize fills st with a deterministic pseudo-random history: same
// config (including seed) → byte-identical store. It exists so the serving
// layer can be benchmarked and smoke-tested at any scale without paying for
// world construction, the same way the fault profiles made noise seedable.
func Synthesize(st *Store, cfg SynthConfig) error {
	if cfg.DayStep <= 0 {
		cfg.DayStep = 5
	}
	if cfg.ChurnProb == 0 {
		cfg.ChurnProb = 0.15
	}
	rng := rand.New(seedmix.NewSource(seedmix.Mix(cfg.Seed, 0x5708e)))
	scores := make([]float64, cfg.ASes)
	for i := range scores {
		// Bimodal base population: most ASes unprotected, a protected tail
		// (the paper's Figure-6 shape).
		if rng.Float64() < 0.25 {
			scores[i] = 70 + 30*rng.Float64()
		} else {
			scores[i] = 40 * rng.Float64()
		}
	}
	for r := 0; r < cfg.Rounds; r++ {
		rec := &RoundRecord{
			Day:              r * cfg.DayStep,
			Status:           pipeline.RoundOK,
			TestPrefixes:     8 + rng.Intn(4),
			TNodes:           6 + rng.Intn(6),
			AllVVPs:          cfg.ASes * 2,
			ConsistencyCenti: uint16(9300 + rng.Intn(600)),
			Evidence: Evidence{
				PairsMeasured:  cfg.ASes * 6,
				PairsUsable:    cfg.ASes*6 - rng.Intn(cfg.ASes+1),
				Profile:        "synthetic",
				PairRetries:    rng.Intn(cfg.ASes/4 + 1),
				PairsRecovered: rng.Intn(cfg.ASes/8 + 1),
			},
		}
		rec.Evidence.PairsDiscarded = rec.Evidence.PairsMeasured - rec.Evidence.PairsUsable
		rec.Entries = make([]Entry, 0, cfg.ASes)
		for i := 0; i < cfg.ASes; i++ {
			if r > 0 && rng.Float64() < cfg.ChurnProb {
				if rng.Float64() < 0.05 {
					scores[i] = 100 - scores[i] // deployment / rollback jump
				} else {
					scores[i] += 8 * (rng.Float64() - 0.5)
				}
				if scores[i] < 0 {
					scores[i] = 0
				}
				if scores[i] > 100 {
					scores[i] = 100
				}
			}
			tm := 4 + rng.Intn(8)
			tf := int(float64(tm)*scores[i]/100 + 0.5)
			rec.Entries = append(rec.Entries, Entry{
				ASN:            inet.ASN(1000 + i),
				Centi:          centi(scores[i]),
				VVPs:           2 + rng.Intn(3),
				TNodesMeasured: tm,
				TNodesFiltered: tf,
				Unanimous:      rng.Float64() > 0.05,
			})
		}
		if err := st.Append(rec); err != nil {
			return err
		}
	}
	return nil
}
