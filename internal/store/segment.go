package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
)

// Segment file layout:
//
//	header (16 bytes):
//	  magic     "ROVSEG01"        8 bytes
//	  version   uint16 LE         (currently 1)
//	  flags     uint16 LE         (reserved, 0)
//	  baseRound uint32 LE         (round index of the first record)
//	record, repeated:
//	  length    uint32 LE         (payload bytes)
//	  crc32     uint32 LE         (IEEE, over the payload)
//	  payload   varint-encoded RoundRecord
//
// A record is only trusted when its frame is complete AND its CRC matches,
// so any prefix-truncation of the file (the crash shape of append-only
// writes) loses at most the partially-written tail record.

const (
	segMagic      = "ROVSEG01"
	segVersion    = 1
	segHeaderSize = 16
	frameSize     = 8
	// maxPayload bounds a single record frame; a 50k-AS round encodes in
	// well under 1 MiB, so anything near this is corruption, not data.
	maxPayload = 1 << 28
)

// encodeSegmentHeader renders the 16-byte header.
func encodeSegmentHeader(baseRound uint32) []byte {
	h := make([]byte, segHeaderSize)
	copy(h, segMagic)
	binary.LittleEndian.PutUint16(h[8:], segVersion)
	binary.LittleEndian.PutUint16(h[10:], 0)
	binary.LittleEndian.PutUint32(h[12:], baseRound)
	return h
}

// parseSegmentHeader validates the header and returns the base round.
func parseSegmentHeader(h []byte) (baseRound uint32, err error) {
	if len(h) < segHeaderSize || string(h[:8]) != segMagic {
		return 0, fmt.Errorf("store: bad segment magic")
	}
	if v := binary.LittleEndian.Uint16(h[8:]); v != segVersion {
		return 0, fmt.Errorf("store: unsupported segment version %d", v)
	}
	return binary.LittleEndian.Uint32(h[12:]), nil
}

// appendUvarint / appendSvarint are the payload primitives.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendSvarint(b []byte, v int64) []byte  { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeRecord renders a record's payload (excluding the frame).
// Entries are delta-encoded: ASNs as ascending deltas, scores as signed
// deltas from the previous entry's centi-score — both compress the dense,
// slowly-varying per-AS tables a longitudinal archive accumulates.
func encodeRecord(rec *RoundRecord) []byte {
	b := make([]byte, 0, 64+12*len(rec.Entries))
	b = appendUvarint(b, uint64(rec.Round))
	b = appendUvarint(b, uint64(rec.Day))
	b = append(b, byte(rec.Status))
	b = appendUvarint(b, uint64(rec.TestPrefixes))
	b = appendUvarint(b, uint64(rec.TNodes))
	b = appendUvarint(b, uint64(rec.AllVVPs))
	b = appendUvarint(b, uint64(rec.ConsistencyCenti))

	ev := rec.Evidence
	b = appendUvarint(b, uint64(ev.PairsMeasured))
	b = appendUvarint(b, uint64(ev.PairsUsable))
	b = appendUvarint(b, uint64(ev.PairsDiscarded))
	b = appendString(b, ev.Profile)
	b = appendUvarint(b, uint64(ev.PairRetries))
	b = appendUvarint(b, uint64(ev.PairsRecovered))
	b = appendUvarint(b, uint64(ev.VVPsChurned))
	b = appendUvarint(b, uint64(ev.VVPsUnstable))
	b = appendUvarint(b, uint64(ev.VVPsRequalified))
	b = appendUvarint(b, uint64(ev.VVPsDropped))
	b = appendUvarint(b, uint64(ev.PathCacheFlaps))

	b = appendUvarint(b, uint64(len(rec.Entries)))
	prevASN, prevCenti := uint64(0), int64(0)
	for _, e := range rec.Entries {
		b = appendUvarint(b, uint64(e.ASN)-prevASN)
		b = appendSvarint(b, int64(e.Centi)-prevCenti)
		b = appendUvarint(b, uint64(e.VVPs))
		b = appendUvarint(b, uint64(e.TNodesMeasured))
		b = appendUvarint(b, uint64(e.TNodesFiltered))
		var flags byte
		if e.Unanimous {
			flags |= 1
		}
		b = append(b, flags)
		prevASN, prevCenti = uint64(e.ASN), int64(e.Centi)
	}
	return b
}

// cursor is a checked payload reader: the first malformed read poisons it.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail() uint64 {
	if c.err == nil {
		c.err = fmt.Errorf("store: truncated record payload at offset %d", c.off)
	}
	return 0
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return c.fail()
	}
	c.off += n
	return v
}

func (c *cursor) svarint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return int64(c.fail())
	}
	c.off += n
	return v
}

func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		return byte(c.fail())
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) str() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if c.off+int(n) > len(c.b) || n > maxPayload {
		c.fail()
		return ""
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

// decodeRecord parses one payload back into a record.
func decodeRecord(payload []byte) (*RoundRecord, error) {
	c := &cursor{b: payload}
	rec := &RoundRecord{
		Round:        uint32(c.uvarint()),
		Day:          int(c.uvarint()),
		Status:       pipeline.RoundStatus(c.byte()),
		TestPrefixes: int(c.uvarint()),
		TNodes:       int(c.uvarint()),
		AllVVPs:      int(c.uvarint()),
	}
	rec.ConsistencyCenti = uint16(c.uvarint())
	rec.Evidence = Evidence{
		PairsMeasured:  int(c.uvarint()),
		PairsUsable:    int(c.uvarint()),
		PairsDiscarded: int(c.uvarint()),
		Profile:        c.str(),
	}
	rec.Evidence.PairRetries = int(c.uvarint())
	rec.Evidence.PairsRecovered = int(c.uvarint())
	rec.Evidence.VVPsChurned = int(c.uvarint())
	rec.Evidence.VVPsUnstable = int(c.uvarint())
	rec.Evidence.VVPsRequalified = int(c.uvarint())
	rec.Evidence.VVPsDropped = int(c.uvarint())
	rec.Evidence.PathCacheFlaps = int(c.uvarint())

	n := c.uvarint()
	if c.err != nil {
		return nil, c.err
	}
	if n > maxPayload/7 {
		return nil, fmt.Errorf("store: implausible entry count %d", n)
	}
	rec.Entries = make([]Entry, 0, n)
	prevASN, prevCenti := uint64(0), int64(0)
	for i := uint64(0); i < n; i++ {
		asn := prevASN + c.uvarint()
		cs := prevCenti + c.svarint()
		e := Entry{
			ASN:            inet.ASN(asn),
			Centi:          uint16(cs),
			VVPs:           int(c.uvarint()),
			TNodesMeasured: int(c.uvarint()),
			TNodesFiltered: int(c.uvarint()),
			Unanimous:      c.byte()&1 != 0,
		}
		if c.err != nil {
			return nil, c.err
		}
		if cs < 0 || cs > 10000 {
			return nil, fmt.Errorf("store: centi-score %d out of range", cs)
		}
		if i > 0 && asn <= prevASN {
			return nil, fmt.Errorf("store: entries not strictly ascending at ASN %d", asn)
		}
		rec.Entries = append(rec.Entries, e)
		prevASN, prevCenti = asn, cs
	}
	if c.err != nil {
		return nil, c.err
	}
	return rec, nil
}

// frameRecord wraps a payload in its length+CRC frame.
func frameRecord(payload []byte) []byte {
	out := make([]byte, frameSize, frameSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// loadSegment reads one segment file, returning its intact records in
// order and the byte offset of the last intact record's end. A truncated
// or corrupt tail is not an error: decoding simply stops there, and the
// returned offset lets the caller repair the file before appending.
// expectRound is the round index the first record must carry (contiguity
// across segments); a mismatch makes the whole segment unusable.
func loadSegment(path string, expectRound uint32) (recs []*RoundRecord, validEnd int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < segHeaderSize {
		return nil, 0, nil // truncated inside the header: no intact records
	}
	base, err := parseSegmentHeader(data)
	if err != nil || base != expectRound {
		return nil, 0, nil // foreign or corrupt header: treat as empty
	}
	off := int64(segHeaderSize)
	next := expectRound
	for {
		if int64(len(data))-off < frameSize {
			break
		}
		ln := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if ln > maxPayload || int64(len(data))-off-frameSize < int64(ln) {
			break
		}
		payload := data[off+frameSize : off+frameSize+int64(ln)]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		rec, derr := decodeRecord(payload)
		if derr != nil || rec.Round != next {
			break
		}
		recs = append(recs, rec)
		off += frameSize + int64(ln)
		next++
	}
	return recs, off, nil
}

// copyPayloadTo streams a framed record to w.
func writeFramed(w io.Writer, rec *RoundRecord) (int, error) {
	return w.Write(frameRecord(encodeRecord(rec)))
}
