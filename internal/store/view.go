package store

import (
	"fmt"
	"sort"

	"github.com/netsec-lab/rovista/internal/inet"
)

// viewState is the store's complete read state — the rounds slice, the
// per-AS history index, and the generation — published as one immutable
// unit behind Store.state. Readers load the pointer once and see a
// self-consistent world: the generation always equals the number of rounds
// the snapshot holds, and the history index always matches the records.
// Writers never mutate a published viewState; Append builds the successor
// copy-on-write under the writer mutex and publishes it atomically.
//
// Copy-on-write details: the records slice is re-allocated on every
// publish (full-slice append), so a published slice header is frozen. The
// hist map header is copied per publish; the per-AS point slices are
// extended with plain append — when a slice has spare capacity the new
// point lands in backing-array memory beyond every published reader's
// length, which no reader can observe, so sharing the array is safe.
type viewState struct {
	records []*RoundRecord
	hist    map[inet.ASN][]HistoryPoint
	gen     uint64
}

// View is an immutable, lock-free read view of the store: every method
// resolves against the same publication, so a sequence of calls on one
// View can never observe a torn or cross-generation state (the
// generation-then-query race the old RWMutex API had). Obtain with
// Store.View; the zero value is empty but usable.
type View struct {
	v *viewState
}

// emptyView backs zero-value and pre-publication views.
var emptyView = &viewState{}

func (w View) state() *viewState {
	if w.v == nil {
		return emptyView
	}
	return w.v
}

// Generation returns the view's publication counter: it changes exactly
// when a round is appended, and equals the number of rounds the view
// holds. Caches key their contents on it.
func (w View) Generation() uint64 { return w.state().gen }

// Rounds returns the number of archived rounds in the view.
func (w View) Rounds() int { return len(w.state().records) }

// Round returns archived round i, or nil when out of range.
func (w View) Round(i int) *RoundRecord {
	recs := w.state().records
	if i < 0 || i >= len(recs) {
		return nil
	}
	return recs[i]
}

// Latest returns the most recent round, or nil on an empty view.
func (w View) Latest() *RoundRecord {
	recs := w.state().records
	if len(recs) == 0 {
		return nil
	}
	return recs[len(recs)-1]
}

// Current returns an AS's most recent score and the round it came from.
func (w View) Current(asn inet.ASN) (HistoryPoint, bool) {
	h := w.state().hist[asn]
	if len(h) == 0 {
		return HistoryPoint{}, false
	}
	return h[len(h)-1], true
}

// Series returns an AS's full score history, sorted by round. The slice is
// shared with the store: read-only.
func (w View) Series(asn inet.ASN) []HistoryPoint { return w.state().hist[asn] }

// EntryAt is the (ASN, round) point lookup: the AS's full entry in that
// round, if it was scored there.
func (w View) EntryAt(asn inet.ASN, round int) (Entry, bool) {
	recs := w.state().records
	if round < 0 || round >= len(recs) {
		return Entry{}, false
	}
	return recs[round].Entry(asn)
}

// TopN returns the n highest-scoring (protected=true) or lowest-scoring
// entries of the latest round, ties broken by ascending ASN.
func (w View) TopN(n int, protected bool) []Entry {
	recs := w.state().records
	if len(recs) == 0 || n <= 0 {
		return nil
	}
	latest := recs[len(recs)-1]
	out := make([]Entry, len(latest.Entries))
	copy(out, latest.Entries)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Centi != out[j].Centi {
			if protected {
				return out[i].Centi > out[j].Centi
			}
			return out[i].Centi < out[j].Centi
		}
		return out[i].ASN < out[j].ASN
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Diff returns the per-AS changes from round `from` to round `to`: score
// movements plus appearances and disappearances, sorted by ASN.
func (w View) Diff(from, to int) ([]DiffEntry, error) {
	recs := w.state().records
	if from < 0 || from >= len(recs) || to < 0 || to >= len(recs) {
		return nil, fmt.Errorf("store: diff rounds (%d, %d) outside history [0, %d)", from, to, len(recs))
	}
	a, b := recs[from].Entries, recs[to].Entries
	var out []DiffEntry
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].ASN < b[j].ASN):
			out = append(out, DiffEntry{ASN: a[i].ASN, From: a[i], Vanished: true})
			i++
		case i >= len(a) || b[j].ASN < a[i].ASN:
			out = append(out, DiffEntry{ASN: b[j].ASN, To: b[j], Appeared: true})
			j++
		default:
			if a[i].Centi != b[j].Centi || a[i].Unanimous != b[j].Unanimous {
				out = append(out, DiffEntry{ASN: a[i].ASN, From: a[i], To: b[j]})
			}
			i++
			j++
		}
	}
	return out, nil
}
