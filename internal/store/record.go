// Package store is rovistad's longitudinal snapshot store: an append-only,
// crash-tolerant archive of measurement rounds. The paper's public service
// publishes per-AS ROV ratios continuously; Reuter et al.'s critique of
// point-in-time ROV classification is exactly why the store keeps per-round
// *evidence* (RoundStatus, fault/discard counters) next to every score —
// a consumer must be able to tell a confident 0% from a degraded round.
//
// On disk the store is a directory of segment files, each a versioned
// header followed by length+CRC-framed varint-encoded round records (scores
// delta-encoded across the ASN-sorted entry list). Reload tolerates a
// truncated tail — the crash shape of an append-only file — recovering
// exactly the rounds whose records are intact. In memory the store keeps
// the decoded rounds plus a per-AS history index, so queries are O(log n)
// lookups under an RWMutex and never touch the disk.
package store

import (
	"math"
	"sort"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
)

// Entry is one AS's result inside a round record. Scores are stored in
// centi-points (0..10000) so records stay integral and delta-encodable;
// the ±0.005 quantisation is far below the measurement's own noise floor.
type Entry struct {
	ASN   inet.ASN
	Centi uint16 // protection score × 100
	VVPs  int
	// TNodesMeasured / TNodesFiltered give the score's denominator and
	// numerator, preserved so history stays re-derivable.
	TNodesMeasured, TNodesFiltered int
	// Unanimous is false when at least one tNode was discarded for vVP
	// disagreement.
	Unanimous bool
}

// Score returns the protection score in [0, 100].
func (e Entry) Score() float64 { return float64(e.Centi) / 100 }

// Evidence is the round's fault/discard provenance: what the pipeline
// measured, what it threw away, and what the fault layer did. It is the
// longitudinal answer to "can I trust this round's scores".
type Evidence struct {
	PairsMeasured, PairsUsable, PairsDiscarded int
	// Profile names the armed fault profile ("" or "none" when clean).
	Profile                                    string
	PairRetries, PairsRecovered                int
	VVPsChurned                                int
	VVPsUnstable, VVPsRequalified, VVPsDropped int
	PathCacheFlaps                             int
}

// RoundRecord is one archived measurement round. Entries are sorted by
// ascending ASN; Round is assigned by Store.Append and is the record's
// index in the store's contiguous history.
type RoundRecord struct {
	Round uint32
	Day   int
	// Status is the round's typed health verdict; a degraded round carries
	// its entries (possibly none) but must not be read as zero protection.
	Status pipeline.RoundStatus
	// TestPrefixes / TNodes / AllVVPs are the round's population counts.
	TestPrefixes, TNodes, AllVVPs int
	// ConsistencyCenti is the consistent-cell fraction × 10000.
	ConsistencyCenti uint16
	Evidence         Evidence
	Entries          []Entry
}

// Consistency returns the consistent-pair fraction in [0, 1].
func (r *RoundRecord) Consistency() float64 { return float64(r.ConsistencyCenti) / 10000 }

// Entry returns the record's entry for asn, by binary search.
func (r *RoundRecord) Entry(asn inet.ASN) (Entry, bool) {
	i := sort.Search(len(r.Entries), func(i int) bool { return r.Entries[i].ASN >= asn })
	if i < len(r.Entries) && r.Entries[i].ASN == asn {
		return r.Entries[i], true
	}
	return Entry{}, false
}

// centi quantises a score in [0, 100] to centi-points.
func centi(score float64) uint16 {
	c := math.Round(score * 100)
	if c < 0 {
		return 0
	}
	if c > 10000 {
		return 10000
	}
	return uint16(c)
}

// FromSnapshot converts a measurement round's snapshot into an archivable
// record (Round is left zero; Append assigns it).
func FromSnapshot(snap *core.Snapshot) *RoundRecord {
	rec := &RoundRecord{
		Day:              snap.Day,
		Status:           snap.Status,
		TestPrefixes:     snap.TestPrefixes,
		TNodes:           len(snap.TNodes),
		AllVVPs:          snap.AllVVPs,
		ConsistencyCenti: centi(snap.ConsistentPairFraction * 100),
	}
	if m := snap.Metrics; m != nil {
		rec.Evidence = Evidence{
			PairsMeasured:   m.PairsMeasured,
			PairsUsable:     m.PairsUsable,
			PairsDiscarded:  m.PairsDiscarded,
			Profile:         m.Faults.Profile,
			PairRetries:     m.Faults.PairRetries,
			PairsRecovered:  m.Faults.PairsRecovered,
			VVPsChurned:     m.Faults.VVPsChurned,
			VVPsUnstable:    m.Faults.VVPsUnstable,
			VVPsRequalified: m.Faults.VVPsRequalified,
			VVPsDropped:     m.Faults.VVPsDropped,
			PathCacheFlaps:  m.Faults.PathCacheFlaps,
		}
	}
	rec.Entries = make([]Entry, 0, len(snap.Reports))
	for asn, rep := range snap.Reports {
		rec.Entries = append(rec.Entries, Entry{
			ASN:            asn,
			Centi:          centi(rep.Score),
			VVPs:           rep.VVPs,
			TNodesMeasured: rep.TNodesMeasured,
			TNodesFiltered: rep.TNodesFiltered,
			Unanimous:      rep.Unanimous,
		})
	}
	sort.Slice(rec.Entries, func(i, j int) bool { return rec.Entries[i].ASN < rec.Entries[j].ASN })
	return rec
}
