package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/netsec-lab/rovista/internal/inet"
)

// Config tunes a store.
type Config struct {
	// SegmentRounds is the number of rounds per segment file before the
	// store rolls to a new one; 0 uses the default (64).
	SegmentRounds int
	// Sync fsyncs the active segment after every append. Off by default:
	// the framing already confines a crash to the tail record, and the
	// serving daemon's data is regenerable.
	Sync bool
}

func (c Config) withDefaults() Config {
	if c.SegmentRounds <= 0 {
		c.SegmentRounds = 64
	}
	return c
}

// Store is the longitudinal archive: rounds 0..Rounds()-1, contiguous,
// append-only. All methods are safe for concurrent use; queries proceed
// under a read lock while one writer appends. Returned records and slices
// share the store's memory and must be treated as read-only.
type Store struct {
	dir string
	cfg Config

	mu      sync.RWMutex
	records []*RoundRecord
	// hist is the (ASN, round) index: per-AS history points sorted by
	// round, holding the quantised score so timeseries queries never
	// touch the full records.
	hist map[inet.ASN][]HistoryPoint
	gen  uint64

	active       *os.File
	activeRounds int // records in the active segment
	// appendErr poisons the store after an unrecoverable write failure
	// (a torn frame that could not be truncated away): further Appends
	// fail instead of silently writing after garbage that reload would
	// stop at, dropping everything behind it.
	appendErr error
}

// HistoryPoint is one (round, score) sample of an AS's history.
type HistoryPoint struct {
	Round uint32
	Centi uint16
}

// Score returns the point's protection score in [0, 100].
func (p HistoryPoint) Score() float64 { return float64(p.Centi) / 100 }

// segName names the segment whose first record is round base. Zero-padded
// so lexical order is round order.
func segName(base uint32) string { return fmt.Sprintf("seg-%08d.rvs", base) }

// Open opens (creating if needed) a store rooted at dir and reloads every
// intact round. Reload is crash-safe: a truncated or corrupt tail in a
// segment ends recovery at the last intact record; the damaged tail — and
// any later, now-unreachable segment files — are removed so the on-disk
// state matches the recovered history before the next append.
func Open(dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, cfg: cfg, hist: make(map[inet.ASN][]HistoryPoint)}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.rvs"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)

	next := uint32(0)
	lastPath, lastEnd, lastSize := "", int64(0), int64(0)
	lastRounds := 0
	orphans := []string{}
	broken := false
	for _, path := range names {
		if broken {
			orphans = append(orphans, path)
			continue
		}
		recs, validEnd, err := loadSegment(path, next)
		if err != nil {
			return nil, fmt.Errorf("store: reading %s: %w", path, err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			s.index(rec)
		}
		next += uint32(len(recs))
		if len(recs) == 0 && validEnd < segHeaderSize {
			// Nothing recoverable (header lost): discard the file entirely.
			orphans = append(orphans, path)
			broken = true
			continue
		}
		lastPath, lastEnd, lastSize, lastRounds = path, validEnd, fi.Size(), len(recs)
		if validEnd < fi.Size() {
			// Truncated tail: later segments can no longer be contiguous.
			broken = true
		}
	}
	for _, path := range orphans {
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("store: removing orphaned %s: %w", path, err)
		}
	}

	// Repair the tail unconditionally: whatever follows the last intact
	// record is crash debris even when the segment counts as full under
	// the *current* config (on-disk segments may hold more rounds than
	// cfg.SegmentRounds if the store was written with a larger setting).
	// Leaving it in place would make a later reload stop at the torn
	// frame and orphan-delete every newer, valid segment.
	if lastPath != "" && lastEnd < lastSize {
		if err := os.Truncate(lastPath, lastEnd); err != nil {
			return nil, err
		}
	}

	// Reopen the last segment for appending, unless it is already full —
	// then the next append starts a fresh segment.
	if lastPath != "" && lastRounds < cfg.SegmentRounds {
		f, err := os.OpenFile(lastPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		s.active = f
		s.activeRounds = lastRounds
	}
	return s, nil
}

// index merges one record into the in-memory state (caller holds mu or is
// still single-threaded in Open).
func (s *Store) index(rec *RoundRecord) {
	s.records = append(s.records, rec)
	for _, e := range rec.Entries {
		s.hist[e.ASN] = append(s.hist[e.ASN], HistoryPoint{Round: rec.Round, Centi: e.Centi})
	}
	s.gen++
}

// Close flushes and closes the active segment. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	err := s.active.Close()
	s.active = nil
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Append archives rec as the next round, assigning rec.Round, persisting it
// to the active segment (rolling to a new segment when full) and merging it
// into the in-memory index. The store takes ownership of rec.
func (s *Store) Append(rec *RoundRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.appendErr != nil {
		return s.appendErr
	}
	rec.Round = uint32(len(s.records))
	sort.Slice(rec.Entries, func(i, j int) bool { return rec.Entries[i].ASN < rec.Entries[j].ASN })
	for i := 1; i < len(rec.Entries); i++ {
		if rec.Entries[i].ASN == rec.Entries[i-1].ASN {
			return fmt.Errorf("store: duplicate ASN %v in round %d", rec.Entries[i].ASN, rec.Round)
		}
	}

	if s.active != nil && s.activeRounds >= s.cfg.SegmentRounds {
		if err := s.active.Close(); err != nil {
			return err
		}
		s.active = nil
	}
	if s.active == nil {
		f, err := os.OpenFile(filepath.Join(s.dir, segName(rec.Round)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(encodeSegmentHeader(rec.Round)); err != nil {
			f.Close()
			return err
		}
		s.active = f
		s.activeRounds = 0
	}
	// Remember the pre-write end so a partial write (ENOSPC, I/O error)
	// can be rolled back: a torn frame left in place would make reload
	// stop there, silently dropping every later round Append reported as
	// persisted.
	off, err := s.active.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := writeFramed(s.active, rec); err != nil {
		s.truncateActive(off)
		return err
	}
	if s.cfg.Sync {
		if err := s.active.Sync(); err != nil {
			s.truncateActive(off)
			return err
		}
	}
	s.activeRounds++
	s.index(rec)
	return nil
}

// truncateActive discards the bytes a failed append left beyond off,
// restoring the active segment to a clean frame boundary. If even the
// truncate fails the segment cannot be trusted: close it and poison the
// store (caller holds mu).
func (s *Store) truncateActive(off int64) {
	if err := s.active.Truncate(off); err != nil {
		s.active.Close()
		s.active = nil
		s.appendErr = fmt.Errorf("store: active segment unrecoverable after failed append: %w", err)
	}
}

// Compact rewrites the whole history into a single segment file and removes
// the old ones, reclaiming the per-segment overhead and the fragmentation
// left by small SegmentRounds. Logical content and generation are
// unchanged; concurrent queries keep working throughout (they read the
// in-memory index), and appends resume into the compacted segment.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.records) == 0 {
		return nil
	}
	tmp := filepath.Join(s.dir, "compact.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSegmentHeader(0)); err != nil {
		f.Close()
		return err
	}
	for _, rec := range s.records {
		if _, err := writeFramed(f, rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	old, err := filepath.Glob(filepath.Join(s.dir, "seg-*.rvs"))
	if err != nil {
		return err
	}
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, segName(0))); err != nil {
		return err
	}
	for _, path := range old {
		if path == filepath.Join(s.dir, segName(0)) {
			continue
		}
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	a, err := os.OpenFile(filepath.Join(s.dir, segName(0)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.active = a
	s.activeRounds = len(s.records)
	return nil
}

// Generation returns a counter that changes whenever a round is appended.
// Caches key their contents on it.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// Rounds returns the number of archived rounds.
func (s *Store) Rounds() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Round returns archived round i, or nil when out of range.
func (s *Store) Round(i int) *RoundRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.records) {
		return nil
	}
	return s.records[i]
}

// Latest returns the most recent round, or nil on an empty store.
func (s *Store) Latest() *RoundRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.records) == 0 {
		return nil
	}
	return s.records[len(s.records)-1]
}

// Current returns an AS's most recent score and the round it came from.
func (s *Store) Current(asn inet.ASN) (HistoryPoint, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.hist[asn]
	if len(h) == 0 {
		return HistoryPoint{}, false
	}
	return h[len(h)-1], true
}

// Series returns an AS's full score history, sorted by round. The slice is
// shared with the store: read-only.
func (s *Store) Series(asn inet.ASN) []HistoryPoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hist[asn]
}

// EntryAt is the (ASN, round) point lookup: the AS's full entry in that
// round, if it was scored there.
func (s *Store) EntryAt(asn inet.ASN, round int) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if round < 0 || round >= len(s.records) {
		return Entry{}, false
	}
	return s.records[round].Entry(asn)
}

// TopN returns the n highest-scoring (protected=true) or lowest-scoring
// entries of the latest round, ties broken by ascending ASN.
func (s *Store) TopN(n int, protected bool) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.records) == 0 || n <= 0 {
		return nil
	}
	latest := s.records[len(s.records)-1]
	out := make([]Entry, len(latest.Entries))
	copy(out, latest.Entries)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Centi != out[j].Centi {
			if protected {
				return out[i].Centi > out[j].Centi
			}
			return out[i].Centi < out[j].Centi
		}
		return out[i].ASN < out[j].ASN
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// DiffEntry is one AS's change between two rounds.
type DiffEntry struct {
	ASN      inet.ASN
	From, To Entry
	// Appeared / Vanished flag ASes scored in only one of the rounds
	// (the zero-valued side's Entry is meaningless then).
	Appeared, Vanished bool
}

// Diff returns the per-AS changes from round `from` to round `to`: score
// movements plus appearances and disappearances, sorted by ASN.
func (s *Store) Diff(from, to int) ([]DiffEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if from < 0 || from >= len(s.records) || to < 0 || to >= len(s.records) {
		return nil, fmt.Errorf("store: diff rounds (%d, %d) outside history [0, %d)", from, to, len(s.records))
	}
	a, b := s.records[from].Entries, s.records[to].Entries
	var out []DiffEntry
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].ASN < b[j].ASN):
			out = append(out, DiffEntry{ASN: a[i].ASN, From: a[i], Vanished: true})
			i++
		case i >= len(a) || b[j].ASN < a[i].ASN:
			out = append(out, DiffEntry{ASN: b[j].ASN, To: b[j], Appeared: true})
			j++
		default:
			if a[i].Centi != b[j].Centi || a[i].Unanimous != b[j].Unanimous {
				out = append(out, DiffEntry{ASN: a[i].ASN, From: a[i], To: b[j]})
			}
			i++
			j++
		}
	}
	return out, nil
}
