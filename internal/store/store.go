package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/netsec-lab/rovista/internal/inet"
)

// Config tunes a store.
type Config struct {
	// SegmentRounds is the number of rounds per segment file before the
	// store rolls to a new one; 0 uses the default (64).
	SegmentRounds int
	// Sync fsyncs the active segment after every append. Off by default:
	// the framing already confines a crash to the tail record, and the
	// serving daemon's data is regenerable.
	Sync bool
}

func (c Config) withDefaults() Config {
	if c.SegmentRounds <= 0 {
		c.SegmentRounds = 64
	}
	return c
}

// Store is the longitudinal archive: rounds 0..Rounds()-1, contiguous,
// append-only. All methods are safe for concurrent use. Reads are
// lock-free: the read state (rounds, per-AS history index, generation) is
// an immutable snapshot behind an atomic pointer, so queries proceed at
// memory speed regardless of writer activity. Append/Compact serialize on
// a writer mutex, build the successor snapshot copy-on-write, and publish
// it atomically. Returned records and slices share the store's memory and
// must be treated as read-only.
type Store struct {
	dir string
	cfg Config

	// state is the published read snapshot; see viewState for the
	// immutability contract.
	state atomic.Pointer[viewState]
	// publishes counts snapshot publications (observability: exposed by
	// the API under /metrics as store_snapshot_publishes).
	publishes atomic.Uint64
	// writerLocks counts writer-mutex acquisitions. The read path never
	// touches mu, and the lock-count guard test pins exactly that: any
	// query sequence leaves this counter unchanged.
	writerLocks atomic.Uint64

	mu           sync.Mutex // writer lock: Append, Compact, Close
	active       *os.File
	activeRounds int // records in the active segment
	// appendErr poisons the store after an unrecoverable write failure
	// (a torn frame that could not be truncated away): further Appends
	// fail instead of silently writing after garbage that reload would
	// stop at, dropping everything behind it.
	appendErr error
}

// HistoryPoint is one (round, score) sample of an AS's history.
type HistoryPoint struct {
	Round uint32
	Centi uint16
}

// Score returns the point's protection score in [0, 100].
func (p HistoryPoint) Score() float64 { return float64(p.Centi) / 100 }

// segName names the segment whose first record is round base. Zero-padded
// so lexical order is round order.
func segName(base uint32) string { return fmt.Sprintf("seg-%08d.rvs", base) }

// Open opens (creating if needed) a store rooted at dir and reloads every
// intact round. Reload is crash-safe: a truncated or corrupt tail in a
// segment ends recovery at the last intact record; the damaged tail — and
// any later, now-unreachable segment files — are removed so the on-disk
// state matches the recovered history before the next append.
func Open(dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, cfg: cfg}
	st := &viewState{hist: make(map[inet.ASN][]HistoryPoint)}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.rvs"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)

	next := uint32(0)
	lastPath, lastEnd, lastSize := "", int64(0), int64(0)
	lastRounds := 0
	orphans := []string{}
	broken := false
	for _, path := range names {
		if broken {
			orphans = append(orphans, path)
			continue
		}
		recs, validEnd, err := loadSegment(path, next)
		if err != nil {
			return nil, fmt.Errorf("store: reading %s: %w", path, err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			indexInto(st, rec)
		}
		next += uint32(len(recs))
		if len(recs) == 0 && validEnd < segHeaderSize {
			// Nothing recoverable (header lost): discard the file entirely.
			orphans = append(orphans, path)
			broken = true
			continue
		}
		lastPath, lastEnd, lastSize, lastRounds = path, validEnd, fi.Size(), len(recs)
		if validEnd < fi.Size() {
			// Truncated tail: later segments can no longer be contiguous.
			broken = true
		}
	}
	for _, path := range orphans {
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("store: removing orphaned %s: %w", path, err)
		}
	}

	// Repair the tail unconditionally: whatever follows the last intact
	// record is crash debris even when the segment counts as full under
	// the *current* config (on-disk segments may hold more rounds than
	// cfg.SegmentRounds if the store was written with a larger setting).
	// Leaving it in place would make a later reload stop at the torn
	// frame and orphan-delete every newer, valid segment.
	if lastPath != "" && lastEnd < lastSize {
		if err := os.Truncate(lastPath, lastEnd); err != nil {
			return nil, err
		}
	}

	// Reopen the last segment for appending, unless it is already full —
	// then the next append starts a fresh segment.
	if lastPath != "" && lastRounds < cfg.SegmentRounds {
		f, err := os.OpenFile(lastPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		s.active = f
		s.activeRounds = lastRounds
	}
	s.publish(st)
	return s, nil
}

// indexInto merges one record into a snapshot still under construction
// (Open's single-threaded reload; never a published snapshot).
func indexInto(st *viewState, rec *RoundRecord) {
	st.records = append(st.records, rec)
	for _, e := range rec.Entries {
		st.hist[e.ASN] = append(st.hist[e.ASN], HistoryPoint{Round: rec.Round, Centi: e.Centi})
	}
	st.gen++
}

// publish makes st the store's current read snapshot.
func (s *Store) publish(st *viewState) {
	s.state.Store(st)
	s.publishes.Add(1)
}

// lockWriter takes the writer mutex, counting the acquisition for the
// lock-count guard.
func (s *Store) lockWriter() {
	s.writerLocks.Add(1)
	s.mu.Lock()
}

// View returns the current immutable read view. All Store query methods
// are shorthands for a fresh View call; callers needing several queries
// against one consistent generation (e.g. the API's cached read path)
// should take a View once and reuse it.
func (s *Store) View() View { return View{s.state.Load()} }

// SnapshotPublishes returns the number of read-snapshot publications since
// Open (Open's initial load counts as one).
func (s *Store) SnapshotPublishes() uint64 { return s.publishes.Load() }

// WriterLockAcquisitions returns the number of writer-mutex acquisitions.
// Reads never acquire it; tests pin that by sampling this around query
// storms.
func (s *Store) WriterLockAcquisitions() uint64 { return s.writerLocks.Load() }

// Close flushes and closes the active segment. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.lockWriter()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	err := s.active.Close()
	s.active = nil
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Append archives rec as the next round, assigning rec.Round, persisting it
// to the active segment (rolling to a new segment when full), building the
// successor read snapshot copy-on-write and publishing it atomically. The
// store takes ownership of rec.
func (s *Store) Append(rec *RoundRecord) error {
	s.lockWriter()
	defer s.mu.Unlock()
	if s.appendErr != nil {
		return s.appendErr
	}
	old := s.state.Load()
	rec.Round = uint32(len(old.records))
	sort.Slice(rec.Entries, func(i, j int) bool { return rec.Entries[i].ASN < rec.Entries[j].ASN })
	for i := 1; i < len(rec.Entries); i++ {
		if rec.Entries[i].ASN == rec.Entries[i-1].ASN {
			return fmt.Errorf("store: duplicate ASN %v in round %d", rec.Entries[i].ASN, rec.Round)
		}
	}

	if s.active != nil && s.activeRounds >= s.cfg.SegmentRounds {
		if err := s.active.Close(); err != nil {
			return err
		}
		s.active = nil
	}
	if s.active == nil {
		f, err := os.OpenFile(filepath.Join(s.dir, segName(rec.Round)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(encodeSegmentHeader(rec.Round)); err != nil {
			f.Close()
			return err
		}
		s.active = f
		s.activeRounds = 0
	}
	// Remember the pre-write end so a partial write (ENOSPC, I/O error)
	// can be rolled back: a torn frame left in place would make reload
	// stop there, silently dropping every later round Append reported as
	// persisted.
	off, err := s.active.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := writeFramed(s.active, rec); err != nil {
		s.truncateActive(off)
		return err
	}
	if s.cfg.Sync {
		if err := s.active.Sync(); err != nil {
			s.truncateActive(off)
			return err
		}
	}
	s.activeRounds++

	// Build and publish the successor snapshot. The records slice is
	// copied (full-slice append) so the published header is frozen; the
	// hist map header is copied, per-AS slices extended by append (safe:
	// any in-place growth writes beyond every published reader's length).
	next := &viewState{
		records: append(old.records[:len(old.records):len(old.records)], rec),
		hist:    make(map[inet.ASN][]HistoryPoint, len(old.hist)+len(rec.Entries)),
		gen:     old.gen + 1,
	}
	for asn, h := range old.hist {
		next.hist[asn] = h
	}
	for _, e := range rec.Entries {
		next.hist[e.ASN] = append(next.hist[e.ASN], HistoryPoint{Round: rec.Round, Centi: e.Centi})
	}
	s.publish(next)
	return nil
}

// truncateActive discards the bytes a failed append left beyond off,
// restoring the active segment to a clean frame boundary. If even the
// truncate fails the segment cannot be trusted: close it and poison the
// store (caller holds mu).
func (s *Store) truncateActive(off int64) {
	if err := s.active.Truncate(off); err != nil {
		s.active.Close()
		s.active = nil
		s.appendErr = fmt.Errorf("store: active segment unrecoverable after failed append: %w", err)
	}
}

// Compact rewrites the whole history into a single segment file and removes
// the old ones, reclaiming the per-segment overhead and the fragmentation
// left by small SegmentRounds. Logical content and generation are
// unchanged — the read snapshot is not republished — so concurrent queries
// keep working throughout, and appends resume into the compacted segment.
func (s *Store) Compact() error {
	s.lockWriter()
	defer s.mu.Unlock()
	records := s.state.Load().records
	if len(records) == 0 {
		return nil
	}
	tmp := filepath.Join(s.dir, "compact.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSegmentHeader(0)); err != nil {
		f.Close()
		return err
	}
	for _, rec := range records {
		if _, err := writeFramed(f, rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	old, err := filepath.Glob(filepath.Join(s.dir, "seg-*.rvs"))
	if err != nil {
		return err
	}
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, segName(0))); err != nil {
		return err
	}
	for _, path := range old {
		if path == filepath.Join(s.dir, segName(0)) {
			continue
		}
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	a, err := os.OpenFile(filepath.Join(s.dir, segName(0)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.active = a
	s.activeRounds = len(records)
	return nil
}

// Generation returns a counter that changes whenever a round is appended.
// Caches key their contents on it. For multi-query consistency against one
// generation, use View.
func (s *Store) Generation() uint64 { return s.View().Generation() }

// Rounds returns the number of archived rounds.
func (s *Store) Rounds() int { return s.View().Rounds() }

// Round returns archived round i, or nil when out of range.
func (s *Store) Round(i int) *RoundRecord { return s.View().Round(i) }

// Latest returns the most recent round, or nil on an empty store.
func (s *Store) Latest() *RoundRecord { return s.View().Latest() }

// Current returns an AS's most recent score and the round it came from.
func (s *Store) Current(asn inet.ASN) (HistoryPoint, bool) { return s.View().Current(asn) }

// Series returns an AS's full score history, sorted by round. The slice is
// shared with the store: read-only.
func (s *Store) Series(asn inet.ASN) []HistoryPoint { return s.View().Series(asn) }

// EntryAt is the (ASN, round) point lookup: the AS's full entry in that
// round, if it was scored there.
func (s *Store) EntryAt(asn inet.ASN, round int) (Entry, bool) { return s.View().EntryAt(asn, round) }

// TopN returns the n highest-scoring (protected=true) or lowest-scoring
// entries of the latest round, ties broken by ascending ASN.
func (s *Store) TopN(n int, protected bool) []Entry { return s.View().TopN(n, protected) }

// DiffEntry is one AS's change between two rounds.
type DiffEntry struct {
	ASN      inet.ASN
	From, To Entry
	// Appeared / Vanished flag ASes scored in only one of the rounds
	// (the zero-valued side's Entry is meaningless then).
	Appeared, Vanished bool
}

// Diff returns the per-AS changes from round `from` to round `to`: score
// movements plus appearances and disappearances, sorted by ASN.
func (s *Store) Diff(from, to int) ([]DiffEntry, error) { return s.View().Diff(from, to) }
