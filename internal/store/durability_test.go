package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
)

// buildSegmented writes k rounds into dir and returns the decoded records
// plus the per-round end offsets of the single segment file (boundaries[i]
// is the file size once round i is fully on disk; boundaries[-1 conceptual]
// is the 16-byte header).
func buildSingleSegment(t *testing.T, dir string, k int) (recs []*RoundRecord, path string, boundaries []int64) {
	t.Helper()
	st, err := Open(dir, Config{SegmentRounds: k + 1})
	must(t, err)
	for i := 0; i < k; i++ {
		must(t, st.Append(testRecord(i*3, map[inet.ASN]float64{
			100: float64((i * 17) % 101),
			200: float64((i * 31) % 101),
			300: 100,
		})))
		names, err := filepath.Glob(filepath.Join(dir, "seg-*.rvs"))
		must(t, err)
		if len(names) != 1 {
			t.Fatalf("want a single segment, got %v", names)
		}
		path = names[0]
		fi, err := os.Stat(path)
		must(t, err)
		boundaries = append(boundaries, fi.Size())
	}
	recs = snapshotRecords(st)
	must(t, st.Close())
	return recs, path, boundaries
}

// TestTruncationProperty is the durability property test: for EVERY prefix
// length of a segment file, reload must not fail and must recover exactly
// the rounds whose records are fully intact — and the repaired store must
// accept the next append.
func TestTruncationProperty(t *testing.T) {
	const k = 6
	srcDir := t.TempDir()
	recs, path, boundaries := buildSingleSegment(t, srcDir, k)
	data, err := os.ReadFile(path)
	must(t, err)
	if boundaries[k-1] != int64(len(data)) {
		t.Fatalf("boundary bookkeeping: %d vs %d", boundaries[k-1], len(data))
	}

	intactAt := func(n int64) int {
		count := 0
		for _, b := range boundaries {
			if b <= n {
				count++
			}
		}
		return count
	}

	for n := int64(0); n <= int64(len(data)); n++ {
		dir := t.TempDir()
		must(t, os.WriteFile(filepath.Join(dir, filepath.Base(path)), data[:n], 0o644))
		st, err := Open(dir, Config{SegmentRounds: k + 1})
		if err != nil {
			t.Fatalf("truncation to %d bytes: Open failed: %v", n, err)
		}
		want := intactAt(n)
		if st.Rounds() != want {
			t.Fatalf("truncation to %d bytes: recovered %d rounds, want %d", n, st.Rounds(), want)
		}
		for i := 0; i < want; i++ {
			if !reflect.DeepEqual(st.Round(i), recs[i]) {
				t.Fatalf("truncation to %d bytes: round %d corrupted on recovery", n, i)
			}
		}
		// The repaired store must keep working as an append target.
		if err := st.Append(testRecord(999, map[inet.ASN]float64{100: 50})); err != nil {
			t.Fatalf("truncation to %d bytes: append after repair: %v", n, err)
		}
		if st.Rounds() != want+1 || st.Round(want).Day != 999 {
			t.Fatalf("truncation to %d bytes: post-repair history wrong", n)
		}
		must(t, st.Close())

		// And the repair must itself be durable.
		re, err := Open(dir, Config{SegmentRounds: k + 1})
		if err != nil {
			t.Fatalf("truncation to %d bytes: reopen after repair: %v", n, err)
		}
		if re.Rounds() != want+1 {
			t.Fatalf("truncation to %d bytes: reopen lost rounds (%d vs %d)", n, re.Rounds(), want+1)
		}
		must(t, re.Close())
	}
}

// TestTruncationCorruptMiddleByte flips bytes (not just truncation): a
// corrupted record must fail its CRC and end recovery there, never panic.
func TestTruncationCorruptMiddleByte(t *testing.T) {
	const k = 5
	srcDir := t.TempDir()
	_, path, boundaries := buildSingleSegment(t, srcDir, k)
	data, err := os.ReadFile(path)
	must(t, err)

	// Corrupt one byte inside round 2's payload (past its frame header).
	pos := boundaries[1] + frameSize + 3
	for _, delta := range []byte{0xff, 0x01, 0x80} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= delta
		dir := t.TempDir()
		must(t, os.WriteFile(filepath.Join(dir, filepath.Base(path)), mut, 0o644))
		st, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("corrupt byte: Open failed: %v", err)
		}
		if st.Rounds() != 2 {
			t.Fatalf("corrupt round 2: recovered %d rounds, want 2", st.Rounds())
		}
		must(t, st.Close())
	}
}

// TestTruncationMultiSegment checks that damage in a middle segment ends
// recovery at the damage point and removes the now-unreachable later
// segments, keeping history contiguous.
func TestTruncationMultiSegment(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{SegmentRounds: 2})
	must(t, err)
	for i := 0; i < 6; i++ {
		must(t, st.Append(testRecord(i, map[inet.ASN]float64{100: float64(i)})))
	}
	must(t, st.Close())
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.rvs"))
	must(t, err)
	if len(names) != 3 {
		t.Fatalf("want 3 segments, got %v", names)
	}

	// Truncate the middle segment to its header + half a record.
	fi, err := os.Stat(names[1])
	must(t, err)
	must(t, os.Truncate(names[1], fi.Size()-5))

	re, err := Open(dir, Config{SegmentRounds: 2})
	must(t, err)
	// Segment 1 holds rounds 2,3; losing the tail of round 3 leaves 0..2.
	if re.Rounds() != 3 {
		t.Fatalf("recovered %d rounds, want 3", re.Rounds())
	}
	// The orphaned third segment must be gone, and appends must continue
	// from round 3.
	if n := countSegs(t, dir); n != 2 {
		t.Fatalf("orphaned segments not cleaned: %d files", n)
	}
	must(t, re.Append(testRecord(77, map[inet.ASN]float64{100: 1})))
	if re.Rounds() != 4 || re.Round(3).Day != 77 {
		t.Fatal("append after multi-segment repair broken")
	}
	must(t, re.Close())
}

// TestTailRepairWithSmallerSegmentRounds reopens a store whose on-disk
// segment holds more rounds than the current SegmentRounds allows. The
// crash-torn tail must still be truncated away even though the segment
// counts as "full" under the new config — otherwise the next append starts
// a fresh segment after the debris, and a later reload stops at the torn
// frame and orphan-deletes that newer, valid segment.
func TestTailRepairWithSmallerSegmentRounds(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{SegmentRounds: 4})
	must(t, err)
	for i := 0; i < 4; i++ {
		must(t, st.Append(testRecord(i, map[inet.ASN]float64{100: float64(i)})))
	}
	must(t, st.Close())
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.rvs"))
	must(t, err)
	if len(names) != 1 {
		t.Fatalf("want 1 segment, got %v", names)
	}

	// Simulate a crash mid-append: torn frame bytes at the segment tail.
	f, err := os.OpenFile(names[0], os.O_WRONLY|os.O_APPEND, 0o644)
	must(t, err)
	_, err = f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	must(t, err)
	must(t, f.Close())

	// Reopen with a smaller SegmentRounds: the segment is over-full under
	// this config, but the torn tail must be repaired regardless.
	re, err := Open(dir, Config{SegmentRounds: 2})
	must(t, err)
	if re.Rounds() != 4 {
		t.Fatalf("recovered %d rounds, want 4", re.Rounds())
	}
	must(t, re.Append(testRecord(99, map[inet.ASN]float64{100: 7})))
	must(t, re.Close())

	// The appended round lives in a newer segment; a clean reload must keep
	// it — before the fix it was orphan-deleted at the torn frame.
	re2, err := Open(dir, Config{SegmentRounds: 2})
	must(t, err)
	if re2.Rounds() != 5 || re2.Round(4).Day != 99 {
		t.Fatalf("reload lost the post-repair round: %d rounds", re2.Rounds())
	}
	must(t, re2.Close())
}
