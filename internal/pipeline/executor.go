package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Executor runs independent work items across a worker pool. Determinism
// comes from the division of labour, not the schedule: item i always writes
// slot i of a caller-owned result slice, and items never communicate, so any
// interleaving produces the same results as running the items in order.
type Executor struct {
	// Workers is the pool size; 0 or negative means runtime.NumCPU(), and 1
	// runs items inline on the calling goroutine (no pool, no atomics).
	Workers int
	// Progress, when set, is called after each completed item with the
	// number of items finished so far and the total. Calls are serialized;
	// under a pool the "done" counts are monotonic but may skip values
	// (several items can finish between two calls).
	Progress func(done, total int)
}

// PoolSize resolves the effective pool size: Workers, or runtime.NumCPU()
// when unset.
func (e *Executor) PoolSize() int {
	if e == nil || e.Workers <= 0 {
		return runtime.NumCPU()
	}
	return e.Workers
}

// ForEach runs fn(i) for every i in [0, n), each exactly once. With one
// worker the items run in index order on the calling goroutine; with more,
// workers pull indices from a shared counter, so items run in arbitrary
// order and concurrently — fn must be safe for that (the PairMeasurer
// purity contract). ForEach returns after every item has finished.
func (e *Executor) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := e.PoolSize()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
			e.report(i+1, n)
		}
		return
	}

	var next, done atomic.Int64
	var mu sync.Mutex // serializes Progress callbacks
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
				d := int(done.Add(1))
				if e != nil && e.Progress != nil {
					mu.Lock()
					e.Progress(d, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
}

// report invokes Progress from the serial path.
func (e *Executor) report(done, total int) {
	if e != nil && e.Progress != nil {
		e.Progress(done, total)
	}
}
