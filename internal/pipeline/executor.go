package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Executor runs independent work items across a worker pool. Determinism
// comes from the division of labour, not the schedule: item i always writes
// slot i of a caller-owned result slice, and items never communicate, so any
// interleaving produces the same results as running the items in order.
type Executor struct {
	// Workers is the pool size; 0 or negative means runtime.NumCPU(), and 1
	// runs items inline on the calling goroutine (no pool, no atomics).
	Workers int
	// Progress, when set, is called after each completed item with the
	// number of items finished so far and the total. Calls are serialized;
	// under a pool the "done" counts are monotonic but may skip values
	// (several items can finish between two calls).
	Progress func(done, total int)
}

// PoolSize resolves the effective pool size: Workers, or runtime.NumCPU()
// when unset.
func (e *Executor) PoolSize() int {
	if e == nil || e.Workers <= 0 {
		return runtime.NumCPU()
	}
	return e.Workers
}

// ForEach runs fn(i) for every i in [0, n), each exactly once. With one
// worker the items run in index order on the calling goroutine — no
// goroutines, no atomics, and (without Progress) zero allocations, so a
// one-worker pool costs exactly what a plain loop costs; with more, workers
// pull indices from a shared counter, so items run in arbitrary order and
// concurrently — fn must be safe for that (the PairMeasurer purity
// contract). ForEach returns after every item has finished.
func (e *Executor) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := e.PoolSize()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Kept free of any reference the pool path's goroutine closure
		// captures: sharing a variable with it would move the variable to
		// the heap and cost this path an allocation per call.
		if e == nil || e.Progress == nil {
			for i := 0; i < n; i++ {
				fn(i)
			}
			return
		}
		for i := 0; i < n; i++ {
			fn(i)
			e.Progress(i+1, n)
		}
		return
	}
	e.forEachPool(n, workers, fn)
}

// forEachPool is the multi-worker body of ForEach, split out so its
// goroutine closure cannot force heap allocations onto the inline path.
func (e *Executor) forEachPool(n, workers int, fn func(i int)) {
	var progress func(done, total int)
	if e != nil {
		progress = e.Progress
	}
	var next, done atomic.Int64
	var mu sync.Mutex // serializes Progress callbacks
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
				if progress == nil {
					continue // skip the done counter entirely
				}
				d := int(done.Add(1))
				mu.Lock()
				progress(d, n)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
